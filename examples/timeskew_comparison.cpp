/// \file timeskew_comparison.cpp
/// \brief Side-by-side demonstration of the two time-skew identification
///        techniques on one capture: the paper's reference-free LMS descent
///        (with its convergence trace) and the known-tone sine-fit baseline
///        adapted from Jamal et al. 2004.
#include <cmath>
#include <iostream>

#include "adc/tiadc.hpp"
#include "calib/jamal.hpp"
#include "calib/lms.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"

int main() {
    using namespace sdrbist;

    const double fc = 1.0 * GHz;
    const double b = 90.0 * MHz;
    const auto band_fast = sampling::band_around(fc, b);
    const auto band_slow = sampling::band_around(fc, b / 2.0);

    // A modulated-like multitone test signal confined to the slow band.
    rng gen(0xD0D0);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 6; ++i)
        tones.push_back({gen.uniform(fc - 18.0 * MHz, fc + 18.0 * MHz),
                         gen.uniform(0.1, 0.25), gen.uniform(0.0, two_pi)});
    const std::size_t n = 720;
    const rf::multitone_signal sig(std::move(tones),
                                   static_cast<double>(n) / b + 2.0 * us);

    adc::tiadc_config tc; // paper defaults: 10 bits, 90 MHz, 3 ps jitter
    tc.quant.full_scale = 1.5;
    tc.delay_element.step_s = 1.0 * ps;
    adc::bp_tiadc sampler(tc);
    sampler.program_delay(180.0 * ps);
    const double d_true = sampler.actual_delay();

    calib::dual_rate_capture capture;
    capture.fast = sampler.capture(sig, 0.5 * us, n, 0);
    capture.slow = sampler.capture_divided(sig, 0.5 * us, n / 2, 2, 1);
    capture.band_fast = band_fast;
    capture.band_slow = band_slow;

    std::cout << "Time-skew identification comparison (true D = "
              << d_true / ps << " ps)\n\n";

    // --- LMS (paper Algorithm 1) -----------------------------------------
    const auto [lo, hi] = calib::valid_probe_interval(capture);
    rng pg(0x1111);
    const auto probes = calib::make_probe_times(pg, 300, lo, hi);
    const calib::lms_skew_estimator lms{calib::lms_options{}};
    const auto est = lms.estimate(capture, 100.0 * ps, probes);

    std::cout << "LMS descent from D0 = 100 ps:\n";
    text_table trace({"iter", "D-hat [ps]", "cost", "mu [ps]"});
    for (const auto& p : est.trace)
        trace.add_row({std::to_string(p.iteration),
                       text_table::num(p.d_hat / ps, 3),
                       text_table::sci(p.cost, 3),
                       text_table::num(p.mu / ps, 4)});
    trace.print(std::cout);
    std::cout << "  -> D-hat = " << est.d_hat / ps << " ps, error "
              << std::abs(est.d_hat - d_true) / ps << " ps, "
              << est.cost_evaluations << " cost evaluations\n\n";

    // --- Sine-fit baseline -------------------------------------------------
    std::cout << "Sine-fit baseline (needs a known RF test tone):\n";
    text_table jt({"w0/B", "tone RF [MHz]", "D-hat [ps]", "error [ps]"});
    for (double omega : {0.40, 0.46}) {
        const double frac_fc = std::fmod(fc / b, 1.0);
        double delta = (omega - frac_fc) * b;
        if (delta < -0.45 * b)
            delta += b;
        const double f_tone = fc + delta;
        const rf::multitone_signal tone({{f_tone, 1.0, 0.2}}, 10.0 * us);
        adc::bp_tiadc tone_sampler(tc);
        tone_sampler.program_delay(180.0 * ps);
        tone_sampler.set_input_scale(0.65 * tc.quant.full_scale);
        const auto cap = tone_sampler.capture(tone, 0.5 * us, n, 5);
        calib::jamal_options jopt;
        jopt.max_delay_s = 483.0 * ps;
        const auto jest = calib::estimate_skew_sine_fit(cap, f_tone, jopt);
        jt.add_row({text_table::num(omega, 2),
                    text_table::num(f_tone / MHz, 1),
                    text_table::num(jest.d_hat / ps, 3),
                    text_table::num(std::abs(jest.d_hat - d_true) / ps, 3)});
    }
    jt.print(std::cout);
    std::cout << "\ntakeaway (paper Table I): the LMS needs no known test "
                 "signal and is insensitive to its starting point; the "
                 "sine-fit depends on the tone placement\n";
    return 0;
}

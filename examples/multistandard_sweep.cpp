/// \file multistandard_sweep.cpp
/// \brief The paper's flexibility claim in action: one BIST architecture,
///        unchanged hardware, testing every waveform standard the radio
///        ships — different modulations, symbol rates, roll-offs and
///        carriers.
#include <iostream>

#include "bist/multistandard.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

int main() {
    using namespace sdrbist;

    std::cout << "Multistandard BIST sweep — same BP-TIADC (2 x 10-bit @ "
                 "90 MHz), every catalogued standard\n\n";

    bist::bist_config base;
    base.tiadc.quant.full_scale = 2.0;

    const auto presets = waveform::standard_catalogue();
    const auto reports = bist::run_catalogue(base, presets);

    text_table table({"preset", "modulation", "carrier [GHz]",
                      "search m [ps]", "D-hat [ps]", "mask margin [dB]",
                      "EVM [%]", "verdict"});
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const auto& r = reports[i];
        table.add_row({r.preset_name,
                       to_string(presets[i].stimulus.mod),
                       text_table::num(r.carrier_hz / GHz, 2),
                       text_table::num(r.max_search_delay_s / ps, 0),
                       text_table::num(r.skew.d_hat / ps, 1),
                       text_table::num(r.mask.worst_margin_db, 1),
                       text_table::num(r.evm.evm_percent(), 2),
                       r.pass() ? "PASS" : "FAIL"});
    }
    table.print(std::cout);

    std::cout << "\nnote: the same capture hardware and the same LMS "
                 "identification serve every standard — the flexibility "
                 "PBS cannot offer (Fig. 3) and PNBS provides\n";

    bool all = true;
    for (const auto& r : reports)
        all = all && r.pass();
    return all ? 0 : 1;
}

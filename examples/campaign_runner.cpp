/// \file campaign_runner.cpp
/// \brief Production-style campaign CLI: expand a standard × fault ×
///        Monte-Carlo grid, execute it as a task DAG on a work-stealing
///        scheduler with stage-shared scenario pipelines, print the
///        fault-coverage matrix and export structured artefacts.  Also
///        merges shard result files from independent processes and
///        manages the scenario result cache.
///
/// Examples:
///   campaign_runner --trials 3 --threads 8 --json campaign.json
///   campaign_runner --presets paper-qpsk-10M,dqpsk-1M
///                   --faults none,pa-gain-drop --csv coverage.csv
///   campaign_runner --trials 8 --cache-dir .campaign-cache
///                   --shard 0/3 --jsonl shard0.jsonl --shard-out s0.json
///   campaign_runner --merge s0.json s1.json s2.json --json merged.json
///   campaign_runner cache-stats .campaign-cache
///   campaign_runner cache-gc .campaign-cache
///   campaign_runner cache-stats --store .stage-store
///   campaign_runner cache-gc --store .stage-store --max-bytes 16000000
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bist/config_canonical.hpp"
#include "campaign/artefact_store/artefact_store.hpp"
#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "campaign/journal.hpp"
#include "campaign/service/coordinator.hpp"
#include "campaign/service/worker.hpp"
#include "campaign/shard_io.hpp"
#include "core/fault_injection.hpp"
#include "core/build_info.hpp"
#include "core/simd/kernel_backend.hpp"
#include "core/table.hpp"
#include "core/telemetry.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;

std::vector<std::string> split_csv_list(const std::string& arg) {
    std::vector<std::string> items;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/// Parse a non-negative integer CLI value; exits with a usage error on
/// anything else (std::stoul would silently wrap "-1" to 2^64-1).
std::uint64_t parse_count(const std::string& option, const std::string& text,
                          int base = 10) {
    try {
        if (text.empty() || text[0] == '-')
            throw std::invalid_argument("negative");
        std::size_t consumed = 0;
        const std::uint64_t v = std::stoull(text, &consumed, base);
        if (consumed != text.size())
            throw std::invalid_argument("trailing garbage");
        return v;
    } catch (const std::exception&) {
        std::cerr << option << " needs a non-negative integer, got '" << text
                  << "'\n";
        std::exit(2);
    }
}

/// Parse a floating-point CLI value, rejecting trailing garbage.
double parse_double(const std::string& option, const std::string& text) {
    try {
        std::size_t consumed = 0;
        const double v = std::stod(text, &consumed);
        if (consumed != text.size())
            throw std::invalid_argument("trailing garbage");
        return v;
    } catch (const std::exception&) {
        std::cerr << option << " needs a number, got '" << text << "'\n";
        std::exit(2);
    }
}

bist::fault_kind fault_by_name(const std::string& name) {
    try {
        return bist::fault_from_string(name);
    } catch (const std::exception&) {
        std::cerr << "unknown fault: " << name << "\nknown faults:";
        for (const auto f : bist::fault_catalogue())
            std::cerr << ' ' << bist::to_string(f);
        std::cerr << '\n';
        std::exit(2);
    }
}

void usage() {
    std::cout <<
        "usage: campaign_runner [options]\n"
        "       campaign_runner --merge shard0.json shard1.json ... [export "
        "options]\n"
        "       campaign_runner cache-stats [--store] <dir>\n"
        "       campaign_runner cache-gc [--store] <dir> [budgets]\n"
        "  --presets a,b,c   presets to grade (default: whole catalogue)\n"
        "  --faults a,b      faults to inject (default: whole catalogue)\n"
        "  --trials N        Monte-Carlo trials per cell (default 1)\n"
        "  --reseed MODE     what trials rerandomise: device (fresh device\n"
        "                    seeds + perturbations, default), probes (fresh\n"
        "                    probe draw on one fixed device; upstream\n"
        "                    pipeline stages then shared across trials),\n"
        "                    off (legacy: every scenario keeps base seeds)\n"
        "  --threads N       worker threads (default: hardware)\n"
        "  --seed S          campaign master seed\n"
        "  --jitter-sigma X  log-normal per-trial jitter spread\n"
        "  --dcde-sigma-ps X gaussian per-trial DCDE static-error spread\n"
        "  --backend NAME    force the SIMD kernel backend (scalar, avx2,\n"
        "                    neon; default: best the CPU supports, or the\n"
        "                    SDRBIST_FORCE_BACKEND environment variable)\n"
        "  --stage-sharing S deepest pipeline stage pooled across scenarios\n"
        "                    that provably need the same result: off,\n"
        "                    stimulus, tx-capture, calibration,\n"
        "                    reconstruction (default)\n"
        "  --shard i/N       grade only shard i of N (grid index mod N)\n"
        "  --serve H:P       run as the distributed-campaign coordinator:\n"
        "                    listen on host:port (port 0 = ephemeral),\n"
        "                    lease grid slices to --worker processes,\n"
        "                    re-queue leases whose workers die, merge the\n"
        "                    completed leases bit-identically and export\n"
        "                    as usual (workers grade; this process never\n"
        "                    does).  Use the same grid flags on both ends\n"
        "                    — the handshake verifies the identity digest\n"
        "  --worker H:P      run as a worker for the coordinator at\n"
        "                    host:port: request leases, grade them,\n"
        "                    stream rows back, heartbeat while computing.\n"
        "                    Pair with --journal so a restarted worker\n"
        "                    resumes instead of re-grading (resume is\n"
        "                    implied, cold start included)\n"
        "  --lease-size N    scenarios per lease (--serve; default 4)\n"
        "  --heartbeat-s X   worker beat period (default 5).  Set it on\n"
        "                    --serve: the coordinator re-queues a lease\n"
        "                    silent for 3X, and workers adopt its cadence\n"
        "                    at handshake\n"
        "  --shard-out PATH  write this run's full-fidelity result file\n"
        "                    (the --merge input; no shared cache needed)\n"
        "  --merge F...      merge shard result files instead of running\n"
        "  --salvage         with --merge: quarantine unreadable shard\n"
        "                    files and drop bad rows instead of failing\n"
        "  --cache-dir PATH  scenario result cache: rerunning an\n"
        "                    overlapping grid skips graded scenarios\n"
        "  --stage-store PATH\n"
        "                    persistent stage-artefact store: stage outputs\n"
        "                    are published by input digest and adopted on\n"
        "                    later runs, skipping the stage computes while\n"
        "                    keeping every export byte-identical.  Manage\n"
        "                    with cache-stats/cache-gc --store <dir>;\n"
        "                    cache-gc budgets: --max-bytes N, --max-age-s N,\n"
        "                    --max-entries N (LRU eviction, oldest first)\n"
        "  --max-retries N   re-run a scenario up to N times after a\n"
        "                    transient failure (default 2; contract\n"
        "                    violations are never retried)\n"
        "  --retry-backoff-ms X  base delay before a retry, doubling per\n"
        "                    attempt (default 1)\n"
        "  --deadline-s X    per-scenario wall-clock budget; an overrun\n"
        "                    marks the scenario failed-timeout without\n"
        "                    killing the campaign (default: none)\n"
        "  --journal PATH    append each completed scenario to a crash-safe\n"
        "                    JSONL journal (the --resume input)\n"
        "  --resume PATH     replay a journal from a killed run, computing\n"
        "                    only the missing scenarios (implies --journal\n"
        "                    PATH: the run keeps appending to it)\n"
        "  --fault-spec SPEC arm deterministic fault injection, e.g.\n"
        "                    'stage.calibration:throw-transient:p=0.05,\n"
        "                    seed=7' (see also SDRBIST_FAULT_SPEC)\n"
        "  --json PATH       write the full campaign JSON\n"
        "  --csv PATH        write the coverage-matrix CSV\n"
        "  --scenarios PATH  write the per-scenario CSV\n"
        "  --jsonl PATH      stream per-scenario JSONL rows as they\n"
        "                    complete (grid-order-restored on exit)\n"
        "  --no-timing       suppress measured fields (timing, thread and\n"
        "                    cache counters) in every export, making\n"
        "                    artefacts byte-comparable across runs\n"
        "  --trace-out PATH  record a Chrome trace (load in chrome://tracing\n"
        "                    or https://ui.perfetto.dev): one span per\n"
        "                    pipeline stage, scenario, cache access, shard\n"
        "                    I/O and worker task/idle interval\n"
        "  --counters        print the telemetry counter and per-category\n"
        "                    span tables after the run\n"
        "  --build-info      print build provenance (compiler, build type,\n"
        "                    SIMD backends, format versions) and exit\n"
        "  --list-presets    print the preset catalogue and exit\n"
        "  --list-backends   print the SIMD kernel backends and exit\n"
        "  --help            this text\n"
        "exit codes: 0 success, 1 artefact write failure, 2 usage error,\n"
        "            3 campaign finished but scenarios failed\n";
}

/// Parse "host:port" for --serve/--worker; exits with a usage error when
/// malformed.  Numeric IPv4 hosts only (the service is a loopback/LAN
/// fleet tool, not an internet endpoint).
std::pair<std::string, std::uint16_t> parse_endpoint(const std::string& option,
                                                     const std::string& text) {
    const auto colon = text.rfind(':');
    if (colon != std::string::npos && colon > 0) {
        const std::string host = text.substr(0, colon);
        const std::uint64_t port =
            parse_count(option, text.substr(colon + 1));
        if (port <= 65535)
            return {host, static_cast<std::uint16_t>(port)};
    }
    std::cerr << option << " needs HOST:PORT, got '" << text << "'\n";
    std::exit(2);
}

/// Parse "i/N" into a shard_spec; exits with a usage error when malformed.
campaign::shard_spec parse_shard(const std::string& text) {
    const auto slash = text.find('/');
    if (slash != std::string::npos) {
        campaign::shard_spec shard;
        shard.index = parse_count("--shard", text.substr(0, slash));
        shard.count = parse_count("--shard", text.substr(slash + 1));
        if (shard.count >= 1 && shard.index < shard.count)
            return shard;
    }
    std::cerr << "--shard needs i/N with 0 <= i < N, got '" << text << "'\n";
    std::exit(2);
}

campaign::reseed_policy parse_reseed(const std::string& text) {
    if (text == "device")
        return campaign::reseed_policy::device;
    if (text == "probes")
        return campaign::reseed_policy::probes;
    if (text == "off")
        return campaign::reseed_policy::off;
    std::cerr << "--reseed needs device|probes|off, got '" << text << "'\n";
    std::exit(2);
}

std::optional<bist::stage> parse_stage_sharing(const std::string& text) {
    if (text == "off")
        return std::nullopt;
    for (const bist::stage s :
         {bist::stage::stimulus, bist::stage::tx_capture,
          bist::stage::calibration, bist::stage::reconstruction})
        if (bist::to_string(s) == text)
            return s;
    std::cerr << "--stage-sharing needs off|stimulus|tx-capture|calibration|"
                 "reconstruction, got '"
              << text << "'\n";
    std::exit(2);
}

int list_presets() {
    text_table table({"preset", "modulation", "symbol rate [Msym/s]",
                      "carrier [MHz]", "mask"});
    table.set_title("standard preset catalogue");
    for (const auto& p : waveform::standard_catalogue())
        table.add_row({p.name, waveform::to_string(p.stimulus.mod),
                       text_table::num(p.stimulus.symbol_rate / 1e6, 3),
                       text_table::num(p.default_carrier_hz / 1e6, 1),
                       p.mask.name()});
    table.print(std::cout);
    return 0;
}

int list_backends() {
    const auto& active = simd::kernel_backend::select();
    std::cout << "SIMD kernel backends (compiled in):\n";
    for (const auto* ops : simd::kernel_backend::compiled()) {
        std::cout << "  " << ops->name;
        if (!simd::kernel_backend::supported(*ops))
            std::cout << "  [not supported by this CPU]";
        else if (ops->name == std::string_view(active.name))
            std::cout << "  [active]";
        std::cout << "\n";
    }
    return 0;
}

/// Build provenance plus the campaign-layer format versions — the
/// `--build-info` block and the `otherData` of every exported trace.
std::vector<std::pair<std::string, std::string>> provenance_fields() {
    auto fields = build_info_fields();
    fields.emplace_back("canonical_config_version",
                        std::to_string(bist::canonical_config_version));
    fields.emplace_back("stage_canonical_version",
                        std::to_string(bist::stage_canonical_version));
    fields.emplace_back("cache_format_version",
                        std::to_string(campaign::cache_format_version));
    fields.emplace_back("store_format_version",
                        std::to_string(campaign::store_format_version));
    fields.emplace_back("shard_file_version",
                        std::to_string(campaign::shard_file_version));
    return fields;
}

int build_info_cmd() {
    const auto fields = provenance_fields();
    std::size_t width = 0;
    for (const auto& [key, value] : fields)
        width = std::max(width, key.size());
    std::cout << "build info:\n";
    for (const auto& [key, value] : fields)
        std::cout << "  " << key << ':'
                  << std::string(width - key.size() + 2, ' ') << value
                  << "\n";
    return 0;
}

/// `--counters` report: the monotonic counters, then the per-category span
/// aggregates of this run's window (the summary attached to the result).
void print_telemetry(const campaign::campaign_result& result) {
    const auto counts = telemetry::counters();
    text_table counters({"counter", "value"});
    counters.set_title("telemetry counters");
    for (std::size_t i = 0; i < telemetry::counter_count; ++i)
        counters.add_row(
            {telemetry::to_string(static_cast<telemetry::counter>(i)),
             std::to_string(counts[i])});
    std::cout << "\n";
    counters.print(std::cout);

    text_table spans(
        {"category", "count", "total [ns]", "mean [ns]", "max [ns]"});
    spans.set_title("telemetry spans");
    for (std::size_t i = 0; i < telemetry::category_count; ++i) {
        const auto& c = result.telemetry_summary.categories[i];
        spans.add_row(
            {telemetry::to_string(static_cast<telemetry::category>(i)),
             std::to_string(c.count), std::to_string(c.total_ns),
             text_table::num(c.mean_ns(), 1), std::to_string(c.max_ns)});
    }
    std::cout << "\n";
    spans.print(std::cout);
}

int cache_stats_cmd(const std::string& dir) {
    const auto stats = campaign::scan_cache_dir(dir);
    std::cout << "cache " << dir << ": " << stats.files() << " files, "
              << stats.bytes << " bytes\n"
              << "  entries (current version): " << stats.entries << "\n"
              << "  version-skewed:            " << stats.stale << "\n"
              << "  corrupt:                   " << stats.corrupt << "\n"
              << "  stray temp files:          " << stats.stray_tmp << "\n";
    if (!stats.version_histogram.empty()) {
        std::cout << "  version histogram:\n";
        for (const auto& [version, count] : stats.version_histogram)
            std::cout << "    v" << version << ": " << count << "\n";
    }
    return 0;
}

int cache_gc_cmd(const std::string& dir) {
    const auto gc = campaign::gc_cache_dir(dir);
    std::cout << "cache-gc " << dir << ": scanned " << gc.scanned
              << ", removed " << gc.removed << " (" << gc.bytes_freed
              << " bytes), kept " << gc.kept << "\n";
    return 0;
}

int store_stats_cmd(const std::string& dir) {
    const auto stats = campaign::scan_store_dir(dir);
    std::cout << "store " << dir << ": " << stats.files() << " files, "
              << stats.bytes << " bytes\n"
              << "  entries (current version): " << stats.entries << "\n"
              << "  version-skewed:            " << stats.stale << "\n"
              << "  corrupt:                   " << stats.corrupt << "\n"
              << "  stray temp files:          " << stats.stray_tmp << "\n";
    if (!stats.version_histogram.empty()) {
        std::cout << "  version histogram:\n";
        for (const auto& [version, count] : stats.version_histogram)
            std::cout << "    v" << version << ": " << count << "\n";
    }
    return 0;
}

int store_gc_cmd(const std::string& dir, campaign::store_gc_policy policy) {
    const auto gc = campaign::gc_store_dir(dir, policy);
    std::cout << "store-gc " << dir << ": scanned " << gc.scanned
              << ", removed " << gc.removed << ", evicted " << gc.evicted
              << " (" << gc.bytes_freed << " bytes freed), kept " << gc.kept
              << "\n";
    return 0;
}

int run_cli(int argc, char** argv);

} // namespace

int main(int argc, char** argv) {
    try {
        return run_cli(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}

namespace {

/// Everything after the run/merge: summary table, stdout stats, exports.
int report_and_export(const campaign::campaign_result& result,
                      const campaign::export_options& opt,
                      const std::string& json_path,
                      const std::string& csv_path,
                      const std::string& scenarios_path,
                      const std::string& shard_out_path,
                      const std::string& jsonl_path = {},
                      const std::string& trace_out_path = {},
                      bool show_counters = false) {
    campaign::coverage_table(result).print(std::cout);
    std::cout << "\nyield (golden pass rate):  "
              << text_table::num(100.0 * result.yield(), 1) << " %  ("
              << result.golden_passes << "/" << result.golden_runs << ")\n"
              << "fault coverage:            "
              << text_table::num(100.0 * result.coverage(), 1) << " %  ("
              << result.fault_detected << "/" << result.fault_runs << ")\n"
              << "escape rate:               "
              << text_table::num(100.0 * result.escape_rate(), 1) << " %\n"
              << "threads:                   " << result.threads_used << "\n"
              << "wall time:                 "
              << text_table::num(result.wall_s, 2) << " s  ("
              << text_table::num(result.scenarios_per_second(), 2)
              << " scenarios/s)\n";
    if (result.shard_count > 1)
        std::cout << "shard:                     " << result.shard_index
                  << "/" << result.shard_count << "  ("
                  << result.results.size() << " of " << result.grid_size
                  << " scenarios)\n";
    // Format relied upon by CI (warm-run assertion greps these lines).
    std::cout << "cache:                     " << result.cache_hits
              << " hits, " << result.cache_misses << " misses\n"
              << "stage reuse:               " << result.stage_reuse_hits
              << " adopted, " << result.stage_reuse_computes
              << " computed\n"
              << "store:                     " << result.store_hits
              << " hits, " << result.store_misses << " misses, "
              << result.store_bytes << " bytes\n"
              << "recovery:                  " << result.scenario_retries
              << " retried, " << result.scenario_gave_up << " gave up, "
              << result.resumed << " resumed, " << result.quarantined
              << " quarantined\n";
    if (show_counters)
        print_telemetry(result);

    bool engine_errors = false;
    for (const auto& r : result.results)
        if (r.engine_error) {
            engine_errors = true;
            std::cerr << "engine error in scenario " << r.sc.index << " ("
                      << r.sc.preset_name << ", "
                      << bist::to_string(r.sc.fault) << "): " << r.error
                      << "\n";
        }

    auto write_file = [](const std::string& path, const std::string& body) {
        std::ofstream out(path, std::ios::binary);
        out << body;
        out.flush();
        if (!out.good()) {
            std::cerr << "cannot write " << path << "\n";
            std::exit(1);
        }
        std::cout << "wrote " << path << "\n";
    };
    if (!json_path.empty())
        write_file(json_path, campaign::to_json(result, opt));
    if (!csv_path.empty())
        write_file(csv_path, campaign::coverage_csv(result));
    if (!scenarios_path.empty())
        write_file(scenarios_path, campaign::scenarios_csv(result, opt));
    // Only for results without a live jsonl_stream (merge mode): the
    // one-shot exporter is byte-identical to a finalised stream.
    if (!jsonl_path.empty())
        write_file(jsonl_path, campaign::scenarios_jsonl(result, opt));
    if (!shard_out_path.empty()) {
        if (!campaign::write_result_file(shard_out_path, result)) {
            std::cerr << "cannot write " << shard_out_path << "\n";
            std::exit(1);
        }
        std::cout << "wrote " << shard_out_path << "\n";
    }
    // Last, so the trace also covers the export spans above.
    if (!trace_out_path.empty()) {
        if (!telemetry::write_chrome_trace(trace_out_path,
                                           provenance_fields())) {
            std::cerr << "cannot write " << trace_out_path << "\n";
            std::exit(1);
        }
        std::cout << "wrote " << trace_out_path << " ("
                  << telemetry::trace_event_count() << " events)\n";
    }

    // 3, not 1: distinguishes "campaign completed but scenarios failed"
    // from an artefact write failure so retry wrappers can tell them apart.
    return engine_errors ? 3 : 0;
}

int run_cli(int argc, char** argv) {
    // Cache / stage-store maintenance subcommands.
    if (argc >= 2 && (std::string(argv[1]) == "cache-stats" ||
                      std::string(argv[1]) == "cache-gc")) {
        const std::string sub = argv[1];
        const bool gc = sub == "cache-gc";
        bool store_mode = false;
        campaign::store_gc_policy policy;
        std::string dir;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc) {
                    std::cerr << arg << " needs a value\n";
                    std::exit(2);
                }
                return argv[++i];
            };
            if (arg == "--store") {
                store_mode = true;
            } else if (gc && arg == "--max-bytes") {
                policy.max_bytes = parse_count(arg, value());
            } else if (gc && arg == "--max-age-s") {
                policy.max_age_s = parse_count(arg, value());
            } else if (gc && arg == "--max-entries") {
                policy.max_entries = parse_count(arg, value());
            } else if (dir.empty() && !arg.empty() && arg[0] != '-') {
                dir = arg;
            } else {
                std::cerr << sub << ": unexpected argument '" << arg << "'\n";
                return 2;
            }
        }
        if (dir.empty()) {
            std::cerr << sub << " needs a directory\n";
            return 2;
        }
        if (!store_mode &&
            (policy.max_bytes || policy.max_age_s || policy.max_entries)) {
            std::cerr << sub << ": eviction budgets need --store\n";
            return 2;
        }
        if (store_mode)
            return gc ? store_gc_cmd(dir, policy) : store_stats_cmd(dir);
        return gc ? cache_gc_cmd(dir) : cache_stats_cmd(dir);
    }

    campaign::campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2; // PA-health floor so gain faults count

    std::string json_path, csv_path, scenarios_path, jsonl_path,
        shard_out_path, trace_out_path;
    std::vector<std::string> preset_names, fault_names, merge_paths;
    campaign::service::service_config svc;
    bool serve_mode = false;
    bool worker_mode = false;
    bool merge_mode = false;
    bool salvage_mode = false;
    bool show_counters = false;
    bool show_build_info = false;
    campaign::export_options export_opt;
    // The CLI always appends the JSONL summary row; the library default
    // stays off for scenario-rows-only consumers.
    export_opt.jsonl_summary = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list-presets") {
            return list_presets();
        } else if (arg == "--list-backends") {
            return list_backends();
        } else if (arg == "--presets") {
            preset_names = split_csv_list(value());
        } else if (arg == "--faults") {
            fault_names = split_csv_list(value());
        } else if (arg == "--trials") {
            cfg.trials = parse_count(arg, value());
        } else if (arg == "--reseed") {
            cfg.reseed = parse_reseed(value());
        } else if (arg == "--threads") {
            cfg.threads = parse_count(arg, value());
        } else if (arg == "--seed") {
            cfg.seed = parse_count(arg, value(), 0);
        } else if (arg == "--jitter-sigma") {
            cfg.perturb.jitter_rel_sigma = parse_double(arg, value());
        } else if (arg == "--dcde-sigma-ps") {
            cfg.perturb.dcde_static_sigma_s = parse_double(arg, value()) * ps;
        } else if (arg == "--backend") {
            // Force before any engine object captures the dispatched table;
            // unknown/unsupported names throw (caught in main, exit 2).
            simd::kernel_backend::force(value());
        } else if (arg == "--stage-sharing") {
            cfg.stage_sharing = parse_stage_sharing(value());
        } else if (arg == "--shard") {
            cfg.shard = parse_shard(value());
        } else if (arg == "--serve") {
            serve_mode = true;
            std::tie(svc.host, svc.port) = parse_endpoint(arg, value());
        } else if (arg == "--worker") {
            worker_mode = true;
            std::tie(svc.host, svc.port) = parse_endpoint(arg, value());
        } else if (arg == "--lease-size") {
            svc.lease_size = parse_count(arg, value());
            if (svc.lease_size == 0) {
                std::cerr << "--lease-size must be >= 1\n";
                return 2;
            }
        } else if (arg == "--heartbeat-s") {
            svc.heartbeat_s = parse_double(arg, value());
            if (!(svc.heartbeat_s > 0.0)) {
                std::cerr << "--heartbeat-s must be > 0\n";
                return 2;
            }
        } else if (arg == "--shard-out") {
            shard_out_path = value();
        } else if (arg == "--merge") {
            merge_mode = true;
        } else if (arg == "--salvage") {
            salvage_mode = true;
        } else if (arg == "--cache-dir") {
            cfg.cache_dir = value();
        } else if (arg == "--stage-store") {
            cfg.stage_store_dir = value();
        } else if (arg == "--max-retries") {
            cfg.max_retries = parse_count(arg, value());
        } else if (arg == "--retry-backoff-ms") {
            cfg.retry_backoff_ms = parse_double(arg, value());
        } else if (arg == "--deadline-s") {
            cfg.scenario_deadline_s = parse_double(arg, value());
        } else if (arg == "--journal") {
            cfg.journal_path = value();
        } else if (arg == "--resume") {
            cfg.journal_path = value();
            cfg.resume = true;
        } else if (arg == "--fault-spec") {
            try {
                fault_injection::arm(value());
            } catch (const std::exception& e) {
                std::cerr << "--fault-spec: " << e.what() << "\n";
                return 2;
            }
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--csv") {
            csv_path = value();
        } else if (arg == "--scenarios") {
            scenarios_path = value();
        } else if (arg == "--jsonl") {
            jsonl_path = value();
        } else if (arg == "--no-timing") {
            export_opt.include_timing = false;
        } else if (arg == "--trace-out") {
            trace_out_path = value();
        } else if (arg == "--counters") {
            show_counters = true;
        } else if (arg == "--build-info") {
            show_build_info = true;
        } else if (merge_mode && !arg.empty() && arg[0] != '-') {
            merge_paths.push_back(arg);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }

    // After parsing, so the block reflects a --backend force on this
    // command line.
    if (show_build_info)
        return build_info_cmd();

    // ---- service-mode flag compatibility ----------------------------------
    if (serve_mode && worker_mode) {
        std::cerr << "--serve and --worker are mutually exclusive\n";
        return 2;
    }
    if ((serve_mode || worker_mode) && merge_mode) {
        std::cerr << "--merge cannot combine with --serve/--worker\n";
        return 2;
    }
    if (serve_mode &&
        (cfg.shard.count > 1 || !cfg.journal_path.empty() || cfg.resume)) {
        std::cerr << "--serve owns the grid partition; --shard, --journal "
                     "and --resume apply to workers\n";
        return 2;
    }
    if (worker_mode &&
        (!json_path.empty() || !csv_path.empty() || !scenarios_path.empty() ||
         !jsonl_path.empty() || !shard_out_path.empty() ||
         cfg.shard.count > 1)) {
        std::cerr << "--worker streams results to its coordinator; export "
                     "flags and --shard belong on --serve\n";
        return 2;
    }

    // Telemetry on when anything consumes it.  Counters/aggregates always
    // under enable; trace-event buffering only with --trace-out.
    if (!trace_out_path.empty() || show_counters)
        telemetry::enable(/*capture_trace=*/!trace_out_path.empty());

    // ---- merge mode: recombine shard result files, no engine runs ---------
    if (merge_mode) {
        if (merge_paths.size() < 2) {
            std::cerr << "--merge needs at least two shard files\n";
            return 2;
        }
        campaign::campaign_result merged;
        if (salvage_mode) {
            campaign::salvage_stats stats;
            const auto shards =
                campaign::read_result_files_salvage(merge_paths, stats);
            if (shards.empty()) {
                std::cerr << "--salvage: no readable shard files\n";
                return 3;
            }
            merged = campaign::merge_results_salvage(shards, stats);
            std::cout << "salvage-merged " << shards.size() << " of "
                      << merge_paths.size() << " shards: "
                      << merged.scenario_count() << " scenarios ("
                      << stats.quarantined_files << " files quarantined, "
                      << stats.skipped_shards << " shards skipped, "
                      << stats.duplicate_rows << " duplicate rows dropped, "
                      << stats.missing_rows << " rows missing)\n";
            for (const auto& note : stats.notes)
                std::cout << "  salvage: " << note << "\n";
            std::cout << "\n";
        } else {
            std::vector<campaign::campaign_result> shards;
            shards.reserve(merge_paths.size());
            for (const auto& path : merge_paths)
                shards.push_back(campaign::read_result_file(path));
            merged = campaign::merge_results(shards);
            std::cout << "merged " << merge_paths.size() << " shards: "
                      << merged.scenario_count() << " scenarios\n\n";
        }
        return report_and_export(merged, export_opt, json_path, csv_path,
                                 scenarios_path, shard_out_path, jsonl_path,
                                 trace_out_path, show_counters);
    }

    if (!preset_names.empty()) {
        cfg.presets.clear();
        for (const auto& name : preset_names)
            cfg.presets.push_back(waveform::find_preset(name));
    }
    if (!fault_names.empty()) {
        cfg.faults.clear();
        for (const auto& name : fault_names)
            cfg.faults.push_back(fault_by_name(name));
    }

    const std::size_t scenario_count =
        cfg.presets.size() * cfg.faults.size() * cfg.trials;
    std::cout << "campaign: " << cfg.presets.size() << " presets x "
              << cfg.faults.size() << " faults x " << cfg.trials
              << " trials = " << scenario_count << " scenarios"
              << "  [backend " << simd::kernel_backend::select().name << "]";
    if (cfg.shard.count > 1)
        std::cout << "  (shard " << cfg.shard.index << "/" << cfg.shard.count
                  << ")";
    if (serve_mode)
        std::cout << "  (coordinator)";
    if (worker_mode)
        std::cout << "  (worker)";
    std::cout << "\n\n" << std::flush;

    // ---- worker mode: grade leases for a coordinator ----------------------
    if (worker_mode) {
        try {
            const auto wr = campaign::service::run_worker(cfg, svc);
            std::cout << "worker: " << wr.leases << " leases completed, "
                      << wr.stale << " stale, " << wr.rows
                      << " rows streamed, " << wr.heartbeats
                      << " heartbeats\n";
            return 0;
        } catch (const fault_injection::transient_fault& e) {
            // Lost (or never found) the coordinator: an expected event in
            // the service failure model, not a usage error.
            std::cerr << "worker: " << e.what() << "\n";
            return 1;
        }
    }

    std::unique_ptr<campaign::jsonl_stream> jsonl;
    campaign::run_hooks hooks;
    if (!jsonl_path.empty()) {
        jsonl = std::make_unique<campaign::jsonl_stream>(jsonl_path,
                                                         export_opt);
        hooks.on_scenario = [&](const campaign::scenario_result& r) {
            jsonl->append(r);
        };
    }

    // ---- serve mode: coordinate a worker fleet ----------------------------
    if (serve_mode) {
        campaign::service::coordinator coord(cfg, svc);
        std::cout << "service: listening on " << svc.host << ":"
                  << coord.port() << "  (lease size " << svc.lease_size
                  << ", heartbeat " << svc.heartbeat_s << " s, re-queue after "
                  << svc.timeout() << " s silent)\n"
                  << std::flush;
        const auto report = coord.serve(hooks);
        if (jsonl) {
            jsonl->finalise(report.result);
            std::cout << "wrote " << jsonl_path << " (" << jsonl->rows()
                      << " rows, streamed)\n";
        }
        // Format relied upon by CI (requeue-count assertion greps this).
        std::cout << "service: " << report.leases.leases
                  << " leases granted, " << report.leases.requeues
                  << " re-queued, " << report.leases.heartbeats
                  << " heartbeats, " << report.workers_seen << " workers, "
                  << report.dropped_connections << " dropped\n\n";
        return report_and_export(report.result, export_opt, json_path,
                                 csv_path, scenarios_path, shard_out_path, {},
                                 trace_out_path, show_counters);
    }

    const campaign::campaign_runner runner(cfg);
    const auto result = runner.run(hooks);
    if (jsonl) {
        jsonl->finalise(result);
        std::cout << "wrote " << jsonl_path << " (" << jsonl->rows()
                  << " rows, streamed)\n";
    }

    return report_and_export(result, export_opt, json_path, csv_path,
                             scenarios_path, shard_out_path, {},
                             trace_out_path, show_counters);
}

} // namespace

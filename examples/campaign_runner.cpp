/// \file campaign_runner.cpp
/// \brief Production-style campaign CLI: expand a standard × fault ×
///        Monte-Carlo grid, execute it on a thread pool, print the
///        fault-coverage matrix and export structured artefacts.
///
/// Examples:
///   campaign_runner --trials 3 --threads 8 --json campaign.json
///   campaign_runner --presets paper-qpsk-10M,dqpsk-1M
///                   --faults none,pa-gain-drop --csv coverage.csv
///   campaign_runner --trials 8 --cache-dir .campaign-cache
///                   --shard 0/3 --jsonl shard0.jsonl
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "core/simd/kernel_backend.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;

std::vector<std::string> split_csv_list(const std::string& arg) {
    std::vector<std::string> items;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/// Parse a non-negative integer CLI value; exits with a usage error on
/// anything else (std::stoul would silently wrap "-1" to 2^64-1).
std::uint64_t parse_count(const std::string& option, const std::string& text,
                          int base = 10) {
    try {
        if (text.empty() || text[0] == '-')
            throw std::invalid_argument("negative");
        std::size_t consumed = 0;
        const std::uint64_t v = std::stoull(text, &consumed, base);
        if (consumed != text.size())
            throw std::invalid_argument("trailing garbage");
        return v;
    } catch (const std::exception&) {
        std::cerr << option << " needs a non-negative integer, got '" << text
                  << "'\n";
        std::exit(2);
    }
}

/// Parse a floating-point CLI value, rejecting trailing garbage.
double parse_double(const std::string& option, const std::string& text) {
    try {
        std::size_t consumed = 0;
        const double v = std::stod(text, &consumed);
        if (consumed != text.size())
            throw std::invalid_argument("trailing garbage");
        return v;
    } catch (const std::exception&) {
        std::cerr << option << " needs a number, got '" << text << "'\n";
        std::exit(2);
    }
}

bist::fault_kind fault_by_name(const std::string& name) {
    for (const auto f : bist::fault_catalogue())
        if (bist::to_string(f) == name)
            return f;
    std::cerr << "unknown fault: " << name << "\nknown faults:";
    for (const auto f : bist::fault_catalogue())
        std::cerr << ' ' << bist::to_string(f);
    std::cerr << '\n';
    std::exit(2);
}

void usage() {
    std::cout <<
        "usage: campaign_runner [options]\n"
        "  --presets a,b,c   presets to grade (default: whole catalogue)\n"
        "  --faults a,b      faults to inject (default: whole catalogue)\n"
        "  --trials N        Monte-Carlo trials per cell (default 1)\n"
        "  --threads N       worker threads (default: hardware)\n"
        "  --seed S          campaign master seed\n"
        "  --jitter-sigma X  log-normal per-trial jitter spread\n"
        "  --dcde-sigma-ps X gaussian per-trial DCDE static-error spread\n"
        "  --backend NAME    force the SIMD kernel backend (scalar, avx2,\n"
        "                    neon; default: best the CPU supports, or the\n"
        "                    SDRBIST_FORCE_BACKEND environment variable)\n"
        "  --shard i/N       grade only shard i of N (grid index mod N);\n"
        "                    shards sharing --cache-dir merge via a final\n"
        "                    unsharded run that reads everything from cache\n"
        "  --cache-dir PATH  scenario result cache: rerunning an\n"
        "                    overlapping grid skips graded scenarios\n"
        "  --json PATH       write the full campaign JSON\n"
        "  --csv PATH        write the coverage-matrix CSV\n"
        "  --scenarios PATH  write the per-scenario CSV\n"
        "  --jsonl PATH      stream per-scenario JSONL rows as they\n"
        "                    complete (grid-order-restored on exit)\n"
        "  --help            this text\n";
}

/// Parse "i/N" into a shard_spec; exits with a usage error when malformed.
campaign::shard_spec parse_shard(const std::string& text) {
    const auto slash = text.find('/');
    if (slash != std::string::npos) {
        campaign::shard_spec shard;
        shard.index = parse_count("--shard", text.substr(0, slash));
        shard.count = parse_count("--shard", text.substr(slash + 1));
        if (shard.count >= 1 && shard.index < shard.count)
            return shard;
    }
    std::cerr << "--shard needs i/N with 0 <= i < N, got '" << text << "'\n";
    std::exit(2);
}

int run_cli(int argc, char** argv);

} // namespace

int main(int argc, char** argv) {
    try {
        return run_cli(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}

namespace {

int run_cli(int argc, char** argv) {
    campaign::campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2; // PA-health floor so gain faults count

    std::string json_path, csv_path, scenarios_path, jsonl_path;
    std::vector<std::string> preset_names, fault_names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--presets") {
            preset_names = split_csv_list(value());
        } else if (arg == "--faults") {
            fault_names = split_csv_list(value());
        } else if (arg == "--trials") {
            cfg.trials = parse_count(arg, value());
        } else if (arg == "--threads") {
            cfg.threads = parse_count(arg, value());
        } else if (arg == "--seed") {
            cfg.seed = parse_count(arg, value(), 0);
        } else if (arg == "--jitter-sigma") {
            cfg.perturb.jitter_rel_sigma = parse_double(arg, value());
        } else if (arg == "--dcde-sigma-ps") {
            cfg.perturb.dcde_static_sigma_s = parse_double(arg, value()) * ps;
        } else if (arg == "--backend") {
            // Force before any engine object captures the dispatched table;
            // unknown/unsupported names throw (caught in main, exit 2).
            simd::kernel_backend::force(value());
        } else if (arg == "--shard") {
            cfg.shard = parse_shard(value());
        } else if (arg == "--cache-dir") {
            cfg.cache_dir = value();
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--csv") {
            csv_path = value();
        } else if (arg == "--scenarios") {
            scenarios_path = value();
        } else if (arg == "--jsonl") {
            jsonl_path = value();
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }

    if (!preset_names.empty()) {
        cfg.presets.clear();
        for (const auto& name : preset_names)
            cfg.presets.push_back(waveform::find_preset(name));
    }
    if (!fault_names.empty()) {
        cfg.faults.clear();
        for (const auto& name : fault_names)
            cfg.faults.push_back(fault_by_name(name));
    }

    const std::size_t scenario_count =
        cfg.presets.size() * cfg.faults.size() * cfg.trials;
    std::cout << "campaign: " << cfg.presets.size() << " presets x "
              << cfg.faults.size() << " faults x " << cfg.trials
              << " trials = " << scenario_count << " scenarios"
              << "  [backend " << simd::kernel_backend::select().name << "]";
    if (cfg.shard.count > 1)
        std::cout << "  (shard " << cfg.shard.index << "/" << cfg.shard.count
                  << ")";
    std::cout << "\n\n";

    std::unique_ptr<campaign::jsonl_stream> jsonl;
    campaign::run_hooks hooks;
    if (!jsonl_path.empty()) {
        jsonl = std::make_unique<campaign::jsonl_stream>(jsonl_path);
        hooks.on_scenario = [&](const campaign::scenario_result& r) {
            jsonl->append(r);
        };
    }

    const campaign::campaign_runner runner(cfg);
    const auto result = runner.run(hooks);
    if (jsonl) {
        jsonl->finalise();
        std::cout << "wrote " << jsonl_path << " (" << jsonl->rows()
                  << " rows, streamed)\n";
    }

    campaign::coverage_table(result).print(std::cout);
    std::cout << "\nyield (golden pass rate):  "
              << text_table::num(100.0 * result.yield(), 1) << " %  ("
              << result.golden_passes << "/" << result.golden_runs << ")\n"
              << "fault coverage:            "
              << text_table::num(100.0 * result.coverage(), 1) << " %  ("
              << result.fault_detected << "/" << result.fault_runs << ")\n"
              << "escape rate:               "
              << text_table::num(100.0 * result.escape_rate(), 1) << " %\n"
              << "threads:                   " << result.threads_used << "\n"
              << "wall time:                 "
              << text_table::num(result.wall_s, 2) << " s  ("
              << text_table::num(result.scenarios_per_second(), 2)
              << " scenarios/s)\n";
    if (result.shard_count > 1)
        std::cout << "shard:                     " << result.shard_index
                  << "/" << result.shard_count << "  ("
                  << result.results.size() << " of " << result.grid_size
                  << " scenarios)\n";
    if (!cfg.cache_dir.empty())
        // Format relied upon by CI (warm-run assertion greps this line).
        std::cout << "cache:                     " << result.cache_hits
                  << " hits, " << result.cache_misses << " misses\n";

    bool engine_errors = false;
    for (const auto& r : result.results)
        if (r.engine_error) {
            engine_errors = true;
            std::cerr << "engine error in scenario " << r.sc.index << " ("
                      << r.sc.preset_name << ", "
                      << bist::to_string(r.sc.fault) << "): " << r.error
                      << "\n";
        }

    auto write_file = [](const std::string& path, const std::string& body) {
        std::ofstream out(path, std::ios::binary);
        out << body;
        out.flush();
        if (!out.good()) {
            std::cerr << "cannot write " << path << "\n";
            std::exit(1);
        }
        std::cout << "wrote " << path << "\n";
    };
    if (!json_path.empty())
        write_file(json_path, campaign::to_json(result));
    if (!csv_path.empty())
        write_file(csv_path, campaign::coverage_csv(result));
    if (!scenarios_path.empty())
        write_file(scenarios_path, campaign::scenarios_csv(result));

    return engine_errors ? 1 : 0;
}

} // namespace

/// \file loopback_fault_masking.cpp
/// \brief Reproduces the paper's argument against loopback BIST (§I):
///        "a (non-catastrophic) failure of the Tx is covered up by an
///        exceptionally good Rx, or the inverse. A marginal product could
///        then go undetected (test escapes)."
///
/// Scenario: a transmitter with a quadrature-imbalance fault is tested two
/// ways —
///   1. conventional Tx->Rx loopback, where the receiver happens to have a
///      complementary imbalance that *cancels* the fault; and
///   2. the paper's PA-output BIST (BP-TIADC + PNBS + LMS), which observes
///      the transmitted signal itself.
/// The loopback passes the faulty device; the nonuniform-sampling BIST
/// catches it.
#include <iostream>

#include "bist/engine.hpp"
#include "bist/faults.hpp"
#include "bist/loopback.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

int main() {
    using namespace sdrbist;

    // The marginal transmitter: IQ imbalance fault (1.5 dB / 8 degrees).
    const auto faulty_tx =
        bist::inject_fault(rf::tx_config{}, bist::fault_kind::iq_imbalance);

    // The "exceptionally good" (for this device!) receiver: a quadrature
    // error that happens to be complementary to the Tx fault.
    rf::rx_config masking_rx;
    masking_rx.imbalance.gain_db = -faulty_tx.imbalance.gain_db;
    masking_rx.imbalance.phase_deg = -faulty_tx.imbalance.phase_deg;

    rf::rx_config nominal_rx; // an ideal-quadrature receiver for reference

    text_table table({"test strategy", "EVM [%]", "verdict"});

    // 1a. Loopback with the masking receiver.
    {
        bist::loopback_config cfg;
        cfg.tx = faulty_tx;
        cfg.rx = masking_rx;
        const auto r = bist::run_loopback_bist(cfg);
        table.add_row({"loopback (complementary Rx)",
                       text_table::num(r.evm.evm_percent(), 2),
                       r.pass() ? "PASS  <- test escape!" : "FAIL"});
    }
    // 1b. Loopback with a nominal receiver (what the test *hopes* to see).
    {
        bist::loopback_config cfg;
        cfg.tx = faulty_tx;
        cfg.rx = nominal_rx;
        const auto r = bist::run_loopback_bist(cfg);
        table.add_row({"loopback (nominal Rx)",
                       text_table::num(r.evm.evm_percent(), 2),
                       r.pass() ? "PASS" : "FAIL"});
    }
    // 2. The paper's PA-output BIST on the same faulty transmitter.
    {
        bist::bist_config cfg;
        cfg.tiadc.quant.full_scale = 2.0;
        cfg.tx = faulty_tx;
        const bist::bist_engine engine(cfg);
        const auto r = engine.run();
        table.add_row({"PA-output BIST (this paper)",
                       text_table::num(r.evm.evm_percent(), 2),
                       r.pass() ? "PASS" : "FAIL  <- fault caught"});
    }

    std::cout << "Fault masking in loopback BIST (paper §I)\n"
              << "device under test: Tx with IQ imbalance "
              << faulty_tx.imbalance.gain_db << " dB / "
              << faulty_tx.imbalance.phase_deg << " deg\n\n";
    table.print(std::cout);
    std::cout << "\nthe loopback EVM through the complementary receiver "
                 "hides the Tx fault; sampling the PA output directly "
                 "cannot be fooled by the receive path\n";
    return 0;
}

/// \file spectral_mask_bist.cpp
/// \brief Production-test scenario: run the BIST against a golden device
///        and against each catalogued transmitter fault, and show which
///        faults the spectral-mask + EVM verdict catches.
///
/// This is the deployment the paper's introduction motivates: post-
/// manufacture compliance screening of SDR transmitters without external
/// instrumentation.
#include <iostream>

#include "bist/engine.hpp"
#include "bist/faults.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

int main() {
    using namespace sdrbist;

    std::cout << "Spectral-mask BIST — golden device vs injected faults\n"
              << "(paper-configuration capture: 2 x 10-bit @ 90 MHz, "
                 "3 ps jitter, D = 180 ps)\n\n";

    text_table table({"device", "skew err [ps]", "worst mask margin [dB]",
                      "EVM [%]", "out RMS [V]", "verdict"});

    bool golden_passed = false;
    for (const auto fault : bist::fault_catalogue()) {
        bist::bist_config config;
        config.tiadc.quant.full_scale = 2.0;
        // The production limit: the golden PA tap delivers ~2 V rms into
        // the capture path; accept no less than 60 % of that.
        config.min_output_rms = 1.2;
        config.tx = bist::inject_fault(config.tx, fault);
        const bist::bist_engine engine(config);
        const auto [report, art] = engine.run_verbose();

        const double err =
            std::abs(report.skew.d_hat - art.capture.fast.true_delay_s);
        table.add_row({bist::to_string(fault), text_table::num(err / ps, 2),
                       text_table::num(report.mask.worst_margin_db, 1),
                       text_table::num(report.evm.evm_percent(), 2),
                       text_table::num(report.measured_output_rms, 2),
                       report.pass() ? "PASS" : "FAIL"});
        if (fault == bist::fault_kind::none)
            golden_passed = report.pass();
    }
    table.print(std::cout);

    std::cout << "\nexpected: the golden device passes; PA overdrive and "
                 "filter faults trip the mask, modulator faults trip the "
                 "EVM limit, the PA gain drop trips the power floor\n";
    return golden_passed ? 0 : 1;
}

/// \file pbs_planning.cpp
/// \brief Sampling-plan explorer: for a user-specified band, compare
///        first-order (uniform) bandpass sampling — with its fragile
///        alias-free windows — against the paper's second-order nonuniform
///        scheme, which works at fs = B per channel for any band position.
///
/// Usage: pbs_planning [centre_MHz] [bandwidth_MHz]
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "sampling/pbs.hpp"
#include "sampling/pnbs.hpp"

int main(int argc, char** argv) {
    using namespace sdrbist;
    using namespace sdrbist::sampling;

    const double centre =
        (argc > 1 ? std::atof(argv[1]) : 1000.0) * MHz;
    const double width = (argc > 2 ? std::atof(argv[2]) : 90.0) * MHz;
    const band_spec band = band_around(centre, width);

    std::cout << "Sampling plan for band [" << band.f_lo / MHz << ", "
              << band.f_hi / MHz << "] MHz (fH/B = "
              << band.position_ratio() << ")\n\n";

    std::cout << "Option 1 — first-order PBS (uniform):\n";
    const double fs_min = min_alias_free_rate(band);
    std::cout << "  minimum alias-free rate: " << fs_min / MHz
              << " MHz (theoretical floor 2B = " << 2.0 * width / MHz
              << " MHz)\n";
    const auto windows =
        alias_free_windows(band, 2.0 * width * 0.95, 4.0 * width);
    text_table table({"n", "fs min [MHz]", "fs max [MHz]",
                      "clock tolerance [±kHz]"});
    for (const auto& w : windows)
        table.add_row({std::to_string(w.n),
                       text_table::num(w.rates.lo / MHz, 3),
                       std::isinf(w.rates.hi)
                           ? std::string("inf")
                           : text_table::num(w.rates.hi / MHz, 3),
                       std::isinf(w.rates.hi)
                           ? std::string("-")
                           : text_table::num(w.rates.width() / 2.0 / kHz, 1)});
    table.print(std::cout);

    std::cout << "\nOption 2 — second-order PNBS (the paper's BIST):\n";
    std::cout << "  two channels at fs = B = " << width / MHz
              << " MHz each, any band position\n";
    std::cout << "  optimal delay D = 1/(4 fc) = "
              << kohlenberg_kernel::optimal_delay(band) / ps << " ps\n";
    const auto forbidden =
        kohlenberg_kernel::forbidden_delays(band, 1.0 / width);
    std::cout << "  forbidden delays below T: ";
    for (std::size_t i = 0; i < std::min<std::size_t>(4, forbidden.size());
         ++i)
        std::cout << forbidden[i] / ps << " ps  ";
    std::cout << "...\n";
    std::cout << "  skew accuracy for 1 % reconstruction error: "
              << kohlenberg_kernel::required_delay_accuracy(band, 0.01) / ps
              << " ps (eq. (4))\n";
    return 0;
}

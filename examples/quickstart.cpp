/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the library: generate the paper's QPSK
///        stimulus, run it through the behavioural homodyne transmitter,
///        capture the PA output with the nonuniform BP-TIADC, identify the
///        time-skew with the LMS algorithm and print the BIST verdict.
///
/// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "bist/engine.hpp"
#include "core/units.hpp"

int main() {
    using namespace sdrbist;

    std::cout << "sdrbist quickstart — paper configuration\n"
              << "  stimulus : 10 MHz QPSK, SRRC alpha = 0.5\n"
              << "  carrier  : 1 GHz\n"
              << "  BP-TIADC : 2 x 10-bit @ 90 MHz, 3 ps rms jitter\n"
              << "  DCDE     : programmed to 180 ps\n\n";

    // The default bist_config is exactly the paper's evaluation setup.
    bist::bist_config config;
    config.tiadc.quant.full_scale = 2.0; // generous headroom for the PA gain
    const bist::bist_engine engine(config);

    const auto [report, artifacts] = engine.run_verbose();

    std::cout << report.summary() << "\n";

    std::cout << "details:\n";
    std::cout << "  true DCDE delay (hidden from estimator): "
              << artifacts.capture.fast.true_delay_s / ps << " ps\n";
    std::cout << "  estimated delay:                         "
              << report.skew.d_hat / ps << " ps\n";
    std::cout << "  |error|: "
              << std::abs(report.skew.d_hat -
                          artifacts.capture.fast.true_delay_s) /
                     ps
              << " ps\n";
    std::cout << "  LMS cost evaluations: " << report.skew.cost_evaluations
              << "\n";
    std::cout << "  reconstructed envelope samples: "
              << artifacts.envelope.samples.size() << " @ "
              << artifacts.envelope.rate / MHz << " MHz\n";

    return report.pass() ? 0 : 1;
}

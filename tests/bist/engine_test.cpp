// BIST engine tests on the paper configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "bist/engine.hpp"
#include "core/contracts.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::bist;

bist_config golden_config() {
    bist_config cfg;
    cfg.tiadc.quant.full_scale = 2.0;
    return cfg;
}

TEST(BistEngine, GoldenDevicePasses) {
    const bist_engine engine(golden_config());
    const auto [report, art] = engine.run_verbose();
    EXPECT_TRUE(report.pass()) << report.summary();
    EXPECT_TRUE(report.dual_rate_conditions_ok);
    EXPECT_TRUE(report.skew.converged);
    EXPECT_TRUE(report.mask.pass);
    EXPECT_TRUE(report.evm_pass);
    // Paper-grade skew accuracy on the full chain.
    EXPECT_NEAR(report.skew.d_hat, art.capture.fast.true_delay_s, 1.0 * ps);
    EXPECT_LT(report.evm.evm_percent(), 2.0);
}

TEST(BistEngine, ReportCarriesPaperGeometry) {
    const bist_engine engine(golden_config());
    const auto report = engine.run();
    EXPECT_NEAR(report.max_search_delay_s, 483.0 * ps, 1.0 * ps);
    EXPECT_DOUBLE_EQ(report.carrier_hz, 1.0 * GHz);
    EXPECT_DOUBLE_EQ(report.carrier_nudge_hz, 0.0); // 1 GHz is well-placed
    EXPECT_NEAR(report.fast_band_offset_hz, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(report.programmed_delay_s, 180.0 * ps);
    EXPECT_GT(report.plan_discrimination, 1e-2);
}

TEST(BistEngine, DeterministicAcrossRuns) {
    const bist_engine engine(golden_config());
    const auto a = engine.run();
    const auto b = engine.run();
    EXPECT_DOUBLE_EQ(a.skew.d_hat, b.skew.d_hat);
    EXPECT_DOUBLE_EQ(a.evm.evm_rms, b.evm.evm_rms);
    EXPECT_DOUBLE_EQ(a.mask.worst_margin_db, b.mask.worst_margin_db);
}

TEST(BistEngine, StrictMaskFailsTheSameDevice) {
    auto cfg = golden_config();
    cfg.preset.mask = waveform::make_strict_mask(10.0 * MHz, 0.5);
    const bist_engine engine(cfg);
    const auto report = engine.run();
    // The strict far floor (-60 dBc) sits below the jitter measurement
    // floor: the same golden hardware now fails — masks must respect the
    // instrument (see relax_to_measurement_floor).
    EXPECT_FALSE(report.mask.pass);
}

TEST(BistEngine, PowerFloorVerdict) {
    auto cfg = golden_config();
    cfg.min_output_rms = 1e9; // impossible requirement
    const bist_engine engine(cfg);
    const auto report = engine.run();
    EXPECT_FALSE(report.power_pass);
    EXPECT_FALSE(report.pass());
    EXPECT_GT(report.measured_output_rms, 0.0);
}

TEST(BistEngine, DcdeStaticErrorIsEstimatedNotAssumed) {
    // A DCDE whose true delay differs from the programmed value by a
    // static error: the report's estimate must track the *true* delay.
    auto cfg = golden_config();
    cfg.tiadc.delay_element.static_error_s = 12.0 * ps;
    const bist_engine engine(cfg);
    const auto [report, art] = engine.run_verbose();
    EXPECT_NEAR(art.capture.fast.true_delay_s, 192.0 * ps, 0.1 * ps);
    EXPECT_NEAR(report.skew.d_hat, 192.0 * ps, 1.5 * ps);
    EXPECT_TRUE(report.pass()) << report.summary();
}

TEST(BistEngine, D0HintIsHonoured) {
    auto cfg = golden_config();
    cfg.d0_hint_s = 100.0 * ps;
    const bist_engine engine(cfg);
    const auto report = engine.run();
    EXPECT_NEAR(report.skew.d_hat, 180.0 * ps, 1.5 * ps);
}

TEST(BistEngine, AcprAndObwReported) {
    const bist_engine engine(golden_config());
    const auto report = engine.run();
    // 99 % OBW of a 10 MHz SRRC alpha = 0.5 waveform: ~11-13 MHz.
    EXPECT_GT(report.occupied_bw_hz, 9.0 * MHz);
    EXPECT_LT(report.occupied_bw_hz, 14.0 * MHz);
    // Golden ACPR well below the -30 dBc default limit.
    EXPECT_LT(report.acpr.worst_dbc(), -35.0);
    EXPECT_TRUE(report.acpr_pass);
    // An impossible ACPR limit flips the verdict.
    auto cfg = golden_config();
    cfg.acpr_limit_dbc = -90.0;
    const auto strict = bist_engine(cfg).run();
    EXPECT_FALSE(strict.acpr_pass);
    EXPECT_FALSE(strict.pass());
}

TEST(BistEngine, SummaryMentionsAllVerdicts) {
    auto cfg = golden_config();
    cfg.min_output_rms = 0.5;
    const bist_engine engine(cfg);
    const auto report = engine.run();
    const auto s = report.summary();
    EXPECT_NE(s.find("time-skew"), std::string::npos);
    EXPECT_NE(s.find("spectral mask"), std::string::npos);
    EXPECT_NE(s.find("EVM"), std::string::npos);
    EXPECT_NE(s.find("output power"), std::string::npos);
    EXPECT_NE(s.find("verdict"), std::string::npos);
}

TEST(BistEngine, Preconditions) {
    auto cfg = golden_config();
    cfg.fast_samples = 16;
    EXPECT_THROW(bist_engine{cfg}, contract_violation);
    cfg = golden_config();
    cfg.slow_divider = 1;
    EXPECT_THROW(bist_engine{cfg}, contract_violation);
    cfg = golden_config();
    cfg.probe_count = 4;
    EXPECT_THROW(bist_engine{cfg}, contract_violation);
}

} // namespace

// Loopback BIST baseline and the fault-masking escape (paper §I).
#include <gtest/gtest.h>

#include "bist/faults.hpp"
#include "bist/loopback.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::bist;

TEST(LoopbackBist, GoldenDevicePasses) {
    loopback_config cfg;
    const auto r = run_loopback_bist(cfg);
    EXPECT_TRUE(r.pass());
    EXPECT_LT(r.evm.evm_percent(), 2.0);
}

TEST(LoopbackBist, CatchesTxFaultWithNominalRx) {
    loopback_config cfg;
    cfg.tx = inject_fault(cfg.tx, fault_kind::iq_imbalance);
    const auto r = run_loopback_bist(cfg);
    EXPECT_FALSE(r.pass());
    EXPECT_GT(r.evm.evm_percent(), 8.0);
}

TEST(LoopbackBist, FaultMaskingEscape) {
    // The paper's critique: a complementary Rx hides the Tx fault and the
    // marginal device escapes the loopback test.
    loopback_config cfg;
    cfg.tx = inject_fault(cfg.tx, fault_kind::iq_imbalance);
    cfg.rx.imbalance.gain_db = -cfg.tx.imbalance.gain_db;
    cfg.rx.imbalance.phase_deg = -cfg.tx.imbalance.phase_deg;
    const auto r = run_loopback_bist(cfg);
    EXPECT_TRUE(r.pass()) << "EVM " << r.evm.evm_percent();
    EXPECT_LT(r.evm.evm_percent(), 4.0);
}

TEST(LoopbackBist, RxFaultAloneAlsoFails) {
    // The inverse masking direction: a bad Rx with a good Tx fails the
    // loopback — but in production that failure would be (mis)attributed
    // to the pair, not diagnosed.
    loopback_config cfg;
    cfg.rx.imbalance = {2.0, 10.0};
    const auto r = run_loopback_bist(cfg);
    EXPECT_FALSE(r.pass());
}

TEST(LoopbackBist, AttenuationDoesNotChangeVerdict) {
    // EVM is gain-normalised: coupler loss alone must not fail the test.
    loopback_config cfg;
    cfg.loopback_gain_db = -50.0;
    const auto r = run_loopback_bist(cfg);
    EXPECT_TRUE(r.pass());
}

} // namespace

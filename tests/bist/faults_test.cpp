// Fault-injection catalogue sanity.
#include <gtest/gtest.h>

#include "bist/faults.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::bist;

TEST(Faults, NoneLeavesConfigUntouched) {
    rf::tx_config golden;
    const auto same = inject_fault(golden, fault_kind::none);
    EXPECT_DOUBLE_EQ(same.pa_backoff_db, golden.pa_backoff_db);
    EXPECT_DOUBLE_EQ(same.imbalance.gain_db, golden.imbalance.gain_db);
}

TEST(Faults, EachFaultChangesTheIntendedKnob) {
    rf::tx_config golden;
    EXPECT_LT(inject_fault(golden, fault_kind::pa_overdrive).pa_backoff_db,
              golden.pa_backoff_db);
    EXPECT_LT(inject_fault(golden, fault_kind::pa_gain_drop).pa_gain_db,
              golden.pa_gain_db);
    EXPECT_GT(inject_fault(golden, fault_kind::iq_imbalance)
                  .imbalance.phase_deg,
              0.0);
    EXPECT_GT(inject_fault(golden, fault_kind::lo_leakage).leakage.level_dbc,
              golden.leakage.level_dbc);
    EXPECT_GT(inject_fault(golden, fault_kind::excessive_phase_noise)
                  .lo_phase_noise.linewidth_hz,
              0.0);
    EXPECT_GT(inject_fault(golden, fault_kind::filter_detune)
                  .recon_filter_cutoff_hz,
              0.0);
}

TEST(Faults, CatalogueCoversAllKindsWithUniqueNames) {
    const auto cat = fault_catalogue();
    EXPECT_EQ(cat.size(), 7u);
    std::vector<std::string> names;
    for (auto f : cat)
        names.push_back(to_string(f));
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

} // namespace

// Staged-pipeline lockdown.
//
// 1. Equivalence: `monolithic_run_verbose` below is a verbatim copy of the
//    pre-pipeline `bist_engine::run_verbose` (PR 4 state).  Every staged
//    run must reproduce its report *bit-for-bit* (compared through the
//    full-fidelity campaign::report_json serialisation, which renders
//    doubles in shortest round-trip form) and its artefact records
//    element-exact.  This is the same retained-reference idiom the fast
//    kernels use (`at_reference`, `value_reference`).
// 2. Session mechanics: run_until/resume, reconfigure-keeps-upstream,
//    adopt (shared-stage reuse), and the per-stage digest slicing the
//    campaign runner's stage pool relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "bist/config_canonical.hpp"
#include "bist/faults.hpp"
#include "bist/pipeline.hpp"
#include "campaign/cache.hpp"
#include "core/contracts.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "dsp/biquad.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::bist;

// ---------------------------------------------------------------------------
// Retained monolithic reference (pre-pipeline bist_engine::run_verbose).
// Do not "improve" this copy: its whole value is staying frozen.
// ---------------------------------------------------------------------------

double occupied_bandwidth_ref(const waveform::generator_config& g) {
    return g.symbol_rate * (1.0 + g.rolloff);
}

std::pair<bist_report, bist_artifacts>
monolithic_run_verbose(const bist_config& config) {
    bist_report report;
    bist_artifacts art;

    const double nominal_carrier = config.preset.default_carrier_hz;
    const double b = config.tiadc.channel_rate_hz;
    const double b1 = b / static_cast<double>(config.slow_divider);

    report.preset_name = config.preset.name;
    report.evm_limit_percent = config.evm_limit_percent;

    art.stimulus = waveform::generate_baseband(config.preset.stimulus);
    waveform::generator_config cal_cfg = config.use_calibration_stimulus
                                             ? config.calibration_stimulus
                                             : config.preset.stimulus;
    if (config.use_calibration_stimulus &&
        (occupied_bandwidth_ref(cal_cfg) > 0.75 * b1))
        cal_cfg.symbol_rate = 0.22 * b1 / (1.0 + cal_cfg.rolloff) * 1.5;
    art.calibration = waveform::generate_baseband(cal_cfg);

    const double occ_cal = occupied_bandwidth_ref(cal_cfg);
    const double occ_graded = occupied_bandwidth_ref(config.preset.stimulus);
    const double occ_max = std::max(occ_cal, occ_graded);
    constexpr double disc_threshold = 1e-2;
    calib::band_plan plan{};
    double carrier = nominal_carrier;
    {
        double best_disc = -1.0;
        calib::band_plan best_plan{};
        double best_carrier = nominal_carrier;
        for (const double frac :
             {0.0, 0.25, -0.25, 0.125, -0.125, 0.375, -0.375}) {
            const double cand_carrier = nominal_carrier + frac * b1;
            const auto cand_plan = calib::choose_band_plan(
                cand_carrier, b, b1, occ_cal, occ_max, disc_threshold);
            const double disc = calib::dual_rate_discrimination(
                cand_plan, cand_carrier, occ_cal);
            if (disc > best_disc) {
                best_disc = disc;
                best_plan = cand_plan;
                best_carrier = cand_carrier;
            }
            if (disc >= disc_threshold)
                break;
        }
        plan = best_plan;
        carrier = best_carrier;
        report.plan_discrimination = best_disc;
    }
    report.carrier_hz = carrier;
    report.carrier_nudge_hz = carrier - nominal_carrier;
    report.slow_band_offset_hz = plan.slow_offset_hz;
    report.fast_band_offset_hz = plan.fast_offset_hz;

    rf::tx_config txc = config.tx;
    txc.carrier_hz = carrier;
    const rf::homodyne_tx tx(txc);
    art.tx_out = tx.transmit(art.stimulus);
    art.calibration_tx_out = tx.transmit(art.calibration);

    auto filtered_input = [&](const rf::tx_output& source, double halfwidth) {
        halfwidth = std::min(halfwidth, 0.4 * source.envelope_rate);
        auto bpf = dsp::butterworth_lowpass(config.capture_filter_order,
                                            halfwidth, source.envelope_rate);
        auto filtered = bpf.filter(std::span<const std::complex<double>>(
            source.envelope.data(), source.envelope.size()));
        return std::make_shared<rf::envelope_passband>(
            std::move(filtered), source.envelope_rate, source.carrier_hz);
    };
    {
        const double slow_cover = b1 / 2.0 - std::abs(plan.slow_offset_hz);
        const double narrow = config.capture_filter_halfwidth_hz > 0.0
                                  ? config.capture_filter_halfwidth_hz
                                  : std::min(0.42 * b1, 0.95 * slow_cover);
        const double fast_cover = b / 2.0 - std::abs(plan.fast_offset_hz);
        const double wide = config.spectrum_filter_halfwidth_hz > 0.0
                                ? config.spectrum_filter_halfwidth_hz
                                : 0.9 * fast_cover;
        art.capture_input = filtered_input(art.calibration_tx_out, narrow);
        art.spectrum_input = filtered_input(art.tx_out, wide);
    }

    adc::bp_tiadc sampler(config.tiadc);
    sampler.program_delay(config.dcde_target_delay_s);
    report.programmed_delay_s = config.dcde_target_delay_s;

    const double cal_ramp =
        static_cast<double>(art.calibration.shaper_delay_samples) /
        art.calibration.sample_rate;
    const double cal_t_start =
        config.capture_start_s > 0.0
            ? config.capture_start_s
            : art.capture_input->begin_time() + cal_ramp + 0.1 * us;
    const std::size_t cal_samples = std::max(
        config.fast_samples,
        static_cast<std::size_t>(
            std::ceil(64.0 * b / cal_cfg.symbol_rate)));
    SDRBIST_EXPECTS(cal_t_start + static_cast<double>(cal_samples) / b <
                    art.capture_input->end_time());

    if (config.auto_range)
        art.ranging =
            sampler.auto_range(*art.capture_input, cal_t_start, cal_samples);

    art.capture.fast = sampler.capture(*art.capture_input, cal_t_start,
                                       cal_samples, /*capture*/ 0);
    art.capture.slow = sampler.capture_divided(
        *art.capture_input, cal_t_start, cal_samples / config.slow_divider,
        config.slow_divider,
        /*capture*/ 1);
    art.capture.band_fast = plan.fast;
    art.capture.band_slow = plan.slow;

    report.dual_rate_conditions_ok =
        calib::dual_rate_conditions_ok(art.capture);
    report.max_search_delay_s = calib::max_search_delay(art.capture);
    if (!report.dual_rate_conditions_ok)
        return {report, art};

    const auto [probe_lo, probe_hi] =
        calib::valid_probe_interval(art.capture, config.lms.recon);
    rng probe_gen(config.probe_seed);
    art.probe_times = calib::make_probe_times(probe_gen, config.probe_count,
                                              probe_lo, probe_hi);
    const double d0 = config.d0_hint_s > 0.0
                          ? config.d0_hint_s
                          : 0.5 * report.max_search_delay_s;
    const calib::lms_skew_estimator estimator(config.lms);
    report.skew = estimator.estimate(art.capture, d0, art.probe_times);

    const double spec_ramp =
        static_cast<double>(art.stimulus.shaper_delay_samples) /
        art.stimulus.sample_rate;
    const double spec_t_start =
        config.capture_start_s > 0.0
            ? config.capture_start_s
            : art.spectrum_input->begin_time() + spec_ramp + 0.1 * us;
    const std::size_t spec_samples = std::max(
        config.fast_samples,
        static_cast<std::size_t>(
            std::ceil(80.0 * b / config.preset.stimulus.symbol_rate)));
    SDRBIST_EXPECTS(spec_t_start + static_cast<double>(spec_samples) / b <
                    art.spectrum_input->end_time());

    if (config.auto_range)
        art.spectrum_ranging = sampler.auto_range(*art.spectrum_input,
                                                  spec_t_start, spec_samples);
    art.spectrum_capture = sampler.capture(*art.spectrum_input, spec_t_start,
                                           spec_samples,
                                           /*capture*/ 2);

    const sampling::pnbs_reconstructor recon(
        art.spectrum_capture.even, art.spectrum_capture.odd,
        art.spectrum_capture.period_s, art.spectrum_capture.t_start,
        art.capture.band_fast, report.skew.d_hat, config.lms.recon);
    spectrum_options spec_opt = config.spectrum;
    if (spec_opt.mix_frequency <= 0.0)
        spec_opt.mix_frequency = carrier;
    if (spec_opt.ddc_cutoff_hz <= 0.0) {
        const double mix_shift = std::abs(spec_opt.mix_frequency -
                                          art.capture.band_fast.centre());
        spec_opt.ddc_cutoff_hz =
            std::min(0.55 * b + mix_shift, 4.6 * occ_graded + mix_shift);
    }
    if (spec_opt.envelope_rate_min <= 0.0)
        spec_opt.envelope_rate_min = 2.4 * spec_opt.ddc_cutoff_hz;
    art.envelope = reconstruct_envelope(recon, spec_opt);

    const std::size_t welch_segment =
        config.spectrum.welch_segment > 0
            ? config.spectrum.welch_segment
            : auto_welch_segment(art.envelope.rate, occ_graded,
                                 art.envelope.samples.size());
    const auto psd = envelope_psd(art.envelope, welch_segment);
    report.mask = config.preset.mask.check(psd);

    {
        const double offset =
            config.acpr_offset_hz > 0.0 ? config.acpr_offset_hz
            : config.preset.acpr_offset_hz > 0.0
                ? config.preset.acpr_offset_hz
                : 1.5 * occ_graded;
        report.acpr = waveform::measure_acpr(psd, occ_graded, offset);
        report.acpr_limit_dbc = config.acpr_limit_dbc;
        report.acpr_pass = config.acpr_limit_dbc >= 0.0 ||
                           report.acpr.worst_dbc() <= config.acpr_limit_dbc;
        report.occupied_bw_hz = waveform::occupied_bandwidth(psd, 0.99);
    }

    waveform::evm_options evm_opt;
    evm_opt.envelope_t0 = art.envelope.t0;
    report.evm = waveform::measure_evm(
        std::span<const std::complex<double>>(art.envelope.samples.data(),
                                              art.envelope.samples.size()),
        art.envelope.rate, art.stimulus, evm_opt);
    report.evm_pass = report.evm.evm_percent() <= config.evm_limit_percent;

    {
        const double scale =
            config.auto_range ? art.spectrum_ranging.input_scale : 1.0;
        report.measured_output_rms =
            rms(art.spectrum_capture.even) / scale;
        report.min_output_rms = config.min_output_rms;
        report.power_pass = config.min_output_rms <= 0.0 ||
                            report.measured_output_rms >=
                                config.min_output_rms;
    }

    return {report, art};
}

// ---------------------------------------------------------------------------

bist_config golden_config() {
    bist_config cfg;
    cfg.tiadc.quant.full_scale = 2.0;
    return cfg;
}

/// Configurations spanning the flow's branches: defaults, DCDE static
/// error + d0 hint, an injected fault with power/ACPR limits, manual
/// filter/welch/ranging settings, and a second preset without the
/// dedicated calibration stimulus.
std::vector<std::pair<std::string, bist_config>> equivalence_configs() {
    std::vector<std::pair<std::string, bist_config>> cases;
    cases.emplace_back("golden", golden_config());
    {
        auto cfg = golden_config();
        cfg.tiadc.delay_element.static_error_s = 12.0 * ps;
        cfg.d0_hint_s = 100.0 * ps;
        cases.emplace_back("dcde-static-error", cfg);
    }
    {
        auto cfg = golden_config();
        cfg.tx = inject_fault(cfg.tx, fault_kind::pa_overdrive);
        cfg.min_output_rms = 1.2;
        cfg.acpr_limit_dbc = -25.0;
        cases.emplace_back("pa-overdrive-fault", cfg);
    }
    {
        auto cfg = golden_config();
        cfg.auto_range = false;
        cfg.capture_filter_halfwidth_hz = 18e6;
        cfg.spectrum_filter_halfwidth_hz = 40e6;
        cfg.spectrum.welch_segment = 512;
        cfg.acpr_offset_hz = 20e6;
        cases.emplace_back("manual-knobs", cfg);
    }
    {
        auto cfg = golden_config();
        cfg.preset = waveform::find_preset("tactical-bpsk-2M");
        cfg.use_calibration_stimulus = false;
        cases.emplace_back("bpsk-no-cal-stimulus", cfg);
    }
    return cases;
}

TEST(PipelineEquivalence, StagedRunIsBitIdenticalToMonolith) {
    for (const auto& [name, cfg] : equivalence_configs()) {
        SCOPED_TRACE(name);
        const auto [mono_report, mono_art] = monolithic_run_verbose(cfg);
        const auto [report, art] = bist_engine(cfg).run_verbose();

        // Full report, every double in shortest round-trip form.
        EXPECT_EQ(campaign::report_json(report),
                  campaign::report_json(mono_report));

        // Artefact records element-exact.
        EXPECT_EQ(art.capture.fast.even, mono_art.capture.fast.even);
        EXPECT_EQ(art.capture.fast.odd, mono_art.capture.fast.odd);
        EXPECT_EQ(art.capture.slow.even, mono_art.capture.slow.even);
        EXPECT_EQ(art.capture.slow.odd, mono_art.capture.slow.odd);
        EXPECT_EQ(art.spectrum_capture.even, mono_art.spectrum_capture.even);
        EXPECT_EQ(art.spectrum_capture.odd, mono_art.spectrum_capture.odd);
        EXPECT_EQ(art.probe_times, mono_art.probe_times);
        EXPECT_EQ(art.envelope.samples, mono_art.envelope.samples);
        EXPECT_DOUBLE_EQ(art.envelope.rate, mono_art.envelope.rate);
        EXPECT_EQ(art.ranging.input_scale, mono_art.ranging.input_scale);
        EXPECT_EQ(art.spectrum_ranging.input_scale,
                  mono_art.spectrum_ranging.input_scale);
    }
}

// ---------------------------------------------------------------------------
// Session mechanics
// ---------------------------------------------------------------------------

TEST(PipelineSession, RunUntilStopsAndResumes) {
    bist_session session(golden_config());
    EXPECT_FALSE(session.completed(stage::stimulus));
    EXPECT_THROW(static_cast<void>(session.stimulus()), contract_violation);

    EXPECT_TRUE(session.run_until(stage::calibration));
    EXPECT_TRUE(session.completed(stage::stimulus));
    EXPECT_TRUE(session.completed(stage::tx_capture));
    EXPECT_TRUE(session.completed(stage::calibration));
    EXPECT_FALSE(session.completed(stage::reconstruction));
    EXPECT_FALSE(session.completed(stage::grading));
    EXPECT_THROW(static_cast<void>(session.reconstruction()),
                 contract_violation);
    EXPECT_FALSE(session.halted());

    // The partial report carries exactly the completed stages' fields.
    const auto partial = session.report();
    EXPECT_TRUE(partial.dual_rate_conditions_ok);
    EXPECT_TRUE(partial.skew.converged);
    EXPECT_FALSE(partial.mask.pass); // grading has not run

    // Resuming completes the flow; the result is bit-identical to a fresh
    // one-shot run.
    EXPECT_TRUE(session.run_until(stage::grading));
    const auto one_shot = bist_engine(golden_config()).run();
    EXPECT_EQ(campaign::report_json(session.report()),
              campaign::report_json(one_shot));
}

TEST(PipelineSession, ReconfigureKeepsProvablyUnchangedStages) {
    auto cfg = golden_config();
    bist_session session(cfg);
    session.run();
    const auto stim_before = session.share_stimulus();
    const auto recon_before = session.share_reconstruction();

    // A grading-only change: everything up to reconstruction survives
    // (same objects, not recomputed equals).
    auto graded = cfg;
    graded.evm_limit_percent = 1.0;
    graded.preset.mask = waveform::make_strict_mask(10e6, 0.5);
    session.reconfigure(graded);
    EXPECT_TRUE(session.completed(stage::reconstruction));
    EXPECT_FALSE(session.completed(stage::grading));
    EXPECT_EQ(session.share_stimulus(), stim_before);
    EXPECT_EQ(session.share_reconstruction(), recon_before);

    session.run();
    EXPECT_EQ(campaign::report_json(session.report()),
              campaign::report_json(bist_engine(graded).run()));

    // An upstream change (different Tx seed) keeps only the stimulus.
    auto reseeded = graded;
    reseeded.tx.seed = 0x1234;
    session.reconfigure(reseeded);
    EXPECT_TRUE(session.completed(stage::stimulus));
    EXPECT_FALSE(session.completed(stage::tx_capture));
    EXPECT_EQ(session.share_stimulus(), stim_before);

    session.run();
    EXPECT_EQ(campaign::report_json(session.report()),
              campaign::report_json(bist_engine(reseeded).run()));
}

TEST(PipelineSession, AdoptedPrefixMatchesIsolatedRunBitForBit) {
    auto base = golden_config();
    auto downstream = base;
    downstream.evm_limit_percent = 0.5;
    downstream.acpr_limit_dbc = -60.0;

    // The two configs differ only in grading knobs: every earlier stage's
    // input digest is provably equal.
    for (const stage s : {stage::stimulus, stage::tx_capture,
                          stage::calibration, stage::reconstruction})
        EXPECT_EQ(stage_input_digest(base, s),
                  stage_input_digest(downstream, s));
    EXPECT_NE(stage_input_digest(base, stage::grading),
              stage_input_digest(downstream, stage::grading));

    bist_session donor(base);
    donor.run();

    bist_session adopted(downstream);
    adopted.adopt_stimulus(donor.share_stimulus());
    adopted.adopt_tx_capture(donor.share_tx_capture());
    adopted.adopt_calibration(donor.share_calibration());
    adopted.adopt_reconstruction(donor.share_reconstruction());
    adopted.run();

    EXPECT_EQ(campaign::report_json(adopted.report()),
              campaign::report_json(bist_engine(downstream).run()));
}

TEST(StageDigest, SlicesKeyExactlyTheFieldsEachStageReads) {
    const auto base = golden_config();
    const auto digest = [](const bist_config& c, stage s) {
        return stage_input_digest(c, s);
    };

    {
        // Tx seed: first read by tx_capture.
        auto c = base;
        c.tx.seed ^= 1;
        EXPECT_EQ(digest(c, stage::stimulus), digest(base, stage::stimulus));
        EXPECT_NE(digest(c, stage::tx_capture),
                  digest(base, stage::tx_capture));
    }
    {
        // Probe seed: first read by calibration.
        auto c = base;
        c.probe_seed ^= 1;
        EXPECT_EQ(digest(c, stage::tx_capture),
                  digest(base, stage::tx_capture));
        EXPECT_NE(digest(c, stage::calibration),
                  digest(base, stage::calibration));
        EXPECT_NE(digest(c, stage::grading), digest(base, stage::grading));
    }
    {
        // DDC cutoff: first read by reconstruction.
        auto c = base;
        c.spectrum.ddc_cutoff_hz = 30e6;
        EXPECT_EQ(digest(c, stage::calibration),
                  digest(base, stage::calibration));
        EXPECT_NE(digest(c, stage::reconstruction),
                  digest(base, stage::reconstruction));
    }
    {
        // Mask / EVM limit: grading only.
        auto c = base;
        c.preset.mask = waveform::make_strict_mask(10e6, 0.5);
        c.evm_limit_percent = 1.0;
        EXPECT_EQ(digest(c, stage::reconstruction),
                  digest(base, stage::reconstruction));
        EXPECT_NE(digest(c, stage::grading), digest(base, stage::grading));
    }
    {
        // The preset *name* is presentation, not computation: no digest
        // moves, so renamed-but-identical presets share every stage.
        auto c = base;
        c.preset.name = "renamed";
        for (const stage s : stage_order)
            EXPECT_EQ(digest(c, s), digest(base, s));
    }
    {
        // Jitter (Monte-Carlo device spread) reaches the capture hardware:
        // stimulus is still shared, the Tx capture is not.
        auto c = base;
        c.tiadc.jitter_rms_s *= 1.5;
        EXPECT_EQ(digest(c, stage::stimulus), digest(base, stage::stimulus));
        EXPECT_NE(digest(c, stage::tx_capture),
                  digest(base, stage::tx_capture));
    }
}

TEST(PipelineSession, ConstructorContracts) {
    auto cfg = golden_config();
    cfg.fast_samples = 16;
    EXPECT_THROW(bist_session{cfg}, contract_violation);
    cfg = golden_config();
    cfg.slow_divider = 1;
    EXPECT_THROW(bist_session{cfg}, contract_violation);
    cfg = golden_config();
    cfg.probe_count = 4;
    EXPECT_THROW(bist_session{cfg}, contract_violation);
}

} // namespace

// Spectrum path tests: dense reconstruction -> DDC -> PSD.
#include <gtest/gtest.h>

#include <cmath>

#include "adc/tiadc.hpp"
#include "bist/spectrum.hpp"
#include "core/contracts.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::bist;

TEST(AutoWelchSegment, ScalesWithResolutionNeed) {
    // Wide signal: coarse segments suffice.
    EXPECT_EQ(auto_welch_segment(360.0 * MHz, 15.0 * MHz, 100000), 1024u);
    // Narrow signal: finer bins required.
    EXPECT_GT(auto_welch_segment(360.0 * MHz, 2.7 * MHz, 100000), 4096u);
    // Limited record caps the segment.
    EXPECT_LE(auto_welch_segment(360.0 * MHz, 2.7 * MHz, 2048), 1024u);
    EXPECT_THROW(auto_welch_segment(0.0, 1e6, 4096), contract_violation);
}

TEST(SpectrumPath, ToneReconstructsToOffsetLine) {
    // Capture a pure in-band tone and verify the PSD puts it at the right
    // carrier offset.
    const double fc = 1.0 * GHz;
    const double off = 9.0 * MHz;
    const auto band = sampling::band_around(fc, 90.0 * MHz);
    rf::multitone_signal sig({{fc + off, 0.8, 0.2}}, 30.0 * us);

    adc::tiadc_config tc;
    tc.channel_rate_hz = 90.0 * MHz;
    tc.quant.bits = 12;
    tc.quant.full_scale = 1.2;
    tc.jitter_rms_s = 0.0;
    tc.delay_element.step_s = 1.0 * ps;
    adc::bp_tiadc adc(tc);
    adc.program_delay(180.0 * ps);
    const auto cap = adc.capture(sig, 1.0 * us, 1024, 0);

    const sampling::pnbs_reconstructor recon(cap.even, cap.odd, cap.period_s,
                                             cap.t_start, band,
                                             cap.true_delay_s, {61, 8.0});
    spectrum_options opt;
    const auto env = reconstruct_envelope(recon, opt);
    EXPECT_GT(env.rate, 2.0 * (off + 5.0 * MHz));
    EXPECT_GT(env.samples.size(), 512u);

    const auto psd = envelope_psd(env, 512);
    // Peak within one bin of the expected offset.
    double best_f = 0.0, best_p = 0.0;
    for (std::size_t i = 0; i < psd.frequency.size(); ++i)
        if (psd.density[i] > best_p) {
            best_p = psd.density[i];
            best_f = psd.frequency[i];
        }
    EXPECT_NEAR(best_f, off, env.rate / 512.0 + 1.0);
}

TEST(SpectrumPath, EnvelopePhaseIsAbsoluteTimeReferenced) {
    // For a tone at exactly fc the reconstructed envelope must be a
    // constant phasor carrying the tone's phase.
    const double fc = 1.0 * GHz;
    const double phase = 0.6;
    const auto band = sampling::band_around(fc, 90.0 * MHz);
    rf::multitone_signal sig({{fc, 0.8, phase}}, 30.0 * us);

    adc::tiadc_config tc;
    tc.channel_rate_hz = 90.0 * MHz;
    tc.quant.bits = 14;
    tc.quant.full_scale = 1.2;
    tc.jitter_rms_s = 0.0;
    tc.delay_element.step_s = 1.0 * ps;
    adc::bp_tiadc adc(tc);
    adc.program_delay(180.0 * ps);
    const auto cap = adc.capture(sig, 1.0 * us, 1024, 0);

    const sampling::pnbs_reconstructor recon(cap.even, cap.odd, cap.period_s,
                                             cap.t_start, band,
                                             cap.true_delay_s, {81, 8.0});
    const auto env = reconstruct_envelope(recon, {});
    for (std::size_t m = env.samples.size() / 4;
         m < 3 * env.samples.size() / 4; m += 7) {
        EXPECT_NEAR(std::abs(env.samples[m]), 0.8, 0.02);
        EXPECT_NEAR(std::arg(env.samples[m]), phase, 0.03);
    }
}

TEST(SpectrumPath, MixFrequencyOverride) {
    // Mixing at fc when the band centre is offset re-centres the envelope.
    const double fc = 1.0 * GHz;
    const auto band = sampling::band_around(fc + 4.5 * MHz, 90.0 * MHz);
    rf::multitone_signal sig({{fc, 0.8, 0.0}}, 30.0 * us);

    adc::tiadc_config tc;
    tc.channel_rate_hz = 90.0 * MHz;
    tc.quant.bits = 14;
    tc.quant.full_scale = 1.2;
    tc.jitter_rms_s = 0.0;
    tc.delay_element.step_s = 1.0 * ps;
    adc::bp_tiadc adc(tc);
    adc.program_delay(180.0 * ps);
    const auto cap = adc.capture(sig, 1.0 * us, 1024, 0);

    const sampling::pnbs_reconstructor recon(cap.even, cap.odd, cap.period_s,
                                             cap.t_start, band,
                                             cap.true_delay_s, {81, 8.0});
    spectrum_options opt;
    opt.mix_frequency = fc;
    const auto env = reconstruct_envelope(recon, opt);
    // Tone at fc mixed at fc -> DC phasor.
    for (std::size_t m = env.samples.size() / 4;
         m < 3 * env.samples.size() / 4; m += 11)
        EXPECT_NEAR(std::arg(env.samples[m]), 0.0, 0.05);
}

} // namespace

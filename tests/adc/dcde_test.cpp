// Digitally Controlled Delay Element tests.
#include <gtest/gtest.h>

#include "adc/dcde.hpp"
#include "core/contracts.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::adc;

TEST(Dcde, ProgrammedDelayFollowsCode) {
    dcde d({1.0 * ps, 0, 1023, 0.0, 0.0, 1});
    d.set_code(180);
    EXPECT_DOUBLE_EQ(d.programmed_delay(), 180.0 * ps);
    EXPECT_DOUBLE_EQ(d.actual_delay(), 180.0 * ps); // ideal element
    EXPECT_EQ(d.code(), 180);
}

TEST(Dcde, CodeForRoundsToNearest) {
    dcde d({2.0 * ps, 0, 511, 0.0, 0.0, 1});
    EXPECT_EQ(d.code_for(180.0 * ps), 90);
    EXPECT_EQ(d.code_for(181.0 * ps), 91); // rounds 90.5 up
    EXPECT_EQ(d.code_for(-5.0 * ps), 0);   // clamped
    EXPECT_EQ(d.code_for(1.0 * us), 511);  // clamped
}

TEST(Dcde, StaticErrorShiftsActualDelay) {
    dcde d({1.0 * ps, 0, 1023, 2.5 * ps, 0.0, 1});
    d.set_code(100);
    EXPECT_DOUBLE_EQ(d.programmed_delay(), 100.0 * ps);
    EXPECT_DOUBLE_EQ(d.actual_delay(), 102.5 * ps);
}

TEST(Dcde, InlIsDeterministicPerCode) {
    dcde d({1.0 * ps, 0, 1023, 0.0, 0.5 * ps, 99});
    d.set_code(50);
    const double first = d.actual_delay();
    EXPECT_DOUBLE_EQ(d.actual_delay(), first); // stable on re-read
    d.set_code(51);
    const double next = d.actual_delay();
    d.set_code(50);
    EXPECT_DOUBLE_EQ(d.actual_delay(), first); // same code, same delay
    EXPECT_NE(first, next);
    // INL is bounded plausibly (a few sigma).
    EXPECT_NEAR(first, 50.0 * ps, 3.0 * ps);
}

TEST(Dcde, DifferentInlSeedsDiffer) {
    dcde a({1.0 * ps, 0, 1023, 0.0, 0.5 * ps, 1});
    dcde b({1.0 * ps, 0, 1023, 0.0, 0.5 * ps, 2});
    a.set_code(100);
    b.set_code(100);
    EXPECT_NE(a.actual_delay(), b.actual_delay());
}

TEST(Dcde, Preconditions) {
    EXPECT_THROW(dcde({0.0, 0, 10, 0.0, 0.0, 1}), contract_violation);
    EXPECT_THROW(dcde({1.0 * ps, 10, 5, 0.0, 0.0, 1}), contract_violation);
    dcde d({1.0 * ps, 0, 10, 0.0, 0.0, 1});
    EXPECT_THROW(d.set_code(11), contract_violation);
    EXPECT_THROW(d.set_code(-1), contract_violation);
}

} // namespace

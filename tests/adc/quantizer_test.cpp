// Quantiser behaviour: LSB, clipping, SNR law, channel errors.
#include <gtest/gtest.h>

#include <cmath>

#include "adc/quantizer.hpp"
#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::adc;

TEST(Quantizer, LsbSize) {
    const quantizer q({10, 1.0, 0.0, 0.0});
    EXPECT_NEAR(q.lsb(), 2.0 / 1024.0, 1e-15);
}

TEST(Quantizer, RoundsToCellCentres) {
    const quantizer q({3, 1.0, 0.0, 0.0}); // LSB = 0.25
    EXPECT_NEAR(q.quantize(0.0), 0.125, 1e-12);
    EXPECT_NEAR(q.quantize(0.26), 0.375, 1e-12);
    EXPECT_NEAR(q.quantize(-0.01), -0.125, 1e-12);
    // Quantisation error bounded by LSB/2 inside the range.
    rng gen(3);
    for (int i = 0; i < 500; ++i) {
        const double x = gen.uniform(-0.99, 0.99);
        EXPECT_LE(std::abs(q.quantize(x) - x), 0.125 + 1e-12);
    }
}

TEST(Quantizer, ClipsOutOfRange) {
    const quantizer q({8, 1.0, 0.0, 0.0});
    EXPECT_LE(q.quantize(3.0), 1.0);
    EXPECT_GE(q.quantize(-3.0), -1.0);
    EXPECT_NEAR(q.quantize(-5.0), -1.0 + q.lsb() / 2.0, 1e-12);
}

TEST(Quantizer, SnrFollowsSixDbPerBit) {
    // Full-scale sine through an n-bit quantiser: SNR ≈ 6.02 n + 1.76 dB.
    for (int bits : {6, 8, 10, 12}) {
        const quantizer q({bits, 1.0, 0.0, 0.0});
        const std::size_t n = 65536;
        double sig_p = 0.0, err_p = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            // Irrational frequency avoids hitting the same codes repeatedly.
            const double x =
                0.9999 * std::sin(two_pi * 0.123456789 * static_cast<double>(i));
            const double e = q.quantize(x) - x;
            sig_p += x * x;
            err_p += e * e;
        }
        const double snr = db_from_power(sig_p / err_p);
        EXPECT_NEAR(snr, quantizer::ideal_snr_db(bits), 0.6) << bits;
    }
}

TEST(Quantizer, GainAndOffsetErrorsApplied) {
    const quantizer ideal({12, 1.0, 0.0, 0.0});
    const quantizer off({12, 1.0, 0.0, 0.1});
    const quantizer gain({12, 1.0, 0.05, 0.0});
    EXPECT_NEAR(off.quantize(0.2) - ideal.quantize(0.2), 0.1, 2e-3);
    EXPECT_NEAR(gain.quantize(0.4) - ideal.quantize(0.4), 0.02, 2e-3);
}

TEST(Quantizer, MoreBitsNeverWorse) {
    rng gen(5);
    const auto x = gen.uniform_vector(2000, -0.9, 0.9);
    double prev_err = 1e9;
    for (int bits : {4, 8, 12, 16}) {
        const quantizer q({bits, 1.0, 0.0, 0.0});
        double err = 0.0;
        for (double v : x) {
            const double e = q.quantize(v) - v;
            err += e * e;
        }
        EXPECT_LT(err, prev_err);
        prev_err = err;
    }
}

TEST(Quantizer, Preconditions) {
    EXPECT_THROW(quantizer({0, 1.0, 0.0, 0.0}), contract_violation);
    EXPECT_THROW(quantizer({30, 1.0, 0.0, 0.0}), contract_violation);
    EXPECT_THROW(quantizer({10, -1.0, 0.0, 0.0}), contract_violation);
    EXPECT_THROW(static_cast<void>(quantizer::ideal_snr_db(0)),
                 contract_violation);
}

} // namespace

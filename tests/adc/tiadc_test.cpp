// BP-TIADC capture engine tests.
#include <gtest/gtest.h>

#include <cmath>

#include "adc/tiadc.hpp"
#include "core/contracts.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::adc;

rf::multitone_signal tone_at(double f, double duration) {
    return rf::multitone_signal({{f, 0.8, 0.3}}, duration);
}

tiadc_config ideal_config(int bits = 16, double jitter = 0.0) {
    tiadc_config tc;
    tc.channel_rate_hz = 90.0 * MHz;
    tc.quant.bits = bits;
    tc.quant.full_scale = 1.5;
    tc.jitter_rms_s = jitter;
    tc.delay_element.step_s = 1.0 * ps;
    tc.delay_element.code_max = 1023;
    return tc;
}

TEST(BpTiadc, CapturesIdealSamples) {
    const auto sig = tone_at(1.0 * GHz, 20.0 * us);
    bp_tiadc adc(ideal_config());
    adc.program_delay(180.0 * ps);
    const auto cap = adc.capture(sig, 1.0 * us, 256, 0);
    ASSERT_EQ(cap.even.size(), 256u);
    for (std::size_t k = 0; k < 32; ++k) {
        const double t = 1.0 * us + static_cast<double>(k) * cap.period_s;
        EXPECT_NEAR(cap.even[k], sig.value(t), 1e-4) << k;
        EXPECT_NEAR(cap.odd[k], sig.value(t + 180.0 * ps), 1e-4) << k;
    }
    EXPECT_DOUBLE_EQ(cap.rate(), 90.0 * MHz);
    EXPECT_DOUBLE_EQ(cap.true_delay_s, 180.0 * ps);
}

TEST(BpTiadc, DividedCaptureHalvesRate) {
    const auto sig = tone_at(1.0 * GHz, 20.0 * us);
    bp_tiadc adc(ideal_config());
    adc.program_delay(180.0 * ps);
    const auto cap = adc.capture_divided(sig, 1.0 * us, 128, 2, 1);
    EXPECT_DOUBLE_EQ(cap.rate(), 45.0 * MHz);
    for (std::size_t k = 0; k < 16; ++k) {
        const double t = 1.0 * us + static_cast<double>(k) * cap.period_s;
        EXPECT_NEAR(cap.even[k], sig.value(t), 1e-4);
    }
}

TEST(BpTiadc, DelayProgrammingQuantisedByStep) {
    auto tc = ideal_config();
    tc.delay_element.step_s = 5.0 * ps;
    bp_tiadc adc(tc);
    const int code = adc.program_delay(183.0 * ps);
    EXPECT_EQ(code, 37); // 183/5 rounds to 37
    EXPECT_DOUBLE_EQ(adc.actual_delay(), 185.0 * ps);
}

TEST(BpTiadc, JitterPerturbsSamples) {
    const auto sig = tone_at(1.0 * GHz, 20.0 * us);
    auto clean_cfg = ideal_config(16, 0.0);
    auto jitter_cfg = ideal_config(16, 3.0 * ps);
    bp_tiadc clean(clean_cfg), jittery(jitter_cfg);
    clean.program_delay(180.0 * ps);
    jittery.program_delay(180.0 * ps);
    const auto a = clean.capture(sig, 1.0 * us, 512, 0);
    const auto b = jittery.capture(sig, 1.0 * us, 512, 0);
    // Error rms ~ 2π·fc·σ·A/√2.
    std::vector<double> diff(512);
    for (std::size_t k = 0; k < 512; ++k)
        diff[k] = a.even[k] - b.even[k];
    const double expect = two_pi * 1.0 * GHz * 3.0 * ps * 0.8 / std::sqrt(2.0);
    EXPECT_NEAR(rms(diff), expect, 0.3 * expect);
}

TEST(BpTiadc, ChannelMismatchIsModelled) {
    const auto sig = tone_at(1.0 * GHz, 20.0 * us);
    auto tc = ideal_config();
    tc.ch1_gain_error = 0.1;
    tc.ch1_offset_error = 0.05;
    bp_tiadc adc(tc);
    adc.program_delay(0.0);
    // Note: zero delay keeps both channels sampling (nearly) the same
    // instants so the mismatch shows directly.
    const auto cap = adc.capture(sig, 1.0 * us, 1024, 0);
    EXPECT_NEAR(mean(cap.odd) - mean(cap.even), 0.05, 5e-3);
    const double r0 = rms(cap.even);
    const double r1 = rms(cap.odd);
    EXPECT_NEAR(r1 / r0, 1.1, 0.02);
}

TEST(BpTiadc, InputScaleAttenuates) {
    const auto sig = tone_at(1.0 * GHz, 20.0 * us);
    bp_tiadc adc(ideal_config());
    adc.program_delay(100.0 * ps);
    adc.set_input_scale(0.5);
    const auto cap = adc.capture(sig, 1.0 * us, 256, 0);
    EXPECT_NEAR(max_abs(cap.even), 0.4, 0.02); // 0.8 amplitude × 0.5
}

TEST(BpTiadc, AutoRangeTargetsHeadroom) {
    const auto sig = tone_at(1.0 * GHz, 20.0 * us);
    bp_tiadc adc(ideal_config());
    adc.program_delay(100.0 * ps);
    const auto r = adc.auto_range(sig, 1.0 * us, 256, 0.7);
    EXPECT_NEAR(r.observed_peak, 0.8, 0.02);
    EXPECT_NEAR(r.input_scale, 0.7 * 1.5 / 0.8, 0.05);
    EXPECT_FALSE(r.clipped);
    const auto cap = adc.capture(sig, 1.0 * us, 512, 0);
    EXPECT_NEAR(max_abs(cap.even), 0.7 * 1.5, 0.05);
}

TEST(BpTiadc, CaptureIndexDecorrelatesJitter) {
    const auto sig = tone_at(1.0 * GHz, 20.0 * us);
    bp_tiadc adc(ideal_config(16, 3.0 * ps));
    adc.program_delay(180.0 * ps);
    const auto a = adc.capture(sig, 1.0 * us, 128, 0);
    const auto b = adc.capture(sig, 1.0 * us, 128, 0); // same index
    const auto c = adc.capture(sig, 1.0 * us, 128, 1); // fresh jitter
    EXPECT_EQ(a.even, b.even);
    EXPECT_NE(a.even, c.even);
}

TEST(BpTiadc, Preconditions) {
    auto tc = ideal_config();
    bp_tiadc adc(tc);
    const auto sig = tone_at(1.0 * GHz, 5.0 * us);
    EXPECT_THROW((void)adc.capture(sig, 1.0 * us, 1, 0), contract_violation);
    // Record exceeding the signal span.
    EXPECT_THROW((void)adc.capture(sig, 4.9 * us, 512, 0),
                 contract_violation);
    EXPECT_THROW(adc.set_input_scale(0.0), contract_violation);
    EXPECT_THROW((void)adc.auto_range(sig, 1.0 * us, 4), contract_violation);
}

} // namespace

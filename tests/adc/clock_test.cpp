// Sampling-clock model tests.
#include <gtest/gtest.h>

#include "adc/clock.hpp"
#include "core/contracts.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::adc;

TEST(SamplingClock, NominalEdgesWhenJitterFree) {
    sampling_clock clk({1.0 / (90.0 * MHz), 0.5 * us, 0.0}, 1);
    const auto edges = clk.edges(100);
    for (std::size_t k = 0; k < edges.size(); ++k)
        EXPECT_DOUBLE_EQ(edges[k],
                         0.5 * us + static_cast<double>(k) / (90.0 * MHz));
}

TEST(SamplingClock, JitterHasRequestedRms) {
    const double sigma = 3.0 * ps;
    sampling_clock clk({1.0 / (90.0 * MHz), 0.0, sigma}, 42);
    const auto edges = clk.edges(20000);
    std::vector<double> deviations(edges.size());
    for (std::size_t k = 0; k < edges.size(); ++k)
        deviations[k] = edges[k] - clk.nominal_edge(k);
    EXPECT_NEAR(rms(deviations), sigma, 0.05 * sigma);
    EXPECT_NEAR(mean(deviations), 0.0, 0.1 * sigma);
}

TEST(SamplingClock, DeterministicPerSeed) {
    sampling_clock a({1e-8, 0.0, 1.0 * ps}, 7);
    sampling_clock b({1e-8, 0.0, 1.0 * ps}, 7);
    sampling_clock c({1e-8, 0.0, 1.0 * ps}, 8);
    const auto ea = a.edges(50);
    const auto eb = b.edges(50);
    const auto ec = c.edges(50);
    EXPECT_EQ(ea, eb);
    EXPECT_NE(ea, ec);
}

TEST(SamplingClock, JitterIsIndependentPerEdge) {
    // Successive edge deviations must be (close to) uncorrelated.
    sampling_clock clk({1e-8, 0.0, 5.0 * ps}, 3);
    const auto edges = clk.edges(10000);
    double corr = 0.0, var = 0.0;
    double prev = edges[0] - clk.nominal_edge(0);
    for (std::size_t k = 1; k < edges.size(); ++k) {
        const double d = edges[k] - clk.nominal_edge(k);
        corr += d * prev;
        var += d * d;
        prev = d;
    }
    EXPECT_LT(std::abs(corr / var), 0.05);
}

TEST(SamplingClock, Preconditions) {
    EXPECT_THROW(sampling_clock({0.0, 0.0, 0.0}, 1), contract_violation);
    EXPECT_THROW(sampling_clock({1e-8, 0.0, -1.0}, 1), contract_violation);
}

} // namespace

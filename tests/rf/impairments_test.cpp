// Analog impairment model tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "rf/impairments.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::rf;

cvec test_tone(double f_norm, std::size_t n) {
    cvec x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::polar(1.0, two_pi * f_norm * static_cast<double>(i));
    return x;
}

// Power of the complex exponential at normalised frequency f in x.
double tone_power(const cvec& x, double f_norm) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += x[i] * std::polar(1.0, -two_pi * f_norm *
                                          static_cast<double>(i));
    return std::norm(acc / static_cast<double>(x.size()));
}

TEST(IqImbalance, IdealIsTransparent) {
    const iq_imbalance ideal{0.0, 0.0};
    const auto x = test_tone(0.1, 256);
    const auto y = ideal.apply(x);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_LT(std::abs(y[i] - x[i]), 1e-12);
}

TEST(IqImbalance, CreatesImageAtPredictedLevel) {
    // A positive-frequency tone acquires an image at the negative
    // frequency, suppressed by the image-rejection ratio.
    const iq_imbalance imb{1.0, 5.0};
    const auto x = test_tone(0.1, 4096);
    const auto y = imb.apply(x);
    const double signal = tone_power(y, 0.1);
    const double image = tone_power(y, -0.1);
    EXPECT_NEAR(db_from_power(signal / image), imb.image_rejection_db(), 0.5);
}

TEST(IqImbalance, IrrFormulaSanity) {
    // No imbalance -> infinite IRR (huge number); typical values match
    // textbook: 1 dB / 5 degrees -> ~ 20-25 dB.
    EXPECT_GT((iq_imbalance{0.0, 0.0}).image_rejection_db(), 100.0);
    const double irr = iq_imbalance{1.0, 5.0}.image_rejection_db();
    EXPECT_GT(irr, 18.0);
    EXPECT_LT(irr, 30.0);
    // Worse imbalance, worse IRR.
    EXPECT_LT((iq_imbalance{2.0, 10.0}).image_rejection_db(), irr);
}

TEST(LoLeakage, AddsCarrierAtRequestedLevel) {
    const lo_leakage leak{-20.0, 0.0};
    // A zero-mean tone over whole periods: the added DC is exactly the
    // leakage phasor.
    const auto x = test_tone(0.25, 4096);
    const auto y = leak.apply(x);
    // DC component: mean of y.
    std::complex<double> dc{0.0, 0.0};
    for (const auto& v : y)
        dc += v;
    dc /= static_cast<double>(y.size());
    const double rms_in = envelope_rms(x);
    EXPECT_NEAR(db_from_amplitude(std::abs(dc) / rms_in), -20.0, 0.5);
}

TEST(PhaseNoise, VarianceGrowsLinearly) {
    // Wiener phase noise: var(phi[n]) = 2π·lw·n/fs.
    const phase_noise pn{1.0 * kHz};
    const double fs = 10.0 * MHz;
    const std::size_t n = 20000;
    std::vector<double> end_phases;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        rng gen(seed * 97 + 1);
        const auto traj = pn.trajectory(n, fs, gen);
        end_phases.push_back(traj.back());
    }
    const double expect_var =
        two_pi * 1.0 * kHz / fs * static_cast<double>(n - 1);
    EXPECT_NEAR(variance(end_phases), expect_var, 0.5 * expect_var);
}

TEST(PhaseNoise, PreservesMagnitude) {
    const phase_noise pn{100.0 * kHz};
    rng gen(9);
    const auto x = test_tone(0.05, 512);
    const auto y = pn.apply(x, 10.0 * MHz, gen);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(std::abs(y[i]), std::abs(x[i]), 1e-12);
}

TEST(PhaseNoise, ZeroLinewidthIsIdentity) {
    const phase_noise pn{0.0};
    rng gen(1);
    const auto x = test_tone(0.05, 64);
    const auto y = pn.apply(x, 1.0 * MHz, gen);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(y[i], x[i]);
}

TEST(ThermalNoise, HitsTargetSnr) {
    const thermal_noise nz{20.0};
    rng gen(17);
    const auto x = test_tone(0.07, 8192);
    const auto y = nz.apply(x, gen);
    double noise_p = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        noise_p += std::norm(y[i] - x[i]);
    noise_p /= static_cast<double>(x.size());
    EXPECT_NEAR(db_from_power(1.0 / noise_p), 20.0, 0.5);
}

TEST(EnvelopeRms, KnownValues) {
    cvec x{{3.0, 4.0}, {0.0, 0.0}};
    EXPECT_NEAR(envelope_rms(x), 5.0 / std::sqrt(2.0), 1e-12);
    EXPECT_THROW(envelope_rms(cvec{}), contract_violation);
}

} // namespace

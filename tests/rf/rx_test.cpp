// Homodyne receiver model tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "rf/rx.hpp"
#include "waveform/standard.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::rf;

cvec test_envelope() {
    auto cfg = waveform::paper_qpsk_preset().stimulus;
    cfg.symbol_count = 64;
    return waveform::generate_baseband(cfg).samples;
}

TEST(HomodyneRx, GainChainApplied) {
    rx_config cfg;
    cfg.lna_gain_db = 12.0;
    cfg.noise.snr_db = 200.0; // effectively noiseless
    const homodyne_rx rx(cfg);
    const auto in = test_envelope();
    const auto out = rx.receive(in, 160.0 * MHz, -20.0);
    // Net gain: -20 + 12 = -8 dB (filters are transparent in-band).
    EXPECT_NEAR(db_from_amplitude(envelope_rms(out) / envelope_rms(in)),
                -8.0, 0.5);
}

TEST(HomodyneRx, DeterministicPerSeed) {
    rx_config cfg;
    cfg.lo_phase_noise.linewidth_hz = 5.0 * kHz;
    cfg.noise.snr_db = 40.0;
    const auto in = test_envelope();
    const auto a = homodyne_rx(cfg).receive(in, 160.0 * MHz);
    const auto b = homodyne_rx(cfg).receive(in, 160.0 * MHz);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(HomodyneRx, ImbalanceCreatesImage) {
    rx_config clean;
    clean.noise.snr_db = 200.0;
    rx_config skewed = clean;
    skewed.imbalance = {1.0, 6.0};
    const auto in = test_envelope();
    const auto ref = homodyne_rx(clean).receive(in, 160.0 * MHz);
    const auto img = homodyne_rx(skewed).receive(in, 160.0 * MHz);
    double diff = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i)
        diff += std::norm(img[i] - ref[i]);
    EXPECT_GT(std::sqrt(diff / static_cast<double>(ref.size())), 1e-3);
}

TEST(HomodyneRx, ComplementaryImbalanceCancelsTxFault) {
    // The fault-masking mechanism (paper §I): Rx imbalance approximately
    // inverts a Tx imbalance of opposite sign.
    const iq_imbalance tx_fault{1.5, 8.0};
    rx_config rx_cfg;
    rx_cfg.noise.snr_db = 200.0;
    rx_cfg.imbalance = {-tx_fault.gain_db, -tx_fault.phase_deg};
    const auto in = test_envelope();
    const auto damaged = tx_fault.apply(in);
    const auto recovered =
        homodyne_rx(rx_cfg).receive(damaged, 160.0 * MHz, 0.0);
    // Compare against a plain gain-matched pass-through.
    rx_config plain = rx_cfg;
    plain.imbalance = {};
    const auto reference = homodyne_rx(plain).receive(in, 160.0 * MHz, 0.0);
    double err = 0.0, p = 0.0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        err += std::norm(recovered[i] - reference[i]);
        p += std::norm(reference[i]);
    }
    EXPECT_LT(std::sqrt(err / p), 0.05); // residual < 5 %: fault masked
}

TEST(HomodyneRx, Preconditions) {
    rx_config cfg;
    cfg.filter_order = 0;
    EXPECT_THROW(homodyne_rx{cfg}, contract_violation);
    const homodyne_rx rx{rx_config{}};
    EXPECT_THROW((void)rx.receive({}, 160.0 * MHz), contract_violation);
}

} // namespace

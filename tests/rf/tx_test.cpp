// Homodyne transmitter chain tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "rf/tx.hpp"
#include "waveform/standard.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::rf;

waveform::baseband_waveform stimulus() {
    auto cfg = waveform::paper_qpsk_preset().stimulus;
    cfg.symbol_count = 64;
    return waveform::generate_baseband(cfg);
}

TEST(HomodyneTx, ProducesPassbandOutput) {
    tx_config cfg;
    const homodyne_tx tx(cfg);
    const auto out = tx.transmit(stimulus());
    EXPECT_EQ(out.carrier_hz, cfg.carrier_hz);
    EXPECT_GT(out.envelope_rate, 0.0);
    ASSERT_TRUE(out.passband != nullptr);
    // The passband waveform oscillates at ~the carrier.
    const double t0 = out.passband->begin_time() + 1.0 * us;
    int sign_changes = 0;
    double prev = out.at(t0);
    const double dt = 1.0 / (8.0 * cfg.carrier_hz);
    for (int i = 1; i < 800; ++i) {
        const double v = out.at(t0 + static_cast<double>(i) * dt);
        if ((v > 0) != (prev > 0))
            ++sign_changes;
        prev = v;
    }
    // 800 samples cover 100 carrier cycles -> ~200 zero crossings.
    EXPECT_NEAR(sign_changes, 200, 30);
}

TEST(HomodyneTx, DeterministicInSeed) {
    tx_config cfg;
    cfg.lo_phase_noise.linewidth_hz = 10.0 * kHz;
    const auto bb = stimulus();
    const auto a = homodyne_tx(cfg).transmit(bb);
    const auto b = homodyne_tx(cfg).transmit(bb);
    ASSERT_EQ(a.envelope.size(), b.envelope.size());
    for (std::size_t i = 0; i < a.envelope.size(); ++i)
        EXPECT_EQ(a.envelope[i], b.envelope[i]);
}

TEST(HomodyneTx, PaGainScalesOutput) {
    const auto bb = stimulus();
    tx_config lo;
    lo.pa_gain_db = 14.0;
    tx_config hi = lo;
    hi.pa_gain_db = 20.0;
    const double rms_lo = envelope_rms(homodyne_tx(lo).transmit(bb).envelope);
    const double rms_hi = envelope_rms(homodyne_tx(hi).transmit(bb).envelope);
    // Same backoff from the respective compression points: output scales
    // with the saturation level (= gain here).
    EXPECT_NEAR(db_from_amplitude(rms_hi / rms_lo), 6.0, 1.0);
}

TEST(HomodyneTx, BackoffControlsCompression) {
    const auto bb = stimulus();
    tx_config relaxed;
    relaxed.pa_backoff_db = 14.0;
    tx_config hot = relaxed;
    hot.pa_backoff_db = 1.0;
    // Peak-to-average ratio collapses when the PA compresses.
    auto papr = [&](const tx_config& cfg) {
        const auto out = homodyne_tx(cfg).transmit(bb);
        double peak = 0.0;
        for (const auto& v : out.envelope)
            peak = std::max(peak, std::abs(v));
        return peak / envelope_rms(out.envelope);
    };
    EXPECT_GT(papr(relaxed), papr(hot) * 1.1);
}

TEST(HomodyneTx, ImpairmentsChangeOutput) {
    const auto bb = stimulus();
    tx_config clean;
    const auto ref = homodyne_tx(clean).transmit(bb);

    tx_config imbalanced = clean;
    imbalanced.imbalance = {1.5, 8.0};
    const auto imb = homodyne_tx(imbalanced).transmit(bb);
    double diff = 0.0;
    for (std::size_t i = 0; i < ref.envelope.size(); ++i)
        diff += std::norm(imb.envelope[i] - ref.envelope[i]);
    EXPECT_GT(diff, 1e-3);

    tx_config leaky = clean;
    leaky.leakage.level_dbc = -15.0;
    const auto leak = homodyne_tx(leaky).transmit(bb);
    std::complex<double> dc{0.0, 0.0};
    for (const auto& v : leak.envelope)
        dc += v;
    dc /= static_cast<double>(leak.envelope.size());
    EXPECT_GT(std::abs(dc), 0.01);
}

TEST(HomodyneTx, SalehSelectable) {
    tx_config cfg;
    cfg.pa = pa_kind::saleh;
    cfg.pa_backoff_db = 10.0;
    const auto out = homodyne_tx(cfg).transmit(stimulus());
    EXPECT_GT(envelope_rms(out.envelope), 0.0);
}

TEST(HomodyneTx, DriveScaleRespectsBackoff) {
    tx_config cfg;
    cfg.pa_backoff_db = 8.0;
    const homodyne_tx tx(cfg);
    cvec env(256, {0.5, 0.5}); // rms = sqrt(0.5)
    const double scale = tx.drive_scale(env);
    const auto& pa = dynamic_cast<const rapp_pa&>(tx.amplifier());
    const double target =
        pa.input_compression_point(1.0) * amplitude_from_db(-8.0);
    EXPECT_NEAR(scale * envelope_rms(env), target, 1e-9);
}

TEST(HomodyneTx, RejectsEmptyStimulus) {
    tx_config cfg;
    const homodyne_tx tx(cfg);
    waveform::baseband_waveform empty;
    empty.sample_rate = 1e6;
    EXPECT_THROW((void)tx.transmit(empty), contract_violation);
}

} // namespace

// Passband signal abstraction: multitone exactness and envelope upconversion.
#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hpp"
#include "rf/passband.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::rf;

TEST(Multitone, ExactEvaluation) {
    const multitone_signal sig({{100.0 * MHz, 2.0, 0.3}}, 1.0 * us);
    for (double t : {0.0, 1.0 * ns, 7.77 * ns}) {
        EXPECT_NEAR(sig.value(t), 2.0 * std::cos(two_pi * 100.0 * MHz * t + 0.3),
                    1e-12);
    }
    EXPECT_EQ(sig.tones().size(), 1u);
    EXPECT_DOUBLE_EQ(sig.begin_time(), 0.0);
    EXPECT_DOUBLE_EQ(sig.end_time(), 1.0 * us);
}

TEST(Multitone, SuperpositionOfTones) {
    const multitone_signal sig(
        {{1.0 * GHz, 1.0, 0.0}, {1.01 * GHz, 0.5, 1.0}}, 1.0 * us);
    const double t = 13.1 * ns;
    const double expect = std::cos(two_pi * 1.0 * GHz * t) +
                          0.5 * std::cos(two_pi * 1.01 * GHz * t + 1.0);
    EXPECT_NEAR(sig.value(t), expect, 1e-12);
}

TEST(Multitone, Preconditions) {
    EXPECT_THROW(multitone_signal({}, 1.0), contract_violation);
    EXPECT_THROW(multitone_signal({{0.0, 1.0, 0.0}}, 1.0),
                 contract_violation);
    EXPECT_THROW(multitone_signal({{1e9, 1.0, 0.0}}, -1.0),
                 contract_violation);
}

TEST(EnvelopePassband, ReproducesToneFromEnvelope) {
    // Envelope = complex exponential at f_off -> passband tone at fc + f_off.
    const double fs = 200.0 * MHz;
    const double f_off = 10.0 * MHz;
    const double fc = 1.0 * GHz;
    const std::size_t n = 2048;
    std::vector<std::complex<double>> env(n);
    for (std::size_t i = 0; i < n; ++i)
        env[i] = std::polar(1.0, two_pi * f_off * static_cast<double>(i) / fs);
    const envelope_passband sig(std::move(env), fs, fc);

    for (double t :
         {sig.begin_time() + 0.1 * us, sig.begin_time() + 0.73 * us}) {
        const double expect = std::cos(two_pi * (fc + f_off) * t);
        EXPECT_NEAR(sig.value(t), expect, 2e-4) << "t=" << t;
    }
}

TEST(EnvelopePassband, EnvelopeInterpolationAccuracy) {
    // A smooth (oversampled) envelope is interpolated to ~1e-5.
    const double fs = 160.0 * MHz;
    const double f_mod = 5.0 * MHz; // 32x oversampled
    const std::size_t n = 4096;
    std::vector<std::complex<double>> env(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / fs;
        env[i] = {std::cos(two_pi * f_mod * t), std::sin(two_pi * f_mod * t)};
    }
    const envelope_passband sig(std::move(env), fs, 1.0 * GHz);
    for (double t = sig.begin_time() + 1.0 * us; t < sig.begin_time() + 2.0 * us;
         t += 0.173 * us) {
        const std::complex<double> expect{std::cos(two_pi * f_mod * t),
                                          std::sin(two_pi * f_mod * t)};
        EXPECT_NEAR(std::abs(sig.envelope_at(t) - expect), 0.0, 1e-5);
    }
}

TEST(EnvelopePassband, ValidSpanExcludesEdges) {
    std::vector<std::complex<double>> env(256, {1.0, 0.0});
    const envelope_passband sig(std::move(env), 100.0 * MHz, 1.0 * GHz);
    EXPECT_GT(sig.begin_time(), 0.0);
    EXPECT_LT(sig.end_time(), 256.0 / (100.0 * MHz));
    EXPECT_LT(sig.begin_time(), sig.end_time());
}

} // namespace

// Power-amplifier behavioural model tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::rf;

TEST(LinearPa, GainOnly) {
    const linear_pa pa(20.0);
    const std::complex<double> in{0.1, -0.2};
    EXPECT_LT(std::abs(pa.amplify(in) - 10.0 * in), 1e-12);
    EXPECT_NEAR(pa.small_signal_gain(), 10.0, 1e-12);
}

TEST(RappPa, SmallSignalIsLinear) {
    const rapp_pa pa(20.0, 10.0, 2.0);
    const std::complex<double> tiny{1e-4, 2e-4};
    EXPECT_LT(std::abs(pa.amplify(tiny) - 10.0 * tiny), 1e-6 * std::abs(tiny));
}

TEST(RappPa, SaturatesAtConfiguredLevel) {
    const rapp_pa pa(20.0, 10.0, 2.0);
    for (double r : {5.0, 20.0, 100.0})
        EXPECT_LE(std::abs(pa.amplify({r, 0.0})), 10.0 + 1e-9);
    EXPECT_NEAR(std::abs(pa.amplify({1000.0, 0.0})), 10.0, 0.01);
}

TEST(RappPa, AmAmMonotone) {
    const rapp_pa pa(20.0, 10.0, 2.0);
    double prev = 0.0;
    for (double r = 0.01; r < 10.0; r += 0.01) {
        const double out = std::abs(pa.amplify({r, 0.0}));
        EXPECT_GE(out, prev);
        prev = out;
    }
}

TEST(RappPa, PhasePreserved) {
    // Rapp is AM/AM only: output phase equals input phase.
    const rapp_pa pa(20.0, 10.0, 2.0);
    for (double phi : {0.3, 1.2, -2.0}) {
        const auto out = pa.amplify(std::polar(2.0, phi));
        EXPECT_NEAR(std::arg(out), phi, 1e-12);
    }
}

TEST(RappPa, CompressionPointDefinition) {
    const rapp_pa pa(20.0, 10.0, 2.0);
    const double r1 = pa.input_compression_point(1.0);
    // At the 1 dB point the gain is 1 dB below small-signal.
    const double gain_at =
        std::abs(pa.amplify({r1, 0.0})) / r1;
    EXPECT_NEAR(db_from_amplitude(gain_at / 10.0), -1.0, 0.01);
    // 3 dB point is further out.
    EXPECT_GT(pa.input_compression_point(3.0), r1);
}

TEST(RappPa, SmoothnessControlsKnee) {
    // Higher p = sharper knee = less compression below saturation.
    const rapp_pa soft(20.0, 10.0, 1.0);
    const rapp_pa hard(20.0, 10.0, 8.0);
    const double r = 0.5; // half-way to saturation drive
    EXPECT_LT(std::abs(soft.amplify({r, 0.0})),
              std::abs(hard.amplify({r, 0.0})));
}

TEST(SalehPa, PeakAndRolloff) {
    // Classic Saleh parameters: output peaks at r = 1/sqrt(beta_a).
    const saleh_pa pa(2.1587, 1.1517, 4.0033, 9.1040);
    const double r_peak = 1.0 / std::sqrt(1.1517);
    const double peak = std::abs(pa.amplify({r_peak, 0.0}));
    EXPECT_GT(peak, std::abs(pa.amplify({r_peak / 2.0, 0.0})));
    EXPECT_GT(peak, std::abs(pa.amplify({r_peak * 2.0, 0.0})));
}

TEST(SalehPa, AmPmRotatesPhase) {
    const saleh_pa pa(2.1587, 1.1517, 4.0033, 9.1040);
    const auto out_small = pa.amplify(std::polar(0.05, 0.0));
    const auto out_large = pa.amplify(std::polar(0.8, 0.0));
    EXPECT_LT(std::abs(std::arg(out_small)), 0.02);
    EXPECT_GT(std::arg(out_large), 0.1); // strong AM/PM at high drive
}

TEST(MemoryPolynomial, SingleTapMatchesMemoryless) {
    // One delay tap, linear + cubic term.
    const std::vector<std::vector<std::complex<double>>> coeff{
        {{10.0, 0.0}, {-2.0, 0.0}}};
    const memory_polynomial_pa pa(coeff);
    cvec x{{0.1, 0.0}, {0.0, 0.2}, {-0.15, 0.1}};
    const auto y = pa.process(x);
    for (std::size_t i = 0; i < x.size(); ++i) {
        const auto expect =
            10.0 * x[i] - 2.0 * x[i] * std::norm(x[i]);
        EXPECT_LT(std::abs(y[i] - expect), 1e-12);
        EXPECT_LT(std::abs(pa.amplify(x[i]) - expect), 1e-12);
    }
}

TEST(MemoryPolynomial, MemoryTapUsesPastInput) {
    const std::vector<std::vector<std::complex<double>>> coeff{
        {{1.0, 0.0}}, {{0.5, 0.0}}};
    const memory_polynomial_pa pa(coeff);
    cvec x{{1.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
    const auto y = pa.process(x);
    EXPECT_NEAR(y[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(y[1].real(), 0.5, 1e-12); // echo of x[0]
    EXPECT_NEAR(y[2].real(), 0.0, 1e-12);
    EXPECT_NEAR(pa.small_signal_gain(), 1.5, 1e-12);
}

TEST(Pa, Preconditions) {
    EXPECT_THROW(rapp_pa(20.0, -1.0, 2.0), contract_violation);
    EXPECT_THROW(rapp_pa(20.0, 1.0, 0.1), contract_violation);
    EXPECT_THROW(saleh_pa(-1.0, 1.0, 1.0, 1.0), contract_violation);
    EXPECT_THROW(memory_polynomial_pa({}), contract_violation);
    const rapp_pa pa(20.0, 10.0, 2.0);
    EXPECT_THROW(static_cast<void>(pa.input_compression_point(0.0)),
                 contract_violation);
}

} // namespace

// Shard partition/merge equivalence: for K shards at any thread count,
// merge_results() must reproduce the unsharded campaign bit-identically —
// scenario rows, coverage matrix, yield/escape statistics and timing-free
// exports.  Plus merge validation (duplicates, gaps, axis mismatches).
#include <gtest/gtest.h>

#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "core/contracts.hpp"
#include "core/task_scheduler.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::campaign;

campaign_config grid_campaign(std::size_t trials = 2) {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M"),
                   waveform::find_preset("tactical-bpsk-2M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = trials;
    cfg.seed = 0x54A2Dull;
    cfg.threads = 2;
    return cfg;
}

std::string fingerprint(const campaign_result& r) {
    export_options opt;
    opt.include_timing = false;
    return to_json(r, opt);
}

void expect_equivalent(const campaign_result& merged,
                       const campaign_result& unsharded) {
    ASSERT_EQ(merged.results.size(), unsharded.results.size());
    EXPECT_EQ(merged.grid_size, unsharded.grid_size);
    EXPECT_EQ(merged.shard_count, 1u);
    // Strongest form first: byte-identical timing-free export covers the
    // rows, the matrix and the population statistics in one comparison.
    EXPECT_EQ(fingerprint(merged), fingerprint(unsharded));
    // And the structural fields explicitly, for diagnosable failures.
    for (std::size_t i = 0; i < unsharded.results.size(); ++i) {
        EXPECT_EQ(merged.results[i].sc.index, i);
        EXPECT_EQ(merged.results[i].sc.seed, unsharded.results[i].sc.seed);
        EXPECT_EQ(merged.results[i].flagged(), unsharded.results[i].flagged());
        EXPECT_DOUBLE_EQ(merged.results[i].report.skew.d_hat,
                         unsharded.results[i].report.skew.d_hat);
    }
    ASSERT_EQ(merged.matrix.size(), unsharded.matrix.size());
    for (std::size_t p = 0; p < unsharded.matrix.size(); ++p)
        for (std::size_t f = 0; f < unsharded.matrix[p].size(); ++f) {
            EXPECT_EQ(merged.cell(p, f).runs, unsharded.cell(p, f).runs);
            EXPECT_EQ(merged.cell(p, f).flagged,
                      unsharded.cell(p, f).flagged);
        }
    EXPECT_EQ(merged.golden_runs, unsharded.golden_runs);
    EXPECT_EQ(merged.golden_passes, unsharded.golden_passes);
    EXPECT_EQ(merged.fault_runs, unsharded.fault_runs);
    EXPECT_EQ(merged.fault_detected, unsharded.fault_detected);
}

std::vector<campaign_result> run_shards(campaign_config cfg, std::size_t k) {
    std::vector<campaign_result> shards;
    for (std::size_t i = 0; i < k; ++i) {
        cfg.shard = {i, k};
        shards.push_back(campaign_runner(cfg).run());
    }
    return shards;
}

class ShardMergeEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardMergeEquivalence, MergedEqualsUnsharded) {
    const std::size_t k = GetParam();
    const auto cfg = grid_campaign();
    const auto unsharded = campaign_runner(cfg).run();
    ASSERT_EQ(unsharded.grid_size, 8u);

    auto shards = run_shards(cfg, k);
    // Round-robin partition: every scenario in exactly one shard.
    std::size_t rows = 0;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        EXPECT_EQ(shards[i].shard_index, i);
        EXPECT_EQ(shards[i].shard_count, k);
        for (const auto& r : shards[i].results)
            EXPECT_EQ(r.sc.index % k, i);
        rows += shards[i].results.size();
    }
    EXPECT_EQ(rows, unsharded.grid_size);

    expect_equivalent(merge_results(shards), unsharded);

    // Merge must be order-insensitive.
    std::reverse(shards.begin(), shards.end());
    expect_equivalent(merge_results(shards), unsharded);
}

INSTANTIATE_TEST_SUITE_P(Counts, ShardMergeEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{3}, std::size_t{7}));

TEST(ShardMerge, ThreadCountInvariantAcrossShards) {
    // Shards graded at 1 thread merge bit-identically with an unsharded
    // run at N threads (and vice versa): partitioning composes with the
    // thread-invariance contract.
    auto cfg = grid_campaign(/*trials=*/1);
    cfg.threads = task_scheduler::default_thread_count();
    const auto unsharded = campaign_runner(cfg).run();

    cfg.threads = 1;
    const auto merged_serial = merge_results(run_shards(cfg, 3));
    expect_equivalent(merged_serial, unsharded);

    cfg.threads = task_scheduler::default_thread_count();
    const auto merged_parallel = merge_results(run_shards(cfg, 3));
    EXPECT_EQ(fingerprint(merged_serial), fingerprint(merged_parallel));
}

TEST(ShardMerge, MoreShardsThanScenariosLeavesEmptyShards) {
    auto cfg = grid_campaign(/*trials=*/1);
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    const auto unsharded = campaign_runner(cfg).run();
    ASSERT_EQ(unsharded.grid_size, 2u);

    const auto shards = run_shards(cfg, 7);
    std::size_t empty = 0;
    for (const auto& s : shards)
        empty += s.results.empty();
    EXPECT_EQ(empty, 5u);
    expect_equivalent(merge_results(shards), unsharded);
}

// ---- merge validation (synthetic shards: no engine runs needed) -------------

campaign_result synthetic_shard(std::size_t shard_index,
                                std::size_t shard_count,
                                std::size_t grid_size) {
    campaign_result r;
    r.preset_names = {"p0"};
    r.fault_names = {"none", "pa-gain-drop"};
    r.trials = grid_size / 2;
    r.seed = 0xABCDull;
    r.shard_index = shard_index;
    r.shard_count = shard_count;
    r.grid_size = grid_size;
    for (std::size_t i = shard_index; i < grid_size; i += shard_count) {
        scenario_result row;
        row.sc.index = i;
        row.sc.preset_index = 0;
        row.sc.fault_index = (i / r.trials) % 2;
        row.sc.fault = row.sc.fault_index == 0
                           ? bist::fault_kind::none
                           : bist::fault_kind::pa_gain_drop;
        row.sc.trial = i % r.trials;
        row.sc.preset_name = "p0";
        r.results.push_back(std::move(row));
    }
    return r;
}

TEST(ShardMerge, RejectsEmptyInput) {
    EXPECT_THROW(merge_results({}), contract_violation);
}

TEST(ShardMerge, RejectsDuplicateShard) {
    const auto s0 = synthetic_shard(0, 2, 4);
    const auto s1 = synthetic_shard(1, 2, 4);
    EXPECT_NO_THROW(merge_results({s0, s1}));
    EXPECT_THROW(merge_results({s0, s0}), contract_violation);
}

TEST(ShardMerge, RejectsIncompleteCoverage) {
    const auto s0 = synthetic_shard(0, 3, 6);
    const auto s1 = synthetic_shard(1, 3, 6);
    EXPECT_THROW(merge_results({s0, s1}), contract_violation);
}

TEST(ShardMerge, RejectsMismatchedCampaigns) {
    const auto s0 = synthetic_shard(0, 2, 4);
    auto s1 = synthetic_shard(1, 2, 4);
    s1.seed ^= 1;
    EXPECT_THROW(merge_results({s0, s1}), contract_violation);
    s1 = synthetic_shard(1, 2, 4);
    s1.fault_names.push_back("extra");
    EXPECT_THROW(merge_results({s0, s1}), contract_violation);
}

TEST(ShardMerge, MergedMeasuredFieldsCombineConservatively) {
    auto s0 = synthetic_shard(0, 2, 4);
    auto s1 = synthetic_shard(1, 2, 4);
    s0.wall_s = 1.5;
    s1.wall_s = 2.5;
    s0.threads_used = 4;
    s1.threads_used = 8;
    s0.cache_hits = 1;
    s1.cache_misses = 2;
    const auto merged = merge_results({s0, s1});
    EXPECT_DOUBLE_EQ(merged.wall_s, 4.0);
    EXPECT_EQ(merged.threads_used, 8u);
    EXPECT_EQ(merged.cache_hits, 1u);
    EXPECT_EQ(merged.cache_misses, 2u);
}

} // namespace

// Telemetry against the campaign contracts: tracing must never perturb
// results (bit-identical artefacts at any thread count), counters must
// mirror the deterministic stage-reuse and cache accounting exactly, the
// per-run summary must merge additively across shards, and the exported
// Chrome trace must be well-formed (valid JSON, sorted timestamps,
// properly nested spans per thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "campaign/shard_io.hpp"
#include "core/telemetry.hpp"
#include "support/scratch_dir.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sdrbist;
using namespace sdrbist::campaign;
namespace tm = sdrbist::telemetry;

/// Telemetry state is process-global: every test starts disabled/zeroed
/// and restores that on exit so the other campaign tests stay untouched.
class CampaignTelemetry : public ::testing::Test {
protected:
    void SetUp() override {
        tm::disable();
        tm::reset();
    }
    void TearDown() override {
        tm::disable();
        tm::reset();
    }
};

using sdrbist::testing::scratch_dir;

campaign_config small_campaign() {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 1;
    cfg.threads = 1;
    cfg.seed = 0x7E1Eull;
    return cfg;
}

std::string timing_free(const campaign_result& r) {
    export_options opt;
    opt.include_timing = false;
    return to_json(r, opt);
}

std::uint64_t counter_at(const std::array<std::uint64_t, tm::counter_count>& c,
                         tm::counter which) {
    return c[static_cast<std::size_t>(which)];
}

// ---- results are never perturbed -------------------------------------------

TEST_F(CampaignTelemetry, TracedRunsAreBitIdenticalAtAnyThreadCount) {
    auto cfg = small_campaign();
    const auto baseline = campaign_runner(cfg).run();
    ASSERT_TRUE(baseline.telemetry_summary.empty()) << "telemetry was off";

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE(threads);
        cfg.threads = threads;
        tm::reset();
        tm::enable(/*capture_trace=*/true);
        const auto traced = campaign_runner(cfg).run();
        tm::disable();

        EXPECT_EQ(timing_free(traced), timing_free(baseline));
        ASSERT_EQ(traced.results.size(), baseline.results.size());
        for (std::size_t i = 0; i < traced.results.size(); ++i)
            EXPECT_EQ(report_json(traced.results[i].report),
                      report_json(baseline.results[i].report))
                << "scenario " << i;
        EXPECT_FALSE(traced.telemetry_summary.empty());
        EXPECT_EQ(traced.telemetry_summary.of(tm::category::scenario).count,
                  traced.scenario_count());
    }
}

// ---- counters mirror the deterministic accounting ---------------------------

TEST_F(CampaignTelemetry, StageReuseCountersMatchTheResultExactly) {
    // Probes-reseed grid with pooling: the planned adopt/compute split is
    // deterministic, and the telemetry counters are bumped at the same
    // sites as the campaign_result fields.
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 3;
    cfg.reseed = reseed_policy::probes;
    cfg.stage_sharing = bist::stage::reconstruction;
    cfg.threads = 2;

    tm::enable();
    const auto before = tm::counters();
    const auto result = campaign_runner(cfg).run();
    const auto after = tm::counters();

    EXPECT_GT(result.stage_reuse_hits, 0u);
    EXPECT_EQ(counter_at(after, tm::counter::stage_adopts) -
                  counter_at(before, tm::counter::stage_adopts),
              result.stage_reuse_hits);
    EXPECT_EQ(counter_at(after, tm::counter::stage_computes) -
                  counter_at(before, tm::counter::stage_computes),
              result.stage_reuse_computes);
}

TEST_F(CampaignTelemetry, StageAccountingIsUnchangedByThreadCount) {
    // The credited-consumer rule books the same adopt/compute split at
    // any thread count — in the result fields and the counters alike.
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 3;
    cfg.reseed = reseed_policy::probes;
    cfg.stage_sharing = bist::stage::reconstruction;

    std::vector<campaign_result> results;
    tm::enable();
    for (const std::size_t threads : {1u, 2u, 4u}) {
        cfg.threads = threads;
        const auto before = tm::counters();
        results.push_back(campaign_runner(cfg).run());
        const auto after = tm::counters();
        const auto& r = results.back();
        EXPECT_EQ(counter_at(after, tm::counter::stage_adopts) -
                      counter_at(before, tm::counter::stage_adopts),
                  r.stage_reuse_hits);
        EXPECT_EQ(counter_at(after, tm::counter::stage_computes) -
                      counter_at(before, tm::counter::stage_computes),
                  r.stage_reuse_computes);
    }
    const auto& single = results.front();
    EXPECT_GT(single.stage_reuse_hits, 0u);
    for (const auto& r : results) {
        EXPECT_EQ(r.stage_reuse_hits, single.stage_reuse_hits);
        EXPECT_EQ(r.stage_reuse_computes, single.stage_reuse_computes);
        EXPECT_EQ(timing_free(r), timing_free(single));
    }
}

TEST_F(CampaignTelemetry, SchedCountersAreExactUnderConcurrency) {
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 3;
    cfg.reseed = reseed_policy::probes;
    cfg.threads = 4;

    const auto run_deltas = [&cfg] {
        const auto before = tm::counters();
        const auto result = campaign_runner(cfg).run();
        const auto after = tm::counters();
        std::array<std::uint64_t, tm::counter_count> delta{};
        for (std::size_t i = 0; i < tm::counter_count; ++i)
            delta[i] = after[i] - before[i];
        return std::pair{delta, result};
    };

    tm::enable();
    const auto [first, result] = run_deltas();
    // Spawns are deterministic (nodes minus roots), so an identical run
    // books the identical count even under concurrency.
    const auto [second, result2] = run_deltas();
    EXPECT_GT(counter_at(first, tm::counter::sched_spawns), 0u);
    EXPECT_EQ(counter_at(first, tm::counter::sched_spawns),
              counter_at(second, tm::counter::sched_spawns));
    // Every pooled snapshot is taken without blocking: the fast-path
    // adoptions are exactly the slot touches the reuse accounting splits
    // into adopts (non-credited) and computes (credited stands in).
    EXPECT_EQ(counter_at(first, tm::counter::sched_adopt_fastpath),
              result.stage_reuse_hits + result.stage_reuse_computes);
    EXPECT_EQ(counter_at(first, tm::counter::stage_waits), 0u)
        << "the dag schedule never blocks on a pooled stage";
    EXPECT_EQ(timing_free(result2), timing_free(result));

    // Single-threaded there is nobody to steal from.
    cfg.threads = 1;
    const auto [single, result3] = run_deltas();
    static_cast<void>(result3);
    EXPECT_EQ(counter_at(single, tm::counter::sched_steals), 0u);
}

TEST_F(CampaignTelemetry, WarmCacheSkipsUndemandedOwnerNodes) {
    // On a warm cache every consumer is served before the owner nodes
    // run; the demand gate must leave all stage work (and its counters)
    // at zero.
    const scratch_dir dir("sched_warm_owners");
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 3;
    cfg.reseed = reseed_policy::probes;
    cfg.cache_dir = dir.path.string();
    cfg.threads = 4;

    const auto cold = campaign_runner(cfg).run();
    EXPECT_GT(cold.stage_reuse_computes, 0u);

    tm::enable();
    const auto before = tm::counters();
    const auto warm = campaign_runner(cfg).run();
    const auto after = tm::counters();
    EXPECT_EQ(warm.cache_hits, warm.scenario_count());
    EXPECT_EQ(warm.stage_reuse_computes, 0u);
    EXPECT_EQ(warm.stage_reuse_hits, 0u);
    EXPECT_EQ(counter_at(after, tm::counter::stage_computes) -
                  counter_at(before, tm::counter::stage_computes),
              0u);
    EXPECT_EQ(counter_at(after, tm::counter::sched_adopt_fastpath) -
                  counter_at(before, tm::counter::sched_adopt_fastpath),
              0u);
}

TEST_F(CampaignTelemetry, CacheCountersMatchTheResultExactly) {
    const scratch_dir dir("cache_counters");
    auto cfg = small_campaign();
    cfg.cache_dir = dir.path.string();

    tm::enable();
    const auto before = tm::counters();
    const auto cold = campaign_runner(cfg).run();
    const auto mid = tm::counters();
    const auto warm = campaign_runner(cfg).run();
    const auto after = tm::counters();

    EXPECT_EQ(cold.cache_hits, 0u);
    EXPECT_EQ(cold.cache_misses, cold.scenario_count());
    EXPECT_EQ(counter_at(mid, tm::counter::cache_misses) -
                  counter_at(before, tm::counter::cache_misses),
              cold.cache_misses);
    EXPECT_EQ(counter_at(mid, tm::counter::cache_hits) -
                  counter_at(before, tm::counter::cache_hits),
              cold.cache_hits);

    EXPECT_EQ(warm.cache_hits, warm.scenario_count());
    EXPECT_EQ(warm.cache_misses, 0u);
    EXPECT_EQ(counter_at(after, tm::counter::cache_hits) -
                  counter_at(mid, tm::counter::cache_hits),
              warm.cache_hits);
    EXPECT_EQ(counter_at(after, tm::counter::cache_misses) -
                  counter_at(mid, tm::counter::cache_misses),
              warm.cache_misses);
}

// ---- summaries merge additively across shards -------------------------------

TEST_F(CampaignTelemetry, ShardSummariesMergeAdditively) {
    auto cfg = small_campaign();
    cfg.trials = 2; // 4 scenarios
    cfg.stage_sharing.reset(); // every scenario runs all five stages

    tm::enable();
    const auto full = campaign_runner(cfg).run();

    cfg.shard = {0, 2};
    const auto s0 = campaign_runner(cfg).run();
    cfg.shard = {1, 2};
    const auto s1 = campaign_runner(cfg).run();
    const auto merged = merge_results({s0, s1});

    // Span *counts* are deterministic (the grid decides what runs); totals
    // are measured, so only their additivity is checked.
    for (std::size_t i = 0; i < tm::category_count; ++i) {
        SCOPED_TRACE(tm::to_string(static_cast<tm::category>(i)));
        const auto& m = merged.telemetry_summary.categories[i];
        const auto& a = s0.telemetry_summary.categories[i];
        const auto& b = s1.telemetry_summary.categories[i];
        EXPECT_EQ(m.count, a.count + b.count);
        EXPECT_EQ(m.total_ns, a.total_ns + b.total_ns);
        EXPECT_EQ(m.max_ns, std::max(a.max_ns, b.max_ns));
    }
    for (const auto cat :
         {tm::category::stage_stimulus, tm::category::stage_tx_capture,
          tm::category::stage_calibration, tm::category::stage_reconstruction,
          tm::category::stage_grading, tm::category::scenario})
        EXPECT_EQ(merged.telemetry_summary.of(cat).count,
                  full.telemetry_summary.of(cat).count)
            << tm::to_string(cat);
}

TEST_F(CampaignTelemetry, ShardFilesRoundTripTheSummary) {
    auto cfg = small_campaign();
    tm::enable();
    const auto result = campaign_runner(cfg).run();
    ASSERT_FALSE(result.telemetry_summary.empty());

    const std::string serialised = result_to_json(result);
    const auto reread = result_from_json(parse_json(serialised));
    EXPECT_EQ(reread.telemetry_summary, result.telemetry_summary);
    EXPECT_EQ(result_to_json(reread), serialised)
        << "write(read(x)) must be byte-identical to write(x)";
}

// ---- trace export well-formedness -------------------------------------------

TEST_F(CampaignTelemetry, TraceIsValidSortedAndBalanced) {
    auto cfg = small_campaign();
    cfg.trials = 2;
    cfg.threads = 4;

    tm::enable(/*capture_trace=*/true);
    const auto result = campaign_runner(cfg).run();
    tm::disable();
    ASSERT_GT(tm::trace_event_count(), 0u);

    const auto doc = parse_json(tm::chrome_trace_json());
    const auto& events = doc.at("traceEvents").as_array();

    struct span_ref {
        double tid, ts, end;
    };
    std::vector<span_ref> spans;
    double last_ts = -1.0;
    for (const auto& e : events) {
        if (e.at("ph").as_string() == "M")
            continue;
        ASSERT_EQ(e.at("ph").as_string(), "X");
        const double ts = e.at("ts").as_number();
        const double dur = e.at("dur").as_number();
        EXPECT_GE(ts, 0.0) << "timestamps are relative to the trace epoch";
        EXPECT_GE(ts, last_ts) << "events must be sorted by start time";
        EXPECT_GE(dur, 0.0);
        last_ts = ts;
        spans.push_back({e.at("tid").as_number(), ts, ts + dur});
    }
    EXPECT_EQ(spans.size(), tm::trace_event_count());

    // One scenario span per grid scenario, stage spans under them.
    std::size_t scenario_spans = 0;
    for (const auto& e : events)
        if (e.at("ph").as_string() == "X" &&
            e.at("cat").as_string() == "scenario")
            ++scenario_spans;
    EXPECT_EQ(scenario_spans, result.scenario_count());

    // Per thread, spans must nest like a call stack: no partial overlap.
    // Ties on start time are ordered longest-first so a zero-gap parent
    // still precedes its child.
    std::vector<double> tids;
    for (const auto& s : spans)
        tids.push_back(s.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (const double tid : tids) {
        std::vector<span_ref> thread_spans;
        for (const auto& s : spans)
            if (s.tid == tid)
                thread_spans.push_back(s);
        std::stable_sort(thread_spans.begin(), thread_spans.end(),
                         [](const span_ref& a, const span_ref& b) {
                             return a.ts != b.ts ? a.ts < b.ts
                                                 : a.end > b.end;
                         });
        std::vector<double> stack; // open-span end times
        for (const auto& s : thread_spans) {
            while (!stack.empty() && stack.back() <= s.ts)
                stack.pop_back();
            if (!stack.empty()) {
                EXPECT_LE(s.end, stack.back())
                    << "span on tid " << tid << " escapes its parent";
            }
            stack.push_back(s.end);
        }
    }
}

} // namespace

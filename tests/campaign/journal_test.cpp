// Crash-safe campaign journal and --resume: identity digests, the
// append/replay round trip, torn-tail tolerance, and the headline
// property that a resumed run's exports are byte-identical to an
// uninterrupted run's.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "campaign/journal.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"
#include "support/scratch_dir.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sdrbist;
using namespace sdrbist::campaign;
namespace fi = sdrbist::fault_injection;
using sdrbist::testing::scratch_dir;

class CampaignJournal : public ::testing::Test {
protected:
    void SetUp() override { fi::disarm(); }
    void TearDown() override { fi::disarm(); }
};

campaign_config small_campaign() {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 2;
    cfg.threads = 2;
    cfg.seed = 0x10A11ull;
    return cfg;
}

std::string timing_free_json(const campaign_result& r) {
    export_options opt;
    opt.include_timing = false;
    return to_json(r, opt);
}

std::string read_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST_F(CampaignJournal, IdentityCoversShapeNotExecution) {
    const auto base = small_campaign();
    const std::string id = campaign_identity(base);
    EXPECT_EQ(id.size(), 16u);
    EXPECT_EQ(campaign_identity(base), id) << "identity is a pure function";

    // Anything that changes which scenarios exist or what they compute
    // must move the digest...
    auto changed = base;
    changed.seed ^= 1;
    EXPECT_NE(campaign_identity(changed), id);
    changed = base;
    changed.trials += 1;
    EXPECT_NE(campaign_identity(changed), id);
    changed = base;
    changed.faults = {bist::fault_kind::none};
    EXPECT_NE(campaign_identity(changed), id);
    changed = base;
    changed.shard = {0, 2};
    EXPECT_NE(campaign_identity(changed), id);

    // ...while pure execution knobs must not: a resume may legitimately
    // use different threads, cache or retry settings.
    changed = base;
    changed.threads = 7;
    changed.cache_dir = "elsewhere";
    changed.max_retries = 9;
    changed.retry_backoff_ms = 123.0;
    changed.scenario_deadline_s = 5.0;
    changed.journal_path = "other.jsonl";
    EXPECT_EQ(campaign_identity(changed), id);
}

TEST_F(CampaignJournal, JournalledRunRoundTripsThroughReadJournal) {
    const scratch_dir dir("round_trip");
    auto cfg = small_campaign();
    cfg.journal_path = dir.file("run.jsonl");
    const auto result = campaign_runner(cfg).run();

    const auto replay = read_journal(cfg.journal_path);
    EXPECT_EQ(replay.identity, campaign_identity(cfg));
    EXPECT_EQ(replay.rows.size(), result.scenario_count());
    EXPECT_EQ(replay.torn_lines, 0u);
    EXPECT_EQ(replay.valid_bytes, fs::file_size(cfg.journal_path));
    for (const auto& row : replay.rows)
        EXPECT_FALSE(row.key.empty());
}

TEST_F(CampaignJournal, ResumeFromCompleteJournalRecomputesNothing) {
    const scratch_dir dir("full_resume");
    auto cfg = small_campaign();
    cfg.journal_path = dir.file("run.jsonl");
    const auto original = campaign_runner(cfg).run();

    auto resume_cfg = cfg;
    resume_cfg.resume = true;
    std::size_t hook_rows = 0;
    run_hooks hooks;
    hooks.on_scenario = [&](const scenario_result&) { ++hook_rows; };
    const auto resumed = campaign_runner(resume_cfg).run(hooks);

    EXPECT_EQ(resumed.resumed, original.scenario_count());
    EXPECT_EQ(resumed.cache_hits + resumed.cache_misses, 0u);
    EXPECT_EQ(hook_rows, original.scenario_count())
        << "restored rows still flow through the observer hooks";
    EXPECT_EQ(timing_free_json(resumed), timing_free_json(original));
    EXPECT_EQ(coverage_csv(resumed), coverage_csv(original));
    export_options opt;
    opt.include_timing = false;
    EXPECT_EQ(scenarios_jsonl(resumed, opt),
              scenarios_jsonl(original, opt));
}

TEST_F(CampaignJournal, ResumeAfterSimulatedCrashIsByteIdentical) {
    const scratch_dir dir("crash_resume");
    auto cfg = small_campaign();

    // Reference: an uninterrupted, unjournalled run.
    const auto reference = campaign_runner(cfg).run();

    // A journalled run that "crashed": keep the header plus two completed
    // rows, then a torn half-line exactly as a mid-write kill leaves it.
    cfg.journal_path = dir.file("crashed.jsonl");
    static_cast<void>(campaign_runner(cfg).run());
    const std::string full = read_file(cfg.journal_path);
    std::size_t cut = 0;
    for (int lines = 0; lines < 3; ++cut)
        if (full[cut] == '\n')
            ++lines;
    {
        std::ofstream torn(cfg.journal_path,
                           std::ios::binary | std::ios::trunc);
        torn << full.substr(0, cut) << "{\"row\":\"scenario\",\"key\":\"ab";
    }

    auto resume_cfg = cfg;
    resume_cfg.resume = true;
    const auto resumed = campaign_runner(resume_cfg).run();

    EXPECT_EQ(resumed.resumed, 2u);
    EXPECT_EQ(timing_free_json(resumed), timing_free_json(reference));

    // The journal healed: truncated past the torn tail, then re-extended
    // with the recomputed rows — a second replay sees the whole campaign.
    const auto replay = read_journal(cfg.journal_path);
    EXPECT_EQ(replay.torn_lines, 0u);
    EXPECT_EQ(replay.rows.size(), reference.scenario_count());
}

TEST_F(CampaignJournal, ResumeAgainstADifferentCampaignIsRejected) {
    const scratch_dir dir("identity_guard");
    auto cfg = small_campaign();
    cfg.journal_path = dir.file("run.jsonl");
    static_cast<void>(campaign_runner(cfg).run());

    auto other = cfg;
    other.seed ^= 0xBEEF;
    other.resume = true;
    EXPECT_THROW(static_cast<void>(campaign_runner(other).run()),
                 contract_violation);
}

TEST_F(CampaignJournal, ResumeRequiresAJournalPath) {
    auto cfg = small_campaign();
    cfg.resume = true; // no journal_path
    EXPECT_THROW(campaign_runner runner(cfg), contract_violation);
}

TEST_F(CampaignJournal, GaveUpRowsAreNeverJournalled) {
    const scratch_dir dir("gave_up");
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 1;
    cfg.threads = 1;
    cfg.max_retries = 0;
    cfg.retry_backoff_ms = 0.0;
    cfg.journal_path = dir.file("run.jsonl");

    fi::arm("stage.calibration:throw-transient");
    const auto broken = campaign_runner(cfg).run();
    fi::disarm();
    ASSERT_EQ(broken.scenario_gave_up, 1u);

    // Header only: the environment-dependent verdict must be re-attempted
    // by whoever resumes, so it never becomes journal ground truth.
    const auto replay = read_journal(cfg.journal_path);
    EXPECT_EQ(replay.rows.size(), 0u);

    auto resume_cfg = cfg;
    resume_cfg.resume = true;
    const auto healed = campaign_runner(resume_cfg).run();
    EXPECT_EQ(healed.resumed, 0u);
    EXPECT_FALSE(healed.results[0].engine_error);
}

TEST_F(CampaignJournal, ReadJournalRejectsGarbage) {
    const scratch_dir dir("bad_journal");
    EXPECT_THROW(static_cast<void>(read_journal(dir.file("missing.jsonl"))),
                 contract_violation);

    const std::string no_header = dir.file("no_header.jsonl");
    std::ofstream(no_header, std::ios::binary) << "not json\n";
    EXPECT_THROW(static_cast<void>(read_journal(no_header)),
                 contract_violation);

    const std::string bad_version = dir.file("bad_version.jsonl");
    std::ofstream(bad_version, std::ios::binary)
        << R"({"row":"header","journal_version":999,"identity":"x"})"
        << "\n";
    EXPECT_THROW(static_cast<void>(read_journal(bad_version)),
                 contract_violation);
}

} // namespace

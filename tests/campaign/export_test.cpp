// Structured export: deterministic JSON/CSV/JSONL, round-trips through
// the bundled parsers, measured-field suppression audit.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "core/contracts.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::campaign;

const campaign_result& tiny_campaign_result() {
    static const campaign_result result = [] {
        campaign_config cfg;
        cfg.base.tiadc.quant.full_scale = 2.0;
        cfg.base.min_output_rms = 1.2;
        cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
        cfg.faults = {bist::fault_kind::none,
                      bist::fault_kind::pa_gain_drop};
        cfg.trials = 1;
        cfg.threads = 2;
        cfg.seed = 0xE59027ull;
        return campaign_runner(cfg).run();
    }();
    return result;
}

// ---- JSON -------------------------------------------------------------------

TEST(CampaignExport, JsonRoundTripsThroughParser) {
    const auto& result = tiny_campaign_result();
    const auto doc = parse_json(to_json(result));

    const auto& campaign = doc.at("campaign");
    ASSERT_EQ(campaign.at("presets").size(), 1u);
    EXPECT_EQ(campaign.at("presets").at(std::size_t{0}).as_string(),
              "paper-qpsk-10M");
    ASSERT_EQ(campaign.at("faults").size(), 2u);
    EXPECT_EQ(campaign.at("faults").at(std::size_t{1}).as_string(),
              "pa-gain-drop");
    EXPECT_DOUBLE_EQ(campaign.at("trials").as_number(), 1.0);
    EXPECT_EQ(campaign.at("seed").as_string(), std::to_string(result.seed));

    const auto& summary = doc.at("summary");
    EXPECT_DOUBLE_EQ(summary.at("scenarios").as_number(),
                     static_cast<double>(result.scenario_count()));
    EXPECT_DOUBLE_EQ(summary.at("yield").as_number(), result.yield());
    EXPECT_DOUBLE_EQ(summary.at("coverage").as_number(), result.coverage());
    EXPECT_DOUBLE_EQ(summary.at("wall_seconds").as_number(), result.wall_s);

    const auto& matrix = doc.at("coverage_matrix");
    ASSERT_EQ(matrix.size(), 2u);
    EXPECT_EQ(matrix.at(std::size_t{0}).at("fault").as_string(), "none");
    EXPECT_DOUBLE_EQ(matrix.at(std::size_t{0}).at("fail_rate").as_number(),
                     result.cell(0, 0).fail_rate());
    EXPECT_DOUBLE_EQ(matrix.at(std::size_t{1}).at("flagged").as_number(),
                     static_cast<double>(result.cell(0, 1).flagged));

    const auto& rows = doc.at("scenarios");
    ASSERT_EQ(rows.size(), result.results.size());
    for (std::size_t i = 0; i < result.results.size(); ++i) {
        const auto& row = rows.at(i);
        const auto& r = result.results[i];
        EXPECT_DOUBLE_EQ(row.at("index").as_number(),
                         static_cast<double>(r.sc.index));
        EXPECT_EQ(row.at("seed").as_string(), std::to_string(r.sc.seed));
        EXPECT_EQ(row.at("pass").as_bool(), !r.flagged());
        // Shortest round-trip formatting: exact double recovery.
        EXPECT_DOUBLE_EQ(row.at("skew_estimate_s").as_number(),
                         r.report.skew.d_hat);
        EXPECT_DOUBLE_EQ(row.at("evm_percent").as_number(),
                         r.report.evm.evm_percent());
        EXPECT_DOUBLE_EQ(row.at("mask_worst_margin_db").as_number(),
                         r.report.mask.worst_margin_db);
    }
}

/// Recursively assert that no key from `forbidden` appears anywhere in a
/// parsed JSON document (objects at any nesting depth).
void expect_no_keys(const json_value& v,
                    const std::vector<std::string>& forbidden) {
    if (v.is_object()) {
        for (const auto& [key, child] : v.as_object()) {
            for (const auto& f : forbidden)
                EXPECT_NE(key, f) << "measured field leaked: " << f;
            expect_no_keys(child, forbidden);
        }
    } else if (v.is_array()) {
        for (const auto& child : v.as_array())
            expect_no_keys(child, forbidden);
    }
}

TEST(CampaignExport, SuppressedExportsContainNoMeasuredFieldAnywhere) {
    // Regression for the include_timing=false audit: *every* measured
    // field — wall/elapsed timing, thread count, cache counters — must be
    // absent from every exporter, at any nesting depth.  The golden tests
    // depend on this: one leaked measured field breaks byte-identity.
    const std::vector<std::string> measured = {
        "elapsed_s",        "wall_seconds", "scenario_cpu_seconds",
        "scenarios_per_second", "threads",  "cache_hits",
        "cache_misses"};
    const auto& result = tiny_campaign_result();
    export_options opt;
    opt.include_timing = false;

    expect_no_keys(parse_json(to_json(result, opt)), measured);

    std::istringstream jsonl(scenarios_jsonl(result, opt));
    std::string row;
    while (std::getline(jsonl, row))
        expect_no_keys(parse_json(row), measured);

    const auto csv = parse_csv(scenarios_csv(result, opt));
    ASSERT_FALSE(csv.empty());
    for (const auto& cell : csv[0])
        EXPECT_EQ(cell.find("elapsed"), std::string::npos);
    // Row width matches the suppressed header (no dangling timing column).
    for (const auto& row : csv)
        EXPECT_EQ(row.size(), csv[0].size());
}

TEST(CampaignExport, MeasuredFieldsPresentWhenRequested) {
    // The default export keeps the full diagnostics, including the cache
    // counters introduced with the result cache.
    const auto& result = tiny_campaign_result();
    const auto doc = parse_json(to_json(result));
    const auto& summary = doc.at("summary").as_object();
    EXPECT_EQ(summary.count("wall_seconds"), 1u);
    EXPECT_EQ(summary.count("cache_hits"), 1u);
    EXPECT_EQ(summary.count("cache_misses"), 1u);
    EXPECT_DOUBLE_EQ(summary.at("cache_hits").as_number(), 0.0);
    EXPECT_EQ(doc.at("campaign").as_object().count("threads"), 1u);
    const auto& row = doc.at("scenarios").at(std::size_t{0}).as_object();
    EXPECT_EQ(row.count("elapsed_s"), 1u);
}

TEST(CampaignExport, JsonlMatchesJsonScenarioRows) {
    // One JSONL line per scenario, each byte-identical to the object in
    // the JSON document's scenarios array.
    const auto& result = tiny_campaign_result();
    export_options opt;
    opt.include_timing = false;
    const std::string jsonl = scenarios_jsonl(result, opt);
    std::istringstream rows(jsonl);
    std::string row;
    std::size_t i = 0;
    while (std::getline(rows, row)) {
        ASSERT_LT(i, result.results.size());
        EXPECT_EQ(row, scenario_json(result.results[i], opt));
        ++i;
    }
    EXPECT_EQ(i, result.results.size());
}

TEST(CampaignExport, TimingFieldsCanBeSuppressed) {
    const auto& result = tiny_campaign_result();
    export_options opt;
    opt.include_timing = false;
    const auto doc = parse_json(to_json(result, opt));
    const auto& summary = doc.at("summary").as_object();
    EXPECT_EQ(summary.count("wall_seconds"), 0u);
    EXPECT_EQ(summary.count("scenarios_per_second"), 0u);
    const auto& row = doc.at("scenarios").at(std::size_t{0}).as_object();
    EXPECT_EQ(row.count("elapsed_s"), 0u);
    // Scenario rows can be dropped entirely for compact artefacts.
    opt.include_scenarios = false;
    const auto compact = parse_json(to_json(result, opt));
    EXPECT_EQ(compact.as_object().count("scenarios"), 0u);
}

TEST(CampaignExport, TimingFreeJsonIsDeterministic) {
    // Two executions of the same campaign config must export byte-identical
    // timing-free artefacts (the timing fields are the only measured data).
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 1;
    cfg.threads = 1;
    const auto a = campaign_runner(cfg).run();
    const auto b = campaign_runner(cfg).run();
    export_options opt;
    opt.include_timing = false;
    EXPECT_EQ(to_json(a, opt), to_json(b, opt));
    EXPECT_EQ(coverage_csv(a), coverage_csv(b));
    EXPECT_EQ(scenarios_csv(a, opt), scenarios_csv(b, opt));
}

// ---- CSV --------------------------------------------------------------------

TEST(CampaignExport, CoverageCsvRoundTrips) {
    const auto& result = tiny_campaign_result();
    const auto rows = parse_csv(coverage_csv(result));
    ASSERT_EQ(rows.size(), 1u + 2u); // header + 1 preset x 2 faults
    const std::vector<std::string> header = {"preset", "fault", "runs",
                                             "flagged", "fail_rate"};
    EXPECT_EQ(rows[0], header);
    EXPECT_EQ(rows[1][0], "paper-qpsk-10M");
    EXPECT_EQ(rows[1][1], "none");
    EXPECT_EQ(rows[1][2], "1");
    EXPECT_EQ(rows[1][3], std::to_string(result.cell(0, 0).flagged));
    EXPECT_EQ(rows[2][1], "pa-gain-drop");
    EXPECT_DOUBLE_EQ(std::stod(rows[2][4]), result.cell(0, 1).fail_rate());
}

TEST(CampaignExport, ScenariosCsvRoundTrips) {
    const auto& result = tiny_campaign_result();
    const auto rows = parse_csv(scenarios_csv(result));
    ASSERT_EQ(rows.size(), 1u + result.results.size());
    ASSERT_EQ(rows[0].size(), 13u); // includes elapsed_s/attempts by default
    for (std::size_t i = 0; i < result.results.size(); ++i) {
        const auto& cells = rows[i + 1];
        EXPECT_EQ(cells[0], std::to_string(i));
        EXPECT_EQ(cells[4], std::to_string(result.results[i].sc.seed));
        EXPECT_EQ(cells[5], result.results[i].flagged() ? "0" : "1");
        EXPECT_DOUBLE_EQ(std::stod(cells[9]),
                         result.results[i].report.skew.d_hat);
    }
}

TEST(CampaignExport, CoverageTableRendersGrid) {
    const auto& result = tiny_campaign_result();
    const auto table = coverage_table(result);
    EXPECT_EQ(table.columns(), 1u + result.fault_names.size());
    EXPECT_EQ(table.rows(), result.preset_names.size());
}

// ---- parser hardening -------------------------------------------------------

TEST(JsonParser, ParsesScalarsAndNesting) {
    const auto doc = parse_json(
        R"({"a": [1, -2.5e3, true, false, null], "s": "x\"\\\nA"})");
    EXPECT_DOUBLE_EQ(doc.at("a").at(std::size_t{0}).as_number(), 1.0);
    EXPECT_DOUBLE_EQ(doc.at("a").at(std::size_t{1}).as_number(), -2500.0);
    EXPECT_TRUE(doc.at("a").at(std::size_t{2}).as_bool());
    EXPECT_FALSE(doc.at("a").at(std::size_t{3}).as_bool());
    EXPECT_TRUE(doc.at("a").at(std::size_t{4}).is_null());
    EXPECT_EQ(doc.at("s").as_string(), "x\"\\\nA");
}

TEST(JsonParser, RejectsMalformedInput) {
    EXPECT_THROW(parse_json("{"), contract_violation);
    EXPECT_THROW(parse_json("[1,]"), contract_violation);
    EXPECT_THROW(parse_json("{\"a\" 1}"), contract_violation);
    EXPECT_THROW(parse_json("\"unterminated"), contract_violation);
    EXPECT_THROW(parse_json("12 34"), contract_violation);
    EXPECT_THROW(parse_json("nope"), contract_violation);
}

TEST(CsvParser, HandlesQuotingAndEmptyCells) {
    const auto rows = parse_csv("a,\"b,1\",\"say \"\"hi\"\"\"\nc,,d\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b,1", "say \"hi\""}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "", "d"}));
}

} // namespace

// Cross-scenario stage sharing: the runner's planned stage pool must be
// invisible in the results (bit-identical at every sharing level and
// thread count), deterministic in its accounting, and engaged exactly
// where digests overlap.
#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::campaign;

/// Guard-banding grid: one standard against two candidate masks,
/// Monte-Carlo over probe draws — downstream-only variation, maximal
/// upstream overlap.
campaign_config reuse_campaign() {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    const auto preset = waveform::find_preset("paper-qpsk-10M");
    auto strict = preset;
    strict.name = "paper-qpsk-10M/strict";
    strict.mask = waveform::make_strict_mask(preset.stimulus.symbol_rate,
                                             preset.stimulus.rolloff);
    cfg.presets = {preset, strict};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 2;
    cfg.reseed = reseed_policy::probes;
    cfg.seed = 0x57A6E5ull;
    cfg.threads = 2;
    return cfg;
}

std::string timing_free(const campaign_result& r) {
    export_options opt;
    opt.include_timing = false;
    return to_json(r, opt);
}

TEST(StageReuse, EverySharingLevelIsBitIdentical) {
    auto cfg = reuse_campaign();
    cfg.stage_sharing.reset();
    const auto baseline = campaign_runner(cfg).run();
    EXPECT_EQ(baseline.stage_reuse_hits, 0u);
    EXPECT_EQ(baseline.stage_reuse_computes, 0u);

    for (const bist::stage level :
         {bist::stage::stimulus, bist::stage::tx_capture,
          bist::stage::calibration, bist::stage::reconstruction}) {
        SCOPED_TRACE(bist::to_string(level));
        cfg.stage_sharing = level;
        const auto shared = campaign_runner(cfg).run();
        EXPECT_EQ(timing_free(shared), timing_free(baseline));
        EXPECT_GT(shared.stage_reuse_hits, 0u);
    }
}

TEST(StageReuse, PoolAccountingMatchesTheDigestPlan) {
    // 2 mask-variant presets x 2 faults x 2 probe trials = 8 scenarios.
    //  - stimulus: identical everywhere          -> 1 compute, 7 adopts
    //  - tx_capture: differs only by fault       -> 2 computes, 6 adopts
    //  - calibration: fault x probe trial        -> 4 computes, 4 adopts
    //  - reconstruction: fault x probe trial     -> 4 computes, 4 adopts
    auto cfg = reuse_campaign();
    cfg.stage_sharing = bist::stage::reconstruction;
    const auto result = campaign_runner(cfg).run();
    EXPECT_EQ(result.stage_reuse_computes, 1u + 2u + 4u + 4u);
    EXPECT_EQ(result.stage_reuse_hits, 7u + 6u + 4u + 4u);

    // The accounting is planned, not raced: any thread count reproduces it.
    cfg.threads = 5;
    const auto threaded = campaign_runner(cfg).run();
    EXPECT_EQ(threaded.stage_reuse_computes, result.stage_reuse_computes);
    EXPECT_EQ(threaded.stage_reuse_hits, result.stage_reuse_hits);
    EXPECT_EQ(timing_free(threaded), timing_free(result));
}

TEST(StageReuse, DeviceReseedHasNoOverlapToPool) {
    // Fully device-reseeded trials are distinct devices: every tx_capture
    // digest is unique, so only the (preset-wide) stimulus stage pools.
    auto cfg = reuse_campaign();
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 3;
    cfg.reseed = reseed_policy::device;
    cfg.stage_sharing = bist::stage::reconstruction;
    const auto result = campaign_runner(cfg).run();
    EXPECT_EQ(result.stage_reuse_computes, 1u); // stimulus only
    EXPECT_EQ(result.stage_reuse_hits, 2u);

    // And it stays bit-identical to the unshared run.
    cfg.stage_sharing.reset();
    EXPECT_EQ(timing_free(campaign_runner(cfg).run()), timing_free(result));
}

TEST(StageReuse, SharedScenarioResultsMatchIsolatedEngineRuns) {
    // Every pooled scenario must equal the result of grading it alone —
    // adoption may never leak another scenario's configuration.
    auto cfg = reuse_campaign();
    cfg.stage_sharing = bist::stage::reconstruction;
    const auto shared = campaign_runner(cfg).run();
    const auto grid = expand_grid(cfg);
    ASSERT_EQ(shared.results.size(), grid.size());
    for (const std::size_t i : {std::size_t{0}, grid.size() / 2,
                                grid.size() - 1}) {
        const auto isolated =
            bist::bist_engine(scenario_config(cfg, grid[i])).run();
        export_options opt;
        opt.include_timing = false;
        scenario_result expected = shared.results[i];
        expected.report = isolated;
        EXPECT_EQ(scenario_json(shared.results[i], opt),
                  scenario_json(expected, opt))
            << "scenario " << i;
    }
}

TEST(ReseedPolicy, ProbesMovesOnlyTheProbeSeedAsABlockDesign) {
    auto cfg = reuse_campaign();
    cfg.reseed = reseed_policy::probes;
    const auto grid = expand_grid(cfg);

    const auto base0 = scenario_config(cfg, grid[0]);
    for (const auto& sc : grid) {
        const auto c = scenario_config(cfg, sc);
        // Device identity is fixed across the whole grid.
        EXPECT_EQ(c.tx.seed, cfg.base.tx.seed);
        EXPECT_EQ(c.tiadc.seed, cfg.base.tiadc.seed);
        EXPECT_DOUBLE_EQ(c.tiadc.jitter_rms_s, cfg.base.tiadc.jitter_rms_s);
        // Probe draws are a block design: a function of the trial alone,
        // shared by every preset and fault.
        const auto twin = scenario_config(
            cfg, grid[sc.trial]); // preset 0, fault 0, same trial
        EXPECT_EQ(c.probe_seed, twin.probe_seed);
        if (sc.trial != grid[0].trial) {
            EXPECT_NE(c.probe_seed, base0.probe_seed);
        }
    }
    // Distinct trials draw distinct probes.
    EXPECT_NE(scenario_config(cfg, grid[0]).probe_seed,
              scenario_config(cfg, grid[1]).probe_seed);
}

} // namespace

// Corrupt-input quarantine and the lenient merge: unreadable shard files
// are moved aside (evidence preserved) instead of failing the merge,
// inconsistent rows are dropped and counted, partially-covered grids
// yield partial results, and the cache quarantines garbled entries while
// the strict merge contract stays exactly as hard as before.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "campaign/shard_io.hpp"
#include "core/contracts.hpp"
#include "support/scratch_dir.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sdrbist;
using namespace sdrbist::campaign;
using sdrbist::testing::scratch_dir;

/// Minimal hand-built shard: `grid_size` rows of a 1-preset x 1-fault x N
/// grid, rows at the given indices.  Enough structure for merge_impl and
/// aggregate; the reports stay default.
campaign_result tiny_shard(std::size_t grid_size,
                           std::initializer_list<std::size_t> indices) {
    campaign_result shard;
    shard.preset_names = {"p"};
    shard.fault_names = {"none"};
    shard.trials = grid_size;
    shard.seed = 7;
    shard.grid_size = grid_size;
    for (const std::size_t i : indices) {
        scenario_result row;
        row.sc.index = i;
        row.sc.preset_index = 0;
        row.sc.fault_index = 0;
        row.sc.trial = i;
        row.sc.fault = bist::fault_kind::none;
        row.sc.preset_name = "p";
        row.sc.seed = 100 + i;
        row.elapsed_s = static_cast<double>(i + 1);
        shard.results.push_back(std::move(row));
    }
    return shard;
}

TEST(Salvage, UnreadableShardFilesAreQuarantinedNotFatal) {
    const scratch_dir dir("shard_files");
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 1;
    cfg.threads = 2;
    cfg.seed = 0x5A17ull;

    std::vector<std::string> paths;
    for (std::size_t i = 0; i < 2; ++i) {
        auto shard_cfg = cfg;
        shard_cfg.shard = {i, 2};
        const auto shard = campaign_runner(shard_cfg).run();
        paths.push_back(dir.file("shard" + std::to_string(i) + ".json"));
        ASSERT_TRUE(write_result_file(paths.back(), shard));
    }
    // Truncate shard 1 mid-file — the classic killed-writer artefact.
    {
        const auto size = fs::file_size(paths[1]);
        fs::resize_file(paths[1], size / 2);
    }

    // The strict reader refuses...
    EXPECT_THROW(static_cast<void>(read_result_file(paths[1])),
                 contract_violation);

    // ...the salvage reader moves it aside and carries on.
    salvage_stats stats;
    const auto shards = read_result_files_salvage(paths, stats);
    ASSERT_EQ(shards.size(), 1u);
    EXPECT_EQ(stats.quarantined_files, 1u);
    ASSERT_EQ(stats.notes.size(), 1u);
    EXPECT_FALSE(fs::exists(paths[1])) << "the wreck was moved, not copied";
    EXPECT_TRUE(fs::exists(dir.path / "quarantine" / "shard1.json"));

    const auto merged = merge_results_salvage(shards, stats);
    EXPECT_EQ(stats.missing_rows, 1u);
    EXPECT_EQ(merged.scenario_count(), 1u);
}

TEST(Salvage, VersionSkewedShardFileIsQuarantined) {
    const scratch_dir dir("version_skew");
    const std::string path = dir.file("old.json");
    std::ofstream(path, std::ios::binary)
        << R"({"shard_file_version":1,"campaign":{}})";

    salvage_stats stats;
    const auto shards = read_result_files_salvage({path}, stats);
    EXPECT_TRUE(shards.empty());
    EXPECT_EQ(stats.quarantined_files, 1u);
    EXPECT_FALSE(fs::exists(path));
}

TEST(Salvage, DuplicateRowsDropWithFirstShardWinning) {
    const auto a = tiny_shard(3, {0, 1});
    const auto b = tiny_shard(3, {1, 2}); // row 1 collides with shard a

    salvage_stats stats;
    const auto merged = merge_results_salvage({a, b}, stats);
    EXPECT_EQ(stats.duplicate_rows, 1u);
    EXPECT_EQ(stats.missing_rows, 0u);
    ASSERT_EQ(merged.scenario_count(), 3u);
    // Shard a's copy of row 1 survives (first wins, order is the CLI's
    // argument order).
    EXPECT_EQ(merged.results[1].elapsed_s, a.results[1].elapsed_s);

    // The historical strict contract is untouched: the same collision is
    // still fatal without --salvage.
    EXPECT_THROW(static_cast<void>(merge_results({a, b})),
                 contract_violation);
}

TEST(Salvage, MismatchedAxesShardIsSkippedWholesale) {
    const auto a = tiny_shard(2, {0});
    auto b = tiny_shard(2, {1});
    b.seed = 8; // a different campaign entirely

    salvage_stats stats;
    const auto merged = merge_results_salvage({a, b}, stats);
    EXPECT_EQ(stats.skipped_shards, 1u);
    EXPECT_EQ(stats.missing_rows, 1u);
    EXPECT_EQ(merged.scenario_count(), 1u);
    EXPECT_EQ(merged.seed, a.seed) << "shard 0 is the axis reference";
    ASSERT_EQ(stats.notes.size(), 1u);
}

TEST(Salvage, CleanShardsSalvageIdenticallyToStrictMerge) {
    const auto a = tiny_shard(4, {0, 2});
    const auto b = tiny_shard(4, {1, 3});
    salvage_stats stats;
    const auto lenient = merge_results_salvage({a, b}, stats);
    const auto strict = merge_results({a, b});
    EXPECT_TRUE(stats.clean());
    EXPECT_EQ(result_to_json(lenient), result_to_json(strict));
}

TEST(Salvage, CacheQuarantinesGarbledEntries) {
    const scratch_dir dir("cache_quarantine");
    const scenario_cache cache(dir.file("cache"));
    const std::string key = "00deadbeef00cafe";

    std::ofstream(cache.path_for(key), std::ios::binary)
        << "{\"cache_version\":1,ga";
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_EQ(cache.quarantined(), 1u);
    EXPECT_FALSE(fs::exists(cache.path_for(key)));
    EXPECT_TRUE(
        fs::exists(fs::path(cache.dir()) / "quarantine" / (key + ".json")));

    // Version skew is stale, not corrupt: cache-gc's business, no move.
    const std::string skewed = "00deadbeef00cafd";
    std::ofstream(cache.path_for(skewed), std::ios::binary)
        << R"({"cache_version":999,"key":"00deadbeef00cafd"})";
    EXPECT_FALSE(cache.load(skewed).has_value());
    EXPECT_EQ(cache.quarantined(), 1u);
    EXPECT_TRUE(fs::exists(cache.path_for(skewed)));

    // The maintenance scan keeps working over the quarantine subdirectory.
    const auto stats = scan_cache_dir(cache.dir());
    EXPECT_EQ(stats.stale, 1u);
}

TEST(Salvage, QuarantineCollisionsGetNumericSuffixes) {
    const scratch_dir dir("collisions");
    const std::string victim = dir.file("bad.json");
    std::ofstream(victim, std::ios::binary) << "junk";
    EXPECT_TRUE(quarantine_file(victim));
    std::ofstream(victim, std::ios::binary) << "more junk";
    EXPECT_TRUE(quarantine_file(victim));
    EXPECT_TRUE(fs::exists(dir.path / "quarantine" / "bad.json"));
    EXPECT_TRUE(fs::exists(dir.path / "quarantine" / "bad.json.1"));
}

} // namespace

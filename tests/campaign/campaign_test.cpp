// Campaign subsystem: grid expansion, seed derivation, thread-count
// invariance, coverage-matrix correctness, legacy run_catalogue fidelity.
#include <gtest/gtest.h>

#include <set>

#include "bist/multistandard.hpp"
#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "core/contracts.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::campaign;

campaign_config small_campaign() {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M"),
                   waveform::find_preset("tactical-bpsk-2M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 2;
    cfg.seed = 0xFEEDull;
    cfg.threads = 1;
    return cfg;
}

// ---- grid expansion ---------------------------------------------------------

TEST(CampaignGrid, ShapeAndOrder) {
    const auto cfg = small_campaign();
    const auto grid = expand_grid(cfg);
    ASSERT_EQ(grid.size(), 2u * 2u * 2u);
    // Preset-major, then fault, then trial; index is the row number.
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(grid[i].index, i);
        EXPECT_EQ(grid[i].preset_index, i / 4);
        EXPECT_EQ(grid[i].fault_index, (i / 2) % 2);
        EXPECT_EQ(grid[i].trial, i % 2);
        EXPECT_EQ(grid[i].preset_name, cfg.presets[grid[i].preset_index].name);
        EXPECT_EQ(grid[i].fault, cfg.faults[grid[i].fault_index]);
    }
}

TEST(CampaignGrid, SeedsAreStableAndDistinct) {
    const auto cfg = small_campaign();
    const auto a = expand_grid(cfg);
    const auto b = expand_grid(cfg);
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed) << "expansion must be pure";
        seeds.insert(a[i].seed);
    }
    EXPECT_EQ(seeds.size(), a.size()) << "per-scenario seeds must be distinct";

    // Seeds depend only on grid coordinates, not on the other axes' sizes:
    // the first preset's scenarios keep their seeds when more presets are
    // appended.
    auto wider = cfg;
    wider.presets.push_back(waveform::find_preset("qam16-10M"));
    const auto w = expand_grid(wider);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(w[i].seed, a[i].seed);

    // A different master seed moves every scenario seed.
    auto reseeded = cfg;
    reseeded.seed = 0xFEEEull;
    const auto r = expand_grid(reseeded);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NE(r[i].seed, a[i].seed);
}

TEST(CampaignGrid, RejectsEmptyAxes) {
    auto cfg = small_campaign();
    cfg.presets.clear();
    EXPECT_THROW(expand_grid(cfg), contract_violation);
    cfg = small_campaign();
    cfg.faults.clear();
    EXPECT_THROW(expand_grid(cfg), contract_violation);
    cfg = small_campaign();
    cfg.trials = 0;
    EXPECT_THROW(expand_grid(cfg), contract_violation);
}

// ---- scenario config --------------------------------------------------------

TEST(ScenarioConfig, ReseedDerivesFreshSeedsPerScenario) {
    const auto cfg = small_campaign();
    const auto grid = expand_grid(cfg);
    const auto c0 = scenario_config(cfg, grid[0]);
    const auto c1 = scenario_config(cfg, grid[1]);
    EXPECT_NE(c0.tx.seed, cfg.base.tx.seed);
    EXPECT_NE(c0.tx.seed, c1.tx.seed);
    EXPECT_NE(c0.tiadc.seed, c1.tiadc.seed);
    EXPECT_NE(c0.probe_seed, c1.probe_seed);
    // Pure function of (config, scenario).
    const auto c0_again = scenario_config(cfg, grid[0]);
    EXPECT_EQ(c0.tx.seed, c0_again.tx.seed);
    EXPECT_EQ(c0.tiadc.seed, c0_again.tiadc.seed);
}

TEST(ScenarioConfig, LegacyModeKeepsBaseSeeds) {
    auto cfg = small_campaign();
    cfg.reseed = reseed_policy::off;
    const auto grid = expand_grid(cfg);
    for (const auto& sc : grid) {
        const auto c = scenario_config(cfg, sc);
        EXPECT_EQ(c.tx.seed, cfg.base.tx.seed);
        EXPECT_EQ(c.tiadc.seed, cfg.base.tiadc.seed);
        EXPECT_EQ(c.probe_seed, cfg.base.probe_seed);
        EXPECT_DOUBLE_EQ(c.tiadc.jitter_rms_s, cfg.base.tiadc.jitter_rms_s);
    }
}

TEST(ScenarioConfig, AppliesPresetAndFault) {
    const auto cfg = small_campaign();
    const auto grid = expand_grid(cfg);
    // grid[6]: preset 1 (bpsk), fault 1 (pa_gain_drop), trial 0.
    const auto c = scenario_config(cfg, grid[6]);
    EXPECT_EQ(c.preset.name, "tactical-bpsk-2M");
    EXPECT_DOUBLE_EQ(c.tx.pa_gain_db, cfg.base.tx.pa_gain_db - 6.0);
    // Mask was relaxed to the measurement floor: limits at least as high.
    const auto& original = cfg.presets[1].mask;
    for (std::size_t s = 0; s < original.segments().size(); ++s)
        EXPECT_GE(c.preset.mask.segments()[s].limit_dbc,
                  original.segments()[s].limit_dbc);
}

TEST(ScenarioConfig, PerturbationsAreDeterministicAndScaled) {
    auto cfg = small_campaign();
    cfg.perturb.jitter_rel_sigma = 0.2;
    cfg.perturb.dcde_static_sigma_s = 2.0 * ps;
    const auto grid = expand_grid(cfg);
    const auto a = scenario_config(cfg, grid[0]);
    const auto b = scenario_config(cfg, grid[0]);
    EXPECT_DOUBLE_EQ(a.tiadc.jitter_rms_s, b.tiadc.jitter_rms_s);
    EXPECT_DOUBLE_EQ(a.tiadc.delay_element.static_error_s,
                     b.tiadc.delay_element.static_error_s);
    // Different trials see different devices.
    const auto c = scenario_config(cfg, grid[1]);
    EXPECT_NE(a.tiadc.jitter_rms_s, c.tiadc.jitter_rms_s);
    // Zero sigma leaves the base hardware exactly untouched.
    auto no_spread = cfg;
    no_spread.perturb = {};
    const auto d = scenario_config(no_spread, grid[0]);
    EXPECT_DOUBLE_EQ(d.tiadc.jitter_rms_s, cfg.base.tiadc.jitter_rms_s);
    EXPECT_DOUBLE_EQ(d.tiadc.delay_element.static_error_s,
                     cfg.base.tiadc.delay_element.static_error_s);
}

// ---- execution --------------------------------------------------------------

TEST(CampaignRunner, ThreadCountInvariance) {
    auto cfg = small_campaign();
    cfg.threads = 1;
    const auto serial = campaign_runner(cfg).run();
    cfg.threads = 4;
    const auto parallel = campaign_runner(cfg).run();

    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        const auto& a = serial.results[i];
        const auto& b = parallel.results[i];
        EXPECT_EQ(a.sc.index, b.sc.index);
        EXPECT_EQ(a.sc.seed, b.sc.seed);
        EXPECT_EQ(a.flagged(), b.flagged());
        EXPECT_DOUBLE_EQ(a.report.skew.d_hat, b.report.skew.d_hat);
        EXPECT_DOUBLE_EQ(a.report.evm.evm_rms, b.report.evm.evm_rms);
        EXPECT_DOUBLE_EQ(a.report.mask.worst_margin_db,
                         b.report.mask.worst_margin_db);
        EXPECT_DOUBLE_EQ(a.report.measured_output_rms,
                         b.report.measured_output_rms);
    }
    ASSERT_EQ(serial.matrix.size(), parallel.matrix.size());
    for (std::size_t p = 0; p < serial.matrix.size(); ++p)
        for (std::size_t f = 0; f < serial.matrix[p].size(); ++f) {
            EXPECT_EQ(serial.cell(p, f).runs, parallel.cell(p, f).runs);
            EXPECT_EQ(serial.cell(p, f).flagged,
                      parallel.cell(p, f).flagged);
        }

    // The strongest form: the timing-free structured exports are
    // byte-identical.
    export_options opt;
    opt.include_timing = false;
    EXPECT_EQ(to_json(serial, opt), to_json(parallel, opt));
    EXPECT_EQ(coverage_csv(serial), coverage_csv(parallel));
}

TEST(CampaignRunner, CoverageMatrixOnSmallGrid) {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop,
                  bist::fault_kind::pa_overdrive};
    cfg.trials = 2;
    cfg.threads = 2;
    const auto result = campaign_runner(cfg).run();

    ASSERT_EQ(result.scenario_count(), 6u);
    ASSERT_EQ(result.matrix.size(), 1u);
    ASSERT_EQ(result.matrix[0].size(), 3u);

    // Golden passes every trial; both PA faults are caught every trial.
    EXPECT_EQ(result.cell(0, 0).runs, 2u);
    EXPECT_EQ(result.cell(0, 0).flagged, 0u);
    EXPECT_EQ(result.cell(0, 1).runs, 2u);
    EXPECT_EQ(result.cell(0, 1).flagged, 2u);
    EXPECT_EQ(result.cell(0, 2).flagged, 2u);

    EXPECT_EQ(result.golden_runs, 2u);
    EXPECT_EQ(result.golden_passes, 2u);
    EXPECT_DOUBLE_EQ(result.yield(), 1.0);
    EXPECT_EQ(result.fault_runs, 4u);
    EXPECT_EQ(result.fault_detected, 4u);
    EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
    EXPECT_DOUBLE_EQ(result.escape_rate(), 0.0);
    EXPECT_GT(result.wall_s, 0.0);
    EXPECT_GT(result.scenario_cpu_s, 0.0);
    EXPECT_GT(result.scenarios_per_second(), 0.0);

    // Reports carry the per-scenario evidence for the verdicts.
    for (const auto& r : result.results) {
        EXPECT_FALSE(r.engine_error) << r.error;
        if (r.sc.fault == bist::fault_kind::pa_gain_drop) {
            EXPECT_FALSE(r.report.power_pass) << "gain drop must trip the "
                                                 "output-power check";
        }
    }
}

TEST(CampaignRunner, EngineErrorsAreCapturedNotFatal) {
    campaign_config cfg;
    cfg.base.fast_samples = 16; // violates the engine precondition
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 1;
    cfg.threads = 1;
    const auto result = campaign_runner(cfg).run();
    ASSERT_EQ(result.results.size(), 1u);
    EXPECT_TRUE(result.results[0].engine_error);
    EXPECT_FALSE(result.results[0].error.empty());
    EXPECT_TRUE(result.results[0].flagged());
    EXPECT_EQ(result.golden_passes, 0u);
    EXPECT_DOUBLE_EQ(result.yield(), 0.0);
}

// ---- legacy wrapper ---------------------------------------------------------

TEST(RunCatalogue, MatchesLegacySerialLoopBitExactly) {
    bist::bist_config base;
    base.tiadc.quant.full_scale = 2.0;
    const std::vector<waveform::standard_preset> presets = {
        waveform::find_preset("paper-qpsk-10M"),
        waveform::find_preset("tactical-bpsk-2M")};

    const auto reports = bist::run_catalogue(base, presets);
    ASSERT_EQ(reports.size(), presets.size());

    // The pre-campaign implementation, inlined: same config, same mask
    // relaxation, base seeds untouched.
    for (std::size_t i = 0; i < presets.size(); ++i) {
        bist::bist_config cfg = base;
        cfg.preset = presets[i];
        const double occupied = presets[i].stimulus.symbol_rate *
                                (1.0 + presets[i].stimulus.rolloff);
        const double floor = waveform::bist_measurement_floor_dbc(
            presets[i].default_carrier_hz, cfg.tiadc.jitter_rms_s, occupied,
            cfg.tiadc.channel_rate_hz);
        cfg.preset.mask =
            waveform::relax_to_measurement_floor(presets[i].mask, floor);
        const auto legacy = bist::bist_engine(cfg).run();

        EXPECT_EQ(reports[i].preset_name, legacy.preset_name);
        EXPECT_DOUBLE_EQ(reports[i].skew.d_hat, legacy.skew.d_hat);
        EXPECT_DOUBLE_EQ(reports[i].evm.evm_rms, legacy.evm.evm_rms);
        EXPECT_DOUBLE_EQ(reports[i].mask.worst_margin_db,
                         legacy.mask.worst_margin_db);
        EXPECT_EQ(reports[i].pass(), legacy.pass());
    }
}

TEST(RunCatalogue, EmptyPresetListReturnsNoReports) {
    // Legacy semantics: the serial loop ran zero times; the campaign
    // wrapper must not trade that for a contract violation.
    const auto reports = bist::run_catalogue(bist::bist_config{}, {});
    EXPECT_TRUE(reports.empty());
}

TEST(RunCatalogue, PresetAcprOffsetIsPreserved) {
    // dqpsk-1M pins its adjacent channel at 2 MHz; grading it through the
    // catalogue must use that offset, not the generic 1.5 × occupied one.
    bist::bist_config base;
    base.tiadc.quant.full_scale = 2.0;
    auto preset = waveform::find_preset("dqpsk-1M");
    ASSERT_DOUBLE_EQ(preset.acpr_offset_hz, 2.0 * MHz);

    const auto via_catalogue = bist::run_catalogue(base, {preset});
    ASSERT_EQ(via_catalogue.size(), 1u);

    // Reference: the same engine run with the offset forced explicitly.
    bist::bist_config explicit_cfg = base;
    explicit_cfg.preset = preset;
    explicit_cfg.acpr_offset_hz = 2.0 * MHz;
    {
        const double occupied = preset.stimulus.symbol_rate *
                                (1.0 + preset.stimulus.rolloff);
        const double floor = waveform::bist_measurement_floor_dbc(
            preset.default_carrier_hz, explicit_cfg.tiadc.jitter_rms_s,
            occupied, explicit_cfg.tiadc.channel_rate_hz);
        explicit_cfg.preset.mask =
            waveform::relax_to_measurement_floor(preset.mask, floor);
    }
    const auto reference = bist::bist_engine(explicit_cfg).run();
    EXPECT_DOUBLE_EQ(via_catalogue[0].acpr.lower_dbc, reference.acpr.lower_dbc);
    EXPECT_DOUBLE_EQ(via_catalogue[0].acpr.upper_dbc, reference.acpr.upper_dbc);

    // And the preset offset genuinely changes the measurement (i.e. it is
    // not the auto offset in disguise).
    auto auto_preset = preset;
    auto_preset.acpr_offset_hz = 0.0;
    const auto auto_reports = bist::run_catalogue(base, {auto_preset});
    EXPECT_NE(via_catalogue[0].acpr.lower_dbc, auto_reports[0].acpr.lower_dbc);
}

} // namespace

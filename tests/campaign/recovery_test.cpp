// Failure containment under deterministic fault injection: transient
// failures retry to bit-identical results, contract violations never
// retry, exhausted retries give up without killing the campaign, retried
// successes still land in the cache, deadlines mark overruns, and the
// retry telemetry counters mirror the per-row accounting exactly.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"
#include "core/telemetry.hpp"
#include "support/scratch_dir.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sdrbist;
using namespace sdrbist::campaign;
namespace fi = sdrbist::fault_injection;
namespace tm = sdrbist::telemetry;
using sdrbist::testing::scratch_dir;

/// Injection and telemetry are process-global: every test starts and ends
/// with both disarmed/zeroed so the rest of the campaign suite is
/// unaffected by whatever this one armed.
class CampaignRecovery : public ::testing::Test {
protected:
    void SetUp() override {
        fi::disarm();
        tm::disable();
        tm::reset();
    }
    void TearDown() override {
        fi::disarm();
        tm::disable();
        tm::reset();
    }
};

campaign_config small_campaign() {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 1;
    cfg.threads = 1; // single-threaded: injected arrival order is exact
    cfg.seed = 0xFA117ull;
    cfg.retry_backoff_ms = 0.0; // keep tests fast; backoff timing has its
                                // own assertions below
    return cfg;
}

std::string timing_free_json(const campaign_result& r) {
    export_options opt;
    opt.include_timing = false;
    return to_json(r, opt);
}

std::uint64_t counter_at(const std::array<std::uint64_t, tm::counter_count>& c,
                         tm::counter which) {
    return c[static_cast<std::size_t>(which)];
}

TEST_F(CampaignRecovery, TransientFailureRetriesToBitIdenticalResult) {
    auto cfg = small_campaign();
    const auto clean = campaign_runner(cfg).run();

    // Exactly one injected transient at the first calibration entry.
    fi::arm("stage.calibration:throw-transient:count=1");
    tm::enable();
    const auto faulted = campaign_runner(cfg).run();

    EXPECT_EQ(timing_free_json(faulted), timing_free_json(clean));
    EXPECT_EQ(faulted.scenario_retries, 1u);
    EXPECT_EQ(faulted.scenario_gave_up, 0u);
    EXPECT_EQ(faulted.results[0].attempts, 2u);
    EXPECT_FALSE(faulted.results[0].engine_error);
    EXPECT_EQ(faulted.results[1].attempts, 1u);

    // Counter <-> result exactness, same contract as the cache counters.
    const auto counts = tm::counters();
    EXPECT_EQ(counter_at(counts, tm::counter::scenario_retries),
              faulted.scenario_retries);
    EXPECT_EQ(counter_at(counts, tm::counter::scenario_failures), 1u);
    EXPECT_EQ(counter_at(counts, tm::counter::scenario_gave_up), 0u);
}

TEST_F(CampaignRecovery, ContractViolationsAreNeverRetried) {
    auto cfg = small_campaign();
    cfg.max_retries = 5;
    fi::arm("stage.grading:throw-contract:count=1");
    const auto result = campaign_runner(cfg).run();

    // The scenario that hit the injected contract fault failed once,
    // finally, with no retry spent on it.
    EXPECT_EQ(result.scenario_retries, 0u);
    EXPECT_EQ(result.scenario_gave_up, 0u);
    std::size_t errors = 0;
    for (const auto& r : result.results)
        if (r.engine_error) {
            ++errors;
            EXPECT_EQ(r.attempts, 1u);
            EXPECT_FALSE(r.gave_up);
            EXPECT_NE(r.error.find("injected contract fault"),
                      std::string::npos);
        }
    EXPECT_EQ(errors, 1u);
}

TEST_F(CampaignRecovery, ExhaustedRetriesGiveUpWithoutKillingTheCampaign) {
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.max_retries = 2;
    fi::arm("stage.calibration:throw-transient"); // every arrival
    tm::enable();
    const auto result = campaign_runner(cfg).run();

    ASSERT_EQ(result.scenario_count(), 1u);
    const auto& row = result.results[0];
    EXPECT_TRUE(row.gave_up);
    EXPECT_TRUE(row.engine_error);
    EXPECT_EQ(row.attempts, cfg.max_retries + 1);
    EXPECT_EQ(result.scenario_gave_up, 1u);
    EXPECT_EQ(result.scenario_retries, cfg.max_retries);

    const auto counts = tm::counters();
    EXPECT_EQ(counter_at(counts, tm::counter::scenario_gave_up), 1u);
    EXPECT_EQ(counter_at(counts, tm::counter::scenario_failures),
              cfg.max_retries + 1);
}

TEST_F(CampaignRecovery, BackoffIsBoundedAndRecorded) {
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.max_retries = 3;
    cfg.retry_backoff_ms = 0.25;
    fi::arm("stage.calibration:throw-transient");
    const auto result = campaign_runner(cfg).run();

    // Exponential doubling from the base: 0.25 + 0.5 + 1.0.
    EXPECT_TRUE(result.results[0].gave_up);
    EXPECT_DOUBLE_EQ(result.results[0].backoff_ms, 0.25 + 0.5 + 1.0);
}

TEST_F(CampaignRecovery, RetriedSuccessStillLandsInTheCache) {
    const scratch_dir dir("retry_cache");
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.cache_dir = dir.path.string();

    // The transient fires at dispatch, *before* the cache key is even
    // derived — the retried success must still be stored.
    fi::arm("pool.dispatch:throw-transient:count=1");
    const auto cold = campaign_runner(cfg).run();
    EXPECT_EQ(cold.results[0].attempts, 2u);
    EXPECT_FALSE(cold.results[0].engine_error);
    EXPECT_EQ(cold.cache_misses, 1u);

    fi::disarm();
    const auto warm = campaign_runner(cfg).run();
    EXPECT_EQ(warm.cache_hits, 1u);
    EXPECT_EQ(warm.cache_misses, 0u);
    EXPECT_EQ(timing_free_json(warm), timing_free_json(cold));
}

TEST_F(CampaignRecovery, GaveUpResultsAreNotCached) {
    const scratch_dir dir("gave_up_cache");
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.cache_dir = dir.path.string();
    cfg.max_retries = 0;

    fi::arm("stage.calibration:throw-transient");
    const auto broken = campaign_runner(cfg).run();
    EXPECT_TRUE(broken.results[0].gave_up);

    // With the fault gone, the rerun must re-attempt (miss), not replay
    // the environment-dependent give-up.
    fi::disarm();
    const auto healed = campaign_runner(cfg).run();
    EXPECT_EQ(healed.cache_hits, 0u);
    EXPECT_EQ(healed.cache_misses, 1u);
    EXPECT_FALSE(healed.results[0].engine_error);
}

TEST_F(CampaignRecovery, DeadlineMarksOverrunsAsTimedOut) {
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    cfg.scenario_deadline_s = 1e-4; // any real scenario blows this budget
    const auto result = campaign_runner(cfg).run();

    ASSERT_EQ(result.scenario_count(), 1u);
    const auto& row = result.results[0];
    EXPECT_TRUE(row.timed_out);
    EXPECT_TRUE(row.engine_error);
    EXPECT_EQ(row.error, "scenario deadline exceeded");
    EXPECT_EQ(row.attempts, 1u) << "an overrun is final, never retried";
    EXPECT_FALSE(row.gave_up);
}

TEST_F(CampaignRecovery, LowRateInjectionAtEverySiteIsFullyContained) {
    // The headline acceptance property: a campaign with transient faults
    // firing at ~5% at *every* registered site completes with reports
    // bit-identical to the clean run's.
    auto cfg = small_campaign();
    cfg.trials = 2;
    cfg.max_retries = 8;
    const auto clean = campaign_runner(cfg).run();

    fi::arm("*:throw-transient:p=0.05,seed=1234");
    const auto faulted = campaign_runner(cfg).run();

    EXPECT_EQ(faulted.scenario_gave_up, 0u)
        << "p=0.05 with 8 retries must never exhaust";
    EXPECT_GT(faulted.scenario_retries, 0u)
        << "the spec fires somewhere across 4 scenarios x 6+ sites "
           "(raise p or change the seed if this ever trips)";
    EXPECT_EQ(timing_free_json(faulted), timing_free_json(clean));
    EXPECT_EQ(coverage_csv(faulted), coverage_csv(clean));
    export_options opt;
    opt.include_timing = false;
    EXPECT_EQ(scenarios_csv(faulted, opt), scenarios_csv(clean, opt));
}

} // namespace

// Distributed campaign service: lease-ledger lifecycle (grant → beat →
// complete; grant → lapse → re-queue; stale generations rejected),
// protocol framing over loopback, and the end-to-end contract — a
// coordinator plus workers (including one killed mid-lease) produces a
// result bit-identical to a single-process run, with the service.*
// telemetry counters exactly mirroring the ledger stats.  Plus the two
// satellite regressions: atomic shard-file publication (no torn reads)
// and cold-start --resume (a missing journal is created, not rejected).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#endif

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "campaign/journal.hpp"
#include "campaign/service/coordinator.hpp"
#include "campaign/service/lease_ledger.hpp"
#include "campaign/service/protocol.hpp"
#include "campaign/service/worker.hpp"
#include "campaign/shard_io.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"
#include "core/telemetry.hpp"
#include "support/scratch_dir.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sdrbist;
using namespace sdrbist::campaign;
using namespace sdrbist::campaign::service;
namespace tm = sdrbist::telemetry;
using sdrbist::testing::scratch_dir;

campaign_config small_grid() {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M"),
                   waveform::find_preset("tactical-bpsk-2M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 1;
    cfg.threads = 1;
    cfg.seed = 0x5E11Aull;
    return cfg;
}

std::string fingerprint(const campaign_result& r) {
    export_options opt;
    opt.include_timing = false;
    return to_json(r, opt);
}

std::uint64_t counter_at(const std::array<std::uint64_t, tm::counter_count>& c,
                         tm::counter which) {
    return c[static_cast<std::size_t>(which)];
}

// ---- lease ledger lifecycle -------------------------------------------------

TEST(LeaseLedger, PartitionCoversGridExactlyOnce) {
    const lease_ledger ledger(10, 4);
    ASSERT_EQ(ledger.lease_count(), 3u);
    EXPECT_EQ(ledger.range_of(0).begin, 0u);
    EXPECT_EQ(ledger.range_of(0).end, 4u);
    EXPECT_EQ(ledger.range_of(1).begin, 4u);
    EXPECT_EQ(ledger.range_of(2).begin, 8u);
    EXPECT_EQ(ledger.range_of(2).end, 10u); // last lease is short
    // Every grid index in exactly one lease.
    for (std::size_t i = 0; i < 10; ++i) {
        std::size_t owners = 0;
        for (std::size_t k = 0; k < ledger.lease_count(); ++k)
            owners += ledger.range_of(k).contains(i);
        EXPECT_EQ(owners, 1u) << "index " << i;
    }
}

TEST(LeaseLedger, GrantHeartbeatCompleteLifecycle) {
    lease_ledger ledger(4, 2);
    const auto g = ledger.grant(/*owner=*/1, /*now_s=*/0.0);
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->lease, 0u);
    EXPECT_EQ(g->generation, 1u);

    EXPECT_TRUE(ledger.beat(g->lease, g->generation, 1.0));
    EXPECT_TRUE(ledger.complete(g->lease, g->generation));
    EXPECT_FALSE(ledger.all_complete());
    // Completed leases reject further frames (late duplicates).
    EXPECT_FALSE(ledger.beat(g->lease, g->generation, 2.0));
    EXPECT_FALSE(ledger.complete(g->lease, g->generation));

    const auto g2 = ledger.grant(2, 2.0);
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->lease, 1u);
    EXPECT_TRUE(ledger.complete(g2->lease, g2->generation));
    EXPECT_TRUE(ledger.all_complete());
    EXPECT_FALSE(ledger.grant(3, 3.0).has_value());

    const ledger_stats stats = ledger.stats();
    EXPECT_EQ(stats.leases, 2u);
    EXPECT_EQ(stats.requeues, 0u);
    EXPECT_EQ(stats.heartbeats, 1u);
    EXPECT_EQ(stats.completed, 2u);
}

TEST(LeaseLedger, LapsedLeaseRequeuesAndStaleGenerationIsRejected) {
    lease_ledger ledger(2, 2); // single lease
    const auto g1 = ledger.grant(1, 0.0);
    ASSERT_TRUE(g1.has_value());
    // Within the timeout nothing lapses; beats refresh the clock.
    EXPECT_EQ(ledger.requeue_lapsed(/*now_s=*/2.0, /*timeout_s=*/3.0), 0u);
    EXPECT_TRUE(ledger.beat(g1->lease, g1->generation, 2.0));
    EXPECT_EQ(ledger.requeue_lapsed(4.0, 3.0), 0u); // beat at 2.0 keeps it
    // Silence past the timeout re-queues.
    EXPECT_EQ(ledger.requeue_lapsed(6.0, 3.0), 1u);

    // The old generation is dead: its frames no longer count.
    EXPECT_FALSE(ledger.beat(g1->lease, g1->generation, 6.0));
    EXPECT_FALSE(ledger.complete(g1->lease, g1->generation));

    const auto g2 = ledger.grant(2, 7.0);
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->lease, g1->lease);
    EXPECT_EQ(g2->generation, g1->generation + 1);
    EXPECT_TRUE(ledger.complete(g2->lease, g2->generation));
    EXPECT_TRUE(ledger.all_complete());

    const ledger_stats stats = ledger.stats();
    EXPECT_EQ(stats.leases, 2u);
    EXPECT_EQ(stats.requeues, 1u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(LeaseLedger, DeadOwnerRequeuesOnlyItsLeases) {
    lease_ledger ledger(6, 2);
    const auto a = ledger.grant(/*owner=*/7, 0.0);
    const auto b = ledger.grant(/*owner=*/8, 0.0);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(ledger.requeue_owner(7), 1u);
    EXPECT_FALSE(ledger.beat(a->lease, a->generation, 1.0));
    EXPECT_TRUE(ledger.beat(b->lease, b->generation, 1.0));
    // The re-queued lease is grantable again, fresh generation.
    const auto a2 = ledger.grant(9, 1.0);
    ASSERT_TRUE(a2.has_value());
    EXPECT_EQ(a2->lease, a->lease);
    EXPECT_EQ(a2->generation, a->generation + 1);
}

TEST(LeaseLedger, TelemetryCountersMirrorStatsExactly) {
    tm::reset();
    tm::enable(/*capture_trace=*/false);
    const auto before = tm::counters();
    lease_ledger ledger(4, 1);
    const auto g0 = ledger.grant(1, 0.0);
    const auto g1 = ledger.grant(1, 0.0);
    ASSERT_TRUE(g0 && g1);
    ledger.beat(g0->lease, g0->generation, 1.0);
    ledger.beat(g1->lease, g1->generation, 1.0);
    ledger.requeue_lapsed(10.0, 3.0); // both lapse
    const auto g2 = ledger.grant(2, 10.0);
    ASSERT_TRUE(g2);
    ledger.complete(g2->lease, g2->generation);
    const auto after = tm::counters();
    tm::disable();
    tm::reset();

    const ledger_stats stats = ledger.stats();
    EXPECT_EQ(stats.leases, 3u);
    EXPECT_EQ(stats.requeues, 2u);
    EXPECT_EQ(stats.heartbeats, 2u);
    EXPECT_EQ(counter_at(after, tm::counter::service_leases) -
                  counter_at(before, tm::counter::service_leases),
              stats.leases);
    EXPECT_EQ(counter_at(after, tm::counter::service_requeues) -
                  counter_at(before, tm::counter::service_requeues),
              stats.requeues);
    EXPECT_EQ(counter_at(after, tm::counter::service_heartbeats) -
                  counter_at(before, tm::counter::service_heartbeats),
              stats.heartbeats);
}

// ---- protocol framing -------------------------------------------------------

TEST(ServiceProtocol, FrameRoundTripOverLoopback) {
    tcp_listener listener("127.0.0.1", 0);
    ASSERT_GT(listener.port(), 0);

    auto client = std::async(std::launch::async, [&] {
        tcp_socket c = tcp_connect("127.0.0.1", listener.port());
        send_frame(c, R"({"type":"ping","n":1})");
        return recv_frame(c);
    });
    tcp_socket server = listener.accept(/*timeout_s=*/5.0);
    ASSERT_TRUE(server.valid());
    const json_value msg = recv_message(server);
    EXPECT_EQ(msg.at("type").as_string(), "ping");
    // Large frame (bigger than any socket buffer) survives intact.
    const std::string big(2 * 1024 * 1024, 'x');
    send_frame(server, "{\"blob\":\"" + big + "\"}");
    const std::string reply = client.get();
    EXPECT_EQ(reply.size(), big.size() + 11);
}

TEST(ServiceProtocol, PeerDeathIsTransientOversizeIsContract) {
    tcp_listener listener("127.0.0.1", 0);
    auto client = std::async(std::launch::async, [&] {
        tcp_socket c = tcp_connect("127.0.0.1", listener.port());
        c.close(); // die immediately
    });
    tcp_socket server = listener.accept(5.0);
    ASSERT_TRUE(server.valid());
    client.get();
    EXPECT_THROW(recv_frame(server), fault_injection::transient_fault);

#if defined(__unix__) || defined(__APPLE__)
    // A length prefix past the protocol bound is a violation, not an
    // allocation: 0xFFFFFFFF.
    auto client2 = std::async(std::launch::async, [&] {
        tcp_socket c = tcp_connect("127.0.0.1", listener.port());
        const char evil[4] = {'\xFF', '\xFF', '\xFF', '\xFF'};
        ::send(c.fd(), evil, 4, 0);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    });
    tcp_socket server2 = listener.accept(5.0);
    ASSERT_TRUE(server2.valid());
    EXPECT_THROW(recv_frame(server2), contract_violation);
    client2.get();
#endif
}

// ---- lease-range filtering (the unit the service leases) --------------------

TEST(ServiceLease, ContiguousLeasePartitionMergesBitIdentically) {
    const auto cfg = small_grid();
    const auto whole = campaign_runner(cfg).run();
    ASSERT_EQ(whole.grid_size, 4u);

    std::vector<campaign_result> pieces;
    for (const auto range :
         {lease_range{0, 1}, lease_range{1, 3}, lease_range{3, 4}}) {
        auto piece_cfg = cfg;
        piece_cfg.lease = range;
        pieces.push_back(campaign_runner(piece_cfg).run());
        EXPECT_EQ(pieces.back().results.size(), range.size());
        for (const auto& row : pieces.back().results)
            EXPECT_TRUE(range.contains(row.sc.index));
    }
    EXPECT_EQ(fingerprint(merge_results(pieces)), fingerprint(whole));
}

// ---- end-to-end: coordinator + workers over loopback ------------------------

TEST(CampaignService, TwoWorkersMatchSingleProcessBitIdentically) {
    const auto cfg = small_grid();
    const auto reference = campaign_runner(cfg).run();

    service_config svc;
    svc.port = 0; // ephemeral
    svc.lease_size = 1;
    svc.heartbeat_s = 1.0; // generous: rows count as beats anyway
    coordinator coord(cfg, svc);
    svc.port = coord.port();

    auto served = std::async(std::launch::async, [&] { return coord.serve(); });
    auto w1 = std::async(std::launch::async,
                         [&] { return run_worker(cfg, svc); });
    auto w2 = std::async(std::launch::async,
                         [&] { return run_worker(cfg, svc); });
    const worker_report r1 = w1.get();
    const worker_report r2 = w2.get();
    const service_report report = served.get();

    EXPECT_EQ(fingerprint(report.result), fingerprint(reference));
    EXPECT_EQ(report.leases.leases, 4u);
    EXPECT_EQ(report.leases.requeues, 0u);
    EXPECT_EQ(report.leases.completed, 4u);
    EXPECT_EQ(report.workers_seen, 2u);
    EXPECT_EQ(report.dropped_connections, 0u);
    EXPECT_EQ(r1.leases + r2.leases, 4u);
    EXPECT_EQ(r1.rows + r2.rows, 4u);
    EXPECT_EQ(r1.stale + r2.stale, 0u);
}

/// The kill-one-worker-mid-lease contract, in-process: a client that
/// takes a lease and silently dies (socket closed — exactly what SIGKILL
/// does to a worker's connection) must have its lease re-queued, and the
/// merged result must stay bit-identical to an uninterrupted run.
TEST(CampaignService, DeadWorkerMidLeaseIsRequeuedBitIdentically) {
    const auto cfg = small_grid();
    const auto reference = campaign_runner(cfg).run();

    tm::reset();
    tm::enable(/*capture_trace=*/false);
    const auto before = tm::counters();

    service_config svc;
    svc.lease_size = 1;
    svc.heartbeat_s = 1.0;
    coordinator coord(cfg, svc);
    svc.port = coord.port();

    auto served = std::async(std::launch::async, [&] { return coord.serve(); });

    {
        // Saboteur: handshake, take one lease, drop dead mid-lease.
        tcp_socket c = tcp_connect("127.0.0.1", svc.port);
        json_object_writer hello;
        hello.string_field("type", "hello");
        hello.size_field("protocol_version",
                         static_cast<std::size_t>(protocol_version));
        hello.string_field("identity", campaign_identity(cfg));
        send_frame(c, hello.str());
        ASSERT_EQ(recv_message(c).at("type").as_string(), "welcome");
        send_frame(c, R"({"type":"request"})");
        const json_value lease = recv_message(c);
        ASSERT_EQ(lease.at("type").as_string(), "lease");
        c.close(); // SIGKILL equivalent: EOF with the lease outstanding
    }

    const worker_report wr =
        std::async(std::launch::async, [&] { return run_worker(cfg, svc); })
            .get();
    const service_report report = served.get();
    const auto after = tm::counters();
    tm::disable();
    tm::reset();

    EXPECT_EQ(fingerprint(report.result), fingerprint(reference));
    // The dead client's lease was granted, re-queued once, re-granted.
    EXPECT_EQ(report.leases.requeues, 1u);
    EXPECT_EQ(report.leases.leases, 5u); // 4 leases + 1 re-grant
    EXPECT_EQ(report.dropped_connections, 1u);
    EXPECT_EQ(report.workers_seen, 2u);
    EXPECT_EQ(wr.leases, 4u);
    // Counter ≡ result: the service counters match the ledger exactly.
    EXPECT_EQ(counter_at(after, tm::counter::service_requeues) -
                  counter_at(before, tm::counter::service_requeues),
              report.leases.requeues);
    EXPECT_EQ(counter_at(after, tm::counter::service_leases) -
                  counter_at(before, tm::counter::service_leases),
              report.leases.leases);
    EXPECT_EQ(counter_at(after, tm::counter::service_heartbeats) -
                  counter_at(before, tm::counter::service_heartbeats),
              report.leases.heartbeats);
}

TEST(CampaignService, MismatchedGridIsRejectedAtHandshake) {
    const auto cfg = small_grid();
    coordinator coord(cfg, service_config{});
    service_config svc;
    svc.port = coord.port();

    auto served = std::async(std::launch::async, [&] { return coord.serve(); });

    auto wrong = cfg;
    wrong.seed ^= 1; // different grid → different identity digest
    EXPECT_THROW(run_worker(wrong, svc), contract_violation);

    // The coordinator survives the rejection and serves the honest worker.
    const worker_report wr = run_worker(cfg, svc);
    const service_report report = served.get();
    EXPECT_EQ(wr.leases, report.leases.completed);
    EXPECT_EQ(report.result.results.size(), 4u);
}

// ---- satellite regression: atomic shard-file publication --------------------

campaign_result synthetic_result(std::size_t rows) {
    campaign_result r;
    r.preset_names = {"p0"};
    r.fault_names = {"none"};
    r.trials = rows;
    r.seed = 0xF00Dull;
    r.grid_size = rows;
    for (std::size_t i = 0; i < rows; ++i) {
        scenario_result row;
        row.sc.index = i;
        row.sc.preset_index = 0;
        row.sc.fault_index = 0;
        row.sc.fault = bist::fault_kind::none;
        row.sc.trial = i;
        row.sc.preset_name = "p0";
        r.results.push_back(std::move(row));
    }
    return r;
}

TEST(ShardAtomicWrite, PublishLeavesNoTempFilesAndFailureKeepsOldFile) {
    const scratch_dir dir("shard-atomic");
    const std::string path = dir.file("result.json");
    const auto a = synthetic_result(3);
    ASSERT_TRUE(write_result_file(path, a));
    const std::string published = result_to_json(read_result_file(path));

    // A write that cannot publish (missing directory) reports failure and
    // leaves nothing behind — no target, no stray temp file.
    const std::string orphan = dir.file("missing/sub/result.json");
    EXPECT_FALSE(write_result_file(orphan, a));
    std::size_t stray = 0;
    for (const auto& e : fs::recursive_directory_iterator(dir.path))
        stray += e.path().filename().string().find(".tmp.") !=
                 std::string::npos;
    EXPECT_EQ(stray, 0u);

    // Overwrites publish atomically too: the old content stays readable
    // until the rename lands, so a reader never sees a torn file.
    EXPECT_TRUE(write_result_file(path, synthetic_result(4)));
    EXPECT_EQ(read_result_file(path).results.size(), 4u);
    EXPECT_NE(result_to_json(read_result_file(path)), published);
}

TEST(ShardAtomicWrite, ConcurrentReaderNeverSeesATornFile) {
    const scratch_dir dir("shard-torn");
    const std::string path = dir.file("result.json");
    const auto result = synthetic_result(16);
    ASSERT_TRUE(write_result_file(path, result));
    const std::string expect = result_to_json(read_result_file(path));

    std::atomic<bool> stop{false};
    auto writer = std::async(std::launch::async, [&] {
        for (int i = 0; i < 50; ++i)
            ASSERT_TRUE(write_result_file(path, result));
        stop = true;
    });
    // With the pre-fix trunc-then-write, this reliably read half-written
    // files ("malformed shard file").  Rename publication means every
    // read observes a complete file.
    std::size_t reads = 0;
    while (!stop.load()) {
        EXPECT_EQ(result_to_json(read_result_file(path)), expect);
        ++reads;
    }
    writer.get();
    EXPECT_GT(reads, 0u);
}

// ---- satellite regression: cold-start --resume ------------------------------

TEST(JournalColdStart, ResumeAgainstMissingJournalStartsFresh) {
    const scratch_dir dir("journal-cold");
    auto cfg = small_grid();
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none};
    cfg.journal_path = dir.file("journal.jsonl");
    cfg.resume = true; // the service worker loop always passes this

    ASSERT_FALSE(fs::exists(cfg.journal_path));
    const auto first = campaign_runner(cfg).run();
    EXPECT_EQ(first.resumed, 0u); // cold start: nothing restored
    EXPECT_TRUE(fs::exists(cfg.journal_path));

    // Second run restores every row from the journal just written.
    const auto second = campaign_runner(cfg).run();
    EXPECT_EQ(second.resumed, second.results.size());
    EXPECT_EQ(fingerprint(second), fingerprint(first));
}

TEST(JournalColdStart, JournalWriterCreatesHeaderOnMissingFile) {
    const scratch_dir dir("journal-cold-hdr");
    const std::string path = dir.file("fresh.jsonl");
    {
        campaign_journal j(path, "identity-digest", /*resume=*/true);
    }
    const journal_replay replay = read_journal(path);
    EXPECT_EQ(replay.identity, "identity-digest");
    EXPECT_TRUE(replay.rows.empty());
    // An unreadable *existing* journal still fails loudly (unchanged).
    EXPECT_THROW(read_journal(dir.file("absent.jsonl")), contract_violation);
}

} // namespace

// Golden-artefact regression tests: the committed fixtures under
// tests/campaign/golden/ pin the exporter output byte-for-byte (timing
// suppressed), so any drift in field order, number formatting, quoting or
// row layout is caught at review time as a fixture diff.
//
// The golden campaign_result is synthesised from fixed values rather than
// engine runs: fixtures must be identical across compilers and platforms,
// and what these tests lock is the *exporter*, not the DSP.  Aggregation
// still goes through the real merge_results() path.
//
// Regenerate after an intentional format change with:
//   SDRBIST_REGEN_GOLDEN=1 ./test_campaign --gtest_filter='Golden*'
// and commit the resulting fixture diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sdrbist;
using namespace sdrbist::campaign;

const fs::path golden_dir = fs::path(SDRBIST_TEST_DIR) / "golden";

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path
                           << " (regenerate with SDRBIST_REGEN_GOLDEN=1)";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// Fixed synthetic campaign: 2 presets x 2 faults x 1 trial.  Values are
/// plain literals (exactly representable conversions), so the shortest
/// round-trip rendering is identical on every platform.  Names exercise
/// JSON escaping and CSV quoting; one row exercises the engine-error path.
campaign_result golden_result() {
    campaign_result shard;
    shard.preset_names = {"golden-qpsk-10M", "golden \"odd, name\""};
    shard.fault_names = {"none", "pa-gain-drop"};
    shard.trials = 1;
    shard.seed = 0x60111DE2ull;
    shard.grid_size = 4;

    for (std::size_t i = 0; i < 4; ++i) {
        scenario_result row;
        row.sc.index = i;
        row.sc.preset_index = i / 2;
        row.sc.fault_index = i % 2;
        row.sc.trial = 0;
        row.sc.fault = (i % 2) == 0 ? bist::fault_kind::none
                                    : bist::fault_kind::pa_gain_drop;
        row.sc.preset_name = shard.preset_names[row.sc.preset_index];
        row.sc.seed = 0xDEC0DE00ull + i;
        row.elapsed_s = 0.125 + 0.5 * static_cast<double>(i); // must never leak

        bist::bist_report& rep = row.report;
        rep.preset_name = row.sc.preset_name;
        rep.carrier_hz = 1.0e9 + 2.5e6 * static_cast<double>(i);
        rep.skew.d_hat = 1.8e-10 + 1.0e-12 * static_cast<double>(i);
        rep.skew.converged = true;
        rep.dual_rate_conditions_ok = true;
        rep.mask.pass = (i % 2) == 0;
        rep.mask.worst_margin_db = 4.5 - 2.25 * static_cast<double>(i);
        rep.evm.evm_rms = 0.0075 * static_cast<double>(i + 1);
        rep.evm_pass = true;
        rep.measured_output_rms = 1.5 - 0.125 * static_cast<double>(i);
        rep.power_pass = (i % 2) == 0;
        rep.acpr.lower_dbc = -42.5 + static_cast<double>(i);
        rep.acpr.upper_dbc = -40.25 - static_cast<double>(i);
        rep.acpr_pass = true;
        rep.occupied_bw_hz = 1.5e7;

        if (i == 3) { // engine-error path: message with quoting + control char
            row.engine_error = true;
            row.error = "precondition violated: `fast_samples >= 64`\n"
                        "while grading \"golden\"";
        }
        shard.results.push_back(std::move(row));
    }
    // Aggregate through the real code path (also exercises the degenerate
    // single-shard merge).
    return merge_results({shard});
}

export_options golden_options() {
    export_options opt;
    opt.include_timing = false;
    return opt;
}

/// Compare against (or regenerate) one fixture.
void check_fixture(const std::string& name, const std::string& actual) {
    const fs::path path = golden_dir / name;
    if (std::getenv("SDRBIST_REGEN_GOLDEN") != nullptr) {
        fs::create_directories(golden_dir);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << actual;
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        return;
    }
    EXPECT_EQ(actual, read_file(path))
        << "exporter output drifted from " << path
        << " — if intentional, regenerate with SDRBIST_REGEN_GOLDEN=1 and "
           "review the fixture diff";
}

TEST(GoldenArtefacts, CampaignJson) {
    check_fixture("campaign.json", to_json(golden_result(), golden_options()));
}

TEST(GoldenArtefacts, CoverageCsv) {
    check_fixture("coverage.csv", coverage_csv(golden_result()));
}

TEST(GoldenArtefacts, ScenariosCsv) {
    check_fixture("scenarios.csv",
                  scenarios_csv(golden_result(), golden_options()));
}

TEST(GoldenArtefacts, ScenariosJsonl) {
    check_fixture("scenarios.jsonl",
                  scenarios_jsonl(golden_result(), golden_options()));
}

TEST(GoldenArtefacts, FixturesContainNoMeasuredFields) {
    // The committed artefacts must never contain measured data; this locks
    // the fixtures themselves, independent of the exporter audit tests.
    for (const char* name :
         {"campaign.json", "scenarios.csv", "scenarios.jsonl"}) {
        if (std::getenv("SDRBIST_REGEN_GOLDEN") != nullptr)
            GTEST_SKIP() << "regenerating";
        const std::string body = read_file(golden_dir / name);
        for (const char* field :
             {"elapsed_s", "wall_seconds", "scenario_cpu_seconds",
              "scenarios_per_second", "cache_hits", "cache_misses"})
            EXPECT_EQ(body.find(field), std::string::npos)
                << field << " leaked into fixture " << name;
    }
}

// ---- streaming sink ---------------------------------------------------------

TEST(JsonlStream, CompletionOrderStreamsThenFinaliseRestoresGridOrder) {
    const auto result = golden_result();
    const fs::path path = "jsonl_stream_test.tmp.jsonl";
    fs::remove(path);
    {
        jsonl_stream stream(path.string(), golden_options());
        // Simulate out-of-order parallel completion.
        for (const std::size_t i : {2u, 0u, 3u, 1u}) {
            stream.append(result.results[i]);
            // Every appended row is on disk immediately (tail -f property).
            std::istringstream lines(read_file(path));
            std::string line;
            std::size_t count = 0;
            while (std::getline(lines, line)) {
                EXPECT_EQ(line.front(), '{');
                EXPECT_EQ(line.back(), '}');
                ++count;
            }
            EXPECT_EQ(count, stream.rows());
        }
        EXPECT_EQ(stream.rows(), 4u);
        stream.finalise();
        stream.finalise(); // idempotent
    }
    // After finalise the artefact is deterministic: byte-identical to the
    // one-shot exporter, hence to the committed fixture.
    EXPECT_EQ(read_file(path), scenarios_jsonl(result, golden_options()));
    fs::remove(path);
}

TEST(JsonlStream, DestructorFinalises) {
    const auto result = golden_result();
    const fs::path path = "jsonl_dtor_test.tmp.jsonl";
    fs::remove(path);
    {
        jsonl_stream stream(path.string(), golden_options());
        stream.append(result.results[1]);
        stream.append(result.results[0]);
    } // no explicit finalise
    const std::string body = read_file(path);
    const std::string expected =
        scenario_json(result.results[0], golden_options()) + "\n" +
        scenario_json(result.results[1], golden_options()) + "\n";
    EXPECT_EQ(body, expected);
    fs::remove(path);
}

} // namespace

/// \file scheduler_stress_test.cpp
/// \brief Scheduler determinism under stress: a 64-scenario pooled grid
///        swept over {1,2,4,8} threads must export byte-identical
///        reports, and fault-injected transients (task dispatch and
///        stage sites) must retry inside the right scenario even when
///        tasks are stolen across workers.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "core/fault_injection.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::campaign;
namespace fi = sdrbist::fault_injection;

/// 64 scenarios (16 mask-variant presets × 4 probe-draw trials) with a
/// deeply pooled prefix: masks differ only downstream of reconstruction,
/// and `reseed_policy::probes` keeps the device fixed — so the stage pool
/// plans 1 stimulus + 1 capture + 4 calibration + 4 reconstruction slots,
/// each with many co-consumers.  Maximum owner/adopter interleaving for
/// the price of ten stage computes.
campaign_config stress_campaign() {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    const auto base = waveform::find_preset("paper-qpsk-10M");
    cfg.presets.clear();
    for (int i = 0; i < 16; ++i) {
        auto p = base;
        p.name = base.name + "/mask" + std::to_string(i);
        p.mask = waveform::relax_to_measurement_floor(
            base.mask, -90.0 + static_cast<double>(i));
        cfg.presets.push_back(std::move(p));
    }
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 4;
    cfg.reseed = reseed_policy::probes;
    cfg.seed = 0x5CED5EEDull;
    cfg.retry_backoff_ms = 0.0;
    return cfg;
}

struct run_snapshot {
    std::string report;
    std::string jsonl;
    std::size_t reuse_hits = 0;
    std::size_t reuse_computes = 0;
    std::size_t retries = 0;
    std::size_t gave_up = 0;
};

run_snapshot run_once(campaign_config cfg, std::size_t threads) {
    cfg.threads = threads;
    const auto result = campaign_runner(cfg).run();
    export_options opt;
    opt.include_timing = false;
    run_snapshot snap;
    snap.report = to_json(result, opt);
    snap.jsonl = scenarios_jsonl(result, opt);
    snap.reuse_hits = result.stage_reuse_hits;
    snap.reuse_computes = result.stage_reuse_computes;
    snap.retries = result.scenario_retries;
    snap.gave_up = result.scenario_gave_up;
    return snap;
}

TEST(SchedulerStress, SixtyFourScenariosByteIdenticalAcrossThreads) {
    const auto cfg = stress_campaign();
    ASSERT_EQ(expand_grid(cfg).size(), 64u);

    const auto baseline = run_once(cfg, 1);
    EXPECT_GT(baseline.reuse_hits, 0u);
    // 16 presets sharing one device: 1 stimulus + 1 capture, plus one
    // calibration and one reconstruction per probe-draw trial.
    EXPECT_EQ(baseline.reuse_computes, 1u + 1u + 4u + 4u);

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        const auto snap = run_once(cfg, threads);
        EXPECT_EQ(snap.report, baseline.report) << "threads=" << threads;
        EXPECT_EQ(snap.jsonl, baseline.jsonl) << "threads=" << threads;
        // Reuse accounting is part of the determinism contract: the
        // credited-consumer rule keeps the totals identical at any
        // thread count.
        EXPECT_EQ(snap.reuse_hits, baseline.reuse_hits)
            << "threads=" << threads;
        EXPECT_EQ(snap.reuse_computes, baseline.reuse_computes)
            << "threads=" << threads;
    }
}

class SchedulerStressFaults : public ::testing::Test {
protected:
    void TearDown() override { fi::disarm(); }
};

/// Transients at the task-dispatch boundary and inside pipeline stages
/// must be contained by the scenario that observed them — retried there,
/// invisible everywhere else — under work stealing.
TEST_F(SchedulerStressFaults, RetriesLandOnTheRightScenarioUnderStealing) {
    auto cfg = stress_campaign();
    cfg.max_retries = 6;

    fi::disarm();
    const auto clean = run_once(cfg, 1);

    // Dispatch-boundary transients: fire on every 7th scenario task
    // hand-off (which scenario draws one depends on scheduling).
    fi::arm("pool.dispatch:throw-transient:every=7");
    auto faulted = run_once(cfg, 4);
    EXPECT_EQ(faulted.report, clean.report);
    EXPECT_EQ(faulted.jsonl, clean.jsonl);
    EXPECT_GT(faulted.retries, 0u);
    EXPECT_EQ(faulted.gave_up, 0u);

    // Stage-site transients: a poisoned pooled slot is rethrown into
    // each adopting scenario's attempt 1 and recomputed privately on its
    // retries — the final grid must still be byte-identical to the clean
    // run.
    fi::arm("stage.calibration:throw-transient:p=0.08,seed=11;"
            "stage.grading:throw-transient:p=0.04,seed=23");
    faulted = run_once(cfg, 4);
    EXPECT_EQ(faulted.report, clean.report);
    EXPECT_EQ(faulted.jsonl, clean.jsonl);
    EXPECT_EQ(faulted.gave_up, 0u);
    fi::disarm();
}

} // namespace

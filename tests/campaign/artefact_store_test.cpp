// Stage-artefact store: byte-codec and stage-codec round-trips, typed
// store/load semantics (miss / version skew / corruption quarantine), GC
// determinism (age, LRU, size and count budgets, foreign files untouched),
// concurrent reader-vs-evictor safety, and the campaign-level byte-identity
// contract — exports identical with the store cold, warm or disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bist/config_canonical.hpp"
#include "bist/pipeline.hpp"
#include "campaign/artefact_store/artefact_store.hpp"
#include "campaign/artefact_store/byte_codec.hpp"
#include "campaign/artefact_store/stage_codec.hpp"
#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "support/scratch_dir.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sdrbist;
using namespace sdrbist::campaign;
using sdrbist::testing::scratch_dir;

campaign_config small_campaign() {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 1;
    cfg.threads = 2;
    cfg.seed = 0xCAC4Eull;
    return cfg;
}

/// A tiny, cheap-to-build stage output for store plumbing tests that do
/// not care which stage the payload belongs to.
bist::calibration_output small_calibration() {
    bist::calibration_output cal;
    cal.probe_times = {0.125, 0.25, 0.5, 0.75};
    return cal;
}

void set_mtime_ago(const fs::path& path, std::chrono::seconds ago) {
    fs::last_write_time(path, fs::file_time_type::clock::now() - ago);
}

std::size_t count_files(const fs::path& dir) {
    if (!fs::is_directory(dir))
        return 0;
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir))
        n += e.is_regular_file();
    return n;
}

// ---- byte codec -------------------------------------------------------------

TEST(ByteCodec, RoundTripsPathologicalInputs) {
    std::vector<std::string> inputs;
    inputs.emplace_back();                       // empty
    inputs.emplace_back("x");                    // single byte
    inputs.emplace_back(3, '\0');                // short run of NULs
    inputs.emplace_back(100000, 'a');            // one giant run
    std::string cycle;                           // period below min_match
    for (int i = 0; i < 5000; ++i)
        cycle += "ab";
    inputs.push_back(cycle);
    std::string binary;                          // every byte value + newlines
    for (int i = 0; i < 4096; ++i) {
        binary += static_cast<char>(i & 0xFF);
        if (i % 7 == 0)
            binary += '\n';
    }
    inputs.push_back(binary);
    std::string noise;                           // incompressible LCG stream
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < 20000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        noise += static_cast<char>(state >> 56);
    }
    inputs.push_back(noise);

    for (const std::string& raw : inputs) {
        const std::string payload = byte_codec_compress(raw);
        EXPECT_EQ(byte_codec_decompress(payload, raw.size()), raw)
            << "raw size " << raw.size();
    }
}

TEST(ByteCodec, CompressesRepetitiveData) {
    const std::string raw(100000, 'z');
    EXPECT_LT(byte_codec_compress(raw).size(), raw.size() / 10);
}

// ---- stage codec ------------------------------------------------------------

TEST(StageCodec, RoundTripsEveryStageElementExact) {
    const auto cfg = small_campaign();
    const auto grid = expand_grid(cfg);
    bist::bist_session session(scenario_config(cfg, grid[0]));
    session.run();
    ASSERT_TRUE(session.completed(bist::stage::grading))
        << "the reference grid must complete all five stages";

    // The codec renders doubles in shortest round-trip form, so the JSON
    // text is a bijection of the element values: text equality after a
    // decode/encode cycle IS element-exactness, for every field at once.
    {
        const std::string text = stimulus_json(session.stimulus());
        const auto back = stimulus_from_json(parse_json(text));
        EXPECT_EQ(stimulus_json(back), text);
        EXPECT_EQ(back.carrier_hz, session.stimulus().carrier_hz);
        EXPECT_EQ(back.plan_discrimination,
                  session.stimulus().plan_discrimination);
    }
    {
        const std::string text = tx_capture_json(session.tx_capture());
        const auto back = tx_capture_from_json(parse_json(text));
        EXPECT_EQ(tx_capture_json(back), text);
        EXPECT_EQ(back.programmed_delay_s,
                  session.tx_capture().programmed_delay_s);
        EXPECT_TRUE(back.dual_rate_conditions_ok);
    }
    {
        const std::string text = calibration_json(session.calibration());
        const auto back = calibration_from_json(parse_json(text));
        EXPECT_EQ(calibration_json(back), text);
        EXPECT_EQ(back.probe_times, session.calibration().probe_times);
        EXPECT_EQ(back.skew.d_hat, session.calibration().skew.d_hat);
    }
    {
        const std::string text =
            reconstruction_json(session.reconstruction());
        const auto back = reconstruction_from_json(parse_json(text));
        EXPECT_EQ(reconstruction_json(back), text);
    }
    {
        const std::string text = grading_json(session.grading());
        const auto back = grading_from_json(parse_json(text));
        EXPECT_EQ(grading_json(back), text);
        EXPECT_EQ(back.evm.evm_rms, session.grading().evm.evm_rms);
        EXPECT_EQ(back.mask.worst_margin_db,
                  session.grading().mask.worst_margin_db);
        EXPECT_EQ(back.occupied_bw_hz, session.grading().occupied_bw_hz);
    }
}

// ---- typed store/load -------------------------------------------------------

TEST(StageStore, TypedRoundTripAcrossInstancesAndMissOnAbsentDigest) {
    const scratch_dir dir("store_roundtrip");
    const auto cal = small_calibration();
    {
        stage_artefact_store store(dir.path.string());
        store.store_calibration(0xABCull, cal);
    }
    stage_artefact_store store(dir.path.string()); // fresh process stand-in
    const auto hit = store.load_calibration(0xABCull);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->probe_times, cal.probe_times);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_GT(store.bytes_served(), 0u);

    EXPECT_EQ(store.load_calibration(0xDEFull), nullptr);
    // Same digest, different stage: separate entries, so a plain miss.
    EXPECT_EQ(store.load_grading(0xABCull), nullptr);
    EXPECT_EQ(store.misses(), 2u);
    EXPECT_EQ(store.quarantined(), 0u);
}

TEST(StageStore, VersionSkewIsAPlainMissUntilOverwritten) {
    const scratch_dir dir("store_skew");
    stage_artefact_store store(dir.path.string());
    const std::uint64_t digest = 0x51ull;
    const std::string path =
        store.path_for(digest, bist::stage::calibration);
    std::ofstream(path, std::ios::binary)
        << "{\"store_version\":999,\"codec\":1,"
           "\"stage_canonical_version\":1}\npayload-from-the-future";

    EXPECT_EQ(store.load_calibration(digest), nullptr);
    EXPECT_EQ(store.misses(), 1u);
    EXPECT_EQ(store.quarantined(), 0u) << "skew is not corruption";
    EXPECT_TRUE(fs::exists(path)) << "skewed entries stay for cache-gc";
    EXPECT_EQ(scan_store_dir(dir.path.string()).stale, 1u);

    // A recompute publishes over the stale entry and heals it.
    store.store_calibration(digest, small_calibration());
    EXPECT_TRUE(store.load_calibration(digest));
    EXPECT_EQ(scan_store_dir(dir.path.string()).stale, 0u);
}

TEST(StageStore, CorruptEntriesAreQuarantinedEvenOnNameCollision) {
    const scratch_dir dir("store_quarantine");
    stage_artefact_store store(dir.path.string());
    const std::uint64_t digest = 0xD16ull;
    const std::string path =
        store.path_for(digest, bist::stage::calibration);
    // Corrupt the same entry twice; both wrecks must survive side by side
    // (quarantine collisions get a numeric suffix).
    for (int round = 0; round < 2; ++round) {
        store.store_calibration(digest, small_calibration());
        std::ofstream(path, std::ios::binary | std::ios::trunc)
            << "garbled, no header newline";
        EXPECT_EQ(store.load_calibration(digest), nullptr);
        EXPECT_FALSE(fs::exists(path)) << "the wreck must be moved aside";
    }
    EXPECT_EQ(store.quarantined(), 2u);
    EXPECT_EQ(store.misses(), 2u);
    EXPECT_EQ(count_files(dir.path / "quarantine"), 2u);

    // The quarantine subdirectory is invisible to scan and GC.
    EXPECT_EQ(scan_store_dir(dir.path.string()).files(), 0u);
    (void)gc_store_dir(dir.path.string());
    EXPECT_EQ(count_files(dir.path / "quarantine"), 2u);
}

// ---- GC ---------------------------------------------------------------------

TEST(StageStoreGc, RemovesUnusableFilesButNeverForeignOnes) {
    const scratch_dir dir("store_gc_taxonomy");
    stage_artefact_store store(dir.path.string());
    store.store_calibration(1, small_calibration()); // healthy

    std::ofstream(dir.path / "00000000000000aa-calibration.sab",
                  std::ios::binary)
        << "{\"store_version\":999,\"codec\":1,"
           "\"stage_canonical_version\":1}\nold"; // stale
    std::ofstream(dir.path / "00000000000000bb-stimulus.sab",
                  std::ios::binary)
        << "not even json\n"; // corrupt
    std::ofstream(dir.path / "00000000000000cc-grading.sab.tmp.dead.7",
                  std::ios::binary)
        << "torn publish"; // stray temp
    std::ofstream(dir.path / "README.txt") << "hands off";
    std::ofstream(dir.path / "notes.sab") << "wrong stem, still foreign";

    const auto stats = scan_store_dir(dir.path.string());
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.stale, 1u);
    EXPECT_EQ(stats.corrupt, 1u);
    EXPECT_EQ(stats.stray_tmp, 1u);

    const auto gc = gc_store_dir(dir.path.string());
    EXPECT_EQ(gc.scanned, 4u) << "foreign files are never even counted";
    EXPECT_EQ(gc.removed, 3u);
    EXPECT_EQ(gc.evicted, 0u) << "no budgets, healthy entries stay";
    EXPECT_EQ(gc.kept, 1u);
    EXPECT_GT(gc.bytes_freed, 0u);
    EXPECT_TRUE(fs::exists(dir.path / "README.txt"));
    EXPECT_TRUE(fs::exists(dir.path / "notes.sab"));
    EXPECT_TRUE(store.load_calibration(1));
}

TEST(StageStoreGc, CountBudgetEvictsLeastRecentlyUsedFirst) {
    const scratch_dir dir("store_gc_lru");
    stage_artefact_store store(dir.path.string());
    const auto cal = small_calibration();
    for (std::uint64_t d = 1; d <= 4; ++d) {
        store.store_calibration(d, cal);
        // Explicit mtimes: digest 1 is the oldest, digest 4 the newest.
        set_mtime_ago(store.path_for(d, bist::stage::calibration),
                      std::chrono::hours(5 - static_cast<int>(d)));
    }
    store_gc_policy policy;
    policy.max_entries = 2;
    const auto gc = gc_store_dir(dir.path.string(), policy);
    EXPECT_EQ(gc.evicted, 2u);
    EXPECT_EQ(gc.kept, 2u);
    EXPECT_EQ(store.load_calibration(1), nullptr);
    EXPECT_EQ(store.load_calibration(2), nullptr);
    EXPECT_TRUE(store.load_calibration(3));
    EXPECT_TRUE(store.load_calibration(4));
}

TEST(StageStoreGc, EqualMtimesBreakTiesByFilenameDeterministically) {
    const scratch_dir dir("store_gc_ties");
    stage_artefact_store store(dir.path.string());
    const auto cal = small_calibration();
    const auto stamp = fs::file_time_type::clock::now() -
                       std::chrono::hours(1);
    for (std::uint64_t d = 1; d <= 3; ++d) {
        store.store_calibration(d, cal);
        fs::last_write_time(store.path_for(d, bist::stage::calibration),
                            stamp);
    }
    store_gc_policy policy;
    policy.max_entries = 1;
    const auto gc = gc_store_dir(dir.path.string(), policy);
    EXPECT_EQ(gc.evicted, 2u);
    // Ties evict in filename order, so the lexicographically-largest
    // entry name (digest 3) survives — on every run, on every platform.
    EXPECT_EQ(store.load_calibration(1), nullptr);
    EXPECT_EQ(store.load_calibration(2), nullptr);
    EXPECT_TRUE(store.load_calibration(3));
}

TEST(StageStoreGc, AgeBudgetEvictsIdleEntriesOnly) {
    const scratch_dir dir("store_gc_age");
    stage_artefact_store store(dir.path.string());
    const auto cal = small_calibration();
    store.store_calibration(1, cal);
    store.store_calibration(2, cal);
    set_mtime_ago(store.path_for(1, bist::stage::calibration),
                  std::chrono::hours(10));
    store_gc_policy policy;
    policy.max_age_s = 3600;
    const auto gc = gc_store_dir(dir.path.string(), policy);
    EXPECT_EQ(gc.evicted, 1u);
    EXPECT_EQ(store.load_calibration(1), nullptr);
    EXPECT_TRUE(store.load_calibration(2));
}

TEST(StageStoreGc, ByteBudgetEvictsOldestUntilItHolds) {
    const scratch_dir dir("store_gc_bytes");
    stage_artefact_store store(dir.path.string());
    const auto cal = small_calibration();
    std::uintmax_t entry_size = 0;
    for (std::uint64_t d = 1; d <= 3; ++d) {
        store.store_calibration(d, cal);
        const auto path = store.path_for(d, bist::stage::calibration);
        entry_size = fs::file_size(path);
        set_mtime_ago(path, std::chrono::hours(4 - static_cast<int>(d)));
    }
    store_gc_policy policy;
    policy.max_bytes = 2 * entry_size; // identical payloads: equal sizes
    const auto gc = gc_store_dir(dir.path.string(), policy);
    EXPECT_EQ(gc.evicted, 1u);
    EXPECT_EQ(store.load_calibration(1), nullptr) << "oldest goes first";
    EXPECT_TRUE(store.load_calibration(2));
    EXPECT_TRUE(store.load_calibration(3));
}

TEST(StageStoreGc, HitsRefreshTheLruRank) {
    const scratch_dir dir("store_gc_touch");
    stage_artefact_store store(dir.path.string());
    const auto cal = small_calibration();
    store.store_calibration(1, cal);
    store.store_calibration(2, cal);
    set_mtime_ago(store.path_for(1, bist::stage::calibration),
                  std::chrono::hours(8));
    set_mtime_ago(store.path_for(2, bist::stage::calibration),
                  std::chrono::hours(4));
    // Digest 1 was the LRU candidate — until this hit touches its mtime.
    ASSERT_TRUE(store.load_calibration(1));
    store_gc_policy policy;
    policy.max_entries = 1;
    (void)gc_store_dir(dir.path.string(), policy);
    EXPECT_TRUE(store.load_calibration(1));
    EXPECT_EQ(store.load_calibration(2), nullptr);
}

// ---- concurrency (TSan leg runs StageStore*) --------------------------------

TEST(StageStoreConcurrency, ReadersAndWritersRaceTheEvictorSafely) {
    const scratch_dir dir("store_tsan");
    const auto cal = small_calibration();
    stage_artefact_store seed(dir.path.string());
    for (std::uint64_t d = 1; d <= 16; ++d)
        seed.store_calibration(d, cal);

    std::atomic<bool> stop{false};
    std::thread reader([&] {
        stage_artefact_store s(dir.path.string());
        while (!stop.load(std::memory_order_relaxed))
            for (std::uint64_t d = 1; d <= 16; ++d) {
                // Eviction mid-read is a plain miss; a hit is element-exact.
                if (const auto hit = s.load_calibration(d)) {
                    EXPECT_EQ(hit->probe_times, cal.probe_times);
                }
            }
    });
    std::thread writer([&] {
        stage_artefact_store s(dir.path.string());
        while (!stop.load(std::memory_order_relaxed))
            for (std::uint64_t d = 1; d <= 16; ++d)
                s.store_calibration(d, cal);
    });
    store_gc_policy policy;
    policy.max_entries = 4;
    for (int round = 0; round < 50; ++round)
        (void)gc_store_dir(dir.path.string(), policy);
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    writer.join();

    // The directory survives the race fully serviceable.
    seed.store_calibration(99, cal);
    const auto back = seed.load_calibration(99);
    ASSERT_TRUE(back);
    EXPECT_EQ(back->probe_times, cal.probe_times);
}

// ---- campaign-level byte identity -------------------------------------------

TEST(StageStoreCampaign, ColdWarmAndDisabledExportsAreByteIdentical) {
    const scratch_dir dir("store_campaign");
    auto cfg = small_campaign();
    cfg.trials = 2;
    cfg.reseed = reseed_policy::probes; // shared upstream stages per cell

    const auto off = campaign_runner(cfg).run(); // store disabled
    EXPECT_EQ(off.store_hits, 0u);
    EXPECT_EQ(off.store_misses, 0u);

    cfg.stage_store_dir = (dir.path / "store").string();
    const auto cold = campaign_runner(cfg).run();
    EXPECT_EQ(cold.store_hits, 0u);
    EXPECT_GT(cold.store_misses, 0u);

    const auto warm = campaign_runner(cfg).run();
    EXPECT_GT(warm.store_hits, 0u);
    EXPECT_EQ(warm.store_misses, 0u)
        << "every stage digest was published by the cold run";
    EXPECT_GT(warm.store_bytes, 0u);

    export_options opt;
    opt.include_timing = false;
    EXPECT_EQ(to_json(cold, opt), to_json(off, opt));
    EXPECT_EQ(to_json(warm, opt), to_json(off, opt));
    EXPECT_EQ(scenarios_jsonl(cold, opt), scenarios_jsonl(off, opt));
    EXPECT_EQ(scenarios_jsonl(warm, opt), scenarios_jsonl(off, opt));
    EXPECT_EQ(coverage_csv(warm), coverage_csv(off));

    // Thread count must not leak into warm-run exports either.
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        auto sweep = cfg;
        sweep.threads = threads;
        const auto result = campaign_runner(sweep).run();
        EXPECT_EQ(result.store_misses, 0u) << threads << " threads";
        EXPECT_EQ(to_json(result, opt), to_json(off, opt))
            << threads << " threads";
        EXPECT_EQ(scenarios_jsonl(result, opt), scenarios_jsonl(off, opt))
            << threads << " threads";
    }
}

} // namespace

// Scenario result cache: key properties (stable, coordinate- and
// config-sensitive), warm-run bit-identity, corruption tolerance, and the
// full bist_report JSON round-trip the cache rests on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bist/config_canonical.hpp"
#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "core/contracts.hpp"
#include "support/scratch_dir.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sdrbist;
using namespace sdrbist::campaign;
using sdrbist::testing::scratch_dir;

campaign_config small_campaign() {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 1;
    cfg.threads = 2;
    cfg.seed = 0xCAC4Eull;
    return cfg;
}

// ---- canonical config text --------------------------------------------------

TEST(ConfigCanonical, IsPureAndVersioned) {
    const auto cfg = small_campaign();
    const auto grid = expand_grid(cfg);
    const auto materialised = scenario_config(cfg, grid[0]);
    const auto text = bist::canonical_config_text(materialised);
    EXPECT_EQ(text, bist::canonical_config_text(materialised));
    EXPECT_EQ(text.rfind("canon=" +
                             std::to_string(bist::canonical_config_version) +
                             "\n",
                         0),
              0u)
        << "serialisation must lead with its version line";
    // Every leaf is a key=value line.
    EXPECT_NE(text.find("tx.pa_gain_db="), std::string::npos);
    EXPECT_NE(text.find("tiadc.jitter_rms_s="), std::string::npos);
    EXPECT_NE(text.find("preset.mask.segment.0.limit_dbc="),
              std::string::npos);
}

TEST(ConfigCanonical, DigestMovesWithAnyField) {
    const auto cfg = small_campaign();
    const auto grid = expand_grid(cfg);
    const auto base = scenario_config(cfg, grid[0]);
    const auto reference = bist::config_digest(base);

    auto probe = [&](auto&& mutate) {
        bist::bist_config c = base;
        mutate(c);
        return bist::config_digest(c);
    };
    EXPECT_NE(probe([](auto& c) { c.evm_limit_percent += 0.5; }), reference);
    EXPECT_NE(probe([](auto& c) { c.tx.pa_gain_db += 1e-9; }), reference);
    EXPECT_NE(probe([](auto& c) { c.tiadc.seed ^= 1; }), reference);
    EXPECT_NE(probe([](auto& c) { c.probe_count += 1; }), reference);
    EXPECT_NE(probe([](auto& c) { c.lms.recon.taps += 2; }), reference);
    EXPECT_NE(probe([](auto& c) { c.preset.name += "x"; }), reference);
    EXPECT_NE(probe([](auto& c) { c.spectrum.dense_rate_factor *= 1.001; }),
              reference);
}

// ---- cache keys -------------------------------------------------------------

TEST(CacheKey, StableAcrossCallsAndProcessShaped) {
    const auto cfg = small_campaign();
    const auto grid = expand_grid(cfg);
    const auto mat0 = scenario_config(cfg, grid[0]);
    const auto key = scenario_cache::key(grid[0], mat0);
    EXPECT_EQ(key.size(), 16u);
    EXPECT_EQ(key, scenario_cache::key(grid[0], scenario_config(cfg, grid[0])));
    // Distinct scenarios get distinct keys.
    EXPECT_NE(key, scenario_cache::key(grid[1], scenario_config(cfg, grid[1])));
}

TEST(CacheKey, MovesWithGridCoordinatesAndConfig) {
    auto cfg = small_campaign();
    cfg.trials = 2;
    const auto grid = expand_grid(cfg);
    // grid[0] and grid[1]: same preset/fault, different trial.
    const auto k_trial0 = scenario_cache::key(grid[0], scenario_config(cfg, grid[0]));
    const auto k_trial1 = scenario_cache::key(grid[1], scenario_config(cfg, grid[1]));
    EXPECT_NE(k_trial0, k_trial1);

    // A different master seed moves every key (derived seeds change).
    auto reseeded = cfg;
    reseeded.seed ^= 0xF00Dull;
    const auto rgrid = expand_grid(reseeded);
    EXPECT_NE(scenario_cache::key(rgrid[0], scenario_config(reseeded, rgrid[0])),
              k_trial0);

    // Any engine-config field moves the key even at equal coordinates.
    auto tweaked = cfg;
    tweaked.base.evm_limit_percent = 7.5;
    const auto tgrid = expand_grid(tweaked);
    ASSERT_EQ(tgrid[0].seed, grid[0].seed) << "coordinates unchanged";
    EXPECT_NE(scenario_cache::key(tgrid[0], scenario_config(tweaked, tgrid[0])),
              k_trial0);

    // Monte-Carlo perturbations materialise into the config, hence the key.
    auto perturbed = cfg;
    perturbed.perturb.jitter_rel_sigma = 0.1;
    const auto pgrid = expand_grid(perturbed);
    EXPECT_NE(scenario_cache::key(pgrid[0], scenario_config(perturbed, pgrid[0])),
              k_trial0);
}

TEST(CacheKey, IndependentOfGridShape) {
    // Appending presets/faults keeps existing coordinates and thus keys:
    // that is what makes overlapping grids share cache entries.
    const auto cfg = small_campaign();
    const auto grid = expand_grid(cfg);
    auto wider = cfg;
    wider.presets.push_back(waveform::find_preset("tactical-bpsk-2M"));
    wider.faults.push_back(bist::fault_kind::pa_overdrive);
    wider.trials = 3;
    const auto wgrid = expand_grid(wider);
    // Scenario (preset 0, fault 0, trial 0) exists in both grids.
    EXPECT_EQ(scenario_cache::key(grid[0], scenario_config(cfg, grid[0])),
              scenario_cache::key(wgrid[0], scenario_config(wider, wgrid[0])));
}

// ---- warm reruns ------------------------------------------------------------

TEST(ScenarioCache, WarmRerunIsAllHitsAndBitIdentical) {
    const scratch_dir dir("warm");
    auto cfg = small_campaign();
    cfg.cache_dir = dir.path.string();

    const auto cold = campaign_runner(cfg).run();
    EXPECT_EQ(cold.cache_hits, 0u);
    EXPECT_EQ(cold.cache_misses, cold.scenario_count());
    // One entry file per scenario.
    std::size_t entries = 0;
    for (const auto& e : fs::directory_iterator(dir.path))
        entries += e.path().extension() == ".json";
    EXPECT_EQ(entries, cold.scenario_count());

    const auto warm = campaign_runner(cfg).run();
    EXPECT_EQ(warm.cache_hits, warm.scenario_count());
    EXPECT_EQ(warm.cache_misses, 0u);

    export_options opt;
    opt.include_timing = false;
    EXPECT_EQ(to_json(warm, opt), to_json(cold, opt));
    EXPECT_EQ(coverage_csv(warm), coverage_csv(cold));
    EXPECT_EQ(scenarios_jsonl(warm, opt), scenarios_jsonl(cold, opt));
    ASSERT_EQ(warm.matrix.size(), cold.matrix.size());
    for (std::size_t p = 0; p < cold.matrix.size(); ++p)
        for (std::size_t f = 0; f < cold.matrix[p].size(); ++f) {
            EXPECT_EQ(warm.cell(p, f).runs, cold.cell(p, f).runs);
            EXPECT_EQ(warm.cell(p, f).flagged, cold.cell(p, f).flagged);
        }
    // Reports round-tripped bit-exactly through the cache files.
    for (std::size_t i = 0; i < cold.results.size(); ++i) {
        EXPECT_DOUBLE_EQ(warm.results[i].report.skew.d_hat,
                         cold.results[i].report.skew.d_hat);
        EXPECT_DOUBLE_EQ(warm.results[i].report.evm.evm_rms,
                         cold.results[i].report.evm.evm_rms);
        EXPECT_DOUBLE_EQ(warm.results[i].report.mask.worst_margin_db,
                         cold.results[i].report.mask.worst_margin_db);
    }
    // The cached elapsed time is the grading cost, preserved on hits so
    // scenario_cpu_s keeps reporting what the grid costs to compute.
    EXPECT_DOUBLE_EQ(warm.scenario_cpu_s, cold.scenario_cpu_s);
    EXPECT_GT(warm.scenario_cpu_s, 0.0);
}

TEST(ScenarioCache, OverlappingGridReusesEntries) {
    const scratch_dir dir("overlap");
    auto narrow = small_campaign();
    narrow.faults = {bist::fault_kind::none};
    narrow.cache_dir = dir.path.string();
    const auto first = campaign_runner(narrow).run();
    EXPECT_EQ(first.cache_misses, 1u);

    auto wide = small_campaign(); // adds pa-gain-drop at fault index 1
    wide.cache_dir = dir.path.string();
    const auto second = campaign_runner(wide).run();
    EXPECT_EQ(second.cache_hits, 1u) << "the golden scenario was cached";
    EXPECT_EQ(second.cache_misses, 1u) << "the fault scenario is new";
}

TEST(ScenarioCache, CorruptEntryIsReGraded) {
    const scratch_dir dir("corrupt");
    auto cfg = small_campaign();
    cfg.cache_dir = dir.path.string();
    const auto cold = campaign_runner(cfg).run();

    // Truncate/garble one entry; the runner must fall back to the engine.
    fs::path victim;
    for (const auto& e : fs::directory_iterator(dir.path))
        if (e.path().extension() == ".json") {
            victim = e.path();
            break;
        }
    ASSERT_FALSE(victim.empty());
    std::ofstream(victim, std::ios::trunc) << "{\"cache_version\":1,ga";

    const auto warm = campaign_runner(cfg).run();
    EXPECT_EQ(warm.cache_hits, warm.scenario_count() - 1);
    EXPECT_EQ(warm.cache_misses, 1u);
    export_options opt;
    opt.include_timing = false;
    EXPECT_EQ(to_json(warm, opt), to_json(cold, opt));
    // And the re-grade healed the entry.
    const auto healed = campaign_runner(cfg).run();
    EXPECT_EQ(healed.cache_hits, healed.scenario_count());
}

TEST(ScenarioCache, DeterministicEngineErrorsAreCached) {
    // A contract rejection reproduces on every run, so caching it is safe
    // and keeps warm reruns of error-bearing grids all-hits.  (Transient
    // std::exceptions are deliberately NOT persisted — see campaign.cpp.)
    const scratch_dir dir("engine_error");
    campaign_config cfg;
    cfg.base.fast_samples = 16; // violates the engine precondition
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none};
    cfg.trials = 1;
    cfg.threads = 1;
    cfg.cache_dir = dir.path.string();

    const auto cold = campaign_runner(cfg).run();
    ASSERT_TRUE(cold.results[0].engine_error);
    EXPECT_EQ(cold.cache_misses, 1u);

    const auto warm = campaign_runner(cfg).run();
    EXPECT_EQ(warm.cache_hits, 1u);
    EXPECT_EQ(warm.cache_misses, 0u);
    EXPECT_TRUE(warm.results[0].engine_error);
    EXPECT_EQ(warm.results[0].error, cold.results[0].error);
    EXPECT_TRUE(warm.results[0].flagged());
}

TEST(ScenarioCache, VersionSkewReadsAsMiss) {
    const scratch_dir dir("version");
    const scenario_cache cache(dir.path.string());
    EXPECT_FALSE(cache.load("0123456789abcdef").has_value());

    // A syntactically valid entry from a different format version.
    std::ofstream(cache.path_for("0123456789abcdef"))
        << R"({"cache_version":999,"key":"0123456789abcdef"})";
    EXPECT_FALSE(cache.load("0123456789abcdef").has_value());
}

// ---- report round-trip ------------------------------------------------------

TEST(ScenarioCache, ReportRoundTripsBitExactly) {
    // A real engine report (trace, mask segments, received symbols, all
    // verdicts) survives JSON serialisation bit-for-bit.
    auto cfg = small_campaign();
    cfg.faults = {bist::fault_kind::none};
    const auto result = campaign_runner(cfg).run();
    ASSERT_FALSE(result.results.empty());
    const bist::bist_report& r = result.results[0].report;

    const auto back = report_from_json(parse_json(report_json(r)));
    EXPECT_EQ(back.preset_name, r.preset_name);
    EXPECT_DOUBLE_EQ(back.carrier_hz, r.carrier_hz);
    EXPECT_DOUBLE_EQ(back.skew.d_hat, r.skew.d_hat);
    EXPECT_DOUBLE_EQ(back.skew.final_cost, r.skew.final_cost);
    EXPECT_EQ(back.skew.iterations, r.skew.iterations);
    EXPECT_EQ(back.skew.converged, r.skew.converged);
    EXPECT_EQ(back.skew.cost_evaluations, r.skew.cost_evaluations);
    ASSERT_EQ(back.skew.trace.size(), r.skew.trace.size());
    for (std::size_t i = 0; i < r.skew.trace.size(); ++i) {
        EXPECT_EQ(back.skew.trace[i].iteration, r.skew.trace[i].iteration);
        EXPECT_DOUBLE_EQ(back.skew.trace[i].d_hat, r.skew.trace[i].d_hat);
        EXPECT_DOUBLE_EQ(back.skew.trace[i].cost, r.skew.trace[i].cost);
        EXPECT_DOUBLE_EQ(back.skew.trace[i].mu, r.skew.trace[i].mu);
    }
    EXPECT_EQ(back.mask.pass, r.mask.pass);
    EXPECT_DOUBLE_EQ(back.mask.worst_margin_db, r.mask.worst_margin_db);
    EXPECT_DOUBLE_EQ(back.mask.reference_dbhz, r.mask.reference_dbhz);
    ASSERT_EQ(back.mask.segments.size(), r.mask.segments.size());
    for (std::size_t i = 0; i < r.mask.segments.size(); ++i) {
        EXPECT_DOUBLE_EQ(back.mask.segments[i].measured_dbc,
                         r.mask.segments[i].measured_dbc);
        EXPECT_DOUBLE_EQ(back.mask.segments[i].segment.limit_dbc,
                         r.mask.segments[i].segment.limit_dbc);
    }
    EXPECT_DOUBLE_EQ(back.evm.evm_rms, r.evm.evm_rms);
    EXPECT_DOUBLE_EQ(back.evm.evm_peak, r.evm.evm_peak);
    EXPECT_DOUBLE_EQ(back.evm.timing_offset, r.evm.timing_offset);
    ASSERT_EQ(back.evm.received_symbols.size(),
              r.evm.received_symbols.size());
    for (std::size_t i = 0; i < r.evm.received_symbols.size(); ++i)
        EXPECT_EQ(back.evm.received_symbols[i], r.evm.received_symbols[i]);
    EXPECT_EQ(back.evm_pass, r.evm_pass);
    EXPECT_DOUBLE_EQ(back.measured_output_rms, r.measured_output_rms);
    EXPECT_EQ(back.power_pass, r.power_pass);
    EXPECT_DOUBLE_EQ(back.acpr.lower_dbc, r.acpr.lower_dbc);
    EXPECT_DOUBLE_EQ(back.acpr.upper_dbc, r.acpr.upper_dbc);
    EXPECT_EQ(back.acpr_pass, r.acpr_pass);
    EXPECT_DOUBLE_EQ(back.occupied_bw_hz, r.occupied_bw_hz);
    EXPECT_EQ(back.pass(), r.pass());
}

TEST(ScenarioCache, RejectsUnwritableDirectory) {
    EXPECT_THROW(scenario_cache(""), contract_violation);
}

} // namespace

// Shard result files: the full-fidelity campaign_result serialisation the
// cross-process `--merge` mode is built on.  Locks (a) lossless round-trip
// of synthetic results exercising every report field (skew traces, EVM
// symbols, mask segments, non-finite values, engine errors), and (b) the
// end-to-end property: shard files written by real sharded runs merge into
// a result whose exports are byte-identical to the unsharded run's.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "campaign/shard_io.hpp"
#include "core/contracts.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sdrbist;
using namespace sdrbist::campaign;

/// A synthetic shard exercising the deep report structure the summary
/// exports drop: LMS traces, received symbols, mask segments, NaN/inf
/// fields, 64-bit seeds beyond 2^53, and an engine-error row.
campaign_result synthetic_shard(std::size_t index, std::size_t count) {
    campaign_result shard;
    shard.preset_names = {"alpha", "odd \"name, quoted\""};
    shard.fault_names = {"none", "pa-gain-drop"};
    shard.trials = 1;
    shard.seed = 0xFFFFFFFFFFFFFFF5ull; // not representable as a double
    shard.shard_index = index;
    shard.shard_count = count;
    shard.grid_size = 4;
    shard.threads_used = 3;
    shard.wall_s = 1.25 + static_cast<double>(index);
    shard.cache_hits = 1 + index;
    shard.cache_misses = 2;
    shard.stage_reuse_hits = 5 + index;
    shard.stage_reuse_computes = 3;

    for (std::size_t i = index; i < 4; i += count) {
        scenario_result row;
        row.sc.index = i;
        row.sc.preset_index = i / 2;
        row.sc.fault_index = i % 2;
        row.sc.trial = 0;
        row.sc.fault = (i % 2) == 0 ? bist::fault_kind::none
                                    : bist::fault_kind::pa_gain_drop;
        row.sc.preset_name = shard.preset_names[row.sc.preset_index];
        row.sc.seed = 0x8000000000000001ull + i;
        row.elapsed_s = 0.0078125 * static_cast<double>(i + 1);

        bist::bist_report& rep = row.report;
        rep.preset_name = row.sc.preset_name;
        rep.carrier_hz = 1.0e9 + static_cast<double>(i);
        rep.skew.d_hat = 1.8e-10;
        rep.skew.final_cost = 3.0e-9;
        rep.skew.iterations = 17 + i;
        rep.skew.converged = true;
        rep.skew.cost_evaluations = 123;
        rep.skew.trace = {{1, 2.0e-10, 5.0e-9, 0.5},
                          {2, 1.9e-10, 4.0e-9, 0.25}};
        rep.dual_rate_conditions_ok = true;
        rep.max_search_delay_s = 4.83e-10;
        rep.plan_discrimination = 0.125;
        rep.mask.pass = true;
        rep.mask.worst_margin_db = 4.5;
        rep.mask.reference_dbhz =
            std::numeric_limits<double>::quiet_NaN(); // null round-trip
        rep.mask.segments.push_back(
            {{10e6, 20e6, -30.0}, -35.5, 5.5, true});
        rep.evm.evm_rms = 0.015625;
        rep.evm.evm_peak = 0.03125;
        rep.evm.gain = {0.75, -0.125};
        rep.evm.timing_offset = 2.5e-8;
        rep.evm.received_symbols = {{1.0, -1.0}, {0.5, 0.25}};
        rep.evm_pass = true;
        rep.evm_limit_percent = 8.0;
        rep.measured_output_rms = 1.5;
        rep.power_pass = true;
        rep.acpr.main_power = 2.0;
        rep.acpr.lower_dbc = -42.5;
        rep.acpr.upper_dbc = -40.25;
        rep.acpr_pass = true;
        rep.occupied_bw_hz = 1.5e7;

        if (i == 3) {
            row.engine_error = true;
            row.error = "precondition violated: `x`\nwith \"quotes\"";
        }
        shard.results.push_back(std::move(row));
    }
    return shard;
}

TEST(ShardIo, RoundTripIsLossless) {
    const auto shard = synthetic_shard(0, 2);
    const std::string text = result_to_json(shard);
    const auto back = result_from_json(parse_json(text));

    // Deterministic serialisation: a second generation is byte-identical,
    // which (with the field-count audit below) pins losslessness.
    EXPECT_EQ(result_to_json(back), text);
    EXPECT_EQ(back.preset_names, shard.preset_names);
    EXPECT_EQ(back.fault_names, shard.fault_names);
    EXPECT_EQ(back.seed, shard.seed);
    EXPECT_EQ(back.shard_index, shard.shard_index);
    EXPECT_EQ(back.grid_size, shard.grid_size);
    EXPECT_EQ(back.cache_hits, shard.cache_hits);
    EXPECT_EQ(back.stage_reuse_hits, shard.stage_reuse_hits);
    ASSERT_EQ(back.results.size(), shard.results.size());
    for (std::size_t i = 0; i < back.results.size(); ++i) {
        const auto& a = back.results[i];
        const auto& b = shard.results[i];
        EXPECT_EQ(a.sc.index, b.sc.index);
        EXPECT_EQ(a.sc.seed, b.sc.seed);
        EXPECT_EQ(a.sc.fault, b.sc.fault);
        EXPECT_EQ(a.engine_error, b.engine_error);
        EXPECT_EQ(a.error, b.error);
        EXPECT_EQ(a.elapsed_s, b.elapsed_s);
        // The report round-trips bit-for-bit (NaN collapses to quiet NaN,
        // which report_json renders identically).
        EXPECT_EQ(report_json(a.report), report_json(b.report));
        EXPECT_EQ(a.report.skew.trace.size(), b.report.skew.trace.size());
        EXPECT_EQ(a.report.evm.received_symbols,
                  b.report.evm.received_symbols);
    }
}

TEST(ShardIo, MergedSyntheticShardsMatchDirectMerge) {
    const auto s0 = synthetic_shard(0, 2);
    const auto s1 = synthetic_shard(1, 2);
    const auto direct = merge_results({s0, s1});

    const auto r0 = result_from_json(parse_json(result_to_json(s0)));
    const auto r1 = result_from_json(parse_json(result_to_json(s1)));
    const auto via_files = merge_results({r1, r0}); // order must not matter

    EXPECT_EQ(to_json(via_files), to_json(direct));
    EXPECT_EQ(coverage_csv(via_files), coverage_csv(direct));
    EXPECT_EQ(scenarios_jsonl(via_files), scenarios_jsonl(direct));
    EXPECT_EQ(via_files.stage_reuse_hits, direct.stage_reuse_hits);
}

TEST(ShardIo, FileHelpersAndFailureModes) {
    const auto shard = synthetic_shard(0, 2);
    const fs::path path = "shard_io_test.tmp.json";
    fs::remove(path);
    ASSERT_TRUE(write_result_file(path.string(), shard));
    const auto back = read_result_file(path.string());
    EXPECT_EQ(result_to_json(back), result_to_json(shard));
    fs::remove(path);

    EXPECT_THROW(static_cast<void>(read_result_file("does-not-exist.json")),
                 contract_violation);

    // Version skew and malformed content fail loudly, never half-parse.
    {
        std::ofstream bad(path, std::ios::binary);
        bad << "{\"shard_file_version\":99}";
    }
    EXPECT_THROW(static_cast<void>(read_result_file(path.string())),
                 contract_violation);
    {
        std::ofstream bad(path, std::ios::binary | std::ios::trunc);
        bad << "not json";
    }
    EXPECT_THROW(static_cast<void>(read_result_file(path.string())),
                 contract_violation);
    fs::remove(path);
}

TEST(ShardIo, RealShardedRunsMergeBitIdenticalToUnsharded) {
    campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 2;
    cfg.seed = 0x5A4Dull;
    cfg.threads = 2;

    const auto unsharded = campaign_runner(cfg).run();

    std::vector<campaign_result> shards;
    for (std::size_t i = 0; i < 2; ++i) {
        auto shard_cfg = cfg;
        shard_cfg.shard = {i, 2};
        const auto shard = campaign_runner(shard_cfg).run();
        // Through the file format, exactly like the CLI's --merge.
        shards.push_back(
            result_from_json(parse_json(result_to_json(shard))));
    }
    const auto merged = merge_results(shards);

    export_options opt;
    opt.include_timing = false;
    EXPECT_EQ(to_json(merged, opt), to_json(unsharded, opt));
    EXPECT_EQ(coverage_csv(merged), coverage_csv(unsharded));
    EXPECT_EQ(scenarios_csv(merged, opt), scenarios_csv(unsharded, opt));
    EXPECT_EQ(scenarios_jsonl(merged, opt), scenarios_jsonl(unsharded, opt));
}

} // namespace

/// \file scratch_dir.hpp
/// \brief Self-cleaning per-test scratch directory for suites that touch
///        the filesystem (cache, journal, shard files, quarantine).
///
/// Lives under the system temp directory, not the test working directory:
/// a test binary run from the repo root must never leave droppings in the
/// source tree (the original ad-hoc helpers parented scratch space at
/// `./<suite>_tmp/`, which survived aborted runs as stray repo-root
/// directories).  The directory name folds in the process id so parallel
/// `ctest -j` invocations of different binaries cannot collide; within a
/// process, each test names its own subdirectory.
#pragma once

#include <filesystem>
#include <string>

#include <sys/types.h>
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sdrbist::testing {

struct scratch_dir {
    explicit scratch_dir(const std::string& name) {
#if defined(__unix__) || defined(__APPLE__)
        const std::string pid = std::to_string(::getpid());
#else
        const std::string pid = "0";
#endif
        path = std::filesystem::temp_directory_path() / "sdrbist-tests" /
               (name + "-" + pid);
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~scratch_dir() {
        std::error_code ec; // destructor must not throw
        std::filesystem::remove_all(path, ec);
    }
    scratch_dir(const scratch_dir&) = delete;
    scratch_dir& operator=(const scratch_dir&) = delete;

    /// Path of a file/subdirectory inside the scratch space.
    [[nodiscard]] std::string file(const std::string& rel) const {
        return (path / rel).string();
    }

    std::filesystem::path path;
};

} // namespace sdrbist::testing

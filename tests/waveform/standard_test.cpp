// Multistandard preset catalogue sanity.
#include <gtest/gtest.h>

#include <set>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "waveform/standard.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::waveform;

TEST(StandardCatalogue, PaperPresetMatchesEvaluationSection) {
    const auto p = paper_qpsk_preset();
    EXPECT_EQ(p.stimulus.mod, modulation::qpsk);
    EXPECT_DOUBLE_EQ(p.stimulus.symbol_rate, 10.0 * MHz);
    EXPECT_DOUBLE_EQ(p.stimulus.rolloff, 0.5);
    EXPECT_DOUBLE_EQ(p.default_carrier_hz, 1.0 * GHz);
}

TEST(StandardCatalogue, UniqueNamesAndSaneParameters) {
    const auto cat = standard_catalogue();
    EXPECT_GE(cat.size(), 5u);
    std::set<std::string> names;
    for (const auto& p : cat) {
        EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
        EXPECT_GT(p.stimulus.symbol_rate, 0.0);
        EXPECT_GT(p.stimulus.rolloff, 0.0);
        EXPECT_LE(p.stimulus.rolloff, 1.0);
        EXPECT_GT(p.default_carrier_hz, 100.0 * MHz);
        // Every preset must fit the paper's 90 MHz capture band and the
        // 45 MHz slow band (with the calibration-waveform margin).
        const double occ = p.stimulus.symbol_rate * (1.0 + p.stimulus.rolloff);
        EXPECT_LT(occ, 40.0 * MHz) << p.name;
        EXPECT_GT(p.mask.reference_bandwidth(), 0.0);
        EXPECT_FALSE(p.mask.segments().empty());
    }
}

TEST(StandardCatalogue, FindPresetByName) {
    const auto p = find_preset("paper-qpsk-10M");
    EXPECT_EQ(p.name, "paper-qpsk-10M");
    EXPECT_THROW(find_preset("no-such-preset"), contract_violation);
}

TEST(StandardCatalogue, MasksScaleWithSymbolRate) {
    const auto narrow = find_preset("tactical-bpsk-2M");
    const auto wide = find_preset("qam64-15M");
    EXPECT_LT(narrow.mask.reference_bandwidth(),
              wide.mask.reference_bandwidth());
}

} // namespace

// SRRC pulse-shaping properties (paper stimulus: alpha = 0.5).
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "waveform/srrc.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::waveform;

TEST(Srrc, PeakValue) {
    // h(0) = 1 - a + 4a/pi.
    for (double a : {0.25, 0.5, 1.0})
        EXPECT_NEAR(srrc_value(0.0, a), 1.0 - a + 4.0 * a / pi, 1e-12);
}

TEST(Srrc, SingularityPointsAreFinite) {
    for (double a : {0.22, 0.5, 0.8}) {
        const double t_sing = 1.0 / (4.0 * a);
        const double v = srrc_value(t_sing, a);
        EXPECT_TRUE(std::isfinite(v));
        // Continuity around the singular point.
        EXPECT_NEAR(v, srrc_value(t_sing + 1e-7, a), 1e-4);
        EXPECT_NEAR(v, srrc_value(t_sing - 1e-7, a), 1e-4);
    }
}

TEST(Srrc, SymmetricInTime) {
    for (double t : {0.3, 0.77, 1.5, 2.25})
        EXPECT_DOUBLE_EQ(srrc_value(t, 0.5), srrc_value(-t, 0.5));
}

TEST(Srrc, UnitEnergyContinuous) {
    // integral srrc^2(u) du = RC(0) = 1 (numerical quadrature).
    const double a = 0.5;
    double acc = 0.0;
    const double dt = 1e-3;
    for (double t = -40.0; t <= 40.0; t += dt)
        acc += srrc_value(t, a) * srrc_value(t, a) * dt;
    EXPECT_NEAR(acc, 1.0, 1e-3);
}

TEST(Srrc, AutocorrelationIsRaisedCosine) {
    // SRRC * SRRC (correlation) sampled at integers = RC at integers = δ.
    const double a = 0.5;
    const double dt = 1e-3;
    for (int lag = 0; lag <= 3; ++lag) {
        double acc = 0.0;
        for (double t = -40.0; t <= 40.0; t += dt)
            acc += srrc_value(t, a) * srrc_value(t - lag, a) * dt;
        EXPECT_NEAR(acc, lag == 0 ? 1.0 : 0.0, 2e-3) << "lag=" << lag;
    }
}

TEST(RaisedCosine, NyquistZeroCrossings) {
    for (double a : {0.25, 0.5}) {
        EXPECT_NEAR(raised_cosine_value(0.0, a), 1.0, 1e-12);
        for (int n = 1; n <= 6; ++n)
            EXPECT_NEAR(raised_cosine_value(n, a), 0.0, 1e-12) << "n=" << n;
        // Singularity at 1/(2a) finite and continuous.
        const double ts = 1.0 / (2.0 * a);
        EXPECT_TRUE(std::isfinite(raised_cosine_value(ts, a)));
        EXPECT_NEAR(raised_cosine_value(ts, a),
                    raised_cosine_value(ts + 1e-7, a), 1e-4);
    }
}

TEST(SrrcTaps, NormalisedToUnitEnergy) {
    const auto h = srrc_taps(0.5, 16, 8);
    EXPECT_EQ(h.size(), 2u * 8u * 16u + 1u);
    double e = 0.0;
    for (double v : h)
        e += v * v;
    EXPECT_NEAR(e, 1.0, 1e-12);
    // Peak in the middle.
    const std::size_t mid = h.size() / 2;
    for (double v : h)
        EXPECT_LE(std::abs(v), h[mid] + 1e-12);
}

TEST(SrrcTaps, CascadeIsIsiFree) {
    // SRRC -> matched SRRC sampled at symbol instants must be ~δ (ISI-free).
    const std::size_t os = 8;
    const auto h = srrc_taps(0.5, os, 10);
    // Discrete autocorrelation at multiples of the symbol period.
    auto corr_at = [&](int lag_symbols) {
        const long lag = static_cast<long>(lag_symbols) * static_cast<long>(os);
        double acc = 0.0;
        for (long i = 0; i < static_cast<long>(h.size()); ++i) {
            const long j = i + lag;
            if (j >= 0 && j < static_cast<long>(h.size()))
                acc += h[static_cast<std::size_t>(i)] *
                       h[static_cast<std::size_t>(j)];
        }
        return acc;
    };
    EXPECT_NEAR(corr_at(0), 1.0, 1e-6);
    for (int lag = 1; lag <= 5; ++lag)
        EXPECT_NEAR(corr_at(lag), 0.0, 3e-3) << "lag=" << lag;
}

TEST(SrrcTaps, Preconditions) {
    EXPECT_THROW(srrc_taps(0.0, 8, 8), contract_violation);
    EXPECT_THROW(srrc_taps(1.5, 8, 8), contract_violation);
    EXPECT_THROW(srrc_taps(0.5, 1, 8), contract_violation);
    EXPECT_THROW(srrc_taps(0.5, 8, 1), contract_violation);
}

} // namespace

// pi/4-DQPSK differential modulation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "waveform/constellation.hpp"
#include "waveform/generator.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::waveform;

TEST(Dqpsk, EightPointRingUnitPower) {
    const constellation con(modulation::dqpsk_pi4);
    EXPECT_TRUE(con.is_differential());
    EXPECT_EQ(con.bits_per_symbol(), 2);
    EXPECT_EQ(con.size(), 8u);
    for (const auto& p : con.points())
        EXPECT_NEAR(std::abs(p), 1.0, 1e-12);
}

TEST(Dqpsk, RotationsAreQuarterOrThreeQuarterPi) {
    const constellation con(modulation::dqpsk_pi4);
    // All 4 dibits over a few symbols.
    const std::vector<int> bits{0, 0, 0, 1, 1, 1, 1, 0};
    const auto symbols = con.map_stream(bits);
    ASSERT_EQ(symbols.size(), 4u);
    // Successive rotations: +pi/4 from the start phase, then +3pi/4,
    // then -3pi/4, then -pi/4.
    const double d1 = std::arg(symbols[1] / symbols[0]);
    const double d2 = std::arg(symbols[2] / symbols[1]);
    const double d3 = std::arg(symbols[3] / symbols[2]);
    EXPECT_NEAR(d1, 3.0 * pi / 4.0, 1e-12);
    EXPECT_NEAR(d2, -3.0 * pi / 4.0, 1e-12);
    EXPECT_NEAR(d3, -pi / 4.0, 1e-12);
}

TEST(Dqpsk, AlternatesBetweenTheTwoQpskGrids) {
    // Odd-indexed ring positions on one grid, even on the other: every
    // rotation is an odd multiple of pi/4, so the grid parity flips each
    // symbol.
    const constellation con(modulation::dqpsk_pi4);
    std::vector<int> bits;
    prbs_generator prbs(prbs_order::prbs9, 5);
    for (int i = 0; i < 128; ++i)
        bits.push_back(prbs.next_bit());
    const auto symbols = con.map_stream(bits);
    int parity = -1;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
        const double ring =
            std::arg(symbols[s]) / (pi / 4.0); // ring index, possibly <0
        const long idx = std::lround(ring < 0 ? ring + 8.0 : ring) % 8;
        if (parity < 0)
            parity = static_cast<int>(idx % 2);
        EXPECT_EQ(idx % 2, (parity + static_cast<int>(s)) % 2 == 0
                               ? parity
                               : 1 - parity);
    }
}

TEST(Dqpsk, NeverRepeatsSymbol) {
    // The minimum rotation is pi/4 != 0: consecutive symbols always differ
    // (a property CPM-ish receivers rely on for clock recovery).
    const constellation con(modulation::dqpsk_pi4);
    std::vector<int> bits;
    prbs_generator prbs(prbs_order::prbs15, 77);
    for (int i = 0; i < 512; ++i)
        bits.push_back(prbs.next_bit());
    const auto symbols = con.map_stream(bits);
    for (std::size_t s = 1; s < symbols.size(); ++s)
        EXPECT_GT(std::abs(symbols[s] - symbols[s - 1]), 0.5);
}

TEST(Dqpsk, GeneratorProducesWaveform) {
    generator_config g;
    g.mod = modulation::dqpsk_pi4;
    g.symbol_rate = 1.0 * MHz;
    g.rolloff = 0.35;
    g.oversample = 16;
    g.span_symbols = 10;
    g.symbol_count = 64;
    const auto wf = generate_baseband(g);
    EXPECT_EQ(wf.symbols.size(), 64u);
    for (const auto& s : wf.symbols)
        EXPECT_NEAR(std::abs(s), 1.0, 1e-12);
}

TEST(Dqpsk, SingleSymbolMapRejected) {
    const constellation con(modulation::dqpsk_pi4);
    const std::vector<int> bits{0, 1};
    EXPECT_THROW(static_cast<void>(con.map(bits)), contract_violation);
}

} // namespace

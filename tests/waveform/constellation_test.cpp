// Constellation mapping tests: energy normalisation, Gray property,
// mapping/demapping round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "waveform/constellation.hpp"

namespace {

using namespace sdrbist::waveform;

class AllModulations : public ::testing::TestWithParam<modulation> {};

TEST_P(AllModulations, UnitAveragePower) {
    const constellation con(GetParam());
    double p = 0.0;
    for (const auto& pt : con.points())
        p += std::norm(pt);
    p /= static_cast<double>(con.size());
    EXPECT_NEAR(p, 1.0, 1e-12) << to_string(GetParam());
}

TEST_P(AllModulations, SizeMatchesBits) {
    const constellation con(GetParam());
    EXPECT_EQ(con.size(), 1u << con.bits_per_symbol());
}

TEST_P(AllModulations, MapDemapRoundTrip) {
    const constellation con(GetParam());
    for (std::size_t v = 0; v < con.size(); ++v)
        EXPECT_EQ(con.demap(con.point(v)), v) << to_string(GetParam());
}

TEST_P(AllModulations, DemapWithSmallNoiseIsStable) {
    const constellation con(GetParam());
    const double eps = 0.2 * con.min_distance();
    for (std::size_t v = 0; v < con.size(); ++v) {
        const auto noisy = con.point(v) + std::complex<double>(eps, -eps / 2);
        EXPECT_EQ(con.demap(noisy), v);
    }
}

TEST_P(AllModulations, PointsAreDistinct) {
    const constellation con(GetParam());
    EXPECT_GT(con.min_distance(), 0.1);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllModulations,
                         ::testing::Values(modulation::bpsk, modulation::qpsk,
                                           modulation::psk8, modulation::qam16,
                                           modulation::qam64),
                         [](const auto& info) {
                             return to_string(info.param) == "8-PSK"
                                        ? std::string("psk8")
                                    : to_string(info.param) == "16-QAM"
                                        ? std::string("qam16")
                                    : to_string(info.param) == "64-QAM"
                                        ? std::string("qam64")
                                        : to_string(info.param);
                         });

TEST(Constellation, KnownMinDistances) {
    EXPECT_NEAR(constellation(modulation::bpsk).min_distance(), 2.0, 1e-12);
    EXPECT_NEAR(constellation(modulation::qpsk).min_distance(), std::sqrt(2.0),
                1e-12);
    // 16-QAM unit power: spacing 2/sqrt(10).
    EXPECT_NEAR(constellation(modulation::qam16).min_distance(),
                2.0 / std::sqrt(10.0), 1e-12);
}

TEST(Constellation, GrayNeighboursDifferInOneBit) {
    // For QAM grids, horizontally/vertically adjacent points must differ in
    // exactly one mapped bit (the Gray property that minimises BER).
    for (auto kind : {modulation::qam16, modulation::qam64}) {
        const constellation con(kind);
        const double spacing = con.min_distance();
        int checked = 0;
        for (std::size_t i = 0; i < con.size(); ++i) {
            for (std::size_t j = i + 1; j < con.size(); ++j) {
                if (std::abs(std::abs(con.point(i) - con.point(j)) - spacing) <
                    1e-9) {
                    const auto diff = i ^ j;
                    EXPECT_EQ(__builtin_popcountll(diff), 1)
                        << to_string(kind) << " " << i << "," << j;
                    ++checked;
                }
            }
        }
        EXPECT_GT(checked, 10);
    }
}

TEST(Constellation, MapStreamConsumesBitsInOrder) {
    const constellation con(modulation::qpsk);
    const std::vector<int> bits{0, 0, 0, 1, 1, 0, 1, 1};
    const auto symbols = con.map_stream(bits);
    ASSERT_EQ(symbols.size(), 4u);
    EXPECT_EQ(symbols[0], con.point(0));
    EXPECT_EQ(symbols[1], con.point(1));
    EXPECT_EQ(symbols[2], con.point(2));
    EXPECT_EQ(symbols[3], con.point(3));
}

TEST(Constellation, Preconditions) {
    const constellation con(modulation::qpsk);
    const std::vector<int> three{0, 1, 0};
    EXPECT_THROW(con.map_stream(three), sdrbist::contract_violation);
    const std::vector<int> bad{0, 2};
    EXPECT_THROW(static_cast<void>(con.map(bad)),
                 sdrbist::contract_violation);
    EXPECT_THROW(static_cast<void>(con.point(4)),
                 sdrbist::contract_violation);
}

} // namespace

// LFSR PRBS source tests.
#include <gtest/gtest.h>

#include "core/contracts.hpp"
#include "waveform/prbs.hpp"

namespace {

using namespace sdrbist::waveform;

TEST(Prbs, DeterministicForSameSeed) {
    prbs_generator a(prbs_order::prbs15, 0x1234);
    prbs_generator b(prbs_order::prbs15, 0x1234);
    EXPECT_EQ(a.bits(500), b.bits(500));
}

TEST(Prbs, DifferentSeedsDiffer) {
    prbs_generator a(prbs_order::prbs15, 1);
    prbs_generator b(prbs_order::prbs15, 2);
    EXPECT_NE(a.bits(200), b.bits(200));
}

TEST(Prbs, MaximalLengthPeriodPrbs7) {
    // A maximal-length LFSR repeats after exactly 2^7 - 1 = 127 bits.
    prbs_generator g(prbs_order::prbs7, 1);
    const auto first = g.bits(127);
    const auto second = g.bits(127);
    EXPECT_EQ(first, second);
    EXPECT_EQ(g.period(), 127u);
    // And not earlier: the first half must differ from the second half.
    const std::vector<int> a(first.begin(), first.begin() + 63);
    const std::vector<int> b(first.begin() + 63, first.begin() + 126);
    EXPECT_NE(a, b);
}

TEST(Prbs, MaximalLengthPeriodPrbs9) {
    prbs_generator g(prbs_order::prbs9, 0x55);
    const auto first = g.bits(511);
    const auto second = g.bits(511);
    EXPECT_EQ(first, second);
}

TEST(Prbs, BalancedOnesAndZeros) {
    // A maximal-length sequence has 2^(n-1) ones and 2^(n-1)-1 zeros.
    prbs_generator g(prbs_order::prbs7, 1);
    const auto bits = g.bits(127);
    int ones = 0;
    for (int b : bits)
        ones += b;
    EXPECT_EQ(ones, 64);
}

TEST(Prbs, AllOrdersProduceValidBits) {
    for (auto order : {prbs_order::prbs7, prbs_order::prbs9,
                       prbs_order::prbs15, prbs_order::prbs23,
                       prbs_order::prbs31}) {
        prbs_generator g(order, 0xACE1);
        for (int b : g.bits(100))
            EXPECT_TRUE(b == 0 || b == 1);
    }
}

TEST(Prbs, RunLengthStatistics) {
    // In a maximal-length sequence, about half the runs have length 1.
    prbs_generator g(prbs_order::prbs15, 7);
    const auto bits = g.bits(32767);
    int runs = 0, runs_len1 = 0;
    int run = 1;
    for (std::size_t i = 1; i < bits.size(); ++i) {
        if (bits[i] == bits[i - 1]) {
            ++run;
        } else {
            ++runs;
            runs_len1 += run == 1 ? 1 : 0;
            run = 1;
        }
    }
    EXPECT_NEAR(static_cast<double>(runs_len1) / runs, 0.5, 0.02);
}

TEST(Prbs, ZeroSeedRejected) {
    EXPECT_THROW(prbs_generator(prbs_order::prbs7, 0),
                 sdrbist::contract_violation);
}

} // namespace

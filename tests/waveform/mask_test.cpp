// Spectral mask definition and compliance checking.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "waveform/mask.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::waveform;

// Synthetic baseband PSD: flat in-band plateau + configurable shoulders.
dsp::psd_result synthetic_psd(double shoulder_dbc, double floor_dbc) {
    dsp::psd_result p;
    const double df = 0.25 * MHz;
    for (double f = -40.0 * MHz; f <= 40.0 * MHz; f += df) {
        p.frequency.push_back(f);
        const double af = std::abs(f);
        // Region boundaries aligned with the narrowband mask segments for a
        // 10 MHz / alpha = 0.5 waveform: shoulders 11.25-22.5 MHz, floor
        // beyond 22.5 MHz.
        double level_dbc;
        if (af < 7.5 * MHz)
            level_dbc = 0.0;
        else if (af < 22.5 * MHz)
            level_dbc = shoulder_dbc;
        else
            level_dbc = floor_dbc;
        p.density.push_back(power_from_db(level_dbc));
    }
    p.resolution_bw = df;
    return p;
}

TEST(SpectralMask, PassingSpectrum) {
    const auto mask = make_narrowband_mask(10.0 * MHz, 0.5);
    const auto report = mask.check(synthetic_psd(-45.0, -55.0));
    EXPECT_TRUE(report.pass);
    EXPECT_GT(report.worst_margin_db, 5.0);
    ASSERT_EQ(report.segments.size(), 2u);
    for (const auto& seg : report.segments)
        EXPECT_TRUE(seg.pass);
}

TEST(SpectralMask, HotShoulderFails) {
    const auto mask = make_narrowband_mask(10.0 * MHz, 0.5);
    const auto report = mask.check(synthetic_psd(-25.0, -55.0));
    EXPECT_FALSE(report.pass);
    EXPECT_FALSE(report.segments[0].pass);
    EXPECT_NEAR(report.segments[0].measured_dbc, -25.0, 0.5);
    EXPECT_NEAR(report.worst_margin_db, -10.0, 0.6);
}

TEST(SpectralMask, HotFloorFailsOnlyFarSegment) {
    const auto mask = make_narrowband_mask(10.0 * MHz, 0.5);
    const auto report = mask.check(synthetic_psd(-45.0, -30.0));
    EXPECT_FALSE(report.pass);
    EXPECT_TRUE(report.segments[0].pass);
    EXPECT_FALSE(report.segments[1].pass);
}

TEST(SpectralMask, LimitAtLookup) {
    const auto mask = make_narrowband_mask(10.0 * MHz, 0.5);
    // occ = 15 MHz: shoulders 11.25..22.5, floor 22.5..60.
    EXPECT_TRUE(std::isinf(mask.limit_at(5.0 * MHz)));
    EXPECT_DOUBLE_EQ(mask.limit_at(15.0 * MHz), -35.0);
    EXPECT_DOUBLE_EQ(mask.limit_at(-15.0 * MHz), -35.0); // symmetric
    EXPECT_DOUBLE_EQ(mask.limit_at(30.0 * MHz), -42.0);
    EXPECT_TRUE(std::isinf(mask.limit_at(100.0 * MHz)));
}

TEST(SpectralMask, StrictMaskIsStricter) {
    const auto normal = make_narrowband_mask(10.0 * MHz, 0.5);
    const auto strict = make_strict_mask(10.0 * MHz, 0.5);
    EXPECT_LT(strict.limit_at(15.0 * MHz), normal.limit_at(15.0 * MHz));
    EXPECT_LT(strict.limit_at(30.0 * MHz), normal.limit_at(30.0 * MHz));
}

TEST(MeasurementFloor, FormulaAndMonotonicity) {
    // Paper setup: 3 ps at 1 GHz, 15 MHz occupied in a 90 MHz capture.
    const double floor =
        bist_measurement_floor_dbc(1.0 * GHz, 3.0 * ps, 15.0 * MHz,
                                   90.0 * MHz);
    EXPECT_NEAR(floor, -42.3, 1.0); // -20log10(2π·1e9·3e-12) - 10log10(6)
    // Higher carrier -> higher floor; more jitter -> higher floor.
    EXPECT_GT(bist_measurement_floor_dbc(2.0 * GHz, 3.0 * ps, 15.0 * MHz,
                                         90.0 * MHz),
              floor);
    EXPECT_GT(bist_measurement_floor_dbc(1.0 * GHz, 6.0 * ps, 15.0 * MHz,
                                         90.0 * MHz),
              floor);
    // Zero jitter: unbounded measurement.
    EXPECT_LT(bist_measurement_floor_dbc(1.0 * GHz, 0.0, 15.0 * MHz,
                                         90.0 * MHz),
              -150.0);
}

TEST(MeasurementFloor, RelaxationRaisesOnlyViolatedLimits) {
    const auto mask = make_narrowband_mask(10.0 * MHz, 0.5);
    const auto relaxed = relax_to_measurement_floor(mask, -40.0, 4.0);
    // -42 floor limit below -36 -> raised; -35 shoulder stays.
    EXPECT_DOUBLE_EQ(relaxed.limit_at(15.0 * MHz), -35.0);
    EXPECT_DOUBLE_EQ(relaxed.limit_at(30.0 * MHz), -36.0);
    EXPECT_NE(relaxed.name(), mask.name());
}

TEST(SpectralMask, Preconditions) {
    EXPECT_THROW(spectral_mask("x", 0.0, {}), contract_violation);
    EXPECT_THROW(spectral_mask("x", 1e6, {{5.0, 1.0, -30.0}}),
                 contract_violation);
    const auto mask = make_narrowband_mask(10.0 * MHz, 0.5);
    dsp::psd_result empty;
    EXPECT_THROW(mask.check(empty), contract_violation);
    EXPECT_THROW(make_narrowband_mask(0.0, 0.5), contract_violation);
    EXPECT_THROW(make_narrowband_mask(1e6, 1.5), contract_violation);
}

} // namespace

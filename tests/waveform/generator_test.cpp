// Baseband stimulus generation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "waveform/generator.hpp"
#include "waveform/srrc.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::waveform;

generator_config paper_config() {
    generator_config g;
    g.mod = modulation::qpsk;
    g.symbol_rate = 10.0 * MHz;
    g.rolloff = 0.5;
    g.oversample = 16;
    g.span_symbols = 8;
    g.symbol_count = 128;
    return g;
}

TEST(Generator, BasicGeometry) {
    const auto wf = generate_baseband(paper_config());
    EXPECT_DOUBLE_EQ(wf.sample_rate, 160.0 * MHz);
    EXPECT_EQ(wf.symbols.size(), 128u);
    EXPECT_EQ(wf.oversample, 16u);
    EXPECT_EQ(wf.shaper_delay_samples, 8u * 16u);
    // upfirdn length: symbols·os + taps - 1.
    EXPECT_EQ(wf.samples.size(), 128u * 16u + (2u * 8u * 16u + 1u) - 1u);
    EXPECT_NEAR(wf.duration(), static_cast<double>(wf.samples.size()) / wf.sample_rate,
                1e-15);
}

TEST(Generator, DeterministicInSeed) {
    const auto a = generate_baseband(paper_config());
    const auto b = generate_baseband(paper_config());
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i)
        EXPECT_EQ(a.samples[i], b.samples[i]);

    auto cfg = paper_config();
    cfg.prbs_seed = 0x999;
    const auto c = generate_baseband(cfg);
    bool differs = false;
    for (std::size_t i = 0; i < a.samples.size(); ++i)
        differs = differs || a.samples[i] != c.samples[i];
    EXPECT_TRUE(differs);
}

TEST(Generator, SymbolInstantsCarrySymbols) {
    // Sampling the envelope at symbol instants recovers the symbols up to
    // the (small) ISI of the *single* SRRC (not yet matched-filtered).
    const auto wf = generate_baseband(paper_config());
    // The single-SRRC symbol-instant gain is sqrt(os)·h_peak ≈ srrc(0).
    const auto taps = srrc_taps(0.5, 16, 8);
    const double centre_gain = taps[taps.size() / 2] * 4.0;
    double worst = 0.0;
    for (std::size_t k = 20; k < 100; ++k) {
        const auto idx = static_cast<std::size_t>(
            std::lround(wf.symbol_instant(k) * wf.sample_rate));
        const auto got = wf.samples[idx] / centre_gain;
        worst = std::max(worst, std::abs(got - wf.symbols[k]));
    }
    // A single SRRC (not yet matched-filtered) has visible self-ISI at
    // alpha = 0.5.
    EXPECT_LT(worst, 0.3);
}

TEST(Generator, AveragePowerNearUnity) {
    // Unit-energy SRRC with the oversample-compensating gain keeps the
    // envelope RMS near the constellation RMS (= 1).
    const auto wf = generate_baseband(paper_config());
    double p = 0.0;
    for (std::size_t i = wf.shaper_delay_samples;
         i < wf.samples.size() - wf.shaper_delay_samples; ++i)
        p += std::norm(wf.samples[i]);
    p /= static_cast<double>(wf.samples.size() - 2 * wf.shaper_delay_samples);
    EXPECT_NEAR(std::sqrt(p), 1.0, 0.15);
}

TEST(Generator, OccupiedBandwidthRespected) {
    // Spectrum must be confined to ±(1+alpha)·Rs/2 (plus truncation skirt).
    const auto wf = generate_baseband(paper_config());
    // Crude DFT power outside the occupied band.
    const double f_edge = (1.0 + 0.5) * 10.0 * MHz / 2.0; // 7.5 MHz
    double in_band = 0.0, out_band = 0.0;
    const std::size_t n = 2048;
    for (double f = 1.0 * MHz; f < 60.0 * MHz; f += 1.0 * MHz) {
        std::complex<double> acc{0.0, 0.0};
        for (std::size_t i = 0; i < n; ++i)
            acc += wf.samples[i + 256] *
                   std::polar(1.0, -two_pi * f / wf.sample_rate *
                                       static_cast<double>(i));
        const double p = std::norm(acc);
        if (f < f_edge)
            in_band += p;
        else
            out_band += p;
    }
    EXPECT_LT(out_band / in_band, 5e-3);
}

TEST(Generator, AllModulationsGenerate) {
    for (auto mod : {modulation::bpsk, modulation::qpsk, modulation::psk8,
                     modulation::qam16, modulation::qam64}) {
        auto cfg = paper_config();
        cfg.mod = mod;
        const auto wf = generate_baseband(cfg);
        EXPECT_EQ(wf.symbols.size(), 128u);
        EXPECT_GT(std::abs(wf.samples[wf.samples.size() / 2]), 0.0);
    }
}

TEST(Generator, Preconditions) {
    auto cfg = paper_config();
    cfg.symbol_count = 4;
    EXPECT_THROW(generate_baseband(cfg), contract_violation);
    cfg = paper_config();
    cfg.oversample = 1;
    EXPECT_THROW(generate_baseband(cfg), contract_violation);
    cfg = paper_config();
    cfg.symbol_rate = 0.0;
    EXPECT_THROW(generate_baseband(cfg), contract_violation);
}

} // namespace

// ACPR and occupied-bandwidth measurement tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "waveform/tx_metrics.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::waveform;

// Two-sided baseband PSD: main channel plateau + adjacent-channel shelf.
dsp::psd_result shelf_psd(double adj_dbc) {
    dsp::psd_result p;
    const double df = 0.1 * MHz;
    for (double f = -40.0 * MHz; f <= 40.0 * MHz; f += df) {
        p.frequency.push_back(f);
        const double af = std::abs(f);
        double level;
        if (af < 7.5 * MHz)
            level = 1.0;
        else if (af < 30.0 * MHz)
            level = power_from_db(adj_dbc);
        else
            level = 1e-12;
        p.density.push_back(level);
    }
    p.resolution_bw = df;
    return p;
}

TEST(Acpr, IntegratedRatioMatchesConstruction) {
    // Adjacent density -30 dBc over the same bandwidth as the main channel
    // -> ACPR = -30 dB exactly.
    const auto psd = shelf_psd(-30.0);
    const auto r = measure_acpr(psd, 15.0 * MHz, 22.0 * MHz);
    EXPECT_NEAR(r.lower_dbc, -30.0, 0.3);
    EXPECT_NEAR(r.upper_dbc, -30.0, 0.3);
    EXPECT_NEAR(r.worst_dbc(), -30.0, 0.3);
    EXPECT_GT(r.main_power, 0.0);
}

TEST(Acpr, AsymmetricSidesReported) {
    auto psd = shelf_psd(-30.0);
    // Raise only the upper adjacent channel.
    for (std::size_t i = 0; i < psd.frequency.size(); ++i)
        if (psd.frequency[i] > 10.0 * MHz && psd.frequency[i] < 30.0 * MHz)
            psd.density[i] *= 10.0;
    const auto r = measure_acpr(psd, 15.0 * MHz, 22.0 * MHz);
    EXPECT_NEAR(r.upper_dbc - r.lower_dbc, 10.0, 0.5);
    EXPECT_NEAR(r.worst_dbc(), r.upper_dbc, 1e-12);
}

TEST(Acpr, Preconditions) {
    const auto psd = shelf_psd(-30.0);
    EXPECT_THROW(measure_acpr(psd, 0.0, 22.0 * MHz), contract_violation);
    // Adjacent channel overlapping the main one.
    EXPECT_THROW(measure_acpr(psd, 15.0 * MHz, 5.0 * MHz),
                 contract_violation);
}

TEST(OccupiedBandwidth, BrickWallSpectrum) {
    // A flat channel of width W: x% OBW ≈ x·W.
    const auto psd = shelf_psd(-200.0);
    EXPECT_NEAR(occupied_bandwidth(psd, 0.99), 0.99 * 15.0 * MHz,
                0.4 * MHz);
    EXPECT_NEAR(occupied_bandwidth(psd, 0.5), 0.5 * 15.0 * MHz, 0.4 * MHz);
}

TEST(OccupiedBandwidth, OffsetSpectrumUsesCentroid) {
    // Same plateau shifted by +5 MHz: the centroid tracking keeps the OBW.
    dsp::psd_result p;
    const double df = 0.1 * MHz;
    for (double f = -40.0 * MHz; f <= 40.0 * MHz; f += df) {
        p.frequency.push_back(f);
        p.density.push_back(std::abs(f - 5.0 * MHz) < 7.5 * MHz ? 1.0
                                                                : 1e-12);
    }
    p.resolution_bw = df;
    EXPECT_NEAR(occupied_bandwidth(p, 0.99), 0.99 * 15.0 * MHz, 0.4 * MHz);
}

TEST(OccupiedBandwidth, WiderFractionWiderBand) {
    const auto psd = shelf_psd(-20.0); // visible shoulders
    EXPECT_LT(occupied_bandwidth(psd, 0.9), occupied_bandwidth(psd, 0.99));
}

TEST(OccupiedBandwidth, Preconditions) {
    const auto psd = shelf_psd(-30.0);
    EXPECT_THROW(occupied_bandwidth(psd, 0.4), contract_violation);
    EXPECT_THROW(occupied_bandwidth(psd, 1.0), contract_violation);
}

} // namespace

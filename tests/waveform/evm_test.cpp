// EVM meter tests: clean-chain zero, gain/phase/timing recovery, noise.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "waveform/evm.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::waveform;

baseband_waveform make_wf() {
    generator_config g;
    g.mod = modulation::qpsk;
    g.symbol_rate = 10.0 * MHz;
    g.rolloff = 0.5;
    g.oversample = 16;
    g.span_symbols = 8;
    g.symbol_count = 96;
    return generate_baseband(g);
}

TEST(Evm, CleanChainIsNearZero) {
    const auto wf = make_wf();
    const auto r = measure_evm(
        std::span<const std::complex<double>>(wf.samples.data(),
                                              wf.samples.size()),
        wf.sample_rate, wf);
    EXPECT_LT(r.evm_percent(), 0.5);
    EXPECT_NEAR(std::abs(r.gain), 1.0, 0.02);
    EXPECT_NEAR(r.timing_offset, 0.0, 2.0 * ns);
}

TEST(Evm, RecoversComplexGain) {
    const auto wf = make_wf();
    const std::complex<double> g = 2.5 * std::polar(1.0, 0.8);
    auto scaled = wf.samples;
    for (auto& v : scaled)
        v *= g;
    const auto r = measure_evm(
        std::span<const std::complex<double>>(scaled.data(), scaled.size()),
        wf.sample_rate, wf);
    EXPECT_LT(r.evm_percent(), 0.5);
    EXPECT_NEAR(std::abs(r.gain), 2.5, 0.05);
    EXPECT_NEAR(std::arg(r.gain), 0.8, 0.02);
}

TEST(Evm, RecoversTimingOffset) {
    // Shift the envelope timeline via envelope_t0 and verify the search
    // finds it.
    const auto wf = make_wf();
    evm_options opt;
    opt.envelope_t0 = 20.0 * ns; // envelope[0] sits at t = 20 ns
    // envelope[n] = wf(t) sampled at t = 20ns + n/fs  -> drop first samples
    const auto skip = static_cast<std::size_t>(
        std::lround(20.0 * ns * wf.sample_rate));
    std::vector<std::complex<double>> shifted(wf.samples.begin() + skip,
                                              wf.samples.end());
    const auto r = measure_evm(
        std::span<const std::complex<double>>(shifted.data(), shifted.size()),
        wf.sample_rate, wf, opt);
    EXPECT_LT(r.evm_percent(), 0.6);
}

TEST(Evm, ResidualTimingErrorDegradesGracefully) {
    // A deliberate unmodelled sub-sample delay shows up as EVM, roughly
    // linear in the offset for small offsets.
    const auto wf = make_wf();
    evm_options opt;
    opt.timing_search_span = 0.0001; // effectively disable the search
    opt.timing_steps = 3;
    // Feed an envelope offset by half a sample without telling the meter.
    std::vector<std::complex<double>> late(wf.samples.begin() + 1,
                                           wf.samples.end());
    const auto r = measure_evm(
        std::span<const std::complex<double>>(late.data(), late.size()),
        wf.sample_rate, wf, opt);
    EXPECT_GT(r.evm_percent(), 1.0); // a full sample late: visible
}

TEST(Evm, AwgnSetsEvmFloor) {
    const auto wf = make_wf();
    rng gen(33);
    for (const double snr_db : {30.0, 20.0}) {
        auto noisy = wf.samples;
        const double sigma = std::pow(10.0, -snr_db / 20.0) / std::sqrt(2.0);
        for (auto& v : noisy)
            v += std::complex<double>(gen.gaussian(0.0, sigma),
                                      gen.gaussian(0.0, sigma));
        const auto r = measure_evm(
            std::span<const std::complex<double>>(noisy.data(), noisy.size()),
            wf.sample_rate, wf);
        // Matched filtering gains ~ sqrt(oversample·...) against white
        // noise; EVM must be below the raw noise level but non-zero.
        const double raw_percent = 100.0 * std::pow(10.0, -snr_db / 20.0);
        EXPECT_LT(r.evm_percent(), raw_percent);
        EXPECT_GT(r.evm_percent(), raw_percent / 20.0);
    }
}

TEST(Evm, PeakAtLeastRms) {
    const auto wf = make_wf();
    rng gen(7);
    auto noisy = wf.samples;
    for (auto& v : noisy)
        v += std::complex<double>(gen.gaussian(0.0, 0.02),
                                  gen.gaussian(0.0, 0.02));
    const auto r = measure_evm(
        std::span<const std::complex<double>>(noisy.data(), noisy.size()),
        wf.sample_rate, wf);
    EXPECT_GE(r.evm_peak, r.evm_rms);
    EXPECT_FALSE(r.received_symbols.empty());
}

TEST(Evm, DbConversion) {
    evm_result r;
    r.evm_rms = 0.01;
    EXPECT_NEAR(r.evm_db(), -40.0, 1e-9);
    EXPECT_NEAR(r.evm_percent(), 1.0, 1e-12);
}

TEST(Evm, Preconditions) {
    const auto wf = make_wf();
    std::vector<std::complex<double>> tiny(8, {0.0, 0.0});
    EXPECT_THROW(measure_evm(std::span<const std::complex<double>>(
                                 tiny.data(), tiny.size()),
                             wf.sample_rate, wf),
                 contract_violation);
    evm_options opt;
    opt.timing_steps = 4; // must be odd
    EXPECT_THROW(measure_evm(std::span<const std::complex<double>>(
                                 wf.samples.data(), wf.samples.size()),
                             wf.sample_rate, wf, opt),
                 contract_violation);
}

} // namespace

// The paper's central thesis as an executable property: at the theoretical
// minimum average rate (2B total), uniform bandpass sampling aliases for
// almost every band position, while second-order nonuniform sampling
// reconstructs exactly — for ANY in-band signal and ANY (stable) delay.
#include <gtest/gtest.h>

#include <cmath>

#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"
#include "sampling/pbs.hpp"
#include "sampling/pnbs.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::sampling;

// Carrier positions chosen so fH/B is NOT integer: PBS at fs = 2B aliases.
class ThesisBands : public ::testing::TestWithParam<double> {};

TEST_P(ThesisBands, PnbsWorksWherePbsAliases) {
    const double fc = GetParam();
    const band_spec band = band_around(fc, 90.0 * MHz);
    const double t_period = 1.0 / band.bandwidth();

    // 1. Uniform sampling at the same average rate (2B) aliases.
    EXPECT_FALSE(is_alias_free(band, 2.0 * band.bandwidth()))
        << "band position accidentally integer — pick another carrier";

    // 2. Nonuniform dual-stream sampling at B per channel reconstructs.
    rng gen(static_cast<std::uint64_t>(fc / MHz));
    std::vector<rf::tone> tones;
    for (int i = 0; i < 5; ++i)
        tones.push_back({gen.uniform(band.f_lo + 8.0 * MHz,
                                     band.f_hi - 8.0 * MHz),
                         gen.uniform(0.3, 1.0), gen.uniform(0.0, two_pi)});
    const std::size_t n = 700;
    const rf::multitone_signal sig(
        std::move(tones), static_cast<double>(n) * t_period + 1.0 * us);

    const double d = kohlenberg_kernel::optimal_delay(band);
    ASSERT_TRUE(kohlenberg_kernel::delay_is_stable(band, d));
    std::vector<double> even(n), odd(n);
    for (std::size_t k = 0; k < n; ++k) {
        even[k] = sig.value(static_cast<double>(k) * t_period);
        odd[k] = sig.value(static_cast<double>(k) * t_period + d);
    }
    const pnbs_reconstructor recon(even, odd, t_period, 0.0, band, d,
                                   {81, 8.0});
    rng probe(7);
    std::vector<double> ref, est;
    for (int i = 0; i < 300; ++i) {
        const double t = probe.uniform(recon.valid_begin(), recon.valid_end());
        ref.push_back(sig.value(t));
        est.push_back(recon.value(t));
    }
    EXPECT_LT(relative_rms_error(ref, est), 0.01)
        << "fc = " << fc / MHz << " MHz";
}

INSTANTIATE_TEST_SUITE_P(
    Carriers, ThesisBands,
    ::testing::Values(433.0 * MHz, 868.0 * MHz, 1.0 * GHz, 1.57542 * GHz,
                      2.03 * GHz, 2.41 * GHz),
    [](const auto& info) {
        return "fc" + std::to_string(static_cast<int>(info.param / MHz));
    });

} // namespace

// Minimal end-to-end smoke: stimulus -> Tx -> capture runs and is sane.
#include <gtest/gtest.h>

#include "adc/tiadc.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "rf/tx.hpp"
#include "waveform/standard.hpp"

namespace {

using namespace sdrbist;

TEST(IntegrationSmoke, TxThenCaptureProducesLiveSamples) {
    const auto preset = waveform::paper_qpsk_preset();
    const auto bb = waveform::generate_baseband(preset.stimulus);

    rf::tx_config txc;
    txc.carrier_hz = preset.default_carrier_hz;
    const rf::homodyne_tx tx(txc);
    const auto out = tx.transmit(bb);

    adc::tiadc_config tc;
    tc.quant.full_scale = 4.0 * rf::envelope_rms(out.envelope);
    adc::bp_tiadc sampler(tc);
    sampler.program_delay(180.0 * ps);

    const auto cap = sampler.capture(*out.passband,
                                     out.passband->begin_time() + 0.1 * us,
                                     512, 0);
    EXPECT_EQ(cap.even.size(), 512u);
    EXPECT_EQ(cap.odd.size(), 512u);
    // Both channels see signal (nonzero RMS, comparable levels).
    const double r_even = rms(cap.even);
    const double r_odd = rms(cap.odd);
    EXPECT_GT(r_even, 1e-3);
    EXPECT_GT(r_odd, 1e-3);
    EXPECT_NEAR(r_even / r_odd, 1.0, 0.3);
    EXPECT_NEAR(cap.true_delay_s, 180.0 * ps, 1.0 * ps);
}

} // namespace

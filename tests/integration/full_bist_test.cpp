// End-to-end BIST integration: fault coverage and multistandard sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "bist/engine.hpp"
#include "bist/faults.hpp"
#include "bist/multistandard.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::bist;

bist_config base_config() {
    bist_config cfg;
    cfg.tiadc.quant.full_scale = 2.0;
    cfg.min_output_rms = 1.2;
    return cfg;
}

// ---- fault coverage ---------------------------------------------------------

class FaultCoverage : public ::testing::TestWithParam<fault_kind> {};

TEST_P(FaultCoverage, VerdictMatchesDeviceHealth) {
    auto cfg = base_config();
    cfg.tx = inject_fault(cfg.tx, GetParam());
    const bist_engine engine(cfg);
    const auto report = engine.run();
    if (GetParam() == fault_kind::none)
        EXPECT_TRUE(report.pass()) << report.summary();
    else
        EXPECT_FALSE(report.pass())
            << to_string(GetParam()) << " escaped:\n"
            << report.summary();
}

INSTANTIATE_TEST_SUITE_P(AllFaults, FaultCoverage,
                         ::testing::ValuesIn(fault_catalogue()),
                         [](const auto& info) {
                             auto name = to_string(info.param);
                             for (auto& c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// ---- multistandard ----------------------------------------------------------

TEST(Multistandard, EveryCataloguedStandardPasses) {
    bist_config cfg;
    cfg.tiadc.quant.full_scale = 2.0;
    const auto presets = waveform::standard_catalogue();
    const auto reports = run_catalogue(cfg, presets);
    ASSERT_EQ(reports.size(), presets.size());
    for (const auto& r : reports) {
        EXPECT_TRUE(r.pass()) << r.preset_name << ":\n" << r.summary();
        EXPECT_LT(std::abs(r.skew.d_hat - 180.0 * ps), 3.0 * ps)
            << r.preset_name;
    }
}

TEST(Multistandard, DegenerateCarrierGetsNudged) {
    // The 900 MHz preset sits on a blind carrier; the engine must have
    // moved the test carrier and still estimated the skew correctly.
    bist_config cfg;
    cfg.tiadc.quant.full_scale = 2.0;
    cfg.preset = waveform::find_preset("psk8-5M");
    const bist_engine engine(cfg);
    const auto report = engine.run();
    EXPECT_NE(report.carrier_nudge_hz, 0.0);
    EXPECT_NEAR(report.skew.d_hat, 180.0 * ps, 2.0 * ps);
    EXPECT_GT(report.plan_discrimination, 1e-2);
}

// ---- repeatability across device seeds -------------------------------------

class SkewAccuracySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkewAccuracySeeds, SubPicosecondOnPaperSetup) {
    auto cfg = base_config();
    cfg.tiadc.seed = GetParam();
    cfg.probe_seed = GetParam() ^ 0xABCD;
    const bist_engine engine(cfg);
    const auto [report, art] = engine.run_verbose();
    EXPECT_NEAR(report.skew.d_hat, art.capture.fast.true_delay_s, 1.2 * ps)
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewAccuracySeeds,
                         ::testing::Values(0xADC0ull, 0x1111ull, 0x2222ull),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param & 0xFFFF);
                         });

// ---- gain/offset mismatch robustness ----------------------------------------

TEST(Integration, ChannelMismatchHandledByCalibration) {
    // The paper assumes no gain/offset mismatch; with the background
    // calibration substrate the BIST tolerates realistic mismatch.
    auto cfg = base_config();
    cfg.tiadc.ch1_gain_error = 0.02;
    cfg.tiadc.ch1_offset_error = 0.01;
    const bist_engine engine(cfg);
    const auto [report, art] = engine.run_verbose();
    // Mild mismatch must not break the skew estimate badly.
    EXPECT_NEAR(report.skew.d_hat, art.capture.fast.true_delay_s, 5.0 * ps);
}

} // namespace

// Telemetry layer: off-by-default probes, counter/aggregate exactness,
// summary arithmetic (merge/window), and Chrome trace-event export
// well-formedness.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "campaign/export.hpp"
#include "core/telemetry.hpp"

namespace {

using namespace sdrbist;
namespace tm = sdrbist::telemetry;

/// Every test starts from zeroed, disabled telemetry and leaves it that
/// way (the state is process-global).
class Telemetry : public ::testing::Test {
protected:
    void SetUp() override {
        tm::disable();
        tm::reset();
    }
    void TearDown() override {
        tm::disable();
        tm::reset();
    }
};

TEST_F(Telemetry, OffByDefaultProbesAreInert) {
    EXPECT_FALSE(tm::active());
    EXPECT_FALSE(tm::tracing());
    {
        const tm::scoped_span span(tm::category::cache, "noop");
        tm::count(tm::counter::cache_hits);
        tm::count_max(tm::counter::pool_queue_high_water, 42);
    }
    for (const auto v : tm::counters())
        EXPECT_EQ(v, 0u);
    EXPECT_TRUE(tm::snapshot().empty());
    EXPECT_EQ(tm::trace_event_count(), 0u);
}

TEST_F(Telemetry, CountersAccumulateAndReset) {
    tm::enable();
    EXPECT_TRUE(tm::active());
    EXPECT_FALSE(tm::tracing());

    tm::count(tm::counter::cache_hits);
    tm::count(tm::counter::cache_hits, 2);
    tm::count(tm::counter::stage_adopts, 7);
    tm::count_max(tm::counter::pool_queue_high_water, 5);
    tm::count_max(tm::counter::pool_queue_high_water, 3); // below: no-op

    const auto counts = tm::counters();
    EXPECT_EQ(counts[static_cast<std::size_t>(tm::counter::cache_hits)], 3u);
    EXPECT_EQ(counts[static_cast<std::size_t>(tm::counter::stage_adopts)],
              7u);
    EXPECT_EQ(counts[static_cast<std::size_t>(
                  tm::counter::pool_queue_high_water)],
              5u);

    tm::reset();
    for (const auto v : tm::counters())
        EXPECT_EQ(v, 0u);
}

TEST_F(Telemetry, SpansFoldIntoCategoryAggregates) {
    tm::enable();
    for (int i = 0; i < 3; ++i) {
        const tm::scoped_span span(tm::category::cache, "load");
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const auto s = tm::snapshot();
    const auto& cache = s.of(tm::category::cache);
    EXPECT_EQ(cache.count, 3u);
    EXPECT_GT(cache.total_ns, 0u);
    EXPECT_GE(cache.total_ns, cache.max_ns);
    EXPECT_DOUBLE_EQ(cache.mean_ns(),
                     static_cast<double>(cache.total_ns) / 3.0);
    EXPECT_EQ(s.of(tm::category::shard).count, 0u);
    EXPECT_FALSE(s.empty());
}

TEST_F(Telemetry, IdleSpansFeedThePoolIdleCounter) {
    tm::enable();
    {
        const tm::scoped_span idle(tm::category::idle, "pool.idle");
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    const auto s = tm::snapshot();
    EXPECT_EQ(
        tm::counters()[static_cast<std::size_t>(tm::counter::pool_idle_ns)],
        s.of(tm::category::idle).total_ns);
    EXPECT_GT(s.of(tm::category::idle).total_ns, 0u);
}

TEST_F(Telemetry, SummaryMergeAndWindowArithmetic) {
    tm::summary a;
    a.categories[0] = {2, 100, 80};
    a.categories[5] = {1, 50, 50};
    tm::summary b;
    b.categories[0] = {3, 40, 90};
    a.merge_from(b);
    EXPECT_EQ(a.categories[0].count, 5u);
    EXPECT_EQ(a.categories[0].total_ns, 140u);
    EXPECT_EQ(a.categories[0].max_ns, 90u); // max of maxima, not a sum
    EXPECT_EQ(a.categories[5].count, 1u);

    tm::enable();
    { const tm::scoped_span span(tm::category::shard, "one"); }
    const auto base = tm::snapshot();
    { const tm::scoped_span span(tm::category::shard, "two"); }
    { const tm::scoped_span span(tm::category::shard, "three"); }
    const auto window = tm::since(base);
    EXPECT_EQ(window.of(tm::category::shard).count, 2u);
    EXPECT_EQ(tm::snapshot().of(tm::category::shard).count, 3u);
}

TEST_F(Telemetry, SummaryCsvListsEveryCategory) {
    tm::summary s;
    s.categories[static_cast<std::size_t>(tm::category::cache)] = {2, 10, 6};
    const std::string csv = tm::summary_csv(s);
    const auto rows = campaign::parse_csv(csv);
    ASSERT_EQ(rows.size(), 1u + tm::category_count);
    EXPECT_EQ(rows[0][0], "category");
    const auto cache_row =
        rows[1 + static_cast<std::size_t>(tm::category::cache)];
    EXPECT_EQ(cache_row[0], "cache");
    EXPECT_EQ(cache_row[1], "2");
    EXPECT_EQ(cache_row[2], "10");
    EXPECT_EQ(cache_row[4], "6");
}

TEST_F(Telemetry, ConcurrentCountsAreExact) {
    tm::enable();
    constexpr int threads = 8;
    constexpr int per_thread = 10000;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([] {
            for (int i = 0; i < per_thread; ++i) {
                tm::count(tm::counter::pool_tasks);
                const tm::scoped_span span(tm::category::worker, "work");
            }
        });
    for (auto& w : workers)
        w.join();
    EXPECT_EQ(tm::counters()[static_cast<std::size_t>(tm::counter::pool_tasks)],
              static_cast<std::uint64_t>(threads) * per_thread);
    EXPECT_EQ(tm::snapshot().of(tm::category::worker).count,
              static_cast<std::uint64_t>(threads) * per_thread);
}

TEST_F(Telemetry, ChromeTraceExportIsWellFormed) {
    tm::enable(/*capture_trace=*/true);
    EXPECT_TRUE(tm::tracing());
    tm::set_thread_name("main-test-thread");
    {
        const tm::scoped_span outer(tm::category::scenario, "scenario", 7);
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        {
            const tm::scoped_span inner(tm::category::cache, "cache.load");
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
    EXPECT_EQ(tm::trace_event_count(), 2u);

    const std::string json =
        tm::chrome_trace_json({{"compiler", "test-cc"}});
    const auto doc = campaign::parse_json(json);
    EXPECT_EQ(doc.at("otherData").at("compiler").as_string(), "test-cc");
    EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

    const auto& events = doc.at("traceEvents").as_array();
    std::size_t x_events = 0;
    bool saw_thread_name = false;
    double last_ts = -1.0;
    for (const auto& e : events) {
        const auto& ph = e.at("ph").as_string();
        if (ph == "M") {
            if (e.at("name").as_string() == "thread_name")
                saw_thread_name |= e.at("args").at("name").as_string() ==
                                   "main-test-thread";
            continue;
        }
        ASSERT_EQ(ph, "X");
        ++x_events;
        EXPECT_GE(e.at("ts").as_number(), last_ts) << "ts must be sorted";
        last_ts = e.at("ts").as_number();
        EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
    EXPECT_EQ(x_events, 2u);
    EXPECT_TRUE(saw_thread_name);

    // The nested span must lie inside its parent, and the span arg must
    // survive into args.arg.
    const campaign::json_value* outer = nullptr;
    const campaign::json_value* inner = nullptr;
    for (const auto& e : events) {
        if (e.at("ph").as_string() != "X")
            continue;
        if (e.at("name").as_string() == "scenario")
            outer = &e;
        else if (e.at("name").as_string() == "cache.load")
            inner = &e;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->at("args").at("arg").as_number(), 7.0);
    EXPECT_LE(outer->at("ts").as_number(), inner->at("ts").as_number());
    EXPECT_GE(outer->at("ts").as_number() + outer->at("dur").as_number(),
              inner->at("ts").as_number() + inner->at("dur").as_number());
    EXPECT_EQ(outer->at("tid").as_number(), inner->at("tid").as_number());
}

} // namespace

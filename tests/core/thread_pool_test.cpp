// Worker-pool semantics: completion, results, exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.hpp"

namespace {

using namespace sdrbist;

TEST(ThreadPool, DefaultThreadCountIsPositive) {
    EXPECT_GE(thread_pool::default_thread_count(), 1u);
    thread_pool pool;
    EXPECT_EQ(pool.size(), thread_pool::default_thread_count());
    thread_pool four(4);
    EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
    thread_pool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
    auto g = pool.submit([] { return std::string("done"); });
    EXPECT_EQ(g.get(), "done");
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
    thread_pool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
    thread_pool pool(4);
    constexpr std::size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    parallel_for_index(pool, n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForWritesDisjointSlots) {
    thread_pool pool(3);
    constexpr std::size_t n = 256;
    std::vector<double> out(n, -1.0);
    parallel_for_index(pool, n, [&](std::size_t i) {
        out[i] = static_cast<double>(i) * 0.5;
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexFailure) {
    thread_pool pool(4);
    std::atomic<int> completed{0};
    try {
        parallel_for_index(pool, 64, [&](std::size_t i) {
            if (i == 7 || i == 3 || i == 50)
                throw std::runtime_error("failed at " + std::to_string(i));
            ++completed;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "failed at 3");
    }
    // Every non-throwing iteration still ran (no early abandonment).
    EXPECT_EQ(completed.load(), 61);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
    thread_pool pool(1);
    std::vector<int> order;
    parallel_for_index(pool, 16,
                       [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
    // One worker drains the FIFO queue in submission order.
    std::vector<int> expected(16);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

} // namespace

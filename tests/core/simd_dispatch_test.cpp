// Dispatcher policy lockdown: the backend picked per CPU feature set, the
// SDRBIST_FORCE_BACKEND environment override (including the fail-loudly
// contract for unknown names), and the programmatic force() used by the
// CLI's --backend flag.
//
// The policy (kernel_backend::resolve) is a pure function of a
// cpu_features value, so every branch is testable on any machine — no
// matching hardware needed.  ctest runs each TEST in its own process, but
// the env_guard below still restores the environment and the cached
// selection so the binary also behaves when run whole.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/contracts.hpp"
#include "core/simd/kernel_backend.hpp"

namespace {

using sdrbist::contract_violation;
using sdrbist::simd::cpu_features;
using sdrbist::simd::kernel_backend;

/// Saves/restores SDRBIST_FORCE_BACKEND and the cached backend selection.
class env_guard {
public:
    env_guard() {
        const char* v = std::getenv(name_);
        had_ = v != nullptr;
        if (had_)
            saved_ = v;
        kernel_backend::reset();
    }
    ~env_guard() {
        if (had_)
            ::setenv(name_, saved_.c_str(), 1);
        else
            ::unsetenv(name_);
        kernel_backend::reset();
    }
    void set(const char* value) { ::setenv(name_, value, 1); }
    void clear() { ::unsetenv(name_); }

private:
    const char* name_ = "SDRBIST_FORCE_BACKEND";
    bool had_ = false;
    std::string saved_;
};

TEST(SimdDispatch, ScalarIsAlwaysCompiledInAndListedFirst) {
    const auto compiled = kernel_backend::compiled();
    ASSERT_FALSE(compiled.empty());
    EXPECT_STREQ(compiled.front()->name, "scalar");
    for (const auto* ops : compiled)
        EXPECT_EQ(kernel_backend::find(ops->name), ops);
}

TEST(SimdDispatch, AvailableBackendsAreCompiledAndCpuSupported) {
    const auto available = kernel_backend::available();
    ASSERT_FALSE(available.empty());
    EXPECT_STREQ(available.front()->name, "scalar");
    for (const auto* ops : available) {
        EXPECT_EQ(kernel_backend::find(ops->name), ops);
        EXPECT_TRUE(kernel_backend::supported(*ops));
    }
}

TEST(SimdDispatch, ResolveFallsBackToScalarWithoutSimdFeatures) {
    const cpu_features none{};
    EXPECT_STREQ(kernel_backend::resolve(none).name, "scalar");
}

TEST(SimdDispatch, ResolvePicksAvx2WhenCpuHasIt) {
    const auto* avx2 = kernel_backend::find("avx2");
    if (avx2 == nullptr)
        GTEST_SKIP() << "avx2 backend not compiled into this build";
    cpu_features f;
    f.avx2 = true;
    EXPECT_EQ(&kernel_backend::resolve(f), avx2);
    // A NEON-only feature set must not select the x86 backend.
    cpu_features g;
    g.neon = true;
    EXPECT_NE(&kernel_backend::resolve(g), avx2);
}

TEST(SimdDispatch, ResolvePicksNeonWhenCpuHasIt) {
    const auto* neon = kernel_backend::find("neon");
    if (neon == nullptr)
        GTEST_SKIP() << "neon backend not compiled into this build";
    cpu_features f;
    f.neon = true;
    EXPECT_EQ(&kernel_backend::resolve(f), neon);
    cpu_features g;
    g.avx2 = true;
    EXPECT_NE(&kernel_backend::resolve(g), neon);
}

TEST(SimdDispatch, SelectMatchesPolicyForDetectedCpu) {
    env_guard env;
    env.clear();
    kernel_backend::reset();
    EXPECT_EQ(&kernel_backend::select(),
              &kernel_backend::resolve(kernel_backend::detect()));
}

TEST(SimdDispatch, SelectIsCachedAcrossCalls) {
    env_guard env;
    env.clear();
    kernel_backend::reset();
    const auto* first = &kernel_backend::select();
    EXPECT_EQ(&kernel_backend::select(), first);
}

TEST(SimdDispatch, EnvOverrideWinsOverAutoDetection) {
    env_guard env;
    env.set("scalar");
    kernel_backend::reset();
    EXPECT_STREQ(kernel_backend::select().name, "scalar");
}

TEST(SimdDispatch, UnknownEnvOverrideFailsLoudly) {
    env_guard env;
    env.set("definitely-not-a-backend");
    kernel_backend::reset();
    EXPECT_THROW(kernel_backend::select(), contract_violation);
}

TEST(SimdDispatch, EmptyEnvOverrideMeansAutoDetection) {
    env_guard env;
    env.set("");
    kernel_backend::reset();
    EXPECT_EQ(&kernel_backend::select(),
              &kernel_backend::resolve(kernel_backend::detect()));
}

TEST(SimdDispatch, ForceSelectsTheNamedBackend) {
    env_guard env;
    kernel_backend::force("scalar");
    EXPECT_STREQ(kernel_backend::select().name, "scalar");
    // Every CPU-supported backend can be forced.
    for (const auto* ops : kernel_backend::available()) {
        kernel_backend::force(ops->name);
        EXPECT_EQ(&kernel_backend::select(), ops);
    }
}

TEST(SimdDispatch, ForceUnknownBackendThrows) {
    env_guard env;
    EXPECT_THROW(kernel_backend::force("avx1024"), contract_violation);
    // The error message names the compiled-in backends.
    try {
        kernel_backend::force("avx1024");
        FAIL() << "expected contract_violation";
    } catch (const contract_violation& e) {
        EXPECT_NE(std::string(e.what()).find("scalar"), std::string::npos);
    }
}

TEST(SimdDispatch, ForceWinsOverEnvOverride) {
    env_guard env;
    env.set("definitely-not-a-backend");
    kernel_backend::reset();
    kernel_backend::force("scalar"); // resolved before select() reads env
    EXPECT_STREQ(kernel_backend::select().name, "scalar");
}

TEST(SimdDispatch, ResetReturnsToAutoDetection) {
    env_guard env;
    env.clear();
    kernel_backend::force("scalar");
    kernel_backend::reset();
    EXPECT_EQ(&kernel_backend::select(),
              &kernel_backend::resolve(kernel_backend::detect()));
}

TEST(SimdDispatch, BackendTablesAreFullyPopulated) {
    for (const auto* ops : kernel_backend::compiled()) {
        EXPECT_NE(ops->name, nullptr);
        EXPECT_NE(ops->dot2, nullptr) << ops->name;
        EXPECT_NE(ops->blend_dot, nullptr) << ops->name;
        EXPECT_NE(ops->blend_dot_cplx, nullptr) << ops->name;
        EXPECT_NE(ops->quantize_midrise, nullptr) << ops->name;
        EXPECT_NE(ops->carrier_mix, nullptr) << ops->name;
    }
}

} // namespace

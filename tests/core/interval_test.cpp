// Interval algebra tests (used by the PBS window planner).
#include <gtest/gtest.h>

#include "core/interval.hpp"

namespace {

using sdrbist::interval;
using sdrbist::merge_intervals;

TEST(Interval, BasicPredicates) {
    const interval i{1.0, 3.0};
    EXPECT_FALSE(i.empty());
    EXPECT_DOUBLE_EQ(i.width(), 2.0);
    EXPECT_TRUE(i.contains(1.0));
    EXPECT_TRUE(i.contains(3.0));
    EXPECT_FALSE(i.contains(3.5));
    const interval e{2.0, 1.0};
    EXPECT_TRUE(e.empty());
    EXPECT_DOUBLE_EQ(e.width(), 0.0);
    EXPECT_FALSE(e.contains(1.5));
}

TEST(Interval, Intersection) {
    const interval a{1.0, 5.0};
    const interval b{3.0, 8.0};
    const auto c = a.intersect(b);
    EXPECT_DOUBLE_EQ(c.lo, 3.0);
    EXPECT_DOUBLE_EQ(c.hi, 5.0);
    EXPECT_TRUE(a.intersect(interval{6.0, 7.0}).empty());
}

TEST(MergeIntervals, SortsAndMergesOverlaps) {
    auto merged = merge_intervals(
        {{5.0, 7.0}, {1.0, 3.0}, {2.0, 4.0}, {8.0, 9.0}});
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_DOUBLE_EQ(merged[0].lo, 1.0);
    EXPECT_DOUBLE_EQ(merged[0].hi, 4.0);
    EXPECT_DOUBLE_EQ(merged[1].lo, 5.0);
    EXPECT_DOUBLE_EQ(merged[2].lo, 8.0);
}

TEST(MergeIntervals, DropsEmptyAndHonoursTolerance) {
    auto merged = merge_intervals({{1.0, 2.0}, {5.0, 4.0}, {2.05, 3.0}}, 0.1);
    ASSERT_EQ(merged.size(), 1u); // 2.05 within the 0.1 adjacency tolerance
    EXPECT_DOUBLE_EQ(merged[0].hi, 3.0);
    auto strict = merge_intervals({{1.0, 2.0}, {2.05, 3.0}}, 0.0);
    EXPECT_EQ(strict.size(), 2u);
}

TEST(MergeIntervals, EmptyInput) {
    EXPECT_TRUE(merge_intervals({}).empty());
}

} // namespace

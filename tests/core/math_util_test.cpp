// Unit tests for core math helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/math_util.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;

TEST(Sinc, ValuesAndSymmetry) {
    EXPECT_DOUBLE_EQ(sinc(0.0), 1.0);
    EXPECT_NEAR(sinc(1.0), 0.0, 1e-15);
    EXPECT_NEAR(sinc(2.0), 0.0, 1e-15);
    EXPECT_NEAR(sinc(0.5), 2.0 / pi, 1e-12);
    for (double x : {0.1, 0.37, 1.9, 12.3})
        EXPECT_DOUBLE_EQ(sinc(x), sinc(-x));
}

TEST(Sinc, SmallArgumentExpansionIsContinuous) {
    // The Taylor branch must join the sin/x branch smoothly.
    const double x = 1.0000001e-8;
    const double y = 0.9999999e-8;
    EXPECT_NEAR(sinc(x), sinc(y), 1e-14);
    EXPECT_NEAR(sinc(1e-9), 1.0, 1e-12);
}

TEST(BesselI0, KnownValues) {
    EXPECT_DOUBLE_EQ(bessel_i0(0.0), 1.0);
    // Abramowitz & Stegun 9.8: I0(1) = 1.2660658..., I0(2) = 2.2795853...
    EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-12);
    EXPECT_NEAR(bessel_i0(2.0), 2.2795853023360673, 1e-12);
    EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-9);
    EXPECT_DOUBLE_EQ(bessel_i0(3.0), bessel_i0(-3.0));
}

TEST(Pow2Helpers, NextAndIs) {
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(2), 2u);
    EXPECT_EQ(next_pow2(3), 4u);
    EXPECT_EQ(next_pow2(1023), 1024u);
    EXPECT_EQ(next_pow2(1024), 1024u);
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(64));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(48));
    EXPECT_THROW(next_pow2(0), contract_violation);
}

TEST(CeilSnapped, SnapsNearIntegers) {
    // The Kohlenberg index k = ceil(2·fl/B) must not jump when rounding
    // noise puts the ratio a hair above an integer.
    EXPECT_EQ(ceil_snapped(21.2222), 22);
    EXPECT_EQ(ceil_snapped(22.0), 22);
    EXPECT_EQ(ceil_snapped(22.0 + 1e-12), 22);  // snapped back
    EXPECT_EQ(ceil_snapped(22.0 - 1e-12), 22);  // snapped (not 22 via ceil)
    EXPECT_EQ(ceil_snapped(22.001), 23);
    EXPECT_EQ(ceil_snapped(-1.5), -1);
}

TEST(WrapPhase, RangeAndIdentity) {
    for (double phi : {0.0, 1.0, -1.0, 3.0, -3.0}) {
        EXPECT_NEAR(wrap_phase(phi), phi, 1e-12);
    }
    EXPECT_NEAR(wrap_phase(pi + 0.1), -pi + 0.1, 1e-12);
    EXPECT_NEAR(wrap_phase(-pi - 0.1), pi - 0.1, 1e-12);
    EXPECT_NEAR(wrap_phase(7.0 * two_pi + 0.3), 0.3, 1e-9);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
    EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(approx_equal(1.0, 1.001));
    EXPECT_TRUE(approx_equal(1.0, 1.001, 1e-2));
    EXPECT_TRUE(approx_equal(0.0, 1e-12, 0.0, 1e-9));
}

TEST(DbConversions, RoundTrip) {
    EXPECT_NEAR(db_from_power(100.0), 20.0, 1e-12);
    EXPECT_NEAR(db_from_amplitude(10.0), 20.0, 1e-12);
    EXPECT_NEAR(power_from_db(30.0), 1000.0, 1e-9);
    EXPECT_NEAR(amplitude_from_db(6.0205999), 2.0, 1e-6);
    for (double db : {-37.0, -3.0, 0.0, 12.5})
        EXPECT_NEAR(db_from_power(power_from_db(db)), db, 1e-12);
}

} // namespace

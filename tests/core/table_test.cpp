// Tests for the bench table formatter.
#include <gtest/gtest.h>

#include <sstream>

#include "core/contracts.hpp"
#include "core/table.hpp"

namespace {

using sdrbist::text_table;

TEST(TextTable, FormatsAlignedColumns) {
    text_table t({"name", "value"});
    t.set_title("demo");
    t.add_row({"alpha", "1.5"});
    t.add_row({"long-name-entry", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("| alpha"), std::string::npos);
    EXPECT_NE(s.find("| long-name-entry"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 2u);
}

TEST(TextTable, NumberFormatting) {
    EXPECT_EQ(text_table::num(1.23456, 2), "1.23");
    EXPECT_EQ(text_table::num(-0.5, 1), "-0.5");
    EXPECT_EQ(text_table::sci(12345.0, 2), "1.23e+04");
}

TEST(TextTable, RowArityIsChecked) {
    text_table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), sdrbist::contract_violation);
}

} // namespace

// Deterministic fault injection: spec grammar, trigger semantics (nth
// arrival, every-nth, seeded Bernoulli), all four actions, arrival/fired
// accounting and the disarm guarantees the production probes rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "core/fault_injection.hpp"

namespace {

using namespace sdrbist;
namespace fi = sdrbist::fault_injection;

/// Injection state is process-global; every test starts and ends disarmed
/// so suites sharing this binary never see stray clauses.
class FaultInjection : public ::testing::Test {
protected:
    void SetUp() override { fi::disarm(); }
    void TearDown() override { fi::disarm(); }
};

TEST_F(FaultInjection, DisarmedProbesAreInert) {
    EXPECT_FALSE(fi::armed());
    EXPECT_EQ(fi::current_spec(), "");
    EXPECT_NO_THROW(fi::fire(fi::site::stage_stimulus));
    std::string payload = "intact";
    EXPECT_FALSE(fi::corrupt(fi::site::cache_store, payload));
    EXPECT_EQ(payload, "intact");
    // Disarmed probes do not even count arrivals (fast path only).
    EXPECT_EQ(fi::arrivals(fi::site::stage_stimulus), 0u);
}

TEST_F(FaultInjection, GrammarErrorsThrowContractViolations) {
    const std::vector<std::string> bad = {
        "nonsense",
        "stage.nope:throw-transient",
        "stage.grading:explode",
        "stage.grading:throw-transient:count=x",
        "stage.grading:throw-transient:every=0",
        "stage.grading:throw-transient:p=1.5,seed=1",
        "stage.grading:throw-transient:p=0.5", // missing seed
        "stage.grading:delay-ms=abc",
        ":throw-transient",
    };
    for (const auto& spec : bad) {
        EXPECT_THROW(fi::arm(spec), contract_violation) << spec;
        EXPECT_FALSE(fi::armed()) << "a bad spec must not half-install";
    }
}

TEST_F(FaultInjection, EmptySpecDisarms) {
    fi::arm("stage.grading:throw-transient");
    EXPECT_TRUE(fi::armed());
    fi::arm("");
    EXPECT_FALSE(fi::armed());
}

TEST_F(FaultInjection, CountTriggerFiresExactlyOnce) {
    fi::arm("stage.grading:throw-transient:count=3");
    EXPECT_EQ(fi::current_spec(), "stage.grading:throw-transient:count=3");
    EXPECT_NO_THROW(fi::fire(fi::site::stage_grading));
    EXPECT_NO_THROW(fi::fire(fi::site::stage_grading));
    EXPECT_THROW(fi::fire(fi::site::stage_grading), fi::transient_fault);
    EXPECT_NO_THROW(fi::fire(fi::site::stage_grading));
    EXPECT_EQ(fi::arrivals(fi::site::stage_grading), 4u);
    EXPECT_EQ(fi::fired(fi::site::stage_grading), 1u);
    // Other sites are untouched.
    EXPECT_NO_THROW(fi::fire(fi::site::stage_stimulus));
    EXPECT_EQ(fi::fired(fi::site::stage_stimulus), 0u);
}

TEST_F(FaultInjection, EveryTriggerFiresPeriodically) {
    fi::arm("cache.load:throw-transient:every=2");
    std::size_t thrown = 0;
    for (int i = 0; i < 6; ++i)
        try {
            fi::fire(fi::site::cache_load);
        } catch (const fi::transient_fault&) {
            ++thrown;
        }
    EXPECT_EQ(thrown, 3u); // arrivals 2, 4, 6
    EXPECT_EQ(fi::fired(fi::site::cache_load), 3u);
}

TEST_F(FaultInjection, ProbabilityTriggerIsSeedDeterministic) {
    const std::string spec = "pool.dispatch:throw-transient:p=0.3,seed=42";
    const auto pattern = [&] {
        fi::arm(spec); // re-arming zeroes the arrival ordinals
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i)
            try {
                fi::fire(fi::site::pool_dispatch);
                fired.push_back(false);
            } catch (const fi::transient_fault&) {
                fired.push_back(true);
            }
        return fired;
    };
    const auto first = pattern();
    const auto second = pattern();
    EXPECT_EQ(first, second);
    const std::size_t hits =
        static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
    EXPECT_GT(hits, 0u) << "p=0.3 over 64 arrivals must fire sometimes";
    EXPECT_LT(hits, 64u) << "...but not always";

    // A different seed produces a different pattern.
    fi::arm("pool.dispatch:throw-transient:p=0.3,seed=43");
    std::vector<bool> other;
    for (int i = 0; i < 64; ++i)
        try {
            fi::fire(fi::site::pool_dispatch);
            other.push_back(false);
        } catch (const fi::transient_fault&) {
            other.push_back(true);
        }
    EXPECT_NE(first, other);
}

TEST_F(FaultInjection, ContractActionThrowsContractViolation) {
    fi::arm("shard.read:throw-contract");
    EXPECT_THROW(fi::fire(fi::site::shard_read), contract_violation);
}

TEST_F(FaultInjection, DelayActionDelaysWithoutThrowing) {
    fi::arm("stage.stimulus:delay-ms=1");
    EXPECT_NO_THROW(fi::fire(fi::site::stage_stimulus));
    EXPECT_EQ(fi::fired(fi::site::stage_stimulus), 1u);
}

TEST_F(FaultInjection, CorruptActionManglesOnlyThePayloadProbe) {
    fi::arm("cache.store:corrupt-bytes");
    // corrupt-bytes never acts through fire()...
    EXPECT_NO_THROW(fi::fire(fi::site::cache_store));
    // ...only through corrupt(), which deterministically mangles.
    std::string payload(64, 'x');
    const std::string original = payload;
    EXPECT_TRUE(fi::corrupt(fi::site::cache_store, payload));
    EXPECT_NE(payload, original);
    // A site without a corrupt clause passes payloads through untouched.
    std::string other = "untouched";
    EXPECT_FALSE(fi::corrupt(fi::site::shard_write, other));
    EXPECT_EQ(other, "untouched");
}

TEST_F(FaultInjection, WildcardSiteMatchesEverySite) {
    fi::arm("*:throw-transient");
    EXPECT_THROW(fi::fire(fi::site::stage_calibration), fi::transient_fault);
    EXPECT_THROW(fi::fire(fi::site::journal_append), fi::transient_fault);
    EXPECT_THROW(fi::fire(fi::site::shard_merge), fi::transient_fault);
}

TEST_F(FaultInjection, MultiClauseSpecsApplyIndependently) {
    fi::arm("stage.grading:throw-transient:count=1;"
            "cache.load:throw-contract:count=2");
    EXPECT_THROW(fi::fire(fi::site::stage_grading), fi::transient_fault);
    EXPECT_NO_THROW(fi::fire(fi::site::cache_load));
    EXPECT_THROW(fi::fire(fi::site::cache_load), contract_violation);
}

TEST_F(FaultInjection, SiteNamesRoundTripThroughToString) {
    // The spec parser accepts exactly the names to_string emits.
    for (std::size_t i = 0; i < fi::site_count; ++i) {
        const auto s = static_cast<fi::site>(static_cast<int>(i));
        EXPECT_NO_THROW(
            fi::arm(std::string(fi::to_string(s)) + ":delay-ms=0"));
    }
}

} // namespace

// core/hash: FNV-1a reference vectors, incremental equivalence, hex
// rendering — the cache-key substrate must be portable and stable forever.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/hash.hpp"

namespace {

using namespace sdrbist;

TEST(Fnv1a64, MatchesPublishedReferenceVectors) {
    // Reference values from the FNV specification (Noll/Vo/Eastlake),
    // 64-bit FNV-1a.  If these ever change, every on-disk cache key moves.
    EXPECT_EQ(fnv1a64::hash(""), 0xCBF29CE484222325ull);
    EXPECT_EQ(fnv1a64::hash("a"), 0xAF63DC4C8601EC8Cull);
    EXPECT_EQ(fnv1a64::hash("foobar"), 0x85944171F73967E8ull);
}

TEST(Fnv1a64, IncrementalUpdatesEqualOneShot) {
    fnv1a64 h;
    h.update("foo");
    h.update("");
    h.update("bar");
    EXPECT_EQ(h.value(), fnv1a64::hash("foobar"));
}

TEST(Fnv1a64, HexIsFixedWidthLowercase) {
    fnv1a64 h; // empty input -> offset basis
    EXPECT_EQ(h.hex(), "cbf29ce484222325");
    EXPECT_EQ(fnv1a64::hex_digest(0), "0000000000000000");
    EXPECT_EQ(fnv1a64::hex_digest(0xFFull), "00000000000000ff");
    EXPECT_EQ(fnv1a64::hex_digest(0x123456789ABCDEF0ull),
              "123456789abcdef0");
}

TEST(Fnv1a64, SensitiveToEveryByte) {
    const std::string base = "campaign-cache-key";
    const std::uint64_t reference = fnv1a64::hash(base);
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::string mutated = base;
        mutated[i] ^= 0x01;
        EXPECT_NE(fnv1a64::hash(mutated), reference)
            << "flip at byte " << i << " must move the digest";
    }
    // Embedded NUL bytes are hashed, not terminated on.
    EXPECT_NE(fnv1a64::hash(std::string("a\0b", 3)),
              fnv1a64::hash(std::string("ab", 2)));
}

TEST(Fnv1a64, NoCheapCollisionsOnShortKeys) {
    std::set<std::uint64_t> digests;
    for (int i = 0; i < 1000; ++i)
        digests.insert(fnv1a64::hash("scenario-" + std::to_string(i)));
    EXPECT_EQ(digests.size(), 1000u);
}

} // namespace

/// \file task_scheduler_test.cpp
/// \brief Properties of the work-stealing DAG executor: topological launch
///        on randomized graphs, steal/spawn accounting, exception
///        propagation from stolen tasks, and 1-thread ≡ N-thread results.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/task_scheduler.hpp"

namespace {

using sdrbist::task_graph;
using sdrbist::task_scheduler;

/// Seeded random DAG shape: node i depends on up to `max_deps` distinct
/// earlier nodes.  Returns the dependency lists.
std::vector<std::vector<std::size_t>> random_dag(std::uint64_t seed,
                                                 std::size_t nodes,
                                                 std::size_t max_deps) {
    sdrbist::rng gen(seed);
    std::vector<std::vector<std::size_t>> deps(nodes);
    for (std::size_t i = 1; i < nodes; ++i) {
        const std::size_t want = gen.next_u64() % (max_deps + 1);
        for (std::size_t k = 0; k < want; ++k) {
            const std::size_t d = gen.next_u64() % i;
            auto& list = deps[i];
            if (std::find(list.begin(), list.end(), d) == list.end())
                list.push_back(d);
        }
    }
    return deps;
}

TEST(TaskScheduler, DefaultsAndSizes) {
    EXPECT_GE(task_scheduler::default_thread_count(), 1u);
    EXPECT_EQ(task_scheduler(4).size(), 4u);
    EXPECT_EQ(task_scheduler().size(),
              task_scheduler::default_thread_count());
}

TEST(TaskScheduler, EmptyGraphIsANoOp) {
    const auto stats = task_scheduler(4).run(task_graph{});
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.spawned, 0u);
    EXPECT_EQ(stats.stolen, 0u);
}

TEST(TaskScheduler, DependenciesMustAlreadyExist) {
    task_graph graph;
    EXPECT_THROW(graph.add([] {}, {0}), sdrbist::contract_violation);
    const std::size_t a = graph.add([] {});
    EXPECT_THROW(graph.add([] {}, {a + 1}), sdrbist::contract_violation);
    EXPECT_NO_THROW(graph.add([] {}, {a}));
}

// No node may start before every one of its dependencies has finished —
// on randomized seeded shapes, at several thread counts.
TEST(TaskScheduler, TopologicalLaunchOnRandomizedDags) {
    for (const std::uint64_t seed : {0x5EED1ull, 0x5EED2ull, 0x5EED3ull}) {
        const auto deps = random_dag(seed, 200, 4);
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
            std::vector<std::atomic<bool>> finished(deps.size());
            std::atomic<std::size_t> violations{0};
            task_graph graph;
            for (std::size_t i = 0; i < deps.size(); ++i)
                graph.add(
                    [&, i] {
                        for (const std::size_t d : deps[i])
                            if (!finished[d].load(std::memory_order_acquire))
                                violations.fetch_add(
                                    1, std::memory_order_relaxed);
                        finished[i].store(true, std::memory_order_release);
                    },
                    deps[i]);
            const auto stats = task_scheduler(threads).run(std::move(graph));
            EXPECT_EQ(violations.load(), 0u)
                << "seed=" << seed << " threads=" << threads;
            EXPECT_EQ(stats.executed, deps.size());
            for (const auto& f : finished)
                EXPECT_TRUE(f.load());
        }
    }
}

TEST(TaskScheduler, SpawnCountIsNodesMinusRootsAndStealsAreSane) {
    const auto deps = random_dag(0xABCDEFull, 300, 3);
    std::size_t roots = 0;
    for (const auto& d : deps)
        if (d.empty())
            ++roots;
    for (const std::size_t threads : {1u, 4u}) {
        task_graph graph;
        for (std::size_t i = 0; i < deps.size(); ++i)
            graph.add([] {}, deps[i]);
        const auto stats = task_scheduler(threads).run(std::move(graph));
        // Spawns are deterministic: every non-root is released exactly
        // once by its last-finishing dependency.
        EXPECT_EQ(stats.spawned, deps.size() - roots);
        if (threads == 1)
            EXPECT_EQ(stats.stolen, 0u); // nobody to steal from
        else
            EXPECT_LE(stats.stolen, stats.executed);
    }
}

TEST(TaskScheduler, SingleWorkerRunsRootsInSubmissionOrder) {
    // The retired pool drained FIFO; fault-injection arrival order at one
    // thread depends on this staying true.
    std::vector<std::size_t> order;
    task_graph graph;
    for (std::size_t i = 0; i < 16; ++i)
        graph.add([&order, i] { order.push_back(i); });
    task_scheduler(1).run(std::move(graph));
    std::vector<std::size_t> expected(16);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

// Every node runs even when others throw; the lowest-id failure is
// rethrown — including when the throwing task was stolen.
TEST(TaskScheduler, LowestIdExceptionPropagatesAndNothingIsCancelled) {
    for (const std::size_t threads : {1u, 4u, 8u}) {
        std::atomic<std::size_t> ran{0};
        task_graph graph;
        const std::size_t first_thrower = 5;
        std::vector<std::size_t> chain;
        for (std::size_t i = 0; i < 64; ++i) {
            // A sparse chain keeps spawned (stealable) work in the mix.
            std::vector<std::size_t> deps;
            if (i % 8 == 7)
                deps = {i - 1};
            const std::size_t id = graph.add(
                [&ran, i, first_thrower] {
                    ran.fetch_add(1, std::memory_order_relaxed);
                    if (i == first_thrower || i == 40)
                        throw std::runtime_error("task " + std::to_string(i));
                },
                deps);
            chain.push_back(id);
        }
        try {
            task_scheduler(threads).run(std::move(graph));
            FAIL() << "expected the lowest-id exception to propagate";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "task 5");
        }
        EXPECT_EQ(ran.load(), 64u) << "failures must not cancel successors";
    }
}

// Tasks are pure functions of their inputs writing disjoint slots, so any
// thread count must produce byte-identical outputs.
TEST(TaskScheduler, OneThreadEqualsNThreadsResultSweep) {
    const auto deps = random_dag(0xFEEDull, 128, 4);
    const auto run_at = [&](std::size_t threads) {
        std::vector<std::uint64_t> value(deps.size(), 0);
        task_graph graph;
        for (std::size_t i = 0; i < deps.size(); ++i)
            graph.add(
                [&value, &deps, i] {
                    std::uint64_t h = 0x9E3779B97F4A7C15ull * (i + 1);
                    for (const std::size_t d : deps[i])
                        h ^= value[d] + 0x517CC1B727220A95ull + (h << 6) +
                             (h >> 2);
                    value[i] = h;
                },
                deps[i]);
        task_scheduler(threads).run(std::move(graph));
        return value;
    };
    const auto baseline = run_at(1);
    for (const std::size_t threads : {2u, 4u, 8u})
        EXPECT_EQ(run_at(threads), baseline) << "threads=" << threads;
}

TEST(TaskScheduler, ParallelForRunsEveryIndexOnce) {
    for (const std::size_t threads : {1u, 4u}) {
        std::vector<int> seen(1000, 0);
        const auto stats = task_scheduler(threads).parallel_for(
            seen.size(), [&seen](std::size_t i) { ++seen[i]; });
        EXPECT_EQ(stats.executed, seen.size());
        EXPECT_EQ(stats.spawned, 0u); // flat graphs have only roots
        for (const int s : seen)
            EXPECT_EQ(s, 1);
    }
}

TEST(TaskScheduler, ParallelForRethrowsLowestIndex) {
    std::atomic<std::size_t> ran{0};
    try {
        task_scheduler(4).parallel_for(100, [&ran](std::size_t i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 17 || i == 3 || i == 90)
                throw std::runtime_error("iteration " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "iteration 3");
    }
    EXPECT_EQ(ran.load(), 100u);
}

// Hammer a wide shallow graph to force real concurrency and stealing —
// the TSan CI job leans on this test.
TEST(TaskScheduler, StressManySmallTasksWithSharedCounters) {
    std::atomic<std::uint64_t> sum{0};
    task_graph graph;
    std::vector<std::size_t> layer;
    for (std::size_t i = 0; i < 32; ++i)
        layer.push_back(
            graph.add([&sum, i] { sum.fetch_add(i + 1); }));
    // A second layer, each node depending on two first-layer nodes.
    for (std::size_t i = 0; i + 1 < layer.size(); ++i)
        graph.add([&sum] { sum.fetch_add(1000); },
                  {layer[i], layer[i + 1]});
    const auto stats = task_scheduler(8).run(std::move(graph));
    EXPECT_EQ(stats.executed, 32u + 31u);
    EXPECT_EQ(sum.load(), (32u * 33u) / 2 + 31u * 1000u);
}

} // namespace

// Unit tests for descriptive statistics and error metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/contracts.hpp"
#include "core/stats.hpp"

namespace {

using namespace sdrbist;

TEST(Stats, MeanVarianceStddev) {
    const std::vector<double> x{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(x), 5.0);
    EXPECT_NEAR(variance(x), 32.0 / 7.0, 1e-12); // unbiased
    EXPECT_NEAR(stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, RmsAndMaxAbs) {
    const std::vector<double> x{3.0, -4.0};
    EXPECT_DOUBLE_EQ(rms(x), std::sqrt(12.5));
    EXPECT_DOUBLE_EQ(max_abs(x), 4.0);
    EXPECT_DOUBLE_EQ(max_abs(std::vector<double>{}), 0.0);
}

TEST(Stats, MseAndRelativeError) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{1.0, 2.0, 4.0};
    EXPECT_NEAR(mean_squared_error(a, b), 1.0 / 3.0, 1e-15);
    EXPECT_NEAR(relative_rms_error(a, b), 1.0 / std::sqrt(14.0), 1e-12);
    EXPECT_DOUBLE_EQ(relative_rms_error(a, a), 0.0);
}

TEST(Stats, Percentile) {
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(x, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(x, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(x, 50.0), 2.5);
}

TEST(Stats, Preconditions) {
    const std::vector<double> empty;
    const std::vector<double> one{1.0};
    const std::vector<double> two{1.0, 2.0};
    EXPECT_THROW(mean(empty), contract_violation);
    EXPECT_THROW(variance(one), contract_violation);
    EXPECT_THROW(mean_squared_error(two, one), contract_violation);
    EXPECT_THROW(percentile(empty, 50.0), contract_violation);
    const std::vector<double> zeros{0.0, 0.0};
    EXPECT_THROW(relative_rms_error(zeros, two), contract_violation);
}

} // namespace

// Determinism and distribution sanity of the seeded RNG.
#include <gtest/gtest.h>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"

namespace {

using namespace sdrbist;

TEST(Rng, SameSeedSameStream) {
    rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
}

TEST(Rng, DifferentSeedsDiffer) {
    rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i)
        same += a.next_u64() == b.next_u64() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, GaussianMoments) {
    rng g(7);
    const auto x = g.gaussian_vector(40000, 1.5, 2.0);
    EXPECT_NEAR(mean(x), 1.5, 0.05);
    EXPECT_NEAR(stddev(x), 2.0, 0.05);
}

TEST(Rng, UniformRangeAndMoments) {
    rng g(9);
    const auto x = g.uniform_vector(40000, -2.0, 6.0);
    for (double v : x) {
        ASSERT_GE(v, -2.0);
        ASSERT_LT(v, 6.0);
    }
    EXPECT_NEAR(mean(x), 2.0, 0.08);
}

TEST(Rng, SigmaZeroIsDeterministic) {
    rng g(5);
    EXPECT_DOUBLE_EQ(g.gaussian(3.0, 0.0), 3.0);
}

TEST(Rng, ForkGivesIndependentStream) {
    rng parent(77);
    rng child = parent.fork();
    // The child stream must not mirror the parent's continuation.
    int same = 0;
    for (int i = 0; i < 50; ++i)
        same += parent.next_u64() == child.next_u64() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntBounds) {
    rng g(11);
    for (int i = 0; i < 200; ++i) {
        const int v = g.uniform_int(-3, 4);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 4);
    }
    EXPECT_THROW(g.uniform(2.0, 1.0), contract_violation);
}

} // namespace

// FFT correctness against the direct DFT, round trips, and layouts.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "dsp/fft.hpp"

namespace {

using namespace sdrbist;
using dsp::cplx;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
    rng gen(seed);
    std::vector<cplx> x(n);
    for (auto& v : x)
        v = {gen.gaussian(), gen.gaussian()};
    return x;
}

double max_error(const std::vector<cplx>& a, const std::vector<cplx>& b) {
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

// FFT sizes: powers of two use radix-2, everything else uses Bluestein.
class FftAgainstDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftAgainstDft, MatchesReference) {
    const std::size_t n = GetParam();
    const auto x = random_signal(n, 100 + n);
    const auto fast = dsp::fft(x);
    const auto ref = dsp::dft_reference(x);
    EXPECT_LT(max_error(fast, ref), 1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftAgainstDft,
                         ::testing::Values(1, 2, 4, 8, 64, 128, 3, 5, 12, 100,
                                           255, 360),
                         [](const auto& info) {
                             std::string name = "n";
                             name += std::to_string(info.param);
                             return name;
                         });

TEST(Fft, InverseRoundTrip) {
    for (std::size_t n : {16u, 100u, 513u}) {
        const auto x = random_signal(n, n);
        const auto y = dsp::ifft(dsp::fft(x));
        EXPECT_LT(max_error(x, y), 1e-10) << "n=" << n;
    }
}

TEST(Fft, SingleToneLandsInRightBin) {
    const std::size_t n = 256;
    const double fs = 1000.0;
    const std::size_t bin = 37;
    std::vector<cplx> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::polar(1.0, two_pi * static_cast<double>(bin * i) /
                                   static_cast<double>(n));
    const auto spectrum = dsp::fft(x);
    for (std::size_t k = 0; k < n; ++k) {
        if (k == bin)
            EXPECT_NEAR(std::abs(spectrum[k]), static_cast<double>(n), 1e-8);
        else
            EXPECT_LT(std::abs(spectrum[k]), 1e-7);
    }
    const auto freqs = dsp::fft_frequencies(n, fs);
    EXPECT_NEAR(freqs[bin], fs * static_cast<double>(bin) /
                                static_cast<double>(n), 1e-9);
}

TEST(Fft, RealInputHermitianSymmetry) {
    rng gen(5);
    std::vector<double> x(128);
    for (auto& v : x)
        v = gen.gaussian();
    const auto spectrum = dsp::fft_real(x);
    for (std::size_t k = 1; k < x.size(); ++k) {
        const cplx a = spectrum[k];
        const cplx b = std::conj(spectrum[x.size() - k]);
        EXPECT_NEAR(a.real(), b.real(), 1e-9);
        EXPECT_NEAR(a.imag(), b.imag(), 1e-9);
    }
}

TEST(Fft, ParsevalHolds) {
    const auto x = random_signal(200, 17);
    const auto spectrum = dsp::fft(x);
    double time_e = 0.0, freq_e = 0.0;
    for (const auto& v : x)
        time_e += std::norm(v);
    for (const auto& v : spectrum)
        freq_e += std::norm(v);
    EXPECT_NEAR(freq_e / static_cast<double>(x.size()), time_e,
                1e-9 * time_e);
}

TEST(Fft, FrequencyLayoutAndShift) {
    const auto f = dsp::fft_frequencies(8, 800.0);
    // numpy layout: 0,100,200,300,-400,-300,-200,-100.
    EXPECT_DOUBLE_EQ(f[0], 0.0);
    EXPECT_DOUBLE_EQ(f[3], 300.0);
    EXPECT_DOUBLE_EQ(f[4], -400.0);
    EXPECT_DOUBLE_EQ(f[7], -100.0);
    const auto shifted = dsp::fftshift(f);
    EXPECT_DOUBLE_EQ(shifted.front(), -400.0);
    EXPECT_DOUBLE_EQ(shifted.back(), 300.0);
    // Ascending after the shift.
    for (std::size_t i = 1; i < shifted.size(); ++i)
        EXPECT_GT(shifted[i], shifted[i - 1]);
}

TEST(Fft, OddLengthShiftLayout) {
    const auto f = dsp::fftshift(dsp::fft_frequencies(5, 500.0));
    // 5-point: -200,-100,0,100,200.
    EXPECT_DOUBLE_EQ(f[0], -200.0);
    EXPECT_DOUBLE_EQ(f[2], 0.0);
    EXPECT_DOUBLE_EQ(f[4], 200.0);
}

TEST(Fft, EmptyInputRejected) {
    EXPECT_THROW(dsp::fft({}), contract_violation);
}

} // namespace

// FIR design and filtering tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "dsp/fir.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::dsp;

TEST(FirDesign, LowpassGainProfile) {
    const auto h = design_lowpass_fir(127, 0.1);
    EXPECT_NEAR(std::abs(fir_response(h, 0.0)), 1.0, 1e-12);     // DC
    EXPECT_NEAR(std::abs(fir_response(h, 0.05)), 1.0, 1e-3);     // passband
    EXPECT_NEAR(std::abs(fir_response(h, 0.1)), 0.5, 0.05);      // edge ~ -6dB
    EXPECT_LT(std::abs(fir_response(h, 0.2)), 1e-3);             // stopband
    EXPECT_LT(std::abs(fir_response(h, 0.45)), 1e-3);
}

TEST(FirDesign, LowpassLinearPhase) {
    const auto h = design_lowpass_fir(65, 0.2);
    for (std::size_t i = 0; i < h.size(); ++i)
        EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
}

TEST(FirDesign, BandpassSelectsBand) {
    const auto h = design_bandpass_fir(255, 0.15, 0.25);
    EXPECT_NEAR(std::abs(fir_response(h, 0.2)), 1.0, 1e-2);
    EXPECT_LT(std::abs(fir_response(h, 0.05)), 1e-3);
    EXPECT_LT(std::abs(fir_response(h, 0.35)), 1e-3);
    EXPECT_LT(std::abs(fir_response(h, 0.0)), 1e-4);
}

TEST(Convolve, KnownResult) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{1.0, 1.0};
    const auto c = convolve(a, b);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_DOUBLE_EQ(c[0], 1.0);
    EXPECT_DOUBLE_EQ(c[1], 3.0);
    EXPECT_DOUBLE_EQ(c[2], 5.0);
    EXPECT_DOUBLE_EQ(c[3], 3.0);
}

TEST(FilterSame, DelayCompensatedIdentity) {
    // A centred unit impulse as "filter" must return the input unchanged.
    std::vector<double> h(21, 0.0);
    h[10] = 1.0;
    rng gen(3);
    const auto x = gen.gaussian_vector(100);
    const auto y = filter_same(h, x);
    ASSERT_EQ(y.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-12);
}

TEST(FilterSame, RemovesOutOfBandTone) {
    const auto h = design_lowpass_fir(101, 0.1);
    std::vector<double> x(400);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = std::cos(two_pi * 0.3 * static_cast<double>(n));
    const auto y = filter_same(h, x);
    double peak = 0.0;
    for (std::size_t n = 100; n < 300; ++n)
        peak = std::max(peak, std::abs(y[n]));
    EXPECT_LT(peak, 1e-3);
}

TEST(Upfirdn, UpsamplingInterpolatesImpulse) {
    // upfirdn(h, delta, L, 1) returns h itself.
    const auto h = design_lowpass_fir(31, 0.2);
    const std::vector<double> delta{1.0};
    const auto y = upfirdn(h, delta, 4, 1);
    ASSERT_GE(y.size(), h.size());
    for (std::size_t i = 0; i < h.size(); ++i)
        EXPECT_NEAR(y[i], h[i], 1e-12);
}

TEST(Upfirdn, DownsamplingKeepsEveryMth) {
    std::vector<double> h{1.0}; // pass-through
    std::vector<double> x(12);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<double>(i);
    const auto y = upfirdn(h, x, 1, 3);
    ASSERT_EQ(y.size(), 4u);
    EXPECT_DOUBLE_EQ(y[0], 0.0);
    EXPECT_DOUBLE_EQ(y[1], 3.0);
    EXPECT_DOUBLE_EQ(y[2], 6.0);
    EXPECT_DOUBLE_EQ(y[3], 9.0);
}

TEST(Upfirdn, MatchesUpsampleThenConvolveThenDownsample) {
    rng gen(11);
    const auto x = gen.gaussian_vector(37);
    const auto h = design_lowpass_fir(21, 0.15);
    const std::size_t up = 3, down = 2;

    // Reference: explicit zero stuffing + full convolution + decimation.
    std::vector<double> stuffed(x.size() * up, 0.0);
    for (std::size_t i = 0; i < x.size(); ++i)
        stuffed[i * up] = x[i];
    const auto full = convolve(h, stuffed);
    std::vector<double> ref;
    for (std::size_t i = 0; i < full.size(); i += down)
        ref.push_back(full[i]);

    const auto y = upfirdn(h, x, up, down);
    ASSERT_EQ(y.size(), ref.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-12) << "i=" << i;
}

TEST(Upfirdn, ComplexInputWorks) {
    std::vector<std::complex<double>> x{{1.0, -1.0}, {2.0, 0.5}};
    std::vector<double> h{0.5, 0.5};
    const auto y = upfirdn(h, std::span<const std::complex<double>>(
                                  x.data(), x.size()),
                           1, 1);
    ASSERT_EQ(y.size(), 3u);
    EXPECT_NEAR(y[1].real(), 1.5, 1e-12);
    EXPECT_NEAR(y[1].imag(), -0.25, 1e-12);
}

TEST(FirDesign, Preconditions) {
    EXPECT_THROW(design_lowpass_fir(2, 0.1), contract_violation);
    EXPECT_THROW(design_lowpass_fir(21, 0.0), contract_violation);
    EXPECT_THROW(design_lowpass_fir(21, 0.5), contract_violation);
    EXPECT_THROW(design_bandpass_fir(21, 0.3, 0.2), contract_violation);
    std::vector<double> even_h{1.0, 2.0};
    std::vector<double> x{1.0};
    EXPECT_THROW(filter_same(even_h, x), contract_violation);
}

} // namespace

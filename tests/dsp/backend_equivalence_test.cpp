// Cross-backend equivalence lockdown: every compiled-in, CPU-supported
// SIMD backend is run against the scalar reference backend over randomised
// record shapes — lengths 0, 1, sub-vector-width, tail remainders and
// unaligned pointer offsets — and must honour the per-kernel accuracy
// contract of kernel_backend.hpp:
//
//  * dot / dot2 / blend_dot / blend_dot_cplx: reassociated accumulation,
//    deviation ≤ 1e-12 relative to Σ|aᵢ·bᵢ| (the documented ULP-style
//    bound; the true reassociation error is ~n·eps of that magnitude);
//  * quantize_midrise / carrier_mix: bit-identical.
//
// On top of the primitive shapes, the object-level paths (windowed-sinc
// interpolator, PNBS reconstructor) are rebuilt under every forced backend
// and compared against their scalar-forced twins.
//
// On a machine without any SIMD backend the per-backend loops are vacuous
// by construction (scalar is the yardstick itself); the forced-scalar CI
// leg keeps that configuration exercised end to end.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "core/random.hpp"
#include "core/simd/kernel_backend.hpp"
#include "core/units.hpp"
#include "dsp/interpolator.hpp"
#include "rf/passband.hpp"
#include "sampling/band.hpp"
#include "sampling/pnbs.hpp"

namespace {

using namespace sdrbist;
using simd::kernel_backend;
using simd::kernel_ops;
using simd::scalar_ops;

/// Documented relative bound for the accumulating kernels.
constexpr double accum_rel_bound = 1e-12;

/// Record shapes every kernel is exercised on: empty, single element, below
/// vector width, exact multiples, tail remainders (including the unrolled
/// 8-wide carrier_mix loop's 4-wide and scalar tails), and the hot-path
/// sizes (61-tap PNBS window, 64-tap interpolator window).
const std::vector<std::size_t> lengths = {
    0,  1,  2,  3,  4,  5,   7,   8,   9,   11,  12,  13, 15,
    16, 17, 31, 32, 33, 61,  63,  64,  65,  100, 127, 128,
    129, 255, 256, 257, 260};

/// Pointer misalignments (in elements) applied on top of each length.
const std::vector<std::size_t> offsets = {0, 1, 2, 3};

std::vector<double> random_record(rng& gen, std::size_t n, double lo = -2.0,
                                  double hi = 2.0) {
    return gen.uniform_vector(n, lo, hi);
}

/// Non-scalar backends the CPU can run (scalar is the yardstick).
std::vector<const kernel_ops*> simd_backends() {
    std::vector<const kernel_ops*> out;
    for (const auto* ops : kernel_backend::available())
        if (std::string_view(ops->name) != "scalar")
            out.push_back(ops);
    return out;
}

TEST(BackendEquivalence, Dot2MatchesTwoSeparateDots) {
    rng gen(0xD072);
    for (const auto* ops : simd_backends()) {
        for (const std::size_t n : lengths) {
            for (const std::size_t off : offsets) {
                const auto a = random_record(gen, n + off);
                const auto ca = random_record(gen, n + off);
                const auto b = random_record(gen, n + off);
                const auto cb = random_record(gen, n + off);
                double ref_a = 0.0, ref_b = 0.0;
                scalar_ops().dot2(a.data() + off, ca.data() + off,
                                  b.data() + off, cb.data() + off, n, &ref_a,
                                  &ref_b);
                double got_a = 0.0, got_b = 0.0;
                ops->dot2(a.data() + off, ca.data() + off, b.data() + off,
                          cb.data() + off, n, &got_a, &got_b);
                double mag_a = 0.0, mag_b = 0.0;
                for (std::size_t i = 0; i < n; ++i) {
                    mag_a += std::abs(a[off + i] * ca[off + i]);
                    mag_b += std::abs(b[off + i] * cb[off + i]);
                }
                EXPECT_LE(std::abs(got_a - ref_a), accum_rel_bound * mag_a)
                    << ops->name << " n=" << n << " off=" << off;
                EXPECT_LE(std::abs(got_b - ref_b), accum_rel_bound * mag_b)
                    << ops->name << " n=" << n << " off=" << off;
                // Deterministic: same inputs, same result, call after call.
                double again_a = 0.0, again_b = 0.0;
                ops->dot2(a.data() + off, ca.data() + off, b.data() + off,
                          cb.data() + off, n, &again_a, &again_b);
                EXPECT_EQ(got_a, again_a);
                EXPECT_EQ(got_b, again_b);
            }
        }
    }
}

TEST(BackendEquivalence, BlendDotMatchesScalarWithinDocumentedBound) {
    rng gen(0xB1E);
    for (const auto* ops : simd_backends()) {
        for (const std::size_t n : lengths) {
            for (const std::size_t off : offsets) {
                // Four LUT rows, stride ≥ n with random slack as in the
                // polyphase table, plus the cubic blend weights.
                const std::size_t stride =
                    n + static_cast<std::size_t>(gen.uniform_int(0, 9));
                const auto rows = random_record(gen, 4 * stride + off, -1.0,
                                                1.0);
                const auto x = random_record(gen, n + off);
                const auto w = gen.uniform_vector(4, -1.0, 1.0);
                const double* px = x.data() + off;
                const double* pr = rows.data() + off;
                // stride keeps rows overlapping when off > 0; harmless —
                // the kernel only reads, and the scalar yardstick reads
                // the same cells.
                const double ref =
                    scalar_ops().blend_dot(px, pr, stride, w.data(), n);
                const double got = ops->blend_dot(px, pr, stride, w.data(), n);
                double mag = 0.0;
                for (std::size_t i = 0; i < n; ++i) {
                    const double coeff =
                        w[0] * pr[i] + w[1] * pr[i + stride] +
                        w[2] * pr[i + 2 * stride] + w[3] * pr[i + 3 * stride];
                    mag += std::abs(px[i] * coeff);
                }
                EXPECT_LE(std::abs(got - ref), accum_rel_bound * mag)
                    << ops->name << " n=" << n << " off=" << off;
            }
        }
    }
}

TEST(BackendEquivalence, BlendDotCplxMatchesScalarWithinDocumentedBound) {
    rng gen(0xB1EC);
    for (const auto* ops : simd_backends()) {
        for (const std::size_t n : lengths) {
            for (const std::size_t off : offsets) {
                const std::size_t stride =
                    n + static_cast<std::size_t>(gen.uniform_int(0, 9));
                const auto rows = random_record(gen, 4 * stride + off, -1.0,
                                                1.0);
                const auto w = gen.uniform_vector(4, -1.0, 1.0);
                std::vector<std::complex<double>> x(n + off);
                for (auto& v : x)
                    v = {gen.uniform(-2.0, 2.0), gen.uniform(-2.0, 2.0)};
                const auto* px = x.data() + off;
                const double* pr = rows.data() + off;
                const auto ref = scalar_ops().blend_dot_cplx(px, pr, stride,
                                                             w.data(), n);
                const auto got =
                    ops->blend_dot_cplx(px, pr, stride, w.data(), n);
                double mag = 0.0;
                for (std::size_t i = 0; i < n; ++i) {
                    const double coeff =
                        w[0] * pr[i] + w[1] * pr[i + stride] +
                        w[2] * pr[i + 2 * stride] + w[3] * pr[i + 3 * stride];
                    mag += std::abs(px[i]) * std::abs(coeff);
                }
                EXPECT_LE(std::abs(got - ref), accum_rel_bound * mag)
                    << ops->name << " n=" << n << " off=" << off;
            }
        }
    }
}

TEST(BackendEquivalence, QuantizeMidriseIsBitIdenticalAcrossBackends) {
    rng gen(0x0AD);
    simd::quantize_params p;
    p.gain = 1.0 + 0.013;
    p.offset = -0.004;
    p.clip_lo = -2.0;
    p.clip_hi = 2.0 - 1e-9;
    p.lsb = 4.0 / 1024.0;
    for (const auto* ops : simd_backends()) {
        for (const std::size_t n : lengths) {
            for (const std::size_t off : offsets) {
                // ±3 rails so a good fraction of the record clips.
                const auto x = random_record(gen, n + off, -6.0, 6.0);
                std::vector<double> ref(n), got(n);
                scalar_ops().quantize_midrise(x.data() + off, ref.data(), n,
                                              0.7, p);
                ops->quantize_midrise(x.data() + off, got.data(), n, 0.7, p);
                for (std::size_t i = 0; i < n; ++i)
                    EXPECT_EQ(got[i], ref[i])
                        << ops->name << " n=" << n << " off=" << off
                        << " i=" << i;
            }
        }
    }
}

TEST(BackendEquivalence, QuantizeMidrisePropagatesNonFiniteLikeScalar) {
    // NaN stays NaN and ±inf clips to the rails on every backend — the
    // bit-identity contract includes non-finite samples (x86 min/max
    // returns its second operand on NaN, so operand order matters).
    simd::quantize_params p;
    p.gain = 1.01;
    p.offset = 0.002;
    p.clip_lo = -2.0;
    p.clip_hi = 2.0 - 1e-9;
    p.lsb = 4.0 / 1024.0;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    // Enough copies that both the vector body and the tail see them.
    std::vector<double> x;
    for (int rep = 0; rep < 3; ++rep)
        for (const double v : {nan, inf, -inf, 0.25, -1.5, 7.0})
            x.push_back(v);
    for (const auto* ops : simd_backends()) {
        for (std::size_t n = 0; n <= x.size(); ++n) {
            std::vector<double> ref(n), got(n);
            scalar_ops().quantize_midrise(x.data(), ref.data(), n, 0.7, p);
            ops->quantize_midrise(x.data(), got.data(), n, 0.7, p);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
                          std::bit_cast<std::uint64_t>(ref[i]))
                    << ops->name << " n=" << n << " i=" << i
                    << " x=" << x[i];
        }
    }
}

TEST(BackendEquivalence, CarrierMixIsBitIdenticalAcrossBackends) {
    rng gen(0xC4);
    for (const auto* ops : simd_backends()) {
        for (const std::size_t n : lengths) {
            for (const std::size_t off : offsets) {
                std::vector<std::complex<double>> env(n + off);
                for (auto& v : env)
                    v = {gen.uniform(-2.0, 2.0), gen.uniform(-2.0, 2.0)};
                const auto c = random_record(gen, n + off, -1.0, 1.0);
                const auto s = random_record(gen, n + off, -1.0, 1.0);
                std::vector<double> ref(n), got(n);
                scalar_ops().carrier_mix(env.data() + off, c.data() + off,
                                         s.data() + off, ref.data(), n);
                ops->carrier_mix(env.data() + off, c.data() + off,
                                 s.data() + off, got.data(), n);
                for (std::size_t i = 0; i < n; ++i)
                    EXPECT_EQ(got[i], ref[i])
                        << ops->name << " n=" << n << " off=" << off
                        << " i=" << i;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Object-level equivalence: the hot-path classes rebuilt under every forced
// backend agree with their scalar-forced twins.
// ---------------------------------------------------------------------------

/// Restores auto-detection when a test forced backends.
struct backend_restore {
    ~backend_restore() { kernel_backend::reset(); }
};

TEST(BackendEquivalence, InterpolatorAgreesWithScalarBackendBuild) {
    backend_restore restore;
    rng gen(0x517C);
    const double fs = 100.0 * MHz;
    std::vector<double> x(512);
    for (auto& v : x)
        v = gen.uniform(-1.0, 1.0);
    std::vector<double> probes(500);
    const double span = static_cast<double>(x.size()) / fs;
    for (auto& t : probes)
        t = gen.uniform(-0.05 * span, 1.05 * span); // includes edge clamping

    kernel_backend::force("scalar");
    const dsp::real_interpolator scalar_interp(x, fs, 32, 10.0);
    const auto ref = scalar_interp.at(probes);

    for (const auto* ops : simd_backends()) {
        kernel_backend::force(ops->name);
        const dsp::real_interpolator interp(x, fs, 32, 10.0);
        ASSERT_STREQ(interp.backend().name, ops->name);
        const auto got = interp.at(probes);
        for (std::size_t i = 0; i < probes.size(); ++i)
            EXPECT_NEAR(got[i], ref[i], 1e-12)
                << ops->name << " t=" << probes[i];
    }
}

TEST(BackendEquivalence, PnbsReconstructorAgreesWithScalarBackendBuild) {
    backend_restore restore;
    const sampling::band_spec band =
        sampling::band_around(1.0 * GHz, 90.0 * MHz);
    const double period = 1.0 / band.bandwidth();
    const double d = 180.0 * ps;
    const std::size_t n = 300;
    rng gen(0x9B5);
    std::vector<double> even(n), odd(n);
    for (std::size_t k = 0; k < n; ++k) {
        even[k] = gen.uniform(-1.0, 1.0);
        odd[k] = gen.uniform(-1.0, 1.0);
    }

    kernel_backend::force("scalar");
    const sampling::pnbs_reconstructor scalar_recon(even, odd, period, 0.0,
                                                    band, d, {61, 8.0});
    rng probe(0x9B6);
    std::vector<double> ts(400);
    for (auto& t : ts)
        t = probe.uniform(scalar_recon.valid_begin(),
                          scalar_recon.valid_end());
    const auto ref = scalar_recon.values(ts);

    for (const auto* ops : simd_backends()) {
        kernel_backend::force(ops->name);
        const sampling::pnbs_reconstructor recon(even, odd, period, 0.0,
                                                 band, d, {61, 8.0});
        ASSERT_STREQ(recon.backend().name, ops->name);
        const auto got = recon.values(ts);
        for (std::size_t i = 0; i < ts.size(); ++i)
            EXPECT_NEAR(got[i], ref[i], 1e-11)
                << ops->name << " t=" << ts[i];
    }
}

TEST(BackendEquivalence, CapturePathIsBitIdenticalAcrossBackendQuantise) {
    // envelope values() = batch interp (bounded) + carrier mix and
    // quantisation (bit-identical): with the same interpolator output the
    // capture record must match scalar exactly; with backend-built
    // interpolators it must match within the blend_dot bound.  Lock the
    // second, end-to-end form here.
    backend_restore restore;
    rng gen(0xCAB);
    const double env_rate = 180.0 * MHz;
    std::vector<std::complex<double>> env(1024);
    for (auto& v : env)
        v = {gen.uniform(-1.0, 1.0), gen.uniform(-1.0, 1.0)};

    kernel_backend::force("scalar");
    const rf::envelope_passband scalar_sig(env, env_rate, 1.0 * GHz);
    std::vector<double> t(600);
    for (auto& ti : t)
        ti = gen.uniform(scalar_sig.begin_time(), scalar_sig.end_time());
    const auto ref = scalar_sig.values(t);

    for (const auto* ops : simd_backends()) {
        kernel_backend::force(ops->name);
        const rf::envelope_passband sig(env, env_rate, 1.0 * GHz);
        const auto got = sig.values(t);
        for (std::size_t i = 0; i < t.size(); ++i)
            EXPECT_NEAR(got[i], ref[i], 1e-12) << ops->name;
        // Batch and per-instant evaluation agree bit-for-bit under every
        // backend (the PR 2 invariant, now per backend).
        for (std::size_t i = 0; i < 50; ++i)
            EXPECT_EQ(got[i], sig.value(t[i])) << ops->name;
    }
}

} // namespace

// Biquad cascade and Butterworth design tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "dsp/biquad.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::dsp;

TEST(Butterworth, MinusThreeDbAtCutoff) {
    for (int order : {1, 2, 3, 5, 8}) {
        auto lpf = butterworth_lowpass(order, 10.0 * MHz, 100.0 * MHz);
        const double g = std::abs(lpf.response(0.1));
        EXPECT_NEAR(db_from_amplitude(g), -3.01, 0.1) << "order " << order;
        EXPECT_NEAR(std::abs(lpf.response(0.0)), 1.0, 1e-9) << order;
    }
}

TEST(Butterworth, RolloffScalesWithOrder) {
    // Exact magnitude law: |H(f)|^2 = 1/(1 + (f/fc)^{2n}) — checked one
    // octave above the cutoff (bilinear warping is small at fc = fs/20).
    for (int order : {2, 4, 6}) {
        auto lpf = butterworth_lowpass(order, 5.0 * MHz, 100.0 * MHz);
        const double g2 = db_from_amplitude(std::abs(lpf.response(0.10)));
        const double expect =
            -10.0 * std::log10(1.0 + std::pow(2.0, 2.0 * order));
        EXPECT_NEAR(g2, expect, 1.5) << "order " << order;
    }
}

TEST(Butterworth, MonotonePassband) {
    auto lpf = butterworth_lowpass(5, 20.0 * MHz, 100.0 * MHz);
    double prev = std::abs(lpf.response(0.0));
    for (double f = 0.01; f <= 0.45; f += 0.01) {
        const double g = std::abs(lpf.response(f));
        EXPECT_LE(g, prev * 1.0001) << "f=" << f; // maximally flat: monotone
        prev = g;
    }
}

TEST(Butterworth, HighpassMirrorsLowpass) {
    auto hpf = butterworth_highpass(4, 10.0 * MHz, 100.0 * MHz);
    EXPECT_NEAR(std::abs(hpf.response(0.0)), 0.0, 1e-9);
    EXPECT_NEAR(db_from_amplitude(std::abs(hpf.response(0.1))), -3.01, 0.1);
    EXPECT_NEAR(std::abs(hpf.response(0.45)), 1.0, 1e-2);
}

TEST(Butterworth, TimeDomainMatchesResponse) {
    // Filter a tone and compare the steady-state amplitude with |H|.
    auto lpf = butterworth_lowpass(3, 10.0 * MHz, 100.0 * MHz);
    const double f_norm = 0.07;
    std::vector<double> x(4000);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = std::cos(two_pi * f_norm * static_cast<double>(n));
    const auto y = lpf.filter(x);
    double peak = 0.0;
    for (std::size_t n = 2000; n < 4000; ++n)
        peak = std::max(peak, std::abs(y[n]));
    EXPECT_NEAR(peak, std::abs(lpf.response(f_norm)), 5e-3);
}

TEST(Butterworth, ImpulseResponseDecays) {
    auto lpf = butterworth_lowpass(6, 5.0 * MHz, 100.0 * MHz);
    std::vector<double> x(3000, 0.0);
    x[0] = 1.0;
    const auto y = lpf.filter(x);
    double tail = 0.0;
    for (std::size_t n = 2000; n < 3000; ++n)
        tail = std::max(tail, std::abs(y[n]));
    EXPECT_LT(tail, 1e-9); // stable: the impulse response has died out
}

TEST(Butterworth, ComplexFilteringMatchesPerComponent) {
    auto lpf = butterworth_lowpass(3, 10.0 * MHz, 100.0 * MHz);
    std::vector<std::complex<double>> x(500);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = {std::cos(0.3 * static_cast<double>(n)),
                std::sin(0.2 * static_cast<double>(n))};
    const auto y = lpf.filter(
        std::span<const std::complex<double>>(x.data(), x.size()));
    std::vector<double> re(x.size());
    for (std::size_t n = 0; n < x.size(); ++n)
        re[n] = x[n].real();
    const auto yre = lpf.filter(re);
    for (std::size_t n = 0; n < x.size(); ++n)
        EXPECT_DOUBLE_EQ(y[n].real(), yre[n]);
}

TEST(Butterworth, SectionCounts) {
    EXPECT_EQ(butterworth_lowpass(1, 1e6, 1e7).section_count(), 1u);
    EXPECT_EQ(butterworth_lowpass(2, 1e6, 1e7).section_count(), 1u);
    EXPECT_EQ(butterworth_lowpass(5, 1e6, 1e7).section_count(), 3u);
    EXPECT_EQ(butterworth_lowpass(8, 1e6, 1e7).section_count(), 4u);
}

TEST(Butterworth, Preconditions) {
    EXPECT_THROW(butterworth_lowpass(0, 1e6, 1e7), contract_violation);
    EXPECT_THROW(butterworth_lowpass(13, 1e6, 1e7), contract_violation);
    EXPECT_THROW(butterworth_lowpass(3, 0.0, 1e7), contract_violation);
    EXPECT_THROW(butterworth_lowpass(3, 6e6, 1e7), contract_violation);
}

TEST(Biquad, PassthroughDefault) {
    iir_cascade empty;
    EXPECT_DOUBLE_EQ(empty.process(1.5), 1.5);
    EXPECT_NEAR(std::abs(empty.response(0.2)), 1.0, 1e-12);
}

} // namespace

// Welch PSD estimator: power calibration, density scaling, layouts.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "dsp/psd.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::dsp;

TEST(WelchPsd, TonePowerIsCalibrated) {
    // A real tone of amplitude A carries power A^2/2; integrating the
    // one-sided PSD around the tone must return it.
    const double fs = 1.0 * MHz;
    const double f0 = 123.4 * kHz;
    const double a = 0.7;
    std::vector<double> x(16384);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = a * std::cos(two_pi * f0 * static_cast<double>(n) / fs);
    welch_options opt;
    opt.segment_length = 1024;
    const auto psd = welch_psd(x, fs, opt);
    EXPECT_NEAR(psd.band_power(f0 - 20.0 * kHz, f0 + 20.0 * kHz),
                a * a / 2.0, 0.02 * a * a / 2.0);
    // Noise-free away from the tone.
    EXPECT_LT(psd.band_power(300.0 * kHz, 400.0 * kHz), 1e-9);
}

TEST(WelchPsd, WhiteNoiseDensityMatchesVariance) {
    // White Gaussian noise of variance s^2 has one-sided density
    // 2·s^2/fs; total power integrates back to s^2.
    const double fs = 2.0 * MHz;
    const double sigma = 0.3;
    rng gen(71);
    const auto x = gen.gaussian_vector(1 << 16, 0.0, sigma);
    welch_options opt;
    opt.segment_length = 512;
    const auto psd = welch_psd(x, fs, opt);
    const double total = psd.band_power(0.0, fs / 2.0);
    EXPECT_NEAR(total, sigma * sigma, 0.05 * sigma * sigma);
    // Density flat: compare two distant bands.
    const double d1 = psd.band_power(100.0 * kHz, 300.0 * kHz) / (200.0 * kHz);
    const double d2 = psd.band_power(700.0 * kHz, 900.0 * kHz) / (200.0 * kHz);
    EXPECT_NEAR(d1 / d2, 1.0, 0.15);
}

TEST(WelchPsd, ComplexTwoSidedLayout) {
    // Complex exponential at +f0 shows up only at positive frequency.
    const double fs = 1.0 * MHz;
    const double f0 = 200.0 * kHz;
    std::vector<std::complex<double>> x(8192);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = std::polar(1.0, two_pi * f0 * static_cast<double>(n) / fs);
    welch_options opt;
    opt.segment_length = 512;
    const auto psd = welch_psd(
        std::span<const std::complex<double>>(x.data(), x.size()), fs, opt);
    // Ascending frequency axis covering [-fs/2, fs/2).
    EXPECT_LT(psd.frequency.front(), 0.0);
    EXPECT_GT(psd.frequency.back(), 0.0);
    for (std::size_t i = 1; i < psd.frequency.size(); ++i)
        EXPECT_GT(psd.frequency[i], psd.frequency[i - 1]);
    EXPECT_NEAR(psd.band_power(f0 - 20.0 * kHz, f0 + 20.0 * kHz), 1.0, 0.03);
    EXPECT_LT(psd.band_power(-f0 - 20.0 * kHz, -f0 + 20.0 * kHz), 1e-9);
}

TEST(WelchPsd, PeakDensityFindsTone) {
    const double fs = 1.0 * MHz;
    std::vector<double> x(8192);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = std::cos(two_pi * 0.1 * static_cast<double>(n)) +
               0.01 * std::cos(two_pi * 0.35 * static_cast<double>(n));
    welch_options opt;
    opt.segment_length = 1024;
    const auto psd = welch_psd(x, fs, opt);
    const double big = psd.peak_density(50.0 * kHz, 150.0 * kHz);
    const double small = psd.peak_density(300.0 * kHz, 400.0 * kHz);
    EXPECT_NEAR(db_from_power(small / big), -40.0, 1.5);
}

TEST(WelchPsd, ResolutionBandwidthReported) {
    std::vector<double> x(4096, 1.0);
    welch_options opt;
    opt.segment_length = 512;
    opt.window = window_kind::hann;
    const auto psd = welch_psd(x, 1.0 * MHz, opt);
    // Hann ENBW = 1.5 bins.
    EXPECT_NEAR(psd.resolution_bw, 1.5 * 1.0 * MHz / 512.0,
                0.05 * 1.0 * MHz / 512.0);
}

TEST(WelchPsd, MoreOverlapMoreSegmentsSameAnswer) {
    rng gen(5);
    const auto x = gen.gaussian_vector(8192);
    welch_options a;
    a.segment_length = 512;
    a.overlap = 0.0;
    welch_options b = a;
    b.overlap = 0.75;
    const auto pa = welch_psd(x, 1e6, a);
    const auto pb = welch_psd(x, 1e6, b);
    EXPECT_NEAR(pa.band_power(0.0, 5e5) / pb.band_power(0.0, 5e5), 1.0, 0.1);
}

TEST(WelchPsd, Preconditions) {
    std::vector<double> x(100, 0.0);
    welch_options opt;
    opt.segment_length = 512; // longer than the record
    EXPECT_THROW(welch_psd(x, 1e6, opt), contract_violation);
    opt.segment_length = 4; // too short
    EXPECT_THROW(welch_psd(x, 1e6, opt), contract_violation);
    opt.segment_length = 64;
    opt.overlap = 1.0;
    EXPECT_THROW(welch_psd(x, 1e6, opt), contract_violation);
    opt.overlap = 0.5;
    EXPECT_THROW(welch_psd(x, -1.0, opt), contract_violation);
}

TEST(PsdResult, BandPowerEdges) {
    dsp::psd_result p;
    p.frequency = {0.0, 10.0, 20.0, 30.0};
    p.density = {1.0, 1.0, 1.0, 1.0};
    EXPECT_NEAR(p.band_power(0.0, 30.0), 40.0, 1e-12); // 4 bins × df 10
    EXPECT_NEAR(p.band_power(5.0, 25.0), 20.0, 1e-12);
    EXPECT_DOUBLE_EQ(p.band_power(100.0, 200.0), 0.0);
    EXPECT_THROW(static_cast<void>(p.band_power(10.0, 5.0)),
                 contract_violation);
}

} // namespace

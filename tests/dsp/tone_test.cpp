// Goertzel, single-tone DFT and the IEEE-1057 three-parameter sine fit.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "dsp/fft.hpp"
#include "dsp/tone.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::dsp;

TEST(Goertzel, MatchesFftBins) {
    rng gen(3);
    std::vector<double> x(256);
    for (auto& v : x)
        v = gen.gaussian();
    const auto spectrum = fft_real(x);
    for (std::size_t k : {0u, 1u, 37u, 128u, 200u}) {
        const auto g = goertzel_bin(x, k);
        // Goertzel's recurrence loses a few digits relative to the FFT.
        EXPECT_NEAR(std::abs(g - spectrum[k]), 0.0, 1e-5) << "k=" << k;
    }
}

TEST(SingleToneDft, AgreesWithGoertzelOnBins) {
    rng gen(9);
    std::vector<double> x(200);
    for (auto& v : x)
        v = gen.gaussian();
    for (std::size_t k : {3u, 10u, 77u}) {
        const double f = static_cast<double>(k) / 200.0;
        EXPECT_NEAR(std::abs(single_tone_dft(x, f) - goertzel_bin(x, k)), 0.0,
                    1e-6);
    }
}

TEST(SineFit, ExactRecovery) {
    const double f = 0.1234;
    const double amp = 0.83;
    const double phase = 1.1;
    const double offset = -0.2;
    std::vector<double> x(500);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = amp * std::cos(two_pi * f * static_cast<double>(n) + phase) +
               offset;
    const auto fit = sine_fit_3param(x, f);
    EXPECT_NEAR(fit.amplitude, amp, 1e-10);
    EXPECT_NEAR(fit.phase, phase, 1e-10);
    EXPECT_NEAR(fit.offset, offset, 1e-10);
    EXPECT_LT(fit.residual_rms, 1e-10);
}

class SineFitFreqs : public ::testing::TestWithParam<double> {};

TEST_P(SineFitFreqs, RecoversAcrossFrequencies) {
    const double f = GetParam();
    std::vector<double> x(700);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = 1.3 * std::cos(two_pi * f * static_cast<double>(n) - 0.7);
    const auto fit = sine_fit_3param(x, f);
    EXPECT_NEAR(fit.amplitude, 1.3, 1e-9);
    EXPECT_NEAR(fit.phase, -0.7, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Freqs, SineFitFreqs,
                         ::testing::Values(0.01, 0.1, 0.25, 0.4, 0.46, 0.49),
                         [](const auto& info) {
                             std::string name = "f";
                             name += std::to_string(
                                 static_cast<int>(info.param * 1000.0));
                             return name;
                         });

TEST(SineFit, NoiseScalesPhaseError) {
    // Phase estimate error ~ sigma/(amp·sqrt(N/2)).
    rng gen(21);
    const double f = 0.17;
    const double sigma = 0.05;
    const std::size_t n = 2000;
    std::vector<double> phase_errors;
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = std::cos(two_pi * f * static_cast<double>(i) + 0.5) +
                   gen.gaussian(0.0, sigma);
        phase_errors.push_back(std::abs(sine_fit_3param(x, f).phase - 0.5));
    }
    const double expected = sigma / std::sqrt(static_cast<double>(n) / 2.0);
    EXPECT_LT(mean(phase_errors), 4.0 * expected);
    EXPECT_GT(mean(phase_errors), expected / 10.0);
}

TEST(SineFit, ResidualReflectsNoise) {
    rng gen(4);
    const double sigma = 0.1;
    std::vector<double> x(4000);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::cos(two_pi * 0.2 * static_cast<double>(i)) +
               gen.gaussian(0.0, sigma);
    const auto fit = sine_fit_3param(x, 0.2);
    EXPECT_NEAR(fit.residual_rms, sigma, 0.01);
}

TEST(SineFit, Preconditions) {
    std::vector<double> x(3, 0.0);
    EXPECT_THROW(sine_fit_3param(x, 0.1), contract_violation);
    std::vector<double> y(100, 0.0);
    EXPECT_THROW(sine_fit_3param(y, 0.0), contract_violation);
    EXPECT_THROW(sine_fit_3param(y, 0.5), contract_violation);
}

TEST(Goertzel, Preconditions) {
    std::vector<double> x;
    EXPECT_THROW(goertzel_bin(x, 0), contract_violation);
    std::vector<double> y(10, 0.0);
    EXPECT_THROW(goertzel_bin(y, 10), contract_violation);
}

} // namespace

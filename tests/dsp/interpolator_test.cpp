// Bandlimited (windowed-sinc) interpolation tests — the bridge between
// discrete envelopes and the "analog" waveform the sampler probes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "dsp/interpolator.hpp"

namespace {

using namespace sdrbist;
using dsp::complex_interpolator;
using dsp::real_interpolator;

TEST(SincInterpolator, ExactAtSamplePoints) {
    const double fs = 100.0 * MHz;
    std::vector<double> x(256);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::sin(0.37 * static_cast<double>(i));
    const real_interpolator interp(x, fs, 16, 10.0);
    for (std::size_t k = 40; k < 60; ++k)
        EXPECT_NEAR(interp.at(static_cast<double>(k) / fs), x[k], 1e-6);
}

TEST(SincInterpolator, ToneAccuracyVsOversampling) {
    // Interpolation error falls as the tone moves away from Nyquist.
    const double fs = 100.0 * MHz;
    double prev_err = 1.0;
    for (const double f : {30.0 * MHz, 15.0 * MHz, 5.0 * MHz}) {
        std::vector<double> x(512);
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = std::cos(two_pi * f * static_cast<double>(i) / fs + 0.3);
        const real_interpolator interp(x, fs, 32, 10.0);
        double err = 0.0;
        int n = 0;
        for (double t = interp.valid_begin(); t < interp.valid_end();
             t += 0.313 / fs) {
            err = std::max(err,
                           std::abs(interp.at(t) -
                                    std::cos(two_pi * f * t + 0.3)));
            ++n;
        }
        ASSERT_GT(n, 100);
        // Error falls towards (and bottoms out at) the window's stopband
        // floor of a few 1e-6.
        EXPECT_LT(err, prev_err * 1.5) << f;
        prev_err = err;
    }
    EXPECT_LT(prev_err, 1e-5);
}

TEST(SincInterpolator, ComplexEnvelopeRoundTrip) {
    const double fs = 160.0 * MHz;
    const double f_mod = 7.0 * MHz;
    std::vector<std::complex<double>> x(1024);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::polar(1.0, two_pi * f_mod * static_cast<double>(i) / fs);
    const complex_interpolator interp(x, fs, 32, 10.0);
    for (double t = interp.valid_begin() + 0.3 * us;
         t < interp.valid_begin() + 1.0 * us; t += 37.0 * ns) {
        const auto expect = std::polar(1.0, two_pi * f_mod * t);
        EXPECT_LT(std::abs(interp.at(t) - expect), 1e-5);
    }
}

TEST(SincInterpolator, ValidSpanGeometry) {
    std::vector<double> x(200, 1.0);
    const real_interpolator interp(x, 1e6, 16, 8.0);
    EXPECT_DOUBLE_EQ(interp.valid_begin(), 16e-6);
    EXPECT_DOUBLE_EQ(interp.valid_end(), (200.0 - 17.0) * 1e-6);
    EXPECT_EQ(interp.size(), 200u);
    EXPECT_DOUBLE_EQ(interp.rate(), 1e6);
}

TEST(SincInterpolator, BatchMatchesScalar) {
    std::vector<double> x(128);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::cos(0.21 * static_cast<double>(i));
    const real_interpolator interp(x, 1e6, 8, 8.0);
    const std::vector<double> times{40e-6, 41.5e-6, 77.25e-6};
    const auto batch = interp.at(times);
    ASSERT_EQ(batch.size(), times.size());
    for (std::size_t i = 0; i < times.size(); ++i)
        EXPECT_DOUBLE_EQ(batch[i], interp.at(times[i]));
}

TEST(SincInterpolator, Preconditions) {
    std::vector<double> x(100, 0.0);
    EXPECT_THROW(real_interpolator(x, -1.0, 16, 8.0), contract_violation);
    EXPECT_THROW(real_interpolator(x, 1e6, 2, 8.0), contract_violation);
    EXPECT_THROW(real_interpolator(std::vector<double>(10, 0.0), 1e6, 16, 8.0),
                 contract_violation);
}

} // namespace

// Window-function properties used by FIR design and kernel truncation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "dsp/window.hpp"

namespace {

using namespace sdrbist::dsp;

TEST(Windows, SymmetryAndPeak) {
    for (auto kind : {window_kind::hann, window_kind::hamming,
                      window_kind::blackman, window_kind::kaiser}) {
        const auto w = make_window(kind, 65, 8.0);
        ASSERT_EQ(w.size(), 65u);
        for (std::size_t i = 0; i < w.size(); ++i)
            EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12)
                << to_string(kind) << " i=" << i;
        // Peak at centre, normalised to <= 1 with max == centre.
        const double centre = w[32];
        for (double v : w) {
            EXPECT_LE(v, centre + 1e-12);
            EXPECT_GE(v, -1e-12);
        }
    }
}

TEST(Windows, RectangularIsAllOnes) {
    const auto w = make_window(window_kind::rectangular, 17);
    for (double v : w)
        EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Windows, HannEndsAtZero) {
    const auto w = make_window(window_kind::hann, 33);
    EXPECT_NEAR(w.front(), 0.0, 1e-12);
    EXPECT_NEAR(w.back(), 0.0, 1e-12);
    EXPECT_NEAR(w[16], 1.0, 1e-12);
}

TEST(Windows, KaiserBetaZeroIsRectangular) {
    const auto w = kaiser_window(21, 0.0);
    for (double v : w)
        EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Windows, KaiserEdgesDropWithBeta) {
    const auto w4 = kaiser_window(33, 4.0);
    const auto w12 = kaiser_window(33, 12.0);
    EXPECT_GT(w4.front(), w12.front());
    EXPECT_NEAR(w4[16], 1.0, 1e-12);
    EXPECT_NEAR(w12[16], 1.0, 1e-12);
}

TEST(Windows, KaiserBetaFormulaRegions) {
    EXPECT_NEAR(kaiser_beta_for_attenuation(13.0), 0.0, 1e-12);
    EXPECT_NEAR(kaiser_beta_for_attenuation(60.0), 0.1102 * (60.0 - 8.7),
                1e-9);
    const double a30 = kaiser_beta_for_attenuation(30.0);
    EXPECT_GT(a30, 1.0);
    EXPECT_LT(a30, 4.0);
}

TEST(Windows, ContinuousKaiserMatchesDiscrete) {
    // kaiser_window_at(u) sampled at tap positions equals kaiser_window.
    const std::size_t n = 41;
    const double beta = 8.0;
    const auto w = kaiser_window(n, beta);
    const double half = static_cast<double>(n - 1) / 2.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double u = (static_cast<double>(i) - half) / half;
        EXPECT_NEAR(kaiser_window_at(u, beta), w[i], 1e-12) << "i=" << i;
    }
    EXPECT_DOUBLE_EQ(kaiser_window_at(1.5, beta), 0.0);
    EXPECT_DOUBLE_EQ(kaiser_window_at(-2.0, beta), 0.0);
}

TEST(Windows, SumsAndPower) {
    const auto w = make_window(window_kind::hann, 64);
    EXPECT_NEAR(window_sum(w), 31.5, 0.2);      // ~N/2 for Hann
    EXPECT_NEAR(window_power(w), 23.6, 0.5);    // ~3N/8 for Hann
}

TEST(Windows, SingleElementAndErrors) {
    const auto w = make_window(window_kind::kaiser, 1, 8.0);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
    EXPECT_THROW(make_window(window_kind::hann, 0),
                 sdrbist::contract_violation);
    EXPECT_THROW(kaiser_window(8, -1.0), sdrbist::contract_violation);
}

} // namespace

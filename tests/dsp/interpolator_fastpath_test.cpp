// Accuracy regression for the polyphase-LUT windowed-sinc fast path
// against the retained transcendental reference (at_reference), plus
// bit-for-bit guarantees for the batch and uniform-grid entry points.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "core/random.hpp"
#include "core/units.hpp"
#include "dsp/interpolator.hpp"

namespace {

using namespace sdrbist;
using dsp::complex_interpolator;
using dsp::real_interpolator;

std::vector<double> bandlimited_signal(std::size_t n, double fs,
                                       std::uint64_t seed) {
    // Multitone well inside the first Nyquist zone.
    rng gen(seed);
    std::vector<double> f(7), a(7), p(7);
    for (std::size_t i = 0; i < f.size(); ++i) {
        f[i] = gen.uniform(0.01 * fs, 0.35 * fs);
        a[i] = gen.uniform(0.2, 1.0);
        p[i] = gen.uniform(0.0, two_pi);
    }
    std::vector<double> x(n);
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t i = 0; i < f.size(); ++i)
            x[k] += a[i] * std::cos(two_pi * f[i] *
                                        static_cast<double>(k) / fs +
                                    p[i]);
    return x;
}

double signal_rms(const std::vector<double>& x) {
    double acc = 0.0;
    for (double v : x)
        acc += v * v;
    return std::sqrt(acc / static_cast<double>(x.size()));
}

TEST(SincInterpolatorFastPath, MatchesReferenceOnInBandSignal) {
    const double fs = 100.0 * MHz;
    const auto x = bandlimited_signal(512, fs, 0xFA57);
    const double scale = signal_rms(x);
    const real_interpolator interp(x, fs, 32, 10.0);

    rng gen(0x11);
    double worst = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const double t = gen.uniform(interp.valid_begin(),
                                     interp.valid_end());
        worst = std::max(worst,
                         std::abs(interp.at(t) - interp.at_reference(t)));
    }
    EXPECT_LT(worst / scale, 1e-9);
}

TEST(SincInterpolatorFastPath, MatchesReferenceAtRecordEdges) {
    // The clamped-loop edge path must agree with the reference's
    // skip-out-of-range semantics, including instants outside the record.
    const double fs = 100.0 * MHz;
    const auto x = bandlimited_signal(256, fs, 0xED6E);
    const double scale = signal_rms(x);
    const real_interpolator interp(x, fs, 16, 8.0);

    rng gen(0x12);
    const double span = static_cast<double>(x.size()) / fs;
    double worst = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const double t = gen.uniform(-0.1 * span, 1.1 * span);
        worst = std::max(worst,
                         std::abs(interp.at(t) - interp.at_reference(t)));
    }
    EXPECT_LT(worst / scale, 1e-9);
}

TEST(SincInterpolatorFastPath, ComplexMatchesReference) {
    const double fs = 160.0 * MHz;
    std::vector<std::complex<double>> x(512);
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double tt = static_cast<double>(i) / fs;
        x[i] = std::polar(1.0, two_pi * 9.0 * MHz * tt) +
               std::polar(0.5, -two_pi * 21.0 * MHz * tt + 0.7);
    }
    const complex_interpolator interp(x, fs, 32, 10.0);
    rng gen(0x13);
    double worst = 0.0;
    for (int i = 0; i < 1000; ++i) {
        const double t = gen.uniform(interp.valid_begin(),
                                     interp.valid_end());
        worst = std::max(worst,
                         std::abs(interp.at(t) - interp.at_reference(t)));
    }
    EXPECT_LT(worst, 1e-9);
}

TEST(SincInterpolatorFastPath, ExactAtSampleInstants) {
    // frac = 0 hits a LUT node, so sample instants stay exact (the cubic
    // blend weights collapse to the node row).
    const double fs = 50.0 * MHz;
    const auto x = bandlimited_signal(300, fs, 0x5A);
    const real_interpolator interp(x, fs, 16, 9.0);
    for (std::size_t k = 40; k < 80; ++k)
        EXPECT_NEAR(interp.at(static_cast<double>(k) / fs), x[k], 1e-9)
            << k;
}

TEST(SincInterpolatorFastPath, UniformGridIsBitIdenticalToScalar) {
    const double fs = 100.0 * MHz;
    const auto x = bandlimited_signal(400, fs, 0xB17);
    const real_interpolator interp(x, fs, 24, 9.5);
    const double t0 = interp.valid_begin();
    const double rate_out = 3.7 * fs;
    const std::size_t n = 500;
    const auto grid = interp.uniform_grid(t0, rate_out, n);
    ASSERT_EQ(grid.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = t0 + static_cast<double>(i) / rate_out;
        EXPECT_EQ(grid[i], interp.at(t)) << i;
    }
}

TEST(SincInterpolatorFastPath, BatchIsBitIdenticalToScalar) {
    const double fs = 80.0 * MHz;
    const auto x = bandlimited_signal(256, fs, 0xBA7C);
    const real_interpolator interp(x, fs, 16, 8.0);
    rng gen(0x14);
    std::vector<double> t(257);
    for (auto& v : t)
        v = gen.uniform(0.0, static_cast<double>(x.size()) / fs);
    const auto batch = interp.at(t);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(batch[i], interp.at(t[i])) << i;
}

TEST(SincInterpolatorFastPath, PhaseResolutionControlsLutError) {
    // The blend error falls as phase_steps^-4; a very coarse table must be
    // measurably worse than the default, and the default essentially exact.
    const double fs = 100.0 * MHz;
    const auto x = bandlimited_signal(512, fs, 0x9D);
    const double scale = signal_rms(x);
    const real_interpolator coarse(x, fs, 32, 10.0, 64);
    const real_interpolator fine(x, fs, 32, 10.0, 1024);

    rng gen(0x15);
    double worst_coarse = 0.0;
    double worst_fine = 0.0;
    for (int i = 0; i < 1500; ++i) {
        const double t = gen.uniform(coarse.valid_begin(),
                                     coarse.valid_end());
        const double ref = coarse.at_reference(t);
        worst_coarse = std::max(worst_coarse, std::abs(coarse.at(t) - ref));
        worst_fine = std::max(worst_fine, std::abs(fine.at(t) - ref));
    }
    EXPECT_LT(worst_fine, worst_coarse);
    EXPECT_LT(worst_fine / scale, 1e-11);
    // Even the coarse table is far below the kernel's stopband floor.
    EXPECT_LT(worst_coarse / scale, 1e-5);
}

TEST(SincInterpolatorFastPath, StopbandFloorPreserved) {
    // The LUT path must keep the windowed-sinc kernel's reconstruction
    // quality: a mid-band tone reproduces to the window's stopband floor.
    const double fs = 100.0 * MHz;
    const double f = 5.0 * MHz;
    std::vector<double> x(512);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::cos(two_pi * f * static_cast<double>(i) / fs + 0.3);
    const real_interpolator interp(x, fs, 32, 10.0);
    double err = 0.0;
    for (double t = interp.valid_begin(); t < interp.valid_end();
         t += 0.313 / fs)
        err = std::max(err,
                       std::abs(interp.at(t) - std::cos(two_pi * f * t + 0.3)));
    EXPECT_LT(err, 1e-5);
}

} // namespace

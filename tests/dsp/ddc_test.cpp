// Digital downconversion tests: mixing, filtering, decimation, auto-sizing.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "dsp/ddc.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::dsp;

TEST(Ddc, ToneAtCarrierBecomesDc) {
    const double fs = 1.0 * GHz;
    const double fc = 100.0 * MHz;
    std::vector<double> x(20000);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = std::cos(two_pi * fc * static_cast<double>(n) / fs + 0.4);
    ddc_options opt;
    opt.carrier_hz = fc;
    opt.sample_rate = fs;
    opt.decimation = 10;
    opt.cutoff_hz = 10.0 * MHz;
    const auto env = digital_downconvert(x, opt);
    // Envelope of a unit cosine is the unit phasor e^{j0.4}.
    for (std::size_t m = env.size() / 4; m < 3 * env.size() / 4; ++m) {
        EXPECT_NEAR(std::abs(env[m]), 1.0, 2e-3) << m;
        EXPECT_NEAR(std::arg(env[m]), 0.4, 2e-3) << m;
    }
}

TEST(Ddc, OffsetToneBecomesComplexExponential) {
    const double fs = 1.0 * GHz;
    const double fc = 100.0 * MHz;
    const double off = 3.0 * MHz;
    std::vector<double> x(40000);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = std::cos(two_pi * (fc + off) * static_cast<double>(n) / fs);
    ddc_options opt;
    opt.carrier_hz = fc;
    opt.sample_rate = fs;
    opt.decimation = 20;
    opt.cutoff_hz = 8.0 * MHz;
    const auto env = digital_downconvert(x, opt);
    const double fs_out = fs / 20.0;
    for (std::size_t m = env.size() / 4; m < env.size() / 2; ++m) {
        const double t = static_cast<double>(m) / fs_out;
        const auto expect = std::polar(1.0, two_pi * off * t);
        EXPECT_LT(std::abs(env[m] - expect), 5e-3) << m;
    }
}

TEST(Ddc, RejectsOutOfBandTone) {
    const double fs = 1.0 * GHz;
    const double fc = 100.0 * MHz;
    std::vector<double> x(40000);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = std::cos(two_pi * (fc + 40.0 * MHz) * static_cast<double>(n) / fs);
    ddc_options opt;
    opt.carrier_hz = fc;
    opt.sample_rate = fs;
    opt.decimation = 20; // fs_out = 50 MHz; 40 MHz offset > cutoff
    opt.cutoff_hz = 8.0 * MHz;
    const auto env = digital_downconvert(x, opt);
    for (std::size_t m = env.size() / 4; m < 3 * env.size() / 4; ++m)
        EXPECT_LT(std::abs(env[m]), 2e-3);
}

TEST(Ddc, AutoTapsPreventNoiseFolding) {
    // Wideband noise outside the cutoff must not fold into the output even
    // under heavy decimation (regression test for the auto tap sizing).
    const double fs = 2.0 * GHz;
    const double fc = 400.0 * MHz;
    rng gen(17);
    std::vector<double> x(1 << 17);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = 0.5 * std::cos(two_pi * fc * static_cast<double>(n) / fs) +
               0.05 * gen.gaussian();
    ddc_options opt;
    opt.carrier_hz = fc;
    opt.sample_rate = fs;
    opt.decimation = 64; // fs_out = 31.25 MHz
    opt.cutoff_hz = 5.0 * MHz;
    const auto env = digital_downconvert(x, opt);
    // The tone envelope dominates; residual fluctuation is the in-band
    // noise (5/1000 of total noise power) only.
    double err = 0.0;
    std::size_t count = 0;
    for (std::size_t m = env.size() / 4; m < 3 * env.size() / 4; ++m) {
        err += std::norm(env[m] - std::complex<double>(0.5, 0.0));
        ++count;
    }
    err = std::sqrt(err / static_cast<double>(count));
    // In-band noise prediction: density 2·sigma^2/fs over 2·cutoff, times 2
    // from the DDC gain convention; allow generous margin.
    EXPECT_LT(err, 0.01);
}

TEST(Ddc, GroupDelayIsCompensated) {
    // A burst edge must appear at the right output index.
    const double fs = 1.0 * GHz;
    const double fc = 100.0 * MHz;
    std::vector<double> x(30000, 0.0);
    for (std::size_t n = 15000; n < x.size(); ++n)
        x[n] = std::cos(two_pi * fc * static_cast<double>(n) / fs);
    ddc_options opt;
    opt.carrier_hz = fc;
    opt.sample_rate = fs;
    opt.decimation = 10;
    opt.cutoff_hz = 20.0 * MHz;
    const auto env = digital_downconvert(x, opt);
    // The 50% amplitude point should fall near output sample 1500.
    std::size_t rise = 0;
    for (std::size_t m = 0; m < env.size(); ++m)
        if (std::abs(env[m]) > 0.5) {
            rise = m;
            break;
        }
    EXPECT_NEAR(static_cast<double>(rise), 1500.0, 10.0);
}

TEST(Ddc, Preconditions) {
    std::vector<double> x(100, 0.0);
    ddc_options opt;
    opt.sample_rate = 0.0;
    EXPECT_THROW(digital_downconvert(x, opt), contract_violation);
    opt.sample_rate = 1e9;
    opt.decimation = 0;
    EXPECT_THROW(digital_downconvert(x, opt), contract_violation);
    opt.decimation = 2;
    opt.cutoff_hz = 1e9; // >= fs/2
    EXPECT_THROW(digital_downconvert(x, opt), contract_violation);
}

} // namespace

// Sine-fit (Jamal-adapted) skew estimator tests.
#include <gtest/gtest.h>

#include <cmath>

#include "adc/tiadc.hpp"
#include "calib/jamal.hpp"
#include "core/contracts.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"

namespace {

using namespace sdrbist;

adc::nonuniform_capture capture_tone(double f_rf, double d_programmed,
                                     double jitter, int bits,
                                     std::uint64_t seed = 0x10) {
    rf::multitone_signal tone({{f_rf, 0.9, 0.7}}, 20.0 * us);
    adc::tiadc_config tc;
    tc.channel_rate_hz = 90.0 * MHz;
    tc.quant.bits = bits;
    tc.quant.full_scale = 1.5;
    tc.jitter_rms_s = jitter;
    tc.delay_element.step_s = 1.0 * ps;
    tc.delay_element.code_max = 1023;
    tc.seed = seed;
    adc::bp_tiadc adc(tc);
    adc.program_delay(d_programmed);
    return adc.capture(tone, 1.0 * us, 720, 3);
}

TEST(JamalSineFit, RecoversDelayCleanConditions) {
    // Tone folding to 0.46·B (the paper's better case).
    const double f_rf = 1.0314 * GHz;
    const auto cap = capture_tone(f_rf, 180.0 * ps, 0.0, 16);
    calib::jamal_options opt;
    opt.max_delay_s = 483.0 * ps;
    const auto est = calib::estimate_skew_sine_fit(cap, f_rf, opt);
    EXPECT_NEAR(est.d_hat, 180.0 * ps, 0.05 * ps);
    EXPECT_NEAR(est.alias_freq_norm, 0.46, 1e-6);
}

class JamalFrequencies : public ::testing::TestWithParam<double> {};

TEST_P(JamalFrequencies, RecoversUnderPaperNoise) {
    // omega0/B parameterised; 10 bits + 3 ps jitter (paper conditions).
    const double omega = GetParam();
    const double b = 90.0 * MHz;
    const double fc = 1.0 * GHz;
    const double frac_fc = std::fmod(fc / b, 1.0);
    double delta = (omega - frac_fc) * b;
    if (delta < -0.45 * b)
        delta += b;
    const double f_rf = fc + delta;

    const auto cap = capture_tone(f_rf, 180.0 * ps, 3.0 * ps, 10);
    calib::jamal_options opt;
    opt.max_delay_s = 483.0 * ps;
    const auto est = calib::estimate_skew_sine_fit(cap, f_rf, opt);
    EXPECT_NEAR(est.d_hat, 180.0 * ps, 2.0 * ps) << "omega=" << omega;
}

INSTANTIATE_TEST_SUITE_P(Omegas, JamalFrequencies,
                         ::testing::Values(0.22, 0.31, 0.40, 0.46),
                         [](const auto& info) {
                             std::string name = "w";
                             name += std::to_string(
                                 static_cast<int>(info.param * 100.0));
                             return name;
                         });

TEST(JamalSineFit, HandlesSpectralInversion) {
    // A tone whose fold lands in the second half of the Nyquist zone
    // (nu > 0.5 before folding) inverts the observed phase.
    const double f_rf = 0.97 * GHz; // 0.97e9/90e6 = 10.777 -> nu = 0.777
    const auto cap = capture_tone(f_rf, 200.0 * ps, 0.0, 16);
    calib::jamal_options opt;
    opt.max_delay_s = 483.0 * ps;
    const auto est = calib::estimate_skew_sine_fit(cap, f_rf, opt);
    EXPECT_TRUE(est.spectrum_inverted);
    EXPECT_NEAR(est.d_hat, 200.0 * ps, 0.1 * ps);
}

TEST(JamalSineFit, VariousTrueDelays) {
    const double f_rf = 1.0314 * GHz;
    for (double d : {60.0 * ps, 120.0 * ps, 250.0 * ps, 400.0 * ps}) {
        const auto cap = capture_tone(f_rf, d, 0.0, 16);
        calib::jamal_options opt;
        opt.max_delay_s = 483.0 * ps;
        const auto est = calib::estimate_skew_sine_fit(cap, f_rf, opt);
        EXPECT_NEAR(est.d_hat, d, 0.1 * ps) << d / ps;
    }
}

TEST(JamalSineFit, ResidualReportsFitQuality) {
    const double f_rf = 1.0314 * GHz;
    const auto clean = capture_tone(f_rf, 180.0 * ps, 0.0, 16);
    const auto noisy = capture_tone(f_rf, 180.0 * ps, 10.0 * ps, 8);
    calib::jamal_options opt;
    opt.max_delay_s = 483.0 * ps;
    EXPECT_LT(calib::estimate_skew_sine_fit(clean, f_rf, opt).fit_residual_rms,
              calib::estimate_skew_sine_fit(noisy, f_rf, opt).fit_residual_rms);
}

TEST(JamalSineFit, RequiresKnownToneAwayFromGridDegeneracy) {
    // A tone folding exactly to DC or Nyquist cannot be fitted; the
    // estimator rejects it (this is the "restrictive" part the paper
    // complains about).
    const double f_rf = 0.99 * GHz; // 11.0·B exactly -> nu = 0
    const auto cap = capture_tone(f_rf, 180.0 * ps, 0.0, 16);
    EXPECT_THROW((void)calib::estimate_skew_sine_fit(cap, f_rf, {}),
                 contract_violation);
}

TEST(JamalSineFit, Preconditions) {
    const auto cap = capture_tone(1.0314 * GHz, 180.0 * ps, 0.0, 16);
    EXPECT_THROW((void)calib::estimate_skew_sine_fit(cap, -1.0, {}),
                 contract_violation);
}

} // namespace

// Background gain/offset channel-mismatch calibration tests.
#include <gtest/gtest.h>

#include "adc/tiadc.hpp"
#include "calib/gain_offset.hpp"
#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"

namespace {

using namespace sdrbist;


adc::nonuniform_capture capture_with_mismatch(double gain_err, double off_err,
                                              std::uint64_t seed = 0x20) {
    rng gen(seed);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 5; ++i)
        tones.push_back({gen.uniform(0.96 * GHz, 1.04 * GHz),
                         gen.uniform(0.1, 0.3), gen.uniform(0.0, two_pi)});
    rf::multitone_signal sig(std::move(tones), 20.0 * us);

    adc::tiadc_config tc;
    tc.channel_rate_hz = 90.0 * MHz;
    tc.quant.bits = 14;
    tc.quant.full_scale = 2.0;
    tc.jitter_rms_s = 0.0;
    tc.ch1_gain_error = gain_err;
    tc.ch1_offset_error = off_err;
    tc.delay_element.step_s = 1.0 * ps;
    tc.delay_element.code_max = 1023;
    adc::bp_tiadc adc(tc);
    adc.program_delay(180.0 * ps);
    return adc.capture(sig, 1.0 * us, 1024, 0);
}

TEST(GainOffsetCalib, EstimatesInjectedMismatch) {
    const auto cap = capture_with_mismatch(0.08, 0.05);
    const auto est = calib::estimate_gain_offset(cap);
    EXPECT_NEAR(est.offset_odd, 0.05, 5e-3);
    EXPECT_NEAR(est.offset_even, 0.0, 5e-3);
    EXPECT_NEAR(est.gain_ratio, 1.08, 0.02);
}

TEST(GainOffsetCalib, CorrectionRestoresChannelBalance) {
    const auto cap = capture_with_mismatch(0.08, 0.05);
    const auto est = calib::estimate_gain_offset(cap);
    const auto fixed = calib::apply_gain_offset_correction(cap, est);
    EXPECT_NEAR(mean(fixed.odd), 0.0, 5e-3);
    EXPECT_NEAR(rms(fixed.odd) / rms(fixed.even), 1.0, 0.02);
    // Metadata preserved.
    EXPECT_DOUBLE_EQ(fixed.period_s, cap.period_s);
    EXPECT_DOUBLE_EQ(fixed.true_delay_s, cap.true_delay_s);
}

TEST(GainOffsetCalib, IdealChannelsNeedNoCorrection) {
    const auto cap = capture_with_mismatch(0.0, 0.0);
    const auto est = calib::estimate_gain_offset(cap);
    EXPECT_NEAR(est.gain_ratio, 1.0, 0.01);
    EXPECT_NEAR(est.offset_even, 0.0, 2e-3);
    EXPECT_NEAR(est.offset_odd, 0.0, 2e-3);
}

TEST(GainOffsetCalib, Preconditions) {
    adc::nonuniform_capture tiny;
    tiny.even.resize(4);
    tiny.odd.resize(4);
    EXPECT_THROW(calib::estimate_gain_offset(tiny), contract_violation);
    adc::nonuniform_capture ok;
    ok.even.resize(32, 1.0);
    ok.odd.resize(32, 1.0);
    calib::gain_offset_estimate bad;
    bad.gain_ratio = 0.0;
    EXPECT_THROW(calib::apply_gain_offset_correction(ok, bad),
                 contract_violation);
}

} // namespace

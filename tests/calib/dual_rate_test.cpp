// Tests of the dual-rate cost function (paper eqs. (7)-(9)): conditions,
// search interval m, and — crucially — the unique minimum at D̂ = D.
#include <gtest/gtest.h>

#include <cmath>

#include "adc/tiadc.hpp"
#include "calib/dual_rate.hpp"
#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"

namespace {

using namespace sdrbist;
using calib::dual_rate_capture;
using sampling::band_around;

// Build the paper's capture scenario around a multitone test signal.
// A multitone (exact evaluation) keeps interpolation error out of the
// assertions; the BIST integration tests use the full Tx chain instead.
struct scenario {
    dual_rate_capture capture;
    std::vector<double> probes;
    double d_true = 0.0;
};

scenario make_scenario(double d_programmed, double jitter_rms, int bits,
                       std::uint64_t seed = 0xFEED) {
    const double fc = 1.0 * GHz;
    const double b = 90.0 * MHz;

    // In-band tones limited to the slow band (B1 = 45 MHz wide): the slow
    // capture must also see the whole signal.
    rng gen(seed);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 5; ++i) {
        rf::tone t;
        t.frequency_hz = gen.uniform(fc - 18.0 * MHz, fc + 18.0 * MHz);
        t.amplitude = gen.uniform(0.1, 0.25);
        t.phase_rad = gen.uniform(0.0, two_pi);
        tones.push_back(t);
    }
    const std::size_t n_fast = 720;
    const double duration = static_cast<double>(n_fast) / b + 1.0 * us;
    auto sig = std::make_shared<rf::multitone_signal>(std::move(tones),
                                                      duration);

    adc::tiadc_config tc;
    tc.channel_rate_hz = b;
    tc.quant.bits = bits;
    tc.quant.full_scale = 1.5;
    tc.jitter_rms_s = jitter_rms;
    tc.delay_element.step_s = 1.0 * ps;
    tc.delay_element.code_max = 1000;
    tc.seed = seed ^ 0xA5A5;

    adc::bp_tiadc sampler(tc);
    sampler.program_delay(d_programmed);

    scenario s;
    s.d_true = sampler.actual_delay();
    s.capture.fast = sampler.capture(*sig, 0.5 * us, n_fast, 0);
    s.capture.slow =
        sampler.capture_divided(*sig, 0.5 * us, n_fast / 2, 2, 1);
    s.capture.band_fast = band_around(fc, b);
    s.capture.band_slow = band_around(fc, b / 2.0);

    const auto [lo, hi] = calib::valid_probe_interval(s.capture);
    rng probe_gen(seed ^ 0x77);
    s.probes = calib::make_probe_times(probe_gen, 300, lo, hi);
    return s;
}

TEST(DualRateConditions, PaperSetupSatisfiesEq9) {
    const auto s = make_scenario(180.0 * ps, 0.0, 12);
    EXPECT_TRUE(calib::dual_rate_conditions_ok(s.capture));
}

TEST(DualRateConditions, SearchIntervalMatchesPaper) {
    // Paper: "For these values of B, B1, D, and fc, m = 483 ps".
    const auto s = make_scenario(180.0 * ps, 0.0, 12);
    EXPECT_NEAR(calib::max_search_delay(s.capture), 483.0 * ps, 1.0 * ps);
}

TEST(DualRateCost, MinimumAtTrueDelayNoiselessCase) {
    const auto s = make_scenario(180.0 * ps, 0.0, 16);
    const double cost_at_d = calib::skew_cost(s.capture, s.d_true, s.probes);
    // Cost at the truth is far below cost anywhere meaningfully away.
    for (const double off : {-40.0 * ps, -10.0 * ps, 10.0 * ps, 40.0 * ps}) {
        const double c = calib::skew_cost(s.capture, s.d_true + off, s.probes);
        EXPECT_GT(c, 4.0 * cost_at_d) << "offset " << off / ps << " ps";
    }
}

TEST(DualRateCost, UnimodalOnSearchInterval) {
    // Sample the cost on a grid over ]0, m[ and verify a single local
    // minimum (up to grid resolution) located at the true delay.
    const auto s = make_scenario(180.0 * ps, 3.0 * ps, 10);
    const double m = calib::max_search_delay(s.capture);

    std::vector<double> dgrid, cost;
    for (double d = 0.05 * m; d <= 0.95 * m; d += 0.0125 * m) {
        dgrid.push_back(d);
        cost.push_back(calib::skew_cost(s.capture, d, s.probes));
    }
    const auto min_it = std::min_element(cost.begin(), cost.end());
    const std::size_t min_idx =
        static_cast<std::size_t>(min_it - cost.begin());
    EXPECT_NEAR(dgrid[min_idx], s.d_true, 0.02 * m);

    // Monotone decrease towards the minimum from both sides (allowing tiny
    // noise-induced wiggle: each step at least must not rise by > 5 %).
    for (std::size_t i = 1; i <= min_idx; ++i)
        EXPECT_LT(cost[i], cost[i - 1] * 1.10) << "left branch i=" << i;
    for (std::size_t i = min_idx + 1; i < cost.size(); ++i)
        EXPECT_GT(cost[i] * 1.10, cost[i - 1]) << "right branch i=" << i;
}

TEST(DualRateCost, JitterRaisesCostFloor) {
    const auto clean = make_scenario(180.0 * ps, 0.0, 10);
    const auto jittery = make_scenario(180.0 * ps, 3.0 * ps, 10);
    const double c_clean =
        calib::skew_cost(clean.capture, clean.d_true, clean.probes);
    const double c_jitter =
        calib::skew_cost(jittery.capture, jittery.d_true, jittery.probes);
    EXPECT_GT(c_jitter, c_clean);
}

TEST(DualRateCost, ProbeHelpersRespectRecordGeometry) {
    const auto s = make_scenario(180.0 * ps, 0.0, 10);
    const auto [lo, hi] = calib::valid_probe_interval(s.capture);
    EXPECT_LT(lo, hi);
    for (double t : s.probes) {
        EXPECT_GE(t, lo);
        EXPECT_LE(t, hi);
    }
    // Paper's window: N=300 samples within ~[0.47, 1.7] µs of a record —
    // our geometry must give a usable window of comparable size.
    EXPECT_GT(hi - lo, 1.0 * us);
}

TEST(DualRateCost, RejectsEmptyProbes) {
    const auto s = make_scenario(180.0 * ps, 0.0, 10);
    EXPECT_THROW(calib::skew_cost(s.capture, 180.0 * ps, {}),
                 contract_violation);
}

} // namespace

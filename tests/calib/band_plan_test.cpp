// Band-planning tests: eq. (9) conditions, slow-band offsets, the numerical
// identifiability (discrimination) metric and degenerate-carrier handling.
#include <gtest/gtest.h>

#include <cmath>

#include "calib/dual_rate.hpp"
#include "core/contracts.hpp"
#include "core/units.hpp"

namespace {

using namespace sdrbist;
using calib::band_plan;
using sampling::band_around;

TEST(Eq9Conditions, PaperSetupHolds) {
    const auto fast = band_around(1.0 * GHz, 90.0 * MHz);
    const auto slow = band_around(1.0 * GHz, 45.0 * MHz);
    EXPECT_TRUE(calib::dual_rate_conditions_ok(fast, slow));
    EXPECT_NEAR(calib::max_search_delay(fast, slow), 483.0 * ps, 1.0 * ps);
}

TEST(Eq9Conditions, DegenerateCarrierViolates) {
    // fc = 900 MHz is an exact multiple of B1 = 45 MHz: k1⁺·B1 = k⁺·B.
    const auto fast = band_around(900.0 * MHz, 90.0 * MHz);
    const auto slow = band_around(900.0 * MHz, 45.0 * MHz);
    EXPECT_FALSE(calib::dual_rate_conditions_ok(fast, slow));
}

TEST(SlowBandOffset, CentredWhenAdmissible) {
    const auto fast = band_around(1.0 * GHz, 90.0 * MHz);
    const double off =
        calib::choose_slow_band_offset(fast, 45.0 * MHz, 15.0 * MHz);
    EXPECT_NEAR(off, 0.0, 1.0 * MHz);
}

TEST(SlowBandOffset, ResolvesNonDegenerateCollisions) {
    // 1.2 GHz: centred slow band violates eq. (9); a shifted one exists.
    const auto fast = band_around(1.2 * GHz, 90.0 * MHz);
    const auto centred = band_around(1.2 * GHz, 45.0 * MHz);
    EXPECT_FALSE(calib::dual_rate_conditions_ok(fast, centred));
    const double off =
        calib::choose_slow_band_offset(fast, 45.0 * MHz, 15.0 * MHz);
    EXPECT_GT(std::abs(off), 1.0 * MHz);
    EXPECT_TRUE(calib::dual_rate_conditions_ok(
        fast, band_around(1.2 * GHz + off, 45.0 * MHz)));
    // Signal still fits: |off| within B1/2 - occ/2.
    EXPECT_LT(std::abs(off), 22.5 * MHz - 7.5 * MHz);
}

TEST(Discrimination, PaperPlanIsSharp) {
    band_plan plan;
    plan.fast = band_around(1.0 * GHz, 90.0 * MHz);
    plan.slow = band_around(1.0 * GHz, 45.0 * MHz);
    const double disc =
        calib::dual_rate_discrimination(plan, 1.0 * GHz, 15.0 * MHz);
    EXPECT_GT(disc, 1e-2);
}

TEST(Discrimination, SelfImagePlanIsBlind) {
    // The k·B/2 self-image degeneracy at 900 MHz: eq. (9) can be satisfied
    // by shifting, but the discrimination stays poor.
    band_plan plan;
    plan.fast = band_around(902.25 * MHz, 90.0 * MHz);
    plan.slow = band_around(902.25 * MHz, 45.0 * MHz);
    ASSERT_TRUE(calib::dual_rate_conditions_ok(plan.fast, plan.slow));
    const double blind =
        calib::dual_rate_discrimination(plan, 900.0 * MHz, 15.0 * MHz);
    band_plan good;
    good.fast = band_around(1.0 * GHz, 90.0 * MHz);
    good.slow = band_around(1.0 * GHz, 45.0 * MHz);
    const double sharp =
        calib::dual_rate_discrimination(good, 1.0 * GHz, 15.0 * MHz);
    EXPECT_LT(blind, sharp / 10.0);
}

TEST(BandPlan, PrefersCentredBandsAtGoodCarriers) {
    const auto plan =
        calib::choose_band_plan(1.0 * GHz, 90.0 * MHz, 45.0 * MHz, 15.0 * MHz);
    EXPECT_NEAR(plan.fast_offset_hz, 0.0, 1.0);
    EXPECT_NEAR(plan.slow_offset_hz, 0.0, 1.0 * MHz);
    EXPECT_TRUE(calib::dual_rate_conditions_ok(plan.fast, plan.slow));
}

class BandPlanCarriers : public ::testing::TestWithParam<double> {};

TEST_P(BandPlanCarriers, AlwaysProducesAdmissiblePlan) {
    const double fc = GetParam();
    const auto plan =
        calib::choose_band_plan(fc, 90.0 * MHz, 45.0 * MHz, 15.0 * MHz);
    EXPECT_TRUE(calib::dual_rate_conditions_ok(plan.fast, plan.slow));
    // The signal fits both bands.
    EXPECT_LE(std::abs(plan.fast.centre() - fc),
              45.0 * MHz - 7.5 * MHz);
    EXPECT_LE(std::abs(plan.slow.centre() - fc),
              22.5 * MHz - 7.5 * MHz);
}

INSTANTIATE_TEST_SUITE_P(Carriers, BandPlanCarriers,
                         ::testing::Values(400.0 * MHz, 625.0 * MHz,
                                           1.0 * GHz, 1.2 * GHz, 1.8 * GHz,
                                           2.0 * GHz, 2.43 * GHz),
                         [](const auto& info) {
                             return "fc" + std::to_string(static_cast<int>(
                                               info.param / MHz));
                         });

TEST(BandPlan, Preconditions) {
    EXPECT_THROW(calib::choose_band_plan(-1.0, 90e6, 45e6, 15e6),
                 contract_violation);
    EXPECT_THROW(calib::choose_band_plan(1e9, 90e6, 90e6, 15e6),
                 contract_violation);
    EXPECT_THROW(calib::choose_band_plan(1e9, 90e6, 45e6, 0.0),
                 contract_violation);
    // Occupied bandwidth too large for the slow band.
    EXPECT_THROW(calib::choose_slow_band_offset(
                     band_around(1.0 * GHz, 90.0 * MHz), 45.0 * MHz,
                     44.9 * MHz),
                 contract_violation);
}

} // namespace

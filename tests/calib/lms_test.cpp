// Tests of Algorithm 1 — the LMS-based time-skew estimator.
#include <gtest/gtest.h>

#include "adc/tiadc.hpp"
#include "calib/lms.hpp"
#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"

namespace {

using namespace sdrbist;

struct scenario {
    calib::dual_rate_capture capture;
    std::vector<double> probes;
    double d_true = 0.0;
};

scenario make_paper_scenario(std::uint64_t seed = 0x1234,
                             double jitter = 3.0 * ps, int bits = 10) {
    const double fc = 1.0 * GHz;
    const double b = 90.0 * MHz;
    rng gen(seed);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 6; ++i) {
        rf::tone t;
        t.frequency_hz = gen.uniform(fc - 18.0 * MHz, fc + 18.0 * MHz);
        t.amplitude = gen.uniform(0.08, 0.2);
        t.phase_rad = gen.uniform(0.0, two_pi);
        tones.push_back(t);
    }
    const std::size_t n_fast = 720;
    auto sig = std::make_shared<rf::multitone_signal>(
        std::move(tones), static_cast<double>(n_fast) / b + 1.0 * us);

    adc::tiadc_config tc;
    tc.channel_rate_hz = b;
    tc.quant.bits = bits;
    tc.quant.full_scale = 1.2;
    tc.jitter_rms_s = jitter;
    tc.delay_element.step_s = 1.0 * ps;
    tc.delay_element.code_max = 1000;
    tc.seed = seed * 7919;

    adc::bp_tiadc sampler(tc);
    sampler.program_delay(180.0 * ps);

    scenario s;
    s.d_true = sampler.actual_delay();
    s.capture.fast = sampler.capture(*sig, 0.5 * us, n_fast, 0);
    s.capture.slow = sampler.capture_divided(*sig, 0.5 * us, n_fast / 2, 2, 1);
    s.capture.band_fast = sampling::band_around(fc, b);
    s.capture.band_slow = sampling::band_around(fc, b / 2.0);

    const auto [lo, hi] = calib::valid_probe_interval(s.capture);
    rng probe_gen(seed ^ 0xFA11);
    s.probes = calib::make_probe_times(probe_gen, 300, lo, hi);
    return s;
}

// Paper Fig. 6: the algorithm converges for starting points across the
// whole ]0, 480 ps[ interval, "every time, in less than 20 iterations".
class LmsFromStart : public ::testing::TestWithParam<double> {};

TEST_P(LmsFromStart, ConvergesToTrueDelay) {
    const auto s = make_paper_scenario();
    calib::lms_options opt;
    opt.mu0 = 1e-12;
    opt.max_iterations = 40;
    const calib::lms_skew_estimator est(opt);
    const auto r = est.estimate(s.capture, GetParam(), s.probes);
    EXPECT_NEAR(r.d_hat, s.d_true, 1.0 * ps)
        << "from D0 = " << GetParam() / ps << " ps";
}

INSTANTIATE_TEST_SUITE_P(StartingPoints, LmsFromStart,
                         ::testing::Values(50.0 * ps, 100.0 * ps, 220.0 * ps,
                                           350.0 * ps, 400.0 * ps),
                         [](const auto& info) {
                             return "D0_" + std::to_string(static_cast<int>(
                                                info.param / ps));
                         });

TEST(LmsSkew, NoiselessConvergesTightly) {
    const auto s = make_paper_scenario(0x9999, /*jitter=*/0.0, /*bits=*/14);
    const calib::lms_skew_estimator est{calib::lms_options{}};
    const auto r = est.estimate(s.capture, 100.0 * ps, s.probes);
    EXPECT_NEAR(r.d_hat, s.d_true, 0.2 * ps);
}

TEST(LmsSkew, TraceIsRecordedAndCostDecreasesOverall) {
    const auto s = make_paper_scenario();
    const calib::lms_skew_estimator est{calib::lms_options{}};
    const auto r = est.estimate(s.capture, 50.0 * ps, s.probes);
    ASSERT_GE(r.trace.size(), 3u);
    EXPECT_LT(r.trace.back().cost, r.trace.front().cost);
    // Final cost must be the minimum seen (monotone acceptance).
    for (const auto& p : r.trace)
        EXPECT_GE(p.cost * 1.0000001, r.final_cost);
}

TEST(LmsSkew, ConvergesWithinPaperIterationBudget) {
    // Paper: "converges, every time, in less than 20 iterations".
    for (const double d0 : {50.0 * ps, 100.0 * ps, 350.0 * ps, 400.0 * ps}) {
        const auto s = make_paper_scenario();
        calib::lms_options opt;
        opt.max_iterations = 20;
        const calib::lms_skew_estimator est(opt);
        const auto r = est.estimate(s.capture, d0, s.probes);
        EXPECT_NEAR(r.d_hat, s.d_true, 1.5 * ps) << "D0=" << d0 / ps;
    }
}

TEST(LmsSkew, InsensitiveToStartingPoint) {
    // Table I: identical sub-0.1 ps errors from D0 = 50 ps and 400 ps.
    const auto s = make_paper_scenario();
    const calib::lms_skew_estimator est{calib::lms_options{}};
    const auto r1 = est.estimate(s.capture, 50.0 * ps, s.probes);
    const auto r2 = est.estimate(s.capture, 400.0 * ps, s.probes);
    EXPECT_NEAR(r1.d_hat, r2.d_hat, 0.5 * ps);
}

TEST(LmsSkew, RejectsOutOfRangeStart) {
    const auto s = make_paper_scenario();
    const calib::lms_skew_estimator est{calib::lms_options{}};
    const double m = calib::max_search_delay(s.capture);
    EXPECT_THROW((void)est.estimate(s.capture, -1.0 * ps, s.probes),
                 contract_violation);
    EXPECT_THROW((void)est.estimate(s.capture, m * 1.01, s.probes),
                 contract_violation);
}

TEST(LmsSkew, CostEvaluationsAreBounded) {
    const auto s = make_paper_scenario();
    calib::lms_options opt;
    opt.max_iterations = 20;
    const calib::lms_skew_estimator est(opt);
    const auto r = est.estimate(s.capture, 100.0 * ps, s.probes);
    // Each iteration costs a handful of evaluations (gradient + halvings).
    EXPECT_LE(r.cost_evaluations, 200u);
}

} // namespace

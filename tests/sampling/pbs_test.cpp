// Tests of the first-order (uniform) bandpass sampling planner — the
// theory behind paper Fig. 3 (Vaughan windows).
#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hpp"
#include "sampling/pbs.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::sampling;

TEST(BandSpec, BasicAccessors) {
    const band_spec b{955.0 * MHz, 1045.0 * MHz};
    EXPECT_DOUBLE_EQ(b.bandwidth(), 90.0 * MHz);
    EXPECT_DOUBLE_EQ(b.centre(), 1.0 * GHz);
    EXPECT_TRUE(b.contains(1.0 * GHz));
    EXPECT_FALSE(b.contains(900.0 * MHz));
    EXPECT_THROW((band_spec{-1.0, 5.0}.validate()), contract_violation);
    EXPECT_THROW((band_spec{5.0, 5.0}.validate()), contract_violation);
}

TEST(PbsWindows, PaperFig3bCase) {
    // Paper Fig. 3b: fl = 2 GHz, B = 30 MHz (fH = 2.03 GHz), fs in
    // [60, 100] MHz.  Around fs ≈ 90 MHz the window is n = 45:
    // [2·2030/45, 2·2000/44] = [90.22, 90.91] MHz.
    const band_spec band{2.0 * GHz, 2.03 * GHz};
    const auto windows = alias_free_windows(band, 60.0 * MHz, 100.0 * MHz);
    ASSERT_FALSE(windows.empty());

    bool found_n45 = false;
    for (const auto& w : windows) {
        if (w.n == 45) {
            found_n45 = true;
            EXPECT_NEAR(w.rates.lo, 2.0 * 2030.0 / 45.0 * MHz, 1.0 * kHz);
            EXPECT_NEAR(w.rates.hi, 2.0 * 2000.0 / 44.0 * MHz, 1.0 * kHz);
            // "a few hundreds of KHz" of margin (paper §II-A).
            EXPECT_LT(w.rates.width(), 1.0 * MHz);
            EXPECT_GT(w.rates.width(), 0.2 * MHz);
        }
    }
    EXPECT_TRUE(found_n45);

    // Windows are disjoint and ascending.
    for (std::size_t i = 1; i < windows.size(); ++i)
        EXPECT_GE(windows[i].rates.lo, windows[i - 1].rates.hi);
}

TEST(PbsWindows, WindowsShrinkNearMinimumRate) {
    // Near fs = 2B the acceptable windows become KHz-narrow (paper: "the
    // subsampling clock should have a precision of few KHz").
    const band_spec band{2.0 * GHz, 2.03 * GHz};
    const auto windows = alias_free_windows(band, 60.0 * MHz, 62.0 * MHz);
    ASSERT_FALSE(windows.empty());
    for (const auto& w : windows)
        EXPECT_LT(w.rates.width(), 50.0 * kHz);
}

TEST(PbsWindows, EveryRateInsideAWindowIsAliasFree) {
    const band_spec band{2.0 * GHz, 2.03 * GHz};
    const auto windows = alias_free_windows(band, 60.0 * MHz, 100.0 * MHz);
    for (const auto& w : windows) {
        const double mid = 0.5 * (w.rates.lo + w.rates.hi);
        EXPECT_TRUE(is_alias_free(band, mid)) << "n=" << w.n;
        // Just outside the window: aliasing.
        if (w.rates.lo > 60.0 * MHz + 1.0) {
            EXPECT_FALSE(is_alias_free(band, w.rates.lo - 10.0 * kHz));
        }
        if (w.rates.hi < 100.0 * MHz - 1.0) {
            EXPECT_FALSE(is_alias_free(band, w.rates.hi + 10.0 * kHz));
        }
    }
}

TEST(PbsWindows, AliasFreenessAgreesWithSpectrumFolding) {
    // Cross-check the window algebra against first principles: a rate is
    // alias-free iff the folded band edges land in one Nyquist zone without
    // wrapping across a zone boundary.
    const band_spec band{200.0 * MHz, 230.0 * MHz};
    for (double fs = 61.0 * MHz; fs < 200.0 * MHz; fs += 0.37 * MHz) {
        const int zone_lo = nyquist_zone(band.f_lo, fs);
        const int zone_hi =
            nyquist_zone(band.f_hi - 1e-3, fs); // open upper edge
        const bool no_overlap = zone_lo == zone_hi;
        EXPECT_EQ(is_alias_free(band, fs), no_overlap) << "fs=" << fs;
    }
}

TEST(PbsWindows, MinimumRateAtLeastTwiceBandwidth) {
    // fs_min >= 2B with equality iff fH/B is an integer.
    const band_spec integer_band{180.0 * MHz, 210.0 * MHz}; // fH/B = 7
    EXPECT_NEAR(min_alias_free_rate(integer_band), 60.0 * MHz, 1.0);

    const band_spec general_band{2.0 * GHz, 2.03 * GHz}; // fH/B = 67.67
    EXPECT_GT(min_alias_free_rate(general_band), 60.0 * MHz);
    EXPECT_TRUE(is_alias_free(general_band,
                              min_alias_free_rate(general_band) + 1.0));
}

TEST(PbsWindows, NyquistRateAlwaysWorks) {
    for (double fh : {100.0 * MHz, 1.0 * GHz, 2.43 * GHz}) {
        const band_spec band{fh - 30.0 * MHz, fh};
        EXPECT_TRUE(is_alias_free(band, 2.0 * fh + 1.0));
    }
}

TEST(PbsWindows, AliasingMarginSignsAndMagnitudes) {
    const band_spec band{2.0 * GHz, 2.03 * GHz};
    // Inside the n = 45 window [90.22, 90.91] MHz.
    const double inside = 90.5 * MHz;
    EXPECT_GT(aliasing_margin(band, inside), 0.0);
    EXPECT_LT(aliasing_margin(band, inside), 0.5 * MHz);
    // In the gray zone between windows.
    const double outside = 91.5 * MHz;
    EXPECT_LT(aliasing_margin(band, outside), 0.0);
}

TEST(NyquistZones, FoldedFrequencyBasics) {
    EXPECT_NEAR(folded_frequency(30.0, 100.0), 30.0, 1e-9);
    EXPECT_NEAR(folded_frequency(70.0, 100.0), 30.0, 1e-9);  // image
    EXPECT_NEAR(folded_frequency(130.0, 100.0), 30.0, 1e-9); // 2nd zone
    EXPECT_NEAR(folded_frequency(950.0, 100.0), 50.0, 1e-9);
    EXPECT_EQ(nyquist_zone(49.0, 100.0), 0);
    EXPECT_EQ(nyquist_zone(51.0, 100.0), 1);
    EXPECT_EQ(nyquist_zone(101.0, 100.0), 2);
}

// Parameterised sweep over band positions: windows must tile the alias-free
// set exactly (no rate outside every window is alias-free).
class PbsWindowCoverage : public ::testing::TestWithParam<double> {};

TEST_P(PbsWindowCoverage, WindowsAreExact) {
    const double fh_over_b = GetParam();
    const double b = 30.0 * MHz;
    const band_spec band{fh_over_b * b - b, fh_over_b * b};
    const auto windows = alias_free_windows(band, 2.0 * b * 0.9, 8.0 * b);
    auto in_any_window = [&](double fs) {
        for (const auto& w : windows)
            if (w.rates.contains(fs))
                return true;
        return false;
    };
    for (double fs = 2.0 * b * 0.9; fs < 8.0 * b; fs += 0.011 * b) {
        EXPECT_EQ(is_alias_free(band, fs), in_any_window(fs))
            << "fs/B=" << fs / b;
    }
}

INSTANTIATE_TEST_SUITE_P(BandPositions, PbsWindowCoverage,
                         ::testing::Values(1.5, 2.0, 2.7, 3.3, 4.9, 6.1, 7.0),
                         [](const auto& info) {
                             return "fHoverB_" +
                                    std::to_string(static_cast<int>(
                                        info.param * 10.0));
                         });

} // namespace

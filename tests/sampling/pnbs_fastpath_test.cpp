// Accuracy regression for the fused PNBS fast path (per-call NCO factors,
// per-tap rotation recurrences) against the retained transcendental
// reference, across a delay × taps grid, plus the uniform()/value()
// bit-for-bit guarantee and the forbidden-delay drift fix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"
#include "sampling/pnbs.hpp"

namespace {

using namespace sdrbist;
using sampling::band_around;
using sampling::band_spec;
using sampling::kohlenberg_kernel;
using sampling::pnbs_options;
using sampling::pnbs_reconstructor;

struct streams {
    std::vector<double> even, odd;
    double rms = 0.0;
};

streams sample_streams(const rf::passband_signal& x, double t, double d,
                       std::size_t n) {
    streams s;
    s.even.resize(n);
    s.odd.resize(n);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        s.even[k] = x.value(static_cast<double>(k) * t);
        s.odd[k] = x.value(static_cast<double>(k) * t + d);
        acc += s.even[k] * s.even[k];
    }
    s.rms = std::sqrt(acc / static_cast<double>(n));
    return s;
}

rf::multitone_signal in_band_multitone(const band_spec& band, double duration,
                                       std::uint64_t seed) {
    rng gen(seed);
    std::vector<rf::tone> tones(5);
    const double margin = 0.08 * band.bandwidth();
    for (auto& t : tones) {
        t.frequency_hz = gen.uniform(band.f_lo + margin, band.f_hi - margin);
        t.amplitude = gen.uniform(0.2, 1.0);
        t.phase_rad = gen.uniform(0.0, two_pi);
    }
    return rf::multitone_signal(std::move(tones), duration);
}

/// Max |fast - reference| over random probes, normalised to signal RMS.
double fast_path_deviation(const pnbs_reconstructor& recon, double rms_scale,
                           double t_lo, double t_hi, std::uint64_t seed) {
    rng probe(seed);
    double worst = 0.0;
    for (int i = 0; i < 300; ++i) {
        const double t = probe.uniform(t_lo, t_hi);
        worst = std::max(worst,
                         std::abs(recon.value(t) - recon.value_reference(t)));
    }
    return worst / rms_scale;
}

TEST(PnbsFastPath, MatchesReferenceAcrossDelayAndTapsGrid) {
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double period = 1.0 / band.bandwidth();
    const std::size_t n = 400;
    const double duration = static_cast<double>(n) * period + 10.0 * ns;
    const auto sig = in_band_multitone(band, duration, 0xFEED);

    for (const double d : {120.0 * ps, 180.0 * ps, 250.0 * ps, 420.0 * ps}) {
        const auto s = sample_streams(sig, period, d, n);
        for (const std::size_t taps : {41u, 61u, 81u}) {
            const pnbs_reconstructor recon(s.even, s.odd, period, 0.0, band,
                                           d, {taps, 8.0});
            const double dev =
                fast_path_deviation(recon, s.rms, recon.valid_begin(),
                                    recon.valid_end(), 0x7 + taps);
            EXPECT_LT(dev, 1e-9) << "D=" << d / ps << " ps, taps=" << taps;
        }
    }
}

TEST(PnbsFastPath, MatchesReferenceAtRecordEdges) {
    // Clipped tap windows (probes outside the valid span) must follow the
    // reference's skip-out-of-range semantics.
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double period = 1.0 / band.bandwidth();
    const std::size_t n = 200;
    const auto sig = in_band_multitone(
        band, static_cast<double>(n) * period + 10.0 * ns, 0xE6E);
    const double d = 180.0 * ps;
    const auto s = sample_streams(sig, period, d, n);
    const pnbs_reconstructor recon(s.even, s.odd, period, 0.0, band, d,
                                   {61, 8.0});
    const double span = static_cast<double>(n) * period;
    const double dev =
        fast_path_deviation(recon, s.rms, -0.1 * span, 1.1 * span, 0x21);
    EXPECT_LT(dev, 1e-9);
}

TEST(PnbsFastPath, MatchesReferenceAtSampleInstantsAndMidpoints) {
    // frac = 0 (the ill-conditioned sinc quotient, patched with the exact
    // library sinc) and frac = ±0.5 (the tap-window boundary).
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double period = 1.0 / band.bandwidth();
    const std::size_t n = 300;
    const auto sig = in_band_multitone(
        band, static_cast<double>(n) * period + 10.0 * ns, 0x3AB);
    const double d = 180.0 * ps;
    const auto s = sample_streams(sig, period, d, n);
    const pnbs_reconstructor recon(s.even, s.odd, period, 0.0, band, d,
                                   {61, 8.0});
    double worst = 0.0;
    for (std::size_t k = 40; k < 260; ++k) {
        for (const double offs : {0.0, 0.5, -0.5, 1e-13, d / period}) {
            const double t = (static_cast<double>(k) + offs) * period;
            worst = std::max(
                worst, std::abs(recon.value(t) - recon.value_reference(t)));
        }
    }
    EXPECT_LT(worst / s.rms, 1e-9);
}

TEST(PnbsFastPath, UniformIsBitIdenticalToPerPointValue) {
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double period = 1.0 / band.bandwidth();
    const std::size_t n = 300;
    const auto sig = in_band_multitone(
        band, static_cast<double>(n) * period + 10.0 * ns, 0x1D);
    const double d = 250.0 * ps;
    const auto s = sample_streams(sig, period, d, n);
    const pnbs_reconstructor recon(s.even, s.odd, period, 0.0, band, d,
                                   {61, 8.0});

    const double t0 = recon.valid_begin();
    const double rate = 1000.0 / (recon.valid_end() - t0);
    const std::size_t n_eval = 1000;
    const auto grid = recon.uniform(t0, rate, n_eval);
    ASSERT_EQ(grid.size(), n_eval);
    for (std::size_t i = 0; i < n_eval; ++i) {
        const double t = t0 + static_cast<double>(i) / rate;
        EXPECT_EQ(grid[i], recon.value(t)) << i;
    }
}

TEST(PnbsFastPath, BatchValuesBitIdenticalToPerPoint) {
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double period = 1.0 / band.bandwidth();
    const std::size_t n = 200;
    const auto sig = in_band_multitone(
        band, static_cast<double>(n) * period + 10.0 * ns, 0x2E);
    const double d = 180.0 * ps;
    const auto s = sample_streams(sig, period, d, n);
    const pnbs_reconstructor recon(s.even, s.odd, period, 0.0, band, d,
                                   {61, 8.0});
    rng gen(0x31);
    std::vector<double> t(333);
    for (auto& v : t)
        v = gen.uniform(recon.valid_begin(), recon.valid_end());
    const auto batch = recon.values(t);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(batch[i], recon.value(t[i])) << i;
}

TEST(PnbsFastPath, ReferencePathStillReconstructs) {
    // Guard the retained reference itself: it must keep reconstructing
    // in-band signals (it is the yardstick every fast path is held to).
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double period = 1.0 / band.bandwidth();
    const std::size_t n = 400;
    const auto sig = in_band_multitone(
        band, static_cast<double>(n) * period + 10.0 * ns, 0x44);
    const double d = 180.0 * ps;
    const auto s = sample_streams(sig, period, d, n);
    const pnbs_reconstructor recon(s.even, s.odd, period, 0.0, band, d,
                                   {81, 8.0});
    rng probe(0x45);
    std::vector<double> ref, est;
    for (int i = 0; i < 200; ++i) {
        const double t =
            probe.uniform(recon.valid_begin(), recon.valid_end());
        ref.push_back(sig.value(t));
        est.push_back(recon.value_reference(t));
    }
    EXPECT_LT(relative_rms_error(ref, est), 0.02);
}

TEST(KohlenbergKernel, ForbiddenDelaysAreExactMultiples) {
    // Regression for the `d += step` accumulation drift: every forbidden
    // delay must be bit-exactly n·step.
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double b = band.bandwidth();
    const double t = 1.0 / b;
    const auto delays =
        kohlenberg_kernel::forbidden_delays(band, 300.0 * t);
    ASSERT_GT(delays.size(), 1000u);
    const kohlenberg_kernel kernel(band, 180.0 * ps);
    const double step_k = t / static_cast<double>(kernel.k());
    const double step_kp = t / static_cast<double>(kernel.k_plus());
    for (const double d : delays) {
        const double nk = std::round(d / step_k);
        const double nkp = std::round(d / step_kp);
        const bool is_k_multiple = d == nk * step_k;
        const bool is_kp_multiple = d == nkp * step_kp;
        EXPECT_TRUE(is_k_multiple || is_kp_multiple) << d;
    }
    // The largest k⁺ multiple inside the limit is present and undrifted.
    const double n_top = std::round(300.0 * t / step_kp);
    EXPECT_TRUE(std::binary_search(delays.begin(), delays.end(),
                                   n_top * step_kp));
}

} // namespace

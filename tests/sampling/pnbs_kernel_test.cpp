// Unit tests for the Kohlenberg PNBS interpolation kernel (paper eqs. (1)-(3)).
#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hpp"
#include "sampling/pnbs.hpp"

namespace {

using namespace sdrbist;
using sampling::band_around;
using sampling::band_spec;
using sampling::kohlenberg_kernel;

// The paper's evaluation band: fc = 1 GHz, B = 90 MHz.
band_spec paper_band() { return band_around(1.0 * GHz, 90.0 * MHz); }

TEST(KohlenbergKernel, PaperBandIndices) {
    const kohlenberg_kernel kern(paper_band(), 180.0 * ps);
    // k = ceil(2·955/90) = ceil(21.22) = 22.
    EXPECT_EQ(kern.k(), 22);
    EXPECT_EQ(kern.k_plus(), 23);
}

TEST(KohlenbergKernel, ValueAtZeroIsOne) {
    // s(0) = s0(0) + s1(0) = 1 for any stable delay: interpolation identity.
    const kohlenberg_kernel kern(paper_band(), 180.0 * ps);
    EXPECT_NEAR(kern.s(0.0), 1.0, 1e-12);
}

TEST(KohlenbergKernel, ZerosAtEvenSampleInstants) {
    // s(nT) = 0 for n != 0: the even stream interpolates itself.
    const band_spec band = paper_band();
    const double t_period = 1.0 / band.bandwidth();
    const kohlenberg_kernel kern(band, 180.0 * ps);
    for (int n = 1; n <= 20; ++n) {
        EXPECT_NEAR(kern.s(n * t_period), 0.0, 1e-9) << "n=" << n;
        EXPECT_NEAR(kern.s(-n * t_period), 0.0, 1e-9) << "n=-" << n;
    }
}

TEST(KohlenbergKernel, ZerosAtOddSampleInstants) {
    // s(nT + D) = 0 for all n (second stream nulls): with t = -(nT + D),
    // the odd-stream kernel term s(nT + D - t) must vanish at other odd
    // sample positions.  Equivalently s(mT - D) = 0 for integer m != 0?
    // The defining property from Kohlenberg's interpolation: evaluating the
    // reconstruction at an odd sample instant returns exactly that sample,
    // which requires s(D + nT) = 0 for n = ..., -1, 0(excluded via pair),...
    const band_spec band = paper_band();
    const double t_period = 1.0 / band.bandwidth();
    const double d = 180.0 * ps;
    const kohlenberg_kernel kern(band, d);
    // Reconstruction at t = mT + D picks up s(mT + D - nT) from the even
    // stream; consistency requires s(kT + D) = 0 for all integer k.
    for (int n = -20; n <= 20; ++n) {
        EXPECT_NEAR(kern.s(n * t_period + d), 0.0, 1e-9) << "n=" << n;
    }
}

TEST(KohlenbergKernel, MatchesQuotientFormAwayFromZero) {
    // The stable product form must equal the paper's literal eq. (2).
    const band_spec band = paper_band();
    const double b = band.bandwidth();
    const double fl = band.f_lo;
    const double d = 180.0 * ps;
    const kohlenberg_kernel kern(band, d);
    const double k = 22.0, kp = 23.0;

    auto s0_quotient = [&](double t) {
        return (std::cos(two_pi * (k * b - fl) * t - k * pi * b * d) -
                std::cos(two_pi * fl * t - k * pi * b * d)) /
               (two_pi * b * t * std::sin(k * pi * b * d));
    };
    auto s1_quotient = [&](double t) {
        return (std::cos(two_pi * (fl + b) * t - kp * pi * b * d) -
                std::cos(two_pi * (k * b - fl) * t - kp * pi * b * d)) /
               (two_pi * b * t * std::sin(kp * pi * b * d));
    };

    for (double t : {1.3 * ns, -0.7 * ns, 5.11 * ns, 37.0 * ns, -100.0 * ns}) {
        EXPECT_NEAR(kern.s0(t), s0_quotient(t), 1e-9 + 1e-9 * std::abs(kern.s0(t)))
            << "t=" << t;
        EXPECT_NEAR(kern.s1(t), s1_quotient(t), 1e-9 + 1e-9 * std::abs(kern.s1(t)))
            << "t=" << t;
    }
}

TEST(KohlenbergKernel, ForbiddenDelaysMatchPaperValues) {
    // For the paper band: T/k+ = 1/(23·90 MHz) = 483 ps and
    // T/k = 1/(22·90 MHz) = 505 ps are the first two forbidden values.
    const auto forbidden =
        kohlenberg_kernel::forbidden_delays(paper_band(), 1100.0 * ps);
    ASSERT_GE(forbidden.size(), 2u);
    EXPECT_NEAR(forbidden[0], 483.1 * ps, 0.5 * ps);
    EXPECT_NEAR(forbidden[1], 505.1 * ps, 0.5 * ps);
}

TEST(KohlenbergKernel, StabilityPredicateRejectsForbiddenDelays) {
    const band_spec band = paper_band();
    EXPECT_TRUE(kohlenberg_kernel::delay_is_stable(band, 180.0 * ps));
    EXPECT_TRUE(kohlenberg_kernel::delay_is_stable(band, 250.0 * ps));
    const double t_period = 1.0 / band.bandwidth();
    EXPECT_FALSE(kohlenberg_kernel::delay_is_stable(band, t_period / 23.0));
    EXPECT_FALSE(kohlenberg_kernel::delay_is_stable(band, t_period / 22.0));
    EXPECT_FALSE(
        kohlenberg_kernel::delay_is_stable(band, 3.0 * t_period / 23.0));
    EXPECT_FALSE(kohlenberg_kernel::delay_is_stable(band, -1.0 * ps));
}

TEST(KohlenbergKernel, ConstructionThrowsForForbiddenDelay) {
    const band_spec band = paper_band();
    const double t_period = 1.0 / band.bandwidth();
    EXPECT_THROW(kohlenberg_kernel(band, t_period / 23.0),
                 contract_violation);
}

TEST(KohlenbergKernel, OptimalDelayIsQuarterCarrierPeriod) {
    // Paper §II-B1: optimal |D| = 1/(4·fc) = 250 ps at 1 GHz.
    EXPECT_NEAR(kohlenberg_kernel::optimal_delay(paper_band()), 250.0 * ps,
                1e-15);
}

TEST(KohlenbergKernel, ErrorBoundReproducesPaperExample) {
    // Paper eq. (5): fc = 1 GHz, B = 80 MHz, ΔF = 1 % ->
    // ΔD <= (1/25)·0.01/(π·80e6) = 1.59 ps, which the paper rounds to
    // "≈ 2 ps".
    const band_spec band = band_around(1.0 * GHz, 80.0 * MHz);
    const double dd = kohlenberg_kernel::required_delay_accuracy(band, 0.01);
    EXPECT_NEAR(dd, 0.01 / (25.0 * pi * 80.0 * MHz), 1e-18);
    EXPECT_NEAR(dd, 1.6 * ps, 0.1 * ps);
    EXPECT_LT(dd, 2.0 * ps); // the paper's headline number is an upper bound
    // Round trip.
    EXPECT_NEAR(kohlenberg_kernel::error_bound(band, dd), 0.01, 1e-12);
}

TEST(KohlenbergKernel, S0VanishesForIntegerBandPositioning) {
    // When 2·fl/B is an integer, s0 == 0 and condition (3a) drops (paper).
    const band_spec band{900.0 * MHz, 990.0 * MHz}; // 2·900/90 = 20 exactly
    const double t_period = 1.0 / band.bandwidth();
    // T/k would be forbidden otherwise; with s0 == 0 it must be allowed.
    const double d = t_period / 20.0;
    EXPECT_TRUE(kohlenberg_kernel::delay_is_stable(band, d));
    const kohlenberg_kernel kern(band, 180.0 * ps);
    for (double t : {0.0, 1.0 * ns, -3.0 * ns})
        EXPECT_DOUBLE_EQ(kern.s0(t), 0.0) << "t=" << t;
}

TEST(KohlenbergKernel, KernelDecaysAwayFromOrigin) {
    const kohlenberg_kernel kern(paper_band(), 250.0 * ps);
    const double near = std::abs(kern.s(0.3 * ns));
    const double far = std::abs(kern.s(300.0 * ns));
    EXPECT_LT(far, near);
    EXPECT_LT(far, 0.05);
}

} // namespace

// Property tests: the truncated PNBS reconstructor recovers in-band
// multitone signals from two uniform sample streams (paper eq. (6)).
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"
#include "sampling/pnbs.hpp"

namespace {

using namespace sdrbist;
using sampling::band_around;
using sampling::band_spec;
using sampling::pnbs_options;
using sampling::pnbs_reconstructor;

// Ideal (jitter-free, unquantised) dual-stream sampling of a signal.
struct sampled {
    std::vector<double> even, odd;
};

sampled sample_streams(const rf::passband_signal& x, double t_start, double t,
                       double d, std::size_t n) {
    sampled s;
    s.even.resize(n);
    s.odd.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        s.even[k] = x.value(t_start + static_cast<double>(k) * t);
        s.odd[k] = x.value(t_start + static_cast<double>(k) * t + d);
    }
    return s;
}

// Random in-band multitone with margin from the band edges.
rf::multitone_signal random_multitone(rng& gen, const band_spec& band,
                                      std::size_t n_tones, double duration,
                                      double edge_margin_frac = 0.08) {
    std::vector<rf::tone> tones(n_tones);
    const double margin = edge_margin_frac * band.bandwidth();
    for (auto& t : tones) {
        t.frequency_hz = gen.uniform(band.f_lo + margin, band.f_hi - margin);
        t.amplitude = gen.uniform(0.2, 1.0);
        t.phase_rad = gen.uniform(0.0, two_pi);
    }
    return rf::multitone_signal(std::move(tones), duration);
}

class PnbsReconstruction : public ::testing::TestWithParam<double> {};

TEST_P(PnbsReconstruction, RecoversMultitoneForVariousDelays) {
    const double d = GetParam(); // delay under test
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double t_period = 1.0 / band.bandwidth();
    const std::size_t n = 600;
    const double duration = static_cast<double>(n) * t_period + 10.0 * ns;

    rng gen(42);
    const auto sig = random_multitone(gen, band, 5, duration);
    const auto streams = sample_streams(sig, 0.0, t_period, d, n);

    pnbs_options opt;
    opt.taps = 81;
    opt.kaiser_beta = 8.0;
    const pnbs_reconstructor recon(streams.even, streams.odd, t_period, 0.0,
                                   band, d, opt);

    // Probe strictly inside the valid span.
    rng probe_gen(7);
    const double lo = recon.valid_begin();
    const double hi = recon.valid_end();
    std::vector<double> ref, est;
    for (int i = 0; i < 400; ++i) {
        const double t = probe_gen.uniform(lo, hi);
        ref.push_back(sig.value(t));
        est.push_back(recon.value(t));
    }
    const double err = relative_rms_error(ref, est);
    EXPECT_LT(err, 0.02) << "relative rms error with D = " << d / ps << " ps";
}

INSTANTIATE_TEST_SUITE_P(DelaySweep, PnbsReconstruction,
                         ::testing::Values(120.0 * ps, 180.0 * ps, 250.0 * ps,
                                           330.0 * ps, 420.0 * ps),
                         [](const auto& info) {
                             std::string name = "D";
                             name += std::to_string(
                                 static_cast<int>(info.param / ps));
                             return name;
                         });

TEST(PnbsReconstructor, InterpolatesExactSamplePoints) {
    // At even sample instants the reconstruction must return the sample.
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double t_period = 1.0 / band.bandwidth();
    const double d = 180.0 * ps;
    const std::size_t n = 400;

    rng gen(3);
    const auto sig = random_multitone(gen, band, 4,
                                      static_cast<double>(n) * t_period + 1.0 * us);
    const auto streams = sample_streams(sig, 0.0, t_period, d, n);
    const pnbs_reconstructor recon(streams.even, streams.odd, t_period, 0.0,
                                   band, d, {61, 8.0});

    for (std::size_t k = 100; k < 120; ++k) {
        const double t = static_cast<double>(k) * t_period;
        EXPECT_NEAR(recon.value(t), streams.even[k],
                    0.02 * std::abs(streams.even[k]) + 0.02)
            << "k=" << k;
    }
}

TEST(PnbsReconstructor, MoreTapsReduceError) {
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double t_period = 1.0 / band.bandwidth();
    const double d = 180.0 * ps;
    const std::size_t n = 900;

    rng gen(11);
    const auto sig = random_multitone(
        gen, band, 5, static_cast<double>(n) * t_period + 1.0 * us);
    const auto streams = sample_streams(sig, 0.0, t_period, d, n);

    double prev_err = 1e9;
    for (const std::size_t taps : {21u, 41u, 81u, 161u}) {
        const pnbs_reconstructor recon(streams.even, streams.odd, t_period,
                                       0.0, band, d, {taps, 8.0});
        rng probe_gen(5);
        std::vector<double> ref, est;
        for (int i = 0; i < 300; ++i) {
            const double t =
                probe_gen.uniform(recon.valid_begin(), recon.valid_end());
            ref.push_back(sig.value(t));
            est.push_back(recon.value(t));
        }
        const double err = relative_rms_error(ref, est);
        EXPECT_LT(err, prev_err * 1.05) << "taps=" << taps;
        prev_err = err;
    }
    EXPECT_LT(prev_err, 5e-3);
}

TEST(PnbsReconstructor, WrongDelayDegradesReconstruction) {
    // The motivation for skew estimation: a 5 ps delay error visibly
    // degrades the reconstruction (paper eq. (4) predicts ~3.3 %… per ps
    // band: pi·B·(k+1)·5ps ≈ 3.3 % for k=22, B=90 MHz… actually 3.25e-2).
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double t_period = 1.0 / band.bandwidth();
    const double d_true = 180.0 * ps;
    const std::size_t n = 600;

    rng gen(19);
    const auto sig = random_multitone(
        gen, band, 5, static_cast<double>(n) * t_period + 1.0 * us);
    const auto streams = sample_streams(sig, 0.0, t_period, d_true, n);

    auto rms_err = [&](double d_hat) {
        const pnbs_reconstructor recon(streams.even, streams.odd, t_period,
                                       0.0, band, d_hat, {81, 8.0});
        rng probe_gen(23);
        std::vector<double> ref, est;
        for (int i = 0; i < 300; ++i) {
            const double t =
                probe_gen.uniform(recon.valid_begin(), recon.valid_end());
            ref.push_back(sig.value(t));
            est.push_back(recon.value(t));
        }
        return relative_rms_error(ref, est);
    };

    const double err_true = rms_err(d_true);
    const double err_5ps = rms_err(d_true + 5.0 * ps);
    const double err_20ps = rms_err(d_true + 20.0 * ps);
    EXPECT_LT(err_true, 0.01);
    EXPECT_GT(err_5ps, 2.0 * err_true);
    EXPECT_GT(err_20ps, err_5ps);
}

TEST(PnbsReconstructor, ValidSpanIsInsideRecord) {
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    const double t_period = 1.0 / band.bandwidth();
    std::vector<double> even(200, 0.0), odd(200, 0.0);
    const pnbs_reconstructor recon(even, odd, t_period, 1.0 * us, band,
                                   180.0 * ps, {61, 8.0});
    EXPECT_GT(recon.valid_begin(), 1.0 * us);
    EXPECT_LT(recon.valid_end(), 1.0 * us + 200.0 * t_period);
    EXPECT_LT(recon.valid_begin(), recon.valid_end());
}

TEST(PnbsReconstructor, RejectsMismatchedPeriodAndBand) {
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    std::vector<double> even(100, 0.0), odd(100, 0.0);
    EXPECT_THROW(pnbs_reconstructor(even, odd, /*period=*/1.0 / (80.0 * MHz),
                                    0.0, band, 180.0 * ps, {61, 8.0}),
                 contract_violation);
}

TEST(PnbsReconstructor, RejectsEvenTapCount) {
    const band_spec band = band_around(1.0 * GHz, 90.0 * MHz);
    std::vector<double> even(100, 0.0), odd(100, 0.0);
    EXPECT_THROW(pnbs_reconstructor(even, odd, 1.0 / (90.0 * MHz), 0.0, band,
                                    180.0 * ps, {60, 8.0}),
                 contract_violation);
}

} // namespace

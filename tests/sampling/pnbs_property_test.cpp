// Property/fuzz-style lockdown of the PNBS reconstructor under SIMD
// backend dispatch: across randomly drawn configurations (band position,
// tap count, window shape, record length, delay hypothesis) and under
// EVERY CPU-supported backend,
//
//  * uniform() and values() stay bit-identical to per-point value() —
//    the PR 2 invariant, now quantified over backends;
//  * the fused fast path stays within its accuracy envelope of the
//    per-tap transcendental reference;
//  * a backend-built reconstructor agrees with its scalar-forced twin
//    within the documented accumulation bound.
//
// Configurations are drawn from a seeded rng, so failures reproduce; the
// draw is rejected (and redrawn) only when the delay hypothesis lands on a
// forbidden value of the Kohlenberg kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <string_view>
#include <vector>

#include "core/random.hpp"
#include "core/simd/kernel_backend.hpp"
#include "core/units.hpp"
#include "sampling/band.hpp"
#include "sampling/pnbs.hpp"

namespace {

using namespace sdrbist;
using sampling::band_spec;
using sampling::kohlenberg_kernel;
using sampling::pnbs_reconstructor;
using simd::kernel_backend;

/// One randomly drawn reconstruction scenario.
struct scenario {
    band_spec band;
    double period = 0.0;
    double t_start = 0.0;
    double delay = 0.0;
    std::size_t taps = 0;
    double beta = 0.0;
    std::vector<double> even, odd;
};

scenario draw_scenario(rng& gen) {
    scenario s;
    // Random band position: B in [40, 140] MHz, f_lo a random multiple of
    // B in [0.6, 6] so k = ceil(2·f_lo/B) varies (including near-integer
    // ratios where s0 may vanish).
    const double b = gen.uniform(40.0, 140.0) * MHz;
    const double ratio = gen.uniform(0.6, 6.0);
    s.band = band_spec{ratio * b, ratio * b + b};
    s.period = 1.0 / s.band.bandwidth();
    s.t_start = gen.uniform(-5.0, 5.0) * s.period;
    s.taps = 5 + 2 * static_cast<std::size_t>(gen.uniform_int(0, 28)); // 5..61
    s.beta = gen.uniform(4.0, 10.0);

    // Delay hypothesis near the magnitude-optimal value, rejected while it
    // sits on a forbidden multiple (paper eq. (3)).
    do {
        s.delay = kohlenberg_kernel::optimal_delay(s.band) *
                  gen.uniform(0.5, 1.8);
    } while (!kohlenberg_kernel::delay_is_stable(s.band, s.delay));

    const std::size_t n =
        s.taps + 20 + static_cast<std::size_t>(gen.uniform_int(0, 200));
    s.even = gen.uniform_vector(n, -1.0, 1.0);
    s.odd = gen.uniform_vector(n, -1.0, 1.0);
    return s;
}

pnbs_reconstructor build(const scenario& s) {
    return pnbs_reconstructor(s.even, s.odd, s.period, s.t_start, s.band,
                              s.delay, {s.taps, s.beta});
}

/// Restores auto-detection after the forced-backend loops.
struct backend_restore {
    ~backend_restore() { kernel_backend::reset(); }
};

TEST(PnbsProperty, BatchEntryPointsBitIdenticalToPerPointUnderEveryBackend) {
    backend_restore restore;
    rng gen(0xF022);
    for (int config = 0; config < 12; ++config) {
        const scenario s = draw_scenario(gen);
        for (const auto* ops : kernel_backend::available()) {
            kernel_backend::force(ops->name);
            const auto recon = build(s);
            ASSERT_STREQ(recon.backend().name, ops->name);

            // Probes include instants outside the valid span (clamped tap
            // windows) and outside the records entirely.
            rng probe(0xAB + static_cast<std::uint64_t>(config));
            const double lo = recon.valid_begin() - 5.0 * s.period;
            const double hi = recon.valid_end() + 5.0 * s.period;
            std::vector<double> ts(120);
            for (auto& t : ts)
                t = probe.uniform(lo, hi);

            const auto batch = recon.values(ts);
            for (std::size_t i = 0; i < ts.size(); ++i)
                EXPECT_EQ(batch[i], recon.value(ts[i]))
                    << ops->name << " config=" << config << " t=" << ts[i];

            const double rate = 3.1 * s.band.bandwidth();
            const double t0 = recon.valid_begin();
            const auto grid = recon.uniform(t0, rate, 100);
            for (std::size_t i = 0; i < grid.size(); ++i)
                EXPECT_EQ(grid[i],
                          recon.value(t0 + static_cast<double>(i) / rate))
                    << ops->name << " config=" << config << " i=" << i;
        }
    }
}

TEST(PnbsProperty, FastPathTracksReferenceUnderEveryBackend) {
    backend_restore restore;
    rng gen(0xF023);
    for (int config = 0; config < 8; ++config) {
        const scenario s = draw_scenario(gen);
        for (const auto* ops : kernel_backend::available()) {
            kernel_backend::force(ops->name);
            const auto recon = build(s);

            rng probe(0xCD + static_cast<std::uint64_t>(config));
            double worst = 0.0;
            for (int i = 0; i < 100; ++i) {
                const double t =
                    probe.uniform(recon.valid_begin(), recon.valid_end());
                worst = std::max(
                    worst, std::abs(recon.value(t) - recon.value_reference(t)));
            }
            // Random (non-bandlimited) records: the envelope is looser
            // than the curated fastpath suites but still pins the fused
            // evaluation to the transcendental reference.
            EXPECT_LT(worst, 1e-8)
                << ops->name << " config=" << config << " taps=" << s.taps;
        }
    }
}

TEST(PnbsProperty, BackendBuildsAgreeWithScalarTwinWithinBound) {
    backend_restore restore;
    rng gen(0xF024);
    for (int config = 0; config < 8; ++config) {
        const scenario s = draw_scenario(gen);

        kernel_backend::force("scalar");
        const auto scalar_recon = build(s);
        rng probe(0xEF + static_cast<std::uint64_t>(config));
        std::vector<double> ts(150);
        for (auto& t : ts)
            t = probe.uniform(scalar_recon.valid_begin(),
                              scalar_recon.valid_end());
        const auto ref = scalar_recon.values(ts);

        for (const auto* ops : kernel_backend::available()) {
            if (std::string_view(ops->name) == "scalar")
                continue;
            kernel_backend::force(ops->name);
            const auto recon = build(s);
            const auto got = recon.values(ts);
            for (std::size_t i = 0; i < ts.size(); ++i)
                EXPECT_NEAR(got[i], ref[i], 1e-11)
                    << ops->name << " config=" << config << " t=" << ts[i];
        }
    }
}

} // namespace

// Hardware-mapped reconstructor: must converge to the reference
// implementation as table density and word length grow.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"
#include "sampling/hw_recon.hpp"

namespace {

using namespace sdrbist;
using namespace sdrbist::sampling;

struct setup {
    std::vector<double> even, odd;
    std::shared_ptr<rf::multitone_signal> sig;
    band_spec band;
    double period;
    double d = 180.0 * ps;
};

setup make_setup(std::uint64_t seed = 0x7E57) {
    setup s;
    s.band = band_around(1.0 * GHz, 90.0 * MHz);
    s.period = 1.0 / s.band.bandwidth();
    rng gen(seed);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 5; ++i)
        tones.push_back({gen.uniform(s.band.f_lo + 8.0 * MHz,
                                     s.band.f_hi - 8.0 * MHz),
                         gen.uniform(0.2, 0.6), gen.uniform(0.0, two_pi)});
    const std::size_t n = 600;
    s.sig = std::make_shared<rf::multitone_signal>(
        std::move(tones), static_cast<double>(n) * s.period + 1.0 * us);
    s.even.resize(n);
    s.odd.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        s.even[k] = s.sig->value(static_cast<double>(k) * s.period);
        s.odd[k] = s.sig->value(static_cast<double>(k) * s.period + s.d);
    }
    return s;
}

double hw_error(const setup& s, const hw_recon_options& opt) {
    const hw_pnbs_reconstructor hw(s.even, s.odd, s.period, 0.0, s.band, s.d,
                                   opt);
    rng probe(0x9);
    std::vector<double> ref, est;
    for (int i = 0; i < 300; ++i) {
        const double t = probe.uniform(hw.valid_begin(), hw.valid_end());
        ref.push_back(s.sig->value(t));
        est.push_back(hw.value(t));
    }
    return relative_rms_error(ref, est);
}

TEST(HwRecon, MatchesReferenceAtHighSettings) {
    const auto s = make_setup();
    hw_recon_options opt;
    opt.taps = 61;
    opt.phase_steps = 512;
    opt.coeff_bits = 0; // unquantised
    const hw_pnbs_reconstructor hw(s.even, s.odd, s.period, 0.0, s.band, s.d,
                                   opt);
    const pnbs_reconstructor ref(s.even, s.odd, s.period, 0.0, s.band, s.d,
                                 {61, 8.0});
    rng probe(0x33);
    for (int i = 0; i < 200; ++i) {
        const double t = probe.uniform(hw.valid_begin(), hw.valid_end());
        EXPECT_NEAR(hw.value(t), ref.value(t),
                    5e-4 * std::abs(ref.value(t)) + 5e-4)
            << "t=" << t;
    }
}

TEST(HwRecon, ReconstructsSignalAccurately) {
    const auto s = make_setup();
    hw_recon_options opt; // defaults: 64 phases, 16-bit, interpolated
    EXPECT_LT(hw_error(s, opt), 5e-3);
}

TEST(HwRecon, PhaseGridDensityImprovesAccuracy) {
    const auto s = make_setup();
    hw_recon_options coarse;
    coarse.phase_steps = 8;
    coarse.coeff_bits = 0;
    hw_recon_options fine = coarse;
    fine.phase_steps = 128;
    EXPECT_LT(hw_error(s, fine), hw_error(s, coarse));
}

TEST(HwRecon, InterpolationBeatsNearestPhase) {
    const auto s = make_setup();
    hw_recon_options nearest;
    nearest.phase_steps = 32;
    nearest.coeff_bits = 0;
    nearest.interpolate_phases = false;
    hw_recon_options blended = nearest;
    blended.interpolate_phases = true;
    EXPECT_LT(hw_error(s, blended), hw_error(s, nearest));
}

class HwReconBits : public ::testing::TestWithParam<int> {};

TEST_P(HwReconBits, WordlengthControlsFloor) {
    const auto s = make_setup();
    hw_recon_options opt;
    opt.phase_steps = 256;
    opt.coeff_bits = GetParam();
    const double err = hw_error(s, opt);
    // Quantisation error floor ~ 2^-bits relative; generous envelope.
    const double bound =
        GetParam() == 0 ? 3e-3 : 3e-3 + 4.0 * std::pow(2.0, -GetParam());
    EXPECT_LT(err, bound) << "bits=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Bits, HwReconBits,
                         ::testing::Values(0, 8, 10, 12, 16),
                         [](const auto& info) {
                             // Built via += (a `"lit" + to_string(...)`
                             // temporary trips GCC 12's bogus -Wrestrict).
                             std::string name = "b";
                             name += std::to_string(info.param);
                             return name;
                         });

TEST(HwRecon, RomFootprintAccounting) {
    const auto s = make_setup();
    hw_recon_options opt;
    opt.taps = 61;
    opt.phase_steps = 64;
    opt.coeff_bits = 16;
    const hw_pnbs_reconstructor hw(s.even, s.odd, s.period, 0.0, s.band, s.d,
                                   opt);
    EXPECT_EQ(hw.rom_bytes(), 4u * 65u * 61u * 2u);
    opt.coeff_bits = 0;
    const hw_pnbs_reconstructor dbl(s.even, s.odd, s.period, 0.0, s.band,
                                    s.d, opt);
    EXPECT_EQ(dbl.rom_bytes(), 4u * 65u * 61u * 8u);
}

TEST(HwRecon, Preconditions) {
    const auto s = make_setup();
    hw_recon_options opt;
    opt.phase_steps = 2;
    EXPECT_THROW(hw_pnbs_reconstructor(s.even, s.odd, s.period, 0.0, s.band,
                                       s.d, opt),
                 contract_violation);
    opt = {};
    opt.coeff_bits = 2;
    EXPECT_THROW(hw_pnbs_reconstructor(s.even, s.odd, s.period, 0.0, s.band,
                                       s.d, opt),
                 contract_violation);
    opt = {};
    // Forbidden delay rejected like the reference implementation.
    EXPECT_THROW(hw_pnbs_reconstructor(s.even, s.odd, s.period, 0.0, s.band,
                                       s.period / 23.0, opt),
                 contract_violation);
}

} // namespace

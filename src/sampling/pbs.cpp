#include "sampling/pbs.hpp"

#include <cmath>
#include <limits>

#include "core/contracts.hpp"

namespace sdrbist::sampling {

std::vector<pbs_window> alias_free_windows(const band_spec& band,
                                           double fs_min, double fs_max) {
    band.validate();
    SDRBIST_EXPECTS(fs_min >= 0.0);
    SDRBIST_EXPECTS(fs_max > fs_min);

    const double b = band.bandwidth();
    const auto n_max = static_cast<int>(std::floor(band.f_hi / b + 1e-12));

    std::vector<pbs_window> out;
    for (int n = 1; n <= n_max; ++n) {
        const double lo = 2.0 * band.f_hi / static_cast<double>(n);
        const double hi = n == 1 ? std::numeric_limits<double>::infinity()
                                 : 2.0 * band.f_lo / static_cast<double>(n - 1);
        const interval window{std::max(lo, fs_min), std::min(hi, fs_max)};
        if (!window.empty())
            out.push_back({n, window});
    }
    // Windows are generated in decreasing-rate order; flip to ascending.
    std::reverse(out.begin(), out.end());
    return out;
}

bool is_alias_free(const band_spec& band, double fs) {
    band.validate();
    SDRBIST_EXPECTS(fs > 0.0);
    const double b = band.bandwidth();
    const auto n_max = static_cast<int>(std::floor(band.f_hi / b + 1e-12));
    for (int n = 1; n <= n_max; ++n) {
        const double lo = 2.0 * band.f_hi / static_cast<double>(n);
        const double hi = n == 1 ? std::numeric_limits<double>::infinity()
                                 : 2.0 * band.f_lo / static_cast<double>(n - 1);
        if (fs >= lo && fs <= hi)
            return true;
    }
    return false;
}

double min_alias_free_rate(const band_spec& band) {
    band.validate();
    const double b = band.bandwidth();
    const auto n_max = static_cast<int>(std::floor(band.f_hi / b + 1e-12));
    // The lowest window is the n = n_max wedge: fs_min = 2·f_hi / n_max.
    return 2.0 * band.f_hi / static_cast<double>(n_max);
}

double aliasing_margin(const band_spec& band, double fs) {
    band.validate();
    SDRBIST_EXPECTS(fs > 0.0);
    const double b = band.bandwidth();
    const auto n_max = static_cast<int>(std::floor(band.f_hi / b + 1e-12));
    double best = -std::numeric_limits<double>::infinity();
    for (int n = 1; n <= n_max; ++n) {
        const double lo = 2.0 * band.f_hi / static_cast<double>(n);
        const double hi = n == 1 ? std::numeric_limits<double>::infinity()
                                 : 2.0 * band.f_lo / static_cast<double>(n - 1);
        if (fs >= lo && fs <= hi) {
            // Inside: margin is the distance to the closer edge.
            const double m = std::isinf(hi) ? fs - lo
                                            : std::min(fs - lo, hi - fs);
            return m;
        }
        // Outside: negative distance to this window.
        const double d = fs < lo ? fs - lo : hi - fs; // both negative
        best = std::max(best, d);
    }
    return best;
}

int nyquist_zone(double f, double fs) {
    SDRBIST_EXPECTS(fs > 0.0);
    SDRBIST_EXPECTS(f >= 0.0);
    return static_cast<int>(std::floor(2.0 * f / fs));
}

double folded_frequency(double f, double fs) {
    SDRBIST_EXPECTS(fs > 0.0);
    double r = std::fmod(std::abs(f), fs);
    if (r > fs / 2.0)
        r = fs - r;
    return r;
}

} // namespace sdrbist::sampling

/// \file band.hpp
/// \brief Bandpass spectral support description (paper Fig. 2):
///        F(ν) non-zero only for f_lo < |ν| < f_hi.
#pragma once

#include "core/contracts.hpp"

namespace sdrbist::sampling {

/// Positive-frequency support [f_lo, f_hi] of a real bandpass signal.
struct band_spec {
    double f_lo = 0.0; ///< lower band edge, Hz (> 0 for bandpass)
    double f_hi = 0.0; ///< upper band edge, Hz

    /// Information bandwidth B = f_hi - f_lo.
    [[nodiscard]] double bandwidth() const { return f_hi - f_lo; }

    /// Band centre (carrier) frequency.
    [[nodiscard]] double centre() const { return 0.5 * (f_lo + f_hi); }

    /// Band position ratio f_hi / B — drives PBS feasibility (Fig. 3).
    [[nodiscard]] double position_ratio() const {
        return f_hi / bandwidth();
    }

    /// True when f is inside the positive band.
    [[nodiscard]] bool contains(double f) const {
        return f >= f_lo && f <= f_hi;
    }

    /// Validate invariants (0 <= f_lo < f_hi).
    void validate() const {
        SDRBIST_EXPECTS(f_lo >= 0.0);
        SDRBIST_EXPECTS(f_hi > f_lo);
    }
};

/// Band of width `bandwidth` centred at `centre` (convenience).
inline band_spec band_around(double centre, double bandwidth) {
    band_spec b{centre - bandwidth / 2.0, centre + bandwidth / 2.0};
    b.validate();
    return b;
}

} // namespace sdrbist::sampling

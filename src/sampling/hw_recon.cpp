#include "sampling/hw_recon.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/units.hpp"
#include "dsp/window.hpp"

namespace sdrbist::sampling {

hw_pnbs_reconstructor::hw_pnbs_reconstructor(
    std::vector<double> even, std::vector<double> odd, double period,
    double t_start, const band_spec& band, double delay_hypothesis,
    const hw_recon_options& opt)
    : even_(std::move(even)), odd_(std::move(odd)), period_(period),
      t_start_(t_start), band_(band), delay_(delay_hypothesis), opt_(opt) {
    band_.validate();
    SDRBIST_EXPECTS(period_ > 0.0);
    SDRBIST_EXPECTS(even_.size() == odd_.size());
    SDRBIST_EXPECTS(opt_.taps >= 5 && opt_.taps % 2 == 1);
    SDRBIST_EXPECTS(even_.size() > opt_.taps);
    SDRBIST_EXPECTS(opt_.phase_steps >= 4);
    SDRBIST_EXPECTS(opt_.coeff_bits == 0 ||
                    (opt_.coeff_bits >= 4 && opt_.coeff_bits <= 32));
    SDRBIST_EXPECTS(approx_equal(period_ * band_.bandwidth(), 1.0, 1e-9));
    SDRBIST_EXPECTS(kohlenberg_kernel::delay_is_stable(band_, delay_));
    build_tables();
}

void hw_pnbs_reconstructor::build_tables() {
    const double b = band_.bandwidth();
    const double fl = band_.f_lo;
    const long k = ceil_snapped(2.0 * fl / b);
    const double kd = static_cast<double>(k);
    const double kp = kd + 1.0;

    const double f0 = kd * b - 2.0 * fl;
    const double f1 = 2.0 * fl + b - kd * b;
    const double c0 = f0 / b;
    const double c1 = f1 / b;
    a0_ = pi * kd * b;
    a1_ = pi * kp * b;
    phi_ = kd * pi * b * delay_;
    psi_ = kp * pi * b * delay_;
    s0_vanishes_ = std::abs(c0) < 1e-12;
    const double sin_phi = std::sin(phi_);
    const double sin_psi = std::sin(psi_);
    if (!s0_vanishes_)
        SDRBIST_EXPECTS(std::abs(sin_phi) > 1e-9);
    SDRBIST_EXPECTS(std::abs(sin_psi) > 1e-9);

    // Tap-index sign flips: sin(x - pi*k*j) = (-1)^{k j} sin(x).
    sign_k_ = (k % 2 == 0) ? 1.0 : -1.0;   // sign base for s0 tables
    sign_kp_ = ((k + 1) % 2 == 0) ? 1.0 : -1.0;

    const auto half = static_cast<long>(opt_.taps / 2);
    const double half_span = static_cast<double>(half) + 1.0;
    const std::size_t rows = opt_.phase_steps + 1;
    const std::size_t cols = opt_.taps;

    // Shared continuous-window LUT (same table the software reconstructor
    // evaluates through), so both reconstructors see identical window
    // values and the Bessel series runs once per LUT node, not per cell.
    const dsp::kaiser_lut window(opt_.kaiser_beta);

    auto alloc = [&] {
        return std::vector<std::vector<double>>(rows,
                                                std::vector<double>(cols));
    };
    env0_even_ = alloc();
    env1_even_ = alloc();
    env0_odd_ = alloc();
    env1_odd_ = alloc();

    const double g0 = s0_vanishes_ ? 0.0 : c0 / sin_phi;
    const double g1 = c1 / sin_psi;

    for (std::size_t p = 0; p < rows; ++p) {
        const double frac =
            static_cast<double>(p) / static_cast<double>(opt_.phase_steps);
        for (long j = -half; j <= half; ++j) {
            const auto col = static_cast<std::size_t>(j + half);
            const double sj_k = (k % 2 == 0 || j % 2 == 0) ? 1.0 : -1.0;
            const double sj_kp =
                ((k + 1) % 2 == 0 || j % 2 == 0) ? 1.0 : -1.0;

            // Even stream: kernel argument tau = (frac - j)·T.
            const double tau = (frac - static_cast<double>(j)) * period_;
            const double w_even =
                window((frac - static_cast<double>(j)) / half_span);
            env0_even_[p][col] = sj_k * g0 * sinc(f0 * tau) * w_even;
            env1_even_[p][col] = sj_kp * g1 * sinc(f1 * tau) * w_even;

            // Odd stream: argument (j - frac)·T + D.
            const double tau_o =
                (static_cast<double>(j) - frac) * period_ + delay_;
            const double w_odd =
                window((frac - static_cast<double>(j) - delay_ / period_) /
                       half_span);
            env0_odd_[p][col] = sj_k * g0 * sinc(f0 * tau_o) * w_odd;
            env1_odd_[p][col] = sj_kp * g1 * sinc(f1 * tau_o) * w_odd;
        }
    }

    // Coefficient quantisation to the configured ROM word length.
    if (opt_.coeff_bits > 0) {
        double max_v = 0.0;
        for (const auto* table :
             {&env0_even_, &env1_even_, &env0_odd_, &env1_odd_})
            for (const auto& row : *table)
                for (double v : row)
                    max_v = std::max(max_v, std::abs(v));
        if (max_v > 0.0) {
            const double levels =
                static_cast<double>((1u << (opt_.coeff_bits - 1)) - 1u);
            const double scale = levels / max_v;
            for (auto* table :
                 {&env0_even_, &env1_even_, &env0_odd_, &env1_odd_})
                for (auto& row : *table)
                    for (double& v : row)
                        v = std::round(v * scale) / scale;
        }
    }
}

double hw_pnbs_reconstructor::dot(
    const std::vector<std::vector<double>>& table,
    const std::vector<double>& samples, long n0, double frac,
    double /*tap_sign*/) const {
    const auto half = static_cast<long>(opt_.taps / 2);
    const auto n_max = static_cast<long>(samples.size()) - 1;
    const double x = frac * static_cast<double>(opt_.phase_steps);
    const auto p0 = static_cast<std::size_t>(x);
    const double lambda = x - static_cast<double>(p0);
    const std::size_t p1 = std::min(p0 + 1, opt_.phase_steps);

    double acc = 0.0;
    for (long j = -half; j <= half; ++j) {
        const long n = n0 + j;
        if (n < 0 || n > n_max)
            continue;
        const auto col = static_cast<std::size_t>(j + half);
        const double c =
            opt_.interpolate_phases
                ? table[p0][col] + lambda * (table[p1][col] - table[p0][col])
                : table[lambda < 0.5 ? p0 : p1][col];
        acc += c * samples[static_cast<std::size_t>(n)];
    }
    return acc;
}

double hw_pnbs_reconstructor::value(double t) const {
    const double pos = (t - t_start_) / period_;
    const double fpos = std::floor(pos);
    const auto n0 = static_cast<long>(fpos);
    const double frac = pos - fpos;

    // NCO terms (full precision at runtime; a hardware NCO/CORDIC).  The
    // kernel argument (frac - j)·T depends only on the fractional position
    // and the tap offset — the record index n0 cancels — so one sine per
    // term serves every tap.
    const double c0_even =
        s0_vanishes_ ? 0.0 : -std::sin(a0_ * frac * period_ - phi_);
    const double c1_even = -std::sin(a1_ * frac * period_ - psi_);
    const double c0_odd =
        s0_vanishes_ ? 0.0
                     : -std::sin(a0_ * (delay_ - frac * period_) - phi_);
    const double c1_odd = -std::sin(a1_ * (delay_ - frac * period_) - psi_);

    double acc = 0.0;
    if (!s0_vanishes_) {
        acc += c0_even * dot(env0_even_, even_, n0, frac, 1.0);
        acc += c0_odd * dot(env0_odd_, odd_, n0, frac, 1.0);
    }
    acc += c1_even * dot(env1_even_, even_, n0, frac, 1.0);
    acc += c1_odd * dot(env1_odd_, odd_, n0, frac, 1.0);
    return acc;
}

std::vector<double>
hw_pnbs_reconstructor::values(const std::vector<double>& t) const {
    std::vector<double> out(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = value(t[i]);
    return out;
}

double hw_pnbs_reconstructor::valid_begin() const {
    return t_start_ + static_cast<double>(opt_.taps / 2 + 1) * period_;
}

double hw_pnbs_reconstructor::valid_end() const {
    return t_start_ +
           (static_cast<double>(even_.size()) -
            static_cast<double>(opt_.taps / 2) - 2.0) *
               period_;
}

std::size_t hw_pnbs_reconstructor::rom_bytes() const {
    const std::size_t coeff_bytes =
        opt_.coeff_bits == 0 ? 8u
                             : static_cast<std::size_t>(
                                   (opt_.coeff_bits + 7) / 8);
    return 4u * (opt_.phase_steps + 1u) * opt_.taps * coeff_bytes;
}

} // namespace sdrbist::sampling

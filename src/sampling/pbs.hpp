/// \file pbs.hpp
/// \brief First-order Periodic Bandpass Sampling (PBS) feasibility analysis
///        (Vaughan/Scott/White 1991; paper §II-A and Fig. 3).
///
/// A real bandpass signal with support [f_lo, f_hi] can be uniformly sampled
/// without aliasing iff, for some integer n (the Nyquist-zone count below
/// the band):
///     2·f_hi / n  <=  fs  <=  2·f_lo / (n - 1),     1 <= n <= floor(f_hi/B).
/// These windows shrink as f_hi/B grows — the inflexibility that motivates
/// the paper's move to nonuniform (second-order) sampling.
#pragma once

#include <vector>

#include "core/interval.hpp"
#include "sampling/band.hpp"

namespace sdrbist::sampling {

/// One alias-free sampling-rate window with its wedge index n.
struct pbs_window {
    int n = 0;        ///< Nyquist-zone index (1 = fs >= 2·f_hi)
    interval rates{}; ///< [fs_min, fs_max] of the window
};

/// All alias-free windows intersected with [fs_min, fs_max]
/// (fs_max may be +infinity for the open n = 1 region).
std::vector<pbs_window> alias_free_windows(const band_spec& band,
                                           double fs_min, double fs_max);

/// True when uniform sampling at fs causes no spectral overlap of the band.
bool is_alias_free(const band_spec& band, double fs);

/// The lowest alias-free rate (>= 2·B, equality iff f_hi/B is an integer).
double min_alias_free_rate(const band_spec& band);

/// Distance from fs to the nearest aliasing boundary: positive inside an
/// alias-free window (margin available to clock error), negative when fs
/// aliases (distance to the nearest valid window edge).
double aliasing_margin(const band_spec& band, double fs);

/// Index of the Nyquist zone [m·fs/2, (m+1)·fs/2) containing frequency f
/// (m = 0 is baseband).
int nyquist_zone(double f, double fs);

/// Frequency to which a tone at f folds after sampling at fs
/// (result in [0, fs/2]).
double folded_frequency(double f, double fs);

} // namespace sdrbist::sampling

/// \file hw_recon.hpp
/// \brief Hardware-mapped PNBS reconstructor — the paper's §VI future work
///        ("efficient mapping to hardware of our nonuniform sampler").
///
/// The product form of the Kohlenberg kernel factors each term into
///   s0(τ) = -sin(a0·τ - φ)·[c0·sinc(f0·τ)] / sin φ
/// where the bracketed *envelope* varies no faster than the channel rate B,
/// while the sine oscillates near the carrier.  Because a0·T = π·k, the
/// sine argument shifts by an integer multiple of π from tap to tap:
///   sin(a0·(τ - jT) - φ) = (-1)^{k·j} · sin(a0·τ - φ).
/// A hardware datapath therefore needs only
///   * four NCO sine evaluations per output sample (s0/s1 × even/odd), and
///   * four dot products between the sample records and *slow* envelope
///     tables, stored on a fractional-delay grid with quantised
///     coefficients.
/// This class models exactly that datapath (table ROM + NCO + MACs) so the
/// wordlength / grid-density trade-offs can be measured before an RTL
/// implementation.
#pragma once

#include <cstddef>
#include <vector>

#include "sampling/pnbs.hpp"

namespace sdrbist::sampling {

/// Hardware-mapping parameters.
struct hw_recon_options {
    std::size_t taps = 61;        ///< reconstruction window (odd)
    double kaiser_beta = 8.0;     ///< window for kernel truncation
    std::size_t phase_steps = 64; ///< fractional-delay grid points per T
    int coeff_bits = 16;          ///< envelope-table word length
                                  ///< (0 = unquantised doubles)
    bool interpolate_phases = true; ///< linear blend between grid points
                                    ///< (two ROM reads per MAC in hardware)
};

/// Table-driven reconstructor with the same interface as the reference
/// pnbs_reconstructor.
class hw_pnbs_reconstructor {
public:
    hw_pnbs_reconstructor(std::vector<double> even, std::vector<double> odd,
                          double period, double t_start,
                          const band_spec& band, double delay_hypothesis,
                          const hw_recon_options& opt = {});

    /// Reconstructed value at absolute time t.
    [[nodiscard]] double value(double t) const;

    /// Batch evaluation.
    [[nodiscard]] std::vector<double>
    values(const std::vector<double>& t) const;

    [[nodiscard]] double valid_begin() const;
    [[nodiscard]] double valid_end() const;

    /// Envelope-table ROM footprint in bytes for the configured wordlength
    /// (hardware costing; doubles count as 8 bytes).
    [[nodiscard]] std::size_t rom_bytes() const;

    [[nodiscard]] const hw_recon_options& options() const { return opt_; }

private:
    std::vector<double> even_;
    std::vector<double> odd_;
    double period_;
    double t_start_;
    band_spec band_;
    double delay_;
    hw_recon_options opt_;

    // Carrier (NCO) parameters.
    double a0_ = 0.0, phi_ = 0.0, sign_k_ = 1.0;   // s0 term
    double a1_ = 0.0, psi_ = 0.0, sign_kp_ = 1.0;  // s1 term
    bool s0_vanishes_ = false;

    // Envelope tables [phase][tap]: even-stream s0/s1, odd-stream s0/s1.
    // Stored already scaled back from the quantisation grid.
    std::vector<std::vector<double>> env0_even_, env1_even_;
    std::vector<std::vector<double>> env0_odd_, env1_odd_;

    void build_tables();
    [[nodiscard]] double dot(const std::vector<std::vector<double>>& table,
                             const std::vector<double>& samples, long n0,
                             double frac, double tap_sign) const;
};

} // namespace sdrbist::sampling

#include "sampling/pnbs.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/simd/kernel_backend.hpp"
#include "core/units.hpp"
#include "dsp/window.hpp"

namespace sdrbist::sampling {

// ---- kernel -----------------------------------------------------------------

kohlenberg_kernel::kohlenberg_kernel(const band_spec& band, double delay)
    : band_(band), delay_(delay) {
    band_.validate();
    SDRBIST_EXPECTS(delay_ > 0.0);
    const double b = band_.bandwidth();
    const double fl = band_.f_lo;
    k_ = ceil_snapped(2.0 * fl / b);
    const double kd = static_cast<double>(k_);

    // s0 product-form coefficients.
    f0_ = kd * b - 2.0 * fl;       // sinc argument frequency (may be 0)
    c0_ = f0_ / b;                 // t = 0 value of the s0 envelope
    a0_ = pi * kd * b;             // sin argument slope
    phi_ = kd * pi * b * delay_;
    sin_phi_ = std::sin(phi_);
    s0_vanishes_ = std::abs(c0_) < 1e-12;

    // s1 coefficients (k⁺ = k + 1).
    const double kp = kd + 1.0;
    f1_ = 2.0 * fl + b - kd * b;   // = B - f0
    c1_ = f1_ / b;
    a1_ = pi * kp * b;
    psi_ = kp * pi * b * delay_;
    sin_psi_ = std::sin(psi_);

    // Paper eq. (3): instability when D hits n·T/k (unless s0 vanishes)
    // or n·T/k⁺.
    if (!s0_vanishes_)
        SDRBIST_EXPECTS(std::abs(sin_phi_) > 1e-9);
    SDRBIST_EXPECTS(std::abs(sin_psi_) > 1e-9);
}

double kohlenberg_kernel::s0(double t) const {
    if (s0_vanishes_)
        return 0.0;
    return -std::sin(a0_ * t - phi_) * c0_ * sinc(f0_ * t) / sin_phi_;
}

double kohlenberg_kernel::s1(double t) const {
    return -std::sin(a1_ * t - psi_) * c1_ * sinc(f1_ * t) / sin_psi_;
}

bool kohlenberg_kernel::delay_is_stable(const band_spec& band, double delay,
                                        double rel_tol) {
    band.validate();
    if (delay <= 0.0)
        return false;
    const double b = band.bandwidth();
    const double t = 1.0 / b;
    const long k = ceil_snapped(2.0 * band.f_lo / b);
    const bool s0_vanishes = std::abs(k * b - 2.0 * band.f_lo) < 1e-12 * b;

    auto near_multiple = [&](double step) {
        const double q = delay / step;
        return std::abs(q - std::round(q)) * step < rel_tol * t;
    };
    if (!s0_vanishes && near_multiple(t / static_cast<double>(k)))
        return false;
    if (near_multiple(t / static_cast<double>(k + 1)))
        return false;
    return true;
}

std::vector<double>
kohlenberg_kernel::forbidden_delays(const band_spec& band, double max_delay) {
    band.validate();
    SDRBIST_EXPECTS(max_delay > 0.0);
    const double b = band.bandwidth();
    const double t = 1.0 / b;
    const long k = ceil_snapped(2.0 * band.f_lo / b);
    const bool s0_vanishes = std::abs(k * b - 2.0 * band.f_lo) < 1e-12 * b;

    std::vector<double> out;
    // Each delay is computed as n·step (not by accumulating `+= step`,
    // which drifts by n·ulp over many multiples).
    auto add_multiples = [&](double step) {
        const double limit = max_delay * (1.0 + 1e-12);
        for (long n = 1; static_cast<double>(n) * step <= limit; ++n)
            out.push_back(static_cast<double>(n) * step);
    };
    if (!s0_vanishes)
        add_multiples(t / static_cast<double>(k));
    add_multiples(t / static_cast<double>(k + 1));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end(),
                          [&](double a, double c) {
                              return std::abs(a - c) < 1e-18;
                          }),
              out.end());
    return out;
}

double kohlenberg_kernel::optimal_delay(const band_spec& band) {
    band.validate();
    return 1.0 / (4.0 * band.centre());
}

double kohlenberg_kernel::error_bound(const band_spec& band, double delta_d) {
    band.validate();
    const double b = band.bandwidth();
    const long k = ceil_snapped(2.0 * band.f_lo / b);
    return pi * b * static_cast<double>(k + 1) * std::abs(delta_d);
}

double kohlenberg_kernel::required_delay_accuracy(const band_spec& band,
                                                  double delta_f) {
    band.validate();
    SDRBIST_EXPECTS(delta_f > 0.0);
    const double b = band.bandwidth();
    const long k = ceil_snapped(2.0 * band.f_lo / b);
    return delta_f / (pi * b * static_cast<double>(k + 1));
}

// ---- reconstructor ----------------------------------------------------------

pnbs_reconstructor::pnbs_reconstructor(std::vector<double> even,
                                       std::vector<double> odd, double period,
                                       double t_start, const band_spec& band,
                                       double delay_hypothesis,
                                       const pnbs_options& opt)
    : even_(std::move(even)), odd_(std::move(odd)), period_(period),
      t_start_(t_start), kernel_(band, delay_hypothesis), opt_(opt),
      window_(opt.kaiser_beta), ops_(&simd::kernel_backend::select()) {
    SDRBIST_EXPECTS(period_ > 0.0);
    SDRBIST_EXPECTS(even_.size() == odd_.size());
    SDRBIST_EXPECTS(opt_.taps >= 5 && opt_.taps % 2 == 1);
    SDRBIST_EXPECTS(even_.size() > opt_.taps);
    // The kernel assumes T = 1/B; the caller's period must match the band.
    SDRBIST_EXPECTS(approx_equal(period_ * band.bandwidth(), 1.0, 1e-9));

    // Fused fast-path constants: the kernel's product form
    //   s0(τ) = -sin(a0·τ - φ)·c0·sinc(f0·τ)/sin φ
    // evaluated at τ = (frac - j)·T (even stream) and (j - frac)·T + D̂
    // (odd stream) splits into per-call sines, per-tap sign flips
    // (-1)^{k·j}, and per-tap sinc terms whose phases advance by ±π·f·T
    // per tap — a rotation recurrence.
    half_ = static_cast<long>(opt_.taps / 2);
    half_span_ = static_cast<double>(half_) + 1.0;
    const double d_hat = kernel_.delay();
    d_frac_ = d_hat / period_;
    g0_ = kernel_.s0_vanishes() ? 0.0 : kernel_.c0() / kernel_.sin_phi();
    g1_ = kernel_.c1() / kernel_.sin_psi();
    del0_ = pi * kernel_.f0() * period_;
    del1_ = pi * kernel_.f1() * period_;
    eps0_ = pi * kernel_.f0() * d_hat;
    eps1_ = pi * kernel_.f1() * d_hat;
    cd0_ = std::cos(del0_);
    sd0_ = std::sin(del0_);
    cd1_ = std::cos(del1_);
    sd1_ = std::sin(del1_);
}

double pnbs_reconstructor::value(double t) const {
    const double tr = t - t_start_;
    const double pos = tr / period_;
    const auto centre = static_cast<long>(std::llround(pos));
    const double frac = pos - static_cast<double>(centre); // in [-0.5, 0.5]
    const auto n_max = static_cast<long>(even_.size()) - 1;

    // Tap offsets j = n - centre, clamped to the records once so the tap
    // loops below run branch-free over contiguous memory.
    const long j_lo = std::max(centre - half_, 0L) - centre;
    const long j_hi = std::min(centre + half_, n_max) - centre;
    if (j_lo > j_hi)
        return 0.0;
    const auto count = static_cast<std::size_t>(j_hi - j_lo + 1);

    const bool s0_zero = kernel_.s0_vanishes();
    const double kd = static_cast<double>(kernel_.k());
    const double kpd = kd + 1.0;

    // Per-call NCO factors: sin(a·τ - φ) at every tap differs from these
    // only by the (-1)^{k·j} flip, so four sines serve the whole window.
    const double thk = pi * kd * frac;
    const double thp = pi * kpd * frac;
    const double s0e = s0_zero ? 0.0 : -std::sin(thk - kernel_.phi()) * g0_;
    const double s1e = -std::sin(thp - kernel_.psi()) * g1_;
    const double s0o = s0_zero ? 0.0 : std::sin(thk) * g0_;
    const double s1o = std::sin(thp) * g1_;

    // Rotation-recurrence state for the four sinc numerators.  The even
    // phases decrease by del as j increases; the odd phases increase.
    const double fj0 = frac - static_cast<double>(j_lo);
    double sn0e = std::sin(del0_ * fj0);
    double cs0e = std::cos(del0_ * fj0);
    double sn1e = std::sin(del1_ * fj0);
    double cs1e = std::cos(del1_ * fj0);
    double sn0o = std::sin(eps0_ - del0_ * fj0);
    double cs0o = std::cos(eps0_ - del0_ * fj0);
    double sn1o = std::sin(eps1_ - del1_ * fj0);
    double cs1o = std::cos(eps1_ - del1_ * fj0);

    const bool k_odd = (kernel_.k() & 1L) != 0;
    const bool kp_odd = !k_odd;
    double sk = (k_odd && (j_lo & 1L) != 0) ? -1.0 : 1.0;
    double skp = (kp_odd && (j_lo & 1L) != 0) ? -1.0 : 1.0;
    const double sk_step = k_odd ? -1.0 : 1.0;
    const double skp_step = kp_odd ? -1.0 : 1.0;

    // Stage 1: fill the per-tap coefficient arrays (serial recurrences).
    static thread_local std::vector<double> ce_buf, co_buf;
    ce_buf.resize(count);
    co_buf.resize(count);
    double* ce = ce_buf.data();
    double* co = co_buf.data();

    const double inv_span = 1.0 / half_span_;
    for (std::size_t i = 0; i < count; ++i) {
        const double fj =
            frac - static_cast<double>(j_lo + static_cast<long>(i));
        const double w_e = window_(fj * inv_span);
        const double w_o = window_((fj - d_frac_) * inv_span);

        const double th0e = del0_ * fj;        // π·f0·τ_even
        const double th1e = del1_ * fj;
        const double th0o = eps0_ - th0e;      // π·f0·τ_odd
        const double th1o = eps1_ - th1e;
        const double snc0e = s0_zero ? 0.0 : sn0e / th0e;
        const double snc1e = sn1e / th1e;
        const double snc0o = s0_zero ? 0.0 : sn0o / th0o;
        const double snc1o = sn1o / th1o;

        ce[i] = w_e * (s0e * sk * snc0e + s1e * skp * snc1e);
        co[i] = w_o * (s0o * sk * snc0o + s1o * skp * snc1o);

        // Advance the four rotations by one tap.
        const double t0e = sn0e * cd0_ - cs0e * sd0_;
        cs0e = cs0e * cd0_ + sn0e * sd0_;
        sn0e = t0e;
        const double t1e = sn1e * cd1_ - cs1e * sd1_;
        cs1e = cs1e * cd1_ + sn1e * sd1_;
        sn1e = t1e;
        const double t0o = sn0o * cd0_ + cs0o * sd0_;
        cs0o = cs0o * cd0_ - sn0o * sd0_;
        sn0o = t0o;
        const double t1o = sn1o * cd1_ + cs1o * sd1_;
        cs1o = cs1o * cd1_ - sn1o * sd1_;
        sn1o = t1o;

        sk *= sk_step;
        skp *= skp_step;
    }

    // Stage 2 prep: the sinc quotients above are ill-conditioned where the
    // kernel argument crosses zero (at most one tap per stream); patch
    // those taps with the exact library sinc.
    const double d_hat = kernel_.delay();
    {
        const long j_e = std::llround(frac); // even-stream zero crossing
        if (j_e >= j_lo && j_e <= j_hi) {
            const auto i = static_cast<std::size_t>(j_e - j_lo);
            const double fj = frac - static_cast<double>(j_e);
            const double tau = fj * period_;
            const double sgn_k = (k_odd && (j_e & 1L) != 0) ? -1.0 : 1.0;
            const double sgn_kp = (kp_odd && (j_e & 1L) != 0) ? -1.0 : 1.0;
            const double snc0 = s0_zero ? 0.0 : sinc(kernel_.f0() * tau);
            const double snc1 = sinc(kernel_.f1() * tau);
            ce[i] = window_(fj * inv_span) *
                    (s0e * sgn_k * snc0 + s1e * sgn_kp * snc1);
        }
        const long j_o = std::llround(frac - d_frac_); // odd-stream crossing
        if (j_o >= j_lo && j_o <= j_hi) {
            const auto i = static_cast<std::size_t>(j_o - j_lo);
            const double fj = frac - static_cast<double>(j_o);
            const double tau = d_hat - fj * period_;
            const double sgn_k = (k_odd && (j_o & 1L) != 0) ? -1.0 : 1.0;
            const double sgn_kp = (kp_odd && (j_o & 1L) != 0) ? -1.0 : 1.0;
            const double snc0 = s0_zero ? 0.0 : sinc(kernel_.f0() * tau);
            const double snc1 = sinc(kernel_.f1() * tau);
            co[i] = window_((fj - d_frac_) * inv_span) *
                    (s0o * sgn_k * snc0 + s1o * sgn_kp * snc1);
        }
    }

    // Stage 2: the fused even/odd pair of contiguous dot products, run on
    // the dispatched SIMD backend.
    const double* ev = even_.data() + (centre + j_lo);
    const double* od = odd_.data() + (centre + j_lo);
    double acc_e = 0.0;
    double acc_o = 0.0;
    ops_->dot2(ev, ce, od, co, count, &acc_e, &acc_o);
    return acc_e + acc_o;
}

double pnbs_reconstructor::value_reference(double t) const {
    const double tr = t - t_start_;
    const double pos = tr / period_;
    const auto centre = static_cast<long>(std::llround(pos));
    const auto half = static_cast<long>(opt_.taps / 2);
    const auto n_max = static_cast<long>(even_.size()) - 1;
    const double half_span = static_cast<double>(half) + 1.0;
    const double d_hat = kernel_.delay();
    const double d_frac = d_hat / period_;

    double acc = 0.0;
    for (long n = centre - half; n <= centre + half; ++n) {
        if (n < 0 || n > n_max)
            continue;
        const double nt = static_cast<double>(n) * period_;
        // Even stream: f(nT)·s(t - nT), windowed by distance in periods.
        const double u0 = (pos - static_cast<double>(n)) / half_span;
        acc += even_[static_cast<std::size_t>(n)] * kernel_.s(tr - nt) *
               window_at(u0);
        // Odd stream: f(nT+D)·s(nT + D - t).
        const double u1 =
            (pos - static_cast<double>(n) - d_frac) / half_span;
        acc += odd_[static_cast<std::size_t>(n)] * kernel_.s(nt + d_hat - tr) *
               window_at(u1);
    }
    return acc;
}

std::vector<double>
pnbs_reconstructor::values(std::span<const double> t) const {
    std::vector<double> out(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = value(t[i]);
    return out;
}

std::vector<double>
pnbs_reconstructor::values_reference(std::span<const double> t) const {
    std::vector<double> out(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = value_reference(t[i]);
    return out;
}

std::vector<double> pnbs_reconstructor::uniform(double t0, double rate,
                                                std::size_t n) const {
    SDRBIST_EXPECTS(rate > 0.0);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = value(t0 + static_cast<double>(i) / rate);
    return out;
}

std::vector<double>
pnbs_reconstructor::uniform_reference(double t0, double rate,
                                      std::size_t n) const {
    SDRBIST_EXPECTS(rate > 0.0);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = value_reference(t0 + static_cast<double>(i) / rate);
    return out;
}

double pnbs_reconstructor::valid_begin() const {
    return t_start_ + static_cast<double>(opt_.taps / 2 + 1) * period_;
}

double pnbs_reconstructor::valid_end() const {
    return t_start_ +
           (static_cast<double>(even_.size()) -
            static_cast<double>(opt_.taps / 2) - 2.0) *
               period_;
}

} // namespace sdrbist::sampling

#include "sampling/pnbs.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/units.hpp"
#include "dsp/window.hpp"

namespace sdrbist::sampling {

// ---- kernel -----------------------------------------------------------------

kohlenberg_kernel::kohlenberg_kernel(const band_spec& band, double delay)
    : band_(band), delay_(delay) {
    band_.validate();
    SDRBIST_EXPECTS(delay_ > 0.0);
    const double b = band_.bandwidth();
    const double fl = band_.f_lo;
    k_ = ceil_snapped(2.0 * fl / b);
    const double kd = static_cast<double>(k_);

    // s0 product-form coefficients.
    f0_ = kd * b - 2.0 * fl;       // sinc argument frequency (may be 0)
    c0_ = f0_ / b;                 // t = 0 value of the s0 envelope
    a0_ = pi * kd * b;             // sin argument slope
    phi_ = kd * pi * b * delay_;
    sin_phi_ = std::sin(phi_);
    s0_vanishes_ = std::abs(c0_) < 1e-12;

    // s1 coefficients (k⁺ = k + 1).
    const double kp = kd + 1.0;
    f1_ = 2.0 * fl + b - kd * b;   // = B - f0
    c1_ = f1_ / b;
    a1_ = pi * kp * b;
    psi_ = kp * pi * b * delay_;
    sin_psi_ = std::sin(psi_);

    // Paper eq. (3): instability when D hits n·T/k (unless s0 vanishes)
    // or n·T/k⁺.
    if (!s0_vanishes_)
        SDRBIST_EXPECTS(std::abs(sin_phi_) > 1e-9);
    SDRBIST_EXPECTS(std::abs(sin_psi_) > 1e-9);
}

double kohlenberg_kernel::s0(double t) const {
    if (s0_vanishes_)
        return 0.0;
    return -std::sin(a0_ * t - phi_) * c0_ * sinc(f0_ * t) / sin_phi_;
}

double kohlenberg_kernel::s1(double t) const {
    return -std::sin(a1_ * t - psi_) * c1_ * sinc(f1_ * t) / sin_psi_;
}

bool kohlenberg_kernel::delay_is_stable(const band_spec& band, double delay,
                                        double rel_tol) {
    band.validate();
    if (delay <= 0.0)
        return false;
    const double b = band.bandwidth();
    const double t = 1.0 / b;
    const long k = ceil_snapped(2.0 * band.f_lo / b);
    const bool s0_vanishes = std::abs(k * b - 2.0 * band.f_lo) < 1e-12 * b;

    auto near_multiple = [&](double step) {
        const double q = delay / step;
        return std::abs(q - std::round(q)) * step < rel_tol * t;
    };
    if (!s0_vanishes && near_multiple(t / static_cast<double>(k)))
        return false;
    if (near_multiple(t / static_cast<double>(k + 1)))
        return false;
    return true;
}

std::vector<double>
kohlenberg_kernel::forbidden_delays(const band_spec& band, double max_delay) {
    band.validate();
    SDRBIST_EXPECTS(max_delay > 0.0);
    const double b = band.bandwidth();
    const double t = 1.0 / b;
    const long k = ceil_snapped(2.0 * band.f_lo / b);
    const bool s0_vanishes = std::abs(k * b - 2.0 * band.f_lo) < 1e-12 * b;

    std::vector<double> out;
    auto add_multiples = [&](double step) {
        for (double d = step; d <= max_delay * (1.0 + 1e-12); d += step)
            out.push_back(d);
    };
    if (!s0_vanishes)
        add_multiples(t / static_cast<double>(k));
    add_multiples(t / static_cast<double>(k + 1));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end(),
                          [&](double a, double c) {
                              return std::abs(a - c) < 1e-18;
                          }),
              out.end());
    return out;
}

double kohlenberg_kernel::optimal_delay(const band_spec& band) {
    band.validate();
    return 1.0 / (4.0 * band.centre());
}

double kohlenberg_kernel::error_bound(const band_spec& band, double delta_d) {
    band.validate();
    const double b = band.bandwidth();
    const long k = ceil_snapped(2.0 * band.f_lo / b);
    return pi * b * static_cast<double>(k + 1) * std::abs(delta_d);
}

double kohlenberg_kernel::required_delay_accuracy(const band_spec& band,
                                                  double delta_f) {
    band.validate();
    SDRBIST_EXPECTS(delta_f > 0.0);
    const double b = band.bandwidth();
    const long k = ceil_snapped(2.0 * band.f_lo / b);
    return delta_f / (pi * b * static_cast<double>(k + 1));
}

// ---- reconstructor ----------------------------------------------------------

pnbs_reconstructor::pnbs_reconstructor(std::vector<double> even,
                                       std::vector<double> odd, double period,
                                       double t_start, const band_spec& band,
                                       double delay_hypothesis,
                                       const pnbs_options& opt)
    : even_(std::move(even)), odd_(std::move(odd)), period_(period),
      t_start_(t_start), kernel_(band, delay_hypothesis), opt_(opt) {
    SDRBIST_EXPECTS(period_ > 0.0);
    SDRBIST_EXPECTS(even_.size() == odd_.size());
    SDRBIST_EXPECTS(opt_.taps >= 5 && opt_.taps % 2 == 1);
    SDRBIST_EXPECTS(even_.size() > opt_.taps);
    // The kernel assumes T = 1/B; the caller's period must match the band.
    SDRBIST_EXPECTS(approx_equal(period_ * band.bandwidth(), 1.0, 1e-9));

    // Kaiser LUT over u in [0, 1] (symmetric window, linear interpolation).
    constexpr std::size_t lut_size = 2048;
    window_lut_.resize(lut_size + 1);
    for (std::size_t i = 0; i <= lut_size; ++i)
        window_lut_[i] = dsp::kaiser_window_at(
            static_cast<double>(i) / static_cast<double>(lut_size),
            opt_.kaiser_beta);
}

double pnbs_reconstructor::window_at(double u) const {
    u = std::abs(u);
    if (u >= 1.0)
        return 0.0;
    const double pos = u * static_cast<double>(window_lut_.size() - 1);
    const auto i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    return window_lut_[i] + frac * (window_lut_[i + 1] - window_lut_[i]);
}

double pnbs_reconstructor::value(double t) const {
    const double tr = t - t_start_;
    const double pos = tr / period_;
    const auto centre = static_cast<long>(std::llround(pos));
    const auto half = static_cast<long>(opt_.taps / 2);
    const auto n_max = static_cast<long>(even_.size()) - 1;
    const double half_span = static_cast<double>(half) + 1.0;
    const double d_hat = kernel_.delay();
    const double d_frac = d_hat / period_;

    double acc = 0.0;
    for (long n = centre - half; n <= centre + half; ++n) {
        if (n < 0 || n > n_max)
            continue;
        const double nt = static_cast<double>(n) * period_;
        // Even stream: f(nT)·s(t - nT), windowed by distance in periods.
        const double u0 = (pos - static_cast<double>(n)) / half_span;
        acc += even_[static_cast<std::size_t>(n)] * kernel_.s(tr - nt) *
               window_at(u0);
        // Odd stream: f(nT+D)·s(nT + D - t).
        const double u1 =
            (pos - static_cast<double>(n) - d_frac) / half_span;
        acc += odd_[static_cast<std::size_t>(n)] * kernel_.s(nt + d_hat - tr) *
               window_at(u1);
    }
    return acc;
}

std::vector<double>
pnbs_reconstructor::values(const std::vector<double>& t) const {
    std::vector<double> out(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = value(t[i]);
    return out;
}

std::vector<double> pnbs_reconstructor::uniform(double t0, double rate,
                                                std::size_t n) const {
    SDRBIST_EXPECTS(rate > 0.0);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = value(t0 + static_cast<double>(i) / rate);
    return out;
}

double pnbs_reconstructor::valid_begin() const {
    return t_start_ + static_cast<double>(opt_.taps / 2 + 1) * period_;
}

double pnbs_reconstructor::valid_end() const {
    return t_start_ +
           (static_cast<double>(even_.size()) -
            static_cast<double>(opt_.taps / 2) - 2.0) *
               period_;
}

} // namespace sdrbist::sampling

/// \file pnbs.hpp
/// \brief Second-order Periodically Nonuniform Bandpass Sampling (PNBS):
///        the Kohlenberg interpolation kernel (paper eqs. (1)–(3)) and the
///        truncated, Kaiser-windowed reconstructor (eq. (6)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.hpp"
#include "sampling/band.hpp"

namespace sdrbist::simd {
struct kernel_ops;
}

namespace sdrbist::sampling {

/// Kohlenberg second-order interpolation kernel s(t) = s0(t) + s1(t) for a
/// band [f_lo, f_hi] sampled as two uniform streams f(nT), f(nT+D) with
/// T = 1/B.
///
/// Implementation note: the paper's eq. (2) quotient form has a removable
/// singularity at t = 0; we evaluate the algebraically equivalent
/// product form
///   s0(t) = -sin(π·k·B·t - φ) · (k - 2·f_lo/B) · sinc((k·B-2·f_lo)·t) / sin φ
/// (and analogously s1 with k⁺, ψ), which is stable for all t.
/// φ = k·π·B·D, ψ = k⁺·π·B·D.
class kohlenberg_kernel {
public:
    /// \param band  signal band; T is implied as 1/bandwidth
    /// \param delay the inter-stream delay D (or its estimate D̂)
    /// Preconditions: band valid; D stable (not at a forbidden value —
    /// check with delay_is_stable() first; construction enforces it).
    kohlenberg_kernel(const band_spec& band, double delay);

    /// Kernel value s(t).
    [[nodiscard]] double s(double t) const { return s0(t) + s1(t); }

    /// First kernel term (vanishes identically when 2·f_lo/B is integer).
    [[nodiscard]] double s0(double t) const;

    /// Second kernel term.
    [[nodiscard]] double s1(double t) const;

    /// k = ceil(2·f_lo/B)  (paper eq. (2d)).
    [[nodiscard]] long k() const { return k_; }

    /// k⁺ = k + 1.
    [[nodiscard]] long k_plus() const { return k_ + 1; }

    [[nodiscard]] double delay() const { return delay_; }
    [[nodiscard]] const band_spec& band() const { return band_; }

    // Product-form coefficients, exposed so reconstructors can fuse the
    // kernel evaluation (per-tap phase recurrences instead of per-tap
    // transcendentals).
    [[nodiscard]] double f0() const { return f0_; }  ///< s0 sinc frequency
    [[nodiscard]] double f1() const { return f1_; }  ///< s1 sinc frequency
    [[nodiscard]] double c0() const { return c0_; }  ///< s0 envelope at t=0
    [[nodiscard]] double c1() const { return c1_; }  ///< s1 envelope at t=0
    [[nodiscard]] double phi() const { return phi_; }       ///< k·π·B·D
    [[nodiscard]] double psi() const { return psi_; }       ///< k⁺·π·B·D
    [[nodiscard]] double sin_phi() const { return sin_phi_; }
    [[nodiscard]] double sin_psi() const { return sin_psi_; }
    [[nodiscard]] bool s0_vanishes() const { return s0_vanishes_; }

    /// Stability test of a candidate delay (paper eq. (3)): D must not be a
    /// multiple of T/k or T/k⁺ (within a relative tolerance of T).
    static bool delay_is_stable(const band_spec& band, double delay,
                                double rel_tol = 1e-6);

    /// All forbidden delays n·T/k and n·T/k⁺ in (0, max_delay].
    static std::vector<double> forbidden_delays(const band_spec& band,
                                                double max_delay);

    /// Magnitude-optimal delay |D| = 1/(4·fc) (paper §II-B1, from [12]).
    static double optimal_delay(const band_spec& band);

    /// First-order reconstruction error bound (paper eq. (4)):
    /// ΔF ≈ π·B·(k+1)·ΔD for a delay-estimate error ΔD.
    static double error_bound(const band_spec& band, double delta_d);

    /// Inverse of error_bound: the |ΔD| tolerated for a relative spectrum
    /// error ΔF (paper example eq. (5): 1 % at 1 GHz/80 MHz -> ~2 ps).
    static double required_delay_accuracy(const band_spec& band,
                                          double delta_f);

private:
    band_spec band_;
    double delay_;
    long k_;
    // Precomputed coefficients of the product form.
    double a0_, f0_, c0_, sin_phi_, phi_;
    double a1_, f1_, c1_, sin_psi_, psi_;
    bool s0_vanishes_;
};

/// Reconstruction options for the truncated kernel (paper: 61 taps, Kaiser).
struct pnbs_options {
    std::size_t taps = 61;    ///< number of sample pairs in the window (odd)
    double kaiser_beta = 8.0; ///< window shape for kernel truncation
};

/// Practical PNBS reconstructor (paper eq. (6)): evaluates
///   f(t) ≈ Σ_{n in window} [ f(nT)·s(t-nT) + f(nT+D̂)·s(nT+D̂-t) ]·w(·)
/// from finite records of the two sample streams.
///
/// The default evaluation path fuses s0 + s1 into per-call NCO factors plus
/// per-tap rotation recurrences: the tap index enters the kernel's sin()
/// arguments only through integer multiples of π·k / π·k⁺ (pure sign
/// flips), so four sines per evaluation replace the four sines per *tap*
/// of the textbook form, and the remaining per-tap cost is multiplies, a
/// division and a window LUT load.  The accumulation runs as two
/// contiguous dot products over the even/odd records so the compiler can
/// vectorise it.  `value_reference()` retains the direct per-tap
/// transcendental evaluation; `uniform()` calls the same fused kernel as
/// `value()` and is therefore bit-identical to per-point evaluation.
class pnbs_reconstructor {
public:
    /// \param even     f(t_start + n·T) record
    /// \param odd      f(t_start + n·T + D) record
    /// \param period   T = 1/B
    /// \param t_start  absolute time of even[0]
    /// \param band     assumed signal band (defines the kernel)
    /// \param delay_hypothesis D̂ used for reconstruction
    /// \param opt      taps / window
    pnbs_reconstructor(std::vector<double> even, std::vector<double> odd,
                       double period, double t_start, const band_spec& band,
                       double delay_hypothesis, const pnbs_options& opt = {});

    /// Reconstructed value at absolute time t (fused fast path).
    [[nodiscard]] double value(double t) const;

    /// Batch evaluation (bit-identical to per-point value()).
    [[nodiscard]] std::vector<double> values(std::span<const double> t) const;

    /// Uniform-grid evaluation: n values at t0, t0+1/rate, ...
    /// Bit-identical to calling value(t0 + i/rate) per point.
    [[nodiscard]] std::vector<double> uniform(double t0, double rate,
                                              std::size_t n) const;

    /// Reference evaluation: direct per-tap kernel transcendentals
    /// (retained, like dft_reference, so tests and benches can bound the
    /// fused fast path's deviation).
    [[nodiscard]] double value_reference(double t) const;

    /// Batch / uniform-grid reference evaluation.
    [[nodiscard]] std::vector<double>
    values_reference(std::span<const double> t) const;
    [[nodiscard]] std::vector<double>
    uniform_reference(double t0, double rate, std::size_t n) const;

    /// Earliest/latest t with the full tap window inside the records.
    [[nodiscard]] double valid_begin() const;
    [[nodiscard]] double valid_end() const;

    [[nodiscard]] const kohlenberg_kernel& kernel() const { return kernel_; }
    [[nodiscard]] double period() const { return period_; }

    /// SIMD kernel backend running the stage-2 dot products (captured from
    /// simd::kernel_backend::select() at construction).
    [[nodiscard]] const simd::kernel_ops& backend() const { return *ops_; }

private:
    std::vector<double> even_;
    std::vector<double> odd_;
    double period_;
    double t_start_;
    kohlenberg_kernel kernel_;
    pnbs_options opt_;
    dsp::kaiser_lut window_; ///< shared continuous Kaiser window LUT
    const simd::kernel_ops* ops_;

    // Fused fast-path constants (derived from the kernel in the ctor).
    long half_ = 0;          ///< taps / 2
    double half_span_ = 0.0; ///< half + 1, window normalisation
    double d_frac_ = 0.0;    ///< D̂ / T
    double g0_ = 0.0;        ///< c0 / sin φ (0 when s0 vanishes)
    double g1_ = 0.0;        ///< c1 / sin ψ
    double del0_ = 0.0;      ///< π·f0·T, per-tap phase step of the s0 sinc
    double del1_ = 0.0;      ///< π·f1·T
    double eps0_ = 0.0;      ///< π·f0·D̂, odd-stream phase offset
    double eps1_ = 0.0;      ///< π·f1·D̂
    double cd0_ = 1.0, sd0_ = 0.0; ///< cos/sin of del0 (rotation recurrence)
    double cd1_ = 1.0, sd1_ = 0.0; ///< cos/sin of del1

    [[nodiscard]] double window_at(double u) const { return window_(u); }
};

} // namespace sdrbist::sampling

/// \file pnbs.hpp
/// \brief Second-order Periodically Nonuniform Bandpass Sampling (PNBS):
///        the Kohlenberg interpolation kernel (paper eqs. (1)–(3)) and the
///        truncated, Kaiser-windowed reconstructor (eq. (6)).
#pragma once

#include <cstddef>
#include <vector>

#include "sampling/band.hpp"

namespace sdrbist::sampling {

/// Kohlenberg second-order interpolation kernel s(t) = s0(t) + s1(t) for a
/// band [f_lo, f_hi] sampled as two uniform streams f(nT), f(nT+D) with
/// T = 1/B.
///
/// Implementation note: the paper's eq. (2) quotient form has a removable
/// singularity at t = 0; we evaluate the algebraically equivalent
/// product form
///   s0(t) = -sin(π·k·B·t - φ) · (k - 2·f_lo/B) · sinc((k·B-2·f_lo)·t) / sin φ
/// (and analogously s1 with k⁺, ψ), which is stable for all t.
/// φ = k·π·B·D, ψ = k⁺·π·B·D.
class kohlenberg_kernel {
public:
    /// \param band  signal band; T is implied as 1/bandwidth
    /// \param delay the inter-stream delay D (or its estimate D̂)
    /// Preconditions: band valid; D stable (not at a forbidden value —
    /// check with delay_is_stable() first; construction enforces it).
    kohlenberg_kernel(const band_spec& band, double delay);

    /// Kernel value s(t).
    [[nodiscard]] double s(double t) const { return s0(t) + s1(t); }

    /// First kernel term (vanishes identically when 2·f_lo/B is integer).
    [[nodiscard]] double s0(double t) const;

    /// Second kernel term.
    [[nodiscard]] double s1(double t) const;

    /// k = ceil(2·f_lo/B)  (paper eq. (2d)).
    [[nodiscard]] long k() const { return k_; }

    /// k⁺ = k + 1.
    [[nodiscard]] long k_plus() const { return k_ + 1; }

    [[nodiscard]] double delay() const { return delay_; }
    [[nodiscard]] const band_spec& band() const { return band_; }

    /// Stability test of a candidate delay (paper eq. (3)): D must not be a
    /// multiple of T/k or T/k⁺ (within a relative tolerance of T).
    static bool delay_is_stable(const band_spec& band, double delay,
                                double rel_tol = 1e-6);

    /// All forbidden delays n·T/k and n·T/k⁺ in (0, max_delay].
    static std::vector<double> forbidden_delays(const band_spec& band,
                                                double max_delay);

    /// Magnitude-optimal delay |D| = 1/(4·fc) (paper §II-B1, from [12]).
    static double optimal_delay(const band_spec& band);

    /// First-order reconstruction error bound (paper eq. (4)):
    /// ΔF ≈ π·B·(k+1)·ΔD for a delay-estimate error ΔD.
    static double error_bound(const band_spec& band, double delta_d);

    /// Inverse of error_bound: the |ΔD| tolerated for a relative spectrum
    /// error ΔF (paper example eq. (5): 1 % at 1 GHz/80 MHz -> ~2 ps).
    static double required_delay_accuracy(const band_spec& band,
                                          double delta_f);

private:
    band_spec band_;
    double delay_;
    long k_;
    // Precomputed coefficients of the product form.
    double a0_, f0_, c0_, sin_phi_, phi_;
    double a1_, f1_, c1_, sin_psi_, psi_;
    bool s0_vanishes_;
};

/// Reconstruction options for the truncated kernel (paper: 61 taps, Kaiser).
struct pnbs_options {
    std::size_t taps = 61;    ///< number of sample pairs in the window (odd)
    double kaiser_beta = 8.0; ///< window shape for kernel truncation
};

/// Practical PNBS reconstructor (paper eq. (6)): evaluates
///   f(t) ≈ Σ_{n in window} [ f(nT)·s(t-nT) + f(nT+D̂)·s(nT+D̂-t) ]·w(·)
/// from finite records of the two sample streams.
class pnbs_reconstructor {
public:
    /// \param even     f(t_start + n·T) record
    /// \param odd      f(t_start + n·T + D) record
    /// \param period   T = 1/B
    /// \param t_start  absolute time of even[0]
    /// \param band     assumed signal band (defines the kernel)
    /// \param delay_hypothesis D̂ used for reconstruction
    /// \param opt      taps / window
    pnbs_reconstructor(std::vector<double> even, std::vector<double> odd,
                       double period, double t_start, const band_spec& band,
                       double delay_hypothesis, const pnbs_options& opt = {});

    /// Reconstructed value at absolute time t.
    [[nodiscard]] double value(double t) const;

    /// Batch evaluation.
    [[nodiscard]] std::vector<double>
    values(const std::vector<double>& t) const;

    /// Uniform-grid evaluation: n values at t0, t0+1/rate, ...
    [[nodiscard]] std::vector<double> uniform(double t0, double rate,
                                              std::size_t n) const;

    /// Earliest/latest t with the full tap window inside the records.
    [[nodiscard]] double valid_begin() const;
    [[nodiscard]] double valid_end() const;

    [[nodiscard]] const kohlenberg_kernel& kernel() const { return kernel_; }
    [[nodiscard]] double period() const { return period_; }

private:
    std::vector<double> even_;
    std::vector<double> odd_;
    double period_;
    double t_start_;
    kohlenberg_kernel kernel_;
    pnbs_options opt_;
    std::vector<double> window_lut_; ///< Kaiser window on [0, 1], LUT

    [[nodiscard]] double window_at(double u) const; // |u| in [0,1]
};

} // namespace sdrbist::sampling

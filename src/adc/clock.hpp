/// \file clock.hpp
/// \brief Sampling-clock edge generation with deterministic Gaussian jitter.
///
/// The paper's evaluation: "The clock generator that drives the sample-and-
/// hold circuit is affected by a gaussian distributed time-skew jitter of
/// 3 ps rms."  Edges are nominal (t0 + n·T) plus i.i.d. Gaussian jitter.
#pragma once

#include <cstdint>
#include <vector>

#include "core/random.hpp"

namespace sdrbist::adc {

/// Clock model parameters.
struct clock_config {
    double period_s = 0.0;     ///< nominal period T
    double offset_s = 0.0;     ///< static phase offset t0 (e.g. DCDE delay)
    double jitter_rms_s = 0.0; ///< Gaussian edge jitter, seconds rms
};

/// Generates sampling instants for a jittered clock.
class sampling_clock {
public:
    /// \param config periods/offset/jitter
    /// \param seed   jitter stream seed (deterministic)
    sampling_clock(clock_config config, std::uint64_t seed);

    /// n edge times starting at edge index 0: t_k = offset + k·T + j_k.
    [[nodiscard]] std::vector<double> edges(std::size_t n);

    /// Nominal (jitter-free) edge time of index k.
    [[nodiscard]] double nominal_edge(std::size_t k) const {
        return config_.offset_s + static_cast<double>(k) * config_.period_s;
    }

    [[nodiscard]] const clock_config& config() const { return config_; }

private:
    clock_config config_;
    rng gen_;
};

} // namespace sdrbist::adc

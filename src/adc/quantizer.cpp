#include "adc/quantizer.hpp"

#include "core/contracts.hpp"

namespace sdrbist::adc {

quantizer::quantizer(quantizer_config config)
    : config_(config), ops_(&simd::kernel_backend::select()) {
    SDRBIST_EXPECTS(config_.bits >= 1 && config_.bits <= 24);
    SDRBIST_EXPECTS(config_.full_scale > 0.0);
    lsb_ = 2.0 * config_.full_scale /
           static_cast<double>(1 << config_.bits);
    // Kernel parameters of the mid-rise characteristic: channel errors act
    // on the analog sample before conversion, the range is clipped with the
    // top code kept reachable.
    params_.gain = 1.0 + config_.gain_error;
    params_.offset = config_.offset_error;
    params_.clip_lo = -config_.full_scale;
    params_.clip_hi = config_.full_scale - lsb_ * 1e-9;
    params_.lsb = lsb_;
}

double quantizer::quantize(double x) const {
    // The scalar table (not the dispatched one) keeps single-sample results
    // independent of backend selection; the kernel is bit-identical across
    // backends anyway, so process()/process_scaled() agree with this.
    double out = 0.0;
    simd::scalar_ops().quantize_midrise(&x, &out, 1, 1.0, params_);
    return out;
}

std::vector<double> quantizer::process(std::span<const double> x) const {
    return process_scaled(x, 1.0);
}

std::vector<double> quantizer::process_scaled(std::span<const double> x,
                                              double scale) const {
    std::vector<double> out(x.size());
    ops_->quantize_midrise(x.data(), out.data(), x.size(), scale, params_);
    return out;
}

double quantizer::ideal_snr_db(int bits) {
    SDRBIST_EXPECTS(bits >= 1);
    return 6.0206 * static_cast<double>(bits) + 1.7609;
}

} // namespace sdrbist::adc

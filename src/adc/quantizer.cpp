#include "adc/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace sdrbist::adc {

quantizer::quantizer(quantizer_config config) : config_(config) {
    SDRBIST_EXPECTS(config_.bits >= 1 && config_.bits <= 24);
    SDRBIST_EXPECTS(config_.full_scale > 0.0);
    lsb_ = 2.0 * config_.full_scale /
           static_cast<double>(1 << config_.bits);
}

double quantizer::quantize(double x) const {
    // Channel errors act on the analog sample before conversion.
    x = x * (1.0 + config_.gain_error) + config_.offset_error;
    // Clip to the converter range.
    const double fs = config_.full_scale;
    x = std::clamp(x, -fs, fs - lsb_ * 1e-9); // keep top code reachable
    // Mid-rise characteristic.
    return lsb_ * (std::floor(x / lsb_) + 0.5);
}

std::vector<double> quantizer::process(std::span<const double> x) const {
    std::vector<double> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = quantize(x[i]);
    return out;
}

double quantizer::ideal_snr_db(int bits) {
    SDRBIST_EXPECTS(bits >= 1);
    return 6.0206 * static_cast<double>(bits) + 1.7609;
}

} // namespace sdrbist::adc

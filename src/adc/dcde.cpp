#include "adc/dcde.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "core/random.hpp"

namespace sdrbist::adc {

dcde::dcde(dcde_config config) : config_(config), code_(config.code_min) {
    SDRBIST_EXPECTS(config_.step_s > 0.0);
    SDRBIST_EXPECTS(config_.code_min <= config_.code_max);
    SDRBIST_EXPECTS(config_.inl_rms_s >= 0.0);
}

void dcde::set_code(int code) {
    SDRBIST_EXPECTS(code >= config_.code_min && code <= config_.code_max);
    code_ = code;
}

double dcde::programmed_delay() const {
    return static_cast<double>(code_) * config_.step_s;
}

double dcde::actual_delay() const {
    double d = programmed_delay() + config_.static_error_s;
    if (config_.inl_rms_s > 0.0) {
        // Deterministic per-code INL: hash the code into the seed so the
        // same code always maps to the same analog delay.
        rng gen(config_.inl_seed * 0x9E3779B97F4A7C15ull +
                static_cast<std::uint64_t>(code_ - config_.code_min));
        d += gen.gaussian(0.0, config_.inl_rms_s);
    }
    return d;
}

int dcde::code_for(double delay_s) const {
    const double ideal = delay_s / config_.step_s;
    const int code = static_cast<int>(std::lround(ideal));
    return std::clamp(code, config_.code_min, config_.code_max);
}

} // namespace sdrbist::adc

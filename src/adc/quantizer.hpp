/// \file quantizer.hpp
/// \brief N-bit uniform quantiser with gain/offset error and clipping.
#pragma once

#include <span>
#include <vector>

#include "core/simd/kernel_backend.hpp"

namespace sdrbist::adc {

/// Quantiser parameters.  The paper's ADCs are 10-bit converters.
struct quantizer_config {
    int bits = 10;
    double full_scale = 1.0;    ///< input range is [-full_scale, +full_scale]
    double gain_error = 0.0;    ///< relative gain error (0 = ideal)
    double offset_error = 0.0;  ///< input-referred offset, volts
};

/// Mid-rise uniform quantiser: q = LSB·(floor(x/LSB) + 1/2), clipped.
class quantizer {
public:
    explicit quantizer(quantizer_config config);

    /// Quantise one sample (applies gain and offset error first).
    /// Evaluated through the scalar kernel table so that per-sample and
    /// batched results stay bit-identical on every architecture.
    [[nodiscard]] double quantize(double x) const;

    /// Quantise a record (SIMD batch path; bit-identical to per-sample
    /// quantize() — the kernel is elementwise on every backend).
    [[nodiscard]] std::vector<double> process(std::span<const double> x) const;

    /// Quantise a record with a front-end attenuator applied first:
    /// out[k] = quantize(scale·x[k]).  The BP-TIADC capture path.
    [[nodiscard]] std::vector<double>
    process_scaled(std::span<const double> x, double scale) const;

    /// LSB size.
    [[nodiscard]] double lsb() const { return lsb_; }

    /// Ideal quantisation SNR for a full-scale sine: 6.02·bits + 1.76 dB.
    [[nodiscard]] static double ideal_snr_db(int bits);

    [[nodiscard]] const quantizer_config& config() const { return config_; }

private:
    quantizer_config config_;
    double lsb_;
    simd::quantize_params params_; ///< precomputed kernel parameters
    const simd::kernel_ops* ops_;  ///< backend captured at construction
};

} // namespace sdrbist::adc

/// \file dcde.hpp
/// \brief Digitally Controlled Delay Element — the key added block of the
///        proposed BP-TIADC (paper Fig. 4, shown in red).
///
/// The DCDE shifts the second channel's sampling clock by a programmable
/// delay.  Hardware DCDEs have a finite step (LSB), limited range and
/// static error; the BIST never needs to *null* the skew, only to know it —
/// so the model exposes both the programmed and the true delay.
#pragma once

#include <cstdint>

namespace sdrbist::adc {

/// DCDE hardware parameters.
struct dcde_config {
    double step_s = 1e-12;       ///< delay LSB (e.g. ~1 ps granularity)
    int code_min = 0;            ///< lowest programmable code
    int code_max = 1023;         ///< highest programmable code
    double static_error_s = 0.0; ///< fixed offset between programmed and true
    double inl_rms_s = 0.0;      ///< per-code integral nonlinearity, rms
    std::uint64_t inl_seed = 1;  ///< INL realisation seed
};

/// Behavioural DCDE: code -> actual analog delay.
class dcde {
public:
    explicit dcde(dcde_config config);

    /// Program a delay code.  Precondition: code within range.
    void set_code(int code);

    /// Currently programmed code.
    [[nodiscard]] int code() const { return code_; }

    /// Ideal (datasheet) delay for the programmed code: code·step.
    [[nodiscard]] double programmed_delay() const;

    /// True analog delay including static error and INL — what the skew
    /// estimator must discover.
    [[nodiscard]] double actual_delay() const;

    /// Nearest code for a target delay (clamped to range).
    [[nodiscard]] int code_for(double delay_s) const;

    [[nodiscard]] const dcde_config& config() const { return config_; }

private:
    dcde_config config_;
    int code_ = 0;
};

} // namespace sdrbist::adc

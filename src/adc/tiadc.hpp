/// \file tiadc.hpp
/// \brief The nonuniform BP-TIADC of paper Fig. 4: two slow ADC channels
///        (the idle Rx I/Q converters) sampling the PA output, the second
///        channel delayed by the DCDE.
#pragma once

#include <cstdint>
#include <vector>

#include "adc/clock.hpp"
#include "adc/dcde.hpp"
#include "adc/quantizer.hpp"
#include "rf/passband.hpp"

namespace sdrbist::adc {

/// One nonuniform capture: the two uniform sample sets of PNBS.
///
/// even[n] = x(t_start + n·T + jitter),  odd[n] = x(t_start + n·T + D + jitter)
struct nonuniform_capture {
    std::vector<double> even; ///< channel 0 record, f(nT)
    std::vector<double> odd;  ///< channel 1 record, f(nT + D)
    double period_s = 0.0;    ///< T = 1/B
    double t_start = 0.0;     ///< time of even[0] (nominal)
    double true_delay_s = 0.0;///< actual DCDE delay D (ground truth;
                              ///< hidden from estimators in the BIST flow)

    /// Channel sample rate B = 1/T.
    [[nodiscard]] double rate() const { return 1.0 / period_s; }
};

/// BP-TIADC configuration.
struct tiadc_config {
    double channel_rate_hz = 90e6;  ///< per-channel rate B (paper: 90 MHz)
    quantizer_config quant{};       ///< per-channel converter (paper: 10-bit)
    double jitter_rms_s = 3e-12;    ///< S/H clock jitter (paper: 3 ps rms)
    dcde_config delay_element{};    ///< DCDE hardware model
    // Channel mismatches (paper assumes none; kept for robustness studies
    // and the gain/offset background-calibration substrate).
    double ch1_gain_error = 0.0;
    double ch1_offset_error = 0.0;
    std::uint64_t seed = 0xADC0; ///< jitter seed base
};

/// Result of the auto-ranging step (see bp_tiadc::auto_range).
struct ranging_result {
    double input_scale = 1.0; ///< attenuator setting chosen
    double observed_peak = 0.0;
    bool clipped = false; ///< peak exceeded full scale before ranging
};

/// Two-channel nonuniform sampler.
class bp_tiadc {
public:
    explicit bp_tiadc(tiadc_config config);

    /// Program the DCDE to (approximately) the requested delay; returns the
    /// programmed code.  The *actual* delay differs by static error / INL.
    int program_delay(double delay_s);

    /// Actual analog delay realised by the DCDE (ground truth).
    [[nodiscard]] double actual_delay() const { return delay_.actual_delay(); }

    /// Programmable front-end attenuator (linear scale applied before the
    /// S/H).  Production capture paths tap the PA through a coupler and a
    /// step attenuator so the converter is never driven into clipping.
    void set_input_scale(double scale);
    [[nodiscard]] double input_scale() const { return input_scale_; }

    /// Auto-ranging: take a coarse peak measurement of x and choose the
    /// attenuation that places the peak at `headroom` of full scale.
    ranging_result auto_range(const rf::passband_signal& x, double t_start,
                              std::size_t n, double headroom = 0.7);

    /// Capture n samples per channel starting at t_start.
    /// `capture_index` decorrelates the jitter streams of repeated captures
    /// (each hardware capture sees fresh jitter).
    [[nodiscard]] nonuniform_capture capture(const rf::passband_signal& x,
                                             double t_start, std::size_t n,
                                             std::uint64_t capture_index = 0) const;

    /// Capture at a reduced channel rate (the paper's second capture runs
    /// the same hardware at B1 = B/2).  `rate_divider` >= 1.
    [[nodiscard]] nonuniform_capture
    capture_divided(const rf::passband_signal& x, double t_start,
                    std::size_t n, std::size_t rate_divider,
                    std::uint64_t capture_index = 1) const;

    [[nodiscard]] const tiadc_config& config() const { return config_; }

private:
    tiadc_config config_;
    quantizer quant0_;
    quantizer quant1_;
    dcde delay_;
    double input_scale_ = 1.0;
};

} // namespace sdrbist::adc

#include "adc/tiadc.hpp"

#include "core/contracts.hpp"

namespace sdrbist::adc {

namespace {
quantizer_config with_mismatch(quantizer_config q, double gain_err,
                               double off_err) {
    q.gain_error += gain_err;
    q.offset_error += off_err;
    return q;
}
} // namespace

bp_tiadc::bp_tiadc(tiadc_config config)
    : config_(config), quant0_(config.quant),
      quant1_(with_mismatch(config.quant, config.ch1_gain_error,
                            config.ch1_offset_error)),
      delay_(config.delay_element) {
    SDRBIST_EXPECTS(config_.channel_rate_hz > 0.0);
    SDRBIST_EXPECTS(config_.jitter_rms_s >= 0.0);
}

int bp_tiadc::program_delay(double delay_s) {
    const int code = delay_.code_for(delay_s);
    delay_.set_code(code);
    return code;
}

void bp_tiadc::set_input_scale(double scale) {
    SDRBIST_EXPECTS(scale > 0.0);
    input_scale_ = scale;
}

ranging_result bp_tiadc::auto_range(const rf::passband_signal& x,
                                    double t_start, std::size_t n,
                                    double headroom) {
    SDRBIST_EXPECTS(n >= 16);
    SDRBIST_EXPECTS(headroom > 0.0 && headroom < 1.0);
    // Coarse asynchronous peak scan: sample faster than the channel rate to
    // catch envelope peaks (8 points per channel period, offset-free).
    // One batch request so the signal's whole-record path is used.
    const double dt = 1.0 / (8.0 * config_.channel_rate_hz);
    std::vector<double> t(8 * n);
    for (std::size_t k = 0; k < t.size(); ++k)
        t[k] = t_start + static_cast<double>(k) * dt;
    double peak = 0.0;
    for (double v : x.values(t))
        peak = std::max(peak, std::abs(v));
    SDRBIST_EXPECTS(peak > 0.0);

    ranging_result r;
    r.observed_peak = peak;
    r.clipped = peak > config_.quant.full_scale;
    r.input_scale = headroom * config_.quant.full_scale / peak;
    input_scale_ = r.input_scale;
    return r;
}

nonuniform_capture bp_tiadc::capture(const rf::passband_signal& x,
                                     double t_start, std::size_t n,
                                     std::uint64_t capture_index) const {
    return capture_divided(x, t_start, n, 1, capture_index);
}

nonuniform_capture
bp_tiadc::capture_divided(const rf::passband_signal& x, double t_start,
                          std::size_t n, std::size_t rate_divider,
                          std::uint64_t capture_index) const {
    SDRBIST_EXPECTS(n >= 2);
    SDRBIST_EXPECTS(rate_divider >= 1);
    const double period =
        static_cast<double>(rate_divider) / config_.channel_rate_hz;
    const double d_true = delay_.actual_delay();

    // Independent jitter per channel and per capture.
    const std::uint64_t base = config_.seed ^ (capture_index * 0x9E3779B9ull);
    sampling_clock clk0({period, t_start, config_.jitter_rms_s}, base + 1);
    sampling_clock clk1({period, t_start + d_true, config_.jitter_rms_s},
                        base + 2);

    const auto t0 = clk0.edges(n);
    const auto t1 = clk1.edges(n);

    SDRBIST_EXPECTS(t0.front() >= x.begin_time());
    SDRBIST_EXPECTS(t1.back() <= x.end_time());

    nonuniform_capture cap;
    cap.period_s = period;
    cap.t_start = t_start;
    cap.true_delay_s = d_true;
    // Whole-record batch evaluation: one signal request per channel
    // instead of one virtual call per instant, then one SIMD quantisation
    // pass per record.
    cap.even = quant0_.process_scaled(x.values(t0), input_scale_);
    cap.odd = quant1_.process_scaled(x.values(t1), input_scale_);
    return cap;
}

} // namespace sdrbist::adc

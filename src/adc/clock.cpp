#include "adc/clock.hpp"

#include "core/contracts.hpp"

namespace sdrbist::adc {

sampling_clock::sampling_clock(clock_config config, std::uint64_t seed)
    : config_(config), gen_(seed) {
    SDRBIST_EXPECTS(config_.period_s > 0.0);
    SDRBIST_EXPECTS(config_.jitter_rms_s >= 0.0);
}

std::vector<double> sampling_clock::edges(std::size_t n) {
    std::vector<double> t(n);
    for (std::size_t k = 0; k < n; ++k)
        t[k] = nominal_edge(k) + gen_.gaussian(0.0, config_.jitter_rms_s);
    return t;
}

} // namespace sdrbist::adc

/// \file stages.hpp
/// \brief The typed stages of the BIST pipeline and their output artefacts.
///
/// The paper's flow is explicitly staged: stimulate the Tx, capture the PA
/// output with the re-used Rx ADCs, identify the DCDE time-skew, PNBS-
/// reconstruct the bandpass signal, grade spectrum and modulation quality.
/// This header names those stages and gives each one an explicit output
/// struct (refactored out of the former monolithic `bist_artifacts`), so
/// the pipeline can run them individually, resume after any of them, and —
/// because each stage's inputs are hashable (see config_canonical.hpp) —
/// share upstream stage results across campaign scenarios that only differ
/// downstream.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "adc/tiadc.hpp"
#include "bist/spectrum.hpp"
#include "calib/dual_rate.hpp"
#include "calib/lms.hpp"
#include "rf/tx.hpp"
#include "waveform/evm.hpp"
#include "waveform/mask.hpp"
#include "waveform/standard.hpp"
#include "waveform/tx_metrics.hpp"

namespace sdrbist::bist {

/// The five pipeline stages, in dataflow order.
enum class stage : int {
    stimulus = 0,       ///< test waveforms + identifiable band plan
    tx_capture = 1,     ///< DUT transmission + dual-rate estimation capture
    calibration = 2,    ///< LMS time-skew identification (Algorithm 1)
    reconstruction = 3, ///< wide-band capture + PNBS envelope reconstruction
    grading = 4,        ///< spectrum / EVM / ACPR / power verdicts
};

/// All stages in execution order.
inline constexpr std::array<stage, 5> stage_order{
    stage::stimulus, stage::tx_capture, stage::calibration,
    stage::reconstruction, stage::grading};

/// Position of a stage in the flow (0-based).
[[nodiscard]] constexpr int stage_index(stage s) {
    return static_cast<int>(s);
}

/// Stage name for diagnostics, hashes and CLI options.
[[nodiscard]] std::string to_string(stage s);

/// Stage 1 — stimulus planning.  The graded waveform is the preset's; skew
/// calibration uses a wideband waveform scaled into the slow capture band.
/// The band plan (paper eq. (9) + numerical identifiability) may nudge the
/// BIST carrier when every plan at the nominal carrier is blind.
struct stimulus_output {
    waveform::baseband_waveform stimulus;    ///< the graded waveform
    waveform::baseband_waveform calibration; ///< the skew-calibration one
    waveform::generator_config calibration_config{}; ///< materialised
    double occupied_bw_calibration_hz = 0.0;
    double occupied_bw_graded_hz = 0.0;
    calib::band_plan plan{};           ///< identifiable band placement
    double carrier_hz = 0.0;           ///< BIST test carrier (maybe nudged)
    double carrier_nudge_hz = 0.0;     ///< carrier minus the preset nominal
    double plan_discrimination = 0.0;  ///< numerical identifiability
};

/// Stage 2 — transmission and dual-rate estimation capture.  The DUT runs
/// both waveforms on the BIST carrier; the calibration output is captured
/// at both rates through the narrow band-select filter.  Also evaluates
/// the eq. (9) identifiability conditions: when they fail the pipeline
/// halts here (nothing downstream is meaningful).
struct tx_capture_output {
    rf::tx_output tx_out;             ///< DUT output, graded waveform
    rf::tx_output calibration_tx_out; ///< DUT output, calibration waveform
    /// What the sampler sees during estimation (narrow capture BPF).
    std::shared_ptr<const rf::envelope_passband> capture_input;
    /// What it sees during spectrum grading (graded waveform, wide BPF).
    std::shared_ptr<const rf::envelope_passband> spectrum_input;
    adc::ranging_result ranging{};    ///< estimation-phase ranging
    calib::dual_rate_capture capture{};
    double programmed_delay_s = 0.0;  ///< DCDE target the BIST programmed
    bool dual_rate_conditions_ok = false;
    double max_search_delay_s = 0.0;  ///< m of the search interval ]0, m[
};

/// Stage 3 — LMS time-skew identification over random probe instants.
struct calibration_output {
    std::vector<double> probe_times;
    calib::skew_estimate skew{};
};

/// Stage 4 — spectrum-grading capture (wide filter, fast rate) and PNBS
/// reconstruction with the identified delay.
struct reconstruction_output {
    adc::ranging_result spectrum_ranging{}; ///< grading-phase ranging
    adc::nonuniform_capture spectrum_capture{};
    reconstructed_envelope envelope{};
};

/// Stage 5 — verdicts: spectral mask, ACPR, occupied bandwidth, EVM and
/// the PA output-power floor.
struct grading_output {
    waveform::mask_report mask{};
    waveform::evm_result evm{};
    bool evm_pass = false;
    waveform::acpr_result acpr{};
    double acpr_limit_dbc = 0.0;
    bool acpr_pass = true;
    double occupied_bw_hz = 0.0;
    double measured_output_rms = 0.0;
    double min_output_rms = 0.0;
    bool power_pass = true;
};

} // namespace sdrbist::bist

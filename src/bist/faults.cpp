#include "bist/faults.hpp"

#include "core/contracts.hpp"

namespace sdrbist::bist {

rf::tx_config inject_fault(rf::tx_config golden, fault_kind fault) {
    switch (fault) {
    case fault_kind::none:
        break;
    case fault_kind::pa_overdrive:
        // Drive the PA 7 dB harder: heavy compression, spectral regrowth.
        golden.pa_backoff_db -= 7.0;
        break;
    case fault_kind::pa_gain_drop:
        golden.pa_gain_db -= 6.0;
        golden.pa_backoff_db += 6.0; // output power drops, linearity fine
        break;
    case fault_kind::iq_imbalance:
        golden.imbalance.gain_db = 1.5;
        golden.imbalance.phase_deg = 8.0;
        break;
    case fault_kind::lo_leakage:
        golden.leakage.level_dbc = -15.0;
        break;
    case fault_kind::excessive_phase_noise:
        golden.lo_phase_noise.linewidth_hz = 200e3;
        break;
    case fault_kind::filter_detune:
        // Anti-image filter cutoff collapses into the signal band.
        golden.recon_filter_cutoff_hz = 4e6;
        break;
    }
    return golden;
}

std::string to_string(fault_kind fault) {
    switch (fault) {
    case fault_kind::none:
        return "none";
    case fault_kind::pa_overdrive:
        return "pa-overdrive";
    case fault_kind::pa_gain_drop:
        return "pa-gain-drop";
    case fault_kind::iq_imbalance:
        return "iq-imbalance";
    case fault_kind::lo_leakage:
        return "lo-leakage";
    case fault_kind::excessive_phase_noise:
        return "excessive-phase-noise";
    case fault_kind::filter_detune:
        return "filter-detune";
    }
    return "unknown";
}

fault_kind fault_from_string(const std::string& name) {
    for (const fault_kind f : fault_catalogue())
        if (to_string(f) == name)
            return f;
    throw contract_violation("unknown fault kind: " + name);
}

std::vector<fault_kind> fault_catalogue() {
    return {fault_kind::none,
            fault_kind::pa_overdrive,
            fault_kind::pa_gain_drop,
            fault_kind::iq_imbalance,
            fault_kind::lo_leakage,
            fault_kind::excessive_phase_noise,
            fault_kind::filter_detune};
}

} // namespace sdrbist::bist

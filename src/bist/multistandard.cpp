#include "bist/multistandard.hpp"

#include "campaign/campaign.hpp"
#include "core/contracts.hpp"

namespace sdrbist::bist {

std::vector<bist_report>
run_catalogue(const bist_config& base,
              const std::vector<waveform::standard_preset>& presets) {
    if (presets.empty())
        return {}; // legacy behaviour: zero presets, zero reports

    campaign::campaign_config cc;
    cc.base = base;
    cc.presets = presets;
    cc.faults = {fault_kind::none};
    cc.trials = 1;
    // Legacy semantics: every preset runs with the base configuration's
    // seeds (the serial loop never reseeded), so results stay bit-identical
    // with the pre-campaign implementation.
    cc.reseed = campaign::reseed_policy::off;
    cc.relax_mask_to_floor = true;

    const campaign::campaign_runner runner(std::move(cc));
    const auto result = runner.run();

    std::vector<bist_report> reports;
    reports.reserve(result.results.size());
    // Grid order with a single fault and trial *is* preset order, which
    // makes the report ordering deterministic by construction.
    for (const auto& r : result.results) {
        if (r.engine_error)
            throw contract_violation(r.sc.preset_name + ": " + r.error);
        reports.push_back(r.report);
    }
    return reports;
}

} // namespace sdrbist::bist

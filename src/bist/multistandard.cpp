#include "bist/multistandard.hpp"

namespace sdrbist::bist {

std::vector<bist_report>
run_catalogue(const bist_config& base,
              const std::vector<waveform::standard_preset>& presets) {
    std::vector<bist_report> reports;
    reports.reserve(presets.size());
    for (const auto& preset : presets) {
        bist_config cfg = base;
        cfg.preset = preset;
        // Keep the mask limits above what this capture hardware can
        // measure at the preset's carrier (paper §II-B3: jitter-induced
        // wideband noise bounds the observable floor).
        const double occupied = preset.stimulus.symbol_rate *
                                (1.0 + preset.stimulus.rolloff);
        const double floor = waveform::bist_measurement_floor_dbc(
            preset.default_carrier_hz, cfg.tiadc.jitter_rms_s, occupied,
            cfg.tiadc.channel_rate_hz);
        cfg.preset.mask =
            waveform::relax_to_measurement_floor(preset.mask, floor);
        const bist_engine engine(cfg);
        reports.push_back(engine.run());
    }
    return reports;
}

} // namespace sdrbist::bist

/// \file multistandard.hpp
/// \brief Run the BIST across the whole standard catalogue — the paper's
///        headline flexibility claim: one architecture, any configuration,
///        no extra hardware per standard.
///
/// Since the campaign subsystem landed this is a thin convenience wrapper:
/// `run_catalogue` delegates to `campaign::campaign_runner` with a
/// presets-only grid (no faults, one trial, base seeds preserved) and
/// returns the reports in catalogue order.  Use campaign/campaign.hpp
/// directly for fault grids, Monte-Carlo trials and coverage matrices.
#pragma once

#include <vector>

#include "bist/engine.hpp"

namespace sdrbist::bist {

/// Run the given base configuration against every preset in the catalogue
/// (the preset's stimulus, mask, carrier and ACPR offset replace the
/// base's; masks are relaxed to the jitter measurement floor).  Reports
/// are returned in preset order regardless of execution schedule.
std::vector<bist_report>
run_catalogue(const bist_config& base,
              const std::vector<waveform::standard_preset>& presets =
                  waveform::standard_catalogue());

} // namespace sdrbist::bist

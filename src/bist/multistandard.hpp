/// \file multistandard.hpp
/// \brief Run the BIST across the whole standard catalogue — the paper's
///        headline flexibility claim: one architecture, any configuration,
///        no extra hardware per standard.
#pragma once

#include <vector>

#include "bist/engine.hpp"

namespace sdrbist::bist {

/// Run the given base configuration against every preset in the catalogue
/// (the preset's stimulus, mask and carrier replace the base's).
std::vector<bist_report>
run_catalogue(const bist_config& base,
              const std::vector<waveform::standard_preset>& presets =
                  waveform::standard_catalogue());

} // namespace sdrbist::bist

#include "bist/config_canonical.hpp"

#include <charconv>
#include <cmath>

#include "core/hash.hpp"

namespace sdrbist::bist {

namespace {

/// Appends `key=value` lines in a fixed order.  All numeric renderings are
/// platform-independent: to_chars shortest form for doubles, decimal for
/// integers.
class canonical_writer {
public:
    void text(const std::string& key, const std::string& value) {
        body_ += key;
        body_ += '=';
        body_ += value;
        body_ += '\n';
    }
    void real(const std::string& key, double v) {
        if (!std::isfinite(v)) {
            // JSON-style rendering keeps the canonical text total even for
            // degenerate configs (a NaN limit still hashes stably).
            text(key, std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf"));
            return;
        }
        char buf[64];
        const auto res = std::to_chars(buf, buf + sizeof(buf), v);
        text(key, std::string(buf, res.ptr));
    }
    void integer(const std::string& key, std::int64_t v) {
        text(key, std::to_string(v));
    }
    void unsigned_integer(const std::string& key, std::uint64_t v) {
        text(key, std::to_string(v));
    }
    void boolean(const std::string& key, bool v) { text(key, v ? "1" : "0"); }

    [[nodiscard]] const std::string& str() const { return body_; }

private:
    std::string body_;
};

void write_generator(canonical_writer& w, const std::string& prefix,
                     const waveform::generator_config& g) {
    w.integer(prefix + ".mod", static_cast<std::int64_t>(g.mod));
    w.real(prefix + ".symbol_rate", g.symbol_rate);
    w.real(prefix + ".rolloff", g.rolloff);
    w.unsigned_integer(prefix + ".oversample", g.oversample);
    w.unsigned_integer(prefix + ".span_symbols", g.span_symbols);
    w.unsigned_integer(prefix + ".symbol_count", g.symbol_count);
    w.integer(prefix + ".prbs", static_cast<std::int64_t>(g.data));
    w.unsigned_integer(prefix + ".prbs_seed", g.prbs_seed);
}

void write_mask(canonical_writer& w, const std::string& prefix,
                const waveform::spectral_mask& mask) {
    w.text(prefix + ".name", mask.name());
    w.real(prefix + ".ref_bw_hz", mask.reference_bandwidth());
    w.unsigned_integer(prefix + ".segments", mask.segments().size());
    for (std::size_t i = 0; i < mask.segments().size(); ++i) {
        const auto& s = mask.segments()[i];
        const std::string p = prefix + ".segment." + std::to_string(i);
        w.real(p + ".lo_hz", s.offset_lo_hz);
        w.real(p + ".hi_hz", s.offset_hi_hz);
        w.real(p + ".limit_dbc", s.limit_dbc);
    }
}

void write_preset(canonical_writer& w, const std::string& prefix,
                  const waveform::standard_preset& preset) {
    w.text(prefix + ".name", preset.name);
    write_generator(w, prefix + ".stimulus", preset.stimulus);
    write_mask(w, prefix + ".mask", preset.mask);
    w.real(prefix + ".default_carrier_hz", preset.default_carrier_hz);
    w.real(prefix + ".acpr_offset_hz", preset.acpr_offset_hz);
}

void write_tx(canonical_writer& w, const rf::tx_config& tx) {
    w.real("tx.carrier_hz", tx.carrier_hz);
    w.integer("tx.recon_filter_order", tx.recon_filter_order);
    w.real("tx.recon_filter_cutoff_hz", tx.recon_filter_cutoff_hz);
    w.real("tx.imbalance.gain_db", tx.imbalance.gain_db);
    w.real("tx.imbalance.phase_deg", tx.imbalance.phase_deg);
    w.real("tx.leakage.level_dbc", tx.leakage.level_dbc);
    w.real("tx.leakage.phase_deg", tx.leakage.phase_deg);
    w.real("tx.lo_phase_noise.linewidth_hz", tx.lo_phase_noise.linewidth_hz);
    w.integer("tx.pa", static_cast<std::int64_t>(tx.pa));
    w.real("tx.pa_gain_db", tx.pa_gain_db);
    w.real("tx.pa_backoff_db", tx.pa_backoff_db);
    w.real("tx.rapp_smoothness", tx.rapp_smoothness);
    w.real("tx.saleh_alpha_a", tx.saleh_alpha_a);
    w.real("tx.saleh_beta_a", tx.saleh_beta_a);
    w.real("tx.saleh_alpha_phi", tx.saleh_alpha_phi);
    w.real("tx.saleh_beta_phi", tx.saleh_beta_phi);
    w.integer("tx.band_filter_order", tx.band_filter_order);
    w.real("tx.band_filter_halfwidth_hz", tx.band_filter_halfwidth_hz);
    w.real("tx.noise.snr_db", tx.noise.snr_db);
    w.unsigned_integer("tx.seed", tx.seed);
}

void write_tiadc(canonical_writer& w, const adc::tiadc_config& t) {
    w.real("tiadc.channel_rate_hz", t.channel_rate_hz);
    w.integer("tiadc.quant.bits", t.quant.bits);
    w.real("tiadc.quant.full_scale", t.quant.full_scale);
    w.real("tiadc.quant.gain_error", t.quant.gain_error);
    w.real("tiadc.quant.offset_error", t.quant.offset_error);
    w.real("tiadc.jitter_rms_s", t.jitter_rms_s);
    w.real("tiadc.dcde.step_s", t.delay_element.step_s);
    w.integer("tiadc.dcde.code_min", t.delay_element.code_min);
    w.integer("tiadc.dcde.code_max", t.delay_element.code_max);
    w.real("tiadc.dcde.static_error_s", t.delay_element.static_error_s);
    w.real("tiadc.dcde.inl_rms_s", t.delay_element.inl_rms_s);
    w.unsigned_integer("tiadc.dcde.inl_seed", t.delay_element.inl_seed);
    w.real("tiadc.ch1_gain_error", t.ch1_gain_error);
    w.real("tiadc.ch1_offset_error", t.ch1_offset_error);
    w.unsigned_integer("tiadc.seed", t.seed);
}

} // namespace

std::string canonical_config_text(const bist_config& config) {
    canonical_writer w;
    w.integer("canon", canonical_config_version);
    write_preset(w, "preset", config.preset);
    write_tx(w, config.tx);
    write_tiadc(w, config.tiadc);
    w.real("dcde_target_delay_s", config.dcde_target_delay_s);
    w.boolean("use_calibration_stimulus", config.use_calibration_stimulus);
    write_generator(w, "calibration_stimulus", config.calibration_stimulus);
    w.unsigned_integer("fast_samples", config.fast_samples);
    w.unsigned_integer("slow_divider", config.slow_divider);
    w.real("capture_start_s", config.capture_start_s);
    w.integer("capture_filter_order", config.capture_filter_order);
    w.real("capture_filter_halfwidth_hz", config.capture_filter_halfwidth_hz);
    w.real("spectrum_filter_halfwidth_hz",
           config.spectrum_filter_halfwidth_hz);
    w.boolean("auto_range", config.auto_range);
    w.unsigned_integer("probe_count", config.probe_count);
    w.unsigned_integer("probe_seed", config.probe_seed);
    w.real("d0_hint_s", config.d0_hint_s);
    w.real("lms.mu0", config.lms.mu0);
    w.unsigned_integer("lms.max_iterations", config.lms.max_iterations);
    w.real("lms.cost_tolerance", config.lms.cost_tolerance);
    w.real("lms.min_mu", config.lms.min_mu);
    w.real("lms.step_tolerance", config.lms.step_tolerance);
    w.real("lms.initial_probe_s", config.lms.initial_probe_s);
    w.unsigned_integer("lms.max_halvings", config.lms.max_halvings);
    w.unsigned_integer("lms.recon.taps", config.lms.recon.taps);
    w.real("lms.recon.kaiser_beta", config.lms.recon.kaiser_beta);
    w.real("spectrum.dense_rate_factor", config.spectrum.dense_rate_factor);
    w.real("spectrum.envelope_rate_min", config.spectrum.envelope_rate_min);
    w.unsigned_integer("spectrum.ddc_taps", config.spectrum.ddc_taps);
    w.real("spectrum.ddc_cutoff_hz", config.spectrum.ddc_cutoff_hz);
    w.unsigned_integer("spectrum.welch_segment",
                       config.spectrum.welch_segment);
    w.real("spectrum.mix_frequency", config.spectrum.mix_frequency);
    w.real("evm_limit_percent", config.evm_limit_percent);
    w.real("min_output_rms", config.min_output_rms);
    w.real("acpr_limit_dbc", config.acpr_limit_dbc);
    w.real("acpr_offset_hz", config.acpr_offset_hz);
    return w.str();
}

std::uint64_t config_digest(const bist_config& config) {
    return fnv1a64::hash(canonical_config_text(config));
}

// ---------------------------------------------------------------------------
// Per-stage slices
// ---------------------------------------------------------------------------

std::string canonical_stage_text(const bist_config& config, stage s) {
    canonical_writer w;
    w.integer("stage_canon", stage_canonical_version);
    w.text("stage", to_string(s));
    switch (s) {
    case stage::stimulus:
        // Waveform generation + band planning.  The preset name and mask
        // are presentation/grading concerns — excluded on purpose, so
        // Monte-Carlo trials whose mask was relaxed to a perturbed jitter
        // floor still share this stage.
        write_generator(w, "preset.stimulus", config.preset.stimulus);
        w.real("preset.default_carrier_hz", config.preset.default_carrier_hz);
        w.boolean("use_calibration_stimulus",
                  config.use_calibration_stimulus);
        write_generator(w, "calibration_stimulus",
                        config.calibration_stimulus);
        w.real("tiadc.channel_rate_hz", config.tiadc.channel_rate_hz);
        w.unsigned_integer("slow_divider", config.slow_divider);
        break;
    case stage::tx_capture:
        // DUT transmission, band-select filtering, ranging and the
        // dual-rate estimation captures.
        write_tx(w, config.tx);
        write_tiadc(w, config.tiadc);
        w.real("dcde_target_delay_s", config.dcde_target_delay_s);
        w.unsigned_integer("fast_samples", config.fast_samples);
        w.real("capture_start_s", config.capture_start_s);
        w.integer("capture_filter_order", config.capture_filter_order);
        w.real("capture_filter_halfwidth_hz",
               config.capture_filter_halfwidth_hz);
        w.real("spectrum_filter_halfwidth_hz",
               config.spectrum_filter_halfwidth_hz);
        w.boolean("auto_range", config.auto_range);
        break;
    case stage::calibration:
        // Probe placement + the LMS search (its reconstruction options
        // are also the ones stage 4 reuses).
        w.unsigned_integer("probe_count", config.probe_count);
        w.unsigned_integer("probe_seed", config.probe_seed);
        w.real("d0_hint_s", config.d0_hint_s);
        w.real("lms.mu0", config.lms.mu0);
        w.unsigned_integer("lms.max_iterations", config.lms.max_iterations);
        w.real("lms.cost_tolerance", config.lms.cost_tolerance);
        w.real("lms.min_mu", config.lms.min_mu);
        w.real("lms.step_tolerance", config.lms.step_tolerance);
        w.real("lms.initial_probe_s", config.lms.initial_probe_s);
        w.unsigned_integer("lms.max_halvings", config.lms.max_halvings);
        w.unsigned_integer("lms.recon.taps", config.lms.recon.taps);
        w.real("lms.recon.kaiser_beta", config.lms.recon.kaiser_beta);
        break;
    case stage::reconstruction:
        // Spectrum capture + dense PNBS evaluation (welch_segment is a
        // grading knob; everything else it reads is upstream).
        w.real("spectrum.dense_rate_factor",
               config.spectrum.dense_rate_factor);
        w.real("spectrum.envelope_rate_min",
               config.spectrum.envelope_rate_min);
        w.unsigned_integer("spectrum.ddc_taps", config.spectrum.ddc_taps);
        w.real("spectrum.ddc_cutoff_hz", config.spectrum.ddc_cutoff_hz);
        w.real("spectrum.mix_frequency", config.spectrum.mix_frequency);
        break;
    case stage::grading:
        write_mask(w, "preset.mask", config.preset.mask);
        w.real("preset.acpr_offset_hz", config.preset.acpr_offset_hz);
        w.unsigned_integer("spectrum.welch_segment",
                           config.spectrum.welch_segment);
        w.real("evm_limit_percent", config.evm_limit_percent);
        w.real("min_output_rms", config.min_output_rms);
        w.real("acpr_limit_dbc", config.acpr_limit_dbc);
        w.real("acpr_offset_hz", config.acpr_offset_hz);
        break;
    }
    return w.str();
}

std::uint64_t stage_input_digest(const bist_config& config, stage s) {
    fnv1a64 h;
    h.update("sdrbist-stage-chain-v" +
             std::to_string(stage_canonical_version) + "\n");
    for (const stage t : stage_order) {
        h.update(canonical_stage_text(config, t));
        if (t == s)
            break;
    }
    return h.value();
}

} // namespace sdrbist::bist

/// \file faults.hpp
/// \brief Parametric fault injection for BIST validation.
///
/// Production BIST is judged by fault coverage: each catalogued fault
/// perturbs the transmitter configuration the way a real marginal device
/// would, and tests/benches verify the verdict flips for detectable faults.
#pragma once

#include <string>
#include <vector>

#include "rf/tx.hpp"

namespace sdrbist::bist {

/// Catalogue of injectable transmitter faults.
enum class fault_kind {
    none,                ///< golden device
    pa_overdrive,        ///< lost backoff -> compression + regrowth
    pa_gain_drop,        ///< broken bias -> low output power
    iq_imbalance,        ///< quadrature error (image + EVM)
    lo_leakage,          ///< carrier feedthrough
    excessive_phase_noise, ///< degraded LO
    filter_detune,       ///< reconstruction filter cutoff shifted low
};

/// Apply a fault to a golden configuration; returns the faulty config.
rf::tx_config inject_fault(rf::tx_config golden, fault_kind fault);

/// Name for reports.
std::string to_string(fault_kind fault);

/// Inverse of to_string.  Throws contract_violation on unknown names
/// (callers deserialising shard files and CLI arguments want loud
/// failures, not silent `none`).
fault_kind fault_from_string(const std::string& name);

/// All faults including `none` (for coverage sweeps).
std::vector<fault_kind> fault_catalogue();

} // namespace sdrbist::bist

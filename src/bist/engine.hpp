/// \file engine.hpp
/// \brief The complete BIST flow of the paper: stimulate the Tx with a
///        known waveform, capture the PA output with the re-used Rx ADCs at
///        two rates, identify the DCDE time-skew with the LMS algorithm,
///        reconstruct the bandpass signal, and grade spectrum (mask) and
///        modulation quality (EVM).
///
/// The flow itself lives in the staged pipeline (bist/pipeline.hpp):
/// `bist_engine` is the one-shot convenience wrapper that runs a
/// `bist_session` end to end.  Use the session directly to run stages
/// individually, resume, re-run with a modified downstream config, or
/// share upstream stage results across executions.
#pragma once

#include <cstdint>

#include "adc/tiadc.hpp"
#include "bist/report.hpp"
#include "bist/spectrum.hpp"
#include "calib/lms.hpp"
#include "rf/tx.hpp"
#include "waveform/standard.hpp"

namespace sdrbist::bist {

/// Full BIST configuration.
struct bist_config {
    waveform::standard_preset preset = waveform::paper_qpsk_preset();
    rf::tx_config tx{};            ///< DUT; carrier overridden by preset
    adc::tiadc_config tiadc{};     ///< capture hardware (paper defaults)
    double dcde_target_delay_s = 180e-12; ///< programmed delay (paper value)

    // Skew calibration runs on its own *wideband* stimulus (the paper's
    // 10 MHz QPSK): the dual-rate cost loses contrast for narrowband
    // signals, whose mismatched reconstructions collapse to a single
    // complex gain on both rates.  The DCDE skew is a hardware property,
    // so the estimate carries over to the graded waveform.
    bool use_calibration_stimulus = true;
    waveform::generator_config calibration_stimulus{}; ///< defaults = paper

    std::size_t fast_samples = 720;  ///< record length at rate B
    std::size_t slow_divider = 2;    ///< B1 = B / divider (paper: 2)
    double capture_start_s = 0.0;    ///< 0 = auto (after interp margin)

    // Capture-path band-select filter (the red BPF of paper Fig. 1 between
    // the PA tap and the S/H), modelled as its baseband-equivalent lowpass.
    // The estimation captures use a *narrow* setting confined to the slow
    // band B1 (content outside B1/2 aliases only in the slow reconstruction
    // and would bias the skew cost); the spectrum-grading capture then
    // re-tunes the filter to a *wide* setting spanning the fast band B.
    int capture_filter_order = 5;
    double capture_filter_halfwidth_hz = 0.0;  ///< narrow; 0 = auto (0.42·B1)
    double spectrum_filter_halfwidth_hz = 0.0; ///< wide; 0 = auto (0.45·B)
    bool auto_range = true; ///< run the attenuator ranging step

    std::size_t probe_count = 300;   ///< N (paper: 300)
    std::uint64_t probe_seed = 0xBEEF;
    double d0_hint_s = 0.0;          ///< initial D̂ (0 = middle of ]0, m[)
    calib::lms_options lms{};

    spectrum_options spectrum{};
    double evm_limit_percent = 8.0;
    double min_output_rms = 0.0; ///< PA output floor check (0 = disabled)
    double acpr_limit_dbc = -30.0; ///< adjacent-channel limit (0 = disabled)
    double acpr_offset_hz = 0.0;   ///< adjacent-channel offset (0 = auto,
                                   ///< 1.5 × occupied bandwidth)

    /// Band the reconstruction assumes for the fast capture (centred on the
    /// carrier, width B).  Derived, exposed for diagnostics.
    [[nodiscard]] sampling::band_spec fast_band() const;
    [[nodiscard]] sampling::band_spec slow_band() const;
};

/// Intermediate artefacts (exposed so tests, benches and notebooks can
/// inspect every stage).  Legacy aggregate view: the pipeline's typed
/// per-stage structs (bist/stages.hpp) are the primary interface; this is
/// what `bist_session::artifacts()` assembles from them.
struct bist_artifacts {
    waveform::baseband_waveform stimulus;      ///< the graded waveform
    waveform::baseband_waveform calibration;   ///< the skew-calibration one
    rf::tx_output tx_out;                      ///< DUT output, graded wf
    rf::tx_output calibration_tx_out;          ///< DUT output, calibration wf
    /// What the sampler sees during estimation: calibration PA output
    /// through the narrow capture BPF.
    std::shared_ptr<const rf::envelope_passband> capture_input;
    /// What it sees during spectrum grading (graded waveform, wide BPF).
    std::shared_ptr<const rf::envelope_passband> spectrum_input;
    adc::ranging_result ranging;          ///< estimation-phase ranging
    adc::ranging_result spectrum_ranging; ///< grading-phase ranging
    calib::dual_rate_capture capture;
    adc::nonuniform_capture spectrum_capture; ///< wide-band, fast rate
    std::vector<double> probe_times;
    reconstructed_envelope envelope;
};

/// BIST orchestration engine: thin one-shot wrapper over `bist_session`
/// (bit-identical to the staged pipeline by construction — it *is* the
/// staged pipeline, run end to end).
class bist_engine {
public:
    explicit bist_engine(bist_config config);

    /// Execute the full flow against a transmitter built from the config
    /// (optionally with an injected fault applied by the caller).
    [[nodiscard]] bist_report run() const;

    /// Execute and also return all intermediate artefacts.
    [[nodiscard]] std::pair<bist_report, bist_artifacts> run_verbose() const;

    [[nodiscard]] const bist_config& config() const { return config_; }

private:
    bist_config config_;
};

} // namespace sdrbist::bist

#include "bist/pipeline.hpp"

#include <cmath>
#include <utility>

#include "bist/config_canonical.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"
#include "core/stats.hpp"
#include "core/telemetry.hpp"
#include "core/units.hpp"
#include "dsp/biquad.hpp"

namespace sdrbist::bist {

std::string to_string(stage s) {
    switch (s) {
    case stage::stimulus: return "stimulus";
    case stage::tx_capture: return "tx-capture";
    case stage::calibration: return "calibration";
    case stage::reconstruction: return "reconstruction";
    case stage::grading: return "grading";
    }
    return "unknown";
}

namespace {

double occupied_bandwidth(const waveform::generator_config& g) {
    return g.symbol_rate * (1.0 + g.rolloff);
}

/// Rebuild the capture hardware exactly as the monolithic engine had it at
/// this point of the flow: same config, same programmed DCDE code.  The
/// BP-TIADC is deterministic given (config, delay code, input scale,
/// capture index), so a stage boundary can reconstruct it bit-identically.
adc::bp_tiadc make_programmed_sampler(const bist_config& config) {
    adc::bp_tiadc sampler(config.tiadc);
    sampler.program_delay(config.dcde_target_delay_s);
    return sampler;
}

} // namespace

// ---------------------------------------------------------------------------
// Stage runners
// ---------------------------------------------------------------------------

stimulus_output run_stimulus(const bist_config& config) {
    const telemetry::scoped_span span(telemetry::category::stage_stimulus,
                                      "stimulus");
    fault_injection::fire(fault_injection::site::stage_stimulus);
    stimulus_output out;

    const double nominal_carrier = config.preset.default_carrier_hz;
    const double b = config.tiadc.channel_rate_hz;
    const double b1 = b / static_cast<double>(config.slow_divider);

    // Stimuli (repeatable: PRBS-seeded).  The graded waveform is the
    // preset's; skew calibration uses a wideband waveform whose occupied
    // band is scaled to the slow capture band.
    out.stimulus = waveform::generate_baseband(config.preset.stimulus);
    waveform::generator_config cal_cfg = config.use_calibration_stimulus
                                             ? config.calibration_stimulus
                                             : config.preset.stimulus;
    if (config.use_calibration_stimulus &&
        (occupied_bandwidth(cal_cfg) > 0.75 * b1))
        cal_cfg.symbol_rate = 0.22 * b1 / (1.0 + cal_cfg.rolloff) * 1.5;
    out.calibration = waveform::generate_baseband(cal_cfg);
    out.calibration_config = cal_cfg;

    // Band plan (eq. (9) + numerical identifiability).  When every plan
    // at the nominal carrier is blind (e.g. the carrier is a multiple of
    // B1 so the skew-error image self-folds for both rates), the SDR's own
    // agility is used: the BIST transmits its test waveforms on a slightly
    // nudged carrier.
    out.occupied_bw_calibration_hz = occupied_bandwidth(cal_cfg);
    out.occupied_bw_graded_hz = occupied_bandwidth(config.preset.stimulus);
    const double occ_max =
        std::max(out.occupied_bw_calibration_hz, out.occupied_bw_graded_hz);
    constexpr double disc_threshold = 1e-2;
    {
        double best_disc = -1.0;
        calib::band_plan best_plan{};
        double best_carrier = nominal_carrier;
        for (const double frac :
             {0.0, 0.25, -0.25, 0.125, -0.125, 0.375, -0.375}) {
            const double cand_carrier = nominal_carrier + frac * b1;
            const auto cand_plan = calib::choose_band_plan(
                cand_carrier, b, b1, out.occupied_bw_calibration_hz, occ_max,
                disc_threshold);
            const double disc = calib::dual_rate_discrimination(
                cand_plan, cand_carrier, out.occupied_bw_calibration_hz);
            if (disc > best_disc) {
                best_disc = disc;
                best_plan = cand_plan;
                best_carrier = cand_carrier;
            }
            if (disc >= disc_threshold)
                break;
        }
        out.plan = best_plan;
        out.carrier_hz = best_carrier;
        out.plan_discrimination = best_disc;
    }
    out.carrier_nudge_hz = out.carrier_hz - nominal_carrier;
    return out;
}

tx_capture_output run_tx_capture(const bist_config& config,
                                 const stimulus_output& stim) {
    const telemetry::scoped_span span(telemetry::category::stage_tx_capture,
                                      "tx-capture");
    fault_injection::fire(fault_injection::site::stage_tx_capture);
    tx_capture_output out;

    const double b = config.tiadc.channel_rate_hz;
    const double b1 = b / static_cast<double>(config.slow_divider);

    // Transmitter (device under test) runs both waveforms on the BIST
    // carrier.
    rf::tx_config txc = config.tx;
    txc.carrier_hz = stim.carrier_hz;
    const rf::homodyne_tx tx(txc);
    out.tx_out = tx.transmit(stim.stimulus);
    out.calibration_tx_out = tx.transmit(stim.calibration);

    auto filtered_input = [&](const rf::tx_output& source, double halfwidth) {
        // Low-rate waveforms may be represented at an envelope rate below
        // the capture bandwidth; the band filter then has nothing to remove
        // and its cutoff is clamped inside the envelope's Nyquist range.
        halfwidth = std::min(halfwidth, 0.4 * source.envelope_rate);
        auto bpf = dsp::butterworth_lowpass(config.capture_filter_order,
                                            halfwidth, source.envelope_rate);
        auto filtered = bpf.filter(std::span<const std::complex<double>>(
            source.envelope.data(), source.envelope.size()));
        return std::make_shared<rf::envelope_passband>(
            std::move(filtered), source.envelope_rate, source.carrier_hz);
    };
    {
        // The narrow filter (centred on the carrier) must keep everything
        // inside whichever slow-band edge sits closest to the carrier.
        const double slow_cover =
            b1 / 2.0 - std::abs(stim.plan.slow_offset_hz);
        const double narrow = config.capture_filter_halfwidth_hz > 0.0
                                  ? config.capture_filter_halfwidth_hz
                                  : std::min(0.42 * b1, 0.95 * slow_cover);
        const double fast_cover =
            b / 2.0 - std::abs(stim.plan.fast_offset_hz);
        const double wide = config.spectrum_filter_halfwidth_hz > 0.0
                                ? config.spectrum_filter_halfwidth_hz
                                : 0.9 * fast_cover;
        out.capture_input = filtered_input(out.calibration_tx_out, narrow);
        out.spectrum_input = filtered_input(out.tx_out, wide);
    }

    adc::bp_tiadc sampler = make_programmed_sampler(config);
    out.programmed_delay_s = config.dcde_target_delay_s;

    // Estimation-phase dual-rate capture of the calibration waveform.
    // Start after the pulse shaper's leading transient so the ranging scan
    // and the record see the waveform at its steady level.
    const double cal_ramp =
        static_cast<double>(stim.calibration.shaper_delay_samples) /
        stim.calibration.sample_rate;
    const double cal_t_start =
        config.capture_start_s > 0.0
            ? config.capture_start_s
            : out.capture_input->begin_time() + cal_ramp + 0.1 * us;
    const std::size_t cal_samples = std::max(
        config.fast_samples,
        static_cast<std::size_t>(std::ceil(
            64.0 * b / stim.calibration_config.symbol_rate)));
    SDRBIST_EXPECTS(cal_t_start + static_cast<double>(cal_samples) / b <
                    out.capture_input->end_time());

    if (config.auto_range)
        out.ranging =
            sampler.auto_range(*out.capture_input, cal_t_start, cal_samples);

    out.capture.fast = sampler.capture(*out.capture_input, cal_t_start,
                                       cal_samples, /*capture*/ 0);
    out.capture.slow = sampler.capture_divided(
        *out.capture_input, cal_t_start, cal_samples / config.slow_divider,
        config.slow_divider,
        /*capture*/ 1);
    out.capture.band_fast = stim.plan.fast;
    out.capture.band_slow = stim.plan.slow;

    // Identifiability conditions (paper eq. (9)).
    out.dual_rate_conditions_ok = calib::dual_rate_conditions_ok(out.capture);
    out.max_search_delay_s = calib::max_search_delay(out.capture);
    return out;
}

calibration_output run_calibration(const bist_config& config,
                                   const tx_capture_output& cap) {
    const telemetry::scoped_span span(telemetry::category::stage_calibration,
                                      "calibration");
    fault_injection::fire(fault_injection::site::stage_calibration);
    SDRBIST_EXPECTS(cap.dual_rate_conditions_ok);
    calibration_output out;

    // LMS time-skew identification (paper Algorithm 1).
    const auto [probe_lo, probe_hi] =
        calib::valid_probe_interval(cap.capture, config.lms.recon);
    rng probe_gen(config.probe_seed);
    out.probe_times = calib::make_probe_times(probe_gen, config.probe_count,
                                              probe_lo, probe_hi);
    const double d0 = config.d0_hint_s > 0.0
                          ? config.d0_hint_s
                          : 0.5 * cap.max_search_delay_s;
    const calib::lms_skew_estimator estimator(config.lms);
    out.skew = estimator.estimate(cap.capture, d0, out.probe_times);
    return out;
}

reconstruction_output run_reconstruction(const bist_config& config,
                                         const stimulus_output& stim,
                                         const tx_capture_output& cap,
                                         const calibration_output& cal) {
    const telemetry::scoped_span span(
        telemetry::category::stage_reconstruction, "reconstruction");
    fault_injection::fire(fault_injection::site::stage_reconstruction);
    reconstruction_output out;

    const double b = config.tiadc.channel_rate_hz;

    // Spectrum-grading capture of the preset waveform (wide filter, fast
    // rate), then reconstruction with the identified delay.  The record is
    // long enough for ~80 symbols of the graded waveform.
    const double spec_ramp =
        static_cast<double>(stim.stimulus.shaper_delay_samples) /
        stim.stimulus.sample_rate;
    const double spec_t_start =
        config.capture_start_s > 0.0
            ? config.capture_start_s
            : cap.spectrum_input->begin_time() + spec_ramp + 0.1 * us;
    const std::size_t spec_samples = std::max(
        config.fast_samples,
        static_cast<std::size_t>(
            std::ceil(80.0 * b / config.preset.stimulus.symbol_rate)));
    SDRBIST_EXPECTS(spec_t_start + static_cast<double>(spec_samples) / b <
                    cap.spectrum_input->end_time());

    adc::bp_tiadc sampler = make_programmed_sampler(config);
    if (config.auto_range)
        out.spectrum_ranging = sampler.auto_range(*cap.spectrum_input,
                                                  spec_t_start, spec_samples);
    out.spectrum_capture = sampler.capture(*cap.spectrum_input, spec_t_start,
                                           spec_samples,
                                           /*capture*/ 2);

    const sampling::pnbs_reconstructor recon(
        out.spectrum_capture.even, out.spectrum_capture.odd,
        out.spectrum_capture.period_s, out.spectrum_capture.t_start,
        cap.capture.band_fast, cal.skew.d_hat, config.lms.recon);
    spectrum_options spec_opt = config.spectrum;
    if (spec_opt.mix_frequency <= 0.0)
        spec_opt.mix_frequency = stim.carrier_hz;
    if (spec_opt.ddc_cutoff_hz <= 0.0) {
        // Cover the mask extent (4 × occupied) but no more: narrow graded
        // signals then get a lower envelope rate and finer PSD resolution.
        const double mix_shift = std::abs(spec_opt.mix_frequency -
                                          cap.capture.band_fast.centre());
        spec_opt.ddc_cutoff_hz =
            std::min(0.55 * b + mix_shift,
                     4.6 * stim.occupied_bw_graded_hz + mix_shift);
    }
    if (spec_opt.envelope_rate_min <= 0.0)
        spec_opt.envelope_rate_min = 2.4 * spec_opt.ddc_cutoff_hz;
    out.envelope = reconstruct_envelope(recon, spec_opt);
    return out;
}

grading_output run_grading(const bist_config& config,
                           const stimulus_output& stim,
                           const reconstruction_output& recon) {
    const telemetry::scoped_span span(telemetry::category::stage_grading,
                                      "grading");
    fault_injection::fire(fault_injection::site::stage_grading);
    grading_output out;

    const double occ_graded = stim.occupied_bw_graded_hz;
    const std::size_t welch_segment =
        config.spectrum.welch_segment > 0
            ? config.spectrum.welch_segment
            : auto_welch_segment(recon.envelope.rate, occ_graded,
                                 recon.envelope.samples.size());
    const auto psd = envelope_psd(recon.envelope, welch_segment);
    out.mask = config.preset.mask.check(psd);

    // Scalar spectral metrics: ACPR and occupied bandwidth.  Offset
    // precedence: explicit config > the preset's standard-mandated offset
    // > auto (1.5 × occupied bandwidth).
    {
        const double offset =
            config.acpr_offset_hz > 0.0 ? config.acpr_offset_hz
            : config.preset.acpr_offset_hz > 0.0
                ? config.preset.acpr_offset_hz
                : 1.5 * occ_graded;
        out.acpr = waveform::measure_acpr(psd, occ_graded, offset);
        out.acpr_limit_dbc = config.acpr_limit_dbc;
        out.acpr_pass = config.acpr_limit_dbc >= 0.0 ||
                        out.acpr.worst_dbc() <= config.acpr_limit_dbc;
        out.occupied_bw_hz = waveform::occupied_bandwidth(psd, 0.99);
    }

    waveform::evm_options evm_opt;
    evm_opt.envelope_t0 = recon.envelope.t0;
    out.evm = waveform::measure_evm(
        std::span<const std::complex<double>>(
            recon.envelope.samples.data(), recon.envelope.samples.size()),
        recon.envelope.rate, stim.stimulus, evm_opt);
    out.evm_pass = out.evm.evm_percent() <= config.evm_limit_percent;

    // Output-power check (PA health): refer the captured RMS back through
    // the ranging attenuator to the capture-path input level.
    {
        const double scale =
            config.auto_range ? recon.spectrum_ranging.input_scale : 1.0;
        out.measured_output_rms = rms(recon.spectrum_capture.even) / scale;
        out.min_output_rms = config.min_output_rms;
        out.power_pass = config.min_output_rms <= 0.0 ||
                         out.measured_output_rms >= config.min_output_rms;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

bist_session::bist_session(bist_config config) : config_(std::move(config)) {
    SDRBIST_EXPECTS(config_.fast_samples >= 64);
    SDRBIST_EXPECTS(config_.slow_divider >= 2);
    SDRBIST_EXPECTS(config_.probe_count >= 16);
}

void bist_session::drop_from(stage s) {
    switch (s) {
    case stage::stimulus: stimulus_.reset(); [[fallthrough]];
    case stage::tx_capture: tx_capture_.reset(); [[fallthrough]];
    case stage::calibration: calibration_.reset(); [[fallthrough]];
    case stage::reconstruction: reconstruction_.reset(); [[fallthrough]];
    case stage::grading: grading_.reset();
    }
}

void bist_session::reconfigure(bist_config config) {
    bist_session fresh(std::move(config)); // re-validates the contracts
    for (const stage s : stage_order) {
        if (input_digest(s) != stage_input_digest(fresh.config_, s)) {
            drop_from(s);
            break;
        }
    }
    config_ = std::move(fresh.config_);
}

bool bist_session::completed(stage s) const {
    switch (s) {
    case stage::stimulus: return stimulus_ != nullptr;
    case stage::tx_capture: return tx_capture_ != nullptr;
    case stage::calibration: return calibration_ != nullptr;
    case stage::reconstruction: return reconstruction_ != nullptr;
    case stage::grading: return grading_ != nullptr;
    }
    return false;
}

bool bist_session::run_until(stage target) {
    if (!stimulus_)
        stimulus_ = std::make_shared<const stimulus_output>(
            run_stimulus(config_));
    if (stage_index(target) <= stage_index(stage::stimulus))
        return true;

    if (!tx_capture_)
        tx_capture_ = std::make_shared<const tx_capture_output>(
            run_tx_capture(config_, *stimulus_));
    if (halted() || stage_index(target) <= stage_index(stage::tx_capture))
        return completed(target);

    if (!calibration_)
        calibration_ = std::make_shared<const calibration_output>(
            run_calibration(config_, *tx_capture_));
    if (stage_index(target) <= stage_index(stage::calibration))
        return true;

    if (!reconstruction_)
        reconstruction_ = std::make_shared<const reconstruction_output>(
            run_reconstruction(config_, *stimulus_, *tx_capture_,
                               *calibration_));
    if (stage_index(target) <= stage_index(stage::reconstruction))
        return true;

    if (!grading_)
        grading_ = std::make_shared<const grading_output>(
            run_grading(config_, *stimulus_, *reconstruction_));
    return true;
}

const stimulus_output& bist_session::stimulus() const {
    SDRBIST_EXPECTS(stimulus_ != nullptr);
    return *stimulus_;
}

const tx_capture_output& bist_session::tx_capture() const {
    SDRBIST_EXPECTS(tx_capture_ != nullptr);
    return *tx_capture_;
}

const calibration_output& bist_session::calibration() const {
    SDRBIST_EXPECTS(calibration_ != nullptr);
    return *calibration_;
}

const reconstruction_output& bist_session::reconstruction() const {
    SDRBIST_EXPECTS(reconstruction_ != nullptr);
    return *reconstruction_;
}

const grading_output& bist_session::grading() const {
    SDRBIST_EXPECTS(grading_ != nullptr);
    return *grading_;
}

std::uint64_t bist_session::input_digest(stage s) const {
    return stage_input_digest(config_, s);
}

void bist_session::adopt_stimulus(std::shared_ptr<const stimulus_output> out) {
    SDRBIST_EXPECTS(out != nullptr);
    if (out == stimulus_)
        return;
    drop_from(stage::tx_capture);
    stimulus_ = std::move(out);
}

void bist_session::adopt_tx_capture(
    std::shared_ptr<const tx_capture_output> out) {
    SDRBIST_EXPECTS(out != nullptr);
    SDRBIST_EXPECTS(stimulus_ != nullptr);
    if (out == tx_capture_)
        return;
    drop_from(stage::calibration);
    tx_capture_ = std::move(out);
}

void bist_session::adopt_calibration(
    std::shared_ptr<const calibration_output> out) {
    SDRBIST_EXPECTS(out != nullptr);
    SDRBIST_EXPECTS(tx_capture_ != nullptr);
    if (out == calibration_)
        return;
    drop_from(stage::reconstruction);
    calibration_ = std::move(out);
}

void bist_session::adopt_reconstruction(
    std::shared_ptr<const reconstruction_output> out) {
    SDRBIST_EXPECTS(out != nullptr);
    SDRBIST_EXPECTS(calibration_ != nullptr);
    if (out == reconstruction_)
        return;
    drop_from(stage::grading);
    reconstruction_ = std::move(out);
}

void bist_session::adopt_grading(std::shared_ptr<const grading_output> out) {
    SDRBIST_EXPECTS(out != nullptr);
    SDRBIST_EXPECTS(reconstruction_ != nullptr);
    if (out == grading_)
        return;
    grading_ = std::move(out);
}

std::size_t bist_session::adopt_from_store(stage_snapshot_store& store) {
    std::size_t adopted = 0;
    for (const stage s : stage_order) {
        if (halted())
            break;
        if (completed(s))
            continue;
        const std::uint64_t digest = input_digest(s);
        switch (s) {
        case stage::stimulus: {
            auto out = store.load_stimulus(digest);
            if (!out)
                return adopted;
            adopt_stimulus(std::move(out));
            break;
        }
        case stage::tx_capture: {
            auto out = store.load_tx_capture(digest);
            if (!out)
                return adopted;
            adopt_tx_capture(std::move(out));
            break;
        }
        case stage::calibration: {
            auto out = store.load_calibration(digest);
            if (!out)
                return adopted;
            adopt_calibration(std::move(out));
            break;
        }
        case stage::reconstruction: {
            auto out = store.load_reconstruction(digest);
            if (!out)
                return adopted;
            adopt_reconstruction(std::move(out));
            break;
        }
        case stage::grading: {
            auto out = store.load_grading(digest);
            if (!out)
                return adopted;
            adopt_grading(std::move(out));
            break;
        }
        }
        ++adopted;
    }
    return adopted;
}

void bist_session::publish_to_store(stage_snapshot_store& store,
                                    stage s) const {
    SDRBIST_EXPECTS(completed(s));
    const std::uint64_t digest = input_digest(s);
    switch (s) {
    case stage::stimulus: store.store_stimulus(digest, *stimulus_); break;
    case stage::tx_capture:
        store.store_tx_capture(digest, *tx_capture_);
        break;
    case stage::calibration:
        store.store_calibration(digest, *calibration_);
        break;
    case stage::reconstruction:
        store.store_reconstruction(digest, *reconstruction_);
        break;
    case stage::grading: store.store_grading(digest, *grading_); break;
    }
}

bist_report bist_session::report() const {
    bist_report report;
    report.preset_name = config_.preset.name;
    report.evm_limit_percent = config_.evm_limit_percent;

    if (stimulus_) {
        report.plan_discrimination = stimulus_->plan_discrimination;
        report.carrier_hz = stimulus_->carrier_hz;
        report.carrier_nudge_hz = stimulus_->carrier_nudge_hz;
        report.slow_band_offset_hz = stimulus_->plan.slow_offset_hz;
        report.fast_band_offset_hz = stimulus_->plan.fast_offset_hz;
    }
    if (tx_capture_) {
        report.programmed_delay_s = tx_capture_->programmed_delay_s;
        report.dual_rate_conditions_ok = tx_capture_->dual_rate_conditions_ok;
        report.max_search_delay_s = tx_capture_->max_search_delay_s;
    }
    if (calibration_)
        report.skew = calibration_->skew;
    if (grading_) {
        report.mask = grading_->mask;
        report.acpr = grading_->acpr;
        report.acpr_limit_dbc = grading_->acpr_limit_dbc;
        report.acpr_pass = grading_->acpr_pass;
        report.occupied_bw_hz = grading_->occupied_bw_hz;
        report.evm = grading_->evm;
        report.evm_pass = grading_->evm_pass;
        report.measured_output_rms = grading_->measured_output_rms;
        report.min_output_rms = grading_->min_output_rms;
        report.power_pass = grading_->power_pass;
    }
    return report;
}

namespace {

/// Mutable access to a snapshot this session holds uniquely (safe to move
/// from: no other owner can observe the theft); nullptr when shared.
template <typename T>
T* exclusive(const std::shared_ptr<const T>& p) {
    return p.use_count() == 1 ? const_cast<T*>(p.get()) : nullptr;
}

} // namespace

bist_artifacts bist_session::artifacts() const& {
    bist_artifacts art;
    if (stimulus_) {
        art.stimulus = stimulus_->stimulus;
        art.calibration = stimulus_->calibration;
    }
    if (tx_capture_) {
        art.tx_out = tx_capture_->tx_out;
        art.calibration_tx_out = tx_capture_->calibration_tx_out;
        art.capture_input = tx_capture_->capture_input;
        art.spectrum_input = tx_capture_->spectrum_input;
        art.ranging = tx_capture_->ranging;
        art.capture = tx_capture_->capture;
    }
    if (calibration_)
        art.probe_times = calibration_->probe_times;
    if (reconstruction_) {
        art.spectrum_ranging = reconstruction_->spectrum_ranging;
        art.spectrum_capture = reconstruction_->spectrum_capture;
        art.envelope = reconstruction_->envelope;
    }
    return art;
}

bist_artifacts bist_session::artifacts() && {
    bist_artifacts art;
    if (stimulus_) {
        if (stimulus_output* s = exclusive(stimulus_)) {
            art.stimulus = std::move(s->stimulus);
            art.calibration = std::move(s->calibration);
        } else {
            art.stimulus = stimulus_->stimulus;
            art.calibration = stimulus_->calibration;
        }
    }
    if (tx_capture_) {
        if (tx_capture_output* c = exclusive(tx_capture_)) {
            art.tx_out = std::move(c->tx_out);
            art.calibration_tx_out = std::move(c->calibration_tx_out);
            art.capture_input = std::move(c->capture_input);
            art.spectrum_input = std::move(c->spectrum_input);
            art.ranging = c->ranging;
            art.capture = std::move(c->capture);
        } else {
            art.tx_out = tx_capture_->tx_out;
            art.calibration_tx_out = tx_capture_->calibration_tx_out;
            art.capture_input = tx_capture_->capture_input;
            art.spectrum_input = tx_capture_->spectrum_input;
            art.ranging = tx_capture_->ranging;
            art.capture = tx_capture_->capture;
        }
    }
    if (calibration_) {
        if (calibration_output* c = exclusive(calibration_))
            art.probe_times = std::move(c->probe_times);
        else
            art.probe_times = calibration_->probe_times;
    }
    if (reconstruction_) {
        if (reconstruction_output* r = exclusive(reconstruction_)) {
            art.spectrum_ranging = r->spectrum_ranging;
            art.spectrum_capture = std::move(r->spectrum_capture);
            art.envelope = std::move(r->envelope);
        } else {
            art.spectrum_ranging = reconstruction_->spectrum_ranging;
            art.spectrum_capture = reconstruction_->spectrum_capture;
            art.envelope = reconstruction_->envelope;
        }
    }
    drop_from(stage::stimulus); // the snapshots were consumed
    return art;
}

} // namespace sdrbist::bist

#include "bist/loopback.hpp"

#include "rf/tx.hpp"

namespace sdrbist::bist {

loopback_report run_loopback_bist(const loopback_config& config) {
    auto stimulus = waveform::generate_baseband(config.preset.stimulus);

    rf::tx_config txc = config.tx;
    txc.carrier_hz = config.preset.default_carrier_hz;
    const rf::homodyne_tx tx(txc);
    const auto tx_out = tx.transmit(stimulus);

    const rf::homodyne_rx rx(config.rx);
    const auto rx_env = rx.receive(tx_out.envelope, tx_out.envelope_rate,
                                   config.loopback_gain_db);

    loopback_report report;
    report.evm_limit_percent = config.evm_limit_percent;
    report.evm = waveform::measure_evm(
        std::span<const std::complex<double>>(rx_env.data(), rx_env.size()),
        tx_out.envelope_rate, stimulus);
    return report;
}

} // namespace sdrbist::bist

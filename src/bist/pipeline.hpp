/// \file pipeline.hpp
/// \brief The staged BIST pipeline: a `bist_session` materialises the
///        paper's flow as typed stages that can be run individually,
///        resumed, re-run with a modified downstream configuration, or
///        shared across sessions whose upstream configuration is provably
///        identical.
///
/// Dataflow (see stages.hpp for the per-stage artefacts):
///
///   stimulus ──▶ tx_capture ──▶ calibration ──▶ reconstruction ──▶ grading
///
/// Every stage's *input digest* is a content hash of the configuration
/// fields the stage (and everything upstream of it) consumes, in the
/// canonical form of config_canonical.hpp.  Equal digests guarantee
/// bit-identical stage outputs, which is what lets `campaign_runner` pool
/// upstream stage results across scenarios that only differ downstream
/// (e.g. Monte-Carlo probe draws reuse stimulus generation and the Tx
/// captures; fault grids reuse stimulus generation across faults).
///
/// `bist_engine::run()` / `run_verbose()` are thin wrappers over a session
/// and stay bit-identical to the pre-pipeline monolith (locked down by
/// tests/bist/pipeline_test.cpp against a retained monolithic reference).
#pragma once

#include <cstdint>
#include <memory>

#include "bist/engine.hpp"
#include "bist/stages.hpp"

namespace sdrbist::bist {

// ---------------------------------------------------------------------------
// Stage runners: pure functions of the configuration and upstream outputs.
// Exposed so tests and tools can drive stages directly; most callers use
// bist_session.
// ---------------------------------------------------------------------------

[[nodiscard]] stimulus_output run_stimulus(const bist_config& config);
[[nodiscard]] tx_capture_output run_tx_capture(const bist_config& config,
                                               const stimulus_output& stim);
[[nodiscard]] calibration_output
run_calibration(const bist_config& config, const tx_capture_output& cap);
[[nodiscard]] reconstruction_output
run_reconstruction(const bist_config& config, const stimulus_output& stim,
                   const tx_capture_output& cap,
                   const calibration_output& cal);
[[nodiscard]] grading_output run_grading(const bist_config& config,
                                         const stimulus_output& stim,
                                         const reconstruction_output& recon);

// ---------------------------------------------------------------------------
// Snapshot store interface
// ---------------------------------------------------------------------------

/// Abstract persistent store of stage output snapshots, keyed by the
/// stage *input digest* (config_canonical.hpp).  Equal digests guarantee
/// bit-identical stage outputs, so a loaded snapshot can stand in for the
/// compute under the campaign byte-identity contract.
///
/// Contracts:
///  * `load_*` returns null on miss — including version skew and corrupt
///    entries (implementations quarantine those); a hit is a decoded
///    snapshot element-exactly equal to what the compute would produce.
///  * `store_*` is best-effort: failures degrade to "not persisted",
///    exactly the contract a real I/O failure gets.
///  * Implementations must be safe to call from concurrent sessions.
///
/// Implemented by `campaign::stage_artefact_store` (compressed on-disk
/// entries); the interface lives here so `bist_session` can adopt from /
/// publish to a store without the bist layer depending on campaign code.
class stage_snapshot_store {
public:
    virtual ~stage_snapshot_store() = default;

    [[nodiscard]] virtual std::shared_ptr<const stimulus_output>
    load_stimulus(std::uint64_t digest) = 0;
    [[nodiscard]] virtual std::shared_ptr<const tx_capture_output>
    load_tx_capture(std::uint64_t digest) = 0;
    [[nodiscard]] virtual std::shared_ptr<const calibration_output>
    load_calibration(std::uint64_t digest) = 0;
    [[nodiscard]] virtual std::shared_ptr<const reconstruction_output>
    load_reconstruction(std::uint64_t digest) = 0;
    [[nodiscard]] virtual std::shared_ptr<const grading_output>
    load_grading(std::uint64_t digest) = 0;

    virtual void store_stimulus(std::uint64_t digest,
                                const stimulus_output& out) = 0;
    virtual void store_tx_capture(std::uint64_t digest,
                                  const tx_capture_output& out) = 0;
    virtual void store_calibration(std::uint64_t digest,
                                   const calibration_output& out) = 0;
    virtual void store_reconstruction(std::uint64_t digest,
                                      const reconstruction_output& out) = 0;
    virtual void store_grading(std::uint64_t digest,
                               const grading_output& out) = 0;
};

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// One BIST execution, stage by stage.
///
/// Stages run lazily and in order: `run_until(stage::calibration)` runs
/// stimulus, tx_capture and calibration (skipping any already complete),
/// and a later `run_until(stage::grading)` resumes from there.  When the
/// tx_capture stage finds the eq. (9) identifiability conditions violated
/// the session *halts*: downstream stages never run and the report carries
/// the diagnostics gathered so far — exactly the monolithic engine's early
/// return.
///
/// Stage outputs are held as shared immutable snapshots, so sessions with
/// provably equal upstream configuration (equal `input_digest`) can adopt
/// each other's outputs instead of recomputing them.
class bist_session {
public:
    explicit bist_session(bist_config config);

    [[nodiscard]] const bist_config& config() const { return config_; }

    /// Re-target the session onto a modified configuration.  Stages whose
    /// input digest is unchanged keep their outputs; the first stage whose
    /// digest moved — and everything downstream of it — is dropped and will
    /// be recomputed on the next run.  Changing only downstream knobs
    /// (e.g. the spectral mask or EVM limit) therefore re-runs only the
    /// downstream stages.
    void reconfigure(bist_config config);

    /// Run stages in order until `target` is complete.  Returns true when
    /// `target` completed; false when the session halted upstream of it.
    bool run_until(stage target);

    /// Run the full flow (to grading, or to the halt point).
    void run() { run_until(stage::grading); }

    [[nodiscard]] bool completed(stage s) const;

    /// True when tx_capture found the dual-rate identifiability conditions
    /// violated: the flow cannot proceed past stage::tx_capture.
    [[nodiscard]] bool halted() const {
        return tx_capture_ && !tx_capture_->dual_rate_conditions_ok;
    }

    /// Typed stage accessors.  Precondition: completed(stage).
    [[nodiscard]] const stimulus_output& stimulus() const;
    [[nodiscard]] const tx_capture_output& tx_capture() const;
    [[nodiscard]] const calibration_output& calibration() const;
    [[nodiscard]] const reconstruction_output& reconstruction() const;
    [[nodiscard]] const grading_output& grading() const;

    /// Content hash of everything that determines stage `s`'s output: the
    /// canonical stage slices of `s` and every stage upstream of it.
    /// Pure function of the configuration (see config_canonical.hpp).
    [[nodiscard]] std::uint64_t input_digest(stage s) const;

    /// Shared immutable snapshots for cross-session reuse (null until the
    /// stage completes).
    [[nodiscard]] std::shared_ptr<const stimulus_output>
    share_stimulus() const {
        return stimulus_;
    }
    [[nodiscard]] std::shared_ptr<const tx_capture_output>
    share_tx_capture() const {
        return tx_capture_;
    }
    [[nodiscard]] std::shared_ptr<const calibration_output>
    share_calibration() const {
        return calibration_;
    }
    [[nodiscard]] std::shared_ptr<const reconstruction_output>
    share_reconstruction() const {
        return reconstruction_;
    }
    [[nodiscard]] std::shared_ptr<const grading_output>
    share_grading() const {
        return grading_;
    }

    /// Adopt a stage output computed elsewhere.  The caller must guarantee
    /// the donor session's `input_digest` for this stage equals this
    /// session's (equal digests mean bit-identical outputs); each adopt
    /// requires every upstream stage to be present already and drops any
    /// previously-computed downstream outputs.
    void adopt_stimulus(std::shared_ptr<const stimulus_output> out);
    void adopt_tx_capture(std::shared_ptr<const tx_capture_output> out);
    void adopt_calibration(std::shared_ptr<const calibration_output> out);
    void adopt_reconstruction(std::shared_ptr<const reconstruction_output> out);
    void adopt_grading(std::shared_ptr<const grading_output> out);

    /// Adopt completed stage outputs from a persistent snapshot store:
    /// walks the stages in dataflow order, skipping ones already complete,
    /// adopting each store hit and stopping at the first miss (adoption
    /// requires every upstream stage to be present).  Stops early when an
    /// adopted tx_capture halts the session — nothing downstream of a halt
    /// is ever stored or adopted.  Returns the number of stages adopted.
    std::size_t adopt_from_store(stage_snapshot_store& store);

    /// Persist stage `s`'s completed output to the store, keyed by this
    /// session's input digest for `s`.  Precondition: completed(s).
    /// Best-effort (see stage_snapshot_store::store_*).
    void publish_to_store(stage_snapshot_store& store, stage s) const;

    /// Assemble the report from the completed stages (fields of stages that
    /// have not run keep their defaults — the monolithic early-return
    /// behaviour).
    [[nodiscard]] bist_report report() const;

    /// Legacy aggregate view of every completed stage's artefacts
    /// (copies out of the shared snapshots).
    [[nodiscard]] bist_artifacts artifacts() const&;

    /// Expiring-session variant: snapshots this session holds uniquely are
    /// *moved* into the view (no multi-MB record copies — what the
    /// pre-pipeline engine's one-shot path did); shared ones are still
    /// copied.  Consumes the session's stage outputs.
    [[nodiscard]] bist_artifacts artifacts() &&;

private:
    /// Drop `s` and everything downstream.
    void drop_from(stage s);

    bist_config config_;
    std::shared_ptr<const stimulus_output> stimulus_;
    std::shared_ptr<const tx_capture_output> tx_capture_;
    std::shared_ptr<const calibration_output> calibration_;
    std::shared_ptr<const reconstruction_output> reconstruction_;
    std::shared_ptr<const grading_output> grading_;
};

} // namespace sdrbist::bist

/// \file report.hpp
/// \brief BIST verdicts and diagnostic data returned to the production
///        tester.
#pragma once

#include <string>

#include "calib/lms.hpp"
#include "waveform/evm.hpp"
#include "waveform/mask.hpp"
#include "waveform/tx_metrics.hpp"

namespace sdrbist::bist {

/// Everything one BIST execution produced.
struct bist_report {
    std::string preset_name;
    double carrier_hz = 0.0;

    // Time-skew identification.
    calib::skew_estimate skew;
    double programmed_delay_s = 0.0; ///< DCDE target the BIST programmed

    // Identifiability diagnostics.
    bool dual_rate_conditions_ok = false;
    double max_search_delay_s = 0.0; ///< m of the search interval ]0, m[
    double slow_band_offset_hz = 0.0; ///< slow-band shift chosen for eq. (9)
    double fast_band_offset_hz = 0.0; ///< fast-band shift (degenerate fc)
    double carrier_nudge_hz = 0.0; ///< BIST test-carrier shift applied when
                                   ///< every band plan at the nominal
                                   ///< carrier is identifiability-blind
    double plan_discrimination = 0.0; ///< numerical identifiability of the
                                      ///< selected plan (see calib)

    // Spectrum verdict.
    waveform::mask_report mask;

    // Modulation-quality verdict.
    waveform::evm_result evm;
    double evm_limit_percent = 0.0;
    bool evm_pass = false;

    // Output-power verdict (PA health): RMS of the capture-path signal
    // referred back through the ranging attenuator.
    double measured_output_rms = 0.0;
    double min_output_rms = 0.0; ///< 0 = check disabled
    bool power_pass = true;

    // Spectral scalar metrics of the reconstructed signal.
    waveform::acpr_result acpr;
    double acpr_limit_dbc = 0.0; ///< 0 = check disabled
    bool acpr_pass = true;
    double occupied_bw_hz = 0.0; ///< measured 99 % occupied bandwidth

    // Composite verdict.
    [[nodiscard]] bool pass() const {
        return dual_rate_conditions_ok && skew.converged && mask.pass &&
               evm_pass && power_pass && acpr_pass;
    }

    /// Multi-line human-readable summary.
    [[nodiscard]] std::string summary() const;
};

} // namespace sdrbist::bist

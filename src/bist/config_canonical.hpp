/// \file config_canonical.hpp
/// \brief Canonical text serialisation of a materialised bist_config.
///
/// The campaign result cache must key a scenario by *what would be
/// computed*: the fully materialised engine configuration (preset applied,
/// fault injected, seeds and perturbations derived).  Two scenarios with
/// byte-identical canonical text are guaranteed to produce bit-identical
/// reports, so a cache hit can stand in for an engine run.
///
/// Canonical form rules:
///   - one `key=value` line per leaf field, fixed order, '\n' separated;
///   - doubles rendered in shortest round-trip form (std::to_chars), so
///     the text is a bijection of the double value on every platform;
///   - enums rendered as their underlying integer (stable within a
///     serialisation version);
///   - a leading `canon=vN` line versions the serialisation itself — any
///     change to the field set or rendering MUST bump it, which moves every
///     cache key and naturally invalidates stale on-disk entries.
#pragma once

#include <cstdint>
#include <string>

#include "bist/engine.hpp"

namespace sdrbist::bist {

/// Version of the canonical serialisation (see file comment).
inline constexpr int canonical_config_version = 1;

/// Render the configuration in canonical text form.
[[nodiscard]] std::string canonical_config_text(const bist_config& config);

/// FNV-1a digest of `canonical_config_text` (convenience for diagnostics;
/// the campaign cache mixes this with grid coordinates, see
/// campaign/cache.hpp).
[[nodiscard]] std::uint64_t config_digest(const bist_config& config);

} // namespace sdrbist::bist

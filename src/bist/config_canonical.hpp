/// \file config_canonical.hpp
/// \brief Canonical text serialisation of a materialised bist_config.
///
/// The campaign result cache must key a scenario by *what would be
/// computed*: the fully materialised engine configuration (preset applied,
/// fault injected, seeds and perturbations derived).  Two scenarios with
/// byte-identical canonical text are guaranteed to produce bit-identical
/// reports, so a cache hit can stand in for an engine run.
///
/// Canonical form rules:
///   - one `key=value` line per leaf field, fixed order, '\n' separated;
///   - doubles rendered in shortest round-trip form (std::to_chars), so
///     the text is a bijection of the double value on every platform;
///   - enums rendered as their underlying integer (stable within a
///     serialisation version);
///   - a leading `canon=vN` line versions the serialisation itself — any
///     change to the field set or rendering MUST bump it, which moves every
///     cache key and naturally invalidates stale on-disk entries.
#pragma once

#include <cstdint>
#include <string>

#include "bist/engine.hpp"
#include "bist/stages.hpp"

namespace sdrbist::bist {

/// Version of the canonical serialisation (see file comment).
inline constexpr int canonical_config_version = 1;

/// Render the configuration in canonical text form.
[[nodiscard]] std::string canonical_config_text(const bist_config& config);

/// FNV-1a digest of `canonical_config_text` (convenience for diagnostics;
/// the campaign cache mixes this with grid coordinates, see
/// campaign/cache.hpp).
[[nodiscard]] std::uint64_t config_digest(const bist_config& config);

// ---------------------------------------------------------------------------
// Per-stage canonical slices (the staged pipeline, bist/pipeline.hpp).
//
// Each pipeline stage consumes a subset of the configuration.  Its
// canonical *slice* renders exactly that subset (same rules as the full
// canonical form), and the stage *input digest* chains the slices of the
// stage and everything upstream of it.  Two configurations with equal
// input digests for a stage are guaranteed to produce bit-identical stage
// outputs — the invariant `campaign_runner` relies on to share upstream
// stage results across scenarios that only differ downstream.
//
// The slices deliberately key *computation*, not presentation: cosmetic
// fields the stage never reads (e.g. the preset *name*) are excluded, so
// renamed-but-identical presets still share work.  Over-keying a slice
// costs sharing; under-keying is a correctness bug — any new config field
// must be added to the slice of every stage that reads it, and any change
// here MUST bump `stage_canonical_version`.
// ---------------------------------------------------------------------------

/// Version of the stage-slice serialisation (field assignment + rendering).
inline constexpr int stage_canonical_version = 1;

/// Canonical text of the configuration subset stage `s` consumes directly
/// (upstream fields are covered by the upstream stages' slices).
[[nodiscard]] std::string canonical_stage_text(const bist_config& config,
                                               stage s);

/// FNV-1a digest over the canonical slices of `s` and every stage before
/// it — the content hash of everything that determines `s`'s output.
[[nodiscard]] std::uint64_t stage_input_digest(const bist_config& config,
                                               stage s);

} // namespace sdrbist::bist

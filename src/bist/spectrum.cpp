#include "bist/spectrum.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "dsp/ddc.hpp"

namespace sdrbist::bist {

reconstructed_envelope
reconstruct_envelope(const sampling::pnbs_reconstructor& recon,
                     const spectrum_options& opt) {
    const auto& band = recon.kernel().band();
    const double t_lo = recon.valid_begin();
    const double t_hi = recon.valid_end();
    SDRBIST_EXPECTS(t_hi > t_lo);

    // Dense alias-free grid for the passband waveform.
    const double dense_rate = opt.dense_rate_factor * 2.0 * band.f_hi;
    const auto n_dense =
        static_cast<std::size_t>(std::floor((t_hi - t_lo) * dense_rate));
    SDRBIST_EXPECTS(n_dense >= 64);
    const auto x = recon.uniform(t_lo, dense_rate, n_dense);

    // Decimate down to a few × bandwidth.
    const double env_rate_target = opt.envelope_rate_min > 0.0
                                       ? opt.envelope_rate_min
                                       : 4.0 * band.bandwidth();
    auto decim = static_cast<std::size_t>(
        std::max(1.0, std::floor(dense_rate / env_rate_target)));

    const double mix_f =
        opt.mix_frequency > 0.0 ? opt.mix_frequency : band.centre();
    dsp::ddc_options ddc;
    ddc.carrier_hz = mix_f;
    ddc.sample_rate = dense_rate;
    ddc.decimation = decim;
    ddc.fir_taps = opt.ddc_taps;
    ddc.cutoff_hz = opt.ddc_cutoff_hz > 0.0
                        ? opt.ddc_cutoff_hz
                        : 0.55 * band.bandwidth() +
                              std::abs(mix_f - band.centre());

    reconstructed_envelope out;
    out.samples = dsp::digital_downconvert(x, ddc);
    out.rate = dense_rate / static_cast<double>(decim);
    out.t0 = t_lo;

    // The DDC mixes with phase 0 at its first sample; re-reference the
    // envelope phase to absolute time so e(t)·e^{j2π·f_mix·t} = x(t).
    const double phi0 = two_pi * mix_f * t_lo;
    const std::complex<double> rot = std::polar(1.0, -phi0);
    for (auto& v : out.samples)
        v *= rot;
    return out;
}

std::size_t auto_welch_segment(double envelope_rate, double occupied_bw,
                               std::size_t available_samples,
                               double bins_per_occupied) {
    SDRBIST_EXPECTS(envelope_rate > 0.0);
    SDRBIST_EXPECTS(occupied_bw > 0.0);
    SDRBIST_EXPECTS(available_samples >= 512);
    // RBW target: occupied_bw / bins_per_occupied  =>  segment bins needed.
    const double want =
        envelope_rate * bins_per_occupied / occupied_bw;
    std::size_t seg = 256;
    while (static_cast<double>(seg) < want && seg < 16384 &&
           2 * seg <= available_samples / 2)
        seg *= 2;
    return seg;
}

dsp::psd_result envelope_psd(const reconstructed_envelope& env,
                             std::size_t welch_segment) {
    SDRBIST_EXPECTS(env.samples.size() >= welch_segment);
    dsp::welch_options w;
    w.segment_length = welch_segment;
    w.overlap = 0.5;
    w.window = dsp::window_kind::hann;
    return dsp::welch_psd(
        std::span<const std::complex<double>>(env.samples.data(),
                                              env.samples.size()),
        env.rate, w);
}

} // namespace sdrbist::bist

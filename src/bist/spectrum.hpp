/// \file spectrum.hpp
/// \brief From nonuniform samples to a carrier-centred spectrum: dense PNBS
///        evaluation, digital downconversion and Welch PSD.
#pragma once

#include <complex>
#include <vector>

#include "dsp/psd.hpp"
#include "sampling/pnbs.hpp"

namespace sdrbist::bist {

/// Reconstructed complex envelope with its timeline.
struct reconstructed_envelope {
    std::vector<std::complex<double>> samples;
    double rate = 0.0; ///< envelope sample rate
    double t0 = 0.0;   ///< absolute time of samples[0]
};

/// Spectrum-path options.
struct spectrum_options {
    double dense_rate_factor = 2.3; ///< dense grid rate = factor × 2·f_hi
    double envelope_rate_min = 0.0; ///< 0 = auto (4 × bandwidth)
    std::size_t ddc_taps = 0;       ///< DDC FIR length (0 = auto-size)
    double ddc_cutoff_hz = 0.0;     ///< 0 = auto (0.55 × band width)
    std::size_t welch_segment = 0;  ///< 0 = auto: sized so the resolution
                                    ///< bandwidth is a small fraction of the
                                    ///< graded signal's occupied bandwidth
    double mix_frequency = 0.0; ///< DDC mix-down frequency; 0 = the
                                ///< reconstruction band centre.  Set to the
                                ///< carrier when the band is offset from it.
};

/// Welch segment length for a target resolution: the largest power of two
/// <= available/2 with at least `bins_per_occupied` bins across the
/// occupied bandwidth, clamped to [256, 16384].
std::size_t auto_welch_segment(double envelope_rate, double occupied_bw,
                               std::size_t available_samples,
                               double bins_per_occupied = 40.0);

/// Evaluate the reconstructor densely over its valid span, mix down by the
/// band centre and decimate to a manageable envelope rate.
reconstructed_envelope
reconstruct_envelope(const sampling::pnbs_reconstructor& recon,
                     const spectrum_options& opt = {});

/// Welch PSD (two-sided, frequencies relative to the band centre) of a
/// reconstructed envelope.
dsp::psd_result envelope_psd(const reconstructed_envelope& env,
                             std::size_t welch_segment = 256);

} // namespace sdrbist::bist

#include "bist/report.hpp"

#include <sstream>

#include "core/units.hpp"

namespace sdrbist::bist {

std::string bist_report::summary() const {
    std::ostringstream os;
    os << "BIST report — preset '" << preset_name << "' @ "
       << carrier_hz / GHz << " GHz\n";
    os << "  dual-rate conditions: "
       << (dual_rate_conditions_ok ? "ok" : "VIOLATED")
       << "  (search interval ]0, " << max_search_delay_s / ps << " ps[)\n";
    os << "  time-skew: D-hat = " << skew.d_hat / ps << " ps after "
       << skew.iterations << " iterations (cost " << skew.final_cost
       << ", " << (skew.converged ? "converged" : "NOT converged") << ")\n";
    os << "  spectral mask: " << (mask.pass ? "PASS" : "FAIL")
       << " (worst margin " << mask.worst_margin_db << " dB)\n";
    for (const auto& seg : mask.segments)
        os << "    [" << seg.segment.offset_lo_hz / MHz << ", "
           << seg.segment.offset_hi_hz / MHz << "] MHz: measured "
           << seg.measured_dbc << " dBc vs limit " << seg.segment.limit_dbc
           << " dBc -> " << (seg.pass ? "pass" : "FAIL") << "\n";
    os << "  EVM: " << evm.evm_percent() << " % rms (limit "
       << evm_limit_percent << " %) — " << (evm_pass ? "PASS" : "FAIL")
       << "\n";
    if (min_output_rms > 0.0)
        os << "  output power: " << measured_output_rms << " V rms (min "
           << min_output_rms << ") — " << (power_pass ? "PASS" : "FAIL")
           << "\n";
    if (acpr_limit_dbc < 0.0)
        os << "  ACPR: lower " << acpr.lower_dbc << " / upper "
           << acpr.upper_dbc << " dBc (limit " << acpr_limit_dbc << ") — "
           << (acpr_pass ? "PASS" : "FAIL") << "\n";
    if (occupied_bw_hz > 0.0)
        os << "  occupied bandwidth (99%): " << occupied_bw_hz / MHz
           << " MHz\n";
    os << "  verdict: " << (pass() ? "PASS" : "FAIL") << "\n";
    return os.str();
}

} // namespace sdrbist::bist

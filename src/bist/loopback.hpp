/// \file loopback.hpp
/// \brief Conventional Tx->Rx loopback BIST — the technique the paper's
///        introduction critiques: cheap, but subject to *fault masking*
///        (a marginal Tx hidden by a complementary Rx, §I).
///
/// Provided as the baseline strategy so the library can demonstrate,
/// quantitatively, why observing the PA output directly (the paper's
/// BP-TIADC approach) is worth the extra DCDE.
#pragma once

#include "rf/rx.hpp"
#include "waveform/evm.hpp"
#include "waveform/standard.hpp"

namespace sdrbist::bist {

/// Loopback test configuration.
struct loopback_config {
    waveform::standard_preset preset = waveform::paper_qpsk_preset();
    rf::tx_config tx{};
    rf::rx_config rx{};
    double loopback_gain_db = -30.0; ///< coupler + attenuator
    double evm_limit_percent = 8.0;
};

/// Loopback verdict: only the end-to-end EVM is observable.
struct loopback_report {
    waveform::evm_result evm;
    double evm_limit_percent = 0.0;
    [[nodiscard]] bool pass() const {
        return evm.evm_percent() <= evm_limit_percent;
    }
};

/// Run the loopback test: stimulus -> Tx -> coupler -> Rx -> EVM.
loopback_report run_loopback_bist(const loopback_config& config);

} // namespace sdrbist::bist

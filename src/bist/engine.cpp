#include "bist/engine.hpp"

#include "bist/pipeline.hpp"
#include "core/contracts.hpp"

namespace sdrbist::bist {

sampling::band_spec bist_config::fast_band() const {
    return sampling::band_around(preset.default_carrier_hz,
                                 tiadc.channel_rate_hz);
}

sampling::band_spec bist_config::slow_band() const {
    return sampling::band_around(preset.default_carrier_hz,
                                 tiadc.channel_rate_hz /
                                     static_cast<double>(slow_divider));
}

bist_engine::bist_engine(bist_config config) : config_(std::move(config)) {
    SDRBIST_EXPECTS(config_.fast_samples >= 64);
    SDRBIST_EXPECTS(config_.slow_divider >= 2);
    SDRBIST_EXPECTS(config_.probe_count >= 16);
}

std::pair<bist_report, bist_artifacts> bist_engine::run_verbose() const {
    bist_session session(config_);
    session.run();
    bist_report report = session.report();
    return {std::move(report), std::move(session).artifacts()};
}

bist_report bist_engine::run() const {
    bist_session session(config_);
    session.run();
    return session.report();
}

} // namespace sdrbist::bist

#include "bist/engine.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "dsp/biquad.hpp"

namespace sdrbist::bist {

sampling::band_spec bist_config::fast_band() const {
    return sampling::band_around(preset.default_carrier_hz,
                                 tiadc.channel_rate_hz);
}

sampling::band_spec bist_config::slow_band() const {
    return sampling::band_around(preset.default_carrier_hz,
                                 tiadc.channel_rate_hz /
                                     static_cast<double>(slow_divider));
}

bist_engine::bist_engine(bist_config config) : config_(std::move(config)) {
    SDRBIST_EXPECTS(config_.fast_samples >= 64);
    SDRBIST_EXPECTS(config_.slow_divider >= 2);
    SDRBIST_EXPECTS(config_.probe_count >= 16);
}

namespace {

double occupied_bandwidth(const waveform::generator_config& g) {
    return g.symbol_rate * (1.0 + g.rolloff);
}

} // namespace

std::pair<bist_report, bist_artifacts> bist_engine::run_verbose() const {
    bist_report report;
    bist_artifacts art;

    const double nominal_carrier = config_.preset.default_carrier_hz;
    const double b = config_.tiadc.channel_rate_hz;
    const double b1 = b / static_cast<double>(config_.slow_divider);

    report.preset_name = config_.preset.name;
    report.evm_limit_percent = config_.evm_limit_percent;

    // 1. Stimuli (repeatable: PRBS-seeded).  The graded waveform is the
    // preset's; skew calibration uses a wideband waveform whose occupied
    // band is scaled to the slow capture band.
    art.stimulus = waveform::generate_baseband(config_.preset.stimulus);
    waveform::generator_config cal_cfg = config_.use_calibration_stimulus
                                             ? config_.calibration_stimulus
                                             : config_.preset.stimulus;
    if (config_.use_calibration_stimulus &&
        (occupied_bandwidth(cal_cfg) > 0.75 * b1))
        cal_cfg.symbol_rate = 0.22 * b1 / (1.0 + cal_cfg.rolloff) * 1.5;
    art.calibration = waveform::generate_baseband(cal_cfg);

    // 2. Band plan (eq. (9) + numerical identifiability).  When every plan
    // at the nominal carrier is blind (e.g. the carrier is a multiple of
    // B1 so the skew-error image self-folds for both rates), the SDR's own
    // agility is used: the BIST transmits its test waveforms on a slightly
    // nudged carrier.
    const double occ_cal = occupied_bandwidth(cal_cfg);
    const double occ_graded = occupied_bandwidth(config_.preset.stimulus);
    const double occ_max = std::max(occ_cal, occ_graded);
    constexpr double disc_threshold = 1e-2;
    calib::band_plan plan{};
    double carrier = nominal_carrier;
    {
        double best_disc = -1.0;
        calib::band_plan best_plan{};
        double best_carrier = nominal_carrier;
        for (const double frac :
             {0.0, 0.25, -0.25, 0.125, -0.125, 0.375, -0.375}) {
            const double cand_carrier = nominal_carrier + frac * b1;
            const auto cand_plan = calib::choose_band_plan(
                cand_carrier, b, b1, occ_cal, occ_max, disc_threshold);
            const double disc = calib::dual_rate_discrimination(
                cand_plan, cand_carrier, occ_cal);
            if (disc > best_disc) {
                best_disc = disc;
                best_plan = cand_plan;
                best_carrier = cand_carrier;
            }
            if (disc >= disc_threshold)
                break;
        }
        plan = best_plan;
        carrier = best_carrier;
        report.plan_discrimination = best_disc;
    }
    report.carrier_hz = carrier;
    report.carrier_nudge_hz = carrier - nominal_carrier;
    report.slow_band_offset_hz = plan.slow_offset_hz;
    report.fast_band_offset_hz = plan.fast_offset_hz;

    // 3. Transmitter (device under test) runs both waveforms on the BIST
    // carrier.
    rf::tx_config txc = config_.tx;
    txc.carrier_hz = carrier;
    const rf::homodyne_tx tx(txc);
    art.tx_out = tx.transmit(art.stimulus);
    art.calibration_tx_out = tx.transmit(art.calibration);

    auto filtered_input = [&](const rf::tx_output& source, double halfwidth) {
        // Low-rate waveforms may be represented at an envelope rate below
        // the capture bandwidth; the band filter then has nothing to remove
        // and its cutoff is clamped inside the envelope's Nyquist range.
        halfwidth = std::min(halfwidth, 0.4 * source.envelope_rate);
        auto bpf = dsp::butterworth_lowpass(config_.capture_filter_order,
                                            halfwidth, source.envelope_rate);
        auto filtered = bpf.filter(std::span<const std::complex<double>>(
            source.envelope.data(), source.envelope.size()));
        return std::make_shared<rf::envelope_passband>(
            std::move(filtered), source.envelope_rate, source.carrier_hz);
    };
    {
        // The narrow filter (centred on the carrier) must keep everything
        // inside whichever slow-band edge sits closest to the carrier.
        const double slow_cover = b1 / 2.0 - std::abs(plan.slow_offset_hz);
        const double narrow = config_.capture_filter_halfwidth_hz > 0.0
                                  ? config_.capture_filter_halfwidth_hz
                                  : std::min(0.42 * b1, 0.95 * slow_cover);
        const double fast_cover = b / 2.0 - std::abs(plan.fast_offset_hz);
        const double wide = config_.spectrum_filter_halfwidth_hz > 0.0
                                ? config_.spectrum_filter_halfwidth_hz
                                : 0.9 * fast_cover;
        art.capture_input = filtered_input(art.calibration_tx_out, narrow);
        art.spectrum_input = filtered_input(art.tx_out, wide);
    }

    adc::bp_tiadc sampler(config_.tiadc);
    sampler.program_delay(config_.dcde_target_delay_s);
    report.programmed_delay_s = config_.dcde_target_delay_s;

    // 4. Estimation-phase dual-rate capture of the calibration waveform.
    // Start after the pulse shaper's leading transient so the ranging scan
    // and the record see the waveform at its steady level.
    const double cal_ramp =
        static_cast<double>(art.calibration.shaper_delay_samples) /
        art.calibration.sample_rate;
    const double cal_t_start =
        config_.capture_start_s > 0.0
            ? config_.capture_start_s
            : art.capture_input->begin_time() + cal_ramp + 0.1 * us;
    const std::size_t cal_samples = std::max(
        config_.fast_samples,
        static_cast<std::size_t>(
            std::ceil(64.0 * b / cal_cfg.symbol_rate)));
    SDRBIST_EXPECTS(cal_t_start + static_cast<double>(cal_samples) / b <
                    art.capture_input->end_time());

    if (config_.auto_range)
        art.ranging =
            sampler.auto_range(*art.capture_input, cal_t_start, cal_samples);

    art.capture.fast = sampler.capture(*art.capture_input, cal_t_start,
                                       cal_samples, /*capture*/ 0);
    art.capture.slow = sampler.capture_divided(
        *art.capture_input, cal_t_start, cal_samples / config_.slow_divider,
        config_.slow_divider,
        /*capture*/ 1);
    art.capture.band_fast = plan.fast;
    art.capture.band_slow = plan.slow;

    // 5. Identifiability conditions (paper eq. (9)).
    report.dual_rate_conditions_ok =
        calib::dual_rate_conditions_ok(art.capture);
    report.max_search_delay_s = calib::max_search_delay(art.capture);
    if (!report.dual_rate_conditions_ok)
        return {report, art};

    // 6. LMS time-skew identification (paper Algorithm 1).
    const auto [probe_lo, probe_hi] =
        calib::valid_probe_interval(art.capture, config_.lms.recon);
    rng probe_gen(config_.probe_seed);
    art.probe_times = calib::make_probe_times(probe_gen, config_.probe_count,
                                              probe_lo, probe_hi);
    const double d0 = config_.d0_hint_s > 0.0
                          ? config_.d0_hint_s
                          : 0.5 * report.max_search_delay_s;
    const calib::lms_skew_estimator estimator(config_.lms);
    report.skew = estimator.estimate(art.capture, d0, art.probe_times);

    // 7. Spectrum-grading capture of the preset waveform (wide filter,
    // fast rate), then reconstruction with the identified delay, spectrum
    // and EVM.  The record is long enough for ~80 symbols of the graded
    // waveform.
    const double spec_ramp =
        static_cast<double>(art.stimulus.shaper_delay_samples) /
        art.stimulus.sample_rate;
    const double spec_t_start =
        config_.capture_start_s > 0.0
            ? config_.capture_start_s
            : art.spectrum_input->begin_time() + spec_ramp + 0.1 * us;
    const std::size_t spec_samples = std::max(
        config_.fast_samples,
        static_cast<std::size_t>(
            std::ceil(80.0 * b / config_.preset.stimulus.symbol_rate)));
    SDRBIST_EXPECTS(spec_t_start + static_cast<double>(spec_samples) / b <
                    art.spectrum_input->end_time());

    if (config_.auto_range)
        art.spectrum_ranging = sampler.auto_range(*art.spectrum_input,
                                                  spec_t_start, spec_samples);
    art.spectrum_capture = sampler.capture(*art.spectrum_input, spec_t_start,
                                           spec_samples,
                                           /*capture*/ 2);

    const sampling::pnbs_reconstructor recon(
        art.spectrum_capture.even, art.spectrum_capture.odd,
        art.spectrum_capture.period_s, art.spectrum_capture.t_start,
        art.capture.band_fast, report.skew.d_hat, config_.lms.recon);
    spectrum_options spec_opt = config_.spectrum;
    if (spec_opt.mix_frequency <= 0.0)
        spec_opt.mix_frequency = carrier;
    if (spec_opt.ddc_cutoff_hz <= 0.0) {
        // Cover the mask extent (4 × occupied) but no more: narrow graded
        // signals then get a lower envelope rate and finer PSD resolution.
        const double mix_shift = std::abs(spec_opt.mix_frequency -
                                          art.capture.band_fast.centre());
        spec_opt.ddc_cutoff_hz =
            std::min(0.55 * b + mix_shift, 4.6 * occ_graded + mix_shift);
    }
    if (spec_opt.envelope_rate_min <= 0.0)
        spec_opt.envelope_rate_min = 2.4 * spec_opt.ddc_cutoff_hz;
    art.envelope = reconstruct_envelope(recon, spec_opt);

    const std::size_t welch_segment =
        config_.spectrum.welch_segment > 0
            ? config_.spectrum.welch_segment
            : auto_welch_segment(art.envelope.rate, occ_graded,
                                 art.envelope.samples.size());
    const auto psd = envelope_psd(art.envelope, welch_segment);
    report.mask = config_.preset.mask.check(psd);

    // Scalar spectral metrics: ACPR and occupied bandwidth.  Offset
    // precedence: explicit config > the preset's standard-mandated offset
    // > auto (1.5 × occupied bandwidth).
    {
        const double offset =
            config_.acpr_offset_hz > 0.0 ? config_.acpr_offset_hz
            : config_.preset.acpr_offset_hz > 0.0
                ? config_.preset.acpr_offset_hz
                : 1.5 * occ_graded;
        report.acpr = waveform::measure_acpr(psd, occ_graded, offset);
        report.acpr_limit_dbc = config_.acpr_limit_dbc;
        report.acpr_pass = config_.acpr_limit_dbc >= 0.0 ||
                           report.acpr.worst_dbc() <= config_.acpr_limit_dbc;
        report.occupied_bw_hz = waveform::occupied_bandwidth(psd, 0.99);
    }

    waveform::evm_options evm_opt;
    evm_opt.envelope_t0 = art.envelope.t0;
    report.evm = waveform::measure_evm(
        std::span<const std::complex<double>>(art.envelope.samples.data(),
                                              art.envelope.samples.size()),
        art.envelope.rate, art.stimulus, evm_opt);
    report.evm_pass = report.evm.evm_percent() <= config_.evm_limit_percent;

    // 8. Output-power check (PA health): refer the captured RMS back
    // through the ranging attenuator to the capture-path input level.
    {
        const double scale =
            config_.auto_range ? art.spectrum_ranging.input_scale : 1.0;
        report.measured_output_rms =
            rms(art.spectrum_capture.even) / scale;
        report.min_output_rms = config_.min_output_rms;
        report.power_pass = config_.min_output_rms <= 0.0 ||
                            report.measured_output_rms >=
                                config_.min_output_rms;
    }

    return {report, art};
}

bist_report bist_engine::run() const { return run_verbose().first; }

} // namespace sdrbist::bist

/// \file generator.hpp
/// \brief Baseband I/Q stimulus generation: PRBS bits -> constellation
///        symbols -> SRRC-shaped complex envelope.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "waveform/constellation.hpp"
#include "waveform/prbs.hpp"

namespace sdrbist::waveform {

/// A generated complex-envelope waveform plus everything needed to
/// regenerate or demodulate it.
struct baseband_waveform {
    std::vector<std::complex<double>> samples; ///< envelope at `sample_rate`
    double sample_rate = 0.0;                  ///< Hz
    double symbol_rate = 0.0;                  ///< symbols/s
    double rolloff = 0.0;                      ///< SRRC alpha
    std::size_t oversample = 0;                ///< samples per symbol
    std::size_t shaper_delay_samples = 0;      ///< SRRC group delay
    std::vector<std::complex<double>> symbols; ///< transmitted symbols
    modulation mod = modulation::qpsk;

    /// Duration in seconds.
    [[nodiscard]] double duration() const {
        return static_cast<double>(samples.size()) / sample_rate;
    }

    /// Time (seconds) at which symbol k peaks in `samples`.
    [[nodiscard]] double symbol_instant(std::size_t k) const {
        return (static_cast<double>(k * oversample) +
                static_cast<double>(shaper_delay_samples)) /
               sample_rate;
    }
};

/// Stimulus generator configuration.
struct generator_config {
    modulation mod = modulation::qpsk;
    double symbol_rate = 10e6;       ///< symbols/s (paper: 10 MHz QPSK)
    double rolloff = 0.5;            ///< SRRC alpha (paper: 0.5)
    std::size_t oversample = 16;     ///< samples per symbol
    std::size_t span_symbols = 8;    ///< one-sided SRRC span
    std::size_t symbol_count = 256;  ///< number of data symbols
    prbs_order data = prbs_order::prbs15;
    std::uint32_t prbs_seed = 0x5A5A; ///< stimulus repeatability seed
};

/// Generate the SRRC-shaped complex envelope for the configuration.
/// The envelope is deterministic in the seed: BIST captures at different
/// ADC rates replay the identical waveform (trigger-aligned).
baseband_waveform generate_baseband(const generator_config& config);

} // namespace sdrbist::waveform

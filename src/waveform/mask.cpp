#include "waveform/mask.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist::waveform {

spectral_mask::spectral_mask(std::string name, double ref_bw_hz,
                             std::vector<mask_segment> segments)
    : name_(std::move(name)), ref_bw_hz_(ref_bw_hz),
      segments_(std::move(segments)) {
    SDRBIST_EXPECTS(ref_bw_hz_ > 0.0);
    for (const auto& s : segments_) {
        SDRBIST_EXPECTS(s.offset_lo_hz >= 0.0);
        SDRBIST_EXPECTS(s.offset_hi_hz > s.offset_lo_hz);
    }
}

mask_report spectral_mask::check(const dsp::psd_result& psd) const {
    SDRBIST_EXPECTS(!psd.frequency.empty());
    mask_report report;

    // Reference: peak density within the in-band region.
    const double ref = psd.peak_density(-ref_bw_hz_, ref_bw_hz_);
    SDRBIST_EXPECTS(ref > 0.0);
    report.reference_dbhz = db_from_power(ref);

    report.pass = true;
    report.worst_margin_db = std::numeric_limits<double>::infinity();
    for (const auto& seg : segments_) {
        // Worst side of the symmetric offsets.  Segments are half-open
        // [lo, hi): a bin exactly on the upper boundary belongs to the
        // next segment.
        const double hi = std::nextafter(seg.offset_hi_hz, seg.offset_lo_hz);
        const double peak_pos = psd.peak_density(seg.offset_lo_hz, hi);
        const double peak_neg = psd.peak_density(-hi, -seg.offset_lo_hz);
        const double peak = std::max(peak_pos, peak_neg);

        mask_segment_report sr;
        sr.segment = seg;
        if (peak > 0.0)
            sr.measured_dbc = db_from_power(peak / ref);
        else
            sr.measured_dbc = -std::numeric_limits<double>::infinity();
        sr.margin_db = seg.limit_dbc - sr.measured_dbc;
        sr.pass = sr.margin_db >= 0.0;
        report.pass = report.pass && sr.pass;
        report.worst_margin_db = std::min(report.worst_margin_db, sr.margin_db);
        report.segments.push_back(sr);
    }
    return report;
}

double spectral_mask::limit_at(double offset_hz) const {
    const double off = std::abs(offset_hz);
    double limit = std::numeric_limits<double>::infinity();
    for (const auto& s : segments_)
        if (off >= s.offset_lo_hz && off < s.offset_hi_hz)
            limit = std::min(limit, s.limit_dbc);
    return limit;
}

spectral_mask make_narrowband_mask(double symbol_rate_hz, double rolloff) {
    SDRBIST_EXPECTS(symbol_rate_hz > 0.0);
    SDRBIST_EXPECTS(rolloff > 0.0 && rolloff <= 1.0);
    const double occ = symbol_rate_hz * (1.0 + rolloff); // occupied bandwidth
    // The far floor sits above the BIST's own measurement floor: with the
    // paper's 3 ps rms sampling jitter at a 1 GHz carrier the reconstructed
    // noise density is ~ -44 dBc (the "wideband noise" limitation the paper
    // accepts in §II-B3), so limits below ~ -42 dBc are not measurable by
    // this technique.
    std::vector<mask_segment> segs{
        {0.75 * occ, 1.5 * occ, -35.0},
        {1.5 * occ, 4.0 * occ, -42.0},
    };
    return spectral_mask("narrowband", occ / 2.0, std::move(segs));
}

spectral_mask make_strict_mask(double symbol_rate_hz, double rolloff) {
    SDRBIST_EXPECTS(symbol_rate_hz > 0.0);
    SDRBIST_EXPECTS(rolloff > 0.0 && rolloff <= 1.0);
    const double occ = symbol_rate_hz * (1.0 + rolloff);
    std::vector<mask_segment> segs{
        {0.75 * occ, 1.5 * occ, -45.0},
        {1.5 * occ, 4.0 * occ, -60.0},
    };
    return spectral_mask("strict", occ / 2.0, std::move(segs));
}

double bist_measurement_floor_dbc(double carrier_hz, double jitter_rms_s,
                                  double occupied_bw_hz,
                                  double capture_bw_hz) {
    SDRBIST_EXPECTS(carrier_hz > 0.0);
    SDRBIST_EXPECTS(jitter_rms_s >= 0.0);
    SDRBIST_EXPECTS(occupied_bw_hz > 0.0 && capture_bw_hz > 0.0);
    if (jitter_rms_s == 0.0)
        return -200.0; // effectively unbounded
    const double rel = two_pi * carrier_hz * jitter_rms_s;
    return db_from_power(rel * rel * occupied_bw_hz / capture_bw_hz);
}

spectral_mask relax_to_measurement_floor(const spectral_mask& mask,
                                         double floor_dbc, double margin_db) {
    std::vector<mask_segment> segs = mask.segments();
    for (auto& s : segs)
        s.limit_dbc = std::max(s.limit_dbc, floor_dbc + margin_db);
    return spectral_mask(mask.name() + "-capability", mask.reference_bandwidth(),
                         std::move(segs));
}

} // namespace sdrbist::waveform

#include "waveform/prbs.hpp"

#include "core/contracts.hpp"

namespace sdrbist::waveform {

prbs_generator::prbs_generator(prbs_order order, std::uint32_t seed) {
    switch (order) {
    case prbs_order::prbs7:
        nbits_ = 7;
        tap_ = 6;
        break;
    case prbs_order::prbs9:
        nbits_ = 9;
        tap_ = 5;
        break;
    case prbs_order::prbs15:
        nbits_ = 15;
        tap_ = 14;
        break;
    case prbs_order::prbs23:
        nbits_ = 23;
        tap_ = 18;
        break;
    case prbs_order::prbs31:
        nbits_ = 31;
        tap_ = 28;
        break;
    default:
        nbits_ = 7;
        tap_ = 6;
        break;
    }
    const std::uint32_t mask =
        nbits_ == 31 ? 0x7FFFFFFFu : ((1u << nbits_) - 1u);
    state_ = seed & mask;
    SDRBIST_EXPECTS(state_ != 0); // all-zero state is a fixed point
}

int prbs_generator::next_bit() {
    const int out = static_cast<int>(state_ & 1u);
    const std::uint32_t fb =
        ((state_ >> (nbits_ - 1)) ^ (state_ >> (tap_ - 1))) & 1u;
    state_ = static_cast<std::uint32_t>((state_ << 1) | fb);
    const std::uint32_t mask =
        nbits_ == 31 ? 0x7FFFFFFFu : ((1u << nbits_) - 1u);
    state_ &= mask;
    return out;
}

std::vector<int> prbs_generator::bits(std::size_t n) {
    std::vector<int> out(n);
    for (auto& b : out)
        b = next_bit();
    return out;
}

std::uint64_t prbs_generator::period() const {
    return (std::uint64_t{1} << nbits_) - 1;
}

} // namespace sdrbist::waveform

/// \file evm.hpp
/// \brief Error-vector-magnitude measurement of a recovered envelope
///        against the known transmitted symbols.
///
/// The BIST generated the stimulus itself, so the reference symbols, symbol
/// timing and pulse shape are all known; only a complex gain (PA gain and
/// phase rotation) and a small residual timing offset must be estimated.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "waveform/generator.hpp"

namespace sdrbist::waveform {

/// EVM measurement result.
struct evm_result {
    double evm_rms = 0.0;          ///< RMS EVM, fraction of reference RMS
    double evm_peak = 0.0;         ///< worst-symbol EVM, fraction
    std::complex<double> gain{1.0, 0.0}; ///< fitted complex channel gain
    double timing_offset = 0.0;    ///< fitted timing offset in seconds
    std::vector<std::complex<double>> received_symbols; ///< gain-corrected

    /// EVM in percent.
    [[nodiscard]] double evm_percent() const { return 100.0 * evm_rms; }
    /// EVM in dB (20·log10).
    [[nodiscard]] double evm_db() const;
};

/// EVM meter options.
struct evm_options {
    std::size_t skip_symbols = 8;   ///< discard edge symbols (filter tails)
    double timing_search_span = 0.5;///< ± span of timing search, in symbols
    std::size_t timing_steps = 33;  ///< coarse search grid size (odd)
    std::size_t interp_half_taps = 16; ///< envelope interpolation support
    double envelope_t0 = 0.0; ///< absolute time of envelope[0] on the
                              ///< reference waveform's timeline
};

/// Measure EVM of `envelope` (complex baseband at `sample_rate`, timeline
/// aligned with the waveform's `samples`) against `reference.symbols`.
/// Matched filtering is applied internally (SRRC of the reference config).
evm_result measure_evm(std::span<const std::complex<double>> envelope,
                       double sample_rate, const baseband_waveform& reference,
                       const evm_options& opt = {});

} // namespace sdrbist::waveform

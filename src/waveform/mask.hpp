/// \file mask.hpp
/// \brief Spectral emission masks and compliance checking.
///
/// The BIST's end goal (paper §I) is verifying "compliance to the spectral
/// mask" of the transmitted signal.  A mask is a piecewise-constant limit
/// on PSD versus offset from the carrier, in dB relative to the in-band
/// reference level (dBc).
#pragma once

#include <string>
#include <vector>

#include "dsp/psd.hpp"

namespace sdrbist::waveform {

/// One mask segment: limit applies for |offset| in [offset_lo, offset_hi).
struct mask_segment {
    double offset_lo_hz = 0.0;
    double offset_hi_hz = 0.0;
    double limit_dbc = 0.0; ///< maximum PSD relative to reference, dB
};

/// Verdict for one segment of a mask check.
struct mask_segment_report {
    mask_segment segment;
    double measured_dbc = 0.0; ///< worst (highest) PSD in the segment
    double margin_db = 0.0;    ///< limit - measured; >= 0 means pass
    bool pass = false;
};

/// Full mask-check result.
struct mask_report {
    bool pass = false;
    double worst_margin_db = 0.0; ///< most negative (or smallest) margin
    double reference_dbhz = 0.0;  ///< 0 dBc reference density (dB of V^2/Hz)
    std::vector<mask_segment_report> segments;
};

/// A named spectral emission mask (symmetric around the carrier).
class spectral_mask {
public:
    spectral_mask() = default;

    /// \param name       mask identifier for reports
    /// \param ref_bw_hz  half-width of the in-band region that defines the
    ///                   0 dBc reference (peak density inside ±ref_bw)
    /// \param segments   limit segments, offsets in Hz from carrier
    spectral_mask(std::string name, double ref_bw_hz,
                  std::vector<mask_segment> segments);

    /// Check a *baseband* PSD (two-sided, frequencies relative to carrier).
    /// Both positive and negative offsets are checked against the symmetric
    /// limits; the worst of the two sides is reported per segment.
    [[nodiscard]] mask_report check(const dsp::psd_result& psd) const;

    /// Mask limit at a given offset (dBc); +inf inside no segment.
    [[nodiscard]] double limit_at(double offset_hz) const;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] double reference_bandwidth() const { return ref_bw_hz_; }
    [[nodiscard]] const std::vector<mask_segment>& segments() const {
        return segments_;
    }

private:
    std::string name_;
    double ref_bw_hz_ = 0.0;
    std::vector<mask_segment> segments_;
};

/// Generic narrowband emission mask scaled to a channel of the given symbol
/// rate and roll-off: reference band = occupied bandwidth/2; shoulders at
/// -35 dBc from 0.75·B_occ to 1.5·B_occ; far-out floor -50 dBc to 4·B_occ.
/// Styled after public land-mobile emission masks; exact numbers are
/// configuration data, not behaviourally load-bearing.
spectral_mask make_narrowband_mask(double symbol_rate_hz, double rolloff);

/// A stricter mask variant used to demonstrate fail verdicts (-45 dBc
/// shoulders, -60 dBc floor).
spectral_mask make_strict_mask(double symbol_rate_hz, double rolloff);

/// The PSD floor (dBc, density relative to the in-band peak) a jitter-
/// limited nonuniform-sampling BIST can measure: sampling jitter of
/// `jitter_rms_s` at carrier `carrier_hz` adds noise of relative power
/// (2π·fc·σ)² spread over the capture bandwidth, while the signal power
/// concentrates in its occupied bandwidth.  (Paper §II-B3 accepts this
/// wideband-noise limitation.)
double bist_measurement_floor_dbc(double carrier_hz, double jitter_rms_s,
                                  double occupied_bw_hz, double capture_bw_hz);

/// A copy of `mask` with every segment limit raised to at least
/// `floor_dbc + margin_db` — test limits must sit above what the
/// instrument can measure.
spectral_mask relax_to_measurement_floor(const spectral_mask& mask,
                                         double floor_dbc,
                                         double margin_db = 4.0);

} // namespace sdrbist::waveform

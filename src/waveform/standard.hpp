/// \file standard.hpp
/// \brief Multistandard waveform presets.
///
/// An SDR "operates over a wide range of operating parameters (frequency,
/// data rate, modulation type...)"; a BIST must cover all of them (paper
/// §II-B).  A preset bundles the stimulus configuration with the emission
/// mask the configuration must satisfy.
#pragma once

#include <string>
#include <vector>

#include "waveform/generator.hpp"
#include "waveform/mask.hpp"

namespace sdrbist::waveform {

/// A named radio configuration under test.
struct standard_preset {
    std::string name;
    generator_config stimulus;
    spectral_mask mask;
    double default_carrier_hz = 1e9;
    /// Standard-mandated adjacent-channel offset for the ACPR measurement
    /// (0 = auto, 1.5 × occupied bandwidth).  An explicit
    /// `bist_config::acpr_offset_hz` still takes precedence.
    double acpr_offset_hz = 0.0;
};

/// The paper's evaluation waveform: 10 MHz QPSK, SRRC alpha = 0.5, 1 GHz.
standard_preset paper_qpsk_preset();

/// Catalogue of shipped presets (paper waveform + additional standards that
/// exercise the multistandard claim: different rates, orders, bandwidths).
std::vector<standard_preset> standard_catalogue();

/// Find a preset by name.  Throws contract_violation when unknown.
standard_preset find_preset(const std::string& name);

} // namespace sdrbist::waveform

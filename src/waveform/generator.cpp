#include "waveform/generator.hpp"

#include "core/contracts.hpp"
#include "dsp/fir.hpp"
#include "waveform/srrc.hpp"

namespace sdrbist::waveform {

baseband_waveform generate_baseband(const generator_config& config) {
    SDRBIST_EXPECTS(config.symbol_rate > 0.0);
    SDRBIST_EXPECTS(config.oversample >= 2);
    SDRBIST_EXPECTS(config.symbol_count >= 16);

    const constellation con(config.mod);
    prbs_generator prbs(config.data, config.prbs_seed);
    const auto bits = prbs.bits(config.symbol_count *
                                static_cast<std::size_t>(con.bits_per_symbol()));
    auto symbols = con.map_stream(bits);

    const auto taps =
        srrc_taps(config.rolloff, config.oversample, config.span_symbols);

    // Upsample-and-filter with the SRRC (polyphase upfirdn, up = oversample).
    // With unit-energy taps, a gain of sqrt(oversample) makes both the
    // envelope power (~1 for a unit-power constellation) and the
    // symbol-instant amplitude (~srrc(0)·symbol) independent of the
    // oversampling factor.
    std::vector<std::complex<double>> scaled(symbols.size());
    const double gain = std::sqrt(static_cast<double>(config.oversample));
    for (std::size_t i = 0; i < symbols.size(); ++i)
        scaled[i] = symbols[i] * gain;

    auto env = dsp::upfirdn(taps,
                            std::span<const std::complex<double>>(
                                scaled.data(), scaled.size()),
                            config.oversample, 1);

    baseband_waveform wf;
    wf.samples = std::move(env);
    wf.sample_rate = config.symbol_rate * static_cast<double>(config.oversample);
    wf.symbol_rate = config.symbol_rate;
    wf.rolloff = config.rolloff;
    wf.oversample = config.oversample;
    wf.shaper_delay_samples = config.span_symbols * config.oversample;
    wf.symbols = std::move(symbols);
    wf.mod = config.mod;
    return wf;
}

} // namespace sdrbist::waveform

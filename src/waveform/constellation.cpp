#include "waveform/constellation.hpp"

#include <cmath>
#include <limits>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist::waveform {

namespace {

// Gray code of i.
unsigned gray(unsigned i) { return i ^ (i >> 1); }

// Pulse-amplitude levels for one QAM axis: Gray-mapped, unit spacing 2.
// level index g in [0, m) -> amplitude 2g - (m-1).
std::vector<std::complex<double>> square_qam(int bits) {
    const int m_axis = 1 << (bits / 2); // points per axis
    const auto n = static_cast<std::size_t>(1) << bits;
    std::vector<std::complex<double>> pts(n);
    // Average energy of the unnormalised grid: 2·(m^2-1)/3 per complex dim.
    const double axis_e =
        (static_cast<double>(m_axis) * m_axis - 1.0) / 3.0; // E[a^2] per axis
    const double scale = 1.0 / std::sqrt(2.0 * axis_e);
    for (std::size_t v = 0; v < n; ++v) {
        // Split bits: first half -> I, second half -> Q; Gray-decode so that
        // adjacent grid cells differ in one bit.
        const unsigned hi = static_cast<unsigned>(v) >> (bits / 2);
        const unsigned lo =
            static_cast<unsigned>(v) & ((1u << (bits / 2)) - 1u);
        // Find grid position whose gray code equals the bit pattern.
        auto degray = [](unsigned g) {
            unsigned b = 0;
            for (; g; g >>= 1)
                b ^= g;
            return b;
        };
        const unsigned gi = degray(hi);
        const unsigned gq = degray(lo);
        const double ai = 2.0 * static_cast<double>(gi) - (m_axis - 1);
        const double aq = 2.0 * static_cast<double>(gq) - (m_axis - 1);
        pts[v] = std::complex<double>(ai, aq) * scale;
    }
    return pts;
}

} // namespace

constellation::constellation(modulation kind) : kind_(kind) {
    switch (kind) {
    case modulation::bpsk:
        bits_per_symbol_ = 1;
        points_ = {{1.0, 0.0}, {-1.0, 0.0}};
        break;
    case modulation::qpsk: {
        bits_per_symbol_ = 2;
        // Gray-mapped QPSK on the diagonals, unit energy.
        const double a = 1.0 / std::sqrt(2.0);
        points_.resize(4);
        for (unsigned v = 0; v < 4; ++v) {
            const unsigned g = gray(v);
            const double i = (g & 2u) ? -a : a;
            const double q = (g & 1u) ? -a : a;
            points_[v] = {i, q};
        }
        break;
    }
    case modulation::psk8: {
        bits_per_symbol_ = 3;
        points_.resize(8);
        for (unsigned v = 0; v < 8; ++v)
            points_[v] = std::polar(1.0, two_pi * gray(v) / 8.0 + pi / 8.0);
        break;
    }
    case modulation::qam16:
        bits_per_symbol_ = 4;
        points_ = square_qam(4);
        break;
    case modulation::qam64:
        bits_per_symbol_ = 6;
        points_ = square_qam(6);
        break;
    case modulation::dqpsk_pi4: {
        // Symbols live on an 8-point ring (the union of the two QPSK grids
        // the differential ±pi/4 / ±3pi/4 rotations alternate between).
        bits_per_symbol_ = 2;
        points_.resize(8);
        for (unsigned m = 0; m < 8; ++m)
            points_[m] = std::polar(1.0, pi / 4.0 * static_cast<double>(m));
        break;
    }
    }
    SDRBIST_ENSURES(is_differential() ||
                    points_.size() ==
                        (static_cast<std::size_t>(1) << bits_per_symbol_));
}

std::complex<double> constellation::map(std::span<const int> bits) const {
    SDRBIST_EXPECTS(!is_differential()); // use map_stream (phase state)
    SDRBIST_EXPECTS(bits.size() == static_cast<std::size_t>(bits_per_symbol_));
    std::size_t v = 0;
    for (int b : bits) {
        SDRBIST_EXPECTS(b == 0 || b == 1);
        v = (v << 1) | static_cast<unsigned>(b);
    }
    return points_[v];
}

std::vector<std::complex<double>>
constellation::map_stream(std::span<const int> bits) const {
    SDRBIST_EXPECTS(bits.size() % static_cast<std::size_t>(bits_per_symbol_) ==
                    0);
    const std::size_t n = bits.size() / static_cast<std::size_t>(bits_per_symbol_);
    std::vector<std::complex<double>> out(n);
    if (kind_ == modulation::dqpsk_pi4) {
        // Gray-coded phase increments: 00 -> +pi/4, 01 -> +3pi/4,
        // 11 -> -3pi/4, 10 -> -pi/4 (TETRA convention).
        long step_acc = 1; // phase in units of pi/4, start at pi/4
        for (std::size_t s = 0; s < n; ++s) {
            const int b0 = bits[2 * s];
            const int b1 = bits[2 * s + 1];
            SDRBIST_EXPECTS((b0 == 0 || b0 == 1) && (b1 == 0 || b1 == 1));
            long step;
            if (b0 == 0 && b1 == 0)
                step = 1; // +pi/4
            else if (b0 == 0 && b1 == 1)
                step = 3; // +3pi/4
            else if (b0 == 1 && b1 == 1)
                step = -3; // -3pi/4
            else
                step = -1; // -pi/4
            step_acc = ((step_acc + step) % 8 + 8) % 8;
            out[s] = points_[static_cast<std::size_t>(step_acc)];
        }
        return out;
    }
    for (std::size_t s = 0; s < n; ++s)
        out[s] = map(bits.subspan(s * bits_per_symbol_,
                                  static_cast<std::size_t>(bits_per_symbol_)));
    return out;
}

std::size_t constellation::demap(std::complex<double> received) const {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < points_.size(); ++i) {
        const double d = std::norm(received - points_[i]);
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    return best;
}

std::complex<double> constellation::point(std::size_t index) const {
    SDRBIST_EXPECTS(index < points_.size());
    return points_[index];
}

double constellation::min_distance() const {
    double d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < points_.size(); ++i)
        for (std::size_t j = i + 1; j < points_.size(); ++j)
            d = std::min(d, std::abs(points_[i] - points_[j]));
    return d;
}

std::string to_string(modulation m) {
    switch (m) {
    case modulation::bpsk:
        return "BPSK";
    case modulation::qpsk:
        return "QPSK";
    case modulation::psk8:
        return "8-PSK";
    case modulation::qam16:
        return "16-QAM";
    case modulation::qam64:
        return "64-QAM";
    case modulation::dqpsk_pi4:
        return "pi/4-DQPSK";
    }
    return "unknown";
}

} // namespace sdrbist::waveform

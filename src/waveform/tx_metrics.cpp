#include "waveform/tx_metrics.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist::waveform {

acpr_result measure_acpr(const dsp::psd_result& psd, double channel_bw,
                         double adjacent_offset, double adjacent_bw) {
    SDRBIST_EXPECTS(channel_bw > 0.0);
    if (adjacent_bw <= 0.0)
        adjacent_bw = channel_bw;
    SDRBIST_EXPECTS(adjacent_offset > channel_bw / 2.0);
    SDRBIST_EXPECTS(psd.frequency.size() >= 8);

    acpr_result r;
    r.main_power = psd.band_power(-channel_bw / 2.0, channel_bw / 2.0);
    SDRBIST_EXPECTS(r.main_power > 0.0);

    const double lower = psd.band_power(-adjacent_offset - adjacent_bw / 2.0,
                                        -adjacent_offset + adjacent_bw / 2.0);
    const double upper = psd.band_power(adjacent_offset - adjacent_bw / 2.0,
                                        adjacent_offset + adjacent_bw / 2.0);
    r.lower_dbc = db_from_power(std::max(lower, 1e-300) / r.main_power);
    r.upper_dbc = db_from_power(std::max(upper, 1e-300) / r.main_power);
    return r;
}

double occupied_bandwidth(const dsp::psd_result& psd, double fraction) {
    SDRBIST_EXPECTS(fraction >= 0.5 && fraction < 1.0);
    SDRBIST_EXPECTS(psd.frequency.size() >= 8);
    const double df = psd.frequency[1] - psd.frequency[0];

    double total = 0.0;
    double centroid = 0.0;
    for (std::size_t i = 0; i < psd.frequency.size(); ++i) {
        total += psd.density[i] * df;
        centroid += psd.frequency[i] * psd.density[i] * df;
    }
    SDRBIST_EXPECTS(total > 0.0);
    centroid /= total;

    // Grow a symmetric window around the centroid until it holds the
    // requested fraction.
    const double f_lo = psd.frequency.front();
    const double f_hi = psd.frequency.back();
    const double max_half = std::max(centroid - f_lo, f_hi - centroid);
    double lo = 0.0, hi = max_half;
    for (int it = 0; it < 60; ++it) {
        const double half = 0.5 * (lo + hi);
        const double p = psd.band_power(centroid - half, centroid + half);
        if (p / total < fraction)
            lo = half;
        else
            hi = half;
    }
    return 2.0 * hi;
}

} // namespace sdrbist::waveform

#include "waveform/standard.hpp"

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist::waveform {

standard_preset paper_qpsk_preset() {
    generator_config g;
    g.mod = modulation::qpsk;
    g.symbol_rate = 10.0 * MHz;
    g.rolloff = 0.5;
    g.oversample = 16;
    g.span_symbols = 8;
    g.symbol_count = 256;
    return standard_preset{
        "paper-qpsk-10M",
        g,
        make_narrowband_mask(g.symbol_rate, g.rolloff),
        1.0 * GHz,
    };
}

std::vector<standard_preset> standard_catalogue() {
    std::vector<standard_preset> cat;
    cat.push_back(paper_qpsk_preset());

    {
        generator_config g;
        g.mod = modulation::bpsk;
        g.symbol_rate = 2.0 * MHz;
        g.rolloff = 0.35;
        g.oversample = 16;
        g.span_symbols = 10;
        g.symbol_count = 256;
        cat.push_back({"tactical-bpsk-2M", g,
                       make_narrowband_mask(g.symbol_rate, g.rolloff),
                       400.0 * MHz});
    }
    {
        generator_config g;
        g.mod = modulation::psk8;
        g.symbol_rate = 5.0 * MHz;
        g.rolloff = 0.35;
        g.oversample = 16;
        g.span_symbols = 10;
        g.symbol_count = 256;
        cat.push_back({"psk8-5M", g,
                       make_narrowband_mask(g.symbol_rate, g.rolloff),
                       900.0 * MHz});
    }
    {
        generator_config g;
        g.mod = modulation::qam16;
        g.symbol_rate = 10.0 * MHz;
        g.rolloff = 0.25;
        g.oversample = 16;
        g.span_symbols = 10;
        g.symbol_count = 256;
        cat.push_back({"qam16-10M", g,
                       make_narrowband_mask(g.symbol_rate, g.rolloff),
                       1.2 * GHz});
    }
    {
        generator_config g;
        g.mod = modulation::qam64;
        g.symbol_rate = 15.0 * MHz;
        g.rolloff = 0.25;
        g.oversample = 16;
        g.span_symbols = 10;
        g.symbol_count = 256;
        cat.push_back({"qam64-15M", g,
                       make_narrowband_mask(g.symbol_rate, g.rolloff),
                       2.0 * GHz});
    }
    {
        // TETRA-class differential modulation in the UHF tactical band.
        generator_config g;
        g.mod = modulation::dqpsk_pi4;
        g.symbol_rate = 1.0 * MHz;
        g.rolloff = 0.35;
        g.oversample = 16;
        g.span_symbols = 10;
        g.symbol_count = 256;
        // TETRA grades ACPR at fixed channel offsets, not at a fraction of
        // the occupied bandwidth: pin the adjacent channel 2 MHz out.
        cat.push_back({"dqpsk-1M", g,
                       make_narrowband_mask(g.symbol_rate, g.rolloff),
                       380.0 * MHz, 2.0 * MHz});
    }
    return cat;
}

standard_preset find_preset(const std::string& name) {
    for (auto& p : standard_catalogue())
        if (p.name == name)
            return p;
    SDRBIST_EXPECTS(!"unknown preset name");
    return {};
}

} // namespace sdrbist::waveform

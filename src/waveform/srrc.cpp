#include "waveform/srrc.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/units.hpp"

namespace sdrbist::waveform {

double srrc_value(double t, double a) {
    SDRBIST_EXPECTS(a > 0.0 && a <= 1.0);
    const double at = std::abs(t);
    if (at < 1e-9) {
        // h(0) = 1 - a + 4a/pi.
        return 1.0 - a + 4.0 * a / pi;
    }
    const double sing = 1.0 / (4.0 * a);
    if (std::abs(at - sing) < 1e-9) {
        // Removable singularity at |t| = 1/(4a).
        const double c = a / std::sqrt(2.0);
        return c * ((1.0 + 2.0 / pi) * std::sin(pi / (4.0 * a)) +
                    (1.0 - 2.0 / pi) * std::cos(pi / (4.0 * a)));
    }
    const double num = std::sin(pi * t * (1.0 - a)) +
                       4.0 * a * t * std::cos(pi * t * (1.0 + a));
    const double den = pi * t * (1.0 - 16.0 * a * a * t * t);
    return num / den;
}

double raised_cosine_value(double t, double a) {
    SDRBIST_EXPECTS(a > 0.0 && a <= 1.0);
    const double at = std::abs(t);
    const double sing = 1.0 / (2.0 * a);
    double shape;
    if (std::abs(at - sing) < 1e-9)
        shape = pi / 4.0 * sinc(1.0 / (2.0 * a));
    else
        shape = sinc(t) * std::cos(pi * a * t) /
                (1.0 - 4.0 * a * a * t * t);
    return shape;
}

std::vector<double> srrc_taps(double rolloff, std::size_t oversample,
                              std::size_t span_symbols) {
    SDRBIST_EXPECTS(oversample >= 2);
    SDRBIST_EXPECTS(span_symbols >= 2);
    const std::size_t half = span_symbols * oversample;
    std::vector<double> h(2 * half + 1);
    for (std::size_t i = 0; i < h.size(); ++i) {
        const double t = (static_cast<double>(i) - static_cast<double>(half)) /
                         static_cast<double>(oversample);
        h[i] = srrc_value(t, rolloff);
    }
    // Unit energy: matched-filter cascade then has unit gain at symbol peaks.
    double e = 0.0;
    for (double v : h)
        e += v * v;
    const double scale = 1.0 / std::sqrt(e);
    for (double& v : h)
        v *= scale;
    return h;
}

} // namespace sdrbist::waveform

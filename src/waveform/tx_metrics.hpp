/// \file tx_metrics.hpp
/// \brief Scalar transmitter metrics computed from a baseband PSD:
///        adjacent-channel power ratio (ACPR) and occupied bandwidth (OBW).
///
/// Complements the mask check: masks bound the worst-case density, ACPR
/// bounds the *integrated* adjacent-channel interference, OBW verifies the
/// modulator produces the expected spectral width.
#pragma once

#include "dsp/psd.hpp"

namespace sdrbist::waveform {

/// ACPR measurement result (power ratios relative to the main channel).
struct acpr_result {
    double main_power = 0.0;  ///< integrated main-channel power (linear)
    double lower_dbc = 0.0;   ///< lower adjacent channel, dB rel. main
    double upper_dbc = 0.0;   ///< upper adjacent channel, dB rel. main
    /// Worst (largest) of the two sides.
    [[nodiscard]] double worst_dbc() const {
        return lower_dbc > upper_dbc ? lower_dbc : upper_dbc;
    }
};

/// Integrate the main channel [-bw/2, bw/2] and the two adjacent channels
/// centred at ±offset (width `adjacent_bw`; 0 = same as main).
/// The PSD must be two-sided baseband (frequencies relative to the
/// carrier).  Preconditions: bw > 0, offset > bw/2 (channels disjoint).
acpr_result measure_acpr(const dsp::psd_result& psd, double channel_bw,
                         double adjacent_offset, double adjacent_bw = 0.0);

/// x%-power occupied bandwidth: the smallest symmetric interval around the
/// power centroid containing `fraction` of the total power.
/// Precondition: 0.5 <= fraction < 1.
double occupied_bandwidth(const dsp::psd_result& psd, double fraction = 0.99);

} // namespace sdrbist::waveform

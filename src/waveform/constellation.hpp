/// \file constellation.hpp
/// \brief Gray-mapped linear modulation constellations.
///
/// Multistandard support is the point of the paper's BIST — the same
/// signal path must be testable under any modulation the radio ships.
#pragma once

#include <complex>
#include <span>
#include <string>
#include <vector>

namespace sdrbist::waveform {

/// Supported constellation families (all normalised to unit average power).
enum class modulation {
    bpsk,
    qpsk,
    psk8,
    qam16,
    qam64,
    dqpsk_pi4, ///< pi/4-shifted differential QPSK (TETRA-class radios)
};

/// A constellation: symbol points plus Gray bit mapping.
class constellation {
public:
    explicit constellation(modulation kind);

    /// Bits consumed per symbol (log2 of the constellation size).
    [[nodiscard]] int bits_per_symbol() const { return bits_per_symbol_; }

    /// Number of points.
    [[nodiscard]] std::size_t size() const { return points_.size(); }

    /// Map `bits_per_symbol()` bits (MSB first) to a point.
    [[nodiscard]] std::complex<double> map(std::span<const int> bits) const;

    /// Map a full bit stream to symbols; bit count must be a multiple of
    /// bits_per_symbol().
    [[nodiscard]] std::vector<std::complex<double>>
    map_stream(std::span<const int> bits) const;

    /// Nearest-point hard decision; returns the point index.
    [[nodiscard]] std::size_t demap(std::complex<double> received) const;

    /// Point by index.
    [[nodiscard]] std::complex<double> point(std::size_t index) const;

    /// All points.
    [[nodiscard]] const std::vector<std::complex<double>>& points() const {
        return points_;
    }

    /// Minimum distance between distinct points.
    [[nodiscard]] double min_distance() const;

    /// Differential modulations encode bits in symbol-to-symbol phase
    /// rotations; map() of a single symbol is then undefined (use
    /// map_stream, which carries the phase state).
    [[nodiscard]] bool is_differential() const {
        return kind_ == modulation::dqpsk_pi4;
    }

    [[nodiscard]] modulation kind() const { return kind_; }

private:
    modulation kind_;
    int bits_per_symbol_;
    std::vector<std::complex<double>> points_; ///< indexed by symbol value
};

/// Name of a modulation (e.g. "QPSK").
std::string to_string(modulation m);

} // namespace sdrbist::waveform

#include "waveform/evm.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "waveform/srrc.hpp"

namespace sdrbist::waveform {

double evm_result::evm_db() const {
    return 20.0 * std::log10(std::max(evm_rms, 1e-300));
}

namespace {

// Continuous-time matched filtering: correlate the envelope with the SRRC
// centred at t_k + tau.  With the closed-form SRRC normalised so that
// integral srrc^2(u) du = 1 (u in symbol periods), the output approximates
// the transmitted symbol scaled by the channel's complex gain.
std::complex<double>
matched_output(std::span<const std::complex<double>> env, double fs,
               double t_centre, double symbol_period, double rolloff,
               double span_symbols) {
    const double t_lo = t_centre - span_symbols * symbol_period;
    const double t_hi = t_centre + span_symbols * symbol_period;
    auto n_lo = static_cast<long>(std::ceil(t_lo * fs));
    auto n_hi = static_cast<long>(std::floor(t_hi * fs));
    n_lo = std::max<long>(n_lo, 0);
    n_hi = std::min<long>(n_hi, static_cast<long>(env.size()) - 1);
    std::complex<double> acc{0.0, 0.0};
    for (long n = n_lo; n <= n_hi; ++n) {
        const double u =
            (static_cast<double>(n) / fs - t_centre) / symbol_period;
        acc += env[static_cast<std::size_t>(n)] * srrc_value(u, rolloff);
    }
    // Riemann sum dt / Ts converts to symbol-period units.
    return acc / (fs * symbol_period);
}

struct trial_result {
    double evm = 0.0;
    std::complex<double> gain{1.0, 0.0};
    std::vector<std::complex<double>> corrected;
};

trial_result evaluate_at_offset(std::span<const std::complex<double>> env,
                                double fs, const baseband_waveform& ref,
                                double tau, std::size_t k_lo, std::size_t k_hi,
                                double span_symbols) {
    const double ts = 1.0 / ref.symbol_rate;
    std::vector<std::complex<double>> y(k_hi - k_lo);
    for (std::size_t k = k_lo; k < k_hi; ++k)
        y[k - k_lo] = matched_output(env, fs, ref.symbol_instant(k) + tau, ts,
                                     ref.rolloff, span_symbols);

    // Least-squares complex gain: g = <y, s> / <s, s>.
    std::complex<double> num{0.0, 0.0};
    double den = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        num += y[i] * std::conj(ref.symbols[k_lo + i]);
        den += std::norm(ref.symbols[k_lo + i]);
    }
    SDRBIST_EXPECTS(den > 0.0);
    const std::complex<double> g = num / den;
    SDRBIST_EXPECTS(std::abs(g) > 0.0);

    trial_result out;
    out.gain = g;
    out.corrected.resize(y.size());
    double err = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        out.corrected[i] = y[i] / g;
        err += std::norm(out.corrected[i] - ref.symbols[k_lo + i]);
    }
    out.evm = std::sqrt(err / den);
    return out;
}

} // namespace

evm_result measure_evm(std::span<const std::complex<double>> envelope,
                       double sample_rate, const baseband_waveform& reference,
                       const evm_options& opt) {
    SDRBIST_EXPECTS(sample_rate > 0.0);
    SDRBIST_EXPECTS(envelope.size() >= 16);
    SDRBIST_EXPECTS(opt.timing_steps >= 3 && opt.timing_steps % 2 == 1);
    SDRBIST_EXPECTS(reference.symbols.size() > 2 * opt.skip_symbols + 8);

    const double ts = 1.0 / reference.symbol_rate;
    const double span_symbols = 6.0; // matched-filter one-sided support
    // Envelope sample n sits at absolute time envelope_t0 + n/fs; shift to
    // the envelope-local timeline used by matched_output.
    const double t_shift = opt.envelope_t0;
    const double env_end =
        static_cast<double>(envelope.size() - 1) / sample_rate;

    // Usable symbol range: matched window plus worst-case tau inside data.
    const double guard = span_symbols * ts + opt.timing_search_span * ts;
    std::size_t k_lo = opt.skip_symbols;
    while (k_lo < reference.symbols.size() &&
           reference.symbol_instant(k_lo) - t_shift - guard < 0.0)
        ++k_lo;
    std::size_t k_hi = reference.symbols.size() - opt.skip_symbols;
    while (k_hi > k_lo &&
           reference.symbol_instant(k_hi - 1) - t_shift + guard > env_end)
        --k_hi;
    SDRBIST_EXPECTS(k_hi > k_lo + 8);

    // Coarse timing search.
    double best_tau = 0.0;
    trial_result best;
    best.evm = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < opt.timing_steps; ++s) {
        const double frac = static_cast<double>(s) /
                                static_cast<double>(opt.timing_steps - 1) * 2.0 -
                            1.0;
        const double tau = frac * opt.timing_search_span * ts;
        auto trial = evaluate_at_offset(envelope, sample_rate, reference,
                                        tau - t_shift, k_lo, k_hi,
                                        span_symbols);
        if (trial.evm < best.evm) {
            best = std::move(trial);
            best_tau = tau;
        }
    }

    // One golden-section-style refinement pass around the best grid point.
    const double step0 = 2.0 * opt.timing_search_span * ts /
                         static_cast<double>(opt.timing_steps - 1);
    double step = step0 / 2.0;
    for (int it = 0; it < 6; ++it) {
        for (const double tau :
             {best_tau - step, best_tau + step}) {
            auto trial = evaluate_at_offset(envelope, sample_rate, reference,
                                            tau - t_shift, k_lo, k_hi,
                                            span_symbols);
            if (trial.evm < best.evm) {
                best = std::move(trial);
                best_tau = tau;
            }
        }
        step /= 2.0;
    }

    evm_result out;
    out.evm_rms = best.evm;
    out.gain = best.gain;
    out.timing_offset = best_tau;
    out.received_symbols = std::move(best.corrected);
    double peak = 0.0;
    double sym_rms = 0.0;
    for (std::size_t i = 0; i < out.received_symbols.size(); ++i) {
        peak = std::max(peak, std::abs(out.received_symbols[i] -
                                       reference.symbols[k_lo + i]));
        sym_rms += std::norm(reference.symbols[k_lo + i]);
    }
    sym_rms = std::sqrt(sym_rms /
                        static_cast<double>(out.received_symbols.size()));
    out.evm_peak = peak / sym_rms;
    return out;
}

} // namespace sdrbist::waveform

/// \file prbs.hpp
/// \brief Maximal-length LFSR pseudo-random bit sequences (PRBS).
///
/// Production BIST stimuli must be repeatable bit-exactly across captures —
/// the dual-rate skew estimator relies on re-playing the *same* waveform —
/// so data comes from deterministic PRBS generators rather than an RNG.
#pragma once

#include <cstdint>
#include <vector>

namespace sdrbist::waveform {

/// Standard PRBS polynomial orders (ITU-T O.150 family).
enum class prbs_order {
    prbs7,  ///< x^7 + x^6 + 1
    prbs9,  ///< x^9 + x^5 + 1
    prbs15, ///< x^15 + x^14 + 1
    prbs23, ///< x^23 + x^18 + 1
    prbs31, ///< x^31 + x^28 + 1
};

/// Fibonacci LFSR producing a maximal-length bit sequence.
class prbs_generator {
public:
    /// \param order polynomial selection
    /// \param seed  non-zero initial register state (low bits used)
    explicit prbs_generator(prbs_order order, std::uint32_t seed = 1);

    /// Next bit (0/1).
    int next_bit();

    /// Generate n bits.
    std::vector<int> bits(std::size_t n);

    /// Sequence period (2^order - 1).
    [[nodiscard]] std::uint64_t period() const;

    /// Register width in bits.
    [[nodiscard]] int order() const { return nbits_; }

private:
    std::uint32_t state_;
    int nbits_;
    int tap_; ///< second feedback tap position (1-based from LSB side)
};

} // namespace sdrbist::waveform

/// \file srrc.hpp
/// \brief Square-root raised-cosine (SRRC) pulse shaping.
///
/// The paper's test stimulus is "10 MHz QPSK symbols shaped by a square root
/// raised cosine filter with a roll-off factor of 0.5".
#pragma once

#include <cstddef>
#include <vector>

namespace sdrbist::waveform {

/// SRRC impulse response sampled at `oversample` samples per symbol over
/// `span_symbols` symbols each side of the peak.
///
/// \param rolloff       excess-bandwidth factor alpha in (0, 1]
/// \param oversample    samples per symbol (>= 2)
/// \param span_symbols  one-sided filter span in symbols (>= 2)
/// \return taps of length 2·span·oversample + 1, normalised to unit energy
///         (so that SRRC -> matched SRRC gives a unit-gain raised cosine)
std::vector<double> srrc_taps(double rolloff, std::size_t oversample,
                              std::size_t span_symbols);

/// Closed-form SRRC waveform value at t (in symbol periods, Ts = 1),
/// handling the removable singularities at t = 0 and |t| = 1/(4·alpha).
double srrc_value(double t_symbols, double rolloff);

/// Raised-cosine (full Nyquist) value at t in symbol periods — the
/// autocorrelation of the SRRC; used by tests to verify the ISI-free
/// property of the matched cascade.
double raised_cosine_value(double t_symbols, double rolloff);

} // namespace sdrbist::waveform

#include "calib/dual_rate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/stats.hpp"

namespace sdrbist::calib {

namespace {
long kernel_k(const sampling::band_spec& band) {
    return ceil_snapped(2.0 * band.f_lo / band.bandwidth());
}
} // namespace

bool dual_rate_conditions_ok(const sampling::band_spec& band_fast,
                             const sampling::band_spec& band_slow) {
    band_fast.validate();
    band_slow.validate();
    const double b = band_fast.bandwidth();
    const double b1 = band_slow.bandwidth();
    SDRBIST_EXPECTS(b1 < b);

    const double kp = static_cast<double>(kernel_k(band_fast) + 1);
    const double k1 = static_cast<double>(kernel_k(band_slow));
    const double k1p = k1 + 1.0;

    const double lhs = kp * b;
    const double tol = 1e-6 * lhs;
    if (std::abs(lhs - k1 * b1) < tol)
        return false; // eq. (9a)
    if (std::abs(lhs - k1p * b1) < tol)
        return false; // eq. (9b)
    return true;
}

bool dual_rate_conditions_ok(const dual_rate_capture& capture) {
    const double b = capture.band_fast.bandwidth();
    const double b1 = capture.band_slow.bandwidth();
    SDRBIST_EXPECTS(approx_equal(capture.fast.period_s * b, 1.0, 1e-9));
    SDRBIST_EXPECTS(approx_equal(capture.slow.period_s * b1, 1.0, 1e-9));
    return dual_rate_conditions_ok(capture.band_fast, capture.band_slow);
}

double max_search_delay(const sampling::band_spec& band_fast,
                        const sampling::band_spec& band_slow) {
    const double b = band_fast.bandwidth();
    const double b1 = band_slow.bandwidth();
    const double kp = static_cast<double>(kernel_k(band_fast) + 1);
    const double k1p = static_cast<double>(kernel_k(band_slow) + 1);
    return std::min(1.0 / (kp * b), 1.0 / (k1p * b1));
}

double max_search_delay(const dual_rate_capture& capture) {
    return max_search_delay(capture.band_fast, capture.band_slow);
}

namespace {

// Core of choose_slow_band_offset, returning NaN instead of throwing so
// choose_band_plan can probe fast-band placements.  The fit constraint is
// relative to `signal_centre` (the carrier), which may differ from the fast
// band's centre when the fast band itself was shifted.
double try_slow_band_offset(const sampling::band_spec& band_fast,
                            double slow_bandwidth, double occupied_bw,
                            double signal_centre) {
    const double b1 = slow_bandwidth;
    const double b = band_fast.bandwidth();
    const double fc = band_fast.centre();
    const double kp_b = static_cast<double>(kernel_k(band_fast) + 1) * b;

    // Largest |slow-band centre - signal centre| that keeps the occupied
    // band inside, with a small guard for the band-select filter skirt.
    const double max_signal_offset =
        b1 / 2.0 - occupied_bw / 2.0 - 0.02 * b1;
    // Convert to a constraint on the offset from the *fast* centre.
    const double centre_shift = fc - signal_centre;
    const double max_offset_pos = max_signal_offset - centre_shift;
    const double max_offset_neg = -max_signal_offset - centre_shift;
    if (max_offset_pos < max_offset_neg)
        return std::numeric_limits<double>::quiet_NaN();

    // For a centre shift `off`, the slow-band ratio is
    //   g(off) = 2·f_lo1/B1 = (2·fc + 2·off)/B1 - 1,
    // and k1 = ceil(g).  Enumerate k1 candidates reachable within the
    // offset budget, skip the ones violating eq. (9), and take the offset
    // of smallest magnitude whose k1 interval is admissible.
    auto g_of = [&](double off) { return (2.0 * fc + 2.0 * off) / b1 - 1.0; };
    const double g_lo = g_of(max_offset_neg);
    const double g_hi = g_of(max_offset_pos);
    const auto c_min = static_cast<long>(std::ceil(g_lo));
    const auto c_max = static_cast<long>(std::ceil(g_hi));

    const double guard = 0.02 * b1; // stay clear of the interval edges
    double best_offset = 0.0;
    bool found = false;
    for (long c = c_min; c <= c_max; ++c) {
        const double cb = static_cast<double>(c) * b1;
        const double tol = 1e-6 * kp_b;
        if (std::abs(kp_b - cb) < tol || std::abs(kp_b - (cb + b1)) < tol)
            continue; // eq. (9) violated for this k1
        // Offsets giving ceil(g) == c:  g in (c-1, c].
        const double lo = (static_cast<double>(c - 1) * b1 - 2.0 * fc) / 2.0 +
                          b1 / 2.0 + guard;
        const double hi = (cb - 2.0 * fc) / 2.0 + b1 / 2.0 - guard;
        const double clamped_lo = std::max(lo, max_offset_neg);
        const double clamped_hi = std::min(hi, max_offset_pos);
        if (clamped_lo > clamped_hi)
            continue;
        // Offset of smallest magnitude inside the admissible interval.
        const double off = std::clamp(0.0, clamped_lo, clamped_hi);
        if (!found || std::abs(off) < std::abs(best_offset)) {
            best_offset = off;
            found = true;
        }
    }
    if (!found)
        return std::numeric_limits<double>::quiet_NaN();
    return best_offset;
}

} // namespace

double choose_slow_band_offset(const sampling::band_spec& band_fast,
                               double slow_bandwidth, double occupied_bw) {
    band_fast.validate();
    SDRBIST_EXPECTS(slow_bandwidth > 0.0);
    SDRBIST_EXPECTS(occupied_bw > 0.0);
    const double off = try_slow_band_offset(band_fast, slow_bandwidth,
                                            occupied_bw, band_fast.centre());
    SDRBIST_EXPECTS(!std::isnan(off));
    SDRBIST_ENSURES(dual_rate_conditions_ok(
        band_fast,
        sampling::band_around(band_fast.centre() + off, slow_bandwidth)));
    return off;
}

double dual_rate_discrimination(const band_plan& plan, double carrier_hz,
                                double occupied_bw) {
    plan.fast.validate();
    plan.slow.validate();
    SDRBIST_EXPECTS(occupied_bw > 0.0);
    const double b = plan.fast.bandwidth();
    const double b1 = plan.slow.bandwidth();
    const double m = max_search_delay(plan.fast, plan.slow);

    // Pick a stable probe delay and stable wrong hypotheses.
    auto stabilise = [&](double d) {
        while (!sampling::kohlenberg_kernel::delay_is_stable(plan.fast, d) ||
               !sampling::kohlenberg_kernel::delay_is_stable(plan.slow, d))
            d *= 1.013;
        return d;
    };
    const double d_true = stabilise(0.40 * m);
    const double d_low = stabilise(0.28 * m);
    const double d_high = stabilise(0.52 * m);

    // Deterministic synthetic multitone across the occupied band.
    std::vector<rf::tone> tones;
    for (int i = 0; i < 5; ++i) {
        rf::tone t;
        t.frequency_hz = carrier_hz + (static_cast<double>(i) / 4.0 - 0.5) *
                                          0.8 * occupied_bw;
        t.amplitude = 1.0;
        t.phase_rad = 0.7 * static_cast<double>(i) + 0.3;
        tones.push_back(t);
    }
    const std::size_t n_fast = 360;
    const double t_period = 1.0 / b;
    const double t1_period = 1.0 / b1;
    const rf::multitone_signal sig(
        std::move(tones), static_cast<double>(n_fast) * t_period + 2.0 * m);

    dual_rate_capture cap;
    cap.band_fast = plan.fast;
    cap.band_slow = plan.slow;
    cap.fast.period_s = t_period;
    cap.slow.period_s = t1_period;
    cap.fast.t_start = cap.slow.t_start = 0.0;
    cap.fast.true_delay_s = cap.slow.true_delay_s = d_true;
    const std::size_t n_slow = n_fast / 2;
    cap.fast.even.resize(n_fast);
    cap.fast.odd.resize(n_fast);
    cap.slow.even.resize(n_slow);
    cap.slow.odd.resize(n_slow);
    for (std::size_t k = 0; k < n_fast; ++k) {
        const double t = static_cast<double>(k) * t_period;
        cap.fast.even[k] = sig.value(t);
        cap.fast.odd[k] = sig.value(t + d_true);
    }
    for (std::size_t k = 0; k < n_slow; ++k) {
        const double t = static_cast<double>(k) * t1_period;
        cap.slow.even[k] = sig.value(t);
        cap.slow.odd[k] = sig.value(t + d_true);
    }

    const sampling::pnbs_options opt{61, 8.0};
    const auto [lo, hi] = valid_probe_interval(cap, opt);
    rng gen(0x51C3);
    const auto probes = make_probe_times(gen, 120, lo, hi);

    double power = 0.0;
    for (double t : probes)
        power += sig.value(t) * sig.value(t);
    power /= static_cast<double>(probes.size());
    SDRBIST_ENSURES(power > 0.0);

    const double c_low = skew_cost(cap, d_low, probes, opt);
    const double c_high = skew_cost(cap, d_high, probes, opt);
    return std::min(c_low, c_high) / power;
}

band_plan choose_band_plan(double carrier_hz, double fast_bandwidth,
                           double slow_bandwidth, double occupied_bw,
                           double fast_occupied_bw,
                           double min_discrimination) {
    SDRBIST_EXPECTS(carrier_hz > 0.0);
    SDRBIST_EXPECTS(slow_bandwidth > 0.0 &&
                    slow_bandwidth < fast_bandwidth);
    SDRBIST_EXPECTS(occupied_bw > 0.0);
    if (fast_occupied_bw <= 0.0)
        fast_occupied_bw = occupied_bw;

    // Candidate fast-band shifts, preferring the centred band.  The shift
    // budget keeps the widest graded signal (and a skirt guard) well inside
    // the fast band.
    const double b = fast_bandwidth;
    const double budget =
        b / 2.0 - std::max(occupied_bw, fast_occupied_bw) / 2.0 - 0.05 * b;
    band_plan best{};
    double best_disc = -1.0;
    for (const double frac : {0.0, 0.025, -0.025, 0.05, -0.05, 0.075, -0.075,
                              0.1, -0.1}) {
        const double off_f = frac * b;
        if (std::abs(off_f) > budget && frac != 0.0)
            continue;
        const auto fast = sampling::band_around(carrier_hz + off_f, b);
        const double off_s = try_slow_band_offset(fast, slow_bandwidth,
                                                  occupied_bw, carrier_hz);
        if (std::isnan(off_s))
            continue;
        band_plan plan;
        plan.fast = fast;
        plan.slow =
            sampling::band_around(fast.centre() + off_s, slow_bandwidth);
        plan.fast_offset_hz = off_f;
        plan.slow_offset_hz = fast.centre() + off_s - carrier_hz;
        SDRBIST_ENSURES(dual_rate_conditions_ok(plan.fast, plan.slow));

        const double disc =
            dual_rate_discrimination(plan, carrier_hz, occupied_bw);
        if (disc >= min_discrimination)
            return plan;
        if (disc > best_disc) {
            best_disc = disc;
            best = plan;
        }
    }
    SDRBIST_EXPECTS(best_disc >= 0.0); // no admissible plan at all
    return best;
}

double skew_cost(const dual_rate_capture& capture, double delay_hypothesis,
                 std::span<const double> probe_times,
                 const sampling::pnbs_options& opt) {
    SDRBIST_EXPECTS(!probe_times.empty());

    const sampling::pnbs_reconstructor fast(
        capture.fast.even, capture.fast.odd, capture.fast.period_s,
        capture.fast.t_start, capture.band_fast, delay_hypothesis, opt);
    const sampling::pnbs_reconstructor slow(
        capture.slow.even, capture.slow.odd, capture.slow.period_s,
        capture.slow.t_start, capture.band_slow, delay_hypothesis, opt);

    // Batch evaluation of both reconstructions over the probe set (the
    // LMS inner loop — this runs once per cost evaluation per scenario).
    const auto v_fast = fast.values(probe_times);
    const auto v_slow = slow.values(probe_times);
    double acc = 0.0;
    for (std::size_t i = 0; i < probe_times.size(); ++i) {
        const double d = v_fast[i] - v_slow[i];
        acc += d * d;
    }
    return acc / static_cast<double>(probe_times.size());
}

std::vector<double> make_probe_times(rng& gen, std::size_t n, double t_lo,
                                     double t_hi) {
    SDRBIST_EXPECTS(n >= 1);
    SDRBIST_EXPECTS(t_lo < t_hi);
    auto t = gen.uniform_vector(n, t_lo, t_hi);
    std::sort(t.begin(), t.end());
    return t;
}

std::pair<double, double>
valid_probe_interval(const dual_rate_capture& capture,
                     const sampling::pnbs_options& opt) {
    // Build throwaway reconstructors at a safely-stable hypothesis just to
    // query the valid spans (the span depends only on record geometry).
    const double probe_delay =
        sampling::kohlenberg_kernel::optimal_delay(capture.band_fast);
    const sampling::pnbs_reconstructor fast(
        capture.fast.even, capture.fast.odd, capture.fast.period_s,
        capture.fast.t_start, capture.band_fast, probe_delay, opt);
    const sampling::pnbs_reconstructor slow(
        capture.slow.even, capture.slow.odd, capture.slow.period_s,
        capture.slow.t_start, capture.band_slow, probe_delay, opt);
    const double lo = std::max(fast.valid_begin(), slow.valid_begin());
    const double hi = std::min(fast.valid_end(), slow.valid_end());
    SDRBIST_ENSURES(lo < hi);
    return {lo, hi};
}

} // namespace sdrbist::calib

/// \file dual_rate.hpp
/// \brief The dual-rate reconstruction-consistency cost function of the
///        paper (eqs. (7)–(9)): the reference-free metric whose unique
///        minimum over D̂ in ]0, m[ sits at the true time-skew D.
///
/// Two captures of the *same repeatable stimulus* are taken: one at channel
/// rate B (period T) and one at B1 = B/2 (period T1).  For a hypothesis D̂
/// both are PNBS-reconstructed at N probe instants; the mean-square
/// disagreement is the cost.  At D̂ = D both reconstructions equal f(t) and
/// agree; anywhere else they distort differently (different k, different
/// kernels) and disagree.
#pragma once

#include <span>
#include <vector>

#include "adc/tiadc.hpp"
#include "core/random.hpp"
#include "sampling/pnbs.hpp"

namespace sdrbist::calib {

/// The pair of captures the estimator works on.
struct dual_rate_capture {
    adc::nonuniform_capture fast; ///< at rate B
    adc::nonuniform_capture slow; ///< at rate B1 < B
    sampling::band_spec band_fast; ///< band assumed for the fast capture
    sampling::band_spec band_slow; ///< band assumed for the slow capture
                                   ///< (narrower: B1 must cover the signal)
};

/// Paper eq. (9): dual-rate identifiability conditions
///   k⁺·B != k1·B1   and   k⁺·B != k1⁺·B1
/// (k from the fast band/rate, k1 from the slow ones; each capture's rate
/// is the reciprocal of its band's width).
bool dual_rate_conditions_ok(const sampling::band_spec& band_fast,
                             const sampling::band_spec& band_slow);
bool dual_rate_conditions_ok(const dual_rate_capture& capture);

/// Paper §IV-A: m = min{ 1/(k⁺·B), 1/(k1⁺·B1) } — the upper end of the
/// delay search interval ]0, m[ on which the cost has a unique minimum.
double max_search_delay(const sampling::band_spec& band_fast,
                        const sampling::band_spec& band_slow);
double max_search_delay(const dual_rate_capture& capture);

/// Choose a slow-band centre offset (relative to the fast band centre) such
/// that eq. (9) holds and the occupied signal still fits the shifted band.
/// Returns the offset in Hz; throws contract_violation when no candidate
/// offset works (e.g. the carrier is an exact multiple of B1 — use
/// choose_band_plan, which may also shift the fast band).
double choose_slow_band_offset(const sampling::band_spec& band_fast,
                               double slow_bandwidth, double occupied_bw);

/// A reconstruction-band placement satisfying the eq. (9) identifiability
/// conditions for a signal of `occupied_bw` centred on the carrier.
struct band_plan {
    sampling::band_spec fast;  ///< band assumed by the rate-B capture
    sampling::band_spec slow;  ///< band assumed by the rate-B1 capture
    double fast_offset_hz = 0.0; ///< fast-band centre minus carrier
    double slow_offset_hz = 0.0; ///< slow-band centre minus carrier
};

/// Numerical identifiability check of a band plan: noise-free dual-rate
/// captures of a synthetic multitone spanning the occupied band are
/// reconstructed with a deliberately wrong delay hypothesis; the returned
/// value is that wrong-delay cost normalised by the signal power.
///
/// Values well above ~1e-2 mean a sharp cost minimum (paper Fig. 5 shape);
/// values near zero reveal a *blind* plan — e.g. when the signal sits at
/// k·B/2 and the skew-error image folds back onto the signal for both
/// rates, a degeneracy the algebraic eq. (9) does not exclude.
double dual_rate_discrimination(const band_plan& plan, double carrier_hz,
                                double occupied_bw);

/// Plan both band placements.  Prefers centred bands; shifts the slow band
/// first, and nudges the fast band only for degenerate carriers (carrier an
/// exact multiple of B1, where no slow shift can satisfy eq. (9)).  Among
/// admissible plans the first with dual_rate_discrimination above
/// `min_discrimination` wins; if none qualifies the most discriminating
/// plan is returned (query its value again to decide whether to move the
/// BIST carrier).
/// `occupied_bw` is the signal width the *slow* band must keep (the
/// calibration stimulus); `fast_occupied_bw` (0 = same) the width the fast
/// band must keep (the widest waveform to be graded).
/// Throws contract_violation when the occupied bandwidth cannot fit.
band_plan choose_band_plan(double carrier_hz, double fast_bandwidth,
                           double slow_bandwidth, double occupied_bw,
                           double fast_occupied_bw = 0.0,
                           double min_discrimination = 1e-2);

/// The paper's cost (eqs. (7)/(8)): mean squared difference between the
/// rate-B and rate-B1 reconstructions under hypothesis D̂, evaluated at the
/// given probe times.
///
/// Preconditions: D̂ stable for both bands; probes within the valid spans
/// of both reconstructors.
double skew_cost(const dual_rate_capture& capture, double delay_hypothesis,
                 std::span<const double> probe_times,
                 const sampling::pnbs_options& opt = {});

/// N probe times drawn uniformly from [t_lo, t_hi] (paper: N = 300 random
/// values in [470 ns, 1700 ns]).
std::vector<double> make_probe_times(rng& gen, std::size_t n, double t_lo,
                                     double t_hi);

/// Largest probe interval valid for both captures with the given taps.
/// Returns {t_lo, t_hi}.
std::pair<double, double>
valid_probe_interval(const dual_rate_capture& capture,
                     const sampling::pnbs_options& opt = {});

} // namespace sdrbist::calib

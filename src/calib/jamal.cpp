#include "calib/jamal.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/units.hpp"

namespace sdrbist::calib {

jamal_estimate estimate_skew_sine_fit(const adc::nonuniform_capture& capture,
                                      double tone_rf_hz,
                                      const jamal_options& opt) {
    SDRBIST_EXPECTS(tone_rf_hz > 0.0);
    SDRBIST_EXPECTS(capture.even.size() >= 16);

    const double t = capture.period_s;
    // Normalised tone frequency and its first-Nyquist-zone fold.
    double nu = std::fmod(tone_rf_hz * t, 1.0);
    bool inverted = false;
    if (nu > 0.5) {
        nu = 1.0 - nu;
        inverted = true;
    }
    SDRBIST_EXPECTS(nu > 1e-6 && nu < 0.5 - 1e-6);

    const auto fit0 = dsp::sine_fit_3param(capture.even, nu);
    const auto fit1 = dsp::sine_fit_3param(capture.odd, nu);

    // Channel 0 observes cos(2π·nu·n ± θ); channel 1 adds 2π·f_RF·D to the
    // carrier phase θ.  With spectral inversion the observed phase is -θ.
    double delta = fit1.phase - fit0.phase;
    if (inverted)
        delta = -delta;
    delta = wrap_phase(delta);

    double d_hat = delta / (two_pi * tone_rf_hz);

    // Resolve the n/f_RF ambiguity inside the search range.
    const double period_rf = 1.0 / tone_rf_hz;
    const double d_min = opt.min_delay_s;
    const double d_max =
        opt.max_delay_s > 0.0 ? opt.max_delay_s : 0.5 * period_rf;
    SDRBIST_EXPECTS(d_max > d_min);
    while (d_hat < d_min)
        d_hat += period_rf;
    while (d_hat > d_max)
        d_hat -= period_rf;
    // If we stepped below the range the ambiguity is unresolvable; report
    // the closest candidate (the caller sees the residual and range).
    if (d_hat < d_min)
        d_hat += period_rf;

    jamal_estimate out;
    out.d_hat = d_hat;
    out.phase_even = fit0.phase;
    out.phase_odd = fit1.phase;
    out.alias_freq_norm = nu;
    out.spectrum_inverted = inverted;
    out.fit_residual_rms = std::max(fit0.residual_rms, fit1.residual_rms);
    return out;
}

} // namespace sdrbist::calib

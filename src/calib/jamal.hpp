/// \file jamal.hpp
/// \brief Sample-time-error estimation with a known test sinusoid, adapted
///        from Jamal et al., "Calibration of sample-time error in a
///        two-channel time-interleaved analog-to-digital converter"
///        (TCAS-I 2004) — the baseline the paper compares against in
///        Table I.
///
/// Adaptation (the paper used one without publishing details): each channel
/// record is a sine-fit (IEEE-1057, known frequency) of the aliased test
/// tone; the inter-channel phase difference divided by 2π·f_RF yields the
/// skew.  Its two defining properties are preserved: it needs a *known*
/// input sinusoid, and its accuracy depends on the tone frequency ω0.
#pragma once

#include "adc/tiadc.hpp"
#include "dsp/tone.hpp"

namespace sdrbist::calib {

/// Estimation output.
struct jamal_estimate {
    double d_hat = 0.0;         ///< estimated skew
    double phase_even = 0.0;    ///< fitted phase, channel 0
    double phase_odd = 0.0;     ///< fitted phase, channel 1
    double alias_freq_norm = 0.0; ///< observed tone frequency, cycles/sample
    bool spectrum_inverted = false; ///< tone folded from an even zone edge
    double fit_residual_rms = 0.0;  ///< worse of the two channel residuals
};

/// Options for the sine-fit skew estimator.
struct jamal_options {
    double min_delay_s = 0.0;  ///< search range for ambiguity resolution
    double max_delay_s = 0.0;  ///< 0 = use half a carrier period
};

/// Estimate the inter-channel delay from a capture of a known RF sinusoid.
///
/// \param capture      BP-TIADC record of the pure test tone
/// \param tone_rf_hz   the known RF frequency of the tone
/// The phase ambiguity n/f_RF is resolved to the candidate inside
/// [min_delay, max_delay].
jamal_estimate estimate_skew_sine_fit(const adc::nonuniform_capture& capture,
                                      double tone_rf_hz,
                                      const jamal_options& opt = {});

} // namespace sdrbist::calib

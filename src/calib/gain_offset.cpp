#include "calib/gain_offset.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/stats.hpp"

namespace sdrbist::calib {

gain_offset_estimate
estimate_gain_offset(const adc::nonuniform_capture& capture) {
    SDRBIST_EXPECTS(capture.even.size() >= 16);
    SDRBIST_EXPECTS(capture.even.size() == capture.odd.size());

    gain_offset_estimate est;
    est.offset_even = mean(capture.even);
    est.offset_odd = mean(capture.odd);

    double p0 = 0.0, p1 = 0.0;
    for (std::size_t i = 0; i < capture.even.size(); ++i) {
        const double e = capture.even[i] - est.offset_even;
        const double o = capture.odd[i] - est.offset_odd;
        p0 += e * e;
        p1 += o * o;
    }
    SDRBIST_EXPECTS(p0 > 0.0);
    est.gain_ratio = std::sqrt(p1 / p0);
    return est;
}

adc::nonuniform_capture
apply_gain_offset_correction(adc::nonuniform_capture capture,
                             const gain_offset_estimate& estimate) {
    SDRBIST_EXPECTS(estimate.gain_ratio > 0.0);
    for (double& v : capture.even)
        v -= estimate.offset_even;
    for (double& v : capture.odd)
        v = (v - estimate.offset_odd) / estimate.gain_ratio;
    return capture;
}

} // namespace sdrbist::calib

#include "calib/lms.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace sdrbist::calib {

lms_skew_estimator::lms_skew_estimator(lms_options options)
    : options_(options) {
    SDRBIST_EXPECTS(options_.mu0 > 0.0);
    SDRBIST_EXPECTS(options_.max_iterations >= 2);
    SDRBIST_EXPECTS(options_.initial_probe_s > 0.0);
}

skew_estimate
lms_skew_estimator::estimate(const dual_rate_capture& capture, double d0,
                             std::span<const double> probe_times) const {
    const double m = max_search_delay(capture);
    SDRBIST_EXPECTS(d0 > 0.0 && d0 < m);

    // Keep hypotheses strictly inside the open interval and clear of the
    // kernel's instability at the end points.
    const double d_lo = 0.005 * m;
    const double d_hi = 0.995 * m;
    auto clamp_d = [&](double d) { return std::clamp(d, d_lo, d_hi); };

    skew_estimate result;
    auto cost = [&](double d) {
        ++result.cost_evaluations;
        return skew_cost(capture, d, probe_times, options_.recon);
    };

    // Two starting points for the first finite difference (paper eq. (10)
    // needs a previous iterate).
    double d_prev = clamp_d(d0);
    double eps_prev = cost(d_prev);
    double d_cur = clamp_d(d0 + options_.initial_probe_s);
    double eps_cur = cost(d_cur);
    if (eps_cur > eps_prev) { // keep the better point as "current"
        std::swap(d_prev, d_cur);
        std::swap(eps_prev, eps_cur);
    }
    result.trace.push_back({0, d_cur, eps_cur, options_.mu0});

    double mu = options_.mu0;
    bool converged = false;

    std::size_t it = 1;
    for (; it <= options_.max_iterations && !converged; ++it) {
        // Step 2: finite-difference gradient over successive iterates
        // (paper eq. (10)).
        double grad = d_cur != d_prev
                          ? (eps_cur - eps_prev) / (d_cur - d_prev)
                          : 0.0;

        // Steps 3-5: normalised (sign) update, halving µ while the cost
        // increases.  Eq. (10)'s secant slope points the wrong way once the
        // iterates straddle the minimum; after a few failed halvings we
        // refresh the gradient with a central difference around the current
        // iterate, which restores the correct descent direction.
        bool improved = false;
        double d_next = d_cur, eps_next = eps_cur;
        std::size_t halvings = 0;
        while (halvings <= options_.max_halvings) {
            const double direction = grad >= 0.0 ? 1.0 : -1.0;
            d_next = clamp_d(d_cur - mu * direction);
            eps_next = cost(d_next);
            if (eps_next <= eps_cur && d_next != d_cur) {
                improved = true;
                break;
            }
            mu /= 2.0; // step 5.1
            ++halvings;
            if (mu < options_.min_mu)
                break;
            if (halvings == 3) {
                // Gradient refresh: central difference with a span tied to
                // the current step size.
                const double delta = std::max(mu, 0.25 * options_.mu0);
                const double lo = clamp_d(d_cur - delta);
                const double hi = clamp_d(d_cur + delta);
                if (hi > lo)
                    grad = (cost(hi) - cost(lo)) / (hi - lo);
            }
        }

        if (!improved) {
            // µ collapsed in every direction: the iterate sits at the
            // minimum to within the cost noise floor.
            converged = true;
            result.trace.push_back({it, d_cur, eps_cur, mu});
            break;
        }

        // Step 6: expand the step after a successful move.
        mu *= 2.0;

        const double step_taken = std::abs(d_next - d_cur);
        d_prev = d_cur;
        eps_prev = eps_cur;
        d_cur = d_next;
        eps_cur = eps_next;
        result.trace.push_back({it, d_cur, eps_cur, mu});

        if (options_.cost_tolerance > 0.0 &&
            eps_cur < options_.cost_tolerance)
            converged = true;
        if (step_taken < options_.step_tolerance)
            converged = true; // progress below the resolution of interest
    }

    result.d_hat = d_cur;
    result.final_cost = eps_cur;
    result.iterations = std::min(it, options_.max_iterations);
    result.converged = converged;
    return result;
}

} // namespace sdrbist::calib

/// \file lms.hpp
/// \brief The paper's Algorithm 1: normalised, variable-step LMS descent of
///        the dual-rate cost with a finite-difference gradient.
///
/// "We have selected a normalized LMS algorithm to simplify the choice of µ,
/// with variable step size to speed up the convergence. The analytical
/// derivative is too complicated for efficient computation. We have chosen
/// to substitute it by a finite difference approximation."
#pragma once

#include <span>
#include <vector>

#include "calib/dual_rate.hpp"

namespace sdrbist::calib {

/// Algorithm parameters (paper defaults: µ0 = 1e-12, < 20 iterations
/// observed; nw = 60 i.e. 61 taps; N = 300 probes).
struct lms_options {
    double mu0 = 1e-12;            ///< initial step size, seconds
    std::size_t max_iterations = 40;
    double cost_tolerance = 0.0;   ///< stop when cost < tolerance (0 = off)
    double min_mu = 1e-16;         ///< stop when µ collapses below this
    double step_tolerance = 5e-14; ///< declare convergence once the accepted
                                   ///< step shrinks below this (0.05 ps)
    double initial_probe_s = 0.5e-12; ///< offset for the first finite
                                      ///< difference (needs two points)
    std::size_t max_halvings = 30; ///< step-5 retry bound per iteration
    sampling::pnbs_options recon{};///< reconstruction filter (61 taps)
};

/// One row of the convergence trace (drives paper Fig. 6).
struct lms_trace_point {
    std::size_t iteration = 0;
    double d_hat = 0.0;
    double cost = 0.0;
    double mu = 0.0;
};

/// Estimation outcome.
struct skew_estimate {
    double d_hat = 0.0;        ///< final estimate D̂
    double final_cost = 0.0;
    std::size_t iterations = 0;
    bool converged = false;    ///< stopped on µ collapse / cost tolerance
    std::vector<lms_trace_point> trace;
    std::size_t cost_evaluations = 0; ///< total cost-function calls
};

/// LMS-based time-skew estimator (paper Algorithm 1).
class lms_skew_estimator {
public:
    explicit lms_skew_estimator(lms_options options = {});

    /// Run the adaptive estimation from initial guess d0.
    /// The search is confined to ]0, m[ with m = max_search_delay(capture);
    /// d0 must lie inside.
    [[nodiscard]] skew_estimate
    estimate(const dual_rate_capture& capture, double d0,
             std::span<const double> probe_times) const;

    [[nodiscard]] const lms_options& options() const { return options_; }

private:
    lms_options options_;
};

} // namespace sdrbist::calib

/// \file gain_offset.hpp
/// \brief Background gain/offset mismatch calibration for the two TIADC
///        channels (paper §III: "The offset and the gain error calibrations
///        are relatively simple to implement [16]").
///
/// Both channels observe the same repeatable zero-mean bandpass stimulus,
/// so channel offsets are record means and the gain ratio is the ratio of
/// the AC RMS values (Fu et al. 1998 reduced to the offline BIST setting).
#pragma once

#include "adc/tiadc.hpp"

namespace sdrbist::calib {

/// Estimated channel mismatches.
struct gain_offset_estimate {
    double offset_even = 0.0; ///< channel-0 offset
    double offset_odd = 0.0;  ///< channel-1 offset
    double gain_ratio = 1.0;  ///< channel-1 gain relative to channel 0
};

/// Estimate offsets and relative gain from one capture.
gain_offset_estimate
estimate_gain_offset(const adc::nonuniform_capture& capture);

/// Return a corrected copy: offsets removed, channel 1 divided by the
/// gain ratio.
adc::nonuniform_capture
apply_gain_offset_correction(adc::nonuniform_capture capture,
                             const gain_offset_estimate& estimate);

} // namespace sdrbist::calib

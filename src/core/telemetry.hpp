/// \file telemetry.hpp
/// \brief Cross-layer telemetry: scoped trace spans, monotonic counters,
///        per-category aggregates and a Chrome trace-event export.
///
/// The five-stage BIST pipeline, the campaign stage pool, the scenario
/// cache and the task scheduler all do their work behind abstraction
/// boundaries that make wall-time invisible from the outside.  This layer
/// makes them observable without perturbing them:
///
///  * `scoped_span` — an RAII timer.  On destruction it folds its duration
///    into the per-category aggregate (count/total/max ns) and, when
///    tracing, appends one event (name, category, thread, start, duration)
///    to a per-thread buffer.  Nested spans on one thread nest in the
///    trace, which is what chrome://tracing / Perfetto render as a flame
///    graph.
///  * `count()` / `count_max()` — named monotonic counters (cache hits,
///    stage-pool adopts, pool queue high-water, ...).
///  * Sinks: `snapshot()`/`since()` return the aggregate summary (the
///    campaign runner attaches a per-run window of it to
///    `campaign_result`, and `merge_results` sums it across shards);
///    `chrome_trace_json()` renders every buffered event as a Chrome
///    trace-event JSON document (`campaign_runner --trace-out`).
///
/// Contracts:
///  * **Off by default, near-zero overhead off.**  Every probe guards on
///    one relaxed atomic load; a `scoped_span` constructed while telemetry
///    is disabled never reads the clock.
///  * **Never perturbs results.**  Probes only read the steady clock and
///    bump atomics — reports are bit-identical with telemetry on or off,
///    at any thread count (locked down by tests/campaign).
///  * **Deterministic aggregation.**  `summary::merge_from` is the
///    additive combine `merge_results()` uses: counts and totals sum,
///    maxima take the max — sharded runs observe like unsharded ones.
///
/// Thread safety: everything here may be called concurrently.  Trace
/// buffers are thread-local (registered globally so they outlive their
/// thread); aggregates and counters are relaxed atomics.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sdrbist::telemetry {

/// Span categories: one aggregate slot and one Chrome-trace `cat` each.
/// The five pipeline stages come first, in `bist::stage` order, so
/// `category(stage_index(s))` is the stage's category.
enum class category : int {
    stage_stimulus = 0,    ///< pipeline stage 0 (bist/pipeline.cpp)
    stage_tx_capture,      ///< pipeline stage 1
    stage_calibration,     ///< pipeline stage 2
    stage_reconstruction,  ///< pipeline stage 3
    stage_grading,         ///< pipeline stage 4
    campaign,              ///< campaign plan/run (campaign/campaign.cpp)
    scenario,              ///< one grid scenario, end to end
    pool,                  ///< stage-pool waits on another worker's compute
    cache,                 ///< scenario-cache load/store (campaign/cache.cpp)
    shard,                 ///< shard file read/write/merge (shard_io.cpp)
    worker,                ///< scheduler task execution (task_scheduler.cpp)
    idle,                  ///< scheduler workers waiting for work
};
inline constexpr std::size_t category_count = 12;

/// Stable export name ("stage.stimulus", "pool", ...).
const char* to_string(category c);

/// Monotonic counters.  All process-wide; reset() zeroes them.
enum class counter : int {
    cache_hits = 0,       ///< scenario-cache hits (campaign run)
    cache_misses,         ///< scenario-cache misses
    stage_adopts,         ///< pooled stage results adopted (== reuse hits)
    stage_computes,       ///< pooled stage results computed once
    stage_waits,          ///< adoptions that blocked on another worker
    pool_tasks,           ///< thread-pool tasks executed
    pool_idle_ns,         ///< summed worker idle time (ns)
    pool_queue_high_water, ///< deepest task queue observed (max, not sum)
    simd_dispatches,      ///< kernel_backend::select() table dispatches
    scenario_retries,     ///< scenario attempts re-run after a transient
                          ///< failure (campaign retry loop)
    scenario_failures,    ///< scenario attempts that ended in an error
    scenario_gave_up,     ///< scenarios still failing after every retry
    sched_spawns,         ///< DAG nodes released by a completed dependency
                          ///< (deterministic: nodes minus roots)
    sched_steals,         ///< tasks stolen from another worker's deque
                          ///< (nondeterministic; 0 single-threaded)
    sched_adopt_fastpath, ///< pooled stage snapshots adopted without
                          ///< blocking (campaign DAG schedule)
    service_leases,       ///< campaign-service lease grants (incl. re-grants
                          ///< of re-queued leases)
    service_requeues,     ///< leases re-queued after a lapsed heartbeat or a
                          ///< dead worker connection
    service_heartbeats,   ///< heartbeats accepted on a live lease (rows
                          ///< streamed mid-lease count as beats too)
    store_hits,           ///< stage-artefact store entries adopted
    store_misses,         ///< stage-artefact store lookups that missed
    store_evictions,      ///< entries evicted by store GC (cache-gc)
    store_bytes,          ///< raw (uncompressed) bytes served by store
                          ///< hits (summed, not a count)
};
inline constexpr std::size_t counter_count = 22;

/// Stable export name ("cache.hits", "pool.queue_high_water", ...).
const char* to_string(counter c);

namespace detail {

/// Enable mask: bit 0 = collect (counters + aggregates), bit 1 = trace
/// (buffer events too).  One relaxed load of this word is the whole cost
/// of a probe while telemetry is off.
inline constexpr unsigned mode_collect = 1u;
inline constexpr unsigned mode_trace = 2u;
inline std::atomic<unsigned> g_mode{0};

/// Steady-clock now in nanoseconds.
std::int64_t now_ns();

/// Fold one finished span into the aggregates (and the trace buffer when
/// tracing).  `arg` is an optional user payload (`span_no_arg` = none).
void record_span(category cat, const char* name, std::uint64_t arg,
                 std::int64_t start_ns);

inline constexpr std::uint64_t span_no_arg = ~std::uint64_t{0};

} // namespace detail

/// True when telemetry is collecting (counters and aggregates).
inline bool active() {
    return (detail::g_mode.load(std::memory_order_relaxed) &
            detail::mode_collect) != 0;
}

/// True when trace events are being buffered as well.
inline bool tracing() {
    return (detail::g_mode.load(std::memory_order_relaxed) &
            detail::mode_trace) != 0;
}

/// Start collecting; with `capture_trace` also buffer trace events.
void enable(bool capture_trace = false);

/// Stop collecting (buffers and aggregates are kept for export).
void disable();

/// Zero every counter and aggregate and drop all buffered trace events.
/// Also restarts the trace epoch (timestamps are relative to it).
void reset();

/// Bump a counter by `add`.  No-op while telemetry is off.
void count(counter c, std::uint64_t add = 1);

/// Raise a high-water-mark counter to at least `value`.  No-op while off.
void count_max(counter c, std::uint64_t value);

/// Snapshot of every counter, indexed by `counter`.
std::array<std::uint64_t, counter_count> counters();

/// Aggregate of one category's spans.
struct category_stats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;

    [[nodiscard]] double mean_ns() const {
        return count == 0 ? 0.0
                          : static_cast<double>(total_ns) /
                                static_cast<double>(count);
    }
    bool operator==(const category_stats&) const = default;
};

/// Per-category aggregate summary — the sink `campaign_result` carries.
struct summary {
    std::array<category_stats, category_count> categories{};

    [[nodiscard]] const category_stats& of(category c) const {
        return categories[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] bool empty() const {
        for (const auto& s : categories)
            if (s.count != 0)
                return false;
        return true;
    }
    /// Additive combine (counts/totals sum, max of maxima) — the shard
    /// merge operation.  Deterministic and associative/commutative.
    void merge_from(const summary& other) {
        for (std::size_t i = 0; i < category_count; ++i) {
            categories[i].count += other.categories[i].count;
            categories[i].total_ns += other.categories[i].total_ns;
            if (other.categories[i].max_ns > categories[i].max_ns)
                categories[i].max_ns = other.categories[i].max_ns;
        }
    }
    bool operator==(const summary&) const = default;
};

/// Current aggregate state since enable()/reset().
summary snapshot();

/// Windowed summary: counts and totals since `baseline` (a prior
/// snapshot()).  `max_ns` cannot be windowed and is carried as the current
/// maximum since enable()/reset().
summary since(const summary& baseline);

/// Summary as CSV: `category,count,total_ns,mean_ns,max_ns`, one row per
/// category in declaration order.
std::string summary_csv(const summary& s);

/// RAII trace span.  Constructing while telemetry is off costs one
/// relaxed atomic load and arms nothing.
class scoped_span {
public:
    explicit scoped_span(category cat, const char* name,
                         std::uint64_t arg = detail::span_no_arg) noexcept {
        if ((detail::g_mode.load(std::memory_order_relaxed) &
             detail::mode_collect) == 0)
            return;
        cat_ = cat;
        name_ = name;
        arg_ = arg;
        start_ns_ = detail::now_ns();
        armed_ = true;
    }
    ~scoped_span() {
        if (armed_)
            detail::record_span(cat_, name_, arg_, start_ns_);
    }
    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;

private:
    category cat_{};
    const char* name_ = nullptr;
    std::uint64_t arg_ = 0;
    std::int64_t start_ns_ = 0;
    bool armed_ = false;
};

/// Label the calling thread in trace exports (Chrome `thread_name`
/// metadata).  No-op while telemetry is off.
void set_thread_name(const std::string& name);

/// Trace events buffered so far, across all threads.
std::size_t trace_event_count();

/// Render every buffered trace event as a Chrome trace-event JSON document
/// (the object form: `{"otherData":{...},"traceEvents":[...]}`), loadable
/// in chrome://tracing or https://ui.perfetto.dev.  Events are sorted by
/// start time; timestamps are microseconds since the trace epoch.
/// `metadata` key/value pairs land in `otherData` (build provenance).
std::string chrome_trace_json(
    const std::vector<std::pair<std::string, std::string>>& metadata = {});

/// Write chrome_trace_json() to `path`.  False when the file cannot be
/// written.
[[nodiscard]] bool write_chrome_trace(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& metadata = {});

} // namespace sdrbist::telemetry

/// \file math_util.hpp
/// \brief Small numeric helpers shared by the DSP and sampling modules.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist {

/// Normalised sinc: sinc(x) = sin(pi·x)/(pi·x), sinc(0) = 1.
inline double sinc(double x) {
    const double ax = std::abs(x);
    if (ax < 1e-8) {
        // 4th-order Taylor expansion around 0; error < 1e-32 for |x| < 1e-8.
        const double px = pi * x;
        return 1.0 - px * px / 6.0;
    }
    return std::sin(pi * x) / (pi * x);
}

/// Modified Bessel function of the first kind, order zero (series expansion).
/// Used by the Kaiser window.  Accurate to double precision for |x| <= 700.
inline double bessel_i0(double x) {
    const double half = x / 2.0;
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k < 1000; ++k) {
        term *= (half / k) * (half / k);
        sum += term;
        if (term < sum * std::numeric_limits<double>::epsilon())
            break;
    }
    return sum;
}

/// Bessel function of the first kind, order zero (alternating series).
/// Accurate to double precision for |x| <= ~15 (cancellation grows beyond);
/// callers here only need small arguments.  Hand-rolled because libc++
/// does not ship the C++17 special math functions (std::cyl_bessel_j).
inline double bessel_j0(double x) {
    const double half = x / 2.0;
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k < 1000; ++k) {
        term *= -(half / k) * (half / k);
        sum += term;
        if (std::abs(term) < std::abs(sum) * std::numeric_limits<double>::epsilon())
            break;
    }
    return sum;
}

/// True when |a - b| <= atol + rtol·|b|.
inline bool approx_equal(double a, double b, double rtol = 1e-9,
                         double atol = 0.0) {
    return std::abs(a - b) <= atol + rtol * std::abs(b);
}

/// Smallest power of two >= n (n >= 1).
inline std::size_t next_pow2(std::size_t n) {
    SDRBIST_EXPECTS(n >= 1);
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/// True when n is a power of two (n >= 1).
inline bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

/// Ceiling of a real ratio with snapping: values within `tol` of an integer
/// are treated as that integer.  The Kohlenberg kernel index k = ceil(2·fl/B)
/// is computed from measured frequencies, so a bare std::ceil would be
/// unstable when 2·fl/B lands (up to rounding) on an integer.
inline long ceil_snapped(double x, double tol = 1e-9) {
    const double r = std::round(x);
    if (std::abs(x - r) <= tol * std::max(1.0, std::abs(x)))
        return static_cast<long>(r);
    return static_cast<long>(std::ceil(x));
}

/// Wrap a phase to (-pi, pi].
inline double wrap_phase(double phi) {
    phi = std::fmod(phi + pi, two_pi);
    if (phi <= 0.0)
        phi += two_pi;
    return phi - pi;
}

} // namespace sdrbist

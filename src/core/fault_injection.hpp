/// \file fault_injection.hpp
/// \brief Deterministic fault injection at the seams the campaign layer
///        already owns — the probe half of the failure-containment story.
///
/// The paper's BIST philosophy applies to the harness itself: a system
/// that claims to survive faults must be able to *inject* them on demand
/// and prove the containment machinery (scenario retry/backoff, the
/// crash-recovery journal, corrupt-input quarantine) actually engages.
/// This module is a registry of named injection sites threaded through
/// the production code paths:
///
///  * pipeline stage entry (`stage.*`, bist/pipeline.cpp)
///  * scenario-cache load/store (`cache.*`, campaign/cache.cpp)
///  * shard file read/write/merge (`shard.*`, campaign/shard_io.cpp)
///  * campaign scenario task dispatch (`pool.dispatch`, campaign.cpp)
///  * recovery-journal append (`journal.append`, campaign/journal.cpp)
///  * campaign-service protocol frames (`service.*`, campaign/service/)
///
/// Arming is explicit — programmatic `arm(spec)` or the
/// `SDRBIST_FAULT_SPEC` environment variable (read once at load) — and
/// every trigger decision is a pure function of (site, arrival ordinal,
/// spec), so a single-threaded run fires the exact same faults every
/// time.  Spec grammar (clauses separated by `;`):
///
///     clause  := site ':' action [':' trigger]
///     site    := "stage.stimulus" | ... | "pool.dispatch" | '*'
///     action  := "throw-transient" | "throw-contract"
///              | "corrupt-bytes" | "delay-ms=" <int>
///     trigger := "count=" <n>            fire on exactly the n-th arrival
///              | "every=" <n>            fire on every n-th arrival
///              | "p=" <float> ",seed=" <int>   seeded per-arrival Bernoulli
///
/// e.g. `SDRBIST_FAULT_SPEC='*:throw-transient:p=0.05,seed=7'` or
/// `cache.load:corrupt-bytes:count=2;stage.grading:delay-ms=40:every=3`.
/// Omitting the trigger fires on every arrival.
///
/// Contracts (same cost discipline as `core/telemetry`):
///  * **Off by default, one relaxed atomic load when disarmed.**  `fire()`
///    and `corrupt()` are inline fast paths that never touch the registry
///    while disarmed.
///  * `throw-transient` raises `transient_fault` (a `std::runtime_error`)
///    — the retryable class; `throw-contract` raises
///    `sdrbist::contract_violation` — deterministic, never retried.
///  * `corrupt-bytes` clauses only act through `corrupt()`, which write
///    sites call on their serialised payload; throw/delay clauses only
///    act through `fire()`.  A site that supports both calls `fire()`
///    first — `corrupt()` reuses the arrival ordinal `fire()` counted.
///
/// Thread safety: arming/disarming and firing may race; triggers read an
/// immutable installed spec and per-site atomic arrival counters.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sdrbist::fault_injection {

/// Injection sites.  Stage sites come first, in `bist::stage` order.
enum class site : int {
    stage_stimulus = 0,   ///< pipeline stage 0 entry (bist/pipeline.cpp)
    stage_tx_capture,     ///< pipeline stage 1 entry
    stage_calibration,    ///< pipeline stage 2 entry
    stage_reconstruction, ///< pipeline stage 3 entry
    stage_grading,        ///< pipeline stage 4 entry
    cache_load,           ///< scenario-cache entry load (cache.cpp)
    cache_store,          ///< scenario-cache entry store (best-effort site)
    shard_read,           ///< shard result-file read (shard_io.cpp)
    shard_write,          ///< shard result-file write
    shard_merge,          ///< merge_results() entry (campaign.cpp)
    pool_dispatch,        ///< campaign scenario task entry — the pool
                          ///< hand-off boundary, inside retry containment
    journal_append,       ///< recovery-journal line append (journal.cpp)
    service_send,         ///< campaign-service frame send (service/protocol.cpp)
    service_recv,         ///< campaign-service frame receive
    store_load,           ///< stage-artefact store entry load
                          ///< (campaign/artefact_store/; corrupt-bytes
                          ///< garbles the just-read entry so read-side
                          ///< quarantine can be exercised)
    store_store,          ///< stage-artefact store entry publish
                          ///< (best-effort write site, corrupt-bytes capable)
};
inline constexpr std::size_t site_count = 16;

/// Stable spec/export name ("stage.stimulus", "pool.dispatch", ...).
const char* to_string(site s);

/// The retryable failure class every `throw-transient` clause raises.
/// Scenario retry treats any non-`contract_violation` `std::exception`
/// as transient; this type just makes injected ones recognisable.
class transient_fault : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

namespace detail {

/// One relaxed load of this word is the whole cost of a probe while
/// fault injection is disarmed.
inline std::atomic<unsigned> g_armed{0};

void fire_slow(site s);
bool corrupt_slow(site s, std::string& payload);

} // namespace detail

/// Arrival probe: count the arrival and apply any matching throw/delay
/// clause.  May throw `transient_fault` or `contract_violation`.
inline void fire(site s) {
    if (detail::g_armed.load(std::memory_order_relaxed) == 0)
        return;
    detail::fire_slow(s);
}

/// Payload probe for write sites: deterministically mangle `payload`
/// (truncate + tag) when a `corrupt-bytes` clause triggers.  Returns true
/// when the payload was corrupted.  Never throws; call after `fire()`.
inline bool corrupt(site s, std::string& payload) {
    if (detail::g_armed.load(std::memory_order_relaxed) == 0)
        return false;
    return detail::corrupt_slow(s, payload);
}

/// Parse `spec` (grammar above) and install it, replacing any previous
/// spec and zeroing all per-site counters.  An empty spec disarms.
/// Throws `contract_violation` on grammar errors.
void arm(const std::string& spec);

/// Arm from `SDRBIST_FAULT_SPEC` if set (also done once automatically at
/// process start).  Returns true when a spec was installed.
bool arm_from_env();

/// Remove every clause and zero all counters; probes return to the
/// one-relaxed-load fast path.
void disarm();

/// True while a spec is installed.
bool armed();

/// The currently installed spec text ("" while disarmed).
std::string current_spec();

/// Arrivals counted at `s` since the last arm()/disarm().
std::uint64_t arrivals(site s);

/// Clauses actually triggered at `s` (throws, delays and corruptions).
std::uint64_t fired(site s);

} // namespace sdrbist::fault_injection

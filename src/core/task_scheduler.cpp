/// \file task_scheduler.cpp
/// \brief Work-stealing DAG executor implementation.
///
/// Synchronisation layout (TSan-clean by design — every shared structure
/// is mutex-protected; atomics carry only counters and the dependency
/// arithmetic):
///  * one mutex per worker deque (owner pops back, thieves pop front);
///  * `pending[n]` dependency counters, decremented with acq_rel so a
///    successor's task observes everything its dependencies wrote;
///  * a sleep mutex + condition variable with a generation counter
///    (`signal`): a worker snapshots the generation *before* scanning for
///    work, so a push that lands mid-scan bumps the generation and the
///    miss path re-scans instead of sleeping through the wakeup.

#include "core/task_scheduler.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "core/telemetry.hpp"

namespace sdrbist {

namespace {

constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

} // namespace

std::size_t task_scheduler::default_thread_count_impl() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

task_scheduler::run_stats task_scheduler::run(task_graph graph) const {
    run_stats stats;
    const std::size_t n = graph.nodes_.size();
    if (n == 0)
        return stats;
    const std::size_t workers = std::min(threads_, n);

    struct run_state {
        run_state(std::vector<task_graph::node>& graph_nodes,
                  std::size_t node_count, std::size_t worker_count)
            : nodes(graph_nodes), pending(node_count), deques(worker_count),
              deque_mutex(worker_count) {}

        std::vector<task_graph::node>& nodes;
        std::vector<std::atomic<std::size_t>> pending;
        std::vector<std::deque<std::size_t>> deques;
        std::vector<std::mutex> deque_mutex;
        std::atomic<std::size_t> remaining{0};
        std::atomic<std::size_t> ready{0}; // queue-depth high-water input
        std::atomic<std::size_t> spawned{0};
        std::atomic<std::size_t> stolen{0};
        std::mutex sleep_mutex;
        std::condition_variable sleep_cv;
        std::uint64_t signal = 0; // wakeup generation, under sleep_mutex
        std::mutex error_mutex;
        std::exception_ptr error;
        std::size_t error_node = npos;
    };
    run_state st(graph.nodes_, n, workers);
    st.remaining.store(n, std::memory_order_relaxed);

    // Seed roots round-robin before any worker exists — no locks needed.
    std::size_t roots = 0;
    for (std::size_t i = 0; i < n; ++i) {
        st.pending[i].store(graph.nodes_[i].dependency_count,
                            std::memory_order_relaxed);
        if (graph.nodes_[i].dependency_count == 0)
            st.deques[roots++ % workers].push_back(i);
    }
    // Node 0 can have no dependencies, so every non-empty graph has a root.
    SDRBIST_EXPECTS(roots > 0);
    st.ready.store(roots, std::memory_order_relaxed);
    telemetry::count_max(telemetry::counter::pool_queue_high_water, roots);

    const auto record_error = [&st](std::size_t node) {
        const std::lock_guard<std::mutex> lock(st.error_mutex);
        if (node < st.error_node) {
            st.error_node = node;
            st.error = std::current_exception();
        }
    };

    const auto worker_loop = [&st, workers, &record_error](std::size_t w) {
        bool named = false;
        for (;;) {
            // Label lazily, not at thread start: telemetry is usually
            // enabled after the scheduler exists (CLI flag before run()).
            if (telemetry::active() && !named) {
                telemetry::set_thread_name("worker-" + std::to_string(w));
                named = true;
            }
            std::uint64_t seen = 0;
            {
                const std::lock_guard<std::mutex> lock(st.sleep_mutex);
                seen = st.signal;
            }
            std::size_t task = npos;
            bool stole = false;
            {
                // Own deque drains FIFO: a single worker runs tasks in
                // submission order (grid order for flat campaigns), which
                // keeps the 1-thread arrival order exact — fault-injection
                // tests and the retired pool's contract rely on it.
                const std::lock_guard<std::mutex> lock(st.deque_mutex[w]);
                if (!st.deques[w].empty()) {
                    task = st.deques[w].front();
                    st.deques[w].pop_front();
                }
            }
            for (std::size_t off = 1; task == npos && off < workers; ++off) {
                // Thieves take the victim's freshest task from the other
                // end, away from the owner's next pop.
                const std::size_t victim = (w + off) % workers;
                const std::lock_guard<std::mutex> lock(
                    st.deque_mutex[victim]);
                if (!st.deques[victim].empty()) {
                    task = st.deques[victim].back();
                    st.deques[victim].pop_back();
                    stole = true;
                }
            }
            if (task == npos) {
                std::unique_lock<std::mutex> lock(st.sleep_mutex);
                if (st.remaining.load(std::memory_order_acquire) == 0)
                    return;
                if (st.signal == seen) {
                    // Idle span: wait() releases the lock while blocked, so
                    // this measures genuine starvation, not contention.
                    const telemetry::scoped_span idle(
                        telemetry::category::idle, "sched.idle");
                    st.sleep_cv.wait(lock, [&st, seen] {
                        return st.signal != seen ||
                               st.remaining.load(
                                   std::memory_order_acquire) == 0;
                    });
                }
                continue;
            }
            st.ready.fetch_sub(1, std::memory_order_relaxed);
            if (stole) {
                st.stolen.fetch_add(1, std::memory_order_relaxed);
                telemetry::count(telemetry::counter::sched_steals);
            }
            telemetry::count(telemetry::counter::pool_tasks);
            {
                const telemetry::scoped_span span(telemetry::category::worker,
                                                  "sched.task", task);
                try {
                    st.nodes[task].fn();
                } catch (...) {
                    record_error(task);
                }
            }
            for (const std::size_t succ : st.nodes[task].successors) {
                if (st.pending[succ].fetch_sub(
                        1, std::memory_order_acq_rel) != 1)
                    continue;
                {
                    const std::lock_guard<std::mutex> lock(st.deque_mutex[w]);
                    st.deques[w].push_back(succ);
                }
                const std::size_t depth =
                    st.ready.fetch_add(1, std::memory_order_relaxed) + 1;
                telemetry::count_max(
                    telemetry::counter::pool_queue_high_water, depth);
                st.spawned.fetch_add(1, std::memory_order_relaxed);
                telemetry::count(telemetry::counter::sched_spawns);
                {
                    const std::lock_guard<std::mutex> lock(st.sleep_mutex);
                    ++st.signal;
                }
                st.sleep_cv.notify_one();
            }
            if (st.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                {
                    const std::lock_guard<std::mutex> lock(st.sleep_mutex);
                    ++st.signal;
                }
                st.sleep_cv.notify_all();
                return; // graph drained; sleepers wake and exit
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker_loop, w);
    for (auto& t : pool)
        t.join();

    stats.executed = n;
    stats.spawned = st.spawned.load(std::memory_order_relaxed);
    stats.stolen = st.stolen.load(std::memory_order_relaxed);
    if (st.error)
        std::rethrow_exception(st.error);
    return stats;
}

} // namespace sdrbist

/// \file hash.hpp
/// \brief Stable 64-bit content hashing (FNV-1a) for cache keys.
///
/// The campaign result cache keys on-disk artefacts by a hash of a
/// *canonical text serialisation* of the work description.  The hash must
/// therefore be stable across runs, processes, compilers and platforms —
/// which rules out std::hash (unspecified, salted on some standard
/// libraries).  FNV-1a over bytes is fully specified, trivially portable
/// and fast for the short keys we feed it.
///
/// Numeric inputs are hashed through their canonical *text* rendering
/// (see bist/config_canonical.hpp), never through raw object bytes, so
/// padding, endianness and struct layout can never leak into a key.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sdrbist {

/// Incremental FNV-1a 64-bit hasher.
///
///   fnv1a64 h;
///   h.update("campaign-cache-v1\n");
///   h.update(canonical_config_text);
///   const std::string key = h.hex();
class fnv1a64 {
public:
    static constexpr std::uint64_t offset_basis = 0xCBF29CE484222325ull;
    static constexpr std::uint64_t prime = 0x100000001B3ull;

    /// Absorb raw bytes.
    void update(std::string_view bytes) {
        for (const char c : bytes) {
            state_ ^= static_cast<unsigned char>(c);
            state_ *= prime;
        }
    }

    /// Current digest value.
    [[nodiscard]] std::uint64_t value() const { return state_; }

    /// Digest as a fixed-width 16-character lowercase hex string — the
    /// on-disk cache file stem.
    [[nodiscard]] std::string hex() const { return hex_digest(state_); }

    /// One-shot convenience.
    [[nodiscard]] static std::uint64_t hash(std::string_view bytes) {
        fnv1a64 h;
        h.update(bytes);
        return h.value();
    }

    /// Render any 64-bit digest as fixed-width lowercase hex.
    [[nodiscard]] static std::string hex_digest(std::uint64_t v) {
        static constexpr char digits[] = "0123456789abcdef";
        std::string out(16, '0');
        for (int i = 15; i >= 0; --i) {
            out[static_cast<std::size_t>(i)] = digits[v & 0xF];
            v >>= 4;
        }
        return out;
    }

private:
    std::uint64_t state_ = offset_basis;
};

} // namespace sdrbist

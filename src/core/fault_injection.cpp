#include "core/fault_injection.hpp"

#include "core/contracts.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace sdrbist::fault_injection {

const char* to_string(site s) {
    switch (s) {
    case site::stage_stimulus: return "stage.stimulus";
    case site::stage_tx_capture: return "stage.tx-capture";
    case site::stage_calibration: return "stage.calibration";
    case site::stage_reconstruction: return "stage.reconstruction";
    case site::stage_grading: return "stage.grading";
    case site::cache_load: return "cache.load";
    case site::cache_store: return "cache.store";
    case site::shard_read: return "shard.read";
    case site::shard_write: return "shard.write";
    case site::shard_merge: return "shard.merge";
    case site::pool_dispatch: return "pool.dispatch";
    case site::journal_append: return "journal.append";
    case site::service_send: return "service.send";
    case site::service_recv: return "service.recv";
    case site::store_load: return "store.load";
    case site::store_store: return "store.store";
    }
    return "unknown";
}

namespace {

enum class action_kind { throw_transient, throw_contract, corrupt_bytes, delay };
enum class trigger_kind { always, nth, every, probability };

struct clause {
    int site_index = -1; ///< -1 = matches every site
    action_kind action = action_kind::throw_transient;
    int delay_ms = 0;
    trigger_kind trigger = trigger_kind::always;
    std::uint64_t n = 0;
    double p = 0.0;
    std::uint64_t seed = 0;
};

struct registry {
    std::mutex mutex;              ///< guards clauses/spec install + scan
    std::vector<clause> clauses;
    std::string spec;
    std::array<std::atomic<std::uint64_t>, site_count> arrivals{};
    std::array<std::atomic<std::uint64_t>, site_count> fired{};
};

registry& reg() {
    static registry r;
    return r;
}

/// splitmix64 finaliser — the same bit mixer the campaign seed derivation
/// uses; enough avalanche to decorrelate (seed, site, ordinal) draws.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Deterministic Bernoulli draw for one (seeded clause, site, arrival).
bool bernoulli(const clause& c, std::size_t site_index,
               std::uint64_t ordinal) {
    const std::uint64_t x =
        mix64(c.seed ^ mix64(static_cast<std::uint64_t>(site_index) + 1) ^
              mix64(ordinal));
    const double u =
        static_cast<double>(x >> 11) * 0x1.0p-53; // uniform in [0, 1)
    return u < c.p;
}

bool triggered(const clause& c, std::size_t site_index,
               std::uint64_t ordinal) {
    switch (c.trigger) {
    case trigger_kind::always: return true;
    case trigger_kind::nth: return ordinal == c.n;
    case trigger_kind::every: return c.n != 0 && ordinal % c.n == 0;
    case trigger_kind::probability: return bernoulli(c, site_index, ordinal);
    }
    return false;
}

[[noreturn]] void bad_spec(const std::string& what, const std::string& text) {
    throw contract_violation("fault spec: " + what + " in `" + text + "`");
}

std::string trim(const std::string& s) {
    std::size_t b = s.find_first_not_of(" \t");
    std::size_t e = s.find_last_not_of(" \t");
    return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

int parse_site(const std::string& name, const std::string& text) {
    if (name == "*")
        return -1;
    for (std::size_t i = 0; i < site_count; ++i)
        if (name == to_string(static_cast<site>(i)))
            return static_cast<int>(i);
    bad_spec("unknown site `" + name + "`", text);
}

std::uint64_t parse_u64(const std::string& s, const std::string& text) {
    try {
        std::size_t pos = 0;
        const unsigned long long v = std::stoull(s, &pos);
        if (pos != s.size())
            bad_spec("trailing junk in number `" + s + "`", text);
        return v;
    } catch (const contract_violation&) {
        throw;
    } catch (const std::exception&) {
        bad_spec("bad number `" + s + "`", text);
    }
}

double parse_probability(const std::string& s, const std::string& text) {
    try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size() || v < 0.0 || v > 1.0)
            bad_spec("probability must be in [0, 1], got `" + s + "`", text);
        return v;
    } catch (const contract_violation&) {
        throw;
    } catch (const std::exception&) {
        bad_spec("bad probability `" + s + "`", text);
    }
}

void parse_trigger(clause& c, const std::string& trigger,
                   const std::string& text) {
    if (trigger.rfind("count=", 0) == 0) {
        c.trigger = trigger_kind::nth;
        c.n = parse_u64(trigger.substr(6), text);
        if (c.n == 0)
            bad_spec("count must be >= 1", text);
    } else if (trigger.rfind("every=", 0) == 0) {
        c.trigger = trigger_kind::every;
        c.n = parse_u64(trigger.substr(6), text);
        if (c.n == 0)
            bad_spec("every must be >= 1", text);
    } else if (trigger.rfind("p=", 0) == 0) {
        const std::vector<std::string> parts = split(trigger.substr(2), ',');
        if (parts.size() != 2 || parts[1].rfind("seed=", 0) != 0)
            bad_spec("probability trigger must be `p=<float>,seed=<int>`",
                     text);
        c.trigger = trigger_kind::probability;
        c.p = parse_probability(parts[0], text);
        c.seed = parse_u64(parts[1].substr(5), text);
    } else {
        bad_spec("unknown trigger `" + trigger + "`", text);
    }
}

clause parse_clause(const std::string& text) {
    const std::vector<std::string> parts = split(text, ':');
    if (parts.size() < 2 || parts.size() > 3)
        bad_spec("clause must be `site:action[:trigger]`", text);
    clause c;
    c.site_index = parse_site(trim(parts[0]), text);
    const std::string action = trim(parts[1]);
    if (action == "throw-transient") {
        c.action = action_kind::throw_transient;
    } else if (action == "throw-contract") {
        c.action = action_kind::throw_contract;
    } else if (action == "corrupt-bytes") {
        c.action = action_kind::corrupt_bytes;
    } else if (action.rfind("delay-ms=", 0) == 0) {
        c.action = action_kind::delay;
        c.delay_ms = static_cast<int>(parse_u64(action.substr(9), text));
    } else {
        bad_spec("unknown action `" + action + "`", text);
    }
    if (parts.size() == 3)
        parse_trigger(c, trim(parts[2]), text);
    return c;
}

void install(std::vector<clause> clauses, std::string spec) {
    registry& r = reg();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.clauses = std::move(clauses);
    r.spec = std::move(spec);
    for (auto& a : r.arrivals)
        a.store(0, std::memory_order_relaxed);
    for (auto& f : r.fired)
        f.store(0, std::memory_order_relaxed);
    detail::g_armed.store(r.clauses.empty() ? 0u : 1u,
                          std::memory_order_relaxed);
}

/// Read SDRBIST_FAULT_SPEC once at process start so any binary — tests,
/// CLI, benches — can be fault-armed from the environment alone.
[[maybe_unused]] const bool g_env_armed = [] {
    arm_from_env();
    return true;
}();

} // namespace

namespace detail {

void fire_slow(site s) {
    registry& r = reg();
    const auto idx = static_cast<std::size_t>(s);
    const std::uint64_t ordinal =
        r.arrivals[idx].fetch_add(1, std::memory_order_relaxed) + 1;
    int delay_ms = 0;
    bool throw_transient = false;
    bool throw_contract = false;
    {
        const std::lock_guard<std::mutex> lock(r.mutex);
        for (const clause& c : r.clauses) {
            if (c.action == action_kind::corrupt_bytes)
                continue;
            if (c.site_index >= 0 &&
                c.site_index != static_cast<int>(idx))
                continue;
            if (!triggered(c, idx, ordinal))
                continue;
            r.fired[idx].fetch_add(1, std::memory_order_relaxed);
            switch (c.action) {
            case action_kind::delay: delay_ms += c.delay_ms; break;
            case action_kind::throw_transient: throw_transient = true; break;
            case action_kind::throw_contract: throw_contract = true; break;
            case action_kind::corrupt_bytes: break;
            }
        }
    }
    if (delay_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    if (throw_contract)
        throw contract_violation(std::string("injected contract fault at ") +
                                 to_string(s));
    if (throw_transient)
        throw transient_fault(std::string("injected transient fault at ") +
                              to_string(s));
}

bool corrupt_slow(site s, std::string& payload) {
    registry& r = reg();
    const auto idx = static_cast<std::size_t>(s);
    // Reuse the ordinal fire() counted for this operation (sites call
    // fire() first); a site that never fires still gets ordinal >= 1.
    const std::uint64_t ordinal =
        std::max<std::uint64_t>(r.arrivals[idx].load(std::memory_order_relaxed),
                                1);
    bool corrupted = false;
    {
        const std::lock_guard<std::mutex> lock(r.mutex);
        for (const clause& c : r.clauses) {
            if (c.action != action_kind::corrupt_bytes)
                continue;
            if (c.site_index >= 0 &&
                c.site_index != static_cast<int>(idx))
                continue;
            if (!triggered(c, idx, ordinal))
                continue;
            r.fired[idx].fetch_add(1, std::memory_order_relaxed);
            corrupted = true;
        }
    }
    if (corrupted) {
        // Deterministic mangle: drop the tail (a torn write) and append
        // bytes no serialiser here emits, so parsers reliably reject it.
        payload.resize(payload.size() / 2);
        payload += "\x01!injected-corruption";
    }
    return corrupted;
}

} // namespace detail

void arm(const std::string& spec) {
    std::vector<clause> clauses;
    for (const std::string& raw : split(spec, ';')) {
        const std::string text = trim(raw);
        if (text.empty())
            continue;
        clauses.push_back(parse_clause(text));
    }
    install(std::move(clauses), spec);
}

bool arm_from_env() {
    const char* spec = std::getenv("SDRBIST_FAULT_SPEC");
    if (spec == nullptr || *spec == '\0')
        return false;
    arm(spec);
    return armed();
}

void disarm() { install({}, std::string()); }

bool armed() {
    return detail::g_armed.load(std::memory_order_relaxed) != 0;
}

std::string current_spec() {
    registry& r = reg();
    const std::lock_guard<std::mutex> lock(r.mutex);
    return r.spec;
}

std::uint64_t arrivals(site s) {
    return reg()
        .arrivals[static_cast<std::size_t>(s)]
        .load(std::memory_order_relaxed);
}

std::uint64_t fired(site s) {
    return reg()
        .fired[static_cast<std::size_t>(s)]
        .load(std::memory_order_relaxed);
}

} // namespace sdrbist::fault_injection

/// \file task_scheduler.hpp
/// \brief Task-graph executor with per-worker deques and work stealing.
///
/// The campaign subsystem plans a scenario grid as a dependency DAG: pooled
/// stage owners (one node per distinct stage digest) run topologically
/// first, and co-consumer scenarios *adopt* the completed snapshot instead
/// of blocking on a `shared_future` — the adoption wait that limited the
/// retired fixed-queue `thread_pool` to ~1× scaling on pooled grids.
///
/// Execution model:
///  * `task_graph` collects nullary tasks plus their dependency edges.  A
///    task may only depend on tasks that already exist, so every graph is
///    acyclic by construction.
///  * `task_scheduler::run()` seeds dependency-free nodes round-robin over
///    per-worker deques.  A worker drains its own deque FIFO — a single
///    worker therefore runs tasks in submission order, keeping 1-thread
///    arrival order exact (fault-injection triggers rely on it) — and
///    steals from the other end of a victim's deque, away from the
///    owner's next pop.
///  * Completing a node decrements each successor's pending-dependency
///    count; the worker that performs the last decrement pushes the
///    successor onto its own deque ("spawn") and wakes one sleeper.
///
/// Contracts (shared with the retired pool, relied on by campaign/):
///  * Every node runs exactly once, even when other nodes throw — failures
///    never cancel successors, so caller-owned result slots stay
///    well-defined.  After the graph drains, the exception of the
///    lowest-id failed node is rethrown.
///  * Tasks are pure functions of their inputs writing disjoint slots, so
///    scheduling order never affects results: any thread count (including
///    1) produces bit-identical outputs by construction.
///
/// Telemetry: task/idle spans (`sched.task`/`sched.idle`), `pool.tasks`
/// and `pool.queue_high_water` counters (names kept stable across the
/// executor swap), plus `sched.spawns` (dependency-released nodes —
/// deterministic: nodes minus roots) and `sched.steals` (nondeterministic;
/// always 0 single-threaded).
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "core/contracts.hpp"

namespace sdrbist {

/// Dependency DAG of nullary tasks, acyclic by construction: a node may
/// only name already-added nodes as dependencies.
class task_graph {
public:
    /// Add a dependency-free task (a root). Returns its node id.
    std::size_t add(std::function<void()> fn) { return add(std::move(fn), {}); }

    /// Add a task that runs only after every id in `dependencies`.
    std::size_t add(std::function<void()> fn,
                    const std::vector<std::size_t>& dependencies) {
        SDRBIST_EXPECTS(static_cast<bool>(fn));
        const std::size_t id = nodes_.size();
        for (const std::size_t dep : dependencies) {
            SDRBIST_EXPECTS(dep < id);
            nodes_[dep].successors.push_back(id);
        }
        nodes_.push_back(node{std::move(fn), {}, dependencies.size()});
        return id;
    }

    [[nodiscard]] std::size_t size() const { return nodes_.size(); }

private:
    friend class task_scheduler;

    struct node {
        std::function<void()> fn;
        std::vector<std::size_t> successors;
        std::size_t dependency_count = 0;
    };
    std::vector<node> nodes_;
};

/// Work-stealing executor for `task_graph`s.  Stateless between runs:
/// `run()` spawns its workers, drains the graph, joins them, and returns.
class task_scheduler {
public:
    /// Per-run statistics (also mirrored into telemetry counters).
    struct run_stats {
        std::size_t executed = 0; ///< nodes run (always graph.size())
        std::size_t spawned = 0;  ///< nodes released by a completed
                                  ///< dependency (deterministic)
        std::size_t stolen = 0;   ///< tasks taken from another worker's
                                  ///< deque (nondeterministic; 0 at 1
                                  ///< thread)
    };

    /// \param threads  worker count; 0 selects default_thread_count().
    explicit task_scheduler(std::size_t threads = 0)
        : threads_(threads == 0 ? default_thread_count() : threads) {}

    /// Number of worker threads a run will spawn (capped by graph size).
    [[nodiscard]] std::size_t size() const { return threads_; }

    /// Hardware concurrency with a floor of one.
    [[nodiscard]] static std::size_t default_thread_count() {
        return default_thread_count_impl();
    }

    /// Drain `graph`: every node runs exactly once, dependencies first.
    /// Blocks until complete; rethrows the lowest-id node's exception, if
    /// any, after the whole graph has run.
    run_stats run(task_graph graph) const;

    /// Run body(0) ... body(n-1) as a flat dependency-free graph and block
    /// until all complete.  Rethrows the exception of the lowest-index
    /// failed iteration (every iteration still runs to completion first).
    template <typename Body>
    run_stats parallel_for(std::size_t n, Body&& body) const {
        task_graph graph;
        for (std::size_t i = 0; i < n; ++i)
            graph.add([&body, i] { body(i); });
        return run(std::move(graph));
    }

private:
    static std::size_t default_thread_count_impl();

    std::size_t threads_;
};

} // namespace sdrbist

#include "core/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>

namespace sdrbist::telemetry {

namespace {

// ---------------------------------------------------------------------------
// Global state: counters, per-category aggregates, per-thread trace buffers.
//
// Everything lives in function-local statics so any static-initialisation-
// order interaction with instrumented code (thread pools constructed from
// other globals) is defined.
// ---------------------------------------------------------------------------

struct atomic_stats {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
};

std::array<atomic_stats, category_count>& aggregates() {
    static std::array<atomic_stats, category_count> a;
    return a;
}

std::array<std::atomic<std::uint64_t>, counter_count>& counter_slots() {
    static std::array<std::atomic<std::uint64_t>, counter_count> c{};
    return c;
}

/// Relaxed max: CAS loop, load-first so the common already-higher case is
/// one read.
void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while (seen < value &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
}

/// One buffered trace event.  `name` is always a string literal at the
/// call sites, so storing the pointer is safe and allocation-free.
struct trace_event {
    const char* name;
    category cat;
    std::uint64_t arg;
    std::uint32_t tid;
    std::int64_t start_ns;
    std::int64_t dur_ns;
};

/// Per-thread event buffer.  Held by shared_ptr in the registry so the
/// events survive thread exit (pool workers die before export).
struct thread_buffer {
    std::mutex mutex; ///< guards events/name against concurrent export
    std::uint32_t tid = 0;
    std::string name;
    std::vector<trace_event> events;
};

struct buffer_registry {
    std::mutex mutex;
    std::vector<std::shared_ptr<thread_buffer>> buffers;
    std::uint32_t next_tid = 1; // 0 is reserved for the process row
};

buffer_registry& registry() {
    static buffer_registry r;
    return r;
}

thread_buffer& local_buffer() {
    thread_local std::shared_ptr<thread_buffer> buf = [] {
        auto b = std::make_shared<thread_buffer>();
        buffer_registry& r = registry();
        const std::lock_guard<std::mutex> lock(r.mutex);
        b->tid = r.next_tid++;
        r.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

/// Trace epoch: timestamps export relative to this, so traces start near
/// t=0 regardless of process uptime.  Set on first enable() and on
/// reset().
std::atomic<std::int64_t>& epoch_ns() {
    static std::atomic<std::int64_t> e{0};
    return e;
}

/// Fixed-point nanoseconds → "123.456" microseconds (3 decimals).
/// Deterministic (no double formatting) and what Chrome's `ts` expects.
std::string format_us(std::int64_t ns) {
    if (ns < 0)
        ns = 0;
    std::string out = std::to_string(ns / 1000);
    const auto frac = static_cast<unsigned>(ns % 1000);
    out += '.';
    out += static_cast<char>('0' + frac / 100);
    out += static_cast<char>('0' + (frac / 10) % 10);
    out += static_cast<char>('0' + frac % 10);
    return out;
}

/// Minimal JSON string escaping for trace names/metadata.  Local on
/// purpose: core cannot depend on the campaign exporter's json_quote.
std::string quote(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char* hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
                out += hex[static_cast<unsigned char>(c) & 0xF];
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace

const char* to_string(category c) {
    switch (c) {
    case category::stage_stimulus: return "stage.stimulus";
    case category::stage_tx_capture: return "stage.tx-capture";
    case category::stage_calibration: return "stage.calibration";
    case category::stage_reconstruction: return "stage.reconstruction";
    case category::stage_grading: return "stage.grading";
    case category::campaign: return "campaign";
    case category::scenario: return "scenario";
    case category::pool: return "pool";
    case category::cache: return "cache";
    case category::shard: return "shard";
    case category::worker: return "worker";
    case category::idle: return "idle";
    }
    return "unknown";
}

const char* to_string(counter c) {
    switch (c) {
    case counter::cache_hits: return "cache.hits";
    case counter::cache_misses: return "cache.misses";
    case counter::stage_adopts: return "stage.adopts";
    case counter::stage_computes: return "stage.computes";
    case counter::stage_waits: return "stage.waits";
    case counter::pool_tasks: return "pool.tasks";
    case counter::pool_idle_ns: return "pool.idle_ns";
    case counter::pool_queue_high_water: return "pool.queue_high_water";
    case counter::simd_dispatches: return "simd.dispatches";
    case counter::scenario_retries: return "scenario.retries";
    case counter::scenario_failures: return "scenario.failures";
    case counter::scenario_gave_up: return "scenario.gave_up";
    case counter::sched_spawns: return "sched.spawns";
    case counter::sched_steals: return "sched.steals";
    case counter::sched_adopt_fastpath: return "sched.adopt_fastpath";
    case counter::service_leases: return "service.leases";
    case counter::service_requeues: return "service.requeues";
    case counter::service_heartbeats: return "service.heartbeats";
    case counter::store_hits: return "store.hits";
    case counter::store_misses: return "store.misses";
    case counter::store_evictions: return "store.evictions";
    case counter::store_bytes: return "store.bytes";
    }
    return "unknown";
}

namespace detail {

std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void record_span(category cat, const char* name, std::uint64_t arg,
                 std::int64_t start_ns) {
    const std::int64_t end_ns = now_ns();
    const auto dur =
        static_cast<std::uint64_t>(end_ns > start_ns ? end_ns - start_ns : 0);

    atomic_stats& agg = aggregates()[static_cast<std::size_t>(cat)];
    agg.count.fetch_add(1, std::memory_order_relaxed);
    agg.total_ns.fetch_add(dur, std::memory_order_relaxed);
    atomic_max(agg.max_ns, dur);

    // Worker idle time doubles as a counter (the scheduler work reads it
    // without walking the summary).
    if (cat == category::idle)
        counter_slots()[static_cast<std::size_t>(counter::pool_idle_ns)]
            .fetch_add(dur, std::memory_order_relaxed);

    if ((g_mode.load(std::memory_order_relaxed) & mode_trace) == 0)
        return;
    thread_buffer& buf = local_buffer();
    const std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back({name, cat, arg, buf.tid, start_ns,
                          static_cast<std::int64_t>(dur)});
}

} // namespace detail

void enable(bool capture_trace) {
    // Epoch first: a probe that sees the mode must see the epoch too (it
    // only matters at export time, but keep the ordering obvious).
    std::int64_t expected = 0;
    epoch_ns().compare_exchange_strong(expected, detail::now_ns());
    detail::g_mode.store(detail::mode_collect |
                             (capture_trace ? detail::mode_trace : 0u),
                         std::memory_order_relaxed);
}

void disable() { detail::g_mode.store(0, std::memory_order_relaxed); }

void reset() {
    for (auto& agg : aggregates()) {
        agg.count.store(0, std::memory_order_relaxed);
        agg.total_ns.store(0, std::memory_order_relaxed);
        agg.max_ns.store(0, std::memory_order_relaxed);
    }
    for (auto& c : counter_slots())
        c.store(0, std::memory_order_relaxed);
    buffer_registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    for (auto& buf : r.buffers) {
        const std::lock_guard<std::mutex> buf_lock(buf->mutex);
        buf->events.clear();
    }
    epoch_ns().store(detail::now_ns(), std::memory_order_relaxed);
}

void count(counter c, std::uint64_t add) {
    if (!active())
        return;
    counter_slots()[static_cast<std::size_t>(c)].fetch_add(
        add, std::memory_order_relaxed);
}

void count_max(counter c, std::uint64_t value) {
    if (!active())
        return;
    atomic_max(counter_slots()[static_cast<std::size_t>(c)], value);
}

std::array<std::uint64_t, counter_count> counters() {
    std::array<std::uint64_t, counter_count> out{};
    for (std::size_t i = 0; i < counter_count; ++i)
        out[i] = counter_slots()[i].load(std::memory_order_relaxed);
    return out;
}

summary snapshot() {
    summary out;
    for (std::size_t i = 0; i < category_count; ++i) {
        const atomic_stats& agg = aggregates()[i];
        out.categories[i].count = agg.count.load(std::memory_order_relaxed);
        out.categories[i].total_ns =
            agg.total_ns.load(std::memory_order_relaxed);
        out.categories[i].max_ns = agg.max_ns.load(std::memory_order_relaxed);
    }
    return out;
}

summary since(const summary& baseline) {
    summary now = snapshot();
    for (std::size_t i = 0; i < category_count; ++i) {
        now.categories[i].count -= baseline.categories[i].count;
        now.categories[i].total_ns -= baseline.categories[i].total_ns;
        // max_ns stays the running maximum: maxima are not subtractable.
    }
    return now;
}

std::string summary_csv(const summary& s) {
    std::string out = "category,count,total_ns,mean_ns,max_ns\n";
    for (std::size_t i = 0; i < category_count; ++i) {
        const category_stats& c = s.categories[i];
        out += to_string(static_cast<category>(i));
        out += ',';
        out += std::to_string(c.count);
        out += ',';
        out += std::to_string(c.total_ns);
        out += ',';
        out += std::to_string(
            static_cast<std::uint64_t>(c.mean_ns() + 0.5));
        out += ',';
        out += std::to_string(c.max_ns);
        out += '\n';
    }
    return out;
}

void set_thread_name(const std::string& name) {
    if (!active())
        return;
    thread_buffer& buf = local_buffer();
    const std::lock_guard<std::mutex> lock(buf.mutex);
    buf.name = name;
}

std::size_t trace_event_count() {
    buffer_registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    std::size_t n = 0;
    for (const auto& buf : r.buffers) {
        const std::lock_guard<std::mutex> buf_lock(buf->mutex);
        n += buf->events.size();
    }
    return n;
}

std::string chrome_trace_json(
    const std::vector<std::pair<std::string, std::string>>& metadata) {
    // Snapshot every buffer under its lock, then render lock-free.
    std::vector<trace_event> events;
    std::vector<std::pair<std::uint32_t, std::string>> thread_names;
    {
        buffer_registry& r = registry();
        const std::lock_guard<std::mutex> lock(r.mutex);
        for (const auto& buf : r.buffers) {
            const std::lock_guard<std::mutex> buf_lock(buf->mutex);
            events.insert(events.end(), buf->events.begin(),
                          buf->events.end());
            if (!buf->name.empty())
                thread_names.emplace_back(buf->tid, buf->name);
        }
    }
    const std::int64_t epoch = epoch_ns().load(std::memory_order_relaxed);
    std::sort(events.begin(), events.end(),
              [](const trace_event& a, const trace_event& b) {
                  return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                  : a.tid < b.tid;
              });
    std::sort(thread_names.begin(), thread_names.end());

    std::string out = "{\"otherData\":{";
    for (std::size_t i = 0; i < metadata.size(); ++i) {
        if (i)
            out += ',';
        out += quote(metadata[i].first);
        out += ':';
        out += quote(metadata[i].second);
    }
    out += "},\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
           "\"args\":{\"name\":\"sdrbist\"}}";
    for (const auto& [tid, name] : thread_names) {
        out += ",{\"ph\":\"M\",\"pid\":1,\"tid\":";
        out += std::to_string(tid);
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
        out += quote(name);
        out += "}}";
    }
    for (const trace_event& e : events) {
        out += ",{\"name\":";
        out += quote(e.name);
        out += ",\"cat\":";
        out += quote(to_string(e.cat));
        out += ",\"ph\":\"X\",\"ts\":";
        out += format_us(e.start_ns - epoch);
        out += ",\"dur\":";
        out += format_us(e.dur_ns);
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(e.tid);
        if (e.arg != detail::span_no_arg) {
            out += ",\"args\":{\"arg\":";
            out += std::to_string(e.arg);
            out += '}';
        }
        out += '}';
    }
    out += "]}";
    return out;
}

bool write_chrome_trace(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.good())
        return false;
    out << chrome_trace_json(metadata) << '\n';
    out.flush();
    return out.good();
}

} // namespace sdrbist::telemetry

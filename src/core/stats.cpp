#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace sdrbist {

double mean(std::span<const double> x) {
    SDRBIST_EXPECTS(!x.empty());
    double s = 0.0;
    for (double v : x)
        s += v;
    return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
    SDRBIST_EXPECTS(x.size() >= 2);
    const double m = mean(x);
    double s = 0.0;
    for (double v : x)
        s += (v - m) * (v - m);
    return s / static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double rms(std::span<const double> x) {
    SDRBIST_EXPECTS(!x.empty());
    double s = 0.0;
    for (double v : x)
        s += v * v;
    return std::sqrt(s / static_cast<double>(x.size()));
}

double max_abs(std::span<const double> x) {
    double m = 0.0;
    for (double v : x)
        m = std::max(m, std::abs(v));
    return m;
}

double mean_squared_error(std::span<const double> a,
                          std::span<const double> b) {
    SDRBIST_EXPECTS(!a.empty());
    SDRBIST_EXPECTS(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += (a[i] - b[i]) * (a[i] - b[i]);
    return s / static_cast<double>(a.size());
}

double relative_rms_error(std::span<const double> ref,
                          std::span<const double> est) {
    SDRBIST_EXPECTS(!ref.empty());
    SDRBIST_EXPECTS(ref.size() == est.size());
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        num += (est[i] - ref[i]) * (est[i] - ref[i]);
        den += ref[i] * ref[i];
    }
    SDRBIST_EXPECTS(den > 0.0);
    return std::sqrt(num / den);
}

double percentile(std::span<const double> x, double p) {
    SDRBIST_EXPECTS(!x.empty());
    SDRBIST_EXPECTS(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted(x.begin(), x.end());
    std::sort(sorted.begin(), sorted.end());
    const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // namespace sdrbist

/// \file interval.hpp
/// \brief Closed real interval, used for alias-free sampling-rate windows.
#pragma once

#include <algorithm>
#include <vector>

namespace sdrbist {

/// Closed interval [lo, hi].  Empty when hi < lo.
struct interval {
    double lo = 0.0;
    double hi = -1.0;

    [[nodiscard]] bool empty() const { return hi < lo; }
    [[nodiscard]] double width() const { return empty() ? 0.0 : hi - lo; }
    [[nodiscard]] bool contains(double x) const { return !empty() && lo <= x && x <= hi; }

    /// Intersection with another interval (possibly empty).
    [[nodiscard]] interval intersect(const interval& o) const {
        return {std::max(lo, o.lo), std::min(hi, o.hi)};
    }

    friend bool operator==(const interval& a, const interval& b) = default;
};

/// Sort intervals by lower edge and merge overlapping/adjacent ones.
/// Empty intervals are dropped.
inline std::vector<interval> merge_intervals(std::vector<interval> v,
                                             double adjacency_tol = 0.0) {
    std::erase_if(v, [](const interval& i) { return i.empty(); });
    std::sort(v.begin(), v.end(),
              [](const interval& a, const interval& b) { return a.lo < b.lo; });
    std::vector<interval> out;
    for (const interval& i : v) {
        if (!out.empty() && i.lo <= out.back().hi + adjacency_tol)
            out.back().hi = std::max(out.back().hi, i.hi);
        else
            out.push_back(i);
    }
    return out;
}

} // namespace sdrbist

#include "core/random.hpp"

#include "core/contracts.hpp"

namespace sdrbist {

double rng::gaussian(double mean, double sigma) {
    SDRBIST_EXPECTS(sigma >= 0.0);
    std::normal_distribution<double> dist(mean, sigma);
    return sigma == 0.0 ? mean : dist(engine_);
}

double rng::uniform(double lo, double hi) {
    SDRBIST_EXPECTS(lo <= hi);
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

int rng::uniform_int(int lo, int hi) {
    SDRBIST_EXPECTS(lo <= hi);
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

std::vector<double> rng::gaussian_vector(std::size_t n, double mean,
                                         double sigma) {
    std::vector<double> out(n);
    for (double& x : out)
        x = gaussian(mean, sigma);
    return out;
}

std::vector<double> rng::uniform_vector(std::size_t n, double lo, double hi) {
    std::vector<double> out(n);
    for (double& x : out)
        x = uniform(lo, hi);
    return out;
}

} // namespace sdrbist

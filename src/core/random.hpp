/// \file random.hpp
/// \brief Deterministic, seedable random number generation.
///
/// Every stochastic model in the library (jitter, noise, data sources) takes
/// an explicit `rng` (or a seed) so that simulations are reproducible and
/// tests are deterministic.  No global RNG state exists anywhere (Core
/// Guidelines I.2).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace sdrbist {

/// Seedable pseudo-random generator wrapping std::mt19937_64.
class rng {
public:
    /// Construct from a 64-bit seed.  Identical seeds yield identical streams.
    explicit rng(std::uint64_t seed) : engine_(seed) {}

    /// One sample from N(mean, sigma^2).
    double gaussian(double mean = 0.0, double sigma = 1.0);

    /// One sample from U[lo, hi).
    double uniform(double lo = 0.0, double hi = 1.0);

    /// One integer sample from U{lo, ..., hi} (inclusive).
    int uniform_int(int lo, int hi);

    /// One raw 64-bit draw (e.g. to derive independent child seeds).
    std::uint64_t next_u64() { return engine_(); }

    /// Derive an independent child generator (stable: consumes one draw).
    rng fork() { return rng(next_u64()); }

    /// n i.i.d. samples from N(mean, sigma^2).
    std::vector<double> gaussian_vector(std::size_t n, double mean = 0.0,
                                        double sigma = 1.0);

    /// n i.i.d. samples from U[lo, hi).
    std::vector<double> uniform_vector(std::size_t n, double lo = 0.0,
                                       double hi = 1.0);

    /// Access the underlying engine (for std distributions).
    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

} // namespace sdrbist

/// \file thread_pool.hpp
/// \brief Fixed-size worker pool for embarrassingly parallel job grids.
///
/// The campaign subsystem fans a scenario grid out over this pool.  Jobs
/// are pure functions of their inputs and write to disjoint result slots,
/// so scheduling order never affects results — determinism is preserved by
/// construction, not by serialising execution (see campaign/campaign.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/contracts.hpp"
#include "core/telemetry.hpp"

namespace sdrbist {

/// Fixed pool of worker threads draining a shared FIFO task queue.
class thread_pool {
public:
    /// \param threads  worker count; 0 selects default_thread_count().
    explicit thread_pool(std::size_t threads = 0) {
        if (threads == 0)
            threads = default_thread_count();
        workers_.reserve(threads);
        for (std::size_t i = 0; i < threads; ++i)
            workers_.emplace_back([this, i] { worker_loop(i); });
    }

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    ~thread_pool() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_)
            w.join();
    }

    /// Number of worker threads.
    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Hardware concurrency with a floor of one.
    [[nodiscard]] static std::size_t default_thread_count() {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<std::size_t>(hw);
    }

    /// Enqueue a nullary callable; the future carries its result (or the
    /// exception it threw).
    template <typename F>
    std::future<std::invoke_result_t<std::decay_t<F>>> submit(F&& f) {
        using result_t = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<result_t()>>(
            std::forward<F>(f));
        std::future<result_t> future = task->get_future();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            SDRBIST_EXPECTS(!stopping_);
            queue_.emplace_back([task] { (*task)(); });
            telemetry::count_max(telemetry::counter::pool_queue_high_water,
                                 queue_.size());
        }
        cv_.notify_one();
        return future;
    }

private:
    void worker_loop(std::size_t worker_index) {
        bool named = false;
        for (;;) {
            // Label lazily, not at thread start: telemetry is usually
            // enabled after the pool exists (CLI flag before run()).
            if (telemetry::active() && !named) {
                telemetry::set_thread_name("worker-" +
                                           std::to_string(worker_index));
                named = true;
            }
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                {
                    // Idle span: cv_.wait releases the lock while blocked,
                    // so this measures genuine starvation, not contention.
                    const telemetry::scoped_span idle(
                        telemetry::category::idle, "pool.idle");
                    cv_.wait(lock,
                             [this] { return stopping_ || !queue_.empty(); });
                }
                if (queue_.empty())
                    return; // stopping and drained
                job = std::move(queue_.front());
                queue_.pop_front();
            }
            telemetry::count(telemetry::counter::pool_tasks);
            const telemetry::scoped_span task(telemetry::category::worker,
                                              "pool.task");
            job(); // packaged_task captures exceptions into the future
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/// Run body(0) ... body(n-1) on the pool and block until all complete.
/// Rethrows the exception of the lowest-index failed iteration (every
/// iteration still runs to completion first, so partial results in
/// caller-owned slots stay well-defined).
template <typename Body>
void parallel_for_index(thread_pool& pool, std::size_t n, Body&& body) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(pool.submit([&body, i] { body(i); }));
    std::exception_ptr first_error;
    for (auto& f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace sdrbist

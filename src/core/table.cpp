#include "core/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/contracts.hpp"

namespace sdrbist {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    SDRBIST_EXPECTS(!headers_.empty());
}

void text_table::add_row(std::vector<std::string> cells) {
    SDRBIST_EXPECTS(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string text_table::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string text_table::sci(double v, int precision) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
}

void text_table::print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto rule = [&] {
        os << '+';
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c] << " |";
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_)
        line(row);
    rule();
}

} // namespace sdrbist

/// \file table.hpp
/// \brief Aligned plain-text tables for the benchmark harnesses.
///
/// Every figure/table bench prints its rows through this formatter so the
/// regenerated outputs look like the paper's tables and are easy to diff.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sdrbist {

/// Column-aligned text table with a title, a header row and data rows.
class text_table {
public:
    /// Create a table with the given column headers.
    explicit text_table(std::vector<std::string> headers);

    /// Optional single-line title printed above the table.
    void set_title(std::string title) { title_ = std::move(title); }

    /// Append a preformatted row.  Precondition: cells.size() == #columns.
    void add_row(std::vector<std::string> cells);

    /// Format a double with the given precision (helper for row building).
    static std::string num(double v, int precision = 4);

    /// Format a double in scientific notation.
    static std::string sci(double v, int precision = 3);

    /// Render with column alignment and ASCII rules.
    void print(std::ostream& os) const;

    [[nodiscard]] std::size_t rows() const { return rows_.size(); }
    [[nodiscard]] std::size_t columns() const { return headers_.size(); }

private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sdrbist

/// \file units.hpp
/// \brief Physical-unit constants and dB conversions used across the library.
///
/// All frequencies are in Hz and all times in seconds (double precision).
/// The constants below make configuration sites read like the paper:
/// `90.0 * MHz`, `180.0 * ps`, `1.0 * GHz`.
#pragma once

#include <cmath>

namespace sdrbist {

inline constexpr double pi = 3.141592653589793238462643383279502884;
inline constexpr double two_pi = 2.0 * pi;

// ---- SI scale factors -----------------------------------------------------

inline constexpr double kHz = 1e3;  ///< kilohertz in Hz
inline constexpr double MHz = 1e6;  ///< megahertz in Hz
inline constexpr double GHz = 1e9;  ///< gigahertz in Hz

inline constexpr double ms = 1e-3;  ///< millisecond in s
inline constexpr double us = 1e-6;  ///< microsecond in s
inline constexpr double ns = 1e-9;  ///< nanosecond in s
inline constexpr double ps = 1e-12; ///< picosecond in s

// ---- decibel helpers ------------------------------------------------------

/// Power ratio -> dB (10·log10).
inline double db_from_power(double power_ratio) {
    return 10.0 * std::log10(power_ratio);
}

/// Amplitude ratio -> dB (20·log10).
inline double db_from_amplitude(double amplitude_ratio) {
    return 20.0 * std::log10(amplitude_ratio);
}

/// dB -> power ratio.
inline double power_from_db(double db) { return std::pow(10.0, db / 10.0); }

/// dB -> amplitude ratio.
inline double amplitude_from_db(double db) { return std::pow(10.0, db / 20.0); }

} // namespace sdrbist

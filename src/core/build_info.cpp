#include "core/build_info.hpp"

#include <algorithm>

#include "core/simd/kernel_backend.hpp"

namespace sdrbist {

namespace {

std::string compiler_id() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

std::string build_type() {
#if defined(SDRBIST_BUILD_TYPE)
    const std::string t = SDRBIST_BUILD_TYPE;
    return t.empty() ? "unspecified" : t;
#else
    return "unspecified";
#endif
}

std::string platform() {
#if defined(__x86_64__) || defined(_M_X64)
    const char* arch = "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
    const char* arch = "aarch64";
#else
    const char* arch = "unknown-arch";
#endif
#if defined(__linux__)
    return std::string(arch) + "-linux";
#elif defined(__APPLE__)
    return std::string(arch) + "-darwin";
#else
    return arch;
#endif
}

std::string backend_names(const std::vector<const simd::kernel_ops*>& list) {
    std::string out;
    for (const auto* ops : list) {
        if (!out.empty())
            out += ' ';
        out += ops->name;
    }
    return out.empty() ? "none" : out;
}

} // namespace

std::vector<std::pair<std::string, std::string>> build_info_fields() {
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("compiler", compiler_id());
    fields.emplace_back("build_type", build_type());
    fields.emplace_back("cxx_standard", std::to_string(__cplusplus));
    fields.emplace_back("platform", platform());
    fields.emplace_back("simd_compiled",
                        backend_names(simd::kernel_backend::compiled()));
    fields.emplace_back("simd_available",
                        backend_names(simd::kernel_backend::available()));
    fields.emplace_back("simd_active", simd::kernel_backend::select().name);
    return fields;
}

std::string build_info_text() {
    const auto fields = build_info_fields();
    std::size_t width = 0;
    for (const auto& [key, value] : fields)
        width = std::max(width, key.size());
    std::string out;
    for (const auto& [key, value] : fields) {
        out += "  ";
        out += key;
        out += ':';
        out.append(width - key.size() + 2, ' ');
        out += value;
        out += '\n';
    }
    return out;
}

} // namespace sdrbist

/// \file stats.hpp
/// \brief Basic descriptive statistics and error metrics on sample vectors.
#pragma once

#include <span>
#include <vector>

namespace sdrbist {

/// Arithmetic mean.  Precondition: !x.empty().
double mean(std::span<const double> x);

/// Unbiased sample variance.  Precondition: x.size() >= 2.
double variance(std::span<const double> x);

/// Standard deviation (sqrt of unbiased variance).
double stddev(std::span<const double> x);

/// Root-mean-square value.  Precondition: !x.empty().
double rms(std::span<const double> x);

/// Largest absolute value (0 for empty input).
double max_abs(std::span<const double> x);

/// Mean of squared element-wise differences:  sum((a-b)^2)/n.
/// This is the paper's cost metric shape (eq. (8)).
/// Precondition: equal non-zero sizes.
double mean_squared_error(std::span<const double> a, std::span<const double> b);

/// Relative RMS error  ||est - ref||_2 / ||ref||_2.
/// Precondition: equal non-zero sizes and ||ref|| > 0.
double relative_rms_error(std::span<const double> ref,
                          std::span<const double> est);

/// p-th percentile (0 <= p <= 100) by linear interpolation on sorted data.
/// Precondition: !x.empty().
double percentile(std::span<const double> x, double p);

} // namespace sdrbist

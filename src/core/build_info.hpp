/// \file build_info.hpp
/// \brief Build provenance for perf artefacts: compiler, build type,
///        language standard, platform and the SIMD backend roster.
///
/// Perf numbers without provenance are not comparable.  The campaign CLI
/// prints this block (`--build-info`) and stamps it into Chrome trace
/// metadata (`--trace-out`), so every trace and bench artefact records
/// what produced it.  Core-layer facts only; layers above append their
/// own versions (canonical-config, cache, shard formats).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace sdrbist {

/// Ordered key/value facts about this build and host: compiler,
/// build_type, cxx_standard, platform, simd_compiled, simd_available,
/// simd_active.  Resolves the active SIMD backend, so call it after any
/// kernel_backend::force().
std::vector<std::pair<std::string, std::string>> build_info_fields();

/// The same facts rendered as an aligned text block (one "  key: value"
/// line each).
std::string build_info_text();

} // namespace sdrbist

/// \file kernel_backend.cpp
/// \brief Backend registry, CPU feature detection and runtime dispatch.

#include "core/simd/kernel_backend.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "core/contracts.hpp"
#include "core/telemetry.hpp"

namespace sdrbist::simd {

namespace {

/// Cached selection; nullptr until the first select()/force().
std::atomic<const kernel_ops*> g_active{nullptr};

/// Name of the override environment variable (also documented in README).
constexpr const char* env_override = "SDRBIST_FORCE_BACKEND";

/// Render the compiled-in backend names for error messages.
std::string known_backends() {
    std::string out;
    for (const auto* ops : kernel_backend::compiled()) {
        if (!out.empty())
            out += ", ";
        out += ops->name;
    }
    return out;
}

/// Can a CPU with features `f` run this backend?
bool usable_with(const kernel_ops& ops, const cpu_features& f) {
    const std::string_view name = ops.name;
    if (name == "scalar")
        return true;
    if (name == "avx2")
        return f.avx2;
    if (name == "neon")
        return f.neon;
    return false;
}

/// Look up `name` and validate it against the executing CPU; throws
/// contract_violation with an actionable message otherwise.
const kernel_ops& checked_lookup(std::string_view name) {
    const kernel_ops* ops = kernel_backend::find(name);
    if (ops == nullptr)
        throw contract_violation("unknown kernel backend '" +
                                 std::string(name) +
                                 "' (compiled-in backends: " +
                                 known_backends() + ")");
    if (!kernel_backend::supported(*ops))
        throw contract_violation("kernel backend '" + std::string(name) +
                                 "' is not supported by this CPU");
    return *ops;
}

} // namespace

cpu_features kernel_backend::detect() {
    cpu_features f;
#if defined(__x86_64__) || defined(__i386__)
    f.avx2 = __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
#endif
#if defined(__aarch64__)
    f.neon = true; // Advanced SIMD is mandatory on AArch64
#endif
    return f;
}

const kernel_ops& kernel_backend::resolve(const cpu_features& f) {
    const kernel_ops* best = &scalar_ops();
    for (const auto* ops : compiled())
        if (usable_with(*ops, f) && ops->priority > best->priority)
            best = ops;
    return *best;
}

const kernel_ops* kernel_backend::find(std::string_view name) {
    for (const auto* ops : compiled())
        if (name == ops->name)
            return ops;
    return nullptr;
}

std::vector<const kernel_ops*> kernel_backend::compiled() {
    std::vector<const kernel_ops*> v{&scalar_ops()};
#if defined(SDRBIST_SIMD_AVX2)
    v.push_back(&avx2_ops());
#endif
#if defined(SDRBIST_SIMD_NEON)
    v.push_back(&neon_ops());
#endif
    return v;
}

std::vector<const kernel_ops*> kernel_backend::available() {
    std::vector<const kernel_ops*> v;
    for (const auto* ops : compiled())
        if (supported(*ops))
            v.push_back(ops);
    return v;
}

bool kernel_backend::supported(const kernel_ops& ops) {
    return usable_with(ops, detect());
}

const kernel_ops& kernel_backend::select() {
    // One dispatch per consumer construction (tables are captured once),
    // so this counts how often the kernel tables get handed out — not
    // per-kernel-call, which would put telemetry inside the hot loops.
    telemetry::count(telemetry::counter::simd_dispatches);
    const kernel_ops* cur = g_active.load(std::memory_order_acquire);
    if (cur != nullptr)
        return *cur;
    const char* env = std::getenv(env_override);
    const kernel_ops* chosen = (env != nullptr && *env != '\0')
                                   ? &checked_lookup(env)
                                   : &resolve(detect());
    // Concurrent first calls must agree: first CAS wins.
    const kernel_ops* expected = nullptr;
    if (g_active.compare_exchange_strong(expected, chosen,
                                         std::memory_order_acq_rel))
        return *chosen;
    return *expected;
}

void kernel_backend::force(std::string_view name) {
    g_active.store(&checked_lookup(name), std::memory_order_release);
}

void kernel_backend::reset() {
    g_active.store(nullptr, std::memory_order_release);
}

} // namespace sdrbist::simd

/// \file backend_neon.cpp
/// \brief AArch64 Advanced SIMD (NEON) backend: 128-bit (2-wide double)
///        implementations of the kernel table.
///
/// NEON double-precision vectors are mandatory on AArch64, so no extra ISA
/// flags are needed — the translation unit is simply only compiled into
/// AArch64 builds (see SDRBIST_SIMD_NEON in CMakeLists.txt), with
/// `-ffp-contract=off` so the elementwise kernels' mul/add pairs match the
/// scalar backend bit-for-bit.  The accumulating kernels use explicit FMA
/// (`vfmaq_f64`) and are reassociated relative to scalar, like AVX2.

#include "core/simd/kernel_backend.hpp"

#if defined(SDRBIST_SIMD_NEON) && defined(__aarch64__)

#include <arm_neon.h>
#include <cmath>

namespace sdrbist::simd {

namespace {

void neon_dot2(const double* a, const double* ca, const double* b,
               const double* cb, std::size_t n, double* out_a,
               double* out_b) {
    float64x2_t acc_a = vdupq_n_f64(0.0);
    float64x2_t acc_b = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        acc_a = vfmaq_f64(acc_a, vld1q_f64(a + i), vld1q_f64(ca + i));
        acc_b = vfmaq_f64(acc_b, vld1q_f64(b + i), vld1q_f64(cb + i));
    }
    double ra = vaddvq_f64(acc_a);
    double rb = vaddvq_f64(acc_b);
    for (; i < n; ++i) {
        ra += a[i] * ca[i];
        rb += b[i] * cb[i];
    }
    *out_a = ra;
    *out_b = rb;
}

/// coeff vector for taps [i, i+2): the cubic blend of four LUT rows.
inline float64x2_t blend2(const double* r0, const double* r1,
                          const double* r2, const double* r3, std::size_t i,
                          const double* w) {
    float64x2_t c = vmulq_n_f64(vld1q_f64(r0 + i), w[0]);
    c = vfmaq_n_f64(c, vld1q_f64(r1 + i), w[1]);
    c = vfmaq_n_f64(c, vld1q_f64(r2 + i), w[2]);
    c = vfmaq_n_f64(c, vld1q_f64(r3 + i), w[3]);
    return c;
}

double neon_blend_dot(const double* x, const double* rows, std::size_t stride,
                      const double* w, std::size_t n) {
    const double* r0 = rows;
    const double* r1 = rows + stride;
    const double* r2 = rows + 2 * stride;
    const double* r3 = rows + 3 * stride;
    float64x2_t acc = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        acc = vfmaq_f64(acc, vld1q_f64(x + i), blend2(r0, r1, r2, r3, i, w));
    double r = vaddvq_f64(acc);
    for (; i < n; ++i) {
        const double coeff =
            w[0] * r0[i] + w[1] * r1[i] + w[2] * r2[i] + w[3] * r3[i];
        r += x[i] * coeff;
    }
    return r;
}

std::complex<double> neon_blend_dot_cplx(const std::complex<double>* x,
                                         const double* rows,
                                         std::size_t stride, const double* w,
                                         std::size_t n) {
    const double* r0 = rows;
    const double* r1 = rows + stride;
    const double* r2 = rows + 2 * stride;
    const double* r3 = rows + 3 * stride;
    const double* xd = reinterpret_cast<const double*>(x);
    // Two interleaved [re, im] accumulators (even and odd taps).
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t c = blend2(r0, r1, r2, r3, i, w);
        acc0 = vfmaq_laneq_f64(acc0, vld1q_f64(xd + 2 * i), c, 0);
        acc1 = vfmaq_laneq_f64(acc1, vld1q_f64(xd + 2 * i + 2), c, 1);
    }
    const float64x2_t acc = vaddq_f64(acc0, acc1);
    double re = vgetq_lane_f64(acc, 0);
    double im = vgetq_lane_f64(acc, 1);
    for (; i < n; ++i) {
        const double coeff =
            w[0] * r0[i] + w[1] * r1[i] + w[2] * r2[i] + w[3] * r3[i];
        re += x[i].real() * coeff;
        im += x[i].imag() * coeff;
    }
    return {re, im};
}

void neon_quantize(const double* x, double* out, std::size_t n, double scale,
                   const quantize_params& p) {
    const float64x2_t vs = vdupq_n_f64(scale);
    const float64x2_t vg = vdupq_n_f64(p.gain);
    const float64x2_t vo = vdupq_n_f64(p.offset);
    const float64x2_t vlo = vdupq_n_f64(p.clip_lo);
    const float64x2_t vhi = vdupq_n_f64(p.clip_hi);
    const float64x2_t vlsb = vdupq_n_f64(p.lsb);
    const float64x2_t vhalf = vdupq_n_f64(0.5);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        float64x2_t t = vmulq_f64(vld1q_f64(x + i), vs);
        t = vaddq_f64(vmulq_f64(t, vg), vo); // mul+add, never FMA
        t = vminq_f64(vmaxq_f64(t, vlo), vhi);
        t = vrndmq_f64(vdivq_f64(t, vlsb)); // round toward -inf == floor
        t = vmulq_f64(vaddq_f64(t, vhalf), vlsb);
        vst1q_f64(out + i, t);
    }
    for (; i < n; ++i) {
        const double scaled = x[i] * scale;
        const double gained = scaled * p.gain;
        const double shifted = gained + p.offset;
        double v = shifted < p.clip_lo ? p.clip_lo : shifted;
        v = v > p.clip_hi ? p.clip_hi : v;
        out[i] = p.lsb * (std::floor(v / p.lsb) + 0.5);
    }
}

void neon_carrier_mix(const std::complex<double>* env, const double* cos_wt,
                      const double* sin_wt, double* out, std::size_t n) {
    const double* ed = reinterpret_cast<const double*>(env);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2x2_t e = vld2q_f64(ed + 2 * i); // deinterleave re/im
        const float64x2_t r =
            vsubq_f64(vmulq_f64(e.val[0], vld1q_f64(cos_wt + i)),
                      vmulq_f64(e.val[1], vld1q_f64(sin_wt + i)));
        vst1q_f64(out + i, r);
    }
    for (; i < n; ++i) {
        const double re = env[i].real() * cos_wt[i];
        const double im = env[i].imag() * sin_wt[i];
        out[i] = re - im;
    }
}

} // namespace

const kernel_ops& neon_ops() {
    static constexpr kernel_ops ops{
        "neon",
        10,
        &neon_dot2,
        &neon_blend_dot,
        &neon_blend_dot_cplx,
        &neon_quantize,
        &neon_carrier_mix,
    };
    return ops;
}

} // namespace sdrbist::simd

#endif // SDRBIST_SIMD_NEON && __aarch64__

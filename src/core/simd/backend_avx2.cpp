/// \file backend_avx2.cpp
/// \brief AVX2 + FMA backend: 256-bit (4-wide double) implementations of
///        the kernel table.
///
/// Compiled with `-mavx2 -mfma -ffp-contract=off` for this translation
/// unit only (see CMakeLists.txt) — the rest of the library stays on the
/// baseline ISA so the binary runs on any x86-64 and the dispatcher picks
/// this table up at runtime via CPUID.
///
/// Numerics:
///  * The accumulating kernels split the sum across vector lanes and use
///    explicit FMA — reassociated relative to scalar, deterministic for a
///    given length (lane assignment depends only on the index, never on
///    pointer alignment: all loads are unaligned loads).
///  * The elementwise kernels (`quantize_midrise`, `carrier_mix`) use only
///    correctly-rounded mul/add/sub/div/min/max/floor in the scalar
///    expression order — bit-identical to the scalar backend.  No FMA
///    there, and `-ffp-contract=off` keeps the loop tails honest.

#include "core/simd/kernel_backend.hpp"

#if defined(SDRBIST_SIMD_AVX2) && defined(__AVX2__)

#include <cmath>
#include <immintrin.h>

namespace sdrbist::simd {

namespace {

/// Horizontal sum of the four lanes.
inline double hsum(__m256d v) {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

void avx2_dot2(const double* a, const double* ca, const double* b,
               const double* cb, std::size_t n, double* out_a,
               double* out_b) {
    __m256d acc_a = _mm256_setzero_pd();
    __m256d acc_b = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc_a = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                                _mm256_loadu_pd(ca + i), acc_a);
        acc_b = _mm256_fmadd_pd(_mm256_loadu_pd(b + i),
                                _mm256_loadu_pd(cb + i), acc_b);
    }
    double ra = hsum(acc_a);
    double rb = hsum(acc_b);
    for (; i < n; ++i) {
        ra += a[i] * ca[i];
        rb += b[i] * cb[i];
    }
    *out_a = ra;
    *out_b = rb;
}

/// coeff vector for taps [i, i+4): the cubic blend of four LUT rows.
inline __m256d blend4(const double* r0, const double* r1, const double* r2,
                      const double* r3, std::size_t i, __m256d w0, __m256d w1,
                      __m256d w2, __m256d w3) {
    __m256d c = _mm256_mul_pd(w0, _mm256_loadu_pd(r0 + i));
    c = _mm256_fmadd_pd(w1, _mm256_loadu_pd(r1 + i), c);
    c = _mm256_fmadd_pd(w2, _mm256_loadu_pd(r2 + i), c);
    c = _mm256_fmadd_pd(w3, _mm256_loadu_pd(r3 + i), c);
    return c;
}

double avx2_blend_dot(const double* x, const double* rows, std::size_t stride,
                      const double* w, std::size_t n) {
    const double* r0 = rows;
    const double* r1 = rows + stride;
    const double* r2 = rows + 2 * stride;
    const double* r3 = rows + 3 * stride;
    const __m256d w0 = _mm256_set1_pd(w[0]);
    const __m256d w1 = _mm256_set1_pd(w[1]);
    const __m256d w2 = _mm256_set1_pd(w[2]);
    const __m256d w3 = _mm256_set1_pd(w[3]);
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                              blend4(r0, r1, r2, r3, i, w0, w1, w2, w3), acc);
    double r = hsum(acc);
    for (; i < n; ++i) {
        const double coeff =
            w[0] * r0[i] + w[1] * r1[i] + w[2] * r2[i] + w[3] * r3[i];
        r += x[i] * coeff;
    }
    return r;
}

std::complex<double> avx2_blend_dot_cplx(const std::complex<double>* x,
                                         const double* rows,
                                         std::size_t stride, const double* w,
                                         std::size_t n) {
    const double* r0 = rows;
    const double* r1 = rows + stride;
    const double* r2 = rows + 2 * stride;
    const double* r3 = rows + 3 * stride;
    const double* xd = reinterpret_cast<const double*>(x);
    const __m256d w0 = _mm256_set1_pd(w[0]);
    const __m256d w1 = _mm256_set1_pd(w[1]);
    const __m256d w2 = _mm256_set1_pd(w[2]);
    const __m256d w3 = _mm256_set1_pd(w[3]);
    // acc holds two interleaved complex accumulators [reA, imA, reB, imB].
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d c = blend4(r0, r1, r2, r3, i, w0, w1, w2, w3);
        // [c0,c0,c1,c1] and [c2,c2,c3,c3] against the re/im pairs.
        const __m256d clo = _mm256_permute4x64_pd(c, 0x50);
        const __m256d chi = _mm256_permute4x64_pd(c, 0xFA);
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(xd + 2 * i), clo, acc);
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(xd + 2 * i + 4), chi, acc);
    }
    const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                 _mm256_extractf128_pd(acc, 1));
    double re = _mm_cvtsd_f64(s);
    double im = _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
    for (; i < n; ++i) {
        const double coeff =
            w[0] * r0[i] + w[1] * r1[i] + w[2] * r2[i] + w[3] * r3[i];
        re += x[i].real() * coeff;
        im += x[i].imag() * coeff;
    }
    return {re, im};
}

void avx2_quantize(const double* x, double* out, std::size_t n, double scale,
                   const quantize_params& p) {
    const __m256d vs = _mm256_set1_pd(scale);
    const __m256d vg = _mm256_set1_pd(p.gain);
    const __m256d vo = _mm256_set1_pd(p.offset);
    const __m256d vlo = _mm256_set1_pd(p.clip_lo);
    const __m256d vhi = _mm256_set1_pd(p.clip_hi);
    const __m256d vlsb = _mm256_set1_pd(p.lsb);
    const __m256d vhalf = _mm256_set1_pd(0.5);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256d t = _mm256_mul_pd(_mm256_loadu_pd(x + i), vs);
        t = _mm256_add_pd(_mm256_mul_pd(t, vg), vo); // mul+add, never FMA
        // min/max return the SECOND operand when the first is NaN; keeping
        // the sample in the second slot propagates NaN exactly like the
        // scalar backend's ordered comparisons (bit-identity contract).
        t = _mm256_min_pd(vhi, _mm256_max_pd(vlo, t));
        t = _mm256_floor_pd(_mm256_div_pd(t, vlsb));
        t = _mm256_mul_pd(_mm256_add_pd(t, vhalf), vlsb);
        _mm256_storeu_pd(out + i, t);
    }
    for (; i < n; ++i) {
        const double scaled = x[i] * scale;
        const double gained = scaled * p.gain;
        const double shifted = gained + p.offset;
        double v = shifted < p.clip_lo ? p.clip_lo : shifted;
        v = v > p.clip_hi ? p.clip_hi : v;
        out[i] = p.lsb * (std::floor(v / p.lsb) + 0.5);
    }
}

void avx2_carrier_mix(const std::complex<double>* env, const double* cos_wt,
                      const double* sin_wt, double* out, std::size_t n) {
    const double* ed = reinterpret_cast<const double*>(env);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d e0 = _mm256_loadu_pd(ed + 2 * i);     // re0 im0 re1 im1
        const __m256d e1 = _mm256_loadu_pd(ed + 2 * i + 4); // re2 im2 re3 im3
        const __m256d t0 = _mm256_permute2f128_pd(e0, e1, 0x20);
        const __m256d t1 = _mm256_permute2f128_pd(e0, e1, 0x31);
        const __m256d re = _mm256_unpacklo_pd(t0, t1); // re0 re1 re2 re3
        const __m256d im = _mm256_unpackhi_pd(t0, t1); // im0 im1 im2 im3
        const __m256d r =
            _mm256_sub_pd(_mm256_mul_pd(re, _mm256_loadu_pd(cos_wt + i)),
                          _mm256_mul_pd(im, _mm256_loadu_pd(sin_wt + i)));
        _mm256_storeu_pd(out + i, r);
    }
    for (; i < n; ++i) {
        const double re = env[i].real() * cos_wt[i];
        const double im = env[i].imag() * sin_wt[i];
        out[i] = re - im;
    }
}

} // namespace

const kernel_ops& avx2_ops() {
    static constexpr kernel_ops ops{
        "avx2",
        20,
        &avx2_dot2,
        &avx2_blend_dot,
        &avx2_blend_dot_cplx,
        &avx2_quantize,
        &avx2_carrier_mix,
    };
    return ops;
}

} // namespace sdrbist::simd

#endif // SDRBIST_SIMD_AVX2 && __AVX2__

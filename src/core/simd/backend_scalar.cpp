/// \file backend_scalar.cpp
/// \brief Portable reference backend: sequential loops with the exact
///        expression shapes the PR 2 hot paths used inline, so forcing
///        `scalar` reproduces the pre-SIMD results bit-for-bit.
///
/// This translation unit is compiled with `-ffp-contract=off` (see
/// CMakeLists.txt): the multiply-add pairs below must stay separate
/// multiplies and adds on every architecture, or the cross-backend
/// bit-identity contract of the elementwise kernels would break on
/// targets whose baseline ISA has fused multiply-add (AArch64).

#include "core/simd/kernel_backend.hpp"

#include <cmath>

namespace sdrbist::simd {

namespace {

void scalar_dot2(const double* a, const double* ca, const double* b,
                 const double* cb, std::size_t n, double* out_a,
                 double* out_b) {
    // Two separate sequential loops — the exact accumulation order of the
    // pre-backend PNBS stage 2.
    double acc_a = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc_a += a[i] * ca[i];
    double acc_b = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc_b += b[i] * cb[i];
    *out_a = acc_a;
    *out_b = acc_b;
}

double scalar_blend_dot(const double* x, const double* rows,
                        std::size_t stride, const double* w, std::size_t n) {
    const double* r0 = rows;
    const double* r1 = rows + stride;
    const double* r2 = rows + 2 * stride;
    const double* r3 = rows + 3 * stride;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double coeff =
            w[0] * r0[i] + w[1] * r1[i] + w[2] * r2[i] + w[3] * r3[i];
        acc += x[i] * coeff;
    }
    return acc;
}

std::complex<double> scalar_blend_dot_cplx(const std::complex<double>* x,
                                           const double* rows,
                                           std::size_t stride, const double* w,
                                           std::size_t n) {
    const double* r0 = rows;
    const double* r1 = rows + stride;
    const double* r2 = rows + 2 * stride;
    const double* r3 = rows + 3 * stride;
    // Componentwise accumulation matches std::complex<double> += exactly.
    double re = 0.0;
    double im = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double coeff =
            w[0] * r0[i] + w[1] * r1[i] + w[2] * r2[i] + w[3] * r3[i];
        re += x[i].real() * coeff;
        im += x[i].imag() * coeff;
    }
    return {re, im};
}

void scalar_quantize(const double* x, double* out, std::size_t n, double scale,
                     const quantize_params& p) {
    for (std::size_t i = 0; i < n; ++i) {
        const double scaled = x[i] * scale;
        const double gained = scaled * p.gain;
        const double shifted = gained + p.offset;
        double v = shifted < p.clip_lo ? p.clip_lo : shifted;
        v = v > p.clip_hi ? p.clip_hi : v;
        out[i] = p.lsb * (std::floor(v / p.lsb) + 0.5);
    }
}

void scalar_carrier_mix(const std::complex<double>* env, const double* cos_wt,
                        const double* sin_wt, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double re = env[i].real() * cos_wt[i];
        const double im = env[i].imag() * sin_wt[i];
        out[i] = re - im;
    }
}

} // namespace

const kernel_ops& scalar_ops() {
    static constexpr kernel_ops ops{
        "scalar",
        0,
        &scalar_dot2,
        &scalar_blend_dot,
        &scalar_blend_dot_cplx,
        &scalar_quantize,
        &scalar_carrier_mix,
    };
    return ops;
}

} // namespace sdrbist::simd

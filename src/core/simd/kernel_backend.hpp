/// \file kernel_backend.hpp
/// \brief Runtime-dispatched SIMD kernel backends for the hot-path dot
///        products of the BIST engine.
///
/// PR 2 reduced every per-scenario hot loop to a handful of primitive
/// shapes: plain dot products (PNBS stage 2), 4-row polyphase blended dot
/// products (the windowed-sinc LUT interpolator behind every capture), and
/// two elementwise record transforms (mid-rise quantisation, carrier mix).
/// This header is the layer that lets those shapes run on explicit SIMD:
/// each backend fills one `kernel_ops` table, and `kernel_backend`
/// dispatches to the best table the CPU supports — overridable with the
/// `SDRBIST_FORCE_BACKEND` environment variable or programmatically
/// (`kernel_backend::force`, the CLI's `--backend`).
///
/// Accuracy contract (locked down by tests/dsp/backend_equivalence_test):
///  * `dot2`, `blend_dot`, `blend_dot_cplx` — SIMD backends split
///    the accumulation across vector lanes, so results are *reassociated*
///    relative to the scalar backend's sequential sum.  The deviation is
///    bounded by ~n·eps relative to Σ|aᵢ·bᵢ|; the equivalence suite asserts
///    ≤ 1e-12 of that magnitude for every record shape it generates.
///    Within one backend, results are deterministic (same inputs, same
///    lengths → bit-identical outputs, call after call).
///  * `quantize_midrise`, `carrier_mix` — elementwise, built only from
///    correctly-rounded IEEE operations in the same order as the scalar
///    expression, therefore **bit-identical across all backends**.  The
///    backend translation units are compiled with `-ffp-contract=off` so
///    no toolchain can fuse the multiply-add pairs behind our back.
///
/// Adding a backend (AVX-512, SVE, ...): implement one translation unit
/// returning a `kernel_ops`, register it in kernel_backend.cpp behind a
/// `SDRBIST_SIMD_<NAME>` macro, and teach CMake the per-TU flags.  The
/// equivalence and property suites pick it up automatically through
/// `kernel_backend::available()`.
#pragma once

#include <complex>
#include <cstddef>
#include <string_view>
#include <vector>

namespace sdrbist::simd {

/// Parameters of the mid-rise quantisation kernel (see adc::quantizer):
///   q(x) = lsb·(floor(clamp(x·scale·gain + offset, clip_lo, clip_hi)/lsb)
///               + 1/2)
/// with `scale` passed per call (the front-end attenuator varies per
/// capture while the converter's own parameters do not).
struct quantize_params {
    double gain = 1.0;    ///< 1 + relative gain error
    double offset = 0.0;  ///< input-referred offset
    double clip_lo = 0.0; ///< lower clip rail (-full_scale)
    double clip_hi = 0.0; ///< upper clip rail (full_scale - eps)
    double lsb = 0.0;     ///< quantisation step
};

/// One backend: a named table of hot-loop primitives.  All pointers are
/// always populated (backends may share implementations for shapes they
/// do not accelerate).
struct kernel_ops {
    const char* name;  ///< "scalar", "avx2", "neon", ...
    int priority;      ///< dispatch preference; higher wins when supported

    /// Fused pair of dot products sharing one loop (PNBS even/odd stage 2):
    /// *out_a = Σ a[i]·ca[i], *out_b = Σ b[i]·cb[i].
    void (*dot2)(const double* a, const double* ca, const double* b,
                 const double* cb, std::size_t n, double* out_a,
                 double* out_b);

    /// Polyphase 4-row blended dot product (windowed-sinc interpolator):
    ///   coeff[i] = w[0]·rows[i] + w[1]·rows[i+stride]
    ///            + w[2]·rows[i+2·stride] + w[3]·rows[i+3·stride]
    ///   return Σ x[i]·coeff[i]
    /// `rows` points at the first of four consecutive LUT rows, `w` at the
    /// four cubic Lagrange blend weights.
    double (*blend_dot)(const double* x, const double* rows,
                        std::size_t stride, const double* w, std::size_t n);

    /// Same blended dot product over interleaved complex samples.
    std::complex<double> (*blend_dot_cplx)(const std::complex<double>* x,
                                           const double* rows,
                                           std::size_t stride, const double* w,
                                           std::size_t n);

    /// Elementwise mid-rise quantisation of a scaled record (BP-TIADC
    /// capture path).  Bit-identical across backends.
    void (*quantize_midrise)(const double* x, double* out, std::size_t n,
                             double scale, const quantize_params& p);

    /// Elementwise passband carrier mix (envelope capture path):
    ///   out[i] = Re{env[i]}·cos_wt[i] - Im{env[i]}·sin_wt[i]
    /// Bit-identical across backends.
    void (*carrier_mix)(const std::complex<double>* env, const double* cos_wt,
                        const double* sin_wt, double* out, std::size_t n);
};

/// CPU feature set relevant to the compiled-in backends.  Kept explicit so
/// the dispatch *policy* is a pure function of it (testable without the
/// matching hardware).
struct cpu_features {
    bool avx2 = false; ///< x86 AVX2 + FMA
    bool neon = false; ///< AArch64 Advanced SIMD
};

/// Runtime backend dispatcher.
///
/// Selection order (resolved once, then cached process-wide):
///  1. `force()` (the CLI's `--backend`) — wins over everything;
///  2. `SDRBIST_FORCE_BACKEND` environment variable — unknown or
///     CPU-unsupported names throw `contract_violation` ("fail loudly");
///  3. the highest-priority compiled-in backend the CPU supports.
///
/// Kernel consumers capture the table once at construction, so `force()`
/// affects objects constructed *after* the call — force first, then build.
class kernel_backend {
public:
    /// Detect the features of the executing CPU (CPUID / architecture).
    static cpu_features detect();

    /// Pure dispatch policy: the backend `select()` would pick on a CPU
    /// with features `f` and no override.  Never fails (scalar always
    /// qualifies).
    static const kernel_ops& resolve(const cpu_features& f);

    /// Compiled-in backend by name; nullptr when unknown.  Ignores CPU
    /// support (use `supported()` for that).
    static const kernel_ops* find(std::string_view name);

    /// All compiled-in backends, scalar first.
    static std::vector<const kernel_ops*> compiled();

    /// Compiled-in backends the executing CPU can run, scalar first.
    static std::vector<const kernel_ops*> available();

    /// True when the executing CPU can run `ops`.
    static bool supported(const kernel_ops& ops);

    /// The process-wide active backend (resolving on first use).
    static const kernel_ops& select();

    /// Override the active backend by name.  Throws `contract_violation`
    /// when the name is unknown or the CPU cannot run it.
    static void force(std::string_view name);

    /// Drop the cached selection so the next `select()` re-resolves
    /// (environment variable and CPU detection run again).  For tests.
    static void reset();
};

/// The portable reference backend (always compiled, always supported).
/// Also the yardstick the equivalence suite measures every other backend
/// against, and the one single-sample helpers use so that per-sample and
/// batched evaluation stay bit-identical on every architecture.
const kernel_ops& scalar_ops();

/// Per-architecture backends; defined only in builds whose toolchain can
/// emit them (see SDRBIST_SIMD_* in CMakeLists.txt).  Reach them through
/// `kernel_backend::find`/`available` rather than calling these directly.
const kernel_ops& avx2_ops();
const kernel_ops& neon_ops();

} // namespace sdrbist::simd

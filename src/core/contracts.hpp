/// \file contracts.hpp
/// \brief Precondition / postcondition checking for the public API.
///
/// Following the C++ Core Guidelines (I.5/I.6, I.7/I.8) every public entry
/// point states its preconditions.  Violations throw `contract_violation`
/// so that tests can assert on misuse and callers can diagnose configuration
/// errors instead of observing silent numerical garbage.
#pragma once

#include <stdexcept>
#include <string>

namespace sdrbist {

/// Thrown when a documented precondition or postcondition is violated.
class contract_violation : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line) {
    throw contract_violation(std::string(kind) + " violated: `" + cond +
                             "` at " + file + ":" + std::to_string(line));
}
} // namespace detail

} // namespace sdrbist

/// Check a precondition; throws sdrbist::contract_violation on failure.
#define SDRBIST_EXPECTS(cond)                                                  \
    do {                                                                       \
        if (!(cond))                                                           \
            ::sdrbist::detail::contract_fail("precondition", #cond, __FILE__,  \
                                             __LINE__);                        \
    } while (false)

/// Check a postcondition; throws sdrbist::contract_violation on failure.
#define SDRBIST_ENSURES(cond)                                                  \
    do {                                                                       \
        if (!(cond))                                                           \
            ::sdrbist::detail::contract_fail("postcondition", #cond, __FILE__, \
                                             __LINE__);                        \
    } while (false)

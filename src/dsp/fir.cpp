#include "dsp/fir.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/units.hpp"

namespace sdrbist::dsp {

std::vector<double> design_lowpass_fir(std::size_t taps, double cutoff_norm,
                                       window_kind kind, double kaiser_beta) {
    SDRBIST_EXPECTS(taps >= 3);
    SDRBIST_EXPECTS(cutoff_norm > 0.0 && cutoff_norm < 0.5);
    const auto w = make_window(kind, taps, kaiser_beta);
    const double centre = static_cast<double>(taps - 1) / 2.0;
    std::vector<double> h(taps);
    for (std::size_t n = 0; n < taps; ++n) {
        const double m = static_cast<double>(n) - centre;
        h[n] = 2.0 * cutoff_norm * sinc(2.0 * cutoff_norm * m) * w[n];
    }
    // Normalise DC gain to exactly 1.
    double dc = 0.0;
    for (double v : h)
        dc += v;
    SDRBIST_ENSURES(dc > 0.0);
    for (double& v : h)
        v /= dc;
    return h;
}

std::vector<double> design_bandpass_fir(std::size_t taps, double f1, double f2,
                                        window_kind kind, double kaiser_beta) {
    SDRBIST_EXPECTS(taps >= 3);
    SDRBIST_EXPECTS(f1 > 0.0 && f1 < f2 && f2 < 0.5);
    const auto w = make_window(kind, taps, kaiser_beta);
    const double centre = static_cast<double>(taps - 1) / 2.0;
    std::vector<double> h(taps);
    for (std::size_t n = 0; n < taps; ++n) {
        const double m = static_cast<double>(n) - centre;
        h[n] = (2.0 * f2 * sinc(2.0 * f2 * m) - 2.0 * f1 * sinc(2.0 * f1 * m)) *
               w[n];
    }
    // Normalise gain to 1 at the band centre.
    const double fc = 0.5 * (f1 + f2);
    const double g = std::abs(fir_response(h, fc));
    SDRBIST_ENSURES(g > 0.0);
    for (double& v : h)
        v /= g;
    return h;
}

std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b) {
    SDRBIST_EXPECTS(!a.empty() && !b.empty());
    std::vector<double> out(a.size() + b.size() - 1, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] += a[i] * b[j];
    return out;
}

namespace {
template <class T>
std::vector<T> filter_same_impl(std::span<const double> h, std::span<const T> x) {
    SDRBIST_EXPECTS(h.size() % 2 == 1);
    SDRBIST_EXPECTS(!x.empty());
    const std::size_t half = h.size() / 2;
    std::vector<T> y(x.size(), T{});
    for (std::size_t n = 0; n < x.size(); ++n) {
        T acc{};
        // y[n] = sum_k h[k] * x[n + half - k], zero-padded outside.
        for (std::size_t k = 0; k < h.size(); ++k) {
            const auto idx = static_cast<long>(n) + static_cast<long>(half) -
                             static_cast<long>(k);
            if (idx >= 0 && idx < static_cast<long>(x.size()))
                acc += h[k] * x[static_cast<std::size_t>(idx)];
        }
        y[n] = acc;
    }
    return y;
}

template <class T>
std::vector<T> upfirdn_impl(std::span<const double> h, std::span<const T> x,
                            std::size_t up, std::size_t down) {
    SDRBIST_EXPECTS(up >= 1 && down >= 1);
    SDRBIST_EXPECTS(!h.empty() && !x.empty());
    // Virtual upsampled-and-filtered length.
    const std::size_t full = x.size() * up + h.size() - 1;
    const std::size_t out_len = (full + down - 1) / down;
    std::vector<T> y(out_len, T{});
    for (std::size_t m = 0; m < out_len; ++m) {
        const std::size_t pos = m * down; // index in upsampled+filtered stream
        T acc{};
        // Only indices where the upsampled stream is non-zero contribute:
        // pos - k = up * i  =>  k = pos - up*i.
        const std::size_t i_max = std::min(pos / up, x.size() - 1);
        // smallest i with k = pos - up*i < h.size()  =>  i > (pos - h.size())/up
        std::size_t i_min = 0;
        if (pos >= h.size())
            i_min = (pos - h.size()) / up + 1;
        for (std::size_t i = i_min; i <= i_max; ++i) {
            const std::size_t k = pos - up * i;
            if (k < h.size())
                acc += h[k] * x[i];
        }
        y[m] = acc;
    }
    return y;
}
} // namespace

std::vector<double> filter_same(std::span<const double> h,
                                std::span<const double> x) {
    return filter_same_impl<double>(h, x);
}

std::vector<std::complex<double>>
filter_same(std::span<const double> h,
            std::span<const std::complex<double>> x) {
    return filter_same_impl<std::complex<double>>(h, x);
}

std::vector<double> upfirdn(std::span<const double> h,
                            std::span<const double> x, std::size_t up,
                            std::size_t down) {
    return upfirdn_impl<double>(h, x, up, down);
}

std::vector<std::complex<double>>
upfirdn(std::span<const double> h, std::span<const std::complex<double>> x,
        std::size_t up, std::size_t down) {
    return upfirdn_impl<std::complex<double>>(h, x, up, down);
}

std::complex<double> fir_response(std::span<const double> h, double f_norm) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t n = 0; n < h.size(); ++n)
        acc += h[n] * std::polar(1.0, -two_pi * f_norm * static_cast<double>(n));
    return acc;
}

} // namespace sdrbist::dsp

/// \file biquad.hpp
/// \brief Biquad IIR sections and Butterworth designs (bilinear transform).
///
/// Models the analog anti-image lowpass after the Tx DACs and (baseband
/// equivalent of) the RF band-select filter: both are smooth maximally-flat
/// responses well captured by low-order Butterworth prototypes.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace sdrbist::dsp {

/// One direct-form-II-transposed biquad section:
///   y[n] = b0·x[n] + b1·x[n-1] + b2·x[n-2] - a1·y[n-1] - a2·y[n-2]
struct biquad {
    double b0 = 1.0, b1 = 0.0, b2 = 0.0;
    double a1 = 0.0, a2 = 0.0;

    /// Complex response at normalised frequency f (cycles/sample).
    [[nodiscard]] std::complex<double> response(double f_norm) const;
};

/// Cascade of biquad sections with per-channel state.
class iir_cascade {
public:
    iir_cascade() = default;
    explicit iir_cascade(std::vector<biquad> sections);

    /// Process one sample through all sections (stateful).
    double process(double x);

    /// Filter a whole sequence (resets state first).
    [[nodiscard]] std::vector<double> filter(std::span<const double> x);

    /// Filter a complex sequence by filtering I and Q identically.
    [[nodiscard]] std::vector<std::complex<double>>
    filter(std::span<const std::complex<double>> x);

    /// Clear the delay lines.
    void reset();

    /// Cascade frequency response at normalised frequency f.
    [[nodiscard]] std::complex<double> response(double f_norm) const;

    [[nodiscard]] std::size_t section_count() const { return sections_.size(); }
    [[nodiscard]] const std::vector<biquad>& sections() const {
        return sections_;
    }

private:
    std::vector<biquad> sections_;
    // One (z1, z2) pair per section, direct form II transposed.
    std::vector<std::pair<double, double>> state_;
};

/// Butterworth lowpass of the given order with -3 dB cutoff `cutoff_hz`,
/// discretised at rate `fs` by the pre-warped bilinear transform.
/// Preconditions: order in [1, 12], 0 < cutoff_hz < fs/2.
iir_cascade butterworth_lowpass(int order, double cutoff_hz, double fs);

/// Butterworth highpass, same parameter rules.
iir_cascade butterworth_highpass(int order, double cutoff_hz, double fs);

} // namespace sdrbist::dsp

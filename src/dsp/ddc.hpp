/// \file ddc.hpp
/// \brief Digital downconversion of a real passband sequence to a complex
///        baseband envelope (mix, lowpass, decimate).
///
/// After PNBS reconstruction the BIST evaluates the spectrum *around the
/// carrier*; the DDC recentres the reconstructed RF waveform at 0 Hz so the
/// mask checker and EVM meter operate on the complex envelope.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace sdrbist::dsp {

/// DDC configuration.
struct ddc_options {
    double carrier_hz = 0.0;     ///< mix-down frequency
    double sample_rate = 0.0;    ///< input sample rate
    std::size_t decimation = 1;  ///< integer decimation factor
    std::size_t fir_taps = 0;    ///< anti-alias lowpass length (odd);
                                 ///< 0 = auto-sized so the transition band
                                 ///< fits between cutoff and fs_out/2
                                 ///< (Kaiser estimate, 70 dB stopband)
    double cutoff_hz = 0.0;      ///< lowpass cutoff; 0 = auto (0.4·fs_out)
    double kaiser_beta = 0.0;    ///< design window beta; 0 = auto (70 dB)
    double stopband_db = 70.0;   ///< auto-design stopband attenuation
};

/// Mix x(t) with exp(-j·2π·fc·t), lowpass filter and decimate.
/// Returns the complex envelope at rate sample_rate / decimation.
/// The group delay of the anti-alias FIR is compensated (output sample m
/// corresponds to input time m·decimation/fs).
std::vector<std::complex<double>>
digital_downconvert(std::span<const double> x, const ddc_options& opt);

} // namespace sdrbist::dsp

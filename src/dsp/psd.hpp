/// \file psd.hpp
/// \brief Power spectral density estimation (periodogram / Welch).
///
/// The BIST verdict compares the Welch PSD of the reconstructed PA-output
/// envelope against a spectral emission mask, so the estimator must have a
/// calibrated power scale (one-sided/two-sided density in V^2/Hz).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace sdrbist::dsp {

/// PSD estimate: frequency bins (Hz) and density values (V^2/Hz, linear).
struct psd_result {
    std::vector<double> frequency; ///< bin centres, ascending
    std::vector<double> density;   ///< linear power density per Hz
    double resolution_bw = 0.0;    ///< equivalent noise bandwidth in Hz

    /// Total power integrated over [f_lo, f_hi] (rectangle rule).
    [[nodiscard]] double band_power(double f_lo, double f_hi) const;

    /// Maximum density in [f_lo, f_hi]; 0 when the band is empty.
    [[nodiscard]] double peak_density(double f_lo, double f_hi) const;
};

/// Welch PSD options.
struct welch_options {
    std::size_t segment_length = 1024;      ///< samples per segment
    double overlap = 0.5;                   ///< fractional overlap in [0,1)
    window_kind window = window_kind::hann; ///< per-segment window
    double kaiser_beta = 8.6;               ///< when window == kaiser
};

/// Welch PSD of a real signal; one-sided result on [0, fs/2].
psd_result welch_psd(std::span<const double> x, double fs,
                     const welch_options& opt = {});

/// Welch PSD of a complex (baseband) signal; two-sided result on
/// [-fs/2, fs/2), fftshifted to ascending frequency.
psd_result welch_psd(std::span<const std::complex<double>> x, double fs,
                     const welch_options& opt = {});

} // namespace sdrbist::dsp

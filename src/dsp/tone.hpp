/// \file tone.hpp
/// \brief Single-frequency analysis: Goertzel bins, arbitrary-frequency DFT
///        and IEEE-1057-style three-parameter sine fitting.
///
/// The Jamal-style time-skew baseline estimates per-channel phase of a known
/// test sinusoid; the sine fit here is its measurement core.
#pragma once

#include <complex>
#include <span>

namespace sdrbist::dsp {

/// Goertzel evaluation of the DFT at integer bin k of an n-point transform.
/// Equivalent to fft(x)[k] but O(n) for one bin.
std::complex<double> goertzel_bin(std::span<const double> x, std::size_t k);

/// Direct DFT-style correlation at an arbitrary normalised frequency
/// f_norm in cycles/sample: sum x[n]·exp(-j·2π·f_norm·n).
std::complex<double> single_tone_dft(std::span<const double> x, double f_norm);

/// Result of a three-parameter least-squares sine fit
/// x[n] ≈ amplitude·cos(2π·f_norm·n + phase) + offset.
struct sine_fit_result {
    double amplitude = 0.0;
    double phase = 0.0; ///< radians, in (-pi, pi]
    double offset = 0.0;
    double residual_rms = 0.0; ///< RMS of fit residual
};

/// Three-parameter (known-frequency) least-squares sine fit, IEEE 1057.
/// Precondition: x.size() >= 4, 0 < f_norm < 0.5.
sine_fit_result sine_fit_3param(std::span<const double> x, double f_norm);

} // namespace sdrbist::dsp

/// \file fir.hpp
/// \brief FIR filter design (windowed sinc) and filtering, including the
///        rational-rate `upfirdn` used by the pulse shaper and the DDC.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace sdrbist::dsp {

/// Windowed-sinc lowpass design.
/// \param taps         filter length (>= 3)
/// \param cutoff_norm  cutoff in cycles/sample, in (0, 0.5)
/// \param kind         window family
/// \param kaiser_beta  Kaiser beta when kind == kaiser
/// Passband gain is normalised to exactly 1 at DC.
std::vector<double> design_lowpass_fir(std::size_t taps, double cutoff_norm,
                                       window_kind kind = window_kind::kaiser,
                                       double kaiser_beta = 8.6);

/// Windowed-sinc bandpass design with band edges (cycles/sample)
/// 0 < f1 < f2 < 0.5.  Gain normalised to 1 at the band centre.
std::vector<double> design_bandpass_fir(std::size_t taps, double f1, double f2,
                                        window_kind kind = window_kind::kaiser,
                                        double kaiser_beta = 8.6);

/// Full linear convolution (output length a.size() + b.size() - 1).
std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b);

/// "Same-size" filtering that compensates the FIR group delay: returns
/// y[n] = (h * x)[n + (taps-1)/2], length x.size().  Odd-length h only.
std::vector<double> filter_same(std::span<const double> h,
                                std::span<const double> x);

/// Complex-input variant of filter_same (same real coefficients).
std::vector<std::complex<double>>
filter_same(std::span<const double> h,
            std::span<const std::complex<double>> x);

/// Polyphase-style upsample-filter-downsample:
/// insert (up-1) zeros between samples, filter with h, keep every down-th.
/// Output length: ceil((x.size()*up + h.size() - 1) / down) - but trimmed to
/// full convolution; no group-delay compensation (callers track delay).
std::vector<double> upfirdn(std::span<const double> h,
                            std::span<const double> x, std::size_t up,
                            std::size_t down);

/// Complex-input upfirdn with real coefficients.
std::vector<std::complex<double>>
upfirdn(std::span<const double> h, std::span<const std::complex<double>> x,
        std::size_t up, std::size_t down);

/// Frequency response H(e^{j2πf}) of an FIR at normalised frequency
/// f in cycles/sample.
std::complex<double> fir_response(std::span<const double> h, double f_norm);

} // namespace sdrbist::dsp

#include "dsp/ddc.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"
#include "dsp/fir.hpp"

namespace sdrbist::dsp {

std::vector<std::complex<double>>
digital_downconvert(std::span<const double> x, const ddc_options& opt) {
    SDRBIST_EXPECTS(opt.sample_rate > 0.0);
    SDRBIST_EXPECTS(opt.decimation >= 1);
    SDRBIST_EXPECTS(!x.empty());

    const double fs = opt.sample_rate;
    const double fs_out = fs / static_cast<double>(opt.decimation);
    const double cutoff = opt.cutoff_hz > 0.0 ? opt.cutoff_hz : 0.4 * fs_out;
    SDRBIST_EXPECTS(cutoff < fs / 2.0);

    // Anti-alias FIR: the transition band must fit between the cutoff and
    // the post-decimation Nyquist edge, otherwise wideband noise folds into
    // the output.  Kaiser length estimate N ≈ (A - 8)/(2.285·Δω).  The
    // windowed-sinc -6 dB point is placed mid-transition so the passband
    // (up to `cutoff`) stays flat.
    const double beta = opt.kaiser_beta > 0.0
                            ? opt.kaiser_beta
                            : kaiser_beta_for_attenuation(opt.stopband_db);
    const double trans_hz = std::max(fs_out / 2.0 - cutoff, 0.02 * fs_out);
    const double design_cutoff =
        std::min(cutoff + trans_hz / 2.0, 0.49 * fs / 2.0 * 2.0);
    std::size_t taps = opt.fir_taps;
    if (taps == 0) {
        const double d_omega = two_pi * trans_hz / fs;
        const double n_est = (opt.stopband_db - 8.0) / (2.285 * d_omega);
        taps = static_cast<std::size_t>(
            std::clamp(n_est, 63.0, 8191.0));
    }
    taps |= 1u; // force odd
    SDRBIST_EXPECTS(taps % 2 == 1);

    // Complex mix: exp(-j 2π fc n / fs).
    std::vector<std::complex<double>> mixed(x.size());
    const double dphi = -two_pi * opt.carrier_hz / fs;
    for (std::size_t n = 0; n < x.size(); ++n)
        mixed[n] = x[n] * std::polar(1.0, dphi * static_cast<double>(n));

    const auto h = design_lowpass_fir(taps, design_cutoff / fs,
                                      window_kind::kaiser, beta);
    // Group-delay compensated filtering, then decimation.
    const auto filtered = filter_same(h, std::span<const std::complex<double>>(
                                             mixed.data(), mixed.size()));
    std::vector<std::complex<double>> out;
    out.reserve(filtered.size() / opt.decimation + 1);
    // Factor 2: the mix halves the in-band amplitude (cos = (e^+ + e^-)/2).
    for (std::size_t n = 0; n < filtered.size(); n += opt.decimation)
        out.push_back(2.0 * filtered[n]);
    return out;
}

} // namespace sdrbist::dsp

#include "dsp/biquad.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist::dsp {

std::complex<double> biquad::response(double f_norm) const {
    const std::complex<double> z = std::polar(1.0, two_pi * f_norm);
    const std::complex<double> z1 = 1.0 / z;
    const std::complex<double> z2 = z1 * z1;
    return (b0 + b1 * z1 + b2 * z2) / (1.0 + a1 * z1 + a2 * z2);
}

iir_cascade::iir_cascade(std::vector<biquad> sections)
    : sections_(std::move(sections)), state_(sections_.size(), {0.0, 0.0}) {}

double iir_cascade::process(double x) {
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        const biquad& s = sections_[i];
        auto& [z1, z2] = state_[i];
        const double y = s.b0 * x + z1;
        z1 = s.b1 * x - s.a1 * y + z2;
        z2 = s.b2 * x - s.a2 * y;
        x = y;
    }
    return x;
}

std::vector<double> iir_cascade::filter(std::span<const double> x) {
    reset();
    std::vector<double> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] = process(x[i]);
    return y;
}

std::vector<std::complex<double>>
iir_cascade::filter(std::span<const std::complex<double>> x) {
    std::vector<double> re(x.size()), im(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        re[i] = x[i].real();
        im[i] = x[i].imag();
    }
    const auto yre = filter(re);
    const auto yim = filter(im);
    std::vector<std::complex<double>> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] = {yre[i], yim[i]};
    return y;
}

void iir_cascade::reset() {
    for (auto& s : state_)
        s = {0.0, 0.0};
}

std::complex<double> iir_cascade::response(double f_norm) const {
    std::complex<double> h{1.0, 0.0};
    for (const auto& s : sections_)
        h *= s.response(f_norm);
    return h;
}

namespace {

// Bilinear transform of the analog prototype H(s) = wc^N / prod(s - p_k)
// with pre-warping so the -3 dB point lands exactly at cutoff_hz.
iir_cascade butterworth(int order, double cutoff_hz, double fs, bool highpass) {
    SDRBIST_EXPECTS(order >= 1 && order <= 12);
    SDRBIST_EXPECTS(cutoff_hz > 0.0 && cutoff_hz < fs / 2.0);

    const double k = 2.0 * fs;                          // bilinear constant
    const double wc = k * std::tan(pi * cutoff_hz / fs); // pre-warped rad/s

    std::vector<biquad> sections;
    // Conjugate pole pairs of the Butterworth circle.
    for (int i = 0; i < order / 2; ++i) {
        const double theta =
            pi * (2.0 * i + 1.0) / (2.0 * static_cast<double>(order)) +
            pi / 2.0;
        // Analog pair: s^2 - 2·wc·cos(theta)·s + wc^2 (cos(theta) < 0).
        const double a = -2.0 * wc * std::cos(theta);
        const double b = wc * wc;
        // Bilinear: s = k·(1 - z^-1)/(1 + z^-1).
        const double den = k * k + a * k + b;
        biquad s;
        if (!highpass) {
            s.b0 = b / den;
            s.b1 = 2.0 * b / den;
            s.b2 = b / den;
        } else {
            s.b0 = k * k / den;
            s.b1 = -2.0 * k * k / den;
            s.b2 = k * k / den;
        }
        s.a1 = (2.0 * b - 2.0 * k * k) / den;
        s.a2 = (k * k - a * k + b) / den;
        sections.push_back(s);
    }
    if (order % 2 == 1) {
        // Real pole at s = -wc.
        const double den = k + wc;
        biquad s;
        if (!highpass) {
            s.b0 = wc / den;
            s.b1 = wc / den;
        } else {
            s.b0 = k / den;
            s.b1 = -k / den;
        }
        s.a1 = (wc - k) / den;
        sections.push_back(s);
    }
    return iir_cascade(std::move(sections));
}

} // namespace

iir_cascade butterworth_lowpass(int order, double cutoff_hz, double fs) {
    return butterworth(order, cutoff_hz, fs, /*highpass=*/false);
}

iir_cascade butterworth_highpass(int order, double cutoff_hz, double fs) {
    return butterworth(order, cutoff_hz, fs, /*highpass=*/true);
}

} // namespace sdrbist::dsp

#include "dsp/window.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/units.hpp"

namespace sdrbist::dsp {

std::vector<double> make_window(window_kind kind, std::size_t n,
                                double kaiser_beta) {
    SDRBIST_EXPECTS(n >= 1);
    std::vector<double> w(n, 1.0);
    if (n == 1)
        return w;
    const double denom = static_cast<double>(n - 1);
    switch (kind) {
    case window_kind::rectangular:
        break;
    case window_kind::hann:
        for (std::size_t i = 0; i < n; ++i)
            w[i] = 0.5 - 0.5 * std::cos(two_pi * static_cast<double>(i) / denom);
        break;
    case window_kind::hamming:
        for (std::size_t i = 0; i < n; ++i)
            w[i] = 0.54 - 0.46 * std::cos(two_pi * static_cast<double>(i) / denom);
        break;
    case window_kind::blackman:
        for (std::size_t i = 0; i < n; ++i) {
            const double x = two_pi * static_cast<double>(i) / denom;
            w[i] = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
        }
        break;
    case window_kind::kaiser:
        return kaiser_window(n, kaiser_beta);
    }
    return w;
}

std::vector<double> kaiser_window(std::size_t n, double beta) {
    SDRBIST_EXPECTS(n >= 1);
    SDRBIST_EXPECTS(beta >= 0.0);
    std::vector<double> w(n, 1.0);
    if (n == 1)
        return w;
    const double half = static_cast<double>(n - 1) / 2.0;
    const double i0b = bessel_i0(beta);
    for (std::size_t i = 0; i < n; ++i) {
        const double u = (static_cast<double>(i) - half) / half; // [-1, 1]
        w[i] = bessel_i0(beta * std::sqrt(std::max(0.0, 1.0 - u * u))) / i0b;
    }
    return w;
}

double kaiser_beta_for_attenuation(double a_db) {
    SDRBIST_EXPECTS(a_db >= 0.0);
    if (a_db > 50.0)
        return 0.1102 * (a_db - 8.7);
    if (a_db >= 21.0)
        return 0.5842 * std::pow(a_db - 21.0, 0.4) + 0.07886 * (a_db - 21.0);
    return 0.0;
}

double kaiser_window_at(double u, double beta) {
    if (std::abs(u) > 1.0)
        return 0.0;
    return bessel_i0(beta * std::sqrt(1.0 - u * u)) / bessel_i0(beta);
}

kaiser_lut::kaiser_lut(double beta, std::size_t resolution) : beta_(beta) {
    SDRBIST_EXPECTS(beta >= 0.0);
    SDRBIST_EXPECTS(resolution >= 16);
    lut_.resize(resolution + 1);
    // Hoist the constant denominator series out of the per-sample loop.
    const double inv_i0b = 1.0 / bessel_i0(beta);
    for (std::size_t i = 0; i <= resolution; ++i) {
        const double u = static_cast<double>(i) / static_cast<double>(resolution);
        lut_[i] = bessel_i0(beta * std::sqrt(std::max(0.0, 1.0 - u * u))) *
                  inv_i0b;
    }
}

double window_sum(const std::vector<double>& w) {
    double s = 0.0;
    for (double v : w)
        s += v;
    return s;
}

double window_power(const std::vector<double>& w) {
    double s = 0.0;
    for (double v : w)
        s += v * v;
    return s;
}

std::string to_string(window_kind kind) {
    switch (kind) {
    case window_kind::rectangular:
        return "rectangular";
    case window_kind::hann:
        return "hann";
    case window_kind::hamming:
        return "hamming";
    case window_kind::blackman:
        return "blackman";
    case window_kind::kaiser:
        return "kaiser";
    }
    return "unknown";
}

} // namespace sdrbist::dsp

#include "dsp/psd.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "dsp/fft.hpp"

namespace sdrbist::dsp {

double psd_result::band_power(double f_lo, double f_hi) const {
    SDRBIST_EXPECTS(f_lo <= f_hi);
    if (frequency.size() < 2)
        return 0.0;
    const double df = frequency[1] - frequency[0];
    double p = 0.0;
    for (std::size_t i = 0; i < frequency.size(); ++i)
        if (frequency[i] >= f_lo && frequency[i] <= f_hi)
            p += density[i] * df;
    return p;
}

double psd_result::peak_density(double f_lo, double f_hi) const {
    SDRBIST_EXPECTS(f_lo <= f_hi);
    double m = 0.0;
    for (std::size_t i = 0; i < frequency.size(); ++i)
        if (frequency[i] >= f_lo && frequency[i] <= f_hi)
            m = std::max(m, density[i]);
    return m;
}

namespace {

// Shared Welch machinery over complex segments.  `two_sided` selects the
// output layout; scale follows the standard Welch normalisation
// Pxx = |X|^2 / (fs * sum(w^2)), with one-sided doubling for real input.
psd_result welch_impl(std::span<const std::complex<double>> x, double fs,
                      const welch_options& opt, bool two_sided) {
    SDRBIST_EXPECTS(fs > 0.0);
    SDRBIST_EXPECTS(opt.segment_length >= 8);
    SDRBIST_EXPECTS(opt.overlap >= 0.0 && opt.overlap < 1.0);
    SDRBIST_EXPECTS(x.size() >= opt.segment_length);

    const std::size_t seg = opt.segment_length;
    const auto hop = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::lround(static_cast<double>(seg) * (1.0 - opt.overlap))));
    const auto w = make_window(opt.window, seg, opt.kaiser_beta);
    const double w_pow = window_power(w);

    std::vector<double> acc(seg, 0.0);
    std::size_t count = 0;
    for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
        std::vector<cplx> buf(seg);
        for (std::size_t i = 0; i < seg; ++i)
            buf[i] = x[start + i] * w[i];
        buf = fft(std::move(buf));
        for (std::size_t i = 0; i < seg; ++i)
            acc[i] += std::norm(buf[i]);
        ++count;
    }
    SDRBIST_ENSURES(count > 0);

    const double scale = 1.0 / (fs * w_pow * static_cast<double>(count));
    for (double& v : acc)
        v *= scale;

    psd_result out;
    out.resolution_bw = fs * w_pow / (window_sum(w) * window_sum(w));
    if (two_sided) {
        out.frequency = fftshift(fft_frequencies(seg, fs));
        out.density = fftshift(std::move(acc));
    } else {
        const std::size_t half = seg / 2 + 1;
        out.frequency.resize(half);
        out.density.resize(half);
        const double df = fs / static_cast<double>(seg);
        for (std::size_t i = 0; i < half; ++i) {
            out.frequency[i] = df * static_cast<double>(i);
            // One-sided: double all bins except DC and Nyquist.
            const bool edge = (i == 0) || (seg % 2 == 0 && i == half - 1);
            out.density[i] = acc[i] * (edge ? 1.0 : 2.0);
        }
    }
    return out;
}

} // namespace

psd_result welch_psd(std::span<const double> x, double fs,
                     const welch_options& opt) {
    std::vector<std::complex<double>> c(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        c[i] = {x[i], 0.0};
    return welch_impl(c, fs, opt, /*two_sided=*/false);
}

psd_result welch_psd(std::span<const std::complex<double>> x, double fs,
                     const welch_options& opt) {
    return welch_impl(x, fs, opt, /*two_sided=*/true);
}

} // namespace sdrbist::dsp

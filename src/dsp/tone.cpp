#include "dsp/tone.hpp"

#include <cmath>
#include <vector>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/units.hpp"

namespace sdrbist::dsp {

std::complex<double> goertzel_bin(std::span<const double> x, std::size_t k) {
    SDRBIST_EXPECTS(!x.empty());
    SDRBIST_EXPECTS(k < x.size());
    const double n = static_cast<double>(x.size());
    const double w = two_pi * static_cast<double>(k) / n;
    const double coeff = 2.0 * std::cos(w);
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (double v : x) {
        s0 = v + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    // Standard Goertzel finalisation to the complex DFT bin:
    // X(k) = s1·e^{jw} - s2  (the e^{-jw(N-1)} phase factor reduces to
    // e^{jw} because w·N = 2πk).
    return {s1 * std::cos(w) - s2, s1 * std::sin(w)};
}

std::complex<double> single_tone_dft(std::span<const double> x, double f_norm) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t n = 0; n < x.size(); ++n)
        acc += x[n] * std::polar(1.0, -two_pi * f_norm * static_cast<double>(n));
    return acc;
}

sine_fit_result sine_fit_3param(std::span<const double> x, double f_norm) {
    SDRBIST_EXPECTS(x.size() >= 4);
    SDRBIST_EXPECTS(f_norm > 0.0 && f_norm < 0.5);
    const std::size_t n = x.size();

    // Least squares on x[n] = A·cos(wn) + B·sin(wn) + C via normal equations.
    double scc = 0.0, sss = 0.0, scs = 0.0, sc = 0.0, ss = 0.0;
    double xc = 0.0, xs = 0.0, sx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double w = two_pi * f_norm * static_cast<double>(i);
        const double c = std::cos(w);
        const double s = std::sin(w);
        scc += c * c;
        sss += s * s;
        scs += c * s;
        sc += c;
        ss += s;
        xc += x[i] * c;
        xs += x[i] * s;
        sx += x[i];
    }
    const double nn = static_cast<double>(n);
    // Solve the symmetric 3x3 system
    //   [scc scs sc ] [A]   [xc]
    //   [scs sss ss ] [B] = [xs]
    //   [sc  ss  nn ] [C]   [sx]
    // with Cramer's rule (well-conditioned for 0 < f < 0.5 and n >= 4).
    const double det = scc * (sss * nn - ss * ss) - scs * (scs * nn - ss * sc) +
                       sc * (scs * ss - sss * sc);
    SDRBIST_EXPECTS(std::abs(det) > 1e-12);
    const double det_a = xc * (sss * nn - ss * ss) -
                         scs * (xs * nn - ss * sx) + sc * (xs * ss - sss * sx);
    const double det_b = scc * (xs * nn - ss * sx) - xc * (scs * nn - ss * sc) +
                         sc * (scs * sx - xs * sc);
    const double det_c = scc * (sss * sx - xs * ss) -
                         scs * (scs * sx - xs * sc) + xc * (scs * ss - sss * sc);
    const double a = det_a / det;
    const double b = det_b / det;
    const double c = det_c / det;

    sine_fit_result out;
    out.amplitude = std::hypot(a, b);
    // x = A·cos(wn) + B·sin(wn) = amp·cos(wn + phase), phase = atan2(-B, A).
    out.phase = std::atan2(-b, a);
    out.offset = c;
    double res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double w = two_pi * f_norm * static_cast<double>(i);
        const double fit = a * std::cos(w) + b * std::sin(w) + c;
        res += (x[i] - fit) * (x[i] - fit);
    }
    out.residual_rms = std::sqrt(res / nn);
    return out;
}

} // namespace sdrbist::dsp

/// \file fft.hpp
/// \brief Fast Fourier transform: iterative radix-2 plus Bluestein's
///        algorithm for arbitrary lengths.  Self-contained (no external DSP
///        dependency) — the library must run on an offline test bench.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace sdrbist::dsp {

using cplx = std::complex<double>;

/// In-place radix-2 DIT FFT.  Precondition: x.size() is a power of two.
void fft_pow2_inplace(std::vector<cplx>& x);

/// Forward FFT of arbitrary length (radix-2 when possible, else Bluestein).
std::vector<cplx> fft(std::vector<cplx> x);

/// Inverse FFT (any length); satisfies ifft(fft(x)) == x to rounding error.
std::vector<cplx> ifft(std::vector<cplx> x);

/// FFT of a real sequence (returns the full complex spectrum, length n).
std::vector<cplx> fft_real(std::span<const double> x);

/// Bin centre frequencies for an n-point FFT at sample rate fs
/// (0, fs/n, ..., positive then negative frequencies, numpy layout).
std::vector<double> fft_frequencies(std::size_t n, double fs);

/// Rotate an FFT output so that frequency 0 sits in the middle
/// (negative frequencies first).
std::vector<cplx> fftshift(std::vector<cplx> x);

/// Same rotation for a real-valued vector (e.g. the frequency axis).
std::vector<double> fftshift(std::vector<double> x);

/// Direct O(n^2) DFT — reference implementation used by the unit tests.
std::vector<cplx> dft_reference(std::span<const cplx> x);

} // namespace sdrbist::dsp

#include "dsp/interpolator.hpp"

#include <cmath>

#include "core/math_util.hpp"
#include "dsp/window.hpp"

namespace sdrbist::dsp {

template <class T>
sinc_interpolator<T>::sinc_interpolator(std::vector<T> samples, double rate,
                                        std::size_t half_taps, double beta)
    : samples_(std::move(samples)), rate_(rate), half_taps_(half_taps),
      beta_(beta) {
    SDRBIST_EXPECTS(rate_ > 0.0);
    SDRBIST_EXPECTS(half_taps_ >= 4);
    SDRBIST_EXPECTS(samples_.size() > 2 * half_taps_);
    SDRBIST_EXPECTS(beta_ >= 0.0);
}

template <class T> T sinc_interpolator<T>::at(double t) const {
    const double pos = t * rate_; // fractional sample index
    const auto centre = static_cast<long>(std::floor(pos));
    const auto n_samples = static_cast<long>(samples_.size());
    const auto half = static_cast<long>(half_taps_);

    T acc{};
    const long lo = centre - half + 1;
    const long hi = centre + half;
    const double inv_half = 1.0 / static_cast<double>(half);
    for (long n = lo; n <= hi; ++n) {
        if (n < 0 || n >= n_samples)
            continue;
        const double d = pos - static_cast<double>(n);
        const double w = kaiser_window_at(d * inv_half, beta_);
        acc += samples_[static_cast<std::size_t>(n)] * (sinc(d) * w);
    }
    return acc;
}

template <class T>
std::vector<T> sinc_interpolator<T>::at(const std::vector<double>& t) const {
    std::vector<T> out(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = at(t[i]);
    return out;
}

template class sinc_interpolator<double>;
template class sinc_interpolator<std::complex<double>>;

} // namespace sdrbist::dsp

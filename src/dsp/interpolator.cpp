#include "dsp/interpolator.hpp"

#include <algorithm>
#include <cmath>

#include "core/math_util.hpp"
#include "core/simd/kernel_backend.hpp"
#include "dsp/window.hpp"

namespace sdrbist::dsp {

namespace {

/// Dispatch the blended tap loop to the backend entry matching T.
inline double backend_blend(const simd::kernel_ops& ops, const double* x,
                            const double* rows, std::size_t stride,
                            const double* w, std::size_t n) {
    return ops.blend_dot(x, rows, stride, w, n);
}

inline std::complex<double>
backend_blend(const simd::kernel_ops& ops, const std::complex<double>* x,
              const double* rows, std::size_t stride, const double* w,
              std::size_t n) {
    return ops.blend_dot_cplx(x, rows, stride, w, n);
}

} // namespace

template <class T>
sinc_interpolator<T>::sinc_interpolator(std::vector<T> samples, double rate,
                                        std::size_t half_taps, double beta,
                                        std::size_t phase_steps)
    : samples_(std::move(samples)), rate_(rate), half_taps_(half_taps),
      beta_(beta), phase_steps_(phase_steps),
      ops_(&simd::kernel_backend::select()) {
    SDRBIST_EXPECTS(rate_ > 0.0);
    SDRBIST_EXPECTS(half_taps_ >= 4);
    SDRBIST_EXPECTS(samples_.size() > 2 * half_taps_);
    SDRBIST_EXPECTS(beta_ >= 0.0);
    SDRBIST_EXPECTS(phase_steps_ >= 64);
    build_lut();
}

template <class T> void sinc_interpolator<T>::build_lut() {
    const std::size_t stride = 2 * half_taps_;
    const std::size_t rows = phase_steps_ + 3;
    lut_.resize(rows * stride);

    const double inv_half = 1.0 / static_cast<double>(half_taps_);
    const double inv_i0b = 1.0 / bessel_i0(beta_);
    // Pad-row cells fall (just) outside the window support; tabulating the
    // window's smooth analytic continuation there — I0(β√(1-u²)) becomes
    // J0(β√(u²-1)) for |u| > 1 — keeps the tabulated function C^∞ through
    // the support edge, so the cubic phase blend keeps its full order.
    // Points inside the support never read a continued value directly.
    auto window = [&](double u) {
        u = std::abs(u);
        if (u > 1.0)
            return bessel_j0(beta_ * std::sqrt(u * u - 1.0)) * inv_i0b;
        return bessel_i0(beta_ * std::sqrt(1.0 - u * u)) * inv_i0b;
    };

    // The coefficient g(frac, c) = sinc(d)·w(d/half) with
    // d = frac - (c - half + 1) obeys g(1 - frac, c) = g(frac, stride-1-c),
    // so only the lower half of the phase range needs transcendentals.
    const auto half = static_cast<long>(half_taps_);
    for (std::size_t r = 0; r < rows; ++r) {
        const double frac = (static_cast<double>(r) - 1.0) /
                            static_cast<double>(phase_steps_);
        double* row = lut_.data() + r * stride;
        const std::size_t r_mirror = phase_steps_ + 2 - r;
        if (r > r_mirror && r_mirror < rows) {
            const double* src = lut_.data() + r_mirror * stride;
            for (std::size_t c = 0; c < stride; ++c)
                row[c] = src[stride - 1 - c];
            continue;
        }
        for (std::size_t c = 0; c < stride; ++c) {
            const double d =
                frac - static_cast<double>(static_cast<long>(c) - half + 1);
            row[c] = sinc(d) * window(d * inv_half);
        }
    }
}

template <class T> T sinc_interpolator<T>::eval(double pos) const {
    const double fpos = std::floor(pos);
    const auto centre = static_cast<long>(fpos);
    const double frac = pos - fpos;
    const auto half = static_cast<long>(half_taps_);
    const auto n_samples = static_cast<long>(samples_.size());

    // Cubic Lagrange blend of the four phase rows bracketing `frac`
    // (nodes at -1, 0, 1, 2 in units of the phase step).
    const double x = frac * static_cast<double>(phase_steps_);
    auto p = static_cast<std::size_t>(x);
    if (p > phase_steps_ - 1)
        p = phase_steps_ - 1;
    const double u = x - static_cast<double>(p);
    const double um = u - 1.0;
    const double um2 = u - 2.0;
    const double up = u + 1.0;
    const double w0 = -u * um * um2 * (1.0 / 6.0);
    const double w1 = up * um * um2 * 0.5;
    const double w2 = -up * u * um2 * 0.5;
    const double w3 = up * u * um * (1.0 / 6.0);

    const std::size_t stride = 2 * half_taps_;
    const double* r0 = lut_.data() + p * stride;

    // Range checks hoisted out of the tap loop: clamp once, then hand the
    // backend one branch-free contiguous blended dot product (the interior
    // case covers the full 2·half_taps window).
    const long lo = centre - half + 1;
    const long n0 = std::max(lo, 0L);
    const long n1 = std::min(centre + half, n_samples - 1);
    if (n1 < n0)
        return T{};

    const double w[4] = {w0, w1, w2, w3};
    return backend_blend(*ops_, samples_.data() + n0,
                         r0 + static_cast<std::size_t>(n0 - lo), stride, w,
                         static_cast<std::size_t>(n1 - n0 + 1));
}

template <class T> T sinc_interpolator<T>::at_reference(double t) const {
    const double pos = t * rate_; // fractional sample index
    const auto centre = static_cast<long>(std::floor(pos));
    const auto n_samples = static_cast<long>(samples_.size());
    const auto half = static_cast<long>(half_taps_);

    T acc{};
    const long lo = centre - half + 1;
    const long hi = centre + half;
    const double inv_half = 1.0 / static_cast<double>(half);
    for (long n = lo; n <= hi; ++n) {
        if (n < 0 || n >= n_samples)
            continue;
        const double d = pos - static_cast<double>(n);
        const double w = kaiser_window_at(d * inv_half, beta_);
        acc += samples_[static_cast<std::size_t>(n)] * (sinc(d) * w);
    }
    return acc;
}

template <class T>
std::vector<T> sinc_interpolator<T>::at(const std::vector<double>& t) const {
    std::vector<T> out(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = eval(t[i] * rate_);
    return out;
}

template <class T>
std::vector<T> sinc_interpolator<T>::uniform_grid(double t0, double rate_out,
                                                  std::size_t n) const {
    SDRBIST_EXPECTS(rate_out > 0.0);
    std::vector<T> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] =
            eval((t0 + static_cast<double>(i) / rate_out) * rate_);
    return out;
}

template class sinc_interpolator<double>;
template class sinc_interpolator<std::complex<double>>;

} // namespace sdrbist::dsp

#include "dsp/fft.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/math_util.hpp"
#include "core/units.hpp"

namespace sdrbist::dsp {

namespace {

// Bit-reversal permutation for radix-2 FFT.
void bit_reverse(std::vector<cplx>& x) {
    const std::size_t n = x.size();
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(x[i], x[j]);
    }
}

// Bluestein chirp-z FFT for arbitrary n: expresses the DFT as a convolution
// that is evaluated with a power-of-two FFT.
std::vector<cplx> bluestein(const std::vector<cplx>& x) {
    const std::size_t n = x.size();
    const std::size_t m = next_pow2(2 * n - 1);

    // Chirp w[k] = exp(-i*pi*k^2/n); k^2 mod 2n keeps the argument small.
    std::vector<cplx> w(n);
    for (std::size_t k = 0; k < n; ++k) {
        const auto k2 = static_cast<double>((k * k) % (2 * n));
        w[k] = std::polar(1.0, -pi * k2 / static_cast<double>(n));
    }

    std::vector<cplx> a(m, cplx{0.0, 0.0});
    std::vector<cplx> b(m, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k)
        a[k] = x[k] * w[k];
    b[0] = std::conj(w[0]);
    for (std::size_t k = 1; k < n; ++k)
        b[k] = b[m - k] = std::conj(w[k]);

    fft_pow2_inplace(a);
    fft_pow2_inplace(b);
    for (std::size_t i = 0; i < m; ++i)
        a[i] *= b[i];
    // Inverse power-of-two FFT via conjugation.
    for (auto& v : a)
        v = std::conj(v);
    fft_pow2_inplace(a);
    const double scale = 1.0 / static_cast<double>(m);
    std::vector<cplx> out(n);
    for (std::size_t k = 0; k < n; ++k)
        out[k] = std::conj(a[k]) * scale * w[k];
    return out;
}

} // namespace

void fft_pow2_inplace(std::vector<cplx>& x) {
    const std::size_t n = x.size();
    SDRBIST_EXPECTS(is_pow2(n));
    if (n == 1)
        return;
    bit_reverse(x);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = -two_pi / static_cast<double>(len);
        const cplx wlen = std::polar(1.0, ang);
        for (std::size_t i = 0; i < n; i += len) {
            cplx w{1.0, 0.0};
            for (std::size_t k = 0; k < len / 2; ++k) {
                const cplx u = x[i + k];
                const cplx v = x[i + k + len / 2] * w;
                x[i + k] = u + v;
                x[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

std::vector<cplx> fft(std::vector<cplx> x) {
    SDRBIST_EXPECTS(!x.empty());
    if (is_pow2(x.size())) {
        fft_pow2_inplace(x);
        return x;
    }
    return bluestein(x);
}

std::vector<cplx> ifft(std::vector<cplx> x) {
    SDRBIST_EXPECTS(!x.empty());
    for (auto& v : x)
        v = std::conj(v);
    x = fft(std::move(x));
    const double scale = 1.0 / static_cast<double>(x.size());
    for (auto& v : x)
        v = std::conj(v) * scale;
    return x;
}

std::vector<cplx> fft_real(std::span<const double> x) {
    std::vector<cplx> c(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        c[i] = cplx{x[i], 0.0};
    return fft(std::move(c));
}

std::vector<double> fft_frequencies(std::size_t n, double fs) {
    SDRBIST_EXPECTS(n >= 1);
    SDRBIST_EXPECTS(fs > 0.0);
    std::vector<double> f(n);
    const double df = fs / static_cast<double>(n);
    const std::size_t half = (n + 1) / 2; // number of non-negative bins
    for (std::size_t i = 0; i < half; ++i)
        f[i] = df * static_cast<double>(i);
    for (std::size_t i = half; i < n; ++i)
        f[i] = df * (static_cast<double>(i) - static_cast<double>(n));
    return f;
}

namespace {
template <class T> std::vector<T> fftshift_impl(std::vector<T> x) {
    const std::size_t n = x.size();
    const std::size_t half = (n + 1) / 2;
    std::vector<T> out(n);
    for (std::size_t i = 0; i < n - half; ++i)
        out[i] = x[half + i];
    for (std::size_t i = 0; i < half; ++i)
        out[n - half + i] = x[i];
    return out;
}
} // namespace

std::vector<cplx> fftshift(std::vector<cplx> x) {
    return fftshift_impl(std::move(x));
}

std::vector<double> fftshift(std::vector<double> x) {
    return fftshift_impl(std::move(x));
}

std::vector<cplx> dft_reference(std::span<const cplx> x) {
    const std::size_t n = x.size();
    std::vector<cplx> out(n, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t m = 0; m < n; ++m)
            out[k] += x[m] * std::polar(1.0, -two_pi * static_cast<double>(k) *
                                                 static_cast<double>(m) /
                                                 static_cast<double>(n));
    return out;
}

} // namespace sdrbist::dsp

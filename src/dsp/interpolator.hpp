/// \file interpolator.hpp
/// \brief Bandlimited (windowed-sinc) evaluation of a uniformly sampled
///        sequence at arbitrary time instants.
///
/// This is the bridge between discrete behavioural models and the
/// "continuous-time" RF waveform that the nonuniform sampler probes at
/// picosecond-grade instants: the complex envelope is stored at a modest
/// oversampled rate and evaluated exactly (to the interpolator's stopband
/// floor) at any t.
#pragma once

#include <complex>
#include <vector>

#include "core/contracts.hpp"

namespace sdrbist::simd {
struct kernel_ops;
}

namespace sdrbist::dsp {

/// Windowed-sinc interpolator over samples x[n] taken at t = n / rate.
///
/// Evaluation uses `half_taps` samples on each side of t, weighted by
/// sinc(rate·t - n) and a continuous Kaiser window.  Out-of-range samples
/// are treated as zero; call `valid_begin()/valid_end()` for the time span
/// where no edge truncation occurs.
///
/// The hot path draws its coefficients from a polyphase LUT built at
/// construction: `phase_steps` rows of 2·half_taps windowed-sinc
/// coefficients over the fractional sample offset, blended with a cubic
/// (4-row Lagrange) interpolation so the error against the exact
/// transcendental evaluation stays below ~1e-12 at the default 1024
/// phases.  `at_reference()` keeps the original two-Bessel-series-per-tap
/// evaluation for accuracy regression tests and benches.
template <class T> class sinc_interpolator {
public:
    /// \param samples     uniform samples, x[n] at t = n/rate
    /// \param rate        sample rate in Hz (> 0)
    /// \param half_taps   one-sided kernel support in samples (>= 4)
    /// \param beta        Kaiser window beta (sidelobe control)
    /// \param phase_steps polyphase LUT rows per unit fractional offset
    ///                    (>= 64; accuracy improves as phase_steps^-4)
    sinc_interpolator(std::vector<T> samples, double rate,
                      std::size_t half_taps = 32, double beta = 10.0,
                      std::size_t phase_steps = 1024);

    /// Interpolated value at time t (seconds).  LUT fast path.
    [[nodiscard]] T at(double t) const { return eval(t * rate_); }

    /// Batch evaluation (bit-identical to per-point at()).
    [[nodiscard]] std::vector<T> at(const std::vector<double>& t) const;

    /// Uniform-grid evaluation: n values at t0, t0 + 1/rate_out, ...
    /// Bit-identical to calling at(t0 + i/rate_out) per point.
    [[nodiscard]] std::vector<T> uniform_grid(double t0, double rate_out,
                                              std::size_t n) const;

    /// Reference evaluation: exact per-tap sinc × Kaiser (two Bessel-I0
    /// series per tap).  Retained so tests can bound the LUT fast path.
    [[nodiscard]] T at_reference(double t) const;

    /// First instant free of edge truncation.
    [[nodiscard]] double valid_begin() const {
        return static_cast<double>(half_taps_) / rate_;
    }
    /// Last instant free of edge truncation.
    [[nodiscard]] double valid_end() const {
        return (static_cast<double>(samples_.size()) -
                static_cast<double>(half_taps_) - 1.0) /
               rate_;
    }

    [[nodiscard]] double rate() const { return rate_; }
    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] const std::vector<T>& samples() const { return samples_; }
    [[nodiscard]] std::size_t half_taps() const { return half_taps_; }
    [[nodiscard]] std::size_t phase_steps() const { return phase_steps_; }

    /// SIMD kernel backend evaluating the tap loop (captured from
    /// simd::kernel_backend::select() at construction).
    [[nodiscard]] const simd::kernel_ops& backend() const { return *ops_; }

private:
    std::vector<T> samples_;
    double rate_;
    std::size_t half_taps_;
    double beta_;
    std::size_t phase_steps_;
    const simd::kernel_ops* ops_;
    /// Row r holds the 2·half_taps coefficients for fractional offset
    /// (r - 1)/phase_steps, r = 0 .. phase_steps + 2 (one pad row below 0
    /// and two above 1 for the cubic blend); row-major, stride 2·half_taps.
    std::vector<double> lut_;

    void build_lut();
    [[nodiscard]] T eval(double pos) const;
};

extern template class sinc_interpolator<double>;
extern template class sinc_interpolator<std::complex<double>>;

using real_interpolator = sinc_interpolator<double>;
using complex_interpolator = sinc_interpolator<std::complex<double>>;

} // namespace sdrbist::dsp

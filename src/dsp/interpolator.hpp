/// \file interpolator.hpp
/// \brief Bandlimited (windowed-sinc) evaluation of a uniformly sampled
///        sequence at arbitrary time instants.
///
/// This is the bridge between discrete behavioural models and the
/// "continuous-time" RF waveform that the nonuniform sampler probes at
/// picosecond-grade instants: the complex envelope is stored at a modest
/// oversampled rate and evaluated exactly (to the interpolator's stopband
/// floor) at any t.
#pragma once

#include <complex>
#include <vector>

#include "core/contracts.hpp"

namespace sdrbist::dsp {

/// Windowed-sinc interpolator over samples x[n] taken at t = n / rate.
///
/// Evaluation uses `half_taps` samples on each side of t, weighted by
/// sinc(rate·t - n) and a continuous Kaiser window.  Out-of-range samples
/// are treated as zero; call `valid_begin()/valid_end()` for the time span
/// where no edge truncation occurs.
template <class T> class sinc_interpolator {
public:
    /// \param samples    uniform samples, x[n] at t = n/rate
    /// \param rate       sample rate in Hz (> 0)
    /// \param half_taps  one-sided kernel support in samples (>= 4)
    /// \param beta       Kaiser window beta (sidelobe control)
    sinc_interpolator(std::vector<T> samples, double rate,
                      std::size_t half_taps = 32, double beta = 10.0);

    /// Interpolated value at time t (seconds).
    [[nodiscard]] T at(double t) const;

    /// Batch evaluation.
    [[nodiscard]] std::vector<T> at(const std::vector<double>& t) const;

    /// First instant free of edge truncation.
    [[nodiscard]] double valid_begin() const {
        return static_cast<double>(half_taps_) / rate_;
    }
    /// Last instant free of edge truncation.
    [[nodiscard]] double valid_end() const {
        return (static_cast<double>(samples_.size()) -
                static_cast<double>(half_taps_) - 1.0) /
               rate_;
    }

    [[nodiscard]] double rate() const { return rate_; }
    [[nodiscard]] std::size_t size() const { return samples_.size(); }
    [[nodiscard]] const std::vector<T>& samples() const { return samples_; }

private:
    std::vector<T> samples_;
    double rate_;
    std::size_t half_taps_;
    double beta_;
};

extern template class sinc_interpolator<double>;
extern template class sinc_interpolator<std::complex<double>>;

using real_interpolator = sinc_interpolator<double>;
using complex_interpolator = sinc_interpolator<std::complex<double>>;

} // namespace sdrbist::dsp

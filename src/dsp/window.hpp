/// \file window.hpp
/// \brief Window functions for FIR design, spectral estimation and the
///        truncated Kohlenberg reconstruction filter (the paper windows its
///        61-tap reconstruction filter with a Kaiser window).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sdrbist::dsp {

/// Supported window families.
enum class window_kind {
    rectangular,
    hann,
    hamming,
    blackman,
    kaiser, ///< parameterised by beta
};

/// Generate a symmetric window of length n.
/// For window_kind::kaiser, `kaiser_beta` selects the sidelobe level.
/// Precondition: n >= 1.
std::vector<double> make_window(window_kind kind, std::size_t n,
                                double kaiser_beta = 8.6);

/// Kaiser window of length n with shape parameter beta (symmetric).
std::vector<double> kaiser_window(std::size_t n, double beta);

/// Kaiser beta that achieves the requested stopband attenuation in dB
/// (Kaiser's empirical formula).
double kaiser_beta_for_attenuation(double attenuation_db);

/// Value of the continuous Kaiser window at normalised position
/// u in [-1, 1] (0 = centre, ±1 = edges); 0 outside.
/// Used to window the continuous-argument Kohlenberg kernel.
double kaiser_window_at(double u, double beta);

/// Sum of window coefficients (coherent gain numerator).
double window_sum(const std::vector<double>& w);

/// Sum of squared coefficients (used in PSD normalisation).
double window_power(const std::vector<double>& w);

/// Human-readable name of a window kind.
std::string to_string(window_kind kind);

} // namespace sdrbist::dsp

/// \file window.hpp
/// \brief Window functions for FIR design, spectral estimation and the
///        truncated Kohlenberg reconstruction filter (the paper windows its
///        61-tap reconstruction filter with a Kaiser window).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sdrbist::dsp {

/// Supported window families.
enum class window_kind {
    rectangular,
    hann,
    hamming,
    blackman,
    kaiser, ///< parameterised by beta
};

/// Generate a symmetric window of length n.
/// For window_kind::kaiser, `kaiser_beta` selects the sidelobe level.
/// Precondition: n >= 1.
std::vector<double> make_window(window_kind kind, std::size_t n,
                                double kaiser_beta = 8.6);

/// Kaiser window of length n with shape parameter beta (symmetric).
std::vector<double> kaiser_window(std::size_t n, double beta);

/// Kaiser beta that achieves the requested stopband attenuation in dB
/// (Kaiser's empirical formula).
double kaiser_beta_for_attenuation(double attenuation_db);

/// Value of the continuous Kaiser window at normalised position
/// u in [-1, 1] (0 = centre, ±1 = edges); 0 outside.
/// Used to window the continuous-argument Kohlenberg kernel.
/// Exact (two Bessel-I0 series per call); hot paths use kaiser_lut.
double kaiser_window_at(double u, double beta);

/// Precomputed continuous Kaiser window: `resolution + 1` exact samples of
/// kaiser_window_at over u in [0, 1], evaluated by symmetric linear
/// interpolation.  Replaces the two Bessel-I0 series per call with two loads
/// and a multiply; the interpolation error is |w''|/8 · resolution^-2
/// (~1e-6 absolute at the default 2048 points for beta = 8), far below the
/// truncation error of any windowed kernel it is applied to.
///
/// Shared by the PNBS reconstructor and the hardware-mapped
/// reconstructor's table builder so both see identical window values.
/// (The windowed-sinc interpolator bakes exact window values into its own
/// polyphase coefficient table instead.)
class kaiser_lut {
public:
    explicit kaiser_lut(double beta, std::size_t resolution = 2048);

    /// Window value at normalised position u (any sign); 0 for |u| >= 1.
    [[nodiscard]] double operator()(double u) const {
        u = u < 0.0 ? -u : u;
        if (u >= 1.0)
            return 0.0;
        const double pos = u * static_cast<double>(lut_.size() - 1);
        const auto i = static_cast<std::size_t>(pos);
        const double frac = pos - static_cast<double>(i);
        return lut_[i] + frac * (lut_[i + 1] - lut_[i]);
    }

    [[nodiscard]] double beta() const { return beta_; }
    [[nodiscard]] std::size_t resolution() const { return lut_.size() - 1; }

private:
    std::vector<double> lut_;
    double beta_;
};

/// Sum of window coefficients (coherent gain numerator).
double window_sum(const std::vector<double>& w);

/// Sum of squared coefficients (used in PSD normalisation).
double window_power(const std::vector<double>& w);

/// Human-readable name of a window kind.
std::string to_string(window_kind kind);

} // namespace sdrbist::dsp

#include "rf/rx.hpp"

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist::rf {

homodyne_rx::homodyne_rx(rx_config config) : config_(config) {
    SDRBIST_EXPECTS(config_.filter_order >= 1 && config_.filter_order <= 12);
}

cvec homodyne_rx::receive(const cvec& tx_envelope, double envelope_rate,
                          double loopback_gain_db) const {
    SDRBIST_EXPECTS(!tx_envelope.empty());
    SDRBIST_EXPECTS(envelope_rate > 0.0);
    rng gen(config_.seed);

    // 1. Loopback attenuation + LNA.
    const double gain =
        amplitude_from_db(loopback_gain_db + config_.lna_gain_db);
    cvec env(tx_envelope.size());
    for (std::size_t n = 0; n < env.size(); ++n)
        env[n] = gain * tx_envelope[n];

    // 2. Receiver LO phase noise (multiplicative, independent of the Tx LO
    // in this model: a separate synthesiser).
    if (config_.lo_phase_noise.linewidth_hz > 0.0) {
        rng pn = gen.fork();
        env = config_.lo_phase_noise.apply(env, envelope_rate, pn);
    }

    // 3. Quadrature demodulator: the receive-side IQ imbalance acts on the
    // downconverted I/Q pair exactly like the Tx model (same baseband
    // equivalence), followed by demodulator DC offset.
    env = config_.imbalance.apply(env);
    env = config_.dc_offset.apply(env);

    // 4. Channel-select lowpass.
    {
        const double cutoff = config_.filter_cutoff_hz > 0.0
                                  ? config_.filter_cutoff_hz
                                  : 0.35 * envelope_rate;
        auto lpf = dsp::butterworth_lowpass(config_.filter_order, cutoff,
                                            envelope_rate);
        env = lpf.filter(std::span<const std::complex<double>>(env.data(),
                                                               env.size()));
    }

    // 5. Receiver noise floor.
    {
        rng nz = gen.fork();
        env = config_.noise.apply(env, nz);
    }
    return env;
}

} // namespace sdrbist::rf

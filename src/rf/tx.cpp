#include "rf/tx.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist::rf {

homodyne_tx::homodyne_tx(tx_config config) : config_(config) {
    switch (config_.pa) {
    case pa_kind::linear:
        pa_ = std::make_unique<linear_pa>(config_.pa_gain_db);
        break;
    case pa_kind::rapp: {
        // Saturation chosen so a unit-RMS drive at the configured backoff
        // lands in a realistic compression region: A_sat = G (unit input
        // saturates the output at the small-signal gain).
        pa_ = std::make_unique<rapp_pa>(config_.pa_gain_db,
                                        amplitude_from_db(config_.pa_gain_db),
                                        config_.rapp_smoothness);
        break;
    }
    case pa_kind::saleh:
        pa_ = std::make_unique<saleh_pa>(
            config_.saleh_alpha_a, config_.saleh_beta_a,
            config_.saleh_alpha_phi, config_.saleh_beta_phi);
        break;
    }
}

double homodyne_tx::drive_scale(const cvec& envelope) const {
    const double rms = envelope_rms(envelope);
    SDRBIST_EXPECTS(rms > 0.0);
    double ref_input; // input amplitude that marks "0 dB backoff"
    switch (config_.pa) {
    case pa_kind::rapp: {
        const auto& rp = dynamic_cast<const rapp_pa&>(*pa_);
        ref_input = rp.input_compression_point(1.0);
        break;
    }
    case pa_kind::saleh:
        // Saleh peak output at r = 1/sqrt(beta_a); use that drive as ref.
        ref_input = 1.0 / std::sqrt(std::max(config_.saleh_beta_a, 1e-12));
        break;
    case pa_kind::linear:
    default:
        ref_input = 1.0;
        break;
    }
    return ref_input * amplitude_from_db(-config_.pa_backoff_db) / rms;
}

tx_output homodyne_tx::transmit(const waveform::baseband_waveform& bb) const {
    SDRBIST_EXPECTS(!bb.samples.empty());
    SDRBIST_EXPECTS(bb.sample_rate > 0.0);
    rng gen(config_.seed);

    cvec env = bb.samples;
    const double fs = bb.sample_rate;

    // 1. DAC anti-image reconstruction lowpass (Butterworth on I and Q).
    {
        const double cutoff = config_.recon_filter_cutoff_hz > 0.0
                                  ? config_.recon_filter_cutoff_hz
                                  : 0.35 * fs;
        auto lpf =
            dsp::butterworth_lowpass(config_.recon_filter_order, cutoff, fs);
        env = lpf.filter(std::span<const std::complex<double>>(env.data(),
                                                               env.size()));
    }

    // 2. Quadrature modulator: I/Q imbalance then LO leakage.
    env = config_.imbalance.apply(env);
    env = config_.leakage.apply(env);

    // 3. LO phase noise (multiplicative).
    if (config_.lo_phase_noise.linewidth_hz > 0.0) {
        rng pn = gen.fork();
        env = config_.lo_phase_noise.apply(env, fs, pn);
    }

    // 4. PA drive-level scaling and nonlinearity.
    const double scale = drive_scale(env);
    for (auto& v : env)
        v *= scale;
    env = pa_->process(env);

    // 5. Band-select output filter (baseband-equivalent lowpass).
    if (config_.band_filter_halfwidth_hz > 0.0) {
        auto bpf = dsp::butterworth_lowpass(
            config_.band_filter_order, config_.band_filter_halfwidth_hz, fs);
        env = bpf.filter(std::span<const std::complex<double>>(env.data(),
                                                               env.size()));
    }

    // 6. Output thermal noise floor.
    {
        rng nz = gen.fork();
        env = config_.noise.apply(env, nz);
    }

    tx_output out;
    out.envelope = env;
    out.envelope_rate = fs;
    out.carrier_hz = config_.carrier_hz;
    out.passband = std::make_shared<envelope_passband>(std::move(env), fs,
                                                       config_.carrier_hz);
    return out;
}

} // namespace sdrbist::rf

/// \file impairments.hpp
/// \brief Analog front-end impairment models applied to the complex
///        envelope: quadrature (I/Q) imbalance, LO leakage, oscillator
///        phase noise, thermal noise.
///
/// All models operate on the baseband-equivalent signal; for a symmetric
/// band around the carrier this is exactly equivalent to passband
/// processing and permits arbitrary-time passband evaluation later.
#pragma once

#include <complex>
#include <vector>

#include "core/random.hpp"

namespace sdrbist::rf {

using cvec = std::vector<std::complex<double>>;

/// Transmitter quadrature modulator imbalance:
///   x(t) = I·cos(wt) - g·Q·sin(wt + phi)
/// i.e. the Q branch has relative gain g and phase skew phi.
struct iq_imbalance {
    double gain_db = 0.0;    ///< Q-branch gain relative to I, dB
    double phase_deg = 0.0;  ///< quadrature phase error, degrees

    /// Apply to an envelope (returns a new vector).
    [[nodiscard]] cvec apply(const cvec& env) const;

    /// Image-rejection ratio implied by the imbalance, dB (for docs/tests).
    [[nodiscard]] double image_rejection_db() const;
};

/// Carrier (LO) leakage: constant complex offset added to the envelope,
/// specified relative to the envelope RMS.
struct lo_leakage {
    double level_dbc = -80.0; ///< leakage power relative to signal, dB
    double phase_deg = 0.0;   ///< leakage phase

    [[nodiscard]] cvec apply(const cvec& env) const;
};

/// Oscillator phase noise modelled as a Wiener (random-walk) process with
/// Lorentzian linewidth `linewidth_hz`:  var(phi[n+1]-phi[n]) = 2·pi·lw/fs.
struct phase_noise {
    double linewidth_hz = 0.0;

    /// Generate a phase trajectory of length n at rate fs.
    [[nodiscard]] std::vector<double> trajectory(std::size_t n, double fs,
                                                 rng& gen) const;

    /// Apply e^{j·phi(t)} to the envelope.
    [[nodiscard]] cvec apply(const cvec& env, double fs, rng& gen) const;
};

/// Additive white Gaussian noise at a target in-band SNR.
struct thermal_noise {
    double snr_db = 120.0; ///< SNR relative to envelope power

    [[nodiscard]] cvec apply(const cvec& env, rng& gen) const;
};

/// RMS amplitude of a complex envelope (helper shared by the models).
double envelope_rms(const cvec& env);

} // namespace sdrbist::rf

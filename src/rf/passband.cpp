#include "rf/passband.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/simd/kernel_backend.hpp"
#include "core/units.hpp"

namespace sdrbist::rf {

std::vector<double>
passband_signal::values(const std::vector<double>& t) const {
    std::vector<double> out(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = value(t[i]);
    return out;
}

envelope_passband::envelope_passband(
    std::vector<std::complex<double>> envelope, double envelope_rate,
    double carrier_hz, std::size_t interp_half_taps)
    : interp_(std::move(envelope), envelope_rate, interp_half_taps),
      carrier_hz_(carrier_hz), ops_(&simd::kernel_backend::select()) {
    SDRBIST_EXPECTS(carrier_hz_ > 0.0);
    // The envelope must be strictly oversampled for interpolation to hold.
    SDRBIST_EXPECTS(envelope_rate > 0.0);
}

double envelope_passband::value(double t) const {
    const std::complex<double> e = interp_.at(t);
    // Re{E·e^{jwt}} with the carrier phase computed in full double
    // precision.  The mix goes through the scalar kernel table so that
    // per-instant and batch evaluation stay bit-identical on every
    // architecture (the carrier_mix kernel is elementwise and
    // bit-identical across backends).
    const double wt = two_pi * carrier_hz_ * t;
    const double c = std::cos(wt);
    const double s = std::sin(wt);
    double out = 0.0;
    simd::scalar_ops().carrier_mix(&e, &c, &s, &out, 1);
    return out;
}

std::vector<double>
envelope_passband::values(const std::vector<double>& t) const {
    const auto env = interp_.at(t); // batch LUT interpolation
    // Carrier phase factors stay on scalar libm (no vector sincos in the
    // baseline toolchain); the mix itself runs on the SIMD backend.
    std::vector<double> cos_wt(t.size());
    std::vector<double> sin_wt(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        const double wt = two_pi * carrier_hz_ * t[i];
        cos_wt[i] = std::cos(wt);
        sin_wt[i] = std::sin(wt);
    }
    std::vector<double> out(t.size());
    ops_->carrier_mix(env.data(), cos_wt.data(), sin_wt.data(), out.data(),
                      t.size());
    return out;
}

double envelope_passband::begin_time() const { return interp_.valid_begin(); }

double envelope_passband::end_time() const { return interp_.valid_end(); }

std::complex<double> envelope_passband::envelope_at(double t) const {
    return interp_.at(t);
}

multitone_signal::multitone_signal(std::vector<tone> tones, double duration_s)
    : tones_(std::move(tones)), duration_(duration_s) {
    SDRBIST_EXPECTS(!tones_.empty());
    SDRBIST_EXPECTS(duration_ > 0.0);
    for (const auto& tn : tones_)
        SDRBIST_EXPECTS(tn.frequency_hz > 0.0);
}

double multitone_signal::value(double t) const {
    double acc = 0.0;
    for (const auto& tn : tones_)
        acc += tn.amplitude * std::cos(two_pi * tn.frequency_hz * t +
                                       tn.phase_rad);
    return acc;
}

} // namespace sdrbist::rf

#include "rf/pa.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist::rf {

std::vector<std::complex<double>>
pa_model::process(const std::vector<std::complex<double>>& env) const {
    std::vector<std::complex<double>> out(env.size());
    for (std::size_t n = 0; n < env.size(); ++n)
        out[n] = amplify(env[n]);
    return out;
}

// ---- linear ---------------------------------------------------------------

linear_pa::linear_pa(double gain_db) : gain_(amplitude_from_db(gain_db)) {}

std::complex<double> linear_pa::amplify(std::complex<double> in) const {
    return gain_ * in;
}

// ---- Rapp -----------------------------------------------------------------

rapp_pa::rapp_pa(double gain_db, double sat_amplitude, double smoothness)
    : gain_(amplitude_from_db(gain_db)), sat_(sat_amplitude), p_(smoothness) {
    SDRBIST_EXPECTS(sat_ > 0.0);
    SDRBIST_EXPECTS(p_ >= 0.5);
}

std::complex<double> rapp_pa::amplify(std::complex<double> in) const {
    const double r = std::abs(in);
    if (r == 0.0)
        return {0.0, 0.0};
    const double lin = gain_ * r;
    const double den = std::pow(1.0 + std::pow(lin / sat_, 2.0 * p_),
                                1.0 / (2.0 * p_));
    return in * (gain_ / den);
}

double rapp_pa::input_compression_point(double comp_db) const {
    SDRBIST_EXPECTS(comp_db > 0.0);
    // Solve G/ (1+(G r/A)^{2p})^{1/(2p)} = G·10^{-c/20}  for r.
    const double c = amplitude_from_db(-comp_db); // gain ratio < 1
    const double lhs = std::pow(c, -2.0 * p_) - 1.0; // (G r/A)^{2p}
    SDRBIST_ENSURES(lhs > 0.0);
    return sat_ / gain_ * std::pow(lhs, 1.0 / (2.0 * p_));
}

// ---- Saleh ------------------------------------------------------------------

saleh_pa::saleh_pa(double alpha_a, double beta_a, double alpha_phi,
                   double beta_phi)
    : aa_(alpha_a), ba_(beta_a), ap_(alpha_phi), bp_(beta_phi) {
    SDRBIST_EXPECTS(aa_ > 0.0);
    SDRBIST_EXPECTS(ba_ >= 0.0);
}

std::complex<double> saleh_pa::amplify(std::complex<double> in) const {
    const double r = std::abs(in);
    if (r == 0.0)
        return {0.0, 0.0};
    const double amp = aa_ * r / (1.0 + ba_ * r * r);
    const double phi = ap_ * r * r / (1.0 + bp_ * r * r);
    return std::polar(amp, std::arg(in) + phi);
}

// ---- memory polynomial -------------------------------------------------------

memory_polynomial_pa::memory_polynomial_pa(
    std::vector<std::vector<std::complex<double>>> coefficients)
    : coeff_(std::move(coefficients)) {
    SDRBIST_EXPECTS(!coeff_.empty());
    SDRBIST_EXPECTS(!coeff_[0].empty());
}

std::complex<double>
memory_polynomial_pa::amplify(std::complex<double> in) const {
    std::complex<double> acc{0.0, 0.0};
    const double r2 = std::norm(in);
    double pw = 1.0;
    for (std::size_t j = 0; j < coeff_[0].size(); ++j) {
        acc += coeff_[0][j] * in * pw;
        pw *= r2;
    }
    return acc;
}

std::vector<std::complex<double>> memory_polynomial_pa::process(
    const std::vector<std::complex<double>>& env) const {
    std::vector<std::complex<double>> out(env.size(), {0.0, 0.0});
    for (std::size_t n = 0; n < env.size(); ++n) {
        std::complex<double> acc{0.0, 0.0};
        for (std::size_t q = 0; q < coeff_.size() && q <= n; ++q) {
            const std::complex<double> x = env[n - q];
            const double r2 = std::norm(x);
            double pw = 1.0;
            for (std::size_t j = 0; j < coeff_[q].size(); ++j) {
                acc += coeff_[q][j] * x * pw;
                pw *= r2;
            }
        }
        out[n] = acc;
    }
    return out;
}

double memory_polynomial_pa::small_signal_gain() const {
    // Sum of the linear taps across delays (DC small-signal response).
    std::complex<double> g{0.0, 0.0};
    for (const auto& row : coeff_)
        g += row[0];
    return std::abs(g);
}

} // namespace sdrbist::rf

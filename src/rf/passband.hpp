/// \file passband.hpp
/// \brief Continuous-time passband signal abstraction.
///
/// The nonuniform sampler probes the PA output at picosecond-resolved
/// instants, so the "analog" waveform must be evaluable at arbitrary t.
/// Two implementations:
///  * envelope_passband — bandlimited interpolation of a complex envelope
///    multiplied by an exactly-phased carrier (the behavioural Tx output);
///  * multitone_signal — analytic sum of cosines (exact; used to validate
///    sampling theory without interpolation error in the loop).
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "dsp/interpolator.hpp"

namespace sdrbist::simd {
struct kernel_ops;
}

namespace sdrbist::rf {

/// A real signal defined on [begin_time, end_time].
class passband_signal {
public:
    virtual ~passband_signal() = default;

    /// Signal value at time t (seconds).
    [[nodiscard]] virtual double value(double t) const = 0;

    /// First instant at which value() is fully defined.
    [[nodiscard]] virtual double begin_time() const = 0;

    /// Last such instant.
    [[nodiscard]] virtual double end_time() const = 0;

    /// Batch evaluation: one virtual dispatch per record instead of one
    /// per instant.  Implementations override this to amortise their
    /// per-call setup; the default loops over value().
    [[nodiscard]] virtual std::vector<double>
    values(const std::vector<double>& t) const;
};

/// Passband realisation of a complex envelope:
///   x(t) = Re{ E(t) · e^{j·2π·fc·t} }
/// with E(t) evaluated by windowed-sinc interpolation.
class envelope_passband final : public passband_signal {
public:
    /// \param envelope   complex envelope samples at `envelope_rate`
    /// \param envelope_rate  Hz; must comfortably oversample the envelope
    /// \param carrier_hz carrier frequency fc
    envelope_passband(std::vector<std::complex<double>> envelope,
                      double envelope_rate, double carrier_hz,
                      std::size_t interp_half_taps = 32);

    [[nodiscard]] double value(double t) const override;
    [[nodiscard]] double begin_time() const override;
    [[nodiscard]] double end_time() const override;

    /// Batch capture path: interpolates the whole envelope record through
    /// the polyphase LUT before applying the carrier.
    [[nodiscard]] std::vector<double>
    values(const std::vector<double>& t) const override;

    /// Complex envelope at arbitrary t (used by reference computations).
    [[nodiscard]] std::complex<double> envelope_at(double t) const;

    [[nodiscard]] double carrier() const { return carrier_hz_; }

    // Construction parameters, exposed so a serialiser can round-trip the
    // signal: rebuilding with (envelope_samples, envelope_rate, carrier,
    // half_taps) reproduces this object bit-identically (the LUT is a
    // deterministic function of them).
    [[nodiscard]] double envelope_rate() const { return interp_.rate(); }
    [[nodiscard]] const std::vector<std::complex<double>>&
    envelope_samples() const {
        return interp_.samples();
    }
    [[nodiscard]] std::size_t interp_half_taps() const {
        return interp_.half_taps();
    }

private:
    dsp::complex_interpolator interp_;
    double carrier_hz_;
    const simd::kernel_ops* ops_; ///< backend for the batch carrier mix
};

/// One spectral line of a multitone signal.
struct tone {
    double frequency_hz = 0.0;
    double amplitude = 1.0;
    double phase_rad = 0.0;
};

/// Analytic multitone: x(t) = sum_i A_i·cos(2π·f_i·t + φ_i), defined on a
/// caller-chosen interval (the theory is shift-invariant; tests choose
/// [0, duration]).
class multitone_signal final : public passband_signal {
public:
    multitone_signal(std::vector<tone> tones, double duration_s);

    [[nodiscard]] double value(double t) const override;
    [[nodiscard]] double begin_time() const override { return 0.0; }
    [[nodiscard]] double end_time() const override { return duration_; }

    [[nodiscard]] const std::vector<tone>& tones() const { return tones_; }

private:
    std::vector<tone> tones_;
    double duration_;
};

} // namespace sdrbist::rf

/// \file rx.hpp
/// \brief Behavioural model of the homodyne receiver chain (paper Fig. 1,
///        lower half): LNA, quadrature demodulator with its own
///        impairments, baseband filters.
///
/// The receiver exists in this library to reproduce the paper's *argument
/// against loopback BIST* (§I): in a Tx->Rx loopback test a marginal
/// transmitter can be masked by a complementary receiver error ("fault
/// masking"), which is exactly what the PA-output BIST avoids.
#pragma once

#include "core/random.hpp"
#include "dsp/biquad.hpp"
#include "rf/impairments.hpp"
#include "rf/tx.hpp"

namespace sdrbist::rf {

/// Receiver configuration.
struct rx_config {
    double lna_gain_db = 10.0;

    // Quadrature demodulator impairments (independent of the Tx ones).
    iq_imbalance imbalance{};
    lo_leakage dc_offset{-90.0, 0.0}; ///< demodulator DC offset
    phase_noise lo_phase_noise{0.0};

    // Channel-select lowpass.
    int filter_order = 5;
    double filter_cutoff_hz = 0.0; ///< 0 = auto (0.35 × envelope rate)

    // Receiver noise figure, expressed as output SNR for a 0 dB input.
    thermal_noise noise{60.0};

    std::uint64_t seed = 0x5EC; ///< drives phase noise + thermal noise
};

/// Homodyne receiver: complex envelope in (the Tx output tapped through the
/// loopback path), complex baseband out.
class homodyne_rx {
public:
    explicit homodyne_rx(rx_config config);

    /// Demodulate a transmitter output envelope (baseband-equivalent
    /// processing; the loopback attenuator is `loopback_gain_db`).
    [[nodiscard]] cvec receive(const cvec& tx_envelope, double envelope_rate,
                               double loopback_gain_db = -30.0) const;

    [[nodiscard]] const rx_config& config() const { return config_; }

private:
    rx_config config_;
};

} // namespace sdrbist::rf

#include "rf/impairments.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace sdrbist::rf {

double envelope_rms(const cvec& env) {
    SDRBIST_EXPECTS(!env.empty());
    double p = 0.0;
    for (const auto& v : env)
        p += std::norm(v);
    return std::sqrt(p / static_cast<double>(env.size()));
}

cvec iq_imbalance::apply(const cvec& env) const {
    const double g = amplitude_from_db(gain_db);
    const double phi = phase_deg * pi / 180.0;
    const double sin_phi = std::sin(phi);
    const double cos_phi = std::cos(phi);
    cvec out(env.size());
    for (std::size_t n = 0; n < env.size(); ++n) {
        const double i = env[n].real();
        const double q = env[n].imag();
        // x(t) = I·cos - g·Q·sin(wt+phi)
        //      = (I - g·Q·sin_phi)·cos(wt) - (g·Q·cos_phi)·sin(wt)
        out[n] = {i - g * q * sin_phi, g * q * cos_phi};
    }
    return out;
}

double iq_imbalance::image_rejection_db() const {
    const double g = amplitude_from_db(gain_db);
    const double phi = phase_deg * pi / 180.0;
    // IRR = |mu|^2/|nu|^2 with mu = (1 + g·e^{j·phi})/2, nu = (1 - g·e^{j·phi})/2.
    const std::complex<double> ge = g * std::polar(1.0, phi);
    const double num = std::norm(1.0 + ge);
    const double den = std::norm(1.0 - ge);
    if (den < 1e-30)
        return 300.0; // ideal quadrature: effectively infinite rejection
    return db_from_power(num / den);
}

cvec lo_leakage::apply(const cvec& env) const {
    const double rms = envelope_rms(env);
    const std::complex<double> leak =
        rms * amplitude_from_db(level_dbc) *
        std::polar(1.0, phase_deg * pi / 180.0);
    cvec out(env);
    for (auto& v : out)
        v += leak;
    return out;
}

std::vector<double> phase_noise::trajectory(std::size_t n, double fs,
                                            rng& gen) const {
    SDRBIST_EXPECTS(fs > 0.0);
    SDRBIST_EXPECTS(linewidth_hz >= 0.0);
    std::vector<double> phi(n, 0.0);
    if (linewidth_hz == 0.0 || n == 0)
        return phi;
    const double sigma = std::sqrt(two_pi * linewidth_hz / fs);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        phi[i] = acc;
        acc += gen.gaussian(0.0, sigma);
    }
    return phi;
}

cvec phase_noise::apply(const cvec& env, double fs, rng& gen) const {
    const auto phi = trajectory(env.size(), fs, gen);
    cvec out(env.size());
    for (std::size_t n = 0; n < env.size(); ++n)
        out[n] = env[n] * std::polar(1.0, phi[n]);
    return out;
}

cvec thermal_noise::apply(const cvec& env, rng& gen) const {
    const double rms = envelope_rms(env);
    const double sigma =
        rms * amplitude_from_db(-snr_db) / std::sqrt(2.0); // per dimension
    cvec out(env);
    for (auto& v : out)
        v += std::complex<double>(gen.gaussian(0.0, sigma),
                                  gen.gaussian(0.0, sigma));
    return out;
}

} // namespace sdrbist::rf

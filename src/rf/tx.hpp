/// \file tx.hpp
/// \brief Behavioural model of the homodyne (direct-conversion) transmitter
///        of paper Fig. 1: DAC reconstruction filters, quadrature modulator
///        with impairments, LO phase noise, PA, band-select filter.
///
/// The whole chain is simulated on the complex envelope (baseband
/// equivalent); the output is a continuous-time passband signal that the
/// BP-TIADC then probes at arbitrary instants.
#pragma once

#include <memory>
#include <optional>

#include "core/random.hpp"
#include "dsp/biquad.hpp"
#include "rf/impairments.hpp"
#include "rf/pa.hpp"
#include "rf/passband.hpp"
#include "waveform/generator.hpp"

namespace sdrbist::rf {

/// PA selection for the transmitter chain.
enum class pa_kind { linear, rapp, saleh };

/// Complete transmitter configuration (the "device under test").
struct tx_config {
    double carrier_hz = 1e9; ///< paper: fc = 1 GHz

    // Analog reconstruction (anti-image) lowpass after the DACs.
    int recon_filter_order = 5;
    double recon_filter_cutoff_hz = 0.0; ///< 0 = auto (0.35 × envelope rate)

    // Quadrature modulator impairments.
    iq_imbalance imbalance{};          ///< defaults: ideal
    lo_leakage leakage{-90.0, 0.0};    ///< near-ideal by default
    phase_noise lo_phase_noise{0.0};   ///< Lorentzian linewidth; 0 = clean

    // Power amplifier.
    pa_kind pa = pa_kind::rapp;
    double pa_gain_db = 20.0;
    double pa_backoff_db = 8.0; ///< input backoff from the 1 dB point
    double rapp_smoothness = 2.0;
    double saleh_alpha_a = 2.1587, saleh_beta_a = 1.1517;
    double saleh_alpha_phi = 4.0033, saleh_beta_phi = 9.1040;

    // Band-select (output) filter, baseband-equivalent lowpass half-width.
    int band_filter_order = 5;
    double band_filter_halfwidth_hz = 0.0; ///< 0 = disabled

    // Additive output noise floor.
    thermal_noise noise{140.0}; ///< essentially clean by default

    std::uint64_t seed = 0xC0FFEE; ///< drives phase noise + thermal noise
};

/// Transmitter output: the processed envelope and its passband realisation.
struct tx_output {
    std::vector<std::complex<double>> envelope; ///< post-PA envelope
    double envelope_rate = 0.0;
    double carrier_hz = 0.0;
    std::shared_ptr<const envelope_passband> passband; ///< x(t) evaluator

    /// Convenience: evaluate the passband waveform at time t.
    [[nodiscard]] double at(double t) const { return passband->value(t); }
};

/// Homodyne transmitter behavioural model.
class homodyne_tx {
public:
    explicit homodyne_tx(tx_config config);

    /// Push a baseband stimulus through the chain and realise the passband
    /// output.  Deterministic in (config.seed, stimulus).
    [[nodiscard]] tx_output transmit(const waveform::baseband_waveform& bb) const;

    [[nodiscard]] const tx_config& config() const { return config_; }

    /// The PA model the chain uses (exposed for characterisation tests).
    [[nodiscard]] const pa_model& amplifier() const { return *pa_; }

    /// Input scale applied before the PA so the envelope RMS sits
    /// `pa_backoff_db` below the PA 1 dB compression input (Rapp) or unit
    /// drive (Saleh).  Exposed for tests.
    [[nodiscard]] double drive_scale(const cvec& envelope) const;

private:
    tx_config config_;
    std::unique_ptr<pa_model> pa_;
};

} // namespace sdrbist::rf

/// \file pa.hpp
/// \brief Power-amplifier behavioural models (memoryless AM/AM–AM/PM plus a
///        memory-polynomial extension).
///
/// The BIST's reason to exist is observing the PA output: compression and
/// spectral regrowth are what the spectral mask check must catch.
#pragma once

#include <complex>
#include <memory>
#include <vector>

namespace sdrbist::rf {

/// Interface: complex-envelope in, complex-envelope out.
class pa_model {
public:
    virtual ~pa_model() = default;

    /// Instantaneous envelope transfer.
    [[nodiscard]] virtual std::complex<double>
    amplify(std::complex<double> in) const = 0;

    /// Apply to a whole envelope (default: sample-wise; memory models
    /// override).
    [[nodiscard]] virtual std::vector<std::complex<double>>
    process(const std::vector<std::complex<double>>& env) const;

    /// Small-signal voltage gain (linear).
    [[nodiscard]] virtual double small_signal_gain() const = 0;
};

/// Ideal linear PA.
class linear_pa final : public pa_model {
public:
    explicit linear_pa(double gain_db);
    [[nodiscard]] std::complex<double>
    amplify(std::complex<double> in) const override;
    [[nodiscard]] double small_signal_gain() const override { return gain_; }

private:
    double gain_;
};

/// Rapp solid-state PA model (AM/AM only):
///   |out| = G·|in| / (1 + (G·|in|/A_sat)^{2p})^{1/(2p)}
class rapp_pa final : public pa_model {
public:
    /// \param gain_db        small-signal gain
    /// \param sat_amplitude  output saturation amplitude A_sat (> 0)
    /// \param smoothness     knee sharpness p (>= 0.5; 2–3 typical for SSPA)
    rapp_pa(double gain_db, double sat_amplitude, double smoothness);

    [[nodiscard]] std::complex<double>
    amplify(std::complex<double> in) const override;
    [[nodiscard]] double small_signal_gain() const override { return gain_; }

    /// Input amplitude at which gain is compressed by `comp_db` dB.
    [[nodiscard]] double input_compression_point(double comp_db) const;

private:
    double gain_;
    double sat_;
    double p_;
};

/// Saleh TWTA model (AM/AM and AM/PM):
///   A(r) = aa·r/(1+ba·r^2),  Phi(r) = ap·r^2/(1+bp·r^2)  [radians]
class saleh_pa final : public pa_model {
public:
    saleh_pa(double alpha_a, double beta_a, double alpha_phi, double beta_phi);

    [[nodiscard]] std::complex<double>
    amplify(std::complex<double> in) const override;
    [[nodiscard]] double small_signal_gain() const override { return aa_; }

private:
    double aa_, ba_, ap_, bp_;
};

/// Odd-order memory polynomial:
///   y[n] = sum_{q=0}^{Q-1} sum_{k in {1,3,5,...}} c[q][k]·x[n-q]·|x[n-q]|^{k-1}
/// Captures dynamic (memory) PA effects the memoryless models cannot.
class memory_polynomial_pa final : public pa_model {
public:
    /// coefficients[q][j] multiplies x[n-q]·|x[n-q]|^{2j} (j = 0 is linear).
    explicit memory_polynomial_pa(
        std::vector<std::vector<std::complex<double>>> coefficients);

    [[nodiscard]] std::complex<double>
    amplify(std::complex<double> in) const override; ///< memoryless part only
    [[nodiscard]] std::vector<std::complex<double>>
    process(const std::vector<std::complex<double>>& env) const override;
    [[nodiscard]] double small_signal_gain() const override;

private:
    std::vector<std::vector<std::complex<double>>> coeff_; // [delay][order]
};

} // namespace sdrbist::rf

/// \file cache.hpp
/// \brief On-disk scenario result cache: content-hash keyed, resumable.
///
/// A campaign over a standard × fault × Monte-Carlo grid is only cheap to
/// *regrade* if already-graded scenarios can be skipped.  The cache keys
/// each scenario by an FNV-1a hash of
///
///   - a cache-format version tag (bumping it orphans old entries),
///   - the seed-derivation version (scenario seeds are a function of the
///     master seed and grid coordinates; changing that function must move
///     every key),
///   - the scenario grid coordinates (preset name, fault name, trial) and
///     the derived scenario seed,
///   - the canonical serialisation of the fully *materialised* engine
///     config (bist/config_canonical.hpp) — preset applied, fault
///     injected, seeds and Monte-Carlo perturbations baked in.
///
/// Because the materialised config determines the report bit-for-bit, a
/// hit can stand in for an engine run: a warm rerun reproduces the cold
/// run's coverage matrix and timing-free exports byte-identically.
/// Entries are one JSON file per scenario (`<dir>/<16-hex-key>.json`),
/// written atomically (temp file + rename), so concurrent shard processes
/// can safely share one cache directory.  Corrupt, truncated or
/// version-mismatched entries read as misses and are re-graded.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"

namespace sdrbist::campaign {

/// On-disk cache entry format version (file layout, report field set).
inline constexpr int cache_format_version = 1;

/// Version of the master-seed → scenario-seed derivation in
/// campaign.cpp.  Part of every key: if the derivation changes, equal
/// scenario coordinates no longer mean equal work.
inline constexpr int seed_derivation_version = 1;

class scenario_cache {
public:
    /// Opens (creating if needed) the cache directory.  Throws
    /// contract_violation when the directory cannot be created.
    explicit scenario_cache(std::string dir);

    /// Content-hash key for one scenario (16 lowercase hex chars).  Pure
    /// function of the scenario coordinates and the materialised config —
    /// deliberately independent of grid *shape*, so overlapping grids
    /// (more trials, appended presets) share entries.
    [[nodiscard]] static std::string
    key(const scenario& sc, const bist::bist_config& materialised);

    /// Load a cached outcome.  Only `report`, `engine_error`, `error` and
    /// `elapsed_s` are meaningful in the returned value — the caller owns
    /// the scenario coordinates.  nullopt on miss/corruption/version skew.
    /// A corrupt entry (truncated, garbled, key mismatch) is additionally
    /// moved to `<dir>/quarantine/` and counted, so reruns re-grade into a
    /// clean slot instead of re-parsing the wreck; version-skewed entries
    /// are *not* corrupt — they stay put for `cache-gc`.
    [[nodiscard]] std::optional<scenario_result>
    load(const std::string& key) const;

    /// Persist one graded scenario under `key`.  Atomic (temp + rename)
    /// and best-effort: storage failure degrades to a future miss, never
    /// aborts a campaign.
    void store(const std::string& key, const scenario_result& r) const;

    /// File path an entry with this key lives at.
    [[nodiscard]] std::string path_for(const std::string& key) const;

    [[nodiscard]] const std::string& dir() const { return dir_; }

    /// Corrupt entries this instance has quarantined (the runner folds
    /// this into `campaign_result::quarantined`).
    [[nodiscard]] std::size_t quarantined() const {
        return quarantined_.load(std::memory_order_relaxed);
    }

private:
    std::string dir_;
    mutable std::atomic<std::size_t> quarantined_{0};
};

/// Move `file` into a `quarantine/` directory beside it (collisions get a
/// numeric suffix).  Shared by the cache, the shard salvage reader and
/// anything else that must get a corrupt input out of the way without
/// destroying the evidence.  Returns false when the move failed (the file
/// is left in place).
bool quarantine_file(const std::string& file);

// ---------------------------------------------------------------------------
// Cache lifecycle tooling (the CLI's `cache-stats` / `cache-gc`).
// ---------------------------------------------------------------------------

/// One pass over a cache directory, classifying every entry.
struct cache_dir_stats {
    std::size_t entries = 0;  ///< readable, current-version entries
    std::size_t stale = 0;    ///< version-skewed (would re-grade as a miss)
    std::size_t corrupt = 0;  ///< unparseable / truncated / key mismatch
    std::size_t stray_tmp = 0; ///< leftover atomic-publish temp files
    std::uintmax_t bytes = 0; ///< total size of everything classified
    /// cache_version value → entry count (corrupt entries excluded).
    std::map<int, std::size_t> version_histogram;

    [[nodiscard]] std::size_t files() const {
        return entries + stale + corrupt + stray_tmp;
    }
};

/// Classify every cache file under `dir` (non-recursive: the cache writes
/// a flat directory).  Throws contract_violation when `dir` is not a
/// directory.
cache_dir_stats scan_cache_dir(const std::string& dir);

/// Outcome of a garbage collection over a cache directory.
struct cache_gc_result {
    std::size_t scanned = 0;
    std::size_t removed = 0; ///< stale + corrupt entries and stray temps
    std::size_t kept = 0;    ///< current-version, readable entries
    std::uintmax_t bytes_freed = 0;
};

/// Evict everything a warm run could not use: version-skewed entries,
/// corrupt/truncated files, key-mismatched entries and leftover `.tmp.*`
/// files from interrupted atomic publishes.  Only touches files matching
/// the cache's own naming scheme — anything else in the directory is left
/// alone.  Throws contract_violation when `dir` is not a directory.
cache_gc_result gc_cache_dir(const std::string& dir);

/// Serialise a full bist_report as a JSON object.  Doubles are written in
/// shortest round-trip form, so parse(report_json(r)) recovers every
/// finite field bit-identically.  Non-finite values collapse to quiet NaN
/// through JSON `null` — exports render both as `null`, so artefact
/// byte-identity survives even for degenerate reports.
std::string report_json(const bist::bist_report& report);

/// Rebuild a report from its JSON form.  Throws contract_violation on
/// missing fields or kind mismatches.
bist::bist_report report_from_json(const json_value& v);

} // namespace sdrbist::campaign

#include "campaign/shard_io.hpp"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h> // getpid: temp names must be unique across processes
#endif

#include "campaign/cache.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"
#include "core/hash.hpp"
#include "core/telemetry.hpp"

namespace sdrbist::campaign {

namespace {

double num_or_nan(const json_value& v) {
    return v.is_null() ? std::numeric_limits<double>::quiet_NaN()
                       : v.as_number();
}

std::size_t size_of(const json_value& v) {
    return static_cast<std::size_t>(v.as_number());
}

std::uint64_t u64_of(const json_value& v) {
    // 64-bit values travel as decimal strings (JSON numbers carry 53 bits).
    return std::stoull(v.as_string());
}

std::uint64_t u64_of_number(const json_value& v) {
    return static_cast<std::uint64_t>(v.as_number());
}

std::string name_array_json(const std::vector<std::string>& names) {
    std::string out = "[";
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i)
            out += ',';
        out += json_quote(names[i]);
    }
    out += ']';
    return out;
}

std::vector<std::string> name_array_from_json(const json_value& v) {
    std::vector<std::string> out;
    out.reserve(v.as_array().size());
    for (const auto& e : v.as_array())
        out.push_back(e.as_string());
    return out;
}

/// Per-category aggregates, in category declaration order.  The ns fields
/// travel as decimal strings: totals can exceed the 53 bits a JSON number
/// round-trips, and shard files promise write(read(x)) == write(x).
std::string telemetry_block_json(const telemetry::summary& s) {
    std::string out = "[";
    for (std::size_t i = 0; i < telemetry::category_count; ++i) {
        if (i)
            out += ',';
        const auto& c = s.categories[i];
        json_object_writer o;
        o.string_field("category",
                       telemetry::to_string(
                           static_cast<telemetry::category>(i)));
        o.size_field("count", c.count);
        o.string_field("total_ns", std::to_string(c.total_ns));
        o.string_field("max_ns", std::to_string(c.max_ns));
        out += o.str();
    }
    out += ']';
    return out;
}

telemetry::summary telemetry_block_from_json(const json_value& v) {
    telemetry::summary out;
    const auto& arr = v.as_array();
    SDRBIST_EXPECTS(arr.size() == telemetry::category_count);
    for (std::size_t i = 0; i < arr.size(); ++i) {
        SDRBIST_EXPECTS(arr[i].at("category").as_string() ==
                        telemetry::to_string(
                            static_cast<telemetry::category>(i)));
        out.categories[i].count = u64_of_number(arr[i].at("count"));
        out.categories[i].total_ns = u64_of(arr[i].at("total_ns"));
        out.categories[i].max_ns = u64_of(arr[i].at("max_ns"));
    }
    return out;
}

} // namespace

std::string scenario_row_json(const scenario_result& r) {
    json_object_writer o;
    o.size_field("index", r.sc.index);
    o.size_field("preset_index", r.sc.preset_index);
    o.size_field("fault_index", r.sc.fault_index);
    o.size_field("trial", r.sc.trial);
    o.string_field("preset", r.sc.preset_name);
    o.string_field("fault", bist::to_string(r.sc.fault));
    o.string_field("seed", std::to_string(r.sc.seed));
    o.bool_field("engine_error", r.engine_error);
    o.string_field("error", r.error);
    o.number_field("elapsed_s", r.elapsed_s);
    o.size_field("attempts", r.attempts);
    o.number_field("backoff_ms", r.backoff_ms);
    o.bool_field("gave_up", r.gave_up);
    o.bool_field("timed_out", r.timed_out);
    o.field("report", report_json(r.report));
    return o.str();
}

scenario_result scenario_row_from_json(const json_value& v) {
    scenario_result r;
    r.sc.index = size_of(v.at("index"));
    r.sc.preset_index = size_of(v.at("preset_index"));
    r.sc.fault_index = size_of(v.at("fault_index"));
    r.sc.trial = size_of(v.at("trial"));
    r.sc.preset_name = v.at("preset").as_string();
    r.sc.fault = bist::fault_from_string(v.at("fault").as_string());
    r.sc.seed = u64_of(v.at("seed"));
    r.engine_error = v.at("engine_error").as_bool();
    r.error = v.at("error").as_string();
    r.elapsed_s = num_or_nan(v.at("elapsed_s"));
    r.attempts = size_of(v.at("attempts"));
    r.backoff_ms = num_or_nan(v.at("backoff_ms"));
    r.gave_up = v.at("gave_up").as_bool();
    r.timed_out = v.at("timed_out").as_bool();
    r.report = report_from_json(v.at("report"));
    return r;
}

std::string result_to_json(const campaign_result& result) {
    json_object_writer doc;
    doc.size_field("shard_file_version",
                   static_cast<std::size_t>(shard_file_version));
    doc.field("presets", name_array_json(result.preset_names));
    doc.field("faults", name_array_json(result.fault_names));
    doc.size_field("trials", result.trials);
    doc.string_field("seed", std::to_string(result.seed));
    doc.size_field("shard_index", result.shard_index);
    doc.size_field("shard_count", result.shard_count);
    doc.size_field("grid_size", result.grid_size);
    doc.size_field("threads_used", result.threads_used);
    doc.number_field("wall_s", result.wall_s);
    doc.size_field("cache_hits", result.cache_hits);
    doc.size_field("cache_misses", result.cache_misses);
    doc.size_field("stage_reuse_hits", result.stage_reuse_hits);
    doc.size_field("stage_reuse_computes", result.stage_reuse_computes);
    doc.size_field("store_hits", result.store_hits);
    doc.size_field("store_misses", result.store_misses);
    doc.size_field("store_bytes",
                   static_cast<std::size_t>(result.store_bytes));
    doc.size_field("resumed", result.resumed);
    doc.size_field("quarantined", result.quarantined);
    doc.field("telemetry", telemetry_block_json(result.telemetry_summary));
    std::string rows = "[";
    for (std::size_t i = 0; i < result.results.size(); ++i) {
        if (i)
            rows += ',';
        rows += scenario_row_json(result.results[i]);
    }
    rows += ']';
    doc.field("results", rows);
    return doc.str();
}

campaign_result result_from_json(const json_value& doc) {
    SDRBIST_EXPECTS(static_cast<int>(
                        doc.at("shard_file_version").as_number()) ==
                    shard_file_version);
    campaign_result out;
    out.preset_names = name_array_from_json(doc.at("presets"));
    out.fault_names = name_array_from_json(doc.at("faults"));
    out.trials = size_of(doc.at("trials"));
    out.seed = u64_of(doc.at("seed"));
    out.shard_index = size_of(doc.at("shard_index"));
    out.shard_count = size_of(doc.at("shard_count"));
    out.grid_size = size_of(doc.at("grid_size"));
    out.threads_used = size_of(doc.at("threads_used"));
    out.wall_s = num_or_nan(doc.at("wall_s"));
    out.cache_hits = size_of(doc.at("cache_hits"));
    out.cache_misses = size_of(doc.at("cache_misses"));
    out.stage_reuse_hits = size_of(doc.at("stage_reuse_hits"));
    out.stage_reuse_computes = size_of(doc.at("stage_reuse_computes"));
    out.store_hits = size_of(doc.at("store_hits"));
    out.store_misses = size_of(doc.at("store_misses"));
    out.store_bytes = size_of(doc.at("store_bytes"));
    out.resumed = size_of(doc.at("resumed"));
    out.quarantined = size_of(doc.at("quarantined"));
    out.telemetry_summary = telemetry_block_from_json(doc.at("telemetry"));
    for (const auto& row : doc.at("results").as_array())
        out.results.push_back(scenario_row_from_json(row));
    // The coverage matrix and population statistics are deliberately not
    // stored: merge_results() re-derives them from the rows through the
    // same aggregation path an unsharded run uses.
    return out;
}

campaign_result read_result_file(const std::string& path) {
    const telemetry::scoped_span span(telemetry::category::shard,
                                      "shard.read");
    fault_injection::fire(fault_injection::site::shard_read);
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        throw contract_violation("cannot read shard file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return result_from_json(parse_json(buffer.str()));
    } catch (const std::exception& e) {
        throw contract_violation("malformed shard file " + path + ": " +
                                 e.what());
    }
}

bool write_result_file(const std::string& path,
                       const campaign_result& result) {
    const telemetry::scoped_span span(telemetry::category::shard,
                                      "shard.write");
    fault_injection::fire(fault_injection::site::shard_write);
    std::string body = result_to_json(result);
    body += '\n';
    fault_injection::corrupt(fault_injection::site::shard_write, body);

    // Atomic publish (same discipline as the scenario cache): write a
    // uniquely named temp file next to the target, then rename over it, so
    // a crash or SIGKILL mid-write leaves the target either absent or
    // complete — never a torn file that strict --merge rejects.
#if defined(__unix__) || defined(__APPLE__)
    const std::uint64_t process_tag = static_cast<std::uint64_t>(::getpid());
#else
    const std::uint64_t process_tag =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
#endif
    static std::atomic<std::uint64_t> sequence{0};
    const std::string tmp =
        path + ".tmp." + fnv1a64::hex_digest(process_tag) + "." +
        std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
    namespace fs = std::filesystem;
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.good())
            return false;
        out << body;
        out.flush();
        if (!out.good()) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::vector<campaign_result>
read_result_files_salvage(const std::vector<std::string>& paths,
                          salvage_stats& stats) {
    std::vector<campaign_result> out;
    out.reserve(paths.size());
    for (const std::string& path : paths) {
        try {
            out.push_back(read_result_file(path));
        } catch (const std::exception& e) {
            // Unreadable, truncated, garbled or version-skewed: move the
            // file aside so reruns do not trip over it, and keep merging.
            ++stats.quarantined_files;
            std::string note = "quarantined shard file " + path + ": ";
            note += e.what();
            if (!quarantine_file(path))
                note += " (quarantine move failed; left in place)";
            stats.notes.push_back(std::move(note));
        }
    }
    return out;
}

} // namespace sdrbist::campaign

#include "campaign/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>

#include "core/contracts.hpp"
#include "core/random.hpp"
#include "core/thread_pool.hpp"

namespace sdrbist::campaign {

namespace {

/// splitmix64 finaliser — the standard 64-bit mixing step.  Used to derive
/// scenario seeds from (master seed, grid coordinates) so the stream is a
/// pure function of the grid position, never of execution order.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t master, std::size_t preset_index,
                          std::size_t fault_index, std::size_t trial) {
    std::uint64_t h = mix64(master);
    h = mix64(h ^ (static_cast<std::uint64_t>(preset_index) + 1));
    h = mix64(h ^ (static_cast<std::uint64_t>(fault_index) + 1));
    h = mix64(h ^ (static_cast<std::uint64_t>(trial) + 1));
    return h;
}

} // namespace

std::vector<scenario> expand_grid(const campaign_config& cfg) {
    SDRBIST_EXPECTS(!cfg.presets.empty());
    SDRBIST_EXPECTS(!cfg.faults.empty());
    SDRBIST_EXPECTS(cfg.trials >= 1);

    std::vector<scenario> grid;
    grid.reserve(cfg.presets.size() * cfg.faults.size() * cfg.trials);
    std::size_t index = 0;
    for (std::size_t p = 0; p < cfg.presets.size(); ++p)
        for (std::size_t f = 0; f < cfg.faults.size(); ++f)
            for (std::size_t t = 0; t < cfg.trials; ++t) {
                scenario sc;
                sc.index = index++;
                sc.preset_index = p;
                sc.fault_index = f;
                sc.trial = t;
                sc.fault = cfg.faults[f];
                sc.preset_name = cfg.presets[p].name;
                sc.seed = derive_seed(cfg.seed, p, f, t);
                grid.push_back(std::move(sc));
            }
    return grid;
}

bist::bist_config scenario_config(const campaign_config& cfg,
                                  const scenario& sc) {
    SDRBIST_EXPECTS(sc.preset_index < cfg.presets.size());
    SDRBIST_EXPECTS(sc.fault_index < cfg.faults.size());

    bist::bist_config out = cfg.base;
    const auto& preset = cfg.presets[sc.preset_index];
    out.preset = preset;
    out.tx = bist::inject_fault(out.tx, sc.fault);

    if (cfg.reseed_trials) {
        rng gen(sc.seed);
        out.tx.seed = gen.next_u64();
        out.tiadc.seed = gen.next_u64();
        out.probe_seed = gen.next_u64();
        // Device-population spread.  The gaussians are always drawn so the
        // seed stream does not depend on which perturbations are enabled.
        const double jitter_g = gen.gaussian();
        const double dcde_g = gen.gaussian();
        out.tiadc.jitter_rms_s *=
            std::exp(cfg.perturb.jitter_rel_sigma * jitter_g);
        out.tiadc.delay_element.static_error_s +=
            cfg.perturb.dcde_static_sigma_s * dcde_g;
    }

    if (cfg.relax_mask_to_floor) {
        // Keep the mask limits above what this capture hardware can measure
        // at the preset's carrier (paper §II-B3: jitter-induced wideband
        // noise bounds the observable floor).  Uses the *perturbed* jitter:
        // a noisier trial device also has a higher measurement floor.
        const double occupied = preset.stimulus.symbol_rate *
                                (1.0 + preset.stimulus.rolloff);
        const double floor = waveform::bist_measurement_floor_dbc(
            preset.default_carrier_hz, out.tiadc.jitter_rms_s, occupied,
            out.tiadc.channel_rate_hz);
        out.preset.mask =
            waveform::relax_to_measurement_floor(preset.mask, floor);
    }
    return out;
}

const coverage_cell& campaign_result::cell(std::size_t preset_index,
                                           std::size_t fault_index) const {
    SDRBIST_EXPECTS(preset_index < matrix.size());
    SDRBIST_EXPECTS(fault_index < matrix[preset_index].size());
    return matrix[preset_index][fault_index];
}

campaign_runner::campaign_runner(campaign_config config)
    : config_(std::move(config)) {
    SDRBIST_EXPECTS(!config_.presets.empty());
    SDRBIST_EXPECTS(!config_.faults.empty());
    SDRBIST_EXPECTS(config_.trials >= 1);
}

campaign_result campaign_runner::run() const {
    using clock = std::chrono::steady_clock;

    const auto grid = expand_grid(config_);
    campaign_result out;
    out.trials = config_.trials;
    out.seed = config_.seed;
    out.preset_names.reserve(config_.presets.size());
    for (const auto& p : config_.presets)
        out.preset_names.push_back(p.name);
    out.fault_names.reserve(config_.faults.size());
    for (const auto f : config_.faults)
        out.fault_names.push_back(bist::to_string(f));

    // Execute: each job reads the shared config and writes only its own
    // grid-indexed slot, so thread count cannot affect any result.
    out.results.resize(grid.size());
    const auto wall_start = clock::now();
    {
        // Never spawn more workers than there are scenarios.
        const std::size_t requested =
            config_.threads ? config_.threads
                            : thread_pool::default_thread_count();
        thread_pool pool(std::min(requested, grid.size()));
        out.threads_used = pool.size();
        parallel_for_index(pool, grid.size(), [&](std::size_t i) {
            scenario_result& slot = out.results[i];
            slot.sc = grid[i];
            const auto t0 = clock::now();
            try {
                const bist::bist_engine engine(
                    scenario_config(config_, grid[i]));
                slot.report = engine.run();
            } catch (const std::exception& e) {
                slot.engine_error = true;
                slot.error = e.what();
            }
            slot.elapsed_s =
                std::chrono::duration<double>(clock::now() - t0).count();
        });
    }
    out.wall_s =
        std::chrono::duration<double>(clock::now() - wall_start).count();

    // Aggregate in grid order (deterministic regardless of completion order).
    out.matrix.assign(config_.presets.size(),
                      std::vector<coverage_cell>(config_.faults.size()));
    for (const auto& r : out.results) {
        coverage_cell& cell = out.matrix[r.sc.preset_index][r.sc.fault_index];
        ++cell.runs;
        if (r.flagged())
            ++cell.flagged;
        if (r.sc.fault == bist::fault_kind::none) {
            ++out.golden_runs;
            if (!r.flagged())
                ++out.golden_passes;
        } else {
            ++out.fault_runs;
            if (r.flagged())
                ++out.fault_detected;
        }
        out.scenario_cpu_s += r.elapsed_s;
    }
    return out;
}

} // namespace sdrbist::campaign
